(* ddt — test closed-source binary device drivers from the command line.

   Subcommands:
     list                      show the bundled driver corpus
     test <driver>             run DDT on a corpus driver (buggy variant)
     test --fixed <driver>     ... on the repaired variant
     test --dist-workers N     ... across N worker processes
     resume <ckpt>             resume an interrupted test session
     serve                     run a Unix-socket test-job daemon
     submit <driver>           submit a job to a running daemon
     static <driver>           run the static-analysis baseline
     analyze <driver>          run the DXE static pre-analysis (ICFG)
     stress <driver>           run the concrete stress baseline
     disasm <driver>           print the driver binary's disassembly
     info <driver>             Table 1 style image statistics *)

open Cmdliner
module Corpus = Ddt_drivers.Corpus
module Report = Ddt_checkers.Report

let driver_arg =
  let doc = "Corpus driver short name (see `ddt_cli list')." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DRIVER" ~doc)

let fixed_flag =
  let doc = "Use the repaired variant of the driver." in
  Arg.(value & flag & info [ "fixed" ] ~doc)

let no_annot_flag =
  let doc = "Disable API annotations (the paper's ablation mode)." in
  Arg.(value & flag & info [ "no-annotations" ] ~doc)

let traces_flag =
  let doc = "Print the trace digest and replay script for each bug." in
  Arg.(value & flag & info [ "traces" ] ~doc)

let jobs_arg =
  let doc =
    "Explore the session's fork tree with $(docv) cooperating worker \
     domains (shared work-stealing frontier)."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let dist_workers_arg =
  let doc =
    "Explore across $(docv) worker processes: a coordinator ships \
     serialized states to idle workers, steals work back from busy ones, \
     and merges the per-worker reports. The bug set is identical to a \
     single-process run, even if workers are killed mid-run. With \
     $(b,--store-dir), workers share solver work through the persistent \
     store. 0 (the default) runs in-process."
  in
  Arg.(value & opt int 0 & info [ "dist-workers" ] ~docv:"N" ~doc)

let find_entry short =
  match Corpus.find short with
  | e -> Ok e
  | exception Not_found ->
      Error
        (Printf.sprintf "unknown driver %S; try: %s" short
           (String.concat ", " (List.map (fun e -> e.Corpus.short) Corpus.all)))

let list_cmd =
  let run () =
    Format.printf "%-10s %-22s %-8s %s@." "SHORT" "NAME" "CLASS" "SEEDED BUGS";
    List.iter
      (fun e ->
        Format.printf "%-10s %-22s %-8s %d@." e.Corpus.short e.Corpus.name
          (match e.Corpus.driver_class with
           | Ddt_core.Config.Network -> "network"
           | Ddt_core.Config.Audio -> "audio")
          (List.length e.Corpus.expected_bugs))
      Corpus.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the bundled driver corpus")
    Term.(const run $ const ())

let guided_flag =
  let doc =
    "Steer exploration with the static pre-analysis: distance-to-uncovered \
     oracle plus the min-dist scheduling strategy."
  in
  Arg.(value & flag & info [ "guided" ] ~doc)

let chaos_flag =
  let doc =
    "Run under deterministic fault injection (worker crashes every 25th \
     pick, every 3rd uncached solve budget-exhausted, simulated memory \
     pressure with the resource governor). The session must survive and \
     report the same bugs; the injected faults appear as quarantined \
     engine incidents."
  in
  Arg.(value & flag & info [ "chaos" ] ~doc)

let no_incr_flag =
  let doc =
    "Disable the per-state incremental solver sessions and answer every \
     feasibility/concretization query from scratch (the differential \
     oracle the incremental path is validated against)."
  in
  Arg.(value & flag & info [ "no-solver-incr" ] ~doc)

let no_dbt_flag =
  let doc =
    "Disable block compilation and interpret every instruction \
     individually (the differential oracle the compiled path is \
     validated against). Bug reports are identical either way."
  in
  Arg.(value & flag & info [ "no-dbt" ] ~doc)

let no_merge_flag =
  let doc =
    "Disable dynamic state merging at branch post-dominators and fork on \
     every symbolic branch (the differential oracle the merging path is \
     validated against). Bug reports are identical either way; merging \
     only collapses the number of states explored."
  in
  Arg.(value & flag & info [ "no-merge" ] ~doc)

let checkpoint_every_arg =
  let doc =
    "Write a session checkpoint every $(docv) engine steps (0 disables). \
     Only effective with a single worker, fully symbolic hardware and no \
     replay script; a SIGKILL'd run restarted with $(b,resume) produces \
     the same report as an uninterrupted one."
  in
  Arg.(value & opt int 0 & info [ "checkpoint-every" ] ~docv:"STEPS" ~doc)

let checkpoint_path_arg =
  let doc = "Checkpoint file path (default $(i,<driver>.ckpt))." in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"PATH" ~doc)

let store_dir_arg =
  let doc =
    "Root of the persistent solver store: query-cache entries and unsat \
     cores survive across runs of the same driver, so a second run starts \
     with a warm cache. Corrupt store files are skipped, never trusted."
  in
  Arg.(value & opt (some string) None & info [ "store-dir" ] ~docv:"DIR" ~doc)

let no_persist_flag =
  let doc =
    "Disable the persistent solver store even when $(b,--store-dir) is set \
     (neither loads nor writes entries)."
  in
  Arg.(value & flag & info [ "no-persist" ] ~doc)

let json_out_arg =
  let doc =
    "Also write the machine-readable session report (JSON, schema v5) to \
     $(docv), atomically (tmp + rename)."
  in
  Arg.(value & opt (some string) None & info [ "json-out" ] ~docv:"PATH" ~doc)

(* Flag application shared by `test' and `resume': for a resumed run to
   converge with the uninterrupted one, both must build their config the
   same way from the same flags. *)
let apply_session_flags cfg ~jobs ~guided ~chaos ~no_incr ~no_dbt ~no_merge
    ~checkpoint_every ~checkpoint_path ~store_dir ~persist =
  let cfg =
    { cfg with
      Ddt_core.Config.exec_config =
        { cfg.Ddt_core.Config.exec_config with
          Ddt_symexec.Exec.jobs = max 1 jobs;
          solver_incr = not no_incr;
          dbt = not no_dbt;
          state_merging = not no_merge };
      checkpoint_every;
      checkpoint_path;
      store_dir;
      persist }
  in
  let cfg =
    if guided then
      { cfg with
        Ddt_core.Config.exec_config =
          { cfg.Ddt_core.Config.exec_config with
            Ddt_symexec.Exec.static_guidance = true;
            strategy = Ddt_symexec.Sched.Min_dist } }
    else cfg
  in
  if chaos then
    { cfg with
      Ddt_core.Config.governor =
        Some
          { Ddt_core.Governor.default_limits with
            Ddt_core.Governor.soft_live_words = 1;
            min_states = 8; max_retire_per_trip = 1 };
      exec_config =
        { cfg.Ddt_core.Config.exec_config with
          Ddt_symexec.Exec.chaos =
            Some
              { Ddt_symexec.Guard.chaos_worker_crash_period = 25;
                chaos_solver_exhaust_period = 3;
                chaos_pressure_words = 50_000_000 } } }
  else cfg

let report_result ~traces ~json_out r =
  Format.printf "%a" Ddt_core.Ddt.pp_report r;
  if traces then
    List.iter
      (fun b ->
        Format.printf "@.%a@.%a%a" Ddt_core.Ddt.pp_bug_detail b
          Ddt_trace.Replay.pp b.Report.b_replay
          Ddt_checkers.Diagnose.pp
          (Ddt_checkers.Diagnose.analyze b))
      r.Ddt_core.Session.r_bugs;
  (match json_out with
   | None -> ()
   | Some path -> (
       match
         Ddt_core.Report_json.write_file path
           (Ddt_core.Report_json.of_result r)
       with
       | Ok () -> ()
       | Error e -> Printf.eprintf "json-out: %s\n" e));
  if r.Ddt_core.Session.r_bugs = [] then 0 else 2

let test_cmd =
  let run short fixed no_annot traces jobs dist_workers guided chaos no_incr
      no_dbt no_merge checkpoint_every checkpoint_path store_dir no_persist
      json_out =
    match find_entry short with
    | Error e -> prerr_endline e; 1
    | Ok entry ->
        let cfg =
          Corpus.config ~fixed ~use_annotations:(not no_annot) entry
        in
        let cfg =
          apply_session_flags cfg ~jobs ~guided ~chaos ~no_incr ~no_dbt
            ~no_merge ~checkpoint_every ~checkpoint_path ~store_dir
            ~persist:(not no_persist)
        in
        let r =
          if dist_workers > 0 then begin
            let r, c = Ddt_dist.Dist.run ~workers:dist_workers cfg in
            Format.printf
              "dist: %d worker process(es) | %d state(s) shipped | %d \
               steal(s) moved %d state(s) | %d re-shipped after %d \
               death(s) | %d store hit(s)@."
              c.Ddt_dist.Dist.c_workers c.Ddt_dist.Dist.c_shipped
              c.Ddt_dist.Dist.c_steals c.Ddt_dist.Dist.c_stolen_states
              c.Ddt_dist.Dist.c_reships c.Ddt_dist.Dist.c_deaths
              c.Ddt_dist.Dist.c_store_hits;
            r
          end
          else Ddt_core.Ddt.test_driver cfg
        in
        report_result ~traces ~json_out r
  in
  Cmd.v
    (Cmd.info "test" ~doc:"Test a driver binary with DDT")
    Term.(
      const run $ driver_arg $ fixed_flag $ no_annot_flag $ traces_flag
      $ jobs_arg $ dist_workers_arg $ guided_flag $ chaos_flag $ no_incr_flag
      $ no_dbt_flag $ no_merge_flag $ checkpoint_every_arg
      $ checkpoint_path_arg $ store_dir_arg $ no_persist_flag $ json_out_arg)

let resume_cmd =
  let ckpt_arg =
    let doc =
      "Checkpoint file written by $(b,test --checkpoint-every). The \
       resumed session must be given the same flags (e.g. $(b,--fixed), \
       $(b,--no-annotations)) as the run that wrote it."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CKPT" ~doc)
  in
  let run ckpt fixed no_annot traces jobs guided chaos no_incr no_dbt
      no_merge checkpoint_every checkpoint_path store_dir no_persist
      json_out =
    match Ddt_core.Session.checkpoint_driver ckpt with
    | Error e -> Printf.eprintf "cannot read checkpoint: %s\n" e; 1
    | Ok name -> (
        match
          List.find_opt (fun e -> e.Corpus.name = name) Corpus.all
        with
        | None ->
            Printf.eprintf "checkpoint driver %S is not in the corpus\n"
              name;
            1
        | Some entry ->
            let cfg =
              Corpus.config ~fixed ~use_annotations:(not no_annot) entry
            in
            let cfg =
              apply_session_flags cfg ~jobs ~guided ~chaos ~no_incr
                ~no_dbt ~no_merge ~checkpoint_every
                (* keep checkpointing into the file being resumed unless
                   told otherwise *)
                ~checkpoint_path:
                  (Some (Option.value checkpoint_path ~default:ckpt))
                ~store_dir ~persist:(not no_persist)
            in
            (match Ddt_core.Session.resume cfg ~path:ckpt with
             | Error e -> Printf.eprintf "resume: %s\n" e; 1
             | Ok r -> report_result ~traces ~json_out r))
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:
         "Resume an interrupted (e.g. SIGKILL'd) test session from its \
          checkpoint and run it to completion")
    Term.(
      const run $ ckpt_arg $ fixed_flag $ no_annot_flag $ traces_flag
      $ jobs_arg $ guided_flag $ chaos_flag $ no_incr_flag $ no_dbt_flag
      $ no_merge_flag $ checkpoint_every_arg $ checkpoint_path_arg
      $ store_dir_arg $ no_persist_flag $ json_out_arg)

let socket_arg =
  let doc = "Unix-domain socket path the daemon listens on." in
  Arg.(value & opt string "ddt.sock" & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let max_jobs_arg =
    let doc =
      "Exit cleanly after serving $(docv) jobs (0 serves forever). Used \
       by the CI smoke test."
    in
    Arg.(value & opt int 0 & info [ "max-jobs" ] ~docv:"N" ~doc)
  in
  let run socket max_jobs store_dir =
    let resolve (j : Ddt_dist.Serve.job) =
      match find_entry j.Ddt_dist.Serve.jq_driver with
      | Error e -> Error e
      | Ok entry ->
          let cfg = Corpus.config ~fixed:j.Ddt_dist.Serve.jq_fixed entry in
          Ok { cfg with Ddt_core.Config.store_dir }
    in
    match
      Ddt_dist.Serve.serve ~socket_path:socket ~max_jobs ~resolve ()
    with
    | Ok jobs ->
        Printf.printf "served %d job(s)\n" jobs;
        0
    | Error e ->
        Printf.eprintf "serve: %s\n" e;
        1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a Unix-socket daemon that accepts test jobs, runs each \
          through the multi-process coordinator under resource-governor \
          admission control, and streams JSON reports back")
    Term.(const run $ socket_arg $ max_jobs_arg $ store_dir_arg)

let submit_cmd =
  let workers_arg =
    let doc = "Worker processes for this job." in
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let run socket short fixed workers =
    match
      Ddt_dist.Serve.submit ~socket_path:socket
        { Ddt_dist.Serve.jq_driver = short; jq_fixed = fixed;
          jq_workers = workers }
    with
    | Ok lines ->
        List.iter print_endline lines;
        0
    | Error e ->
        Printf.eprintf "submit: %s\n" e;
        1
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit one test job to a running $(b,ddt_cli serve) daemon and \
          print its streamed JSON response")
    Term.(const run $ socket_arg $ driver_arg $ fixed_flag $ workers_arg)

let static_cmd =
  let run short fixed =
    match find_entry short with
    | Error e -> prerr_endline e; 1
    | Ok entry ->
        let image =
          if fixed then entry.Corpus.fixed_image () else entry.Corpus.image ()
        in
        let r = Ddt_baseline.Static.analyze ~name:entry.Corpus.name image in
        Format.printf "%a" Ddt_baseline.Static.pp r;
        0
  in
  Cmd.v
    (Cmd.info "static" ~doc:"Run the static-analysis baseline on a driver")
    Term.(const run $ driver_arg $ fixed_flag)

let analyze_cmd =
  let expect_clean_flag =
    let doc =
      "Exit nonzero unless the analysis finds a nonempty block universe \
       and zero static findings (CI smoke for known-clean drivers)."
    in
    Arg.(value & flag & info [ "expect-clean" ] ~doc)
  in
  let json_flag =
    let doc =
      "Emit the findings as a machine-readable JSON document (same static \
       row schema as the full session report) instead of the listing."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let rules_arg =
    let doc =
      Printf.sprintf
        "Comma-separated rule filter; a name selects the rule or, as a \
         prefix, a whole family (e.g. $(b,lock) selects every lock-* \
         rule). Known rules: %s."
        (String.concat ", " Ddt_staticx.Sfind.all_rules)
    in
    Arg.(value & opt (some string) None & info [ "rules" ] ~docv:"LIST" ~doc)
  in
  let run short fixed expect_clean json rules_opt =
    match find_entry short with
    | Error e -> prerr_endline e; 1
    | Ok entry ->
        let rules =
          Option.map
            (fun s ->
              String.split_on_char ',' s
              |> List.map String.trim
              |> List.filter (fun r -> r <> ""))
            rules_opt
        in
        let bad =
          match rules with
          | None -> []
          | Some rs ->
              List.filter
                (fun r ->
                  not
                    (List.exists
                       (fun known ->
                         known = r || String.starts_with ~prefix:r known)
                       Ddt_staticx.Sfind.all_rules))
                rs
        in
        if bad <> [] then begin
          Printf.eprintf "unknown rule(s): %s; known: %s\n"
            (String.concat ", " bad)
            (String.concat ", " Ddt_staticx.Sfind.all_rules);
          1
        end
        else begin
          let image =
            if fixed then entry.Corpus.fixed_image ()
            else entry.Corpus.image ()
          in
          let icfg = Ddt_staticx.Icfg.build image in
          let contracts, model =
            match entry.Corpus.driver_class with
            | Ddt_core.Config.Network ->
                ( Ddt_annot.Ndis_annotations.contracts,
                  Ddt_annot.Ndis_annotations.model )
            | Ddt_core.Config.Audio ->
                ( Ddt_annot.Portcls_annotations.contracts,
                  Ddt_annot.Portcls_annotations.model )
          in
          let findings =
            Ddt_staticx.Sfind.analyze ~contracts ~model ?rules icfg
          in
          if json then
            print_string
              (Ddt_core.Report_json.statics_to_string
                 ~driver:entry.Corpus.name
                 (List.map
                    (fun f ->
                      { Report.sf_rule = f.Ddt_staticx.Sfind.f_rule;
                        sf_func = f.Ddt_staticx.Sfind.f_func;
                        sf_pos = f.Ddt_staticx.Sfind.f_pos;
                        sf_message = f.Ddt_staticx.Sfind.f_msg;
                        sf_confirm = Report.Not_applicable })
                    findings))
          else begin
            Format.printf "%a" Ddt_staticx.Icfg.pp icfg;
            if findings = [] then Format.printf "no static findings@."
            else begin
              Format.printf "%d static finding(s):@." (List.length findings);
              List.iter
                (fun f -> Format.printf "  %a@." Ddt_staticx.Sfind.pp f)
                findings
            end
          end;
          if expect_clean then
            if icfg.Ddt_staticx.Icfg.universe = [] then begin
              prerr_endline "expect-clean: empty block universe";
              3
            end
            else if findings <> [] then begin
              prerr_endline "expect-clean: static findings present";
              3
            end
            else 0
          else 0
        end
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run the interprocedural static pre-analysis on a driver")
    Term.(
      const run $ driver_arg $ fixed_flag $ expect_clean_flag $ json_flag
      $ rules_arg)

let stress_cmd =
  let runs_arg =
    Arg.(value & opt int 10 & info [ "runs" ] ~doc:"Stress iterations.")
  in
  let run short fixed runs =
    match find_entry short with
    | Error e -> prerr_endline e; 1
    | Ok entry ->
        let cfg = Corpus.config ~fixed entry in
        let r = Ddt_baseline.Stress.run ~runs cfg in
        Format.printf
          "stress (%d concrete runs, %.2fs): %d bug(s) found@."
          r.Ddt_baseline.Stress.s_runs r.Ddt_baseline.Stress.s_wall_time
          (List.length r.Ddt_baseline.Stress.s_bugs);
        List.iter
          (fun b -> Format.printf "  %a@." Report.pp_bug b)
          r.Ddt_baseline.Stress.s_bugs;
        0
  in
  Cmd.v
    (Cmd.info "stress" ~doc:"Run the Driver-Verifier-style stress baseline")
    Term.(const run $ driver_arg $ fixed_flag $ runs_arg)

let disasm_cmd =
  let run short fixed =
    match find_entry short with
    | Error e -> prerr_endline e; 1
    | Ok entry ->
        let image =
          if fixed then entry.Corpus.fixed_image () else entry.Corpus.image ()
        in
        Format.printf "%a" Ddt_dvm.Disasm.pp_listing image;
        0
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble a driver binary")
    Term.(const run $ driver_arg $ fixed_flag)

let info_cmd =
  let run short fixed =
    match find_entry short with
    | Error e -> prerr_endline e; 1
    | Ok entry ->
        let image =
          if fixed then entry.Corpus.fixed_image () else entry.Corpus.image ()
        in
        let s = Ddt_dvm.Image.stats image in
        Format.printf
          "%s@.  binary size: %d bytes@.  code segment: %d bytes@.  \
           functions: %d@.  kernel imports: %d@."
          entry.Corpus.name s.Ddt_dvm.Image.binary_size
          s.Ddt_dvm.Image.code_size s.Ddt_dvm.Image.num_functions
          s.Ddt_dvm.Image.num_kernel_imports;
        0
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Print Table 1 style image statistics")
    Term.(const run $ driver_arg $ fixed_flag)

(* Save each bug's replay script (and optional crash dumps) to a
   directory, then verify one can be re-executed. *)
let evidence_cmd =
  let dir_arg =
    Arg.(value & opt string "ddt-evidence"
         & info [ "out" ] ~doc:"Output directory for evidence files.")
  in
  let run short fixed dir =
    match find_entry short with
    | Error e -> prerr_endline e; 1
    | Ok entry ->
        let cfg =
          { (Corpus.config ~fixed entry) with
            Ddt_core.Config.collect_crashdumps = true }
        in
        let r = Ddt_core.Ddt.test_driver cfg in
        (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        List.iteri
          (fun i b ->
            let path = Printf.sprintf "%s/%s-bug%d.replay" dir short (i + 1) in
            let oc = open_out path in
            output_string oc (Ddt_trace.Replay.to_string b.Report.b_replay);
            close_out oc;
            Format.printf "wrote %s (%s)@." path
              (Ddt_checkers.Report.string_of_kind b.Report.b_kind))
          r.Ddt_core.Session.r_bugs;
        List.iter
          (fun (state_id, dump) ->
            let path = Printf.sprintf "%s/%s-state%d.dmp" dir short state_id in
            let oc = open_out_bin path in
            output_bytes oc (Ddt_trace.Crashdump.to_bytes dump);
            close_out oc;
            Format.printf "wrote %s@." path)
          r.Ddt_core.Session.r_crashdumps;
        Format.printf "execution tree: %d states, depth %d@."
          (Ddt_trace.Tree.size r.Ddt_core.Session.r_tree)
          (Ddt_trace.Tree.depth r.Ddt_core.Session.r_tree);
        0
  in
  Cmd.v
    (Cmd.info "evidence"
       ~doc:"Run DDT and save replay scripts + crash dumps to disk")
    Term.(const run $ driver_arg $ fixed_flag $ dir_arg)

let replay_cmd =
  let script_arg =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"SCRIPT" ~doc:"Replay script file (.replay).")
  in
  let run short script_path =
    match find_entry short with
    | Error e -> prerr_endline e; 1
    | Ok entry ->
        let ic = open_in script_path in
        let n = in_channel_length ic in
        let text = really_input_string ic n in
        close_in ic;
        let script = Ddt_trace.Replay.of_string text in
        Format.printf "%a@." Ddt_trace.Replay.pp script;
        let cfg =
          { (Corpus.config entry) with
            Ddt_core.Config.replay = Some script }
        in
        let r = Ddt_core.Ddt.test_driver cfg in
        Format.printf "%a" Ddt_core.Ddt.pp_report r;
        if r.Ddt_core.Session.r_bugs = [] then begin
          Format.printf "replay did NOT reproduce any bug@.";
          1
        end
        else 0
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Re-execute a recorded failing path from its replay script")
    Term.(const run $ driver_arg $ script_arg)

let () =
  let doc = "DDT: testing closed-source binary device drivers" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "ddt_cli" ~doc)
          [ list_cmd; test_cmd; resume_cmd; serve_cmd; submit_cmd;
            static_cmd; analyze_cmd; stress_cmd; disasm_cmd; info_cmd;
            evidence_cmd; replay_cmd ]))
