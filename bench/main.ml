(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (§5), plus engine micro-benchmarks.

     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- table2    # one experiment

   Experiments: table1 table2 fig2 fig3 stress sdv synthetic ablation
   sched parallel memory solver micro. Absolute numbers differ from the
   paper (the substrate is a simulator, not a 2 GHz Xeon running Windows
   XP); the shapes are what each experiment checks.

   --json additionally writes BENCH_solver.json from the solver
   experiment, for tracking the perf trajectory across commits. *)

module Corpus = Ddt_drivers.Corpus
module Report = Ddt_checkers.Report
module Session = Ddt_core.Session
module Config = Ddt_core.Config
module Exec = Ddt_symexec.Exec

(* Set by --json: write the per-driver numbers of the solver and parallel
   experiments to BENCH_*.json so the perf trajectory can be tracked
   across commits. *)
let json_mode = ref false

let section title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==============================================================\n"

let run_ddt ?(fixed = false) ?(use_annotations = true) entry =
  Ddt_core.Ddt.test_driver (Corpus.config ~fixed ~use_annotations entry)

(* Count how many of the driver's expected Table 2 defects the report
   covers (by bug kind, with multiplicity). *)
let defects_covered entry (bugs : Report.bug list) =
  let found = List.map (fun b -> b.Report.b_kind) bugs in
  let remaining = ref found in
  List.fold_left
    (fun acc (kind, _) ->
      if List.mem kind !remaining then begin
        remaining :=
          (let rec drop = function
             | [] -> []
             | k :: rest -> if k = kind then rest else k :: drop rest
           in
           drop !remaining);
        acc + 1
      end
      else acc)
    0 entry.Corpus.expected_bugs

(* --- Table 1: characteristics of the driver corpus ---------------------- *)

let table1 () =
  section "Table 1: Characteristics of drivers used to evaluate DDT";
  Printf.printf "%-22s %12s %12s %10s %10s %8s\n" "Tested Driver" "Binary"
    "Code seg." "Functions" "Kernel fns" "Source?";
  List.iter
    (fun e ->
      let s = Ddt_dvm.Image.stats (e.Corpus.image ()) in
      Printf.printf "%-22s %10d B %10d B %10d %10d %8s\n" e.Corpus.name
        s.Ddt_dvm.Image.binary_size s.Ddt_dvm.Image.code_size
        s.Ddt_dvm.Image.num_functions s.Ddt_dvm.Image.num_kernel_imports
        (if e.Corpus.short = "pro100" then "Yes" else "No"))
    Corpus.all

(* --- Table 2: bugs found -------------------------------------------------- *)

let table2 () =
  section "Table 2: Bugs discovered by DDT (and fixed-variant control)";
  Printf.printf "%-22s %-18s %s\n" "Tested Driver" "Bug Type" "Description";
  let total = ref 0 in
  let covered = ref 0 and expected = ref 0 in
  List.iter
    (fun e ->
      let r = run_ddt e in
      total := !total + List.length r.Session.r_bugs;
      covered := !covered + defects_covered e r.Session.r_bugs;
      expected := !expected + List.length e.Corpus.expected_bugs;
      List.iter
        (fun b ->
          Printf.printf "%-22s %-18s %s\n" e.Corpus.name
            (Report.string_of_kind b.Report.b_kind)
            b.Report.b_message)
        r.Session.r_bugs)
    Corpus.all;
  Printf.printf
    "\ntotal findings: %d | seeded Table 2 defects covered: %d/%d (paper: 14)\n"
    !total !covered !expected;
  let fps = ref 0 in
  List.iter
    (fun e ->
      let r = run_ddt ~fixed:true e in
      fps := !fps + List.length r.Session.r_bugs)
    Corpus.all;
  Printf.printf "false positives on the fixed variants: %d (paper: 0)\n" !fps

(* --- Figures 2 and 3: coverage over time ---------------------------------- *)

let coverage_drivers = [ "rtl8029"; "pro100"; "ac97" ]

let figures () =
  section "Figure 2: relative basic-block coverage over time";
  let runs =
    List.map
      (fun short ->
        let e = Corpus.find short in
        (e, run_ddt e))
      coverage_drivers
  in
  List.iter
    (fun (e, r) ->
      Printf.printf "\n%s (%d basic blocks total):\n  %-10s %-12s %s\n"
        e.Corpus.name r.Session.r_total_blocks "time(s)" "instructions"
        "coverage";
      let total = float_of_int r.Session.r_total_blocks in
      (* Sample the curve at ~12 evenly spaced points. *)
      let points = r.Session.r_coverage in
      let n = List.length points in
      let step = max 1 (n / 12) in
      List.iteri
        (fun i (p : Session.coverage_point) ->
          if i mod step = 0 || i = n - 1 then
            Printf.printf "  %-10.3f %-12d %5.1f%%\n" p.Session.cp_time
              p.Session.cp_steps
              (100.0 *. float_of_int p.Session.cp_blocks /. total))
        points;
      Printf.printf
        "  final: %.1f%% (paper reaches its plateau within minutes)\n"
        (Session.coverage_percent r))
    runs;
  section "Figure 3: absolute covered basic blocks over time";
  List.iter
    (fun (e, r) ->
      Printf.printf "\n%s:\n  %-10s %s\n" e.Corpus.name "time(s)" "blocks";
      let points = r.Session.r_coverage in
      let n = List.length points in
      let step = max 1 (n / 12) in
      List.iteri
        (fun i (p : Session.coverage_point) ->
          if i mod step = 0 || i = n - 1 then
            Printf.printf "  %-10.3f %d\n" p.Session.cp_time
              p.Session.cp_blocks)
        points)
    runs

(* --- E1: the stress (Driver Verifier) baseline ----------------------------- *)

let stress () =
  section
    "E1: concrete stress baseline vs DDT (paper: Driver Verifier found \
     none of the 14 bugs)";
  Printf.printf "%-22s %14s %14s\n" "Driver" "DDT defects" "stress defects";
  let ddt_total = ref 0 and stress_total = ref 0 in
  List.iter
    (fun e ->
      let d = run_ddt e in
      let s = Ddt_baseline.Stress.run ~runs:10 (Corpus.config e) in
      let dc = defects_covered e d.Session.r_bugs in
      let sc = defects_covered e s.Ddt_baseline.Stress.s_bugs in
      ddt_total := !ddt_total + dc;
      stress_total := !stress_total + sc;
      Printf.printf "%-22s %14d %14d\n" e.Corpus.name dc sc)
    Corpus.all;
  Printf.printf "\ntotals: DDT %d, stress %d (paper shape: DDT 14, stress 0)\n"
    !ddt_total !stress_total

(* --- E2: SDV sample driver -------------------------------------------------- *)

let sdv_cfg image =
  Config.make ~driver_name:"sdv_sample" ~image ~driver_class:Config.Network
    ~descriptor:Ddt_drivers.Sdv_sample.descriptor
    ~registry:Ddt_drivers.Sdv_sample.registry ()

let contains (b : Report.bug) needle =
  let msg = b.Report.b_message in
  let n = String.length needle and m = String.length msg in
  let rec go i = i + n <= m && (String.sub msg i n = needle || go (i + 1)) in
  go 0

(* The 8 seeded defects, as report-marker predicates. *)
let sample_defect_markers : (string * (Report.bug -> bool)) list =
  [ ("double-acquire", fun b -> contains b "deadlock");
    ("extra-release", fun b -> contains b "not held");
    ("forgotten-release", fun b -> contains b "still held");
    ("wrong-variant", fun b -> contains b "IRQL-raising variant");
    ("wrong-irql", fun b -> contains b "IRQL_NOT_LESS_OR_EQUAL");
    ("out-of-order", fun b -> contains b "out-of-order");
    ("config-leak", fun b -> b.Report.b_kind = Report.Resource_leak);
    ("double-free", fun b -> contains b "double free") ]

let sdv () =
  section
    "E2: SDV-style static analysis vs DDT on the sample driver (8 seeded \
     bugs; paper: SDV 8 bugs in 12 min, DDT 8 in 4 min)";
  let image = Ddt_drivers.Sdv_sample.image () in
  let t0 = Unix.gettimeofday () in
  let d = Ddt_core.Ddt.test_driver (sdv_cfg image) in
  let ddt_time = Unix.gettimeofday () -. t0 in
  let covered =
    List.filter
      (fun (_, pred) -> List.exists pred d.Session.r_bugs)
      sample_defect_markers
  in
  let st = Ddt_baseline.Static.analyze ~name:"sdv_sample" image in
  Printf.printf "DDT:    %d/8 seeded defects (%d findings) in %.2fs\n"
    (List.length covered)
    (List.length d.Session.r_bugs)
    ddt_time;
  Printf.printf "static: %d findings in %.3fs\n"
    (List.length st.Ddt_baseline.Static.st_findings)
    st.Ddt_baseline.Static.st_wall_time;
  let d_fixed =
    Ddt_core.Ddt.test_driver (sdv_cfg (Ddt_drivers.Sdv_sample.fixed_image ()))
  in
  let st_fixed =
    Ddt_baseline.Static.analyze ~name:"sdv_sample-fixed"
      (Ddt_drivers.Sdv_sample.fixed_image ())
  in
  Printf.printf "fixed variant: DDT %d, static %d (both should be 0)\n"
    (List.length d_fixed.Session.r_bugs)
    (List.length st_fixed.Ddt_baseline.Static.st_findings);
  Printf.printf
    "(note: our SLAM-analog is a lightweight dataflow pass, so its absolute \
     time\n is tiny; the preserved shape is detection capability, see \
     EXPERIMENTS.md)\n"

(* --- E3: synthetic bugs ------------------------------------------------------ *)

let synthetic () =
  section
    "E3: five synthetic bugs (paper: SDV finds 2 + 1 false positive; DDT \
     finds 5 + 0)";
  Printf.printf "%-20s %6s %18s\n" "bug" "DDT" "static";
  let ddt_found = ref 0 and st_found = ref 0 and st_fp = ref 0 in
  List.iter
    (fun (name, img) ->
      let d = Ddt_core.Ddt.test_driver (sdv_cfg img) in
      let s = Ddt_baseline.Static.analyze ~name img in
      let ddt_hit = d.Session.r_bugs <> [] in
      let rule_of = function
        | "deadlock" -> "double-acquire"
        | "out_of_order" -> "out-of-order"
        | "extra_release" -> "extra-release"
        | "forgotten_release" -> "forgotten-release"
        | "wrong_irql" -> "wrong-irql"
        | _ -> "?"
      in
      let hits, fps =
        List.partition
          (fun f -> f.Ddt_baseline.Absint.fi_rule = rule_of name)
          s.Ddt_baseline.Static.st_findings
      in
      if ddt_hit then incr ddt_found;
      if hits <> [] then incr st_found;
      st_fp := !st_fp + List.length fps;
      Printf.printf "%-20s %6s %18s\n" name
        (if ddt_hit then "found" else "missed")
        (match hits, fps with
         | [], [] -> "missed"
         | [], _ -> Printf.sprintf "missed (+%d FP)" (List.length fps)
         | _, [] -> "found"
         | _, _ -> Printf.sprintf "found (+%d FP)" (List.length fps)))
    (Ddt_drivers.Sdv_sample.synthetic_images ());
  Printf.printf
    "\ntotals: DDT %d/5 + 0 FP | static %d/5 + %d FP (paper: 5+0 vs 2+1)\n"
    !ddt_found !st_found !st_fp

(* --- E4: annotation ablation -------------------------------------------------- *)

let ablation () =
  section
    "E4: annotations on/off (paper: races and hardware bugs survive; \
     leaks and segfaults are lost)";
  Printf.printf "%-22s %-34s %s\n" "Driver" "with annotations"
    "without annotations";
  let kinds bugs =
    List.map (fun b -> Report.string_of_kind b.Report.b_kind) bugs
    |> List.sort_uniq compare |> String.concat "+"
  in
  List.iter
    (fun e ->
      let w = run_ddt e in
      let wo = run_ddt ~use_annotations:false e in
      Printf.printf "%-22s %-34s %s\n" e.Corpus.name
        (Printf.sprintf "%d [%s]" (List.length w.Session.r_bugs)
           (kinds w.Session.r_bugs))
        (Printf.sprintf "%d [%s]" (List.length wo.Session.r_bugs)
           (kinds wo.Session.r_bugs)))
    Corpus.all

(* --- E5: memory behaviour ------------------------------------------------------ *)

let memory () =
  section "E5: state memory stays bounded (paper: prototype capped at 4 GB)";
  Printf.printf "%-22s %8s %8s %10s %10s %12s\n" "Driver" "states" "dropped"
    "cow depth" "live words" "major words";
  List.iter
    (fun e ->
      let before = (Gc.stat ()).Gc.live_words in
      let r = run_ddt e in
      let s = r.Session.r_stats in
      let after = (Gc.stat ()).Gc.live_words in
      Printf.printf "%-22s %8d %8d %10d %10d %12d\n" e.Corpus.name
        s.Exec.st_states_created s.Exec.st_states_dropped
        s.Exec.st_max_cow_depth s.Exec.st_live_words
        (max 0 (after - before)))
    Corpus.all

(* --- scheduler ablation ---------------------------------------------------------- *)

let sched () =
  section
    "Scheduler ablation: coverage under a tight budget per search strategy      (the EXE-style min-touch heuristic is the paper's default, §4.3)";
  Printf.printf "%-14s %10s %10s %8s\n" "strategy" "blocks" "of total" "bugs";
  let entry = Corpus.find "pro1000" in
  List.iter
    (fun (name, strategy) ->
      let exec_config =
        { Exec.default_config with Exec.strategy } in
      let cfg =
        { (Corpus.config entry) with
          Config.exec_config;
          max_total_steps = 40_000;
          plateau_steps = 35_000 }
      in
      let r = Ddt_core.Ddt.test_driver cfg in
      let covered =
        match List.rev r.Session.r_coverage with
        | [] -> 0
        | p :: _ -> p.Session.cp_blocks
      in
      Printf.printf "%-14s %10d %9.1f%% %8d\n" name covered
        (100.0 *. float_of_int covered /. float_of_int r.Session.r_total_blocks)
        (List.length r.Session.r_bugs))
    [ ("min-touch", Ddt_symexec.Sched.Min_touch);
      ("dfs", Ddt_symexec.Sched.Dfs);
      ("bfs", Ddt_symexec.Sched.Bfs);
      ("random", Ddt_symexec.Sched.Random_pick 7) ];
  Printf.printf
    "\n(min-touch -- the paper's default -- leads or ties here and is the \
     strategy that cannot be trapped by a device polling loop; dfs trails \
     by herding on fork siblings; at realistic budgets all strategies \
     converge under the coverage-plateau rule)\n"

(* --- parallel exploration (the paper's future-work direction, delivered) --------- *)

(* Set by --quick: a smoke-test subset of the parallel experiment for
   `make check` — two drivers, tight step budgets, no portfolio leg. *)
let quick_mode = ref false

type parallel_row = {
  pr_driver : string;
  pr_bugs : int;
  pr_walls : (int * float) list;       (* shared-frontier jobs -> wall s *)
  pr_portfolio_wall : float option;    (* 4-session portfolio fleet *)
  pr_steals : int;                     (* at the highest worker count *)
  pr_hit_rate : float;                 (* solver cache, highest-jobs run *)
  pr_cross_hits : int;                 (* cross-worker cache hits, ditto *)
  pr_bugs_match : bool;                (* all worker counts agree with 1 *)
}

let write_parallel_json rows path =
  let oc = open_out path in
  let pr fmt = Printf.fprintf oc fmt in
  pr "{\n  \"experiment\": \"parallel\",\n";
  pr "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  pr
    "  \"note\": \"shared-frontier: one session, N cooperating domains, \
     the fork tree explored once; portfolio4: 4 full redundant sessions. \
     speedup_vs_portfolio4 measures the redundant work the shared \
     frontier eliminates; on a single-core host same-tree wall times \
     barely change with the worker count.\",\n";
  pr "  \"drivers\": [\n";
  List.iteri
    (fun i r ->
      let walls =
        String.concat ", "
          (List.map
             (fun (j, w) -> Printf.sprintf "\"sf%d_wall_s\": %.4f" j w)
             r.pr_walls)
      in
      let seq = try List.assoc 1 r.pr_walls with Not_found -> 0.0 in
      let hi =
        List.fold_left (fun _ (_, w) -> w) 0.0 r.pr_walls
      in
      pr
        "    {\"driver\": %S, \"bugs\": %d, %s,%s\n     \"sf_steals\": %d, \
         \"cache_hit_rate\": %.4f, \"cross_worker_hits\": %d,\n     \
         \"speedup_sf_vs_seq\": %.3f,%s \"bugs_match\": %b}%s\n"
        r.pr_driver r.pr_bugs walls
        (match r.pr_portfolio_wall with
         | Some w -> Printf.sprintf " \"portfolio4_wall_s\": %.4f," w
         | None -> "")
        r.pr_steals r.pr_hit_rate r.pr_cross_hits
        (if hi > 0.0 then seq /. hi else 1.0)
        (match r.pr_portfolio_wall with
         | Some w when hi > 0.0 ->
             Printf.sprintf " \"speedup_vs_portfolio4\": %.3f," (w /. hi)
         | _ -> "")
        r.pr_bugs_match
        (if i = List.length rows - 1 then "" else ","))
    rows;
  pr "  ]\n}\n";
  close_out oc

let parallel () =
  let module P = Ddt_core.Parallel in
  let module Sv = Ddt_solver.Solver in
  section
    (if !quick_mode then
       "Parallel exploration smoke test (--quick): shared frontier, 2 \
        drivers, tight budgets"
     else
       "Parallel symbolic execution (par 6.1): one session's fork tree \
        explored by cooperating domains (shared work-stealing frontier + \
        shared sharded query cache) vs a redundant portfolio fleet");
  let drivers =
    if !quick_mode then [ "rtl8029"; "pcnet" ]
    else List.map (fun e -> e.Corpus.short) Corpus.all
  in
  let job_counts = if !quick_mode then [ 1; 2 ] else [ 1; 2; 4 ] in
  let config short =
    let cfg = Corpus.config (Corpus.find short) in
    if !quick_mode then
      { cfg with Config.max_total_steps = 60_000; plateau_steps = 50_000 }
    else cfg
  in
  let keys (r : P.result) =
    List.sort compare (List.map (fun b -> b.Report.b_key) r.P.p_bugs)
  in
  Printf.printf "%-16s %5s %10s %8s %6s %6s %8s %6s\n" "Driver" "jobs"
    "wall(s)" "steals" "hit%" "xhits" "mode" "match";
  let rows =
    List.map
      (fun short ->
        let cfg = config short in
        let base = ref [] in
        let walls = ref [] in
        let last = ref None in
        List.iter
          (fun jobs ->
            let s0 = Sv.stats () in
            let r = P.test_driver ~jobs ~mode:P.Shared_frontier cfg in
            let sd = Sv.diff_stats (Sv.stats ()) s0 in
            if jobs = 1 then base := keys r;
            walls := (jobs, r.P.p_wall_time) :: !walls;
            last := Some (r, sd);
            Printf.printf "%-16s %5d %10.2f %8d %5.1f%% %6d %8s %6s\n" short
              jobs r.P.p_wall_time r.P.p_steals
              (100.0 *. Sv.cache_hit_rate sd)
              r.P.p_cross_hits
              (P.mode_label r.P.p_mode)
              (if keys r = !base then "yes" else "NO"))
          job_counts;
        let r_last, sd_last = Option.get !last in
        let portfolio =
          if !quick_mode then None
          else begin
            let r = P.test_driver ~jobs:4 ~mode:P.Portfolio cfg in
            Printf.printf "%-16s %5d %10.2f %8s %6s %6s %8s %6s\n" short 4
              r.P.p_wall_time "-" "-" "-" (P.mode_label r.P.p_mode) "-";
            Some r.P.p_wall_time
          end
        in
        {
          pr_driver = short;
          pr_bugs = List.length r_last.P.p_bugs;
          pr_walls = List.rev !walls;
          pr_portfolio_wall = portfolio;
          pr_steals = r_last.P.p_steals;
          pr_hit_rate = Sv.cache_hit_rate sd_last;
          pr_cross_hits = r_last.P.p_cross_hits;
          pr_bugs_match = keys r_last = !base;
        })
      drivers
  in
  let matches = List.filter (fun r -> r.pr_bugs_match) rows in
  Printf.printf
    "\nbug reports identical across worker counts on %d/%d drivers | \
     total cross-worker cache hits %d\n"
    (List.length matches) (List.length rows)
    (List.fold_left (fun acc r -> acc + r.pr_cross_hits) 0 rows);
  (match
     List.filter (fun r -> r.pr_portfolio_wall <> None) rows
   with
   | [] -> ()
   | w ->
       let hi r = List.fold_left (fun _ (_, x) -> x) 0.0 r.pr_walls in
       let pw =
         List.fold_left
           (fun acc r -> acc +. Option.get r.pr_portfolio_wall)
           0.0 w
       in
       let sw = List.fold_left (fun acc r -> acc +. hi r) 0.0 w in
       Printf.printf
         "portfolio-4 fleet %.2fs vs shared-frontier-4 %.2fs: %.2fx less \
          wall time for the same tree (redundancy eliminated)\n"
         pw sw
         (if sw > 0.0 then pw /. sw else 1.0));
  if !json_mode && not !quick_mode then begin
    write_parallel_json rows "BENCH_parallel.json";
    Printf.printf "wrote BENCH_parallel.json\n"
  end

(* --- solver acceleration: slicing + query cache ---------------------------------- *)

type solver_row = {
  sr_driver : string;
  sr_base : Ddt_solver.Solver.stats;
  sr_base_wall : float;
  sr_base_bugs : string list;
  sr_accel : Ddt_solver.Solver.stats;
  sr_accel_wall : float;
  sr_accel_bugs : string list;
}

let write_solver_json rows path =
  let oc = open_out path in
  let module Sv = Ddt_solver.Solver in
  let pr fmt = Printf.fprintf oc fmt in
  let stats_json (s : Sv.stats) wall bugs =
    Printf.sprintf
      "{\"queries\": %d, \"group_solves\": %d, \"cache_exact_hits\": %d, \
       \"cache_subset_unsat_hits\": %d, \"cache_model_reuse_hits\": %d, \
       \"cache_misses\": %d, \"cache_hit_rate\": %.4f, \
       \"interval_solves\": %d, \"bitblast_solves\": %d, \
       \"cache_evictions\": %d, \"wall_s\": %.4f, \"bugs\": %d}"
      s.Sv.s_queries s.Sv.s_group_solves s.Sv.s_cache_exact_hits
      s.Sv.s_cache_subset_unsat_hits s.Sv.s_cache_model_reuse_hits
      s.Sv.s_cache_misses (Sv.cache_hit_rate s) s.Sv.s_interval_solves
      s.Sv.s_bitblast_solves s.Sv.s_cache_evictions wall (List.length bugs)
  in
  pr "{\n  \"experiment\": \"solver\",\n  \"drivers\": [\n";
  List.iteri
    (fun i r ->
      pr
        "    {\"driver\": %S,\n     \"baseline\": %s,\n     \"accelerated\": \
         %s,\n     \"speedup\": %.3f,\n     \"bugs_match\": %b}%s\n"
        r.sr_driver
        (stats_json r.sr_base r.sr_base_wall r.sr_base_bugs)
        (stats_json r.sr_accel r.sr_accel_wall r.sr_accel_bugs)
        (if r.sr_accel_wall > 0.0 then r.sr_base_wall /. r.sr_accel_wall
         else 1.0)
        (r.sr_base_bugs = r.sr_accel_bugs)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  pr "  ]\n}\n";
  close_out oc

let solver_bench () =
  section
    "Solver acceleration: independence slicing + counterexample query cache \
     (KLEE-style; baseline solves every query from scratch)";
  let module Sv = Ddt_solver.Solver in
  let run_with accel e =
    let cfg = Corpus.config e in
    let cfg =
      { cfg with
        Config.exec_config =
          { cfg.Config.exec_config with Exec.solver_accel = accel } }
    in
    let t0 = Unix.gettimeofday () in
    let r = Ddt_core.Ddt.test_driver cfg in
    (r, Unix.gettimeofday () -. t0)
  in
  let bug_keys (r : Session.result) =
    List.map (fun b -> b.Report.b_key) r.Session.r_bugs
    |> List.sort_uniq compare
  in
  Printf.printf "%-16s %9s %9s %9s %9s %6s %8s %5s\n" "Driver" "queries"
    "grp-slv" "bb-base" "bb-accel" "hit%" "speedup" "same";
  let rows =
    List.map
      (fun e ->
        let rb, tb = run_with false e in
        let ra, ta = run_with true e in
        let sb = rb.Session.r_stats.Exec.st_solver in
        let sa = ra.Session.r_stats.Exec.st_solver in
        let kb = bug_keys rb and ka = bug_keys ra in
        Printf.printf "%-16s %9d %9d %9d %9d %5.1f%% %7.2fx %5s\n"
          e.Corpus.short sa.Sv.s_queries sa.Sv.s_group_solves
          sb.Sv.s_bitblast_solves sa.Sv.s_bitblast_solves
          (100.0 *. Sv.cache_hit_rate sa)
          (if ta > 0.0 then tb /. ta else 1.0)
          (if kb = ka then "yes" else "NO");
        { sr_driver = e.Corpus.short; sr_base = sb; sr_base_wall = tb;
          sr_base_bugs = kb; sr_accel = sa; sr_accel_wall = ta;
          sr_accel_bugs = ka })
      Corpus.all
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let sumf f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows in
  let hits = sum (fun r -> Sv.cache_hits r.sr_accel) in
  let lookups =
    hits + sum (fun r -> r.sr_accel.Sv.s_cache_misses)
  in
  Printf.printf
    "\ntotals: bit-blasts %d -> %d | cache hit rate %.1f%% | wall %.2fs -> \
     %.2fs (%.2fx) | bug reports identical on %d/%d drivers\n"
    (sum (fun r -> r.sr_base.Sv.s_bitblast_solves))
    (sum (fun r -> r.sr_accel.Sv.s_bitblast_solves))
    (if lookups = 0 then 0.0
     else 100.0 *. float_of_int hits /. float_of_int lookups)
    (sumf (fun r -> r.sr_base_wall))
    (sumf (fun r -> r.sr_accel_wall))
    (let ta = sumf (fun r -> r.sr_accel_wall) in
     if ta > 0.0 then sumf (fun r -> r.sr_base_wall) /. ta else 1.0)
    (List.length
       (List.filter (fun r -> r.sr_base_bugs = r.sr_accel_bugs) rows))
    (List.length rows);
  if !json_mode then begin
    write_solver_json rows "BENCH_solver.json";
    Printf.printf "wrote BENCH_solver.json\n"
  end

(* --- static pre-analysis guidance ------------------------------------------------ *)

type static_row = {
  xr_driver : string;
  xr_reachable : int;
  xr_linear : int;
  xr_findings : int;
  xr_bugs_match : bool;
  xr_paths_base : int option;
  xr_paths_guided : int option;
  xr_cov_base : int;          (* covered reachable blocks, full budget *)
  xr_cov_guided : int;
  xr_budget_cov_base : int;   (* covered reachable blocks, tight budget *)
  xr_budget_cov_guided : int;
}

let write_static_json rows path =
  let oc = open_out path in
  let pr fmt = Printf.fprintf oc fmt in
  let opt = function None -> "null" | Some n -> string_of_int n in
  pr "{\n  \"experiment\": \"static\",\n  \"drivers\": [\n";
  List.iteri
    (fun i r ->
      pr
        "    {\"driver\": %S, \"reachable_blocks\": %d, \
         \"linear_sweep_blocks\": %d, \"static_findings\": %d, \
         \"bugs_match\": %b, \"paths_to_first_bug_min_touch\": %s, \
         \"paths_to_first_bug_min_dist\": %s, \
         \"covered_reachable_min_touch\": %d, \
         \"covered_reachable_min_dist\": %d, \
         \"budget_covered_min_touch\": %d, \
         \"budget_covered_min_dist\": %d}%s\n"
        r.xr_driver r.xr_reachable r.xr_linear r.xr_findings r.xr_bugs_match
        (opt r.xr_paths_base) (opt r.xr_paths_guided) r.xr_cov_base
        r.xr_cov_guided r.xr_budget_cov_base r.xr_budget_cov_guided
        (if i = List.length rows - 1 then "" else ","))
    rows;
  pr "  ]\n}\n";
  close_out oc

let static_bench () =
  section
    "Static pre-analysis guidance: ICFG distance-to-uncovered (min-dist) vs \
     the coverage counter alone (min-touch)";
  let drivers =
    if !quick_mode then [ "rtl8029"; "pcnet" ]
    else List.map (fun e -> e.Corpus.short) Corpus.all
  in
  let run short ~guided ~budget =
    let cfg = Corpus.config (Corpus.find short) in
    let cfg =
      match budget with
      | Some b -> { cfg with Config.max_total_steps = b; plateau_steps = b }
      | None ->
          if !quick_mode then
            { cfg with Config.max_total_steps = 60_000; plateau_steps = 50_000 }
          else cfg
    in
    if guided then
      { cfg with
        Config.exec_config =
          { cfg.Config.exec_config with
            Exec.static_guidance = true;
            strategy = Ddt_symexec.Sched.Min_dist } }
    else cfg
  in
  let bug_keys (r : Session.result) =
    List.sort compare (List.map (fun b -> b.Report.b_key) r.Session.r_bugs)
  in
  let budget = if !quick_mode then 15_000 else 40_000 in
  Printf.printf "%-16s %6s %6s %6s %5s %9s %9s %8s %8s\n" "Driver" "reach"
    "linear" "static" "same" "fb-touch" "fb-dist" "cov@B" "covD@B";
  let rows =
    List.map
      (fun short ->
        let rb = Ddt_core.Ddt.test_driver (run short ~guided:false ~budget:None) in
        let rg = Ddt_core.Ddt.test_driver (run short ~guided:true ~budget:None) in
        let tb = Ddt_core.Ddt.test_driver (run short ~guided:false ~budget:(Some budget)) in
        let tg = Ddt_core.Ddt.test_driver (run short ~guided:true ~budget:(Some budget)) in
        let same = bug_keys rb = bug_keys rg in
        let popt = function None -> "-" | Some n -> string_of_int n in
        Printf.printf "%-16s %6d %6d %6d %5s %9s %9s %8d %8d\n" short
          rb.Session.r_reachable_blocks rb.Session.r_total_blocks
          (List.length rb.Session.r_static)
          (if same then "yes" else "NO")
          (popt rb.Session.r_paths_to_first_bug)
          (popt rg.Session.r_paths_to_first_bug)
          tb.Session.r_covered_reachable tg.Session.r_covered_reachable;
        {
          xr_driver = short;
          xr_reachable = rb.Session.r_reachable_blocks;
          xr_linear = rb.Session.r_total_blocks;
          xr_findings = List.length rb.Session.r_static;
          xr_bugs_match = same;
          xr_paths_base = rb.Session.r_paths_to_first_bug;
          xr_paths_guided = rg.Session.r_paths_to_first_bug;
          xr_cov_base = rb.Session.r_covered_reachable;
          xr_cov_guided = rg.Session.r_covered_reachable;
          xr_budget_cov_base = tb.Session.r_covered_reachable;
          xr_budget_cov_guided = tg.Session.r_covered_reachable;
        })
      drivers
  in
  let wins =
    List.filter
      (fun r ->
        match (r.xr_paths_base, r.xr_paths_guided) with
        | Some b, Some g -> g <= b
        | None, None -> true
        | None, Some _ -> true  (* guided found a bug the baseline missed *)
        | Some _, None -> false)
      rows
  in
  Printf.printf
    "\nbug reports identical with guidance on/off on %d/%d drivers | \
     min-dist finds the first bug in <= the baseline's paths on %d/%d\n"
    (List.length (List.filter (fun r -> r.xr_bugs_match) rows))
    (List.length rows) (List.length wins) (List.length rows);
  if !json_mode then begin
    write_static_json rows "BENCH_static.json";
    Printf.printf "wrote BENCH_static.json\n"
  end

(* --- chaos / resilience ----------------------------------------------------------- *)

type chaos_row = {
  cr_driver : string;
  cr_bugs : int;
  cr_off_wall : float;        (* guard off (historical fail-fast engine) *)
  cr_on_wall : float;         (* guard on, fault-free *)
  cr_chaos_wall : float;      (* guard on, all injections enabled *)
  cr_bugs_match : bool;       (* chaos bug set = fault-free bug set *)
  cr_incidents : int;
  cr_restarts : int;
  cr_retries : int;
  cr_retry_recovered : int;
  cr_soft_retired : int;
  cr_governor_trips : int;
}

let write_chaos_json rows path =
  let oc = open_out path in
  let pr fmt = Printf.fprintf oc fmt in
  pr "{\n  \"experiment\": \"chaos\",\n";
  pr
    "  \"note\": \"guard_overhead compares the fault-free wall with the \
     supervision/quarantine layer on vs the historical fail-fast engine; \
     the chaos leg injects worker crashes, forced solver budget \
     exhaustions and simulated memory pressure and must reproduce the \
     fault-free bug set.\",\n";
  pr "  \"drivers\": [\n";
  List.iteri
    (fun i r ->
      pr
        "    {\"driver\": %S, \"bugs\": %d, \"guard_off_wall_s\": %.4f, \
         \"guard_on_wall_s\": %.4f, \"guard_overhead\": %.4f,\n     \
         \"chaos_wall_s\": %.4f, \"bugs_match\": %b, \"incidents\": %d, \
         \"worker_restarts\": %d,\n     \"solver_retries\": %d, \
         \"retry_recovered\": %d, \"soft_retired\": %d, \
         \"governor_trips\": %d}%s\n"
        r.cr_driver r.cr_bugs r.cr_off_wall r.cr_on_wall
        (if r.cr_off_wall > 0.0 then
           (r.cr_on_wall -. r.cr_off_wall) /. r.cr_off_wall
         else 0.0)
        r.cr_chaos_wall r.cr_bugs_match r.cr_incidents r.cr_restarts
        r.cr_retries r.cr_retry_recovered r.cr_soft_retired r.cr_governor_trips
        (if i = List.length rows - 1 then "" else ","))
    rows;
  pr "  ]\n}\n";
  close_out oc

let chaos_bench () =
  let module Sv = Ddt_solver.Solver in
  let module Guard = Ddt_symexec.Guard in
  section
    (if !quick_mode then
       "Chaos smoke test (--quick): fault injection on 2 drivers, tight \
        budgets"
     else
       "Chaos harness: worker crashes + solver budget exhaustion + memory \
        pressure; the session must survive, quarantine each fault as an \
        engine incident, and report the fault-free bug set");
  let drivers =
    if !quick_mode then [ "rtl8029"; "pcnet" ]
    else List.map (fun e -> e.Corpus.short) Corpus.all
  in
  let injections =
    { Guard.chaos_worker_crash_period = 25; chaos_solver_exhaust_period = 3;
      chaos_pressure_words = 50_000_000 }
  in
  let pressure_limits =
    { Ddt_core.Governor.soft_states = 0; soft_cow_depth = 0;
      soft_live_words = 1; min_states = 8; max_retire_per_trip = 1 }
  in
  let run short ~guard ~chaos =
    let cfg = Corpus.config (Corpus.find short) in
    let cfg =
      if !quick_mode then
        { cfg with Config.max_total_steps = 60_000; plateau_steps = 50_000 }
      else cfg
    in
    let cfg =
      if chaos then { cfg with Config.governor = Some pressure_limits }
      else cfg
    in
    let cfg =
      { cfg with
        Config.exec_config =
          { cfg.Config.exec_config with
            Exec.guard;
            chaos = (if chaos then Some injections else None) } }
    in
    (* cold query cache for every leg, so walls and injection points are
       comparable *)
    Sv.clear_cache ();
    let t0 = Unix.gettimeofday () in
    let r = Ddt_core.Ddt.test_driver cfg in
    (r, Unix.gettimeofday () -. t0)
  in
  let bug_keys (r : Session.result) =
    List.sort compare (List.map (fun b -> b.Report.b_key) r.Session.r_bugs)
  in
  Printf.printf "%-16s %9s %9s %9s %9s %5s %5s %5s %5s %5s\n" "Driver"
    "off(s)" "on(s)" "ovhd%" "chaos(s)" "same" "incid" "rst" "retry" "shed";
  let rows =
    List.map
      (fun short ->
        let roff, toff = run short ~guard:false ~chaos:false in
        let ron, ton = run short ~guard:true ~chaos:false in
        let rch, tch = run short ~guard:true ~chaos:true in
        let same =
          bug_keys roff = bug_keys ron && bug_keys ron = bug_keys rch
        in
        let s = rch.Session.r_stats in
        let sv = s.Exec.st_solver in
        Printf.printf "%-16s %9.2f %9.2f %8.1f%% %9.2f %5s %5d %5d %5d %5d\n"
          short toff ton
          (if toff > 0.0 then 100.0 *. (ton -. toff) /. toff else 0.0)
          tch
          (if same then "yes" else "NO")
          s.Exec.st_incidents s.Exec.st_worker_restarts sv.Sv.s_retries
          s.Exec.st_soft_retired;
        {
          cr_driver = short;
          cr_bugs = List.length rch.Session.r_bugs;
          cr_off_wall = toff;
          cr_on_wall = ton;
          cr_chaos_wall = tch;
          cr_bugs_match = same;
          cr_incidents = s.Exec.st_incidents;
          cr_restarts = s.Exec.st_worker_restarts;
          cr_retries = sv.Sv.s_retries;
          cr_retry_recovered = sv.Sv.s_retry_recovered;
          cr_soft_retired = s.Exec.st_soft_retired;
          cr_governor_trips = rch.Session.r_governor_trips;
        })
      drivers
  in
  let sumf f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let off = sumf (fun r -> r.cr_off_wall) in
  let on_ = sumf (fun r -> r.cr_on_wall) in
  Printf.printf
    "\nbug sets identical (off/on/chaos) on %d/%d drivers | guard overhead \
     %.1f%% fault-free | %d incidents quarantined, %d restarts, %d \
     escalated retries (%d recovered), %d states shed\n"
    (List.length (List.filter (fun r -> r.cr_bugs_match) rows))
    (List.length rows)
    (if off > 0.0 then 100.0 *. (on_ -. off) /. off else 0.0)
    (sum (fun r -> r.cr_incidents))
    (sum (fun r -> r.cr_restarts))
    (sum (fun r -> r.cr_retries))
    (sum (fun r -> r.cr_retry_recovered))
    (sum (fun r -> r.cr_soft_retired));
  if !json_mode then begin
    write_chaos_json rows "BENCH_chaos.json";
    Printf.printf "wrote BENCH_chaos.json\n"
  end

(* --- incremental solver sessions -------------------------------------------------- *)

type incr_row = {
  ir_driver : string;
  ir_off : Ddt_solver.Solver.stats;
  ir_off_wall : float;
  ir_off_bugs : string list;
  ir_on : Ddt_solver.Solver.stats;
  ir_on_wall : float;
  ir_on_bugs : string list;
}

let write_incr_json rows ~micro_wall_scratch ~micro_wall_incr ~micro_retained
    ~micro_verdicts_agree path =
  let module Sv = Ddt_solver.Solver in
  let oc = open_out path in
  let pr fmt = Printf.fprintf oc fmt in
  let leg (s : Sv.stats) wall bugs =
    Printf.sprintf
      "{\"queries\": %d, \"group_solves\": %d, \"bitblast_solves\": %d, \
       \"incr_queries\": %d, \"incr_model_hits\": %d, \
       \"incr_sat_solves\": %d, \"incr_learned_retained\": %d, \
       \"incr_frames_reused\": %d, \"incr_pushes\": %d, \"incr_pops\": %d, \
       \"incr_rebuilds\": %d, \"wall_s\": %.4f, \"bugs\": %d}"
      s.Sv.s_queries s.Sv.s_group_solves s.Sv.s_bitblast_solves
      s.Sv.s_incr_queries s.Sv.s_incr_model_hits s.Sv.s_incr_sat_solves
      s.Sv.s_incr_learned_retained s.Sv.s_incr_skipped_recanon
      s.Sv.s_incr_pushes s.Sv.s_incr_pops s.Sv.s_incr_rebuilds wall
      (List.length bugs)
  in
  pr "{\n  \"experiment\": \"incr\",\n";
  pr
    "  \"note\": \"per-state incremental solver sessions (push/pop + \
     activation literals + retained learned clauses) vs the from-scratch \
     pipeline; pr1 baseline for the same corpus was 15743 bit-blasts / \
     ~26.1s solver wall\",\n";
  pr "  \"drivers\": [\n";
  List.iteri
    (fun i r ->
      pr
        "    {\"driver\": %S,\n     \"scratch\": %s,\n     \"incremental\": \
         %s,\n     \"speedup\": %.3f,\n     \"bugs_match\": %b}%s\n"
        r.ir_driver
        (leg r.ir_off r.ir_off_wall r.ir_off_bugs)
        (leg r.ir_on r.ir_on_wall r.ir_on_bugs)
        (if r.ir_on_wall > 0.0 then r.ir_off_wall /. r.ir_on_wall else 1.0)
        (r.ir_off_bugs = r.ir_on_bugs)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  pr "  ],\n";
  pr
    "  \"session_microbench\": {\"scratch_wall_s\": %.4f, \
     \"incremental_wall_s\": %.4f, \"learned_clauses_retained\": %d, \
     \"verdicts_agree\": %b}\n"
    micro_wall_scratch micro_wall_incr micro_retained micro_verdicts_agree;
  pr "}\n";
  close_out oc

(* Repeated queries down one deepening path whose constraints only yield
   to bit-blasting (multiplication circuits): the worst case for the
   from-scratch pipeline and the best case for a session, which re-blasts
   nothing and carries its learned clauses from query to query. Returns
   (scratch wall, incremental wall, learned clauses retained, verdict
   parity). *)
let incr_session_micro () =
  let open Ddt_solver in
  let module Sv = Solver in
  let x = Expr.fresh_var Expr.W32 and y = Expr.fresh_var Expr.W32 in
  let product = Expr.binop Expr.Mul (Expr.var x) (Expr.var y) in
  (* Bounded factoring: x * y = c with 1 < x, y < 256 — opaque to the
     interval layer, and each query is a genuine conflict-driven search
     through the same multiplier circuit, so the session's retained
     clauses pay off query after query. Products are composites with no
     small pattern; each answered query excludes its product from the
     path (a concretize-then-negate loop, as the engine would). *)
  let composites =
    [ 143; 187; 209; 221; 247; 253; 299; 323; 391; 437; 493; 527;
      551; 589; 667; 713; 779; 817; 851; 899; 943; 989; 1003; 1073 ]
  in
  let bounds =
    [ Expr.cmp Expr.Ltu (Expr.var y) (Expr.word 256);
      Expr.cmp Expr.Ltu (Expr.var x) (Expr.word 256);
      Expr.cmp Expr.Ltu (Expr.word 1) (Expr.var x);
      Expr.cmp Expr.Ltu (Expr.word 1) (Expr.var y) ]
  in
  (* newest-first prefixes sharing tails physically, like a real path
     condition deepening one branch at a time *)
  let prefixes =
    List.rev
      (snd
         (List.fold_left
            (fun (cs, acc) c ->
              let cs' =
                Expr.not_ (Expr.cmp Expr.Eq product (Expr.word c)) :: cs
              in
              (cs', cs :: acc))
            (bounds, []) composites))
  in
  (* Odd queries probe a prime instead: x * y = p with 1 < x, y < 256 has
     no model, and refuting it is exactly the conflict-rich search where
     clauses retained from earlier queries prune the most. *)
  let primes =
    [ 149; 191; 211; 223; 251; 257; 307; 331; 397; 439; 499; 521;
      557; 587; 661; 719; 773; 811; 853; 907; 941; 991; 1009; 1069 ]
  in
  let probe k =
    let v =
      if k land 1 = 0 then List.nth composites k else List.nth primes k
    in
    Expr.cmp Expr.Eq product (Expr.word v)
  in
  (* scratch leg: every query re-blasts its whole constraint set *)
  Sv.clear_cache ();
  let t0 = Unix.gettimeofday () in
  let scratch_verdicts =
    List.mapi (fun k cs -> Sv.is_feasible (probe k :: cs)) prefixes
  in
  let scratch_wall = Unix.gettimeofday () -. t0 in
  (* incremental leg: one session follows the same deepening path *)
  Sv.clear_cache ();
  let s0 = Sv.stats () in
  let sess = Incr.create () in
  let t0 = Unix.gettimeofday () in
  let incr_verdicts =
    List.mapi (fun k cs -> Incr.feasible sess cs (probe k)) prefixes
  in
  let incr_wall = Unix.gettimeofday () -. t0 in
  let d = Sv.diff_stats (Sv.stats ()) s0 in
  (scratch_wall, incr_wall, d.Sv.s_incr_learned_retained,
   scratch_verdicts = incr_verdicts)

let incr_bench () =
  section
    (if !quick_mode then
       "Incremental solver sessions smoke test (--quick): 2 drivers, tight \
        budgets, session microbench"
     else
       "Incremental solver sessions: per-state push/pop + retained learned \
        clauses vs the from-scratch pipeline (identical bug reports \
        required)");
  let module Sv = Ddt_solver.Solver in
  let drivers =
    if !quick_mode then [ "rtl8029"; "pcnet" ]
    else List.map (fun e -> e.Corpus.short) Corpus.all
  in
  let bug_keys (r : Session.result) =
    List.map (fun b -> b.Report.b_key) r.Session.r_bugs
    |> List.sort_uniq compare
  in
  let run_with incr short =
    let cfg = Corpus.config (Corpus.find short) in
    let cfg =
      if !quick_mode then
        { cfg with Config.max_total_steps = 60_000; plateau_steps = 50_000 }
      else cfg
    in
    let cfg =
      { cfg with
        Config.exec_config =
          { cfg.Config.exec_config with Exec.solver_incr = incr } }
    in
    Sv.clear_cache ();
    let s0 = Sv.stats () in
    let t0 = Unix.gettimeofday () in
    let r = Ddt_core.Ddt.test_driver cfg in
    let wall = Unix.gettimeofday () -. t0 in
    (Sv.diff_stats (Sv.stats ()) s0, wall, bug_keys r)
  in
  Printf.printf "%-16s %8s %8s %9s %9s %8s %8s %8s %5s\n" "Driver" "bb-off"
    "bb-on" "sess-q" "reused" "wall-off" "wall-on" "rebuilds" "same";
  let rows =
    List.map
      (fun short ->
        let off, toff, koff = run_with false short in
        let on, ton, kon = run_with true short in
        Printf.printf "%-16s %8d %8d %9d %9d %7.2fs %7.2fs %8d %5s\n" short
          off.Sv.s_bitblast_solves on.Sv.s_bitblast_solves
          on.Sv.s_incr_queries on.Sv.s_incr_skipped_recanon toff ton
          on.Sv.s_incr_rebuilds
          (if koff = kon then "yes" else "NO");
        { ir_driver = short; ir_off = off; ir_off_wall = toff;
          ir_off_bugs = koff; ir_on = on; ir_on_wall = ton;
          ir_on_bugs = kon })
      drivers
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let sumf f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows in
  let mw_scratch, mw_incr, m_retained, m_agree = incr_session_micro () in
  Printf.printf
    "\ntotals: bit-blasts %d -> %d | session queries %d (%d model hits) | \
     frames reused %d | wall %.2fs -> %.2fs | bug reports identical on \
     %d/%d drivers\n"
    (sum (fun r -> r.ir_off.Sv.s_bitblast_solves))
    (sum (fun r -> r.ir_on.Sv.s_bitblast_solves))
    (sum (fun r -> r.ir_on.Sv.s_incr_queries))
    (sum (fun r -> r.ir_on.Sv.s_incr_model_hits))
    (sum (fun r -> r.ir_on.Sv.s_incr_skipped_recanon))
    (sumf (fun r -> r.ir_off_wall))
    (sumf (fun r -> r.ir_on_wall))
    (List.length (List.filter (fun r -> r.ir_off_bugs = r.ir_on_bugs) rows))
    (List.length rows);
  Printf.printf
    "session microbench (24 deepening bounded-factoring queries): scratch \
     %.3fs -> session %.3fs | %d learned clauses retained | verdicts %s\n"
    mw_scratch mw_incr m_retained
    (if m_agree then "agree" else "DISAGREE");
  if !json_mode then begin
    write_incr_json rows ~micro_wall_scratch:mw_scratch
      ~micro_wall_incr:mw_incr ~micro_retained:m_retained
      ~micro_verdicts_agree:m_agree "BENCH_incr.json";
    Printf.printf "wrote BENCH_incr.json\n"
  end

(* --- DBT block compilation -------------------------------------------------------- *)

type dbt_micro_row = {
  dm_name : string;
  dm_interp_sps : float; (* interpreted steps/second *)
  dm_dbt_sps : float;    (* compiled steps/second *)
}

type dbt_row = {
  dr_driver : string;
  dr_off_wall : float;
  dr_off_bugs : string list;
  dr_on_wall : float;
  dr_on_bugs : string list;
  dr_chaos_match : bool; (* chaos legs report identical bugs dbt on/off *)
  dr_stats : Exec.stats; (* from the dbt-on leg *)
}

(* Concrete-execution throughput: run a program to completion repeatedly
   for a fixed wall-time slice through the plain interpreter and through
   compiled superblocks, and report instructions/second for each. *)
let dbt_measure_concrete name img =
  let open Ddt_dvm in
  let execute use_dbt =
    let mem = Mem.create () in
    let loaded = Image.load img mem ~base:Layout.image_base in
    let env = Interp.create ~fuel:50_000_000 ~image:loaded mem in
    Cpu.set env.Interp.cpu Isa.sp Layout.stack_top;
    let addr = loaded.Image.base + img.Image.entry in
    (if use_dbt then begin
       let d = Dbt.create ~threshold:0 loaded in
       Dbt.compile_all d;
       ignore (Dbt.call_function d env ~addr ~args:[])
     end
     else ignore (Interp.call_function env ~addr ~args:[]));
    env.Interp.steps
  in
  let throughput use_dbt =
    ignore (execute use_dbt);
    (* warmup *)
    let slice = if !quick_mode then 0.2 else 0.6 in
    let t0 = Unix.gettimeofday () in
    let steps = ref 0 in
    while Unix.gettimeofday () -. t0 < slice do
      steps := !steps + execute use_dbt
    done;
    float_of_int !steps /. (Unix.gettimeofday () -. t0)
  in
  let interp_sps = throughput false in
  let dbt_sps = throughput true in
  Printf.printf "%-34s %12.0f %12.0f %7.1fx\n" name interp_sps dbt_sps
    (dbt_sps /. interp_sps);
  { dm_name = name; dm_interp_sps = interp_sps; dm_dbt_sps = dbt_sps }

(* The compiled path's best case and per-instruction dispatch's worst:
   a long unrolled ALU block in a tight loop, all operands in registers,
   so the whole loop body chains into one superblock. *)
let dbt_alu_image () =
  let unrolled =
    String.concat "\n        "
      (List.init 24 (fun i ->
           let r a = 2 + (a mod 6) in
           Printf.sprintf "add r%d, r%d, r%d" (r i) (r (i + 1)) (r (i + 2))))
  in
  Ddt_dvm.Asm.assemble ~name:"alu-loop"
    (Printf.sprintf {|
      .entry main
      .func main
      main:
        movi r1, 2000
        movi r2, 1
        movi r3, 2
        movi r4, 3
        movi r5, 5
        movi r6, 7
        movi r7, 11
      loop:
        jz r1, done
        %s
        sub r1, r1, 1
        jmp loop
      done:
        ret
    |} unrolled)

let dbt_minicc_image () =
  Ddt_minicc.Codegen.compile ~name:"minicc-loop" {|
    int driver_entry(void) {
      int acc = 0;
      int i;
      for (i = 0; i < 2000; i = i + 1) { acc = acc + i * 3; }
      return acc;
    }
  |}

let write_dbt_json micros rows path =
  let oc = open_out path in
  let pr fmt = Printf.fprintf oc fmt in
  pr "{\n  \"experiment\": \"dbt\",\n";
  pr
    "  \"note\": \"hot-block compilation to OCaml closures: concrete \
     throughput interpreter vs compiled superblocks, and full-session \
     bug-report parity with the guarded symbolic fast path on and \
     off\",\n";
  pr "  \"concrete_throughput\": [\n";
  List.iteri
    (fun i m ->
      pr
        "    {\"name\": %S, \"interp_steps_per_s\": %.0f, \
         \"dbt_steps_per_s\": %.0f, \"speedup\": %.2f}%s\n"
        m.dm_name m.dm_interp_sps m.dm_dbt_sps
        (m.dm_dbt_sps /. m.dm_interp_sps)
        (if i = List.length micros - 1 then "" else ","))
    micros;
  pr "  ],\n";
  pr "  \"drivers\": [\n";
  List.iteri
    (fun i r ->
      pr
        "    {\"driver\": %S, \"wall_off_s\": %.4f, \"wall_on_s\": %.4f, \
         \"bugs_off\": %d, \"bugs_on\": %d, \"bugs_match\": %b, \
         \"chaos_bugs_match\": %b, \"blocks_compiled\": %d, \
         \"superblocks_chained\": %d, \"guard_bails\": %d, \
         \"decompiled\": %d, \"compiled_steps\": %d, \"total_steps\": %d}%s\n"
        r.dr_driver r.dr_off_wall r.dr_on_wall
        (List.length r.dr_off_bugs)
        (List.length r.dr_on_bugs)
        (r.dr_off_bugs = r.dr_on_bugs)
        r.dr_chaos_match r.dr_stats.Exec.st_dbt_blocks
        r.dr_stats.Exec.st_dbt_superblocks r.dr_stats.Exec.st_dbt_guard_bails
        r.dr_stats.Exec.st_dbt_decompiled
        r.dr_stats.Exec.st_dbt_compiled_steps r.dr_stats.Exec.st_total_steps
        (if i = List.length rows - 1 then "" else ","))
    rows;
  pr "  ]\n}\n";
  close_out oc

let dbt_bench () =
  section
    (if !quick_mode then
       "DBT block compilation smoke test (--quick): throughput + parity \
        on 2 drivers"
     else
       "DBT block compilation: hot blocks as OCaml closures — concrete \
        throughput vs the interpreter, and full-corpus bug-report parity \
        (plain and under chaos)");
  Printf.printf "%-34s %12s %12s %8s\n" "Concrete throughput" "interp/s"
    "dbt/s" "speedup";
  let micros =
    [ dbt_measure_concrete "alu loop (24-instr superblock)" (dbt_alu_image ());
      dbt_measure_concrete "minicc compiled function" (dbt_minicc_image ()) ]
  in
  let drivers =
    if !quick_mode then [ "rtl8029"; "pcnet" ]
    else List.map (fun e -> e.Corpus.short) Corpus.all
  in
  let bug_keys (r : Session.result) =
    List.map (fun b -> b.Report.b_key) r.Session.r_bugs
    |> List.sort_uniq compare
  in
  let run_with ?chaos dbt short =
    let cfg = Corpus.config (Corpus.find short) in
    let cfg =
      if !quick_mode then
        { cfg with Config.max_total_steps = 60_000; plateau_steps = 50_000 }
      else
        { cfg with Config.max_total_steps = 150_000; plateau_steps = 100_000 }
    in
    let cfg =
      { cfg with
        Config.exec_config =
          { cfg.Config.exec_config with Exec.jobs = 1; dbt; chaos } }
    in
    Ddt_solver.Solver.clear_cache ();
    let t0 = Unix.gettimeofday () in
    let r = Session.run cfg in
    (r, Unix.gettimeofday () -. t0)
  in
  Printf.printf "\n%-16s %9s %9s %7s %7s %6s %9s %5s %5s\n" "Driver"
    "wall-off" "wall-on" "blocks" "chained" "bails" "comp-frac" "same"
    "chaos";
  let chaos_spec =
    { Ddt_symexec.Guard.chaos_worker_crash_period = 25;
      chaos_solver_exhaust_period = 3; chaos_pressure_words = 50_000_000 }
  in
  let rows =
    List.map
      (fun short ->
        let roff, toff = run_with false short in
        let ron, ton = run_with true short in
        let coff, _ = run_with ~chaos:chaos_spec false short in
        let con, _ = run_with ~chaos:chaos_spec true short in
        let st = ron.Session.r_stats in
        let frac =
          float_of_int st.Exec.st_dbt_compiled_steps
          /. float_of_int (max 1 st.Exec.st_total_steps)
        in
        Printf.printf "%-16s %8.2fs %8.2fs %7d %7d %6d %8.0f%% %5s %5s\n"
          short toff ton st.Exec.st_dbt_blocks st.Exec.st_dbt_superblocks
          st.Exec.st_dbt_guard_bails (100.0 *. frac)
          (if bug_keys roff = bug_keys ron then "yes" else "NO")
          (if bug_keys coff = bug_keys con then "yes" else "NO");
        { dr_driver = short; dr_off_wall = toff; dr_off_bugs = bug_keys roff;
          dr_on_wall = ton; dr_on_bugs = bug_keys ron;
          dr_chaos_match = bug_keys coff = bug_keys con; dr_stats = st })
      drivers
  in
  let same =
    List.length (List.filter (fun r -> r.dr_off_bugs = r.dr_on_bugs) rows)
  in
  let chaos_same = List.length (List.filter (fun r -> r.dr_chaos_match) rows) in
  Printf.printf
    "\ntotals: bug reports identical on %d/%d drivers (%d/%d under chaos)\n"
    same (List.length rows) chaos_same (List.length rows);
  if !json_mode then begin
    write_dbt_json micros rows "BENCH_dbt.json";
    Printf.printf "wrote BENCH_dbt.json\n"
  end

(* --- state merging at post-dominators ------------------------------------------- *)

type merge_row = {
  mr_driver : string;
  mr_off_wall : float;
  mr_off_bugs : string list;
  mr_off_states : int;
  mr_off_cov : int;
  mr_on_wall : float;
  mr_on_bugs : string list;
  mr_on_states : int;
  mr_on_cov : int;
  mr_chaos_match : bool; (* chaos legs report identical bugs merge on/off *)
  mr_stats : Exec.stats; (* from the merge-on leg *)
}

let write_merge_json rows path =
  let oc = open_out path in
  let pr fmt = Printf.fprintf oc fmt in
  pr "{\n  \"experiment\": \"merge\",\n";
  pr
    "  \"note\": \"dynamic state merging at post-dominators \
     (veritesting): sibling states fused into ite-lifted survivors; \
     state counts and wall time merging off vs on, with bug-report \
     parity plain and under chaos\",\n";
  pr "  \"drivers\": [\n";
  List.iteri
    (fun i r ->
      pr
        "    {\"driver\": %S, \"wall_off_s\": %.4f, \"wall_on_s\": %.4f, \
         \"states_off\": %d, \"states_on\": %d, \"state_ratio\": %.1f, \
         \"covered_off\": %d, \"covered_on\": %d, \"bugs_off\": %d, \
         \"bugs_on\": %d, \"bugs_match\": %b, \"chaos_bugs_match\": %b, \
         \"merged_states\": %d, \"merge_ites\": %d, \
         \"merge_forks_avoided\": %d, \"merge_refusals\": %d}%s\n"
        r.mr_driver r.mr_off_wall r.mr_on_wall r.mr_off_states r.mr_on_states
        (float_of_int r.mr_off_states /. float_of_int (max 1 r.mr_on_states))
        r.mr_off_cov r.mr_on_cov
        (List.length r.mr_off_bugs)
        (List.length r.mr_on_bugs)
        (r.mr_off_bugs = r.mr_on_bugs)
        r.mr_chaos_match r.mr_stats.Exec.st_merged_states
        r.mr_stats.Exec.st_merge_ites r.mr_stats.Exec.st_merge_forks_avoided
        r.mr_stats.Exec.st_merge_refusals
        (if i = List.length rows - 1 then "" else ","))
    rows;
  pr "  ]\n}\n";
  close_out oc

let merge_bench () =
  section
    (if !quick_mode then
       "State merging smoke test (--quick): parity + state counts on 2 \
        drivers"
     else
       "State merging at post-dominators: frontier sizes and bug-report \
        parity with merging off vs on (plain and under chaos)");
  let drivers =
    if !quick_mode then [ "rtl8029"; "deeploop" ]
    else List.map (fun e -> e.Corpus.short) Corpus.all
  in
  let bug_keys (r : Session.result) =
    List.map (fun b -> b.Report.b_key) r.Session.r_bugs
    |> List.sort_uniq compare
  in
  let run_with ?chaos merging short =
    let cfg = Corpus.config (Corpus.find short) in
    let cfg =
      if !quick_mode then
        { cfg with Config.max_total_steps = 60_000; plateau_steps = 50_000 }
      else
        { cfg with Config.max_total_steps = 150_000; plateau_steps = 100_000 }
    in
    let cfg =
      { cfg with
        Config.exec_config =
          { cfg.Config.exec_config with
            Exec.jobs = 1; state_merging = merging; chaos } }
    in
    Ddt_solver.Solver.clear_cache ();
    let t0 = Unix.gettimeofday () in
    let r = Session.run cfg in
    (r, Unix.gettimeofday () -. t0)
  in
  Printf.printf "\n%-16s %9s %9s %8s %8s %6s %6s %7s %5s %5s\n" "Driver"
    "wall-off" "wall-on" "st-off" "st-on" "ratio" "fused" "avoided" "same"
    "chaos";
  let chaos_spec =
    { Ddt_symexec.Guard.chaos_worker_crash_period = 25;
      chaos_solver_exhaust_period = 3; chaos_pressure_words = 50_000_000 }
  in
  let rows =
    List.map
      (fun short ->
        let roff, toff = run_with false short in
        let ron, ton = run_with true short in
        let coff, _ = run_with ~chaos:chaos_spec false short in
        let con, _ = run_with ~chaos:chaos_spec true short in
        let st = ron.Session.r_stats in
        let s_off = roff.Session.r_stats.Exec.st_states_created
        and s_on = ron.Session.r_stats.Exec.st_states_created in
        Printf.printf
          "%-16s %8.2fs %8.2fs %8d %8d %5.1fx %6d %7d %5s %5s\n" short toff
          ton s_off s_on
          (float_of_int s_off /. float_of_int (max 1 s_on))
          st.Exec.st_merged_states st.Exec.st_merge_forks_avoided
          (if bug_keys roff = bug_keys ron then "yes" else "NO")
          (if bug_keys coff = bug_keys con then "yes" else "NO");
        { mr_driver = short; mr_off_wall = toff; mr_off_bugs = bug_keys roff;
          mr_off_states = s_off;
          mr_off_cov = roff.Session.r_covered_reachable; mr_on_wall = ton;
          mr_on_bugs = bug_keys ron; mr_on_states = s_on;
          mr_on_cov = ron.Session.r_covered_reachable;
          mr_chaos_match = bug_keys coff = bug_keys con; mr_stats = st })
      drivers
  in
  let same =
    List.length (List.filter (fun r -> r.mr_off_bugs = r.mr_on_bugs) rows)
  in
  let chaos_same =
    List.length (List.filter (fun r -> r.mr_chaos_match) rows)
  in
  Printf.printf
    "\ntotals: bug reports identical on %d/%d drivers (%d/%d under chaos)\n"
    same (List.length rows) chaos_same (List.length rows);
  (* The headline claim: the deep-loop driver's exponential frontier
     collapses by at least an order of magnitude at equal coverage. *)
  (match List.find_opt (fun r -> r.mr_driver = "deeploop") rows with
   | Some r ->
       Printf.printf
         "deeploop: %d states unmerged vs %d merged (%.1fx), coverage %d vs \
          %d reachable blocks — %s\n"
         r.mr_off_states r.mr_on_states
         (float_of_int r.mr_off_states /. float_of_int (max 1 r.mr_on_states))
         r.mr_off_cov r.mr_on_cov
         (if r.mr_on_states * 10 <= r.mr_off_states
             && r.mr_on_cov = r.mr_off_cov
          then "10x collapse at equal coverage HOLDS"
          else "10x collapse DOES NOT HOLD")
   | None -> ());
  if !json_mode then begin
    write_merge_json rows "BENCH_merge.json";
    Printf.printf "wrote BENCH_merge.json\n"
  end

(* --- micro-benchmarks ----------------------------------------------------------- *)

let bechamel_run name fn =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage fn) in
  let raw =
    let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
    Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] test
  in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  Hashtbl.iter
    (fun test_name est ->
      match Analyze.OLS.estimates est with
      | Some [ ns ] -> Printf.printf "  %-40s %12.1f ns/run\n" test_name ns
      | _ -> Printf.printf "  %-40s (no estimate)\n" test_name)
    results

let micro () =
  section "Micro-benchmarks (Bechamel): engine building blocks";
  let img =
    Ddt_minicc.Codegen.compile ~name:"bench" {|
      int driver_entry(void) {
        int acc = 0;
        int i;
        for (i = 0; i < 100; i = i + 1) { acc = acc + i * 3; }
        return acc;
      }
    |}
  in
  let mem = Ddt_dvm.Mem.create () in
  let loaded = Ddt_dvm.Image.load img mem ~base:Ddt_dvm.Layout.image_base in
  let entry = loaded.Ddt_dvm.Image.base + img.Ddt_dvm.Image.entry in
  bechamel_run "concrete interp: 600-instr function" (fun () ->
      let env = Ddt_dvm.Interp.create ~image:loaded mem in
      Ddt_dvm.Cpu.set env.Ddt_dvm.Interp.cpu Ddt_dvm.Isa.sp
        Ddt_dvm.Layout.stack_top;
      ignore (Ddt_dvm.Interp.call_function env ~addr:entry ~args:[]));
  let open Ddt_solver in
  bechamel_run "solver: registry-param comparison" (fun () ->
      let v = Expr.fresh_var Expr.W32 in
      ignore
        (Solver.check
           [ Expr.cmp Expr.Les (Expr.word 0) (Expr.var v);
             Expr.cmp Expr.Ltu (Expr.var v) (Expr.word 8) ]));
  bechamel_run "solver: bit-blasted multiplication" (fun () ->
      let v = Expr.fresh_var Expr.W32 in
      ignore
        (Solver.check
           [ Expr.cmp Expr.Eq
               (Expr.binop Expr.Mul (Expr.var v) (Expr.word 3))
               (Expr.word 21);
             Expr.cmp Expr.Ltu (Expr.var v) (Expr.word 256) ]));
  let base = Ddt_dvm.Mem.create () in
  let sm = Ddt_symexec.Symmem.create ~base ~symdev:None in
  for i = 0 to 255 do
    Ddt_symexec.Symmem.write_u32 sm (0x1000 + (4 * i)) (Expr.word i)
  done;
  bechamel_run "symmem: fork + 16 writes + 16 reads" (fun () ->
      let child = Ddt_symexec.Symmem.fork sm in
      for i = 0 to 15 do
        Ddt_symexec.Symmem.write_u32 child (0x2000 + (4 * i)) (Expr.word i)
      done;
      for i = 0 to 15 do
        ignore (Ddt_symexec.Symmem.read_u32 child (0x1000 + (4 * i)))
      done)

(* --- static race / lockset experiment -------------------------------------------- *)

type staticrace_row = {
  sr_driver : string;
  sr_buggy_warnings : int;       (* interprocedural (lock/irql/race) rules *)
  sr_fixed_warnings : int;       (* same rules on the fixed variant: FPs *)
  sr_baseline_buggy : int;       (* intraprocedural absint baseline *)
  sr_baseline_fixed : int;
  sr_rules : string list;        (* rules that fired on the buggy variant *)
}

(* The interprocedural rule families added by [Ddt_staticx.Lockirql] and
   [Ddt_staticx.Racepair]; the syntactic [Sfind] rules are excluded so
   the comparison is new-analysis vs the absint baseline. *)
let interproc_rules = [ "lock-"; "irql-"; "race-" ]

let is_interproc rule =
  List.exists (fun p -> String.starts_with ~prefix:p rule) interproc_rules

let staticx_warnings entry ~fixed =
  let image =
    if fixed then entry.Corpus.fixed_image () else entry.Corpus.image ()
  in
  let icfg = Ddt_staticx.Icfg.build image in
  let contracts, model =
    match entry.Corpus.driver_class with
    | Config.Network ->
        (Ddt_annot.Ndis_annotations.contracts, Ddt_annot.Ndis_annotations.model)
    | Config.Audio ->
        ( Ddt_annot.Portcls_annotations.contracts,
          Ddt_annot.Portcls_annotations.model )
  in
  List.filter
    (fun f -> is_interproc f.Ddt_staticx.Sfind.f_rule)
    (Ddt_staticx.Sfind.analyze ~contracts ~model icfg)

let write_staticrace_json rows ~fixed_fps ~confirm_driver ~confirm_rule
    ~confirmed_by ~unconfirmed path =
  let oc = open_out path in
  let pr fmt = Printf.fprintf oc fmt in
  pr "{\n  \"experiment\": \"staticrace\",\n";
  pr
    "  \"note\": \"interprocedural lockset/IRQL + race warnings (buggy vs \
     fixed variants) against the intraprocedural absint baseline; \
     fixed-variant warnings are false positives and must be zero\",\n";
  pr "  \"fixed_variant_false_positives\": %d,\n" fixed_fps;
  pr "  \"confirmation\": {\"driver\": %S, \"rule\": %S, \"confirmed_by\": %S, \
      \"unconfirmed_warnings\": %d},\n"
    confirm_driver confirm_rule confirmed_by unconfirmed;
  pr "  \"drivers\": [\n";
  List.iteri
    (fun i r ->
      pr
        "    {\"driver\": %S, \"staticx_buggy\": %d, \"staticx_fixed\": %d, \
         \"baseline_buggy\": %d, \"baseline_fixed\": %d, \"rules\": [%s]}%s\n"
        r.sr_driver r.sr_buggy_warnings r.sr_fixed_warnings r.sr_baseline_buggy
        r.sr_baseline_fixed
        (String.concat ", " (List.map (Printf.sprintf "%S") r.sr_rules))
        (if i = List.length rows - 1 then "" else ","))
    rows;
  pr "  ]\n}\n";
  close_out oc

let staticrace_bench () =
  section
    (if !quick_mode then
       "Static race/lockset smoke test (--quick): seeded corpus + \
        fixed-variant FP check + one directed confirmation"
     else
       "Static race/lockset analysis: interprocedural warnings (buggy vs \
        fixed) vs the absint baseline, with directed symbolic confirmation");
  let drivers =
    if !quick_mode then [ "rtl8029"; "ac97" ]
    else List.map (fun e -> e.Corpus.short) Corpus.all
  in
  Printf.printf "%-12s %12s %12s %14s %14s\n" "Driver" "staticx/bug"
    "staticx/fix" "baseline/bug" "baseline/fix";
  let rows =
    List.map
      (fun short ->
        let e = Corpus.find short in
        let wb = staticx_warnings e ~fixed:false in
        let wf = staticx_warnings e ~fixed:true in
        let base ~fixed =
          let image = if fixed then e.Corpus.fixed_image () else e.Corpus.image () in
          List.length
            (Ddt_baseline.Static.analyze ~name:short image)
              .Ddt_baseline.Static.st_findings
        in
        let bb = base ~fixed:false and bf = base ~fixed:true in
        Printf.printf "%-12s %12d %12d %14d %14d\n" short (List.length wb)
          (List.length wf) bb bf;
        {
          sr_driver = short;
          sr_buggy_warnings = List.length wb;
          sr_fixed_warnings = List.length wf;
          sr_baseline_buggy = bb;
          sr_baseline_fixed = bf;
          sr_rules =
            List.sort_uniq compare
              (List.map (fun f -> f.Ddt_staticx.Sfind.f_rule) wb);
        })
      drivers
  in
  (* The sdv sample: the lockset rules must flag all six statically-
     visible seeded lock/IRQL defects, none on the fixed image. *)
  let sdv_rules img =
    let icfg = Ddt_staticx.Icfg.build img in
    List.filter is_interproc
      (List.map
         (fun f -> f.Ddt_staticx.Sfind.f_rule)
         (Ddt_staticx.Sfind.analyze
            ~contracts:Ddt_annot.Ndis_annotations.contracts
            ~model:Ddt_annot.Ndis_annotations.model icfg))
  in
  let sdv_buggy = sdv_rules (Ddt_drivers.Sdv_sample.image ()) in
  let sdv_fixed = sdv_rules (Ddt_drivers.Sdv_sample.fixed_image ()) in
  Printf.printf "%-12s %12d %12d %14s %14s\n" "sdv_sample"
    (List.length sdv_buggy) (List.length sdv_fixed) "-" "-";
  let fixed_fps =
    List.fold_left (fun a r -> a + r.sr_fixed_warnings) 0 rows
    + List.length sdv_fixed
  in
  (* Directed confirmation: a guided session on rtl8029's buggy variant.
     Its static race warning (the timer armed from interrupt context
     before initialization) becomes a permanent distance goal; the
     dynamic race the session finds in the same function must promote the
     warning to Confirmed. *)
  let e = Corpus.find "rtl8029" in
  let cfg = Corpus.config e in
  let cfg =
    { cfg with
      Config.exec_config =
        { cfg.Config.exec_config with
          Exec.static_guidance = true;
          strategy = Ddt_symexec.Sched.Min_dist } }
  in
  let r = Ddt_core.Ddt.test_driver cfg in
  let confirmed, unconfirmed =
    List.partition
      (fun sf ->
        match sf.Report.sf_confirm with Report.Confirmed _ -> true | _ -> false)
      (List.filter
         (fun sf -> is_interproc sf.Report.sf_rule)
         r.Session.r_static)
  in
  let confirm_rule, confirmed_by =
    match confirmed with
    | sf :: _ ->
        ( sf.Report.sf_rule,
          match sf.Report.sf_confirm with
          | Report.Confirmed k -> k
          | _ -> "" )
    | [] -> ("", "")
  in
  Printf.printf
    "\nsdv_sample lock/IRQL warnings: %d buggy / %d fixed (expect 6 / 0)\n"
    (List.length sdv_buggy) (List.length sdv_fixed);
  Printf.printf "fixed-variant false positives: %d (must be 0)\n" fixed_fps;
  Printf.printf
    "directed confirmation on rtl8029: %d confirmed, %d unconfirmed%s\n"
    (List.length confirmed) (List.length unconfirmed)
    (match confirmed with
     | sf :: _ ->
         Printf.sprintf " (%s -> %s)" sf.Report.sf_rule
           (match sf.Report.sf_confirm with
            | Report.Confirmed k -> k
            | _ -> "?")
     | [] -> "");
  if !json_mode then begin
    write_staticrace_json rows ~fixed_fps ~confirm_driver:"rtl8029"
      ~confirm_rule ~confirmed_by ~unconfirmed:(List.length unconfirmed)
      "BENCH_staticrace.json";
    Printf.printf "wrote BENCH_staticrace.json\n"
  end;
  if fixed_fps > 0 then begin
    Printf.printf "FAIL: static warnings on fixed variants\n";
    exit 1
  end;
  if confirmed = [] then begin
    Printf.printf "FAIL: no race warning was dynamically confirmed\n";
    exit 1
  end

(* --- durable exploration: checkpoint overhead, resume, warm start --------------- *)

type resume_row = {
  du_driver : string;
  du_scratch_wall : float;       (* uninterrupted, no checkpointing *)
  du_ckpt_wall : float;          (* same run with periodic checkpoints *)
  du_resume_wall : float;        (* resumed from the leftover mid-run ckpt *)
  du_resume_identical : bool;    (* resumed JSON = oracle JSON, byte for byte *)
  du_cold_blasts : int;          (* bit-blasts with an empty store *)
  du_warm_blasts : int;          (* bit-blasts with the store warmed *)
  du_warm_hits : int;            (* persistent-store cache hits *)
  du_warm_identical : bool;      (* warm JSON = cold JSON *)
}

let write_resume_json rows path =
  let oc = open_out path in
  let pr fmt = Printf.fprintf oc fmt in
  pr "{\n  \"experiment\": \"resume\",\n";
  pr
    "  \"note\": \"durable exploration: periodic checkpoint overhead at \
     ~4 checkpoints per run, kill-resume wall time vs from-scratch (the \
     resumed report must be byte-identical), and warm-start bit-blast \
     reduction from the persistent solver store\",\n";
  pr "  \"drivers\": [\n";
  List.iteri
    (fun i r ->
      pr
        "    {\"driver\": %S, \"wall_scratch_s\": %.4f, \"wall_ckpt_s\": \
         %.4f, \"ckpt_overhead_pct\": %.1f, \"wall_resume_s\": %.4f, \
         \"resume_identical\": %b, \"bitblasts_cold\": %d, \
         \"bitblasts_warm\": %d, \"warm_store_hits\": %d, \
         \"warm_identical\": %b}%s\n"
        r.du_driver r.du_scratch_wall r.du_ckpt_wall
        (100.0
         *. ((r.du_ckpt_wall -. r.du_scratch_wall)
             /. Float.max 1e-6 r.du_scratch_wall))
        r.du_resume_wall r.du_resume_identical r.du_cold_blasts
        r.du_warm_blasts r.du_warm_hits r.du_warm_identical
        (if i = List.length rows - 1 then "" else ","))
    rows;
  pr "  ]\n}\n";
  close_out oc

let resume_bench () =
  section
    (if !quick_mode then
       "Durable exploration smoke test (--quick): checkpoint/resume + \
        warm start on 2 drivers"
     else
       "Durable exploration: checkpoint overhead, kill-resume parity and \
        persistent-store warm start across the corpus");
  let drivers =
    if !quick_mode then [ "rtl8029"; "pro100" ]
    else List.map (fun e -> e.Corpus.short) Corpus.all
  in
  let workdir =
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "ddt_bench_resume_%d" (Unix.getpid ()))
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d
  in
  let base_cfg short =
    let cfg = Corpus.config (Corpus.find short) in
    { cfg with
      Config.exec_config = { cfg.Config.exec_config with Exec.jobs = 1 } }
  in
  let timed f =
    Ddt_solver.Solver.clear_cache ();
    Ddt_solver.Expr.reset_var_counter ();
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let json r = Ddt_core.Report_json.to_string (Ddt_core.Report_json.of_result r) in
  let blasts (r : Session.result) =
    r.Session.r_stats.Exec.st_solver.Ddt_solver.Solver.s_bitblast_solves
  in
  let phits (r : Session.result) =
    r.Session.r_stats.Exec.st_solver.Ddt_solver.Solver.s_cache_persist_hits
  in
  Printf.printf "\n%-12s %9s %9s %7s %9s %6s %7s %7s %6s %5s\n" "Driver"
    "scratch" "w/ckpt" "ovh%" "resume" "ident" "blast-c" "blast-w" "hits"
    "warm";
  let rows =
    List.map
      (fun short ->
        let ckpt = Filename.concat workdir (short ^ ".ckpt") in
        let store = Filename.concat workdir (short ^ ".store") in
        (try Sys.remove ckpt with Sys_error _ -> ());
        let oracle, t_scratch = timed (fun () -> Session.run (base_cfg short)) in
        (* Interval scaled to the driver's actual step count so every
           driver takes a handful of checkpoints (deeploop runs only a
           few thousand steps; a fixed interval would never fire). *)
        let every =
          max 500 (oracle.Session.r_stats.Exec.st_total_steps / 4)
        in
        let ck_cfg =
          { (base_cfg short) with
            Config.checkpoint_every = every; checkpoint_path = Some ckpt }
        in
        let _, t_ck = timed (fun () -> Session.run ck_cfg) in
        let resumed, t_resume =
          timed (fun () ->
              match Session.resume ck_cfg ~path:ckpt with
              | Ok r -> r
              | Error e -> failwith ("resume: " ^ e))
        in
        let resume_identical = json resumed = json oracle in
        let st_cfg = { (base_cfg short) with Config.store_dir = Some store } in
        let cold, _ = timed (fun () -> Session.run st_cfg) in
        let warm, _ = timed (fun () -> Session.run st_cfg) in
        let warm_identical = json warm = json cold in
        let row =
          { du_driver = short; du_scratch_wall = t_scratch;
            du_ckpt_wall = t_ck; du_resume_wall = t_resume;
            du_resume_identical = resume_identical;
            du_cold_blasts = blasts cold; du_warm_blasts = blasts warm;
            du_warm_hits = phits warm; du_warm_identical = warm_identical }
        in
        Printf.printf
          "%-12s %8.2fs %8.2fs %6.1f%% %8.2fs %6s %7d %7d %6d %5s\n" short
          t_scratch t_ck
          (100.0 *. ((t_ck -. t_scratch) /. Float.max 1e-6 t_scratch))
          t_resume
          (if resume_identical then "yes" else "NO")
          (blasts cold) (blasts warm) (phits warm)
          (if warm_identical then "yes" else "NO");
        row)
      drivers
  in
  let bad_resume = List.filter (fun r -> not r.du_resume_identical) rows in
  let bad_warm = List.filter (fun r -> not r.du_warm_identical) rows in
  let no_hits = List.filter (fun r -> r.du_warm_hits = 0) rows in
  Printf.printf
    "\ntotals: resume byte-identical on %d/%d drivers, warm start \
     identical on %d/%d, store hits on %d/%d\n"
    (List.length rows - List.length bad_resume)
    (List.length rows)
    (List.length rows - List.length bad_warm)
    (List.length rows)
    (List.length rows - List.length no_hits)
    (List.length rows);
  if !json_mode then begin
    write_resume_json rows "BENCH_resume.json";
    Printf.printf "wrote BENCH_resume.json\n"
  end;
  if bad_resume <> [] || bad_warm <> [] then begin
    Printf.printf "FAIL: durability parity broken\n";
    exit 1
  end

(* --- multi-process exploration: snapshot-shipping coordinator -------------------- *)

type dist_row = {
  dd_driver : string;
  dd_bugs : int;
  dd_seq_wall : float;
  dd_walls : (int * float) list;     (* worker processes -> wall s *)
  dd_shipped : int;                  (* at the highest worker count *)
  dd_steals : int;
  dd_stolen : int;
  dd_reships : int;
  dd_store_hits : int;               (* cross-process pstore hits *)
  dd_dist_steps : int;               (* merged steps, highest-count run *)
  dd_seq_steps : int;
  dd_portfolio_wall : float option;  (* 4 full redundant processes *)
  dd_match : bool;                   (* bug sets = sequential, all counts *)
}

let write_dist_json rows path =
  let oc = open_out path in
  let pr fmt = Printf.fprintf oc fmt in
  pr "{\n  \"experiment\": \"dist\",\n";
  pr "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  pr
    "  \"note\": \"dist: one coordinator process shipping serialized \
     snapshots to N worker processes over pipes, work-stealing, shared \
     persistent solver store; portfolio4: 4 full redundant processes. \
     steps_vs_portfolio4 is the redundant work the coordinator \
     eliminates (portfolio executes ~4x the merged dist step count); \
     store_hits counts solver queries answered by another process's \
     flushed cache entries.\",\n";
  pr "  \"drivers\": [\n";
  List.iteri
    (fun i r ->
      let walls =
        String.concat ", "
          (List.map
             (fun (w, t) -> Printf.sprintf "\"dist%d_wall_s\": %.4f" w t)
             r.dd_walls)
      in
      pr
        "    {\"driver\": %S, \"bugs\": %d, \"seq_wall_s\": %.4f, %s,\n     \
         \"shipped\": %d, \"steals\": %d, \"stolen_states\": %d, \
         \"reships\": %d, \"store_hits\": %d,\n     \"dist_steps\": %d, \
         \"seq_steps\": %d,%s \"bugs_match\": %b}%s\n"
        r.dd_driver r.dd_bugs r.dd_seq_wall walls r.dd_shipped r.dd_steals
        r.dd_stolen r.dd_reships r.dd_store_hits r.dd_dist_steps
        r.dd_seq_steps
        (match r.dd_portfolio_wall with
         | Some w ->
             Printf.sprintf
               " \"portfolio4_wall_s\": %.4f, \"steps_vs_portfolio4\": %.3f,"
               w
               (if r.dd_dist_steps > 0 then
                  float_of_int (4 * r.dd_seq_steps)
                  /. float_of_int r.dd_dist_steps
                else 1.0)
         | None -> "")
        r.dd_match
        (if i = List.length rows - 1 then "" else ","))
    rows;
  pr "  ]\n}\n";
  close_out oc

let dist_bench () =
  let module D = Ddt_dist.Dist in
  section
    (if !quick_mode then
       "Multi-process exploration smoke test (--quick): coordinator + \
        worker processes, 2 drivers"
     else
       "Multi-process exploration: snapshot-shipping work-stealing \
        coordinator vs one process and vs a redundant process portfolio");
  let drivers =
    if !quick_mode then [ "rtl8029"; "pcnet" ]
    else List.map (fun e -> e.Corpus.short) Corpus.all
  in
  let worker_counts = if !quick_mode then [ 1; 2 ] else [ 1; 2; 4 ] in
  let workdir =
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "ddt_bench_dist_%d" (Unix.getpid ()))
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d
  in
  let base_cfg short =
    let cfg = Corpus.config (Corpus.find short) in
    { cfg with
      Config.exec_config = { cfg.Config.exec_config with Exec.jobs = 1 } }
  in
  let fresh () =
    Ddt_solver.Solver.clear_cache ();
    Ddt_solver.Expr.reset_var_counter ()
  in
  let keys (r : Session.result) =
    List.sort compare (List.map (fun b -> b.Report.b_key) r.Session.r_bugs)
  in
  let steps (r : Session.result) = r.Session.r_stats.Exec.st_total_steps in
  (* A true N-process portfolio: N forked children each running the
     full sequential session concurrently, wall = last one home. *)
  let portfolio_wall cfg n =
    flush stdout;
    flush stderr;
    let t0 = Unix.gettimeofday () in
    let pids =
      List.init n (fun _ ->
          match Unix.fork () with
          | 0 ->
              (try ignore (Session.run cfg) with _ -> ());
              Unix._exit 0
          | pid -> pid)
    in
    List.iter (fun pid -> ignore (Unix.waitpid [] pid)) pids;
    Unix.gettimeofday () -. t0
  in
  Printf.printf "%-12s %7s %9s %8s %7s %7s %7s %6s %6s\n" "Driver" "workers"
    "wall(s)" "shipped" "steals" "reship" "s-hits" "steps" "match";
  let rows =
    List.map
      (fun short ->
        let cfg = base_cfg short in
        fresh ();
        let t0 = Unix.gettimeofday () in
        let seq = Session.run cfg in
        let t_seq = Unix.gettimeofday () -. t0 in
        let seq_keys = keys seq in
        Printf.printf "%-12s %7s %8.2fs %8s %7s %7s %7s %6d %6s\n" short
          "seq" t_seq "-" "-" "-" "-" (steps seq) "-";
        let walls = ref [] in
        let last = ref None in
        let all_match = ref true in
        List.iter
          (fun workers ->
            (* Fresh per-run store: hits counted below are genuinely
               cross-process within this one run, not warm-over-runs. *)
            let store =
              Filename.concat workdir
                (Printf.sprintf "%s.%dw.store" short workers)
            in
            fresh ();
            let dcfg = { cfg with Config.store_dir = Some store } in
            let r, c = D.run ~workers dcfg in
            let ok = keys r = seq_keys in
            if not ok then all_match := false;
            walls := (workers, c.D.c_wall) :: !walls;
            last := Some (r, c);
            Printf.printf "%-12s %7d %8.2fs %8d %7d %7d %7d %6d %6s\n" short
              workers c.D.c_wall c.D.c_shipped c.D.c_steals c.D.c_reships
              c.D.c_store_hits (steps r)
              (if ok then "yes" else "NO"))
          worker_counts;
        let r_last, c_last = Option.get !last in
        let portfolio =
          if !quick_mode then None
          else begin
            fresh ();
            let w = portfolio_wall cfg 4 in
            Printf.printf "%-12s %7s %8.2fs %8s %7s %7s %7s %6d %6s\n" short
              "port4" w "-" "-" "-" "-" (4 * steps seq) "-";
            Some w
          end
        in
        {
          dd_driver = short;
          dd_bugs = List.length r_last.Session.r_bugs;
          dd_seq_wall = t_seq;
          dd_walls = List.rev !walls;
          dd_shipped = c_last.D.c_shipped;
          dd_steals = c_last.D.c_steals;
          dd_stolen = c_last.D.c_stolen_states;
          dd_reships = c_last.D.c_reships;
          dd_store_hits = c_last.D.c_store_hits;
          dd_dist_steps = steps r_last;
          dd_seq_steps = steps seq;
          dd_portfolio_wall = portfolio;
          dd_match = !all_match;
        })
      drivers
  in
  ignore (Sys.command ("rm -rf " ^ Filename.quote workdir));
  let matches = List.filter (fun r -> r.dd_match) rows in
  let hits = List.fold_left (fun a r -> a + r.dd_store_hits) 0 rows in
  Printf.printf
    "\nbug reports identical to one process on %d/%d drivers | total \
     cross-process store hits %d\n"
    (List.length matches) (List.length rows) hits;
  (match List.filter (fun r -> r.dd_portfolio_wall <> None) rows with
   | [] -> ()
   | w ->
       let dist_steps =
         List.fold_left (fun a r -> a + r.dd_dist_steps) 0 w
       in
       let port_steps =
         List.fold_left (fun a r -> a + (4 * r.dd_seq_steps)) 0 w
       in
       Printf.printf
         "portfolio-4 fleet executes %d steps vs %d merged dist steps: \
          %.2fx redundant work eliminated by shipping the tree once\n"
         port_steps dist_steps
         (if dist_steps > 0 then
            float_of_int port_steps /. float_of_int dist_steps
          else 1.0));
  if !json_mode && not !quick_mode then begin
    write_dist_json rows "BENCH_dist.json";
    Printf.printf "wrote BENCH_dist.json\n"
  end;
  if List.length matches <> List.length rows then begin
    Printf.printf "FAIL: multi-process parity broken\n";
    exit 1
  end

(* --- main ------------------------------------------------------------------------ *)

let all_experiments =
  [ ("table1", table1); ("table2", table2); ("fig2", figures);
    ("stress", stress); ("sdv", sdv); ("synthetic", synthetic);
    ("ablation", ablation); ("sched", sched); ("parallel", parallel);
    ("memory", memory); ("solver", solver_bench); ("static", static_bench);
    ("chaos", chaos_bench); ("incr", incr_bench); ("dbt", dbt_bench);
    ("merge", merge_bench); ("staticrace", staticrace_bench);
    ("resume", resume_bench); ("dist", dist_bench); ("micro", micro) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let flags, names = List.partition (fun a -> String.length a > 1 && a.[0] = '-') args in
  json_mode := List.mem "--json" flags;
  quick_mode := List.mem "--quick" flags;
  let requested =
    match names with
    | _ :: _ -> names
    | [] -> List.map fst all_experiments
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      let name = if name = "fig3" then "fig2" else name in
      match List.assoc_opt name all_experiments with
      | Some f -> f ()
      | None ->
          Printf.printf "unknown experiment %S; known: %s\n" name
            (String.concat ", " (List.map fst all_experiments)))
    requested;
  Printf.printf "\nbench harness finished in %.1fs\n"
    (Unix.gettimeofday () -. t0)
