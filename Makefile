.PHONY: all build test check bench bench-dbt bench-merge bench-staticrace clean

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 verification plus smoke tests: a quick shared-frontier run on
# two drivers (work stealing + shared query cache end to end), a quick
# chaos run (injected worker crashes / solver exhaustions / memory
# pressure must leave the bug sets unchanged), a quick incremental-
# session run (bug sets must match the from-scratch pipeline, plus the
# clause-retention microbench), a quick DBT parity run (compiled blocks
# on/off must report identical bug sets, with and without chaos), a
# quick state-merging parity run (fusing states at post-dominators must
# leave the bug sets unchanged while collapsing the deep-loop driver's
# frontier), a quick static-race run (lockset/IRQL + race rules fire on
# the seeded corpus, are false-positive-free on every fixed variant, and
# at least one race warning is confirmed by directed symbolic
# execution), the
# static pre-analysis on two known-clean drivers (nonzero universe,
# zero findings under the syntactic rules; rtl8029's buggy variant
# legitimately fires the interprocedural race rule, so the clean smoke
# is scoped to the syntactic families), a full-rule FP smoke over every
# fixed-variant image, and a warning-clean doc build.
check: build test
	dune exec bench/main.exe -- parallel --quick
	dune exec bench/main.exe -- chaos --quick
	dune exec bench/main.exe -- incr --quick
	dune exec bench/main.exe -- dbt --quick
	dune exec bench/main.exe -- merge --quick
	dune exec bench/main.exe -- staticrace --quick
	dune exec bin/ddt_cli.exe -- analyze rtl8029 --expect-clean \
	  --rules unreachable-code,stack-imbalance,const-arg-contract > /dev/null
	dune exec bin/ddt_cli.exe -- analyze pcnet --expect-clean > /dev/null
	for d in pro1000 pro100 ac97 audiopci pcnet rtl8029 deeploop; do \
	  dune exec bin/ddt_cli.exe -- analyze $$d --fixed --expect-clean \
	    > /dev/null || exit 1; \
	done
	dune build @doc

# Full static-race experiment: per-driver warning counts (buggy vs fixed,
# new interprocedural rules vs the baseline absint), the zero-FP check on
# every fixed variant, and a directed-confirmation session on rtl8029
# (the race warning must come back dynamically confirmed); writes
# BENCH_staticrace.json.
bench-staticrace:
	dune exec bench/main.exe -- staticrace --json

bench:
	dune exec bench/main.exe

# Full DBT experiment: concrete throughput vs the interpreter plus bug-
# report parity on all six drivers (± chaos); writes BENCH_dbt.json.
bench-dbt:
	dune exec bench/main.exe -- dbt --json

# Full state-merging experiment: frontier sizes and bug-report parity
# with merging off vs on across the corpus (± chaos), including the
# deep-loop >= 10x state-collapse check; writes BENCH_merge.json.
bench-merge:
	dune exec bench/main.exe -- merge --json

clean:
	dune clean
