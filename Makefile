.PHONY: all build test check bench clean

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 verification plus the parallel-exploration smoke test: a quick
# shared-frontier run on two drivers that exercises work stealing and the
# shared query cache end to end.
check: build test
	dune exec bench/main.exe -- parallel --quick

bench:
	dune exec bench/main.exe

clean:
	dune clean
