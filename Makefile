.PHONY: all build test check bench bench-dbt bench-merge bench-staticrace \
  bench-resume bench-dist clean

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 verification plus smoke tests: a quick shared-frontier run on
# two drivers (work stealing + shared query cache end to end), a quick
# chaos run (injected worker crashes / solver exhaustions / memory
# pressure must leave the bug sets unchanged), a quick incremental-
# session run (bug sets must match the from-scratch pipeline, plus the
# clause-retention microbench), a quick DBT parity run (compiled blocks
# on/off must report identical bug sets, with and without chaos), a
# quick state-merging parity run (fusing states at post-dominators must
# leave the bug sets unchanged while collapsing the deep-loop driver's
# frontier), a quick static-race run (lockset/IRQL + race rules fire on
# the seeded corpus, are false-positive-free on every fixed variant, and
# at least one race warning is confirmed by directed symbolic
# execution), the
# static pre-analysis on two known-clean drivers (nonzero universe,
# zero findings under the syntactic rules; rtl8029's buggy variant
# legitimately fires the interprocedural race rule, so the clean smoke
# is scoped to the syntactic families), a full-rule FP smoke over every
# fixed-variant image, a durability smoke (a quick checkpoint/resume +
# warm-start parity run, then a real SIGKILL mid-exploration followed
# by `ddt_cli resume` that must reproduce the uninterrupted oracle's
# report byte for byte, then a second run against the persistent store
# that must actually hit it), a multi-process smoke (a 2-worker-process
# coordinator run on two drivers must report the same bug set as one
# process, plus a serve/submit round-trip over a Unix socket), and a
# warning-clean doc build.
check: build test
	dune exec bench/main.exe -- parallel --quick
	dune exec bench/main.exe -- chaos --quick
	dune exec bench/main.exe -- incr --quick
	dune exec bench/main.exe -- dbt --quick
	dune exec bench/main.exe -- merge --quick
	dune exec bench/main.exe -- staticrace --quick
	dune exec bench/main.exe -- resume --quick
	dune exec bench/main.exe -- dist --quick
	@set -e; dir=$$(mktemp -d); cli=./_build/default/bin/ddt_cli.exe; \
	$$cli test rtl8029 --json-out $$dir/seq.json >/dev/null || [ $$? -eq 2 ]; \
	$$cli test rtl8029 --dist-workers 2 --json-out $$dir/dist.json \
	  >/dev/null || [ $$? -eq 2 ]; \
	grep -o '"key":"[^"]*"' $$dir/seq.json | sort > $$dir/seq.keys; \
	grep -o '"key":"[^"]*"' $$dir/dist.json | sort > $$dir/dist.keys; \
	cmp $$dir/seq.keys $$dir/dist.keys; \
	echo "dist smoke: 2-worker bug set identical to one process"; \
	$$cli serve --socket $$dir/ddt.sock --max-jobs 1 >/dev/null 2>&1 & \
	pid=$$!; \
	for i in $$(seq 1 100); do test -S $$dir/ddt.sock && break; \
	  sleep 0.05; done; \
	$$cli submit rtl8029 --socket $$dir/ddt.sock --workers 2 \
	  > $$dir/served.out; \
	wait $$pid || true; \
	grep -q '"serve":"done"' $$dir/served.out; \
	grep -q '"schema"' $$dir/served.out; \
	echo "serve smoke: submitted job round-tripped a schema report"; \
	rm -rf $$dir
	@set -e; dir=$$(mktemp -d); cli=./_build/default/bin/ddt_cli.exe; \
	$$cli test pro100 --json-out $$dir/oracle.json >/dev/null || [ $$? -eq 2 ]; \
	$$cli test pro100 --checkpoint-every 1000 \
	  --checkpoint $$dir/p.ckpt >/dev/null 2>&1 & pid=$$!; \
	sleep 0.3; kill -9 $$pid 2>/dev/null || true; wait $$pid || true; \
	test -f $$dir/p.ckpt; \
	$$cli resume $$dir/p.ckpt --json-out $$dir/resumed.json >/dev/null \
	  || [ $$? -eq 2 ]; \
	cmp $$dir/oracle.json $$dir/resumed.json; \
	echo "kill-resume smoke: resumed report byte-identical"; \
	$$cli test rtl8029 --store-dir $$dir/store \
	  --json-out $$dir/cold.json >/dev/null || [ $$? -eq 2 ]; \
	$$cli test rtl8029 --store-dir $$dir/store \
	  --json-out $$dir/warm.json >$$dir/warm.out || [ $$? -eq 2 ]; \
	grep -q "solver store:" $$dir/warm.out; \
	cmp $$dir/cold.json $$dir/warm.json; \
	echo "warm-start smoke: persistent store hit, identical report"; \
	rm -rf $$dir
	dune exec bin/ddt_cli.exe -- analyze rtl8029 --expect-clean \
	  --rules unreachable-code,stack-imbalance,const-arg-contract > /dev/null
	dune exec bin/ddt_cli.exe -- analyze pcnet --expect-clean > /dev/null
	for d in pro1000 pro100 ac97 audiopci pcnet rtl8029 deeploop; do \
	  dune exec bin/ddt_cli.exe -- analyze $$d --fixed --expect-clean \
	    > /dev/null || exit 1; \
	done
	dune build @doc

# Full static-race experiment: per-driver warning counts (buggy vs fixed,
# new interprocedural rules vs the baseline absint), the zero-FP check on
# every fixed variant, and a directed-confirmation session on rtl8029
# (the race warning must come back dynamically confirmed); writes
# BENCH_staticrace.json.
bench-staticrace:
	dune exec bench/main.exe -- staticrace --json

# Full durability experiment: checkpoint overhead at the default
# interval, kill-resume wall time vs from-scratch with byte-identical
# reports, and the warm-start bit-blast reduction from the persistent
# solver store, across the corpus; writes BENCH_resume.json.
bench-resume:
	dune exec bench/main.exe -- resume --json

# Full multi-process experiment: coordinator wall time at 1/2/4 worker
# processes vs one process and vs a 4-process redundant portfolio,
# states shipped / stolen / re-shipped, and cross-process persistent-
# store hits, across the corpus; writes BENCH_dist.json.
bench-dist:
	dune exec bench/main.exe -- dist --json

bench:
	dune exec bench/main.exe

# Full DBT experiment: concrete throughput vs the interpreter plus bug-
# report parity on all six drivers (± chaos); writes BENCH_dbt.json.
bench-dbt:
	dune exec bench/main.exe -- dbt --json

# Full state-merging experiment: frontier sizes and bug-report parity
# with merging off vs on across the corpus (± chaos), including the
# deep-loop >= 10x state-collapse check; writes BENCH_merge.json.
bench-merge:
	dune exec bench/main.exe -- merge --json

clean:
	dune clean
