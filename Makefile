.PHONY: all build test check bench bench-dbt bench-merge clean

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 verification plus smoke tests: a quick shared-frontier run on
# two drivers (work stealing + shared query cache end to end), a quick
# chaos run (injected worker crashes / solver exhaustions / memory
# pressure must leave the bug sets unchanged), a quick incremental-
# session run (bug sets must match the from-scratch pipeline, plus the
# clause-retention microbench), a quick DBT parity run (compiled blocks
# on/off must report identical bug sets, with and without chaos), a
# quick state-merging parity run (fusing states at post-dominators must
# leave the bug sets unchanged while collapsing the deep-loop driver's
# frontier), the
# static pre-analysis on two known-clean drivers (nonzero universe,
# zero findings), and a warning-clean doc build.
check: build test
	dune exec bench/main.exe -- parallel --quick
	dune exec bench/main.exe -- chaos --quick
	dune exec bench/main.exe -- incr --quick
	dune exec bench/main.exe -- dbt --quick
	dune exec bench/main.exe -- merge --quick
	dune exec bin/ddt_cli.exe -- analyze rtl8029 --expect-clean > /dev/null
	dune exec bin/ddt_cli.exe -- analyze pcnet --expect-clean > /dev/null
	dune build @doc

bench:
	dune exec bench/main.exe

# Full DBT experiment: concrete throughput vs the interpreter plus bug-
# report parity on all six drivers (± chaos); writes BENCH_dbt.json.
bench-dbt:
	dune exec bench/main.exe -- dbt --json

# Full state-merging experiment: frontier sizes and bug-report parity
# with merging off vs on across the corpus (± chaos), including the
# deep-loop >= 10x state-collapse check; writes BENCH_merge.json.
bench-merge:
	dune exec bench/main.exe -- merge --json

clean:
	dune clean
