(** Bug reports and the report sink.

    Checkers deposit findings here; the sink deduplicates (the same defect
    is typically reached on many paths) and keeps, per bug, the trace of
    the first path that exposed it — the replayable evidence of §3.5. *)

type kind =
  | Memory_error        (** OOB access, access to unowned/freed memory *)
  | Segfault            (** null/bad pointer dereference *)
  | Race_condition      (** crash or corruption under a symbolic interrupt *)
  | Resource_leak
  | Lock_misuse         (** deadlock, wrong-variant or unbalanced release *)
  | Kernel_crash        (** bugcheck raised by the kernel *)
  | Infinite_loop

val string_of_kind : kind -> string

type severity = Dynamic | Static | Static_unconfirmed
(** [Dynamic] findings come from executing the driver (the bug list);
    [Static] findings come from the pre-analysis ([Ddt_staticx]) and are
    kept in a separate list so they can never perturb dynamic bug keys,
    deduplication or ordering.  [Static_unconfirmed] is the distinct
    reporting tier for warnings that directed symbolic confirmation was
    attempted on but could not witness dynamically. *)

val string_of_severity : severity -> string

type confirmation =
  | Not_applicable
      (** no confirmation attempted (pure [analyze] runs, or rules with
          no dynamic witness class) *)
  | Unconfirmed
      (** directed symbolic execution sought a witness and found none *)
  | Confirmed of string
      (** a dynamic bug with this key witnessed the warning *)

type static_finding = {
  sf_rule : string;     (** e.g. "unreachable-code", "race-unguarded-use" *)
  sf_func : string;     (** enclosing function name, or "" *)
  sf_pos : int;         (** image-relative text offset *)
  sf_message : string;
  sf_confirm : confirmation;
}

val severity_of_static : static_finding -> severity

val static_key : static_finding -> string
(** Deduplication key: rule + position + function. *)

type bug = {
  b_kind : kind;
  b_driver : string;
  b_entry : string;            (** entry point under exercise *)
  b_pc : int;                  (** driver pc at detection *)
  b_message : string;
  b_key : string;              (** deduplication key *)
  b_state_id : int;
  b_events : Ddt_trace.Event.t list;       (** trace, newest first *)
  b_choices : (string * string) list;      (** annotation decisions taken *)
  b_with_interrupt : bool;
  b_replay : Ddt_trace.Replay.script;
  (** concrete inputs + system events that reproduce this path (§3.5) *)
}

type incident = Ddt_symexec.Guard.incident
(** A fault of the testing engine itself (worker crash, quarantined
    state, solver budget exhaustion), quarantined by
    [Ddt_symexec.Guard]. Engine incidents are not driver findings: like
    static findings they are kept apart from the dynamic bug list, so
    they can never perturb bug keys, deduplication or ordering — but
    each carries a replayable script (§3.5 evidence for engine faults). *)

val incident_kind_label : incident -> string

type sink

val create_sink : unit -> sink
val report : sink -> bug -> unit
val bugs : sink -> bug list
(** In first-reported order. *)

val count : sink -> int

val report_static : sink -> static_finding -> unit
(** Deposit a static-analysis finding; deduplicated by {!static_key},
    stored apart from the dynamic bug list. *)

val static_findings : sink -> static_finding list
(** In first-reported order. *)

val confirm_statics : sink -> (static_finding -> confirmation) -> unit
(** Rewrite every collected static finding's confirmation status (used
    once after the dynamic phase has run against the warnings). *)

val clear : sink -> unit

(** {1 Checkpointing}

    The sink as marshal-safe data: the bug and static-finding lists in
    live (newest-first) order. Dedup tables are derived and rebuilt by
    {!restore_sink}. *)

type sink_dump = {
  sk_found : bug list;
  sk_statics : static_finding list;
}

val dump_sink : sink -> sink_dump
val restore_sink : sink -> sink_dump -> unit

val pp_bug : Format.formatter -> bug -> unit
val pp_static_finding : Format.formatter -> static_finding -> unit
val pp_incident : Format.formatter -> incident -> unit
val pp_summary : Format.formatter -> sink -> unit
(** The Table 2 style listing: driver, bug type, description. *)
