type kind =
  | Memory_error
  | Segfault
  | Race_condition
  | Resource_leak
  | Lock_misuse
  | Kernel_crash
  | Infinite_loop

let string_of_kind = function
  | Memory_error -> "Memory corruption"
  | Segfault -> "Segmentation fault"
  | Race_condition -> "Race condition"
  | Resource_leak -> "Resource leak"
  | Lock_misuse -> "Lock misuse"
  | Kernel_crash -> "Kernel crash"
  | Infinite_loop -> "Infinite loop"

type severity = Dynamic | Static | Static_unconfirmed

let string_of_severity = function
  | Dynamic -> "dynamic"
  | Static -> "static"
  | Static_unconfirmed -> "static-unconfirmed"

type confirmation =
  | Not_applicable
  | Unconfirmed
  | Confirmed of string

type static_finding = {
  sf_rule : string;
  sf_func : string;
  sf_pos : int;
  sf_message : string;
  sf_confirm : confirmation;
}

let severity_of_static f =
  match f.sf_confirm with
  | Unconfirmed -> Static_unconfirmed
  | Not_applicable | Confirmed _ -> Static

let static_key f = Printf.sprintf "%s@%x:%s" f.sf_rule f.sf_pos f.sf_func

type bug = {
  b_kind : kind;
  b_driver : string;
  b_entry : string;
  b_pc : int;
  b_message : string;
  b_key : string;
  b_state_id : int;
  b_events : Ddt_trace.Event.t list;
  b_choices : (string * string) list;
  b_with_interrupt : bool;
  b_replay : Ddt_trace.Replay.script;
}

(* Engine incidents: faults of the testing engine itself (worker
   crashes, quarantined states, solver budget exhaustions), quarantined
   by [Ddt_symexec.Guard] instead of killing the session. They are not
   driver findings — like static findings they live apart from the bug
   list so they can never perturb dynamic bug keys or ordering — but
   each carries a replayable script, extending the paper's
   "every finding comes with a trace" contract to engine faults. *)
type incident = Ddt_symexec.Guard.incident

let incident_kind_label (i : incident) =
  Ddt_symexec.Guard.kind_label i.Ddt_symexec.Guard.inc_kind

type sink = {
  mutable found : bug list;    (* newest first *)
  seen : (string, unit) Hashtbl.t;
  mutable statics : static_finding list;   (* newest first *)
  statics_seen : (string, unit) Hashtbl.t;
  (* static findings live in their own list under the same lock: they
     carry the [Static] severity and never mix with the dynamic bug list,
     so their presence cannot perturb dynamic bug keys or ordering *)
  mu : Mutex.t;
  (* one sink collects from every checker on every frontier worker; the
     internal lock makes the check-and-add atomic so a bug key is
     admitted exactly once no matter which worker reports it first *)
}

let create_sink () =
  { found = []; seen = Hashtbl.create 16; statics = [];
    statics_seen = Hashtbl.create 16; mu = Mutex.create () }

let report sink bug =
  Mutex.lock sink.mu;
  if not (Hashtbl.mem sink.seen bug.b_key) then begin
    Hashtbl.add sink.seen bug.b_key ();
    sink.found <- bug :: sink.found
  end;
  Mutex.unlock sink.mu

let bugs sink =
  Mutex.lock sink.mu;
  let r = sink.found in
  Mutex.unlock sink.mu;
  List.rev r

let count sink =
  Mutex.lock sink.mu;
  let n = List.length sink.found in
  Mutex.unlock sink.mu;
  n

let report_static sink f =
  Mutex.lock sink.mu;
  let k = static_key f in
  if not (Hashtbl.mem sink.statics_seen k) then begin
    Hashtbl.add sink.statics_seen k ();
    sink.statics <- f :: sink.statics
  end;
  Mutex.unlock sink.mu

let static_findings sink =
  Mutex.lock sink.mu;
  let r = sink.statics in
  Mutex.unlock sink.mu;
  List.rev r

let confirm_statics sink f =
  Mutex.lock sink.mu;
  sink.statics <-
    List.map (fun sf -> { sf with sf_confirm = f sf }) sink.statics;
  Mutex.unlock sink.mu

(* Checkpointing: the sink minus its lock. The dedup tables are derived
   (rebuilt from the lists' keys), so a dump is just the two lists in
   their live newest-first order. *)
type sink_dump = {
  sk_found : bug list;
  sk_statics : static_finding list;
}

let dump_sink sink =
  Mutex.lock sink.mu;
  let d = { sk_found = sink.found; sk_statics = sink.statics } in
  Mutex.unlock sink.mu;
  d

let restore_sink sink d =
  Mutex.lock sink.mu;
  sink.found <- d.sk_found;
  Hashtbl.reset sink.seen;
  List.iter (fun b -> Hashtbl.replace sink.seen b.b_key ()) d.sk_found;
  sink.statics <- d.sk_statics;
  Hashtbl.reset sink.statics_seen;
  List.iter
    (fun f -> Hashtbl.replace sink.statics_seen (static_key f) ())
    d.sk_statics;
  Mutex.unlock sink.mu

let clear sink =
  Mutex.lock sink.mu;
  sink.found <- [];
  Hashtbl.reset sink.seen;
  sink.statics <- [];
  Hashtbl.reset sink.statics_seen;
  Mutex.unlock sink.mu

let pp_bug fmt b =
  Format.fprintf fmt "[%s] %s in %s (entry %s, pc 0x%x)%s@.    %s"
    (string_of_kind b.b_kind) b.b_driver
    (match b.b_choices with
     | [] -> "default path"
     | cs ->
         String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) cs))
    b.b_entry b.b_pc
    (if b.b_with_interrupt then " [under symbolic interrupt]" else "")
    b.b_message

let pp_static_finding fmt f =
  let tag =
    match f.sf_confirm with
    | Not_applicable -> "static"
    | Unconfirmed -> "static, unconfirmed"
    | Confirmed _ -> "static, CONFIRMED"
  in
  Format.fprintf fmt "[%s:%s] %s%s@.    %s%s" tag f.sf_rule
    (if f.sf_func = "" then "" else f.sf_func ^ " ")
    (Printf.sprintf "at 0x%x" f.sf_pos)
    f.sf_message
    (match f.sf_confirm with
     | Confirmed key ->
         Printf.sprintf "\n    confirmed dynamically by %s" key
     | _ -> "")

let pp_incident fmt (i : incident) =
  let open Ddt_symexec.Guard in
  if i.inc_state_id = 0 then
    Format.fprintf fmt "[engine:%s] worker %d@.    %s" (kind_label i.inc_kind)
      i.inc_worker i.inc_message
  else
    Format.fprintf fmt
      "[engine:%s] state %d (entry %s, pc 0x%x, worker %d)@.    %s@.    \
       replay: %d input(s), %d choice(s)"
      (kind_label i.inc_kind) i.inc_state_id i.inc_entry i.inc_pc i.inc_worker
      i.inc_message
      (List.length i.inc_replay.Ddt_trace.Replay.rs_inputs)
      (List.length i.inc_replay.Ddt_trace.Replay.rs_choices)

let pp_summary fmt sink =
  Format.fprintf fmt "%-18s %-18s %s@." "Tested Driver" "Bug Type" "Description";
  List.iter
    (fun b ->
      Format.fprintf fmt "%-18s %-18s %s@." b.b_driver
        (string_of_kind b.b_kind) b.b_message)
    (bugs sink)
