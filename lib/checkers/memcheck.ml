module Expr = Ddt_solver.Expr
module Interval = Ddt_solver.Interval
module Layout = Ddt_dvm.Layout
module Image = Ddt_dvm.Image
module Kstate = Ddt_kernel.Kstate
module Exec = Ddt_symexec.Exec
module St = Ddt_symexec.Symstate

type t = {
  sink : Report.sink;
  driver : string;
  loaded : Image.loaded;
  symdev : Ddt_hw.Symdev.t;
}

let create ~sink ~driver ~loaded ~symdev = { sink; driver; loaded; symdev }

type verdict =
  | Ok_access
  | Bad of string   (* description *)

let classify t (st : St.t) ~write ~sp addr =
  let l = t.loaded in
  if addr >= l.Image.text_start && addr < l.Image.text_end then
    if write then Bad "write into the driver's code section" else Ok_access
  else if addr >= l.Image.data_start && addr < l.Image.data_end then Ok_access
  else if addr >= Layout.stack_limit && addr < Layout.stack_top then
    if addr >= sp then Ok_access
    else
      Bad
        (Printf.sprintf
           "access below the stack pointer (0x%x < sp 0x%x); an interrupt \
            handler could overwrite this location"
           addr sp)
  else if Ddt_hw.Symdev.is_device_addr t.symdev addr then Ok_access
  else
    match Kstate.region_containing st.St.ks addr with
    | Some _ -> Ok_access
    | None -> (
        if addr >= Layout.kernel_base then
          Bad "dereference of a kernel handle (opaque to drivers)"
        else if addr >= Layout.heap_base && addr < Layout.heap_limit then
          Bad "access to heap memory not (or no longer) owned by the driver"
        else Bad (Printf.sprintf "access to unmapped address 0x%x" addr))

(* Bound the symbolic address; report when it can escape the region that
   contains the concrete witness. *)
let symbolic_escape t (st : St.t) (ma : Exec.mem_access) =
  if Expr.is_const (Ddt_solver.Simplify.simplify ma.Exec.ma_addr) then None
  else
    match Interval.infer ma.Exec.ma_constraints with
    | None -> None
    | Some env ->
        (* [range_within], not [range_of]: a post-dominator merge turns a
           clamped index into [ite(guard, clamped, raw)] with the clamp
           inside the guard, and only the guard-conditioned range stays
           tight enough to avoid a false escape report. *)
        let range = Interval.range_within env ma.Exec.ma_addr in
        let l = t.loaded in
        let inside lo hi =
          (* Entirely within one permitted region? *)
          (lo >= l.Image.data_start && hi < l.Image.data_end)
          || (lo >= l.Image.text_start && hi < l.Image.text_end)
          || (lo >= ma.Exec.ma_sp && hi < Layout.stack_top)
          || (Ddt_hw.Symdev.is_device_addr t.symdev lo
              && Ddt_hw.Symdev.is_device_addr t.symdev hi)
          || (match Kstate.region_containing st.St.ks lo with
              | Some r -> hi < r.Kstate.r_start + r.Kstate.r_size
              | None -> false)
        in
        if inside range.Interval.lo range.Interval.hi then None
        else
          Some
            (Printf.sprintf
               "symbolic address can range over [0x%x, 0x%x], escaping every \
                granted region (unchecked input used in address arithmetic)"
               range.Interval.lo range.Interval.hi)

let bug_of ?(witness = []) ?constraints t (st : St.t) (ma : Exec.mem_access)
    msg =
  {
    Report.b_kind =
      (if Kstate.in_isr st.St.ks || Kstate.in_dpc st.St.ks then
         Report.Race_condition
       else Report.Memory_error);
    b_driver = t.driver;
    b_entry = st.St.entry_name;
    b_pc = ma.Exec.ma_pc;
    b_message = msg;
    b_key =
      Printf.sprintf "mem:%s:0x%x:%s" t.driver ma.Exec.ma_pc
        (if ma.Exec.ma_write then "w" else "r");
    b_state_id = st.St.id;
    b_events = st.St.trace;
    b_choices = st.St.choices;
    b_with_interrupt = st.St.injections > 0;
      b_replay = Ddt_symexec.Exec.replay_script ~extra:witness ?constraints st;
  }

let on_mem_access t (ma : Exec.mem_access) =
  let st = ma.Exec.ma_state in
  (match symbolic_escape t st ma with
   | Some msg ->
       (* The replay evidence must pin inputs that actually drive the
          address out of bounds, not just any feasible value: past the end
          of the region the concrete witness landed in (or anywhere above
          the heap when the witness hit no region at all). *)
       let escape_bound =
         match Kstate.region_containing st.St.ks ma.Exec.ma_conc with
         | Some r -> r.Kstate.r_start + r.Kstate.r_size - 1
         | None -> Layout.heap_limit
       in
       let witness =
         [ Expr.cmp Expr.Ltu (Expr.word escape_bound) ma.Exec.ma_addr ]
       in
       Report.report t.sink
         (bug_of ~witness ~constraints:ma.Exec.ma_constraints t st ma msg)
   | None -> ());
  match
    classify t st ~write:ma.Exec.ma_write ~sp:ma.Exec.ma_sp ma.Exec.ma_conc
  with
  | Ok_access -> ()
  | Bad msg ->
      (* The very low addresses fault in the engine and surface through
         the crash checker; avoid double-reporting them here. *)
      if ma.Exec.ma_conc >= Layout.null_guard then
        Report.report t.sink (bug_of t st ma msg)
