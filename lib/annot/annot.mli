(** Interface annotations (§3.4 of the paper).

    Annotations encode developer knowledge of the kernel/driver API and
    attach to kernel calls at their entry and return. The paper's DDT
    compiles C annotations to LLVM bitcode; here they are OCaml closures
    over the same primitives ([fresh_symbolic], [assume], [fork],
    [discard]) exposed by {!Ddt_kernel.Mach}.

    The four annotation categories of the paper map as follows:
    - {e concrete-to-symbolic conversion hints}: post-hooks that replace a
      concrete return value with a constrained symbolic one, or fork over
      value classes (e.g. allocation success/failure);
    - {e symbolic-to-concrete conversion hints}: pre-hooks that check or
      constrain symbolic arguments to kernel calls;
    - {e resource allocation hints}: carried by the kernel implementations
      themselves ({!Ddt_kernel.Kstate} grant/revoke);
    - {e kernel crash handler hook}: the {!Ddt_kernel.Bugcheck} exception,
      intercepted by the engine. *)

type hook = Ddt_kernel.Kstate.t -> Ddt_kernel.Mach.t -> unit

type t = {
  a_api : string;              (** kernel API the annotation attaches to *)
  a_pre : hook option;
  a_post : hook option;
  a_doc : string;
}

type set = t list

val empty : set
val combine : set -> set -> set

val run_pre : set -> string -> hook
(** [run_pre set api] runs every matching pre-hook. *)

val run_post : set -> string -> hook

(** {1 Building blocks} *)

val make :
  api:string -> ?pre:hook -> ?post:hook -> doc:string -> unit -> t

val fork_alloc_failure :
  api:string -> out_ptr_arg:int -> failure_status:int -> doc:string -> t
(** The standard allocation hint: after a successful allocation through an
    out-pointer argument, also explore the path where it failed — the
    annotation releases the successful allocation on that path, clears the
    out pointer and rewrites the status. *)

val fork_ret_null : api:string -> doc:string -> t
(** Same for APIs returning the pointer directly ([ExAllocatePoolWithTag]):
    the failure path returns NULL. *)

(** {1 Static argument contracts}

    A declarative sibling of the dynamic hooks: a predicate over one
    positional argument of a kernel API that any call must satisfy. The
    static pre-analysis ({!Ddt_staticx.Sfind}) checks these at call sites
    whose argument is a statically-evident constant; the check is purely
    static and never fires at run time. *)

type arg_contract = {
  c_api : string;          (** kernel API the contract attaches to *)
  c_arg : int;             (** positional argument index (0-based) *)
  c_check : int -> bool;   (** must hold for every call *)
  c_doc : string;
}

val contract :
  api:string -> arg:int -> check:(int -> bool) -> doc:string -> arg_contract

(** {1 Declarative API model}

    The static-analysis sibling of the dynamic hook set: per driver class,
    the kernel-API facts the interprocedural analyses
    ({!Ddt_staticx.Lockirql}, {!Ddt_staticx.Racepair}) consume. Like
    {!arg_contract}s these never fire at run time. *)

type lock_variant = Lv_plain | Lv_dpr

type lock_api = {
  la_api : string;          (** kernel API name *)
  la_acquire : bool;        (** acquire (true) or release (false) *)
  la_variant : lock_variant;
}

type irql_contract = {
  ic_api : string;          (** API callable at PASSIVE_LEVEL only *)
  ic_doc : string;
}

type handler_role = Hr_main | Hr_isr | Hr_dpc
(** Concurrency role of a registered driver entry point: [Hr_isr] and
    [Hr_dpc] run at DISPATCH_LEVEL and may preempt the main path. *)

type reg_contract =
  | Reg_table of { rt_api : string; rt_roles : (int * handler_role) list }
      (** argument 0 is a handler table; [rt_roles] maps word index to
          role (unlisted indices are [Hr_main]) *)
  | Reg_arg of { ra_api : string; ra_arg : int; ra_role : handler_role }
      (** argument [ra_arg] is a code pointer registered with [ra_role] *)

type init_pair = {
  ip_init : string;         (** initializer API (publishes the resource) *)
  ip_uses : string list;    (** APIs that require the resource initialized *)
  ip_arg : int;             (** positional argument carrying the resource *)
  ip_doc : string;
}

type api_model = {
  m_contracts : arg_contract list;
  m_locks : lock_api list;
  m_passive_only : irql_contract list;
  m_registration : reg_contract list;
  m_init_pairs : init_pair list;
}

val lock_api :
  api:string -> acquire:bool -> variant:lock_variant -> lock_api
