(** The NDIS annotation set.

    The paper reports annotating the full 277-function NDIS API in about
    two weeks; this set covers the mini-NDIS surface the driver corpus
    uses. The headline annotation is the one reproduced verbatim in the
    paper (§3.4.1): on return from [NdisReadConfiguration], replace the
    concrete registry value with a fresh symbolic integer constrained to
    be non-negative — this is what exposes the RTL8029 driver's unchecked
    [MaximumMulticastList] parameter. *)

val set : Annot.set

val contracts : Annot.arg_contract list
(** Static argument contracts over the same API surface, consumed by the
    pre-analysis ({!Ddt_staticx.Sfind}). *)

val model : Annot.api_model
(** Declarative lock / IRQL / registration / init-pair facts consumed by
    the interprocedural analyses ({!Ddt_staticx.Lockirql},
    {!Ddt_staticx.Racepair}). Includes {!contracts}. *)
