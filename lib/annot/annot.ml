module Kstate = Ddt_kernel.Kstate
module Mach = Ddt_kernel.Mach

type hook = Kstate.t -> Mach.t -> unit

type t = {
  a_api : string;
  a_pre : hook option;
  a_post : hook option;
  a_doc : string;
}

type set = t list

let empty = []
let combine = ( @ )

let run_pre set api ks mach =
  List.iter
    (fun a ->
      if a.a_api = api then Option.iter (fun h -> h ks mach) a.a_pre)
    set

let run_post set api ks mach =
  List.iter
    (fun a ->
      if a.a_api = api then Option.iter (fun h -> h ks mach) a.a_post)
    set

let make ~api ?pre ?post ~doc () =
  { a_api = api; a_pre = pre; a_post = post; a_doc = doc }

type arg_contract = {
  c_api : string;
  c_arg : int;
  c_check : int -> bool;
  c_doc : string;
}

let contract ~api ~arg ~check ~doc =
  { c_api = api; c_arg = arg; c_check = check; c_doc = doc }

(* --- declarative API model for the interprocedural static analyses --- *)

type lock_variant = Lv_plain | Lv_dpr

type lock_api = {
  la_api : string;
  la_acquire : bool;
  la_variant : lock_variant;
}

type irql_contract = {
  ic_api : string;
  ic_doc : string;
}

type handler_role = Hr_main | Hr_isr | Hr_dpc

type reg_contract =
  | Reg_table of { rt_api : string; rt_roles : (int * handler_role) list }
  | Reg_arg of { ra_api : string; ra_arg : int; ra_role : handler_role }

type init_pair = {
  ip_init : string;
  ip_uses : string list;
  ip_arg : int;
  ip_doc : string;
}

type api_model = {
  m_contracts : arg_contract list;
  m_locks : lock_api list;
  m_passive_only : irql_contract list;
  m_registration : reg_contract list;
  m_init_pairs : init_pair list;
}

let lock_api ~api ~acquire ~variant = { la_api = api; la_acquire = acquire; la_variant = variant }

(* Undo a successful allocation on the forked failure path. The out value
   is a heap address for pool memory but an opaque handle for pools and
   sync objects. *)
let release_alloc ks value =
  match Kstate.alloc_of_addr ks value with
  | Some a when not a.Kstate.a_freed -> Kstate.free_alloc ks a
  | _ -> (
      match Kstate.alloc_of_handle ks value with
      | Some a when not a.Kstate.a_freed -> Kstate.free_alloc ks a
      | _ -> ())

let fork_alloc_failure ~api ~out_ptr_arg ~failure_status ~doc =
  let post _ks (m : Mach.t) =
    let out = m.Mach.arg out_ptr_arg in
    let allocated = m.Mach.read_u32 out in
    m.Mach.fork
      [ ("success", fun _m' -> ());
        ("failure",
         fun m' ->
           release_alloc (m'.Mach.kstate ()) allocated;
           m'.Mach.write_u32 out 0;
           m'.Mach.set_ret failure_status) ]
  in
  { a_api = api; a_pre = None; a_post = Some post; a_doc = doc }

let fork_ret_null ~api ~doc =
  let post _ks (m : Mach.t) =
    m.Mach.fork
      [ ("success", fun _m' -> ());
        ("failure",
         fun m' ->
           (* The return register still holds the allocated pointer on the
              forked path; release it and return NULL instead. *)
           release_alloc (m'.Mach.kstate ()) (m'.Mach.get_ret ());
           m'.Mach.set_ret 0) ]
  in
  { a_api = api; a_pre = None; a_post = Some post; a_doc = doc }
