module Expr = Ddt_solver.Expr
module Mach = Ddt_kernel.Mach

(* The paper's example annotation: a configuration parameter read from the
   registry becomes an unconstrained symbolic integer, restricted to
   non-negative values (paths with negative values are discarded). *)
let read_configuration =
  Annot.make ~api:"NdisReadConfiguration"
    ~post:(fun _ks (m : Mach.t) ->
      let symb = m.Mach.fresh_symbolic "registry_param" Expr.W32 in
      m.Mach.assume (Expr.cmp Expr.Les (Expr.word 0) symb);
      m.Mach.set_ret_expr symb)
    ~doc:
      "concrete-to-symbolic hint: registry parameters can hold any \
       non-negative integer, whatever the current registry contains"
    ()

let allocate_memory =
  Annot.fork_alloc_failure ~api:"NdisAllocateMemoryWithTag" ~out_ptr_arg:0
    ~failure_status:2 (* STATUS_RESOURCES *)
    ~doc:"memory allocation can fail; explore the failure path too"

let allocate_packet_pool =
  Annot.fork_alloc_failure ~api:"NdisAllocatePacketPool" ~out_ptr_arg:0
    ~failure_status:2
    ~doc:"packet pool allocation can fail"

let allocate_buffer_pool =
  Annot.fork_alloc_failure ~api:"NdisAllocateBufferPool" ~out_ptr_arg:0
    ~failure_status:2
    ~doc:"buffer pool allocation can fail"

let allocate_packet =
  Annot.fork_alloc_failure ~api:"NdisAllocatePacket" ~out_ptr_arg:0
    ~failure_status:2
    ~doc:"packet descriptor allocation can fail"

let allocate_buffer =
  Annot.fork_alloc_failure ~api:"NdisAllocateBuffer" ~out_ptr_arg:0
    ~failure_status:2
    ~doc:"buffer descriptor allocation can fail"

let set : Annot.set =
  [ read_configuration; allocate_memory; allocate_packet_pool;
    allocate_buffer_pool; allocate_packet; allocate_buffer ]

(* Static argument contracts: checked by the pre-analysis at call sites
   whose argument is a statically-evident constant. *)
let contracts : Annot.arg_contract list =
  [ Annot.contract ~api:"NdisAllocateMemoryWithTag" ~arg:1
      ~check:(fun size -> size > 0)
      ~doc:"allocation length must be a positive byte count";
    Annot.contract ~api:"NdisAllocateMemoryWithTag" ~arg:2
      ~check:(fun tag -> tag <> 0)
      ~doc:"pool tag must be non-zero (verifier convention)";
    Annot.contract ~api:"NdisMAllocateSharedMemory" ~arg:2
      ~check:(fun size -> size > 0)
      ~doc:"shared-memory length must be a positive byte count";
    Annot.contract ~api:"ExAllocatePoolWithTag" ~arg:1
      ~check:(fun size -> size > 0)
      ~doc:"pool allocation length must be a positive byte count";
    Annot.contract ~api:"ExAllocatePoolWithTag" ~arg:2
      ~check:(fun tag -> tag <> 0)
      ~doc:"pool tag must be non-zero (verifier convention)" ]

(* Declarative API model for the interprocedural analyses: lock pairing,
   IRQL contracts, handler registration (concurrency roles) and
   init-before-use resource pairs over the mini-NDIS surface. *)
let model : Annot.api_model =
  let open Annot in
  {
    m_contracts = contracts;
    m_locks =
      [ lock_api ~api:"NdisAcquireSpinLock" ~acquire:true ~variant:Lv_plain;
        lock_api ~api:"KeAcquireSpinLock" ~acquire:true ~variant:Lv_plain;
        lock_api ~api:"NdisDprAcquireSpinLock" ~acquire:true ~variant:Lv_dpr;
        lock_api ~api:"KeAcquireSpinLockAtDpcLevel" ~acquire:true
          ~variant:Lv_dpr;
        lock_api ~api:"NdisReleaseSpinLock" ~acquire:false ~variant:Lv_plain;
        lock_api ~api:"KeReleaseSpinLock" ~acquire:false ~variant:Lv_plain;
        lock_api ~api:"NdisDprReleaseSpinLock" ~acquire:false ~variant:Lv_dpr;
        lock_api ~api:"KeReleaseSpinLockFromDpcLevel" ~acquire:false
          ~variant:Lv_dpr ];
    m_passive_only =
      [ { ic_api = "NdisOpenConfiguration";
          ic_doc = "configuration access requires PASSIVE_LEVEL" };
        { ic_api = "NdisReadConfiguration";
          ic_doc = "configuration access requires PASSIVE_LEVEL" };
        { ic_api = "NdisCloseConfiguration";
          ic_doc = "configuration access requires PASSIVE_LEVEL" };
        { ic_api = "NdisMMapIoSpace";
          ic_doc = "mapping I/O space requires PASSIVE_LEVEL" } ];
    m_registration =
      (* miniport characteristics table: word 4 = isr, word 5 = interrupt
         DPC (see [Ddt_kernel.Ndis.entry_point_names]); timer callbacks
         registered through NdisMInitializeTimer run as DPCs *)
      [ Reg_table { rt_api = "NdisMRegisterMiniport";
                    rt_roles = [ (4, Hr_isr); (5, Hr_dpc) ] };
        Reg_arg { ra_api = "NdisMInitializeTimer"; ra_arg = 1;
                  ra_role = Hr_dpc } ];
    m_init_pairs =
      [ { ip_init = "NdisMInitializeTimer";
          ip_uses = [ "NdisMSetTimer"; "NdisMSetPeriodicTimer";
                      "NdisMCancelTimer" ];
          ip_arg = 0;
          ip_doc = "the timer object must be initialized with \
                    NdisMInitializeTimer before being set or cancelled" } ];
  }
