module Expr = Ddt_solver.Expr
module Mach = Ddt_kernel.Mach

(* The paper's example annotation: a configuration parameter read from the
   registry becomes an unconstrained symbolic integer, restricted to
   non-negative values (paths with negative values are discarded). *)
let read_configuration =
  Annot.make ~api:"NdisReadConfiguration"
    ~post:(fun _ks (m : Mach.t) ->
      let symb = m.Mach.fresh_symbolic "registry_param" Expr.W32 in
      m.Mach.assume (Expr.cmp Expr.Les (Expr.word 0) symb);
      m.Mach.set_ret_expr symb)
    ~doc:
      "concrete-to-symbolic hint: registry parameters can hold any \
       non-negative integer, whatever the current registry contains"
    ()

let allocate_memory =
  Annot.fork_alloc_failure ~api:"NdisAllocateMemoryWithTag" ~out_ptr_arg:0
    ~failure_status:2 (* STATUS_RESOURCES *)
    ~doc:"memory allocation can fail; explore the failure path too"

let allocate_packet_pool =
  Annot.fork_alloc_failure ~api:"NdisAllocatePacketPool" ~out_ptr_arg:0
    ~failure_status:2
    ~doc:"packet pool allocation can fail"

let allocate_buffer_pool =
  Annot.fork_alloc_failure ~api:"NdisAllocateBufferPool" ~out_ptr_arg:0
    ~failure_status:2
    ~doc:"buffer pool allocation can fail"

let allocate_packet =
  Annot.fork_alloc_failure ~api:"NdisAllocatePacket" ~out_ptr_arg:0
    ~failure_status:2
    ~doc:"packet descriptor allocation can fail"

let allocate_buffer =
  Annot.fork_alloc_failure ~api:"NdisAllocateBuffer" ~out_ptr_arg:0
    ~failure_status:2
    ~doc:"buffer descriptor allocation can fail"

let set : Annot.set =
  [ read_configuration; allocate_memory; allocate_packet_pool;
    allocate_buffer_pool; allocate_packet; allocate_buffer ]

(* Static argument contracts: checked by the pre-analysis at call sites
   whose argument is a statically-evident constant. *)
let contracts : Annot.arg_contract list =
  [ Annot.contract ~api:"NdisAllocateMemoryWithTag" ~arg:1
      ~check:(fun size -> size > 0)
      ~doc:"allocation length must be a positive byte count";
    Annot.contract ~api:"NdisAllocateMemoryWithTag" ~arg:2
      ~check:(fun tag -> tag <> 0)
      ~doc:"pool tag must be non-zero (verifier convention)";
    Annot.contract ~api:"NdisMAllocateSharedMemory" ~arg:2
      ~check:(fun size -> size > 0)
      ~doc:"shared-memory length must be a positive byte count";
    Annot.contract ~api:"ExAllocatePoolWithTag" ~arg:1
      ~check:(fun size -> size > 0)
      ~doc:"pool allocation length must be a positive byte count";
    Annot.contract ~api:"ExAllocatePoolWithTag" ~arg:2
      ~check:(fun tag -> tag <> 0)
      ~doc:"pool tag must be non-zero (verifier convention)" ]
