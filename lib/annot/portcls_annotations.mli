(** The portcls (audio/WDM) annotation set — the paper reports writing the
    54 annotations its sound drivers needed in one day. Covers pool
    allocation failure (the Ensoniq AudioPCI null-deref) and
    [PcNewInterruptSync] failure (its second crash in Table 2). *)

val set : Annot.set

val contracts : Annot.arg_contract list
(** Static argument contracts over the same API surface, consumed by the
    pre-analysis ({!Ddt_staticx.Sfind}). *)

val model : Annot.api_model
(** Declarative lock / IRQL / registration / init-pair facts consumed by
    the interprocedural analyses; includes {!contracts}. *)
