module Mach = Ddt_kernel.Mach
module Kstate = Ddt_kernel.Kstate

let ex_allocate_pool =
  Annot.fork_ret_null ~api:"ExAllocatePoolWithTag"
    ~doc:"pool allocation can return NULL; explore the failure path"

(* PcNewInterruptSync can fail: undo the registration on the forked path. *)
let pc_new_interrupt_sync =
  Annot.make ~api:"PcNewInterruptSync"
    ~post:(fun _ks (m : Mach.t) ->
      let out = m.Mach.arg 0 in
      m.Mach.fork
        [ ("success", fun _m' -> ());
          ("failure",
           fun m' ->
             let ks = m'.Mach.kstate () in
             let handle = m'.Mach.read_u32 out in
             (match Kstate.alloc_of_handle ks handle with
              | Some a when not a.Kstate.a_freed -> Kstate.free_alloc ks a
              | _ -> ());
             Kstate.set_isr_registered ks false;
             m'.Mach.write_u32 out 0;
             m'.Mach.set_ret 1 (* STATUS_FAILURE *)) ])
    ~doc:"interrupt sync creation can fail; explore the failure path"
    ()

let set : Annot.set = [ ex_allocate_pool; pc_new_interrupt_sync ]

let contracts : Annot.arg_contract list =
  [ Annot.contract ~api:"ExAllocatePoolWithTag" ~arg:1
      ~check:(fun size -> size > 0)
      ~doc:"pool allocation length must be a positive byte count";
    Annot.contract ~api:"ExAllocatePoolWithTag" ~arg:2
      ~check:(fun tag -> tag <> 0)
      ~doc:"pool tag must be non-zero (verifier convention)" ]

(* Declarative API model over the portcls surface (see
   {!Ndis_annotations.model} for the field semantics). *)
let model : Annot.api_model =
  let open Annot in
  {
    m_contracts = contracts;
    m_locks =
      [ lock_api ~api:"KeAcquireSpinLock" ~acquire:true ~variant:Lv_plain;
        lock_api ~api:"KeAcquireSpinLockAtDpcLevel" ~acquire:true
          ~variant:Lv_dpr;
        lock_api ~api:"KeReleaseSpinLock" ~acquire:false ~variant:Lv_plain;
        lock_api ~api:"KeReleaseSpinLockFromDpcLevel" ~acquire:false
          ~variant:Lv_dpr ];
    m_passive_only = [];
    m_registration =
      (* miniport table: word 3 = isr, word 4 = dpc (see
         [Ddt_kernel.Portcls.entry_point_names]); PcNewInterruptSync
         registers its argument-1 service routine as the ISR *)
      [ Reg_table { rt_api = "PcRegisterMiniport";
                    rt_roles = [ (3, Hr_isr); (4, Hr_dpc) ] };
        Reg_arg { ra_api = "PcNewInterruptSync"; ra_arg = 1;
                  ra_role = Hr_isr } ];
    m_init_pairs = [];
  }
