(** Immediate post-dominators per function over the {!Icfg}: the merge
    scheduler's answer to "where do the two arms of this branch
    reconverge?". Computed once per image; addresses are image-relative
    block leaders, like the rest of the static layer.

    The result is a placement heuristic only: the merge engine
    re-checks every fusion dynamically (same pc, compatible context,
    structurally disjoint guards), so an imprecise post-dominator — for
    instance around an exit-free cycle — costs an unexercised merge
    token, never soundness. *)

type t

val compute : Icfg.t -> t

val merge_point : t -> int -> int option
(** [merge_point t leader] is the image-relative leader of the block's
    immediate post-dominator within its function, or [None] when the
    block exits the function directly (or is unknown to the ICFG). *)
