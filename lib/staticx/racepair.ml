(* Static race-pair detection: interrupt-context uses of a shared
   resource against its main-path initialization.

   This targets the DDT paper's "interrupt arrives before the timer /
   DPC state is initialized" class (Table 2): an ISR or DPC fires as
   soon as the handler is registered, typically mid-[initialize], so
   any resource it touches must be ordered after publication by a
   guarding flag, a common spin lock, or publication inside the handler
   itself.

   Two rules, both evaluated on {!Lockirql.site}s (every event of every
   analysis instance, tagged with the instance's DISPATCH/PASSIVE role
   and must-held lockset):

   - [race-unguarded-deref]: an interrupt-context load/store through a
     pointer read from a driver global.
   - [race-unguarded-use]: an interrupt-context call of an API from an
     [init_pair]'s use set (e.g. [NdisMSetTimer]) racing the pair's
     initializer on the main path.

   A use is safe when one of:
   - self-guard: the dereferenced global itself is in the branch-guard
     set (tested nonzero on this path);
   - local publication: the handler stores the global earlier in its
     own body;
   - no publication: nothing ever stores the resource (pre-initialized
     data — nothing to order against);
   - common lock: the use's must-lockset intersects the must-lockset of
     every publication site;
   - valid flag: some guard flag f is only ever raised after the
     resource is published (every potentially-nonzero store to f is
     preceded, in its own function, by a publication), so f nonzero
     implies initialized.  A flag raised before the publication — the
     seeded rtl8029/ac97 defect — fails this check. *)

module Df = Dataflow
module Li = Lockirql
module Annot = Ddt_annot.Annot

(* (function entry, function name, event offset, must-lockset) per
   publication / flag-store site; locksets intersect across instances *)
type psite = {
  p_fn : int;
  p_name : string;
  p_off : int;
  p_lockset : Li.tok list;
}

let inter a b = List.filter (fun x -> List.mem x b) a

(* Group duplicate (same event, different instance) occurrences:
   must-lockset is the intersection. *)
let group (l : psite list) =
  let tbl : (int, psite) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun p ->
      match Hashtbl.find_opt tbl p.p_off with
      | None -> Hashtbl.replace tbl p.p_off p
      | Some q ->
          Hashtbl.replace tbl p.p_off
            { q with p_lockset = inter q.p_lockset p.p_lockset })
    l;
  List.sort compare (Hashtbl.fold (fun _ p acc -> p :: acc) tbl [])

let definitely_zero (v : Df.av) = v.Df.base = Df.Bconst && v.Df.disp = 0

let analyze ~(model : Annot.api_model) ~(sites : Li.site list) =
  let psite (s : Li.site) off =
    { p_fn = s.Li.s_fn.Icfg.fn_entry; p_name = s.Li.s_fn.Icfg.fn_name;
      p_off = off; p_lockset = s.Li.s_lockset }
  in
  (* main-path stores to image word g (publications of a global) *)
  let stores_to g =
    group
      (List.filter_map
         (fun s ->
           match s.Li.s_event with
           | Df.E_store { ev_off; addr; _ }
             when (not s.Li.s_interrupt)
                  && addr.Df.base = Df.Bimage && addr.Df.disp = g ->
               Some (psite s ev_off)
           | _ -> None)
         sites)
  in
  (* every potentially-nonzero store to flag word f, any context *)
  let flag_raises f =
    group
      (List.filter_map
         (fun s ->
           match s.Li.s_event with
           | Df.E_store { ev_off; addr; value; _ }
             when addr.Df.base = Df.Bimage && addr.Df.disp = f
                  && not (definitely_zero value) ->
               Some (psite s ev_off)
           | _ -> None)
         sites)
  in
  (* main-path calls of an init_pair's initializer *)
  let init_calls ip =
    group
      (List.filter_map
         (fun s ->
           match s.Li.s_event with
           | Df.E_kcall { ev_off; name; _ }
             when (not s.Li.s_interrupt) && name = ip.Annot.ip_init ->
               Some (psite s ev_off)
           | _ -> None)
         sites)
  in
  let common_lock use_lockset pubs =
    pubs <> []
    && List.exists
         (fun t ->
           List.for_all (fun p -> List.mem t p.p_lockset) pubs)
         use_lockset
  in
  let valid_flag f pubs =
    let raises = flag_raises f in
    raises <> []
    && List.for_all
         (fun r ->
           List.exists
             (fun p -> p.p_fn = r.p_fn && p.p_off < r.p_off)
             pubs)
         raises
  in
  let safe_via_flag guards pubs =
    List.exists (fun f -> valid_flag f pubs) guards
  in
  let findings = ref [] in
  let add rule (s : Li.site) pos msg =
    findings := (rule, s.Li.s_fn.Icfg.fn_name, pos, msg) :: !findings
  in
  List.iter
    (fun (s : Li.site) ->
      if s.Li.s_interrupt then
        match s.Li.s_event with
        | Df.E_load { ev_off; addr; guards }
        | Df.E_store { ev_off; addr; guards; _ } -> (
            match addr.Df.base with
            | Df.Bglobal g ->
                let pubs = stores_to g in
                let self_guard = List.mem g guards in
                let local_pub =
                  List.exists
                    (fun (s' : Li.site) ->
                      s'.Li.s_interrupt
                      && s'.Li.s_fn.Icfg.fn_entry = s.Li.s_fn.Icfg.fn_entry
                      &&
                      match s'.Li.s_event with
                      | Df.E_store { ev_off = o; addr = a; _ } ->
                          a.Df.base = Df.Bimage && a.Df.disp = g
                          && o < ev_off
                      | _ -> false)
                    sites
                in
                if
                  pubs <> [] && (not self_guard) && (not local_pub)
                  && (not (common_lock s.Li.s_lockset pubs))
                  && not (safe_via_flag guards pubs)
                then
                  add "race-unguarded-deref" s ev_off
                    (Printf.sprintf
                       "interrupt-context access through global pointer \
                        g0x%x is not ordered after its initialization in \
                        %s (no guarding flag, no common lock)"
                       g
                       (String.concat ", "
                          (List.sort_uniq compare
                             (List.map (fun p -> p.p_name) pubs))))
            | _ -> ())
        | Df.E_kcall { ev_off; name; guards; _ } ->
            List.iter
              (fun ip ->
                if List.mem name ip.Annot.ip_uses then begin
                  let pubs = init_calls ip in
                  if
                    pubs <> []
                    && (not (common_lock s.Li.s_lockset pubs))
                    && not (safe_via_flag guards pubs)
                  then
                    add "race-unguarded-use" s ev_off
                      (Printf.sprintf
                         "%s called in interrupt context may run before \
                          %s completes in %s (no guarding flag orders the \
                          use after initialization)"
                         name ip.Annot.ip_init
                         (String.concat ", "
                            (List.sort_uniq compare
                               (List.map (fun p -> p.p_name) pubs))))
                end)
              model.Annot.m_init_pairs)
    sites;
  List.sort_uniq compare !findings
