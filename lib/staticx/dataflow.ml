(* Interprocedural, flow-sensitive dataflow framework over the Icfg.

   Two layers:

   1. A *value pre-pass* ([analyze]): a per-function Kildall fixpoint
      computing, at every block, an abstract machine state (registers,
      frame slots, operand stack, nonzero-global guard set) in terms of
      symbolic incoming arguments ([Barg]).  Its stabilized output is a
      per-block *event stream* — kernel calls with recovered argument
      values, loads and stores with recovered addresses, each annotated
      with the guard set in force — plus per-successor refined states
      (branch guards) and call-site argument vectors.

   2. A *client fixpoint* ([Make]): a context-tabulated interprocedural
      worklist over a join-semilattice client domain.  The client only
      sees the event stream; call/return plumbing (function summaries,
      context widening, dependency re-enqueueing) is owned here, so new
      checkers are instances, not engines.

   Soundness boundary (documented in DESIGN.md): stores through
   non-global pointers (heap/context) are assumed not to alias driver
   globals — globals are only addressed through [lea], which the Mini-C
   compiler guarantees.  Kernel calls may write driver memory only
   through pointer arguments (out-params). *)

module Isa = Ddt_dvm.Isa
module Image = Ddt_dvm.Image
module Annot = Ddt_annot.Annot

let nregs = 16
let sort_uniq = List.sort_uniq compare

(* --- abstract values -------------------------------------------------- *)

type base =
  | Bconst                 (* pure constant; the value is [disp] *)
  | Bimage                 (* image-relative address [disp] *)
  | Bglobal of int         (* value loaded from data word at offset g *)
  | Barg of int            (* i-th incoming argument of this function *)
  | Bframe                 (* frame address fp+[disp] ([disp] signed) *)
  | Btop

type av = {
  base : base;
  disp : int;
  nz : int list option;
  (* "if this value is nonzero, each listed global was tested nonzero";
     [None] is the universal (vacuous) set — the value cannot be
     nonzero.  Joins intersect, [None] is the identity. *)
  z : int list option;     (* same, for "this value is zero" *)
}

let signed v =
  let v = v land 0xFFFFFFFF in
  if v land 0x80000000 <> 0 then v - 0x100000000 else v

let av_top = { base = Btop; disp = 0; nz = Some []; z = Some [] }

let av_const k =
  let k = k land 0xFFFFFFFF in
  { base = Bconst;
    disp = k;
    nz = (if k = 0 then None else Some []);
    z = (if k = 0 then Some [] else None) }

(* Image addresses are rebased at load and never zero. *)
let av_image a = { base = Bimage; disp = a; nz = Some []; z = None }
let av_frame d = { base = Bframe; disp = d; nz = Some []; z = None }
let av_arg i = { base = Barg i; disp = 0; nz = Some []; z = Some [] }

let inter_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (List.filter (fun g -> List.mem g b) a)

let union_opt a b =
  match (a, b) with
  | None, _ | _, None -> None
  | Some a, Some b -> Some (sort_uniq (a @ b))

let join_av a b =
  if a = b then a
  else
    let same = a.base = b.base && a.disp = b.disp in
    { base = (if same then a.base else Btop);
      disp = (if same then a.disp else 0);
      nz = inter_opt a.nz b.nz;
      z = inter_opt a.z b.z }

let pp_av fmt v =
  (match v.base with
   | Bconst -> Format.fprintf fmt "%#x" v.disp
   | Bimage -> Format.fprintf fmt "img+%#x" v.disp
   | Bglobal g -> Format.fprintf fmt "[g%#x]%s" g
                    (if v.disp = 0 then "" else Printf.sprintf "%+d" v.disp)
   | Barg i -> Format.fprintf fmt "arg%d%s" i
                 (if v.disp = 0 then "" else Printf.sprintf "%+d" v.disp)
   | Bframe -> Format.fprintf fmt "fp%+d" v.disp
   | Btop -> Format.fprintf fmt "?");
  ignore fmt

(* Substitute a callee-relative value into caller terms through the
   actual argument vector of a call site. *)
let av_subst ~args v =
  match v.base with
  | Barg i -> (
      match args with
      | Some l when i < List.length l -> (
          let a = List.nth l i in
          match a.base with
          | Btop -> av_top
          | Bconst -> av_const (a.disp + v.disp)
          | _ -> { a with disp = a.disp + v.disp; nz = Some []; z = Some [] })
      | _ -> av_top)
  | Bframe -> av_top (* callee-frame addresses are meaningless upstream *)
  | _ -> v

(* --- machine state ---------------------------------------------------- *)

type vstate = {
  regs : av array;
  frame : (int * av) list;      (* signed fp offset -> value, sorted *)
  stack : av list;              (* operand stack, head = top *)
  stack_ok : bool;              (* false once push/pop tracking is lost *)
  guards : int list;            (* globals known nonzero here, sorted *)
}

let entry_vstate () =
  { regs = Array.make nregs av_top;
    frame = [];
    stack = [];
    stack_ok = true;
    guards = [] }

let frame_set frame d v =
  (d, v) :: List.filter (fun (d', _) -> d' <> d) frame |> List.sort compare

let frame_del frame d = List.filter (fun (d', _) -> d' <> d) frame

let join_vstate a b =
  let frame =
    List.filter_map
      (fun (d, v) ->
        match List.assoc_opt d b.frame with
        | Some v' -> Some (d, join_av v v')
        | None -> None)
      a.frame
  in
  let stack_ok =
    a.stack_ok && b.stack_ok && List.length a.stack = List.length b.stack
  in
  { regs = Array.init nregs (fun i -> join_av a.regs.(i) b.regs.(i));
    frame;
    stack = (if stack_ok then List.map2 join_av a.stack b.stack else []);
    stack_ok;
    guards = List.filter (fun g -> List.mem g b.guards) a.guards }

let equal_vstate a b =
  a.regs = b.regs && a.frame = b.frame && a.stack = b.stack
  && a.stack_ok = b.stack_ok && a.guards = b.guards

(* Forget everything implied by global [g]: it was just overwritten. *)
let kill_global st g =
  let strip = function
    | Some l when List.mem g l -> Some (List.filter (( <> ) g) l)
    | o -> o
  in
  let fix v = { v with nz = strip v.nz; z = strip v.z } in
  { st with
    regs = Array.map fix st.regs;
    frame = List.map (fun (d, v) -> (d, fix v)) st.frame;
    stack = List.map fix st.stack;
    guards = List.filter (( <> ) g) st.guards }

let add_guards gs = function
  | None -> gs                       (* vacuous: path is infeasible *)
  | Some l -> sort_uniq (l @ gs)

(* --- events ----------------------------------------------------------- *)

type event =
  | E_kcall of { ev_off : int; name : string; args : av list option;
                 guards : int list }
      (* [args]: operand-stack snapshot, top first — a prefix of it is
         the argument vector ([None] when stack tracking was lost) *)
  | E_load of { ev_off : int; addr : av; guards : int list }
  | E_store of { ev_off : int; addr : av; value : av; guards : int list }

let event_off = function
  | E_kcall { ev_off; _ } | E_load { ev_off; _ } | E_store { ev_off; _ } ->
      ev_off

(* --- instruction transfer --------------------------------------------- *)

let definitely_nonzero v =
  match v.base with
  | Bconst -> v.disp <> 0
  | Bimage | Bframe -> true
  | _ -> false

let av_add a b =
  match (a.base, b.base) with
  | Bconst, Bconst -> av_const (a.disp + b.disp)
  | Bconst, (Bimage | Bglobal _ | Barg _ | Bframe) ->
      { b with disp = b.disp + signed a.disp; nz = Some []; z = b.z }
  | (Bimage | Bglobal _ | Barg _ | Bframe), Bconst ->
      { a with disp = a.disp + signed b.disp; nz = Some []; z = a.z }
  | _ -> av_top

let av_sub a b =
  match (a.base, b.base) with
  | Bconst, Bconst -> av_const (a.disp - b.disp)
  | (Bimage | Bglobal _ | Barg _ | Bframe), Bconst ->
      { a with disp = a.disp - signed b.disp; nz = Some []; z = a.z }
  | _ -> av_top

let alu op a b =
  match op with
  | Isa.Add -> av_add a b
  | Isa.Sub -> av_sub a b
  | _ when a.base = Bconst && b.base = Bconst -> (
      (* constant folding: table indexing uses [movi idx; shli ,2] *)
      let x = a.disp and y = b.disp in
      match op with
      | Isa.Mul -> av_const (x * y)
      | Isa.Divu -> if y = 0 then av_top else av_const (x / y)
      | Isa.Remu -> if y = 0 then av_top else av_const (x mod y)
      | Isa.And -> av_const (x land y)
      | Isa.Or -> av_const (x lor y)
      | Isa.Xor -> av_const (x lxor y)
      | Isa.Shl -> av_const (x lsl (y land 31))
      | Isa.Shru -> av_const ((x land 0xFFFFFFFF) lsr (y land 31))
      | Isa.Shrs -> av_const (signed x asr (y land 31))
      | Isa.Add | Isa.Sub -> av_top (* unreachable *))
  | Isa.And -> { av_top with nz = union_opt a.nz b.nz }
  | Isa.Or -> { av_top with z = union_opt a.z b.z }
  | _ -> av_top

let cmp cop a b =
  let is0 v = v.base = Bconst && v.disp = 0 in
  match cop with
  | Isa.Eq when a.base = Bconst && b.base = Bconst ->
      av_const (if a.disp = b.disp then 1 else 0)
  | Isa.Ne when a.base = Bconst && b.base = Bconst ->
      av_const (if a.disp <> b.disp then 1 else 0)
  | Isa.Eq when is0 b -> { av_top with nz = a.z; z = a.nz }
  | Isa.Eq when is0 a -> { av_top with nz = b.z; z = b.nz }
  | Isa.Ne when is0 b -> { av_top with nz = a.nz; z = a.z }
  | Isa.Ne when is0 a -> { av_top with nz = b.nz; z = b.z }
  | _ -> av_top

let addr_of st rs off = av_add st.regs.(rs) (av_const (signed off))

let load_value st addr =
  match addr.base with
  | Bframe -> (
      match List.assoc_opt addr.disp st.frame with
      | Some v -> v
      | None ->
          if addr.disp >= 8 && (addr.disp - 8) mod 4 = 0 then
            av_arg ((addr.disp - 8) / 4)
          else av_top)
  | Bimage -> { base = Bglobal addr.disp; disp = 0;
                nz = Some [ addr.disp ]; z = Some [] }
  | _ -> av_top

let set st r v =
  let regs = Array.copy st.regs in
  regs.(r) <- v;
  { st with regs }

let do_store st addr v =
  match addr.base with
  | Bframe -> { st with frame = frame_set st.frame addr.disp v }
  | Bimage ->
      let g = addr.disp in
      let st = kill_global st g in
      if definitely_nonzero v then
        { st with guards = sort_uniq (g :: st.guards) }
      else st
  | _ -> st (* heap/ctx store: assumed not to alias globals *)

let rec drop_n n l =
  if n <= 0 then l else match l with [] -> [] | _ :: t -> drop_n (n - 1) t

let rec push_n n v l = if n <= 0 then l else push_n (n - 1) v (v :: l)

(* Kernel call: arguments live on the operand stack (pushed
   right-to-left, cleaned by the caller afterwards).  The kernel may
   write through pointer arguments, so global/frame out-params die. *)
let do_kcall st =
  let st =
    if st.stack_ok then
      List.fold_left
        (fun st a ->
          match a.base with
          | Bimage -> kill_global st a.disp
          | Bframe -> { st with frame = frame_del st.frame a.disp }
          | _ -> st)
        st st.stack
    else { st with guards = []; frame = [] }
  in
  let regs = Array.copy st.regs in
  for i = 0 to nregs - 1 do
    if i <> Isa.fp && i <> Isa.sp then regs.(i) <- av_top
  done;
  { st with regs }

(* Driver-internal call: callee may store any global and may write
   caller locals whose addresses escaped through the operand stack.
   [ret] is the callee's return value in caller terms, when known. *)
let after_call st ~ret =
  let st =
    if st.stack_ok then
      List.fold_left
        (fun st a ->
          match a.base with
          | Bframe -> { st with frame = frame_del st.frame a.disp }
          | _ -> st)
        st st.stack
    else { st with frame = [] }
  in
  let regs = Array.copy st.regs in
  for i = 0 to nregs - 1 do
    if i <> Isa.fp && i <> Isa.sp then regs.(i) <- av_top
  done;
  regs.(0) <- ret;
  { st with regs; guards = [] }

(* One instruction.  [emit] receives recovered events; control transfer
   is handled at block level. *)
let step icfg emit st (pos, instr) =
  match instr with
  | Isa.Nop | Isa.Cli | Isa.Sti | Isa.Jmp _ | Isa.Jz _ | Isa.Jnz _
  | Isa.Ret | Isa.Hlt | Isa.Call _ | Isa.Callr _ ->
      st
  | Isa.Mov (rd, rs) ->
      if rd = Isa.fp && rs = Isa.sp then set st rd (av_frame 0)
      else if rd = Isa.sp && rs = Isa.fp then
        (* epilogue: the operand stack above the frame is discarded *)
        { st with stack = []; stack_ok = true }
      else set st rd st.regs.(rs)
  | Isa.Movi (rd, k) -> set st rd (av_const k)
  | Isa.Lea (rd, a) -> set st rd (av_image a)
  | Isa.Alu (op, rd, r1, r2) -> set st rd (alu op st.regs.(r1) st.regs.(r2))
  | Isa.Alui (op, rd, r1, k) ->
      if rd = Isa.sp && r1 = Isa.sp then
        (* explicit stack adjustment: kcall argument cleanup / reserve *)
        (match op with
         | Isa.Add -> { st with stack = drop_n (k / 4) st.stack }
         | Isa.Sub -> { st with stack = push_n (k / 4) av_top st.stack }
         | _ -> { st with stack = []; stack_ok = false })
      else set st rd (alu op st.regs.(r1) (av_const k))
  | Isa.Cmp (cop, rd, r1, r2) -> set st rd (cmp cop st.regs.(r1) st.regs.(r2))
  | Isa.Cmpi (cop, rd, r1, k) -> set st rd (cmp cop st.regs.(r1) (av_const k))
  | Isa.Ldw (rd, rs, off) ->
      let addr = addr_of st rs off in
      emit (E_load { ev_off = pos; addr; guards = st.guards });
      set st rd (load_value st addr)
  | Isa.Ldb (rd, rs, off) ->
      let addr = addr_of st rs off in
      emit (E_load { ev_off = pos; addr; guards = st.guards });
      set st rd av_top
  | Isa.Stw (rs1, off, rs2) ->
      let addr = addr_of st rs1 off in
      let v = st.regs.(rs2) in
      emit (E_store { ev_off = pos; addr; value = v; guards = st.guards });
      do_store st addr v
  | Isa.Stb (rs1, off, _rs2) ->
      let addr = addr_of st rs1 off in
      emit (E_store { ev_off = pos; addr; value = av_top;
                      guards = st.guards });
      (* byte store: clobber rather than track *)
      do_store st addr av_top
  | Isa.Push r ->
      if st.stack_ok then { st with stack = st.regs.(r) :: st.stack } else st
  | Isa.Pop r -> (
      match st.stack with
      | v :: rest -> { (set st r v) with stack = rest }
      | [] -> { (set st r av_top) with stack_ok = false })
  | Isa.Kcall n ->
      let name =
        let imports = icfg.Icfg.image.Image.imports in
        if n >= 0 && n < Array.length imports then imports.(n)
        else Printf.sprintf "kcall_%d" n
      in
      emit
        (E_kcall { ev_off = pos; name;
                   args = (if st.stack_ok then Some st.stack else None);
                   guards = st.guards });
      do_kcall st

(* --- per-block results ------------------------------------------------ *)

type binfo = {
  bi_in : vstate;
  bi_events : event list;
  bi_succ : (int * vstate) list;  (* refined per-successor exit states *)
  bi_call_args : av list option;  (* T_call(r): stack snapshot at the call *)
}

type finfo = {
  fi_func : Icfg.func;
  fi_blocks : (int * binfo) list;
  fi_ret : av;                    (* join of r0 over ret blocks *)
}

type t = {
  icfg : Icfg.t;
  funcs : (int * finfo) list;     (* keyed by fn_entry, sorted *)
}

(* Successor states after a block: branch edges gain the tested
   register's implication set as guards.  [bb_succs] is sorted, so the
   branch target/fall-through split is recovered from the terminator
   instruction itself. *)
let succ_states (b : Icfg.block) st ~ret_of =
  let last () =
    match List.rev b.Icfg.bb_instrs with
    | (pos, i) :: _ -> Some (pos, i)
    | [] -> None
  in
  match b.Icfg.bb_term with
  | Icfg.T_branch t -> (
      match last () with
      | Some (pos, Isa.Jz (r, _)) | Some (pos, Isa.Jnz (r, _)) ->
          let fall = pos + Isa.instr_size in
          let v = st.regs.(r) in
          let on_zero = { st with guards = add_guards st.guards v.z } in
          let on_nonzero = { st with guards = add_guards st.guards v.nz } in
          let tgt, fth =
            match last () with
            | Some (_, Isa.Jz _) -> (on_zero, on_nonzero)
            | _ -> (on_nonzero, on_zero)
          in
          if t = fall then List.map (fun s -> (s, st)) b.Icfg.bb_succs
          else
            List.map (fun s -> if s = t then (s, tgt) else (s, fth))
              b.Icfg.bb_succs
      | _ -> List.map (fun s -> (s, st)) b.Icfg.bb_succs)
  | Icfg.T_call _ | Icfg.T_callr _ ->
      let args = if st.stack_ok then Some st.stack else None in
      let ret =
        let rets =
          List.filter_map (fun callee -> ret_of callee ~args) b.Icfg.bb_calls
        in
        match rets with
        | [] -> av_top
        | r :: rest -> List.fold_left join_av r rest
      in
      let out = after_call st ~ret in
      List.map (fun s -> (s, out)) b.Icfg.bb_succs
  | _ -> List.map (fun s -> (s, st)) b.Icfg.bb_succs

let analyze_func icfg ~ret_of (fn : Icfg.func) =
  let ins : (int, vstate) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.replace ins fn.Icfg.fn_entry (entry_vstate ());
  let work = Queue.create () in
  Queue.add fn.Icfg.fn_entry work;
  let no_emit _ = () in
  while not (Queue.is_empty work) do
    let l = Queue.pop work in
    match (Icfg.block icfg l, Hashtbl.find_opt ins l) with
    | Some b, Some st0 ->
        let st =
          List.fold_left (step icfg no_emit) st0 b.Icfg.bb_instrs
        in
        List.iter
          (fun (s, out) ->
            if List.mem s fn.Icfg.fn_blocks then
              match Hashtbl.find_opt ins s with
              | None ->
                  Hashtbl.replace ins s out;
                  Queue.add s work
              | Some old ->
                  let j = join_vstate old out in
                  if not (equal_vstate j old) then begin
                    Hashtbl.replace ins s j;
                    Queue.add s work
                  end)
          (succ_states b st ~ret_of)
    | _ -> ()
  done;
  (* Final pass over the stabilized states: record events and refined
     successor states per block. *)
  let fi_blocks =
    List.filter_map
      (fun l ->
        match (Icfg.block icfg l, Hashtbl.find_opt ins l) with
        | Some b, Some bi_in ->
            let evs = ref [] in
            let emit e = evs := e :: !evs in
            let st =
              List.fold_left (step icfg emit) bi_in b.Icfg.bb_instrs
            in
            let bi_call_args =
              match b.Icfg.bb_term with
              | Icfg.T_call _ | Icfg.T_callr _ when st.stack_ok ->
                  Some st.stack
              | _ -> None
            in
            Some
              (l, { bi_in; bi_events = List.rev !evs;
                    bi_succ = succ_states b st ~ret_of; bi_call_args })
        | _ -> None)
      fn.Icfg.fn_blocks
  in
  let fi_ret =
    let rets =
      List.filter_map
        (fun l ->
          match (List.assoc_opt l fi_blocks, Icfg.block icfg l) with
          | Some bi, Some b ->
              let st =
                List.fold_left (step icfg (fun _ -> ())) bi.bi_in
                  b.Icfg.bb_instrs
              in
              Some st.regs.(0)
          | _ -> None)
        fn.Icfg.fn_rets
    in
    match rets with
    | [] -> av_top
    | r :: rest -> List.fold_left join_av r rest
  in
  { fi_func = fn; fi_blocks; fi_ret }

(* Bottom-up call-graph order so callee return values are available to
   callers; cycle members see [av_top]. *)
let analyze (icfg : Icfg.t) =
  let order =
    let visited = Hashtbl.create 16 in
    let out = ref [] in
    let rec dfs entry =
      if not (Hashtbl.mem visited entry) then begin
        Hashtbl.replace visited entry ();
        (match List.assoc_opt entry icfg.Icfg.call_graph with
         | Some callees -> List.iter dfs callees
         | None -> ());
        out := entry :: !out
      end
    in
    List.iter (fun f -> dfs f.Icfg.fn_entry) icfg.Icfg.funcs;
    List.rev !out
  in
  let done_ : (int, finfo) Hashtbl.t = Hashtbl.create 16 in
  let ret_of entry ~args =
    match Hashtbl.find_opt done_ entry with
    | Some fi -> Some (av_subst ~args fi.fi_ret)
    | None -> None
  in
  List.iter
    (fun entry ->
      match List.find_opt (fun f -> f.Icfg.fn_entry = entry) icfg.Icfg.funcs
      with
      | Some fn -> Hashtbl.replace done_ entry (analyze_func icfg ~ret_of fn)
      | None -> ())
    order;
  let funcs =
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) done_ [])
  in
  { icfg; funcs }

let func_info t entry = List.assoc_opt entry t.funcs

let block_info t leader =
  match Icfg.func_of_block t.icfg leader with
  | Some fn -> (
      match List.assoc_opt fn.Icfg.fn_entry t.funcs with
      | Some fi -> List.assoc_opt leader fi.fi_blocks
      | None -> None)
  | None -> None

(* --- handler-role recovery -------------------------------------------- *)

type roles = {
  ro_map : (int * Annot.handler_role) list;   (* fn_entry -> role, sorted *)
  ro_interrupt : int list;  (* entries reachable from ISR/DPC handlers *)
  ro_roots : (int * Annot.handler_role) list; (* analysis roots *)
}

let role_of roles entry =
  match List.assoc_opt entry roles.ro_map with
  | Some r -> r
  | None -> Annot.Hr_main

(* Handler tables are written at run time ([lea table; ...; lea code;
   stw]) or pre-initialized in relocated data; registration passes the
   table base to the kernel.  Both sources feed one slot -> code map. *)
let roles t ~(model : Annot.api_model) =
  let icfg = t.icfg in
  let slot_code : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (slot, code) -> Hashtbl.replace slot_code slot code)
    icfg.Icfg.vsa.Vsa.data_code_refs;
  List.iter
    (fun (_, fi) ->
      List.iter
        (fun (_, bi) ->
          List.iter
            (fun ev ->
              match ev with
              | E_store { addr = { base = Bimage; disp = slot; _ };
                          value = { base = Bimage; disp = code; _ }; _ }
                when Hashtbl.mem icfg.Icfg.leader_of code ->
                  Hashtbl.replace slot_code slot code
              | _ -> ())
            bi.bi_events)
        fi.fi_blocks)
    t.funcs;
  let entry_of_code code =
    match Hashtbl.find_opt icfg.Icfg.leader_of code with
    | Some l -> (
        match Icfg.func_of_block icfg l with
        | Some fn -> Some fn.Icfg.fn_entry
        | None -> None)
    | None -> None
  in
  let map = ref [] in
  let add code role =
    match entry_of_code code with
    | Some e -> (
        match List.assoc_opt e !map with
        | Some Annot.Hr_isr -> ()  (* strongest role wins *)
        | Some Annot.Hr_dpc when role <> Annot.Hr_isr -> ()
        | _ -> map := (e, role) :: List.remove_assoc e !map)
    | None -> ()
  in
  let nth_arg args i =
    match args with
    | Some l when i < List.length l -> Some (List.nth l i)
    | _ -> None
  in
  List.iter
    (fun (_, fi) ->
      List.iter
        (fun (_, bi) ->
          List.iter
            (fun ev ->
              match ev with
              | E_kcall { name; args; _ } ->
                  List.iter
                    (fun rc ->
                      match rc with
                      | Annot.Reg_table { rt_api; rt_roles }
                        when rt_api = name -> (
                          match nth_arg args 0 with
                          | Some { base = Bimage; disp = tbl; _ } ->
                              List.iter
                                (fun (idx, role) ->
                                  match
                                    Hashtbl.find_opt slot_code
                                      (tbl + (4 * idx))
                                  with
                                  | Some code -> add code role
                                  | None -> ())
                                rt_roles
                          | _ -> ())
                      | Annot.Reg_arg { ra_api; ra_arg; ra_role }
                        when ra_api = name -> (
                          match nth_arg args ra_arg with
                          | Some { base = Bimage; disp = code; _ } ->
                              add code ra_role
                          | _ -> ())
                      | _ -> ())
                    model.Annot.m_registration
              | _ -> ())
            bi.bi_events)
        fi.fi_blocks)
    t.funcs;
  let ro_map = List.sort compare !map in
  (* interrupt context: ISR/DPC handlers plus everything they call *)
  let interrupt = Hashtbl.create 16 in
  let rec close entry =
    if not (Hashtbl.mem interrupt entry) then begin
      Hashtbl.replace interrupt entry ();
      match List.assoc_opt entry icfg.Icfg.call_graph with
      | Some callees -> List.iter close callees
      | None -> ()
    end
  in
  List.iter
    (fun (e, r) -> if r <> Annot.Hr_main then close e)
    ro_map;
  let ro_interrupt =
    List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) interrupt [])
  in
  (* roots: registered handlers, plus every function no one calls
     (exports the kernel invokes by name, the image entry, dead helpers
     — analyzing them as mains keeps coverage total) *)
  let called = Hashtbl.create 16 in
  List.iter
    (fun (_, callees) ->
      List.iter (fun c -> Hashtbl.replace called c ()) callees)
    icfg.Icfg.call_graph;
  let ro_roots =
    List.filter_map
      (fun f ->
        let e = f.Icfg.fn_entry in
        match List.assoc_opt e ro_map with
        | Some r -> Some (e, r)
        | None ->
            if Hashtbl.mem called e then None else Some (e, Annot.Hr_main))
      icfg.Icfg.funcs
  in
  { ro_map; ro_interrupt; ro_roots }

(* --- the interprocedural client fixpoint ------------------------------ *)

module type DOMAIN = sig
  type t

  val name : string
  val equal : t -> t -> bool
  val join : t -> t -> t

  val widen : t -> t -> t
  (** context widening: must over-approximate [join] and bound chains *)

  val entry : role:Annot.handler_role -> t
  (** initial state when a root entry point is invoked by the kernel *)

  val transfer : t -> event -> t

  val enter_call : t -> args:av list option -> t
  (** caller state at a call site -> callee entry context.  [args] is
      the operand-stack snapshot (top = arg 0) when tracked. *)

  val leave_call : caller:t -> args:av list option -> exit_:t option -> t
  (** merge the callee summary back; [exit_ = None] when no summary is
      available (unresolved indirect call, recursion in progress) *)
end

module Make (D : DOMAIN) = struct
  type instance = {
    i_id : int;
    i_entry : int;                       (* function entry offset *)
    mutable i_ctx : D.t;                 (* widened instances mutate *)
    i_widened : bool;
    i_in : (int, D.t) Hashtbl.t;         (* block leader -> IN state *)
    i_out : (int, D.t) Hashtbl.t;
    (* block leader -> OUT state, including call-return effects at
       T_call blocks (which a client-side event replay cannot see) *)
    i_rets : (int, D.t) Hashtbl.t;       (* ret leader -> OUT state *)
    mutable i_summary : D.t option;
    mutable i_deps : (int * int) list;   (* (caller instance id, leader) *)
  }

  type result = {
    vals : t;
    instances : instance list;           (* in creation order *)
  }

  let run ?(max_contexts = 8) ?pick (vals : t)
      ~(roots : (int * Annot.handler_role) list) =
    let icfg = vals.icfg in
    let instances : instance list ref = ref [] in
    let by_fn : (int, instance list) Hashtbl.t = Hashtbl.create 16 in
    let next_id = ref 0 in
    (* pending work: (instance, block leader).  [pick] chooses which
       index to service next — the fixpoint result must not depend on
       it (QCheck-verified). *)
    let pending : (instance * int) list ref = ref [] in
    let enqueue inst l =
      if not (List.exists (fun (i, l') -> i.i_id = inst.i_id && l' = l)
                !pending)
      then pending := !pending @ [ (inst, l) ]
    in
    let new_instance entry ctx widened =
      let inst =
        { i_id = !next_id; i_entry = entry; i_ctx = ctx;
          i_widened = widened; i_in = Hashtbl.create 16;
          i_out = Hashtbl.create 16;
          i_rets = Hashtbl.create 4; i_summary = None; i_deps = [] }
      in
      incr next_id;
      instances := inst :: !instances;
      Hashtbl.replace by_fn entry
        (inst :: (try Hashtbl.find by_fn entry with Not_found -> []));
      Hashtbl.replace inst.i_in entry ctx;
      enqueue inst entry;
      inst
    in
    let find_instance entry ctx =
      let existing = try Hashtbl.find by_fn entry with Not_found -> [] in
      match List.find_opt (fun i -> not i.i_widened && D.equal i.i_ctx ctx)
              existing
      with
      | Some i -> i
      | None -> (
          match List.find_opt (fun i -> i.i_widened) existing with
          | Some w ->
              let ctx' = D.widen w.i_ctx ctx in
              if not (D.equal ctx' w.i_ctx) then begin
                w.i_ctx <- ctx';
                Hashtbl.replace w.i_in entry
                  (match Hashtbl.find_opt w.i_in entry with
                   | Some old -> D.join old ctx'
                   | None -> ctx');
                enqueue w entry
              end;
              w
          | None ->
              if List.length existing >= max_contexts then begin
                (* too many contexts: collapse into one widened instance *)
                let ctx' =
                  List.fold_left (fun acc i -> D.widen acc i.i_ctx) ctx
                    existing
                in
                new_instance entry ctx' true
              end
              else new_instance entry ctx false)
    in
    let instance_by_id id =
      List.find (fun i -> i.i_id = id) !instances
    in
    let update_summary inst =
      let s =
        Hashtbl.fold
          (fun _ out acc ->
            match acc with
            | None -> Some out
            | Some a -> Some (D.join a out))
          inst.i_rets None
      in
      let changed =
        match (inst.i_summary, s) with
        | None, None -> false
        | None, Some _ -> true
        | Some _, None -> false
        | Some a, Some b -> not (D.equal a b)
      in
      if changed then begin
        inst.i_summary <- s;
        List.iter
          (fun (cid, l) -> enqueue (instance_by_id cid) l)
          inst.i_deps
      end
    in
    let process inst l =
      match (Icfg.block icfg l, Hashtbl.find_opt inst.i_in l,
             block_info vals l)
      with
      | Some b, Some din, Some bi ->
          let st = List.fold_left D.transfer din bi.bi_events in
          let fn_blocks =
            match Icfg.func_of_block icfg l with
            | Some fn -> fn.Icfg.fn_blocks
            | None -> []
          in
          let out =
            match b.Icfg.bb_term with
            | Icfg.T_call _ | Icfg.T_callr _ ->
                let args = bi.bi_call_args in
                let summaries =
                  List.map
                    (fun callee ->
                      let ctx = D.enter_call st ~args in
                      let ci = find_instance callee ctx in
                      if not (List.mem (inst.i_id, l) ci.i_deps) then
                        ci.i_deps <- (inst.i_id, l) :: ci.i_deps;
                      ci.i_summary)
                    b.Icfg.bb_calls
                in
                if summaries = [] then
                  (* unresolved indirect call: degrade conservatively *)
                  Some (D.leave_call ~caller:st ~args ~exit_:None)
                else if List.exists Option.is_none summaries then
                  (* a callee summary is still pending.  Do NOT propagate
                     a degraded state now: it would be joined with (and
                     permanently pollute) the real post-call state once
                     the summary lands and [i_deps] re-enqueues this
                     block.  The re-enqueue is the continuation. *)
                  None
                else
                  let ex =
                    match List.filter_map Fun.id summaries with
                    | [] -> assert false
                    | x :: rest -> Some (List.fold_left D.join x rest)
                  in
                  Some (D.leave_call ~caller:st ~args ~exit_:ex)
            | _ -> Some st
          in
          if b.Icfg.bb_term = Icfg.T_ret then begin
            Hashtbl.replace inst.i_rets l st;
            update_summary inst
          end;
          (match out with
           | None -> ()
           | Some out ->
               Hashtbl.replace inst.i_out l out;
               List.iter
                 (fun s ->
                   if List.mem s fn_blocks then
                     match Hashtbl.find_opt inst.i_in s with
                     | None ->
                         Hashtbl.replace inst.i_in s out;
                         enqueue inst s
                     | Some old ->
                         let j = D.join old out in
                         if not (D.equal j old) then begin
                           Hashtbl.replace inst.i_in s j;
                           enqueue inst s
                         end)
                 b.Icfg.bb_succs)
      | _ -> ()
    in
    List.iter
      (fun (entry, role) -> ignore (find_instance entry (D.entry ~role)))
      roots;
    let steps = ref 0 in
    let budget = 2_000_000 in
    while !pending <> [] && !steps < budget do
      incr steps;
      let n = List.length !pending in
      let idx =
        match pick with
        | Some f ->
            let i = f n in
            if i < 0 || i >= n then 0 else i
        | None -> 0
      in
      let item = List.nth !pending idx in
      pending := List.filteri (fun i _ -> i <> idx) !pending;
      let inst, l = item in
      process inst l
    done;
    { vals; instances = List.rev !instances }

  let iter_in_states result f =
    List.iter
      (fun inst ->
        match
          List.find_opt (fun fn -> fn.Icfg.fn_entry = inst.i_entry)
            result.vals.icfg.Icfg.funcs
        with
        | Some fn ->
            List.iter
              (fun l ->
                match Hashtbl.find_opt inst.i_in l with
                | Some din ->
                    f ~fn ~widened:inst.i_widened ~ctx:inst.i_ctx ~leader:l
                      ~din ~dout:(Hashtbl.find_opt inst.i_out l)
                | None -> ())
              fn.Icfg.fn_blocks
        | None -> ())
      result.instances

  (* Replay a block's event stream from a client state, visiting each
     event with the state in force just before it. *)
  let replay result ~din ~leader ~f =
    match block_info result.vals leader with
    | Some bi ->
        List.fold_left
          (fun st ev ->
            f st ev;
            D.transfer st ev)
          din bi.bi_events
    | None -> din

  let summaries result =
    List.map (fun i -> (i.i_entry, i.i_ctx, i.i_summary)) result.instances
end
