module Image = Ddt_dvm.Image
module Isa = Ddt_dvm.Isa
module Disasm = Ddt_dvm.Disasm

type term =
  | T_fall
  | T_jmp of int
  | T_branch of int
  | T_call of int
  | T_callr of int list
  | T_ret
  | T_stop

type block = {
  bb_start : int;
  bb_instrs : (int * Isa.instr) list;
  bb_term : term;
  bb_succs : int list;
  bb_calls : int list;
  bb_kcalls : (int * string) list;
}

type func = {
  fn_entry : int;
  fn_name : string;
  fn_blocks : int list;
  fn_rets : int list;
}

type t = {
  image : Image.t;
  vsa : Vsa.t;
  blocks : (int, block) Hashtbl.t;
  universe : int list;
  funcs : func list;
  seeds : int list;
  call_graph : (int * int list) list;
  leader_of : (int, int) Hashtbl.t;
  gaps : (int * int) list;
  n_instrs : int;
}

let sort_uniq = List.sort_uniq compare

let build (img : Image.t) =
  let text = img.Image.text in
  let text_len = Bytes.length text in
  let valid off =
    off >= 0 && off + Isa.instr_size <= text_len && off mod Isa.instr_size = 0
  in
  (* decode-once: index the shared per-image instruction array instead of
     re-decoding the text section here. *)
  let code = Image.code_array img in
  let decode off = code.(off / Isa.instr_size) in
  let vsa = Vsa.analyze img in
  (* Seeds: the entry point, declared functions and every address-taken
     code target. Plain exported labels are deliberately NOT seeds: the
     assembler exports every label, including ones in the middle of
     straight-line code, and seeding those would mint block leaders the
     dynamic engine (keyed on [Disasm.basic_block_starts]) can never
     cover. Anything actually callable from outside is either a [.func]
     symbol or address-taken, so soundness is preserved. *)
  let seeds =
    sort_uniq
      (List.filter valid
         (img.Image.entry
          :: (List.map snd img.Image.funcs @ vsa.Vsa.code_targets)))
  in
  (* Recursive descent: flood the instruction graph from the seeds. *)
  let reached : (int, Isa.instr) Hashtbl.t = Hashtbl.create 256 in
  let succs_of off instr =
    let next = off + Isa.instr_size in
    match instr with
    | Isa.Jmp t -> [ t ]
    | Isa.Jz (_, t) | Isa.Jnz (_, t) -> [ t; next ]
    | Isa.Call t -> [ t; next ]
    | Isa.Callr _ -> vsa.Vsa.code_targets @ [ next ]
    | Isa.Ret | Isa.Hlt -> []
    | _ -> [ next ]
  in
  let work = Queue.create () in
  List.iter (fun s -> Queue.add s work) seeds;
  while not (Queue.is_empty work) do
    let off = Queue.pop work in
    if valid off && not (Hashtbl.mem reached off) then
      match decode off with
      | None -> ()   (* data-in-text: stays a gap *)
      | Some instr ->
          Hashtbl.replace reached off instr;
          List.iter (fun s -> if valid s then Queue.add s work)
            (succs_of off instr)
  done;
  (* Leaders: seeds, branch/call targets, and fall-throughs after any
     control transfer (mirrors [Disasm.basic_block_starts] on the
     reachable subset). *)
  let leaders = Hashtbl.create 64 in
  let add_leader off = if Hashtbl.mem reached off then Hashtbl.replace leaders off () in
  List.iter add_leader seeds;
  Hashtbl.iter
    (fun off instr ->
      let next = off + Isa.instr_size in
      match instr with
      | Isa.Jmp t -> add_leader t; add_leader next
      | Isa.Jz (_, t) | Isa.Jnz (_, t) -> add_leader t; add_leader next
      | Isa.Call t -> add_leader t; add_leader next
      | Isa.Callr _ ->
          List.iter add_leader vsa.Vsa.code_targets;
          add_leader next
      | Isa.Ret | Isa.Hlt | Isa.Kcall _ -> add_leader next
      | _ -> ())
    reached;
  let universe =
    List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) leaders [])
  in
  (* Cut blocks at leaders and terminators. *)
  let blocks = Hashtbl.create 64 in
  let leader_of = Hashtbl.create 256 in
  let imports = img.Image.imports in
  let import_name n =
    if n >= 0 && n < Array.length imports then imports.(n)
    else Printf.sprintf "kcall_%d" n
  in
  List.iter
    (fun l ->
      let rec walk off acc =
        match Hashtbl.find_opt reached off with
        | None ->
            (* flowed into an undecodable slot or out of text *)
            (List.rev acc, off, T_stop)
        | Some instr ->
            Hashtbl.replace leader_of off l;
            let acc = (off, instr) :: acc in
            let next = off + Isa.instr_size in
            let fin term = (List.rev acc, off, term) in
            (match instr with
             | Isa.Jmp t -> fin (T_jmp t)
             | Isa.Jz (_, t) | Isa.Jnz (_, t) -> fin (T_branch t)
             | Isa.Call t -> fin (T_call t)
             | Isa.Callr _ -> fin (T_callr vsa.Vsa.code_targets)
             | Isa.Ret -> fin T_ret
             | Isa.Hlt -> fin T_stop
             | _ ->
                 if Hashtbl.mem leaders next then fin T_fall
                 else walk next acc)
      in
      let instrs, last, term = walk l [] in
      let next = last + Isa.instr_size in
      let live t = if Hashtbl.mem leaders t then [ t ] else [] in
      let succs, calls =
        match term with
        | T_jmp t -> (live t, [])
        | T_branch t -> (sort_uniq (live t @ live next), [])
        | T_call t -> (live next, live t)
        | T_callr ts -> (live next, List.concat_map live ts)
        | T_fall -> (live next, [])
        | T_ret | T_stop -> ([], [])
      in
      let kcalls =
        List.filter_map
          (fun (off, i) ->
            match i with
            | Isa.Kcall n -> Some (off, import_name n)
            | _ -> None)
          instrs
      in
      Hashtbl.replace blocks l
        { bb_start = l; bb_instrs = instrs; bb_term = term;
          bb_succs = succs; bb_calls = calls; bb_kcalls = kcalls })
    universe;
  (* Function entries: the image entry, declared function symbols, every
     address-taken target, and every direct-call target. Plain labels are
     descent seeds but NOT function entries (the assembler exports every
     label). *)
  let entry_set = Hashtbl.create 16 in
  let add_entry off = if Hashtbl.mem leaders off then Hashtbl.replace entry_set off () in
  add_entry img.Image.entry;
  List.iter (fun (_, a) -> add_entry a) img.Image.funcs;
  List.iter add_entry vsa.Vsa.code_targets;
  Hashtbl.iter
    (fun _ b -> match b.bb_term with T_call t -> add_entry t | _ -> ())
    blocks;
  (* Partition blocks into functions: intra-procedural traversal from each
     entry, never crossing into another entry's block. Blocks left over
     (reachable only from a bare label seed) found their own function. *)
  let owner = Hashtbl.create 64 in
  let claim entry =
    let rec go l =
      if (not (Hashtbl.mem owner l))
         && (l = entry || not (Hashtbl.mem entry_set l))
      then begin
        Hashtbl.replace owner l entry;
        match Hashtbl.find_opt blocks l with
        | None -> ()
        | Some b -> List.iter go b.bb_succs
      end
    in
    go entry
  in
  let entries =
    List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) entry_set [])
  in
  List.iter claim entries;
  let orphans =
    List.filter (fun l -> not (Hashtbl.mem owner l)) universe
  in
  let extra_entries = ref [] in
  List.iter
    (fun l ->
      if not (Hashtbl.mem owner l) then begin
        extra_entries := l :: !extra_entries;
        claim l
      end)
    orphans;
  let entries = List.sort compare (entries @ !extra_entries) in
  (* Names: function symbols win, then exported labels, then sub_<off>. *)
  let name_of off =
    let named l =
      List.sort compare
        (List.filter_map (fun (n, a) -> if a = off then Some n else None) l)
    in
    match named img.Image.funcs with
    | n :: _ -> n
    | [] -> (
        match named img.Image.exports with
        | n :: _ -> n
        | [] -> Printf.sprintf "sub_%04x" off)
  in
  let funcs =
    List.map
      (fun entry ->
        let fn_blocks =
          List.sort compare
            (Hashtbl.fold
               (fun l e acc -> if e = entry then l :: acc else acc)
               owner [])
        in
        let fn_rets =
          List.filter
            (fun l ->
              match Hashtbl.find_opt blocks l with
              | Some { bb_term = T_ret; _ } -> true
              | _ -> false)
            fn_blocks
        in
        { fn_entry = entry; fn_name = name_of entry; fn_blocks; fn_rets })
      entries
  in
  let call_graph =
    List.map
      (fun f ->
        let callees =
          sort_uniq
            (List.concat_map
               (fun l ->
                 match Hashtbl.find_opt blocks l with
                 | Some b -> b.bb_calls
                 | None -> [])
               f.fn_blocks)
        in
        (f.fn_entry, callees))
      funcs
  in
  let gaps =
    Disasm.unreached_gaps img ~reached:(fun off -> Hashtbl.mem reached off)
  in
  {
    image = img;
    vsa;
    blocks;
    universe;
    funcs;
    seeds;
    call_graph;
    leader_of;
    gaps;
    n_instrs = Hashtbl.length reached;
  }

let block t l = Hashtbl.find_opt t.blocks l

let func_of_block t l =
  List.find_opt (fun f -> List.mem l f.fn_blocks) t.funcs

let edges t =
  let tbl = Hashtbl.create 256 in
  let add src dst w =
    match Hashtbl.find_opt tbl (src, dst) with
    | Some w' when w' <= w -> ()
    | _ -> Hashtbl.replace tbl (src, dst) w
  in
  (* Function entry -> its ret-block leaders, for return edges. *)
  let rets_of = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace rets_of f.fn_entry f.fn_rets) t.funcs;
  Hashtbl.iter
    (fun l b ->
      let w = max 1 (List.length b.bb_instrs) in
      List.iter (fun s -> add l s w) b.bb_succs;
      List.iter
        (fun callee ->
          add l callee 1;
          (* return edge: callee's rets resume at the call fall-through *)
          match b.bb_succs with
          | [ fall ] ->
              List.iter
                (fun r -> add r fall 1)
                (match Hashtbl.find_opt rets_of callee with
                 | Some rs -> rs
                 | None -> [])
          | _ -> ())
        b.bb_calls)
    t.blocks;
  List.sort compare
    (Hashtbl.fold (fun (s, d) w acc -> (s, d, w) :: acc) tbl [])

let pp fmt t =
  Format.fprintf fmt "icfg of %s: %d seed(s), %d function(s), %d block(s), %d instruction(s)@."
    t.image.Image.name (List.length t.seeds) (List.length t.funcs)
    (List.length t.universe) t.n_instrs;
  List.iter
    (fun f ->
      let callees =
        match List.assoc_opt f.fn_entry t.call_graph with
        | Some cs -> cs
        | None -> []
      in
      Format.fprintf fmt "  %s @@ %06x: %d block(s)%s@." f.fn_name f.fn_entry
        (List.length f.fn_blocks)
        (if callees = [] then ""
         else
           " -> "
           ^ String.concat ", "
               (List.map
                  (fun c ->
                    match List.find_opt (fun g -> g.fn_entry = c) t.funcs with
                    | Some g -> g.fn_name
                    | None -> Printf.sprintf "%06x" c)
                  callees)))
    t.funcs;
  if t.vsa.Vsa.code_targets <> [] then
    Format.fprintf fmt "  address-taken targets: %s@."
      (String.concat ", "
         (List.map (Printf.sprintf "%06x") t.vsa.Vsa.code_targets));
  List.iter
    (fun (off, len) ->
      Format.fprintf fmt "  gap @@ %06x: %d byte(s) not reached@." off len)
    t.gaps
