(** Interprocedural, flow-sensitive dataflow framework over the {!Icfg}.

    Layer 1, the {e value pre-pass} ({!analyze}): a per-function Kildall
    fixpoint recovering, in terms of symbolic incoming arguments, the
    abstract machine state at every block — registers, frame slots, the
    operand stack, and the set of globals tested nonzero on this path
    (branch guards, including ones flowing through the Mini-C compiler's
    short-circuit [&&] bool merges via per-value implication sets).  Its
    stabilized output is a per-block {e event stream}: kernel calls with
    recovered argument values, loads and stores with recovered
    addresses, each carrying the guard set in force.

    Layer 2, the {e client fixpoint} ({!Make}): a context-tabulated
    interprocedural worklist over a client join-semilattice.  The client
    domain only sees events; call/return plumbing — bottom-up function
    summaries, context widening beyond a cap, dependency re-enqueueing
    when a summary improves — is owned by the framework, which is what
    makes further checker rules drop-in ({!Lockirql}, {!Racepair} are
    the first two instances).

    Soundness boundary (see DESIGN.md): stores through non-global
    pointers are assumed not to alias driver globals (globals are only
    addressed via [lea]); kernel calls write driver memory only through
    pointer arguments. *)

(** {1 Abstract values} *)

type base =
  | Bconst                 (** pure constant; the value is [disp] *)
  | Bimage                 (** image-relative address [disp] *)
  | Bglobal of int         (** value loaded from data word at offset g *)
  | Barg of int            (** i-th incoming argument of this function *)
  | Bframe                 (** frame address fp+[disp] ([disp] signed) *)
  | Btop

type av = {
  base : base;
  disp : int;
  nz : int list option;
  (** "if this value is nonzero, each listed global was tested nonzero";
      [None] is the universal (vacuous) set — the value cannot be
      nonzero.  Joins intersect; [None] is the identity.  This is what
      carries a guard through the compiler's short-circuit [&&] merge
      blocks. *)
  z : int list option;     (** same, for "this value is zero" *)
}

val av_top : av
val av_const : int -> av
val av_image : int -> av
val join_av : av -> av -> av
val pp_av : Format.formatter -> av -> unit

val av_subst : args:av list option -> av -> av
(** Substitute a callee-relative value into caller terms through the
    actual argument vector of a call site ([Barg i] -> caller's i-th
    argument; callee frame addresses degrade to top). *)

(** {1 Events}

    The interface between the value pre-pass and client analyses.
    Events appear in program order within a block; [guards] is the set
    of globals known nonzero when the event executes. *)

type event =
  | E_kcall of { ev_off : int; name : string; args : av list option;
                 guards : int list }
      (** [args]: operand-stack snapshot, top first — arg i is element
          i; [None] when stack tracking was lost *)
  | E_load of { ev_off : int; addr : av; guards : int list }
  | E_store of { ev_off : int; addr : av; value : av; guards : int list }

val event_off : event -> int

(** {1 Value pre-pass} *)

type vstate = {
  regs : av array;
  frame : (int * av) list;      (** signed fp offset -> value, sorted *)
  stack : av list;              (** operand stack, head = top *)
  stack_ok : bool;              (** false once push/pop tracking lost *)
  guards : int list;            (** globals known nonzero here, sorted *)
}

type binfo = {
  bi_in : vstate;               (** joined state at block entry *)
  bi_events : event list;       (** in program order *)
  bi_succ : (int * vstate) list;(** refined per-successor exit states *)
  bi_call_args : av list option;(** stack snapshot at a [T_call(r)] *)
}

type finfo = {
  fi_func : Icfg.func;
  fi_blocks : (int * binfo) list;
  fi_ret : av;                  (** join of r0 over ret blocks *)
}

type t = {
  icfg : Icfg.t;
  funcs : (int * finfo) list;   (** keyed by [fn_entry], sorted *)
}

val analyze : Icfg.t -> t
(** Runs the per-function value fixpoints bottom-up over the call graph
    (so callee return values are visible to callers; cycle members see
    top).  Deterministic. *)

val func_info : t -> int -> finfo option
val block_info : t -> int -> binfo option

(** {1 Handler-role recovery} *)

type roles = {
  ro_map : (int * Ddt_annot.Annot.handler_role) list;
      (** function entry -> strongest registered role, sorted *)
  ro_interrupt : int list;
      (** function entries reachable from ISR/DPC handlers (inclusive) *)
  ro_roots : (int * Ddt_annot.Annot.handler_role) list;
      (** analysis roots: registered handlers plus uncalled functions *)
}

val roles : t -> model:Ddt_annot.Annot.api_model -> roles
(** Recovers which functions run in interrupt context from the API
    model's registration contracts: handler tables written at run time
    ([lea table; ...; lea code; stw]) or pre-initialized in relocated
    data, whose base reaches a [Reg_table] API, and code pointers passed
    to [Reg_arg] APIs. *)

val role_of : roles -> int -> Ddt_annot.Annot.handler_role

(** {1 Interprocedural client fixpoint} *)

module type DOMAIN = sig
  type t

  val name : string
  val equal : t -> t -> bool
  val join : t -> t -> t

  val widen : t -> t -> t
  (** context widening: must over-approximate [join] and bound chains *)

  val entry : role:Ddt_annot.Annot.handler_role -> t
  (** initial state when a root entry point is invoked by the kernel *)

  val transfer : t -> event -> t

  val enter_call : t -> args:av list option -> t
  (** caller state at a call site -> callee entry context *)

  val leave_call : caller:t -> args:av list option -> exit_:t option -> t
  (** merge the callee summary back; [exit_ = None] when no summary is
      available yet (unresolved indirect call, recursion in progress) *)
end

module Make (D : DOMAIN) : sig
  type result

  val run :
    ?max_contexts:int ->
    ?pick:(int -> int) ->
    t ->
    roots:(int * Ddt_annot.Annot.handler_role) list ->
    result
  (** Context-tabulated summary fixpoint.  An instance is a (function,
      entry context) pair keyed by [D.equal]; beyond [max_contexts]
      per function, contexts collapse into one [D.widen]ed instance.
      [pick] chooses which pending work item to service next (given the
      queue length, return an index) — the fixpoint is independent of
      this order, which the QCheck property test exercises. *)

  val iter_in_states :
    result ->
    (fn:Icfg.func -> widened:bool -> ctx:D.t -> leader:int -> din:D.t ->
     dout:D.t option ->
     unit) ->
    unit
  (** Visit every analyzed (instance, block) with the block's IN state
      and (when the block completed) its OUT state, which at [T_call]
      blocks includes the callee's summarized effect — something a
      client-side event {!replay} cannot reconstruct.  Deterministic
      order: instance creation order, then block order. *)

  val replay :
    result -> din:D.t -> leader:int -> f:(D.t -> event -> unit) -> D.t
  (** Re-fold a block's event stream from a client state, visiting each
      event with the state in force just before it; returns the state
      after the last event (the pre-terminator state — for a ret block,
      the function exit state). *)

  val summaries : result -> (int * D.t * D.t option) list
  (** [(fn_entry, entry ctx, summary)] per instance, creation order. *)
end
