(** Sound interprocedural CFG over a DXE image.

    Construction is recursive-descent disassembly seeded from the image
    entry point, declared function symbols, and the address-taken code
    targets of the {!Vsa} pass (which is how interrupt / DPC / miniport
    handlers registered through data tables are found). Plain exported
    labels are not seeds — the assembler exports every label, and seeding
    mid-block labels would mint leaders the dynamic engine's
    [basic_block_starts]-keyed coverage can never claim.
    The linear sweep of [Ddt_dvm.Disasm] is used only to report the text
    bytes no descent path reaches ({!field:t.gaps}), so data-in-text never
    inflates the block universe.

    Soundness assumptions (documented in DESIGN.md):
    - instructions are fixed-size and non-overlapping, so descent and
      sweep agree on boundaries;
    - every address-taken code value is a relocation slot (the assembler
      and Mini-C compiler guarantee this: code addresses only arise from
      [lea] and relocated data words), hence the VSA target set
      over-approximates every [callr] target;
    - [kcall] transfers to the kernel and returns to the next instruction
      (kernel APIs that re-enter the driver do so through registered
      handlers, which are address-taken and therefore seeds). *)

type term =
  | T_fall              (** runs into the next leader *)
  | T_jmp of int
  | T_branch of int     (** conditional: target, plus fall-through *)
  | T_call of int       (** direct call; continues at fall-through *)
  | T_callr of int list (** indirect call: conservative target set *)
  | T_ret
  | T_stop              (** [hlt], or an undecodable instruction *)

type block = {
  bb_start : int;                      (** image-relative leader *)
  bb_instrs : (int * Ddt_dvm.Isa.instr) list;  (** in address order *)
  bb_term : term;
  bb_succs : int list;                 (** intra-procedural successor leaders *)
  bb_calls : int list;                 (** callee entry offsets (direct + indirect) *)
  bb_kcalls : (int * string) list;     (** [(instr offset, import name)] *)
}

type func = {
  fn_entry : int;
  fn_name : string;
  fn_blocks : int list;                (** sorted leaders, entry included *)
  fn_rets : int list;                  (** leaders of blocks ending in [ret] *)
}

type t = {
  image : Ddt_dvm.Image.t;
  vsa : Vsa.t;
  blocks : (int, block) Hashtbl.t;
  universe : int list;           (** sorted leaders of all reachable blocks *)
  funcs : func list;             (** sorted by entry *)
  seeds : int list;              (** sorted descent seeds *)
  call_graph : (int * int list) list;
  (** [(function entry, sorted callee entries)], sorted by caller *)
  leader_of : (int, int) Hashtbl.t;
  (** reached instruction offset -> its block's leader *)
  gaps : (int * int) list;       (** unreached text byte runs, sorted *)
  n_instrs : int;                (** reached instruction count *)
}

val build : Ddt_dvm.Image.t -> t
(** Deterministic: equal images produce structurally equal results. *)

val block : t -> int -> block option
(** Look up a block by leader offset. *)

val func_of_block : t -> int -> func option
(** The function a reachable leader belongs to. *)

val edges : t -> (int * int * int) list
(** Weighted interprocedural edges [(src leader, dst leader, weight)]:
    intra-procedural successors, call edges (site -> callee entry) and
    return edges (callee ret block -> call fall-through). The weight is
    the instruction count of the source block (min 1) for intra edges and
    1 for call/return edges. Sorted, deduplicated (minimum weight kept). *)

val pp : Format.formatter -> t -> unit
(** Deterministic human-readable summary (functions, blocks, call graph,
    gaps). *)
