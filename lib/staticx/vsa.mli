(** Conservative value-set analysis over a DXE image's relocation and
    import tables.

    The loader patches every relocation slot by adding the image base, so
    before loading each slot holds an image-relative address. Any such
    address that lands on an instruction boundary inside the text section
    is a {e potential} indirect control-flow target: it is a code address
    the program can materialize in a register or store in a handler table
    (the only ways a DXE driver takes a code address are [lea] immediates
    and relocated data words — both relocation slots).

    Control-flow immediates ([jmp]/[jz]/[jnz]/[call] targets) are also
    relocation slots but are {e not} address-taken: they are consumed by
    the instruction itself and cannot flow into a [callr]. Separating the
    two classes keeps the indirect-target set small without giving up
    soundness. *)

type t = {
  code_targets : int list;
  (** address-taken code targets: sorted, deduplicated image-relative
      offsets — the conservative target set of every [callr] and every
      handler-table dispatch *)
  control_flow_relocs : int list;
  (** relocation slots that are direct branch/call immediates (sorted) *)
  data_code_refs : (int * int) list;
  (** [(slot offset, code target)] for relocation slots in the data
      section that point into text — handler tables (sorted by slot) *)
}

val analyze : Ddt_dvm.Image.t -> t

val code_targets : Ddt_dvm.Image.t -> int list
(** Shorthand for [(analyze img).code_targets]. *)
