(* Immediate post-dominators over the interprocedural CFG, per function.

   The merge scheduler asks one question: for the block a symbolic branch
   just forked in, where do the two arms reconverge? That is the branch
   block's immediate post-dominator within its own function — computed
   here once per image from the existing [Icfg], over the same
   image-relative leader universe coverage accounting uses.

   Each function is analyzed against a *virtual exit* joining its ret /
   stop blocks and any block with no in-function successor (tail jumps
   into another function leave the analyzed region, so they exit too).
   The sets are the textbook iterative dataflow

       pdom(b) = {b} ∪ ⋂ { pdom(s) | s ∈ succ(b) }

   seeded top (all blocks) and shrunk to fixpoint; functions are small
   (tens of blocks), so the O(n²)-bits representation is a per-function
   array of bool arrays and nothing fancier is warranted.

   A block trapped in an exit-free cycle keeps an over-full set at the
   fixpoint and may report an arbitrary in-cycle "post-dominator". That
   is acceptable by design: the merge point is a *placement heuristic* —
   the engine only fuses states that actually arrived at the same pc
   with compatible contexts, so a wrong merge point costs an unexercised
   merge token, never soundness. *)

type t = {
  ipdom : (int, int) Hashtbl.t;
      (* image-relative block leader -> image-relative leader of its
         immediate post-dominator (absent: exits directly) *)
}

let compute (icfg : Icfg.t) =
  let ipdom = Hashtbl.create 64 in
  List.iter
    (fun (f : Icfg.func) ->
      let blocks = Array.of_list f.Icfg.fn_blocks in
      let n = Array.length blocks in
      if n > 0 then begin
        let index = Hashtbl.create n in
        Array.iteri (fun i l -> Hashtbl.replace index l i) blocks;
        (* In-function successors; [] means the block feeds the virtual
           exit (ret, stop, or every successor outside the function). *)
        let succs =
          Array.map
            (fun l ->
              match Icfg.block icfg l with
              | None -> []
              | Some b ->
                  List.filter_map
                    (fun s -> Hashtbl.find_opt index s)
                    b.Icfg.bb_succs)
            blocks
        in
        (* pd.(i) = postdominator set of block i, plus slot n for the
           virtual exit. *)
        let pd = Array.init (n + 1) (fun _ -> Array.make (n + 1) true) in
        pd.(n) <- Array.make (n + 1) false;
        pd.(n).(n) <- true;
        let changed = ref true in
        while !changed do
          changed := false;
          for i = 0 to n - 1 do
            let meet = Array.make (n + 1) true in
            (match succs.(i) with
             | [] -> Array.blit pd.(n) 0 meet 0 (n + 1)
             | ss ->
                 List.iter
                   (fun s ->
                     let ps = pd.(s) in
                     for j = 0 to n do
                       meet.(j) <- meet.(j) && ps.(j)
                     done)
                   ss);
            meet.(i) <- true;
            for j = 0 to n do
              if pd.(i).(j) && not meet.(j) then begin
                pd.(i).(j) <- false;
                changed := true
              end
            done
          done
        done;
        let card i =
          let c = ref 0 in
          Array.iter (fun b -> if b then incr c) pd.(i);
          !c
        in
        (* The strict postdominators of a block form a chain whose sets
           shrink toward the exit; the immediate one is the largest. *)
        for i = 0 to n - 1 do
          let best = ref (-1) and best_card = ref (-1) in
          for j = 0 to n - 1 do
            if j <> i && pd.(i).(j) && card j > !best_card then begin
              best := j;
              best_card := card j
            end
          done;
          if !best >= 0 then Hashtbl.replace ipdom blocks.(i) blocks.(!best)
        done
      end)
    icfg.Icfg.funcs;
  { ipdom }

let merge_point t leader = Hashtbl.find_opt t.ipdom leader
