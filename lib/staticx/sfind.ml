module Isa = Ddt_dvm.Isa
module Annot = Ddt_annot.Annot

type finding = {
  f_rule : string;
  f_func : string;
  f_pos : int;
  f_msg : string;
}

let mask32 v = v land 0xFFFFFFFF

(* Immediates are stored as u32; stack adjustments may encode negative
   displacements as wrapped values. *)
let signed32 v = if v > 0x7FFFFFFF then v - 0x100000000 else v

(* --- unreachable code ---------------------------------------------------- *)

(* The Mini-C compiler closes every function with an unconditional
   default-return fallback (movi r0, 0 flowing into the epilogue); when
   every source path returns explicitly, that single slot is dead. It is
   genuinely unreachable (and stays out of the block universe and in
   {!Icfg.t.gaps}), but flagging it would mark every clean driver dirty,
   so the finding is suppressed for exactly that shape: one instruction
   slot, decodable, non-terminator, falling through into reached code. *)
let is_compiler_fallback (icfg : Icfg.t) off len =
  len = Isa.instr_size
  && Hashtbl.mem icfg.Icfg.leader_of (off + Isa.instr_size)
  &&
  match Isa.decode icfg.Icfg.image.Ddt_dvm.Image.text off with
  | Isa.Jmp _ | Isa.Jz _ | Isa.Jnz _ | Isa.Ret | Isa.Hlt -> false
  | _ -> true
  | exception Isa.Invalid_opcode _ -> false

let gap_findings (icfg : Icfg.t) =
  List.filter_map
    (fun (off, len) ->
      if is_compiler_fallback icfg off len then None
      else
        Some
          { f_rule = "unreachable-code";
            f_func = "";
            f_pos = off;
            f_msg =
              Printf.sprintf
                "%d byte(s) of text no control-flow path reaches (dead code \
                 or data-in-text)" len })
    icfg.Icfg.gaps

(* --- stack-depth imbalance ----------------------------------------------- *)

(* Track sp and fp as known displacements from the function-entry sp
   (where mem[sp] holds the return address), or Unknown. A [ret] with a
   known nonzero displacement reads a wrong return address on that path.
   Unknown displacements are never reported — the rule stays
   false-positive-free at the cost of missing imbalances behind
   indirect sp arithmetic. *)

type disp = Known of int | Unknown

let step_disp (sp, fp) instr =
  let wr r v (sp, fp) =
    if r = Isa.sp then (v, fp) else if r = Isa.fp then (sp, v) else (sp, fp)
  in
  let adjust v k = match v with Known d -> Known (d + k) | Unknown -> Unknown in
  match instr with
  | Isa.Push _ -> (adjust sp (-4), fp)
  | Isa.Pop r ->
      let sp', fp' = wr r Unknown (sp, fp) in
      if r = Isa.sp then (sp', fp') else (adjust sp' 4, fp')
  | Isa.Mov (rd, rs) when rd = Isa.sp && rs = Isa.fp -> (fp, fp)
  | Isa.Mov (rd, rs) when rd = Isa.fp && rs = Isa.sp -> (sp, sp)
  | Isa.Mov (rd, _) | Isa.Movi (rd, _) | Isa.Lea (rd, _) ->
      wr rd Unknown (sp, fp)
  | Isa.Alui (Isa.Add, rd, rs, k) when rd = rs && (rd = Isa.sp || rd = Isa.fp) ->
      if rd = Isa.sp then (adjust sp (signed32 k), fp)
      else (sp, adjust fp (signed32 k))
  | Isa.Alui (Isa.Sub, rd, rs, k) when rd = rs && (rd = Isa.sp || rd = Isa.fp) ->
      if rd = Isa.sp then (adjust sp (- signed32 k), fp)
      else (sp, adjust fp (- signed32 k))
  | Isa.Alui (_, rd, _, _) | Isa.Alu (_, rd, _, _)
  | Isa.Cmp (_, rd, _, _) | Isa.Cmpi (_, rd, _, _)
  | Isa.Ldw (rd, _, _) | Isa.Ldb (rd, _, _) ->
      wr rd Unknown (sp, fp)
  (* Call/Callr push a return address the callee's ret pops; kcall leaves
     the stack alone. Net zero under the callee-balanced assumption. *)
  | _ -> (sp, fp)

let stack_findings (icfg : Icfg.t) =
  let findings = ref [] in
  let report fn off d =
    findings :=
      { f_rule = "stack-imbalance";
        f_func = fn.Icfg.fn_name;
        f_pos = off;
        f_msg =
          Printf.sprintf
            "a path reaches this ret with the stack displaced by %d byte(s); \
             the return address read misses" d }
      :: !findings
  in
  List.iter
    (fun fn ->
      let visited = Hashtbl.create 64 in
      let visits_per_block = Hashtbl.create 16 in
      let reported = Hashtbl.create 4 in
      let rec go l sp fp =
        let key = (l, sp, fp) in
        let nvisits =
          match Hashtbl.find_opt visits_per_block l with Some n -> n | None -> 0
        in
        if (not (Hashtbl.mem visited key)) && nvisits < 64 then begin
          Hashtbl.replace visited key ();
          Hashtbl.replace visits_per_block l (nvisits + 1);
          match Hashtbl.find_opt icfg.Icfg.blocks l with
          | None -> ()
          | Some b ->
              let sp, fp =
                List.fold_left
                  (fun acc (_, i) -> step_disp acc i)
                  (sp, fp) b.Icfg.bb_instrs
              in
              (match b.Icfg.bb_term with
               | Icfg.T_ret -> (
                   match sp with
                   | Known d when d <> 0 && not (Hashtbl.mem reported l) ->
                       Hashtbl.replace reported l ();
                       let last_off =
                         match List.rev b.Icfg.bb_instrs with
                         | (off, _) :: _ -> off
                         | [] -> l
                       in
                       report fn last_off d
                   | _ -> ())
               | _ -> ());
              (* stay inside the function: interprocedural balance is the
                 callee's own obligation *)
              List.iter
                (fun s -> if List.mem s fn.Icfg.fn_blocks then go s sp fp)
                b.Icfg.bb_succs
        end
      in
      go fn.Icfg.fn_entry (Known 0) Unknown)
    icfg.Icfg.funcs;
  !findings

(* --- statically-constant out-of-contract arguments ----------------------- *)

type av = Const of int | Top

let eval_alu op a b =
  match op with
  | Isa.Add -> Some (mask32 (a + b))
  | Isa.Sub -> Some (mask32 (a - b))
  | Isa.Mul -> Some (mask32 (a * b))
  | Isa.Divu -> if b = 0 then None else Some (a / b)
  | Isa.Remu -> if b = 0 then None else Some (a mod b)
  | Isa.And -> Some (a land b)
  | Isa.Or -> Some (a lor b)
  | Isa.Xor -> Some (a lxor b)
  | Isa.Shl -> Some (mask32 (a lsl (b land 31)))
  | Isa.Shru -> Some (a lsr (b land 31))
  | Isa.Shrs ->
      let sa = if a > 0x7FFFFFFF then a - 0x100000000 else a in
      Some (mask32 (sa asr (b land 31)))

(* Must-join: a value is only known at a merge point when every
   incoming path agrees on it. *)
let join a b =
  match (a, b) with Const x, Const y when x = y -> a | _ -> Top

(* Abstractly execute one block from the [entry] register state
   (copied, not mutated), returning the exit register state. The model
   of words pushed in the block (newest first) lets [kcall] argument
   slots be read back; it is intra-block only — an argument is checked
   when its push is in the call's own block, though the pushed value may
   have been materialized in any earlier block via the entry state.
   [on_kcall] observes each kernel call with the stack model ([None]
   once sp tracking is invalidated). Anything not proven constant is
   Top. *)
let exec_block ?(on_kcall = fun ~off:_ ~name:_ ~stack:_ -> ())
    (icfg : Icfg.t) entry (b : Icfg.block) =
  let regs = Array.copy entry in
  let stack = ref [] in
  let stack_valid = ref true in
  let rd r = regs.(r) in
  let wr r v = regs.(r) <- v in
  let sp_adjust words =
    if words >= 0 then begin
      (* freeing stack: drop modeled slots *)
      let rec drop n xs =
        if n = 0 then xs
        else
          match xs with
          | _ :: rest -> drop (n - 1) rest
          | [] -> stack_valid := false; []
      in
      stack := drop words !stack
    end
    else
      for _ = 1 to -words do
        stack := Top :: !stack
      done
  in
  List.iter
    (fun (off, instr) ->
      match instr with
      | Isa.Movi (r, imm) -> wr r (Const (mask32 imm))
      | Isa.Lea (r, _) -> wr r Top
      | Isa.Mov (rd_, rs) -> wr rd_ (rd rs)
      | Isa.Alui (op, rd_, rs, imm) ->
          (match rd rs with
           | Const a -> (
               match eval_alu op a (mask32 imm) with
               | Some v -> wr rd_ (Const v)
               | None -> wr rd_ Top)
           | Top -> wr rd_ Top);
          if rd_ = Isa.sp && rs = Isa.sp then
            (match op with
             | Isa.Add -> sp_adjust (signed32 imm / 4)
             | Isa.Sub -> sp_adjust (- (signed32 imm / 4))
             | _ -> stack_valid := false)
          else if rd_ = Isa.sp then stack_valid := false
      | Isa.Alu (op, rd_, rs1, rs2) ->
          (match (rd rs1, rd rs2) with
           | Const a, Const b -> (
               match eval_alu op a b with
               | Some v -> wr rd_ (Const v)
               | None -> wr rd_ Top)
           | _ -> wr rd_ Top);
          if rd_ = Isa.sp then stack_valid := false
      | Isa.Cmp (_, rd_, _, _) | Isa.Cmpi (_, rd_, _, _) -> wr rd_ Top
      | Isa.Ldw (rd_, _, _) | Isa.Ldb (rd_, _, _) ->
          wr rd_ Top;
          if rd_ = Isa.sp then stack_valid := false
      | Isa.Push r -> stack := rd r :: !stack
      | Isa.Pop r ->
          (match !stack with
           | top :: rest ->
               wr r top;
               stack := rest
           | [] ->
               wr r Top;
               stack_valid := false);
          if r = Isa.sp then stack_valid := false
      | Isa.Stw _ | Isa.Stb _ | Isa.Nop | Isa.Cli | Isa.Sti -> ()
      | Isa.Kcall n ->
          let name =
            let imports = icfg.Icfg.image.Ddt_dvm.Image.imports in
            if n >= 0 && n < Array.length imports then imports.(n) else ""
          in
          on_kcall ~off ~name
            ~stack:(if !stack_valid then Some !stack else None);
          (* the kernel call clobbers the return register *)
          wr 0 Top
      | Isa.Call _ | Isa.Callr _ ->
          (* callee may clobber any register; stack is balanced across
             the call *)
          Array.fill regs 0 Isa.num_regs Top
      | Isa.Jmp _ | Isa.Jz _ | Isa.Jnz _ | Isa.Ret | Isa.Hlt -> ())
    b.Icfg.bb_instrs;
  regs

(* Forward constant propagation over each function's blocks with a
   must-join at merge points (Kildall worklist over [Icfg.bb_succs]
   restricted to the function, as in [stack_findings]). The function
   entry starts from Top everywhere — arguments are never assumed — and
   a register is [Const] at a block entry only when every intra-function
   path agrees, so a finding still only fires on a must-violation: the
   rule stays false-positive-free while now seeing constants
   materialized in dominating blocks, not just the call's own block.
   Termination: the lattice has height 2 and [join] is monotone, so
   each block re-enqueues at most [num_regs] times per predecessor. *)
let contract_findings ?(contracts = []) (icfg : Icfg.t) =
  if contracts = [] then []
  else begin
    let findings = ref [] in
    List.iter
      (fun fn ->
        let in_fn l = List.mem l fn.Icfg.fn_blocks in
        let entries = Hashtbl.create 16 in
        Hashtbl.replace entries fn.Icfg.fn_entry (Array.make Isa.num_regs Top);
        let work = Queue.create () in
        Queue.add fn.Icfg.fn_entry work;
        while not (Queue.is_empty work) do
          let l = Queue.pop work in
          match Hashtbl.find_opt icfg.Icfg.blocks l with
          | None -> ()
          | Some b ->
              let exit_st = exec_block icfg (Hashtbl.find entries l) b in
              List.iter
                (fun s ->
                  if in_fn s then
                    match Hashtbl.find_opt entries s with
                    | None ->
                        Hashtbl.replace entries s (Array.copy exit_st);
                        Queue.add s work
                    | Some old ->
                        let changed = ref false in
                        for i = 0 to Isa.num_regs - 1 do
                          let j = join old.(i) exit_st.(i) in
                          if j <> old.(i) then begin
                            old.(i) <- j;
                            changed := true
                          end
                        done;
                        if !changed then Queue.add s work)
                b.Icfg.bb_succs
        done;
        (* report over the stabilized entry states *)
        List.iter
          (fun l ->
            match Hashtbl.find_opt icfg.Icfg.blocks l with
            | None -> ()
            | Some b ->
                let entry =
                  match Hashtbl.find_opt entries l with
                  | Some e -> e
                  | None -> Array.make Isa.num_regs Top
                  (* not reached from the function entry: assume nothing *)
                in
                let on_kcall ~off ~name ~stack =
                  match stack with
                  | None -> ()
                  | Some stk ->
                      List.iter
                        (fun (c : Annot.arg_contract) ->
                          if c.Annot.c_api = name then
                            match List.nth_opt stk c.Annot.c_arg with
                            | Some (Const v) when not (c.Annot.c_check v) ->
                                findings :=
                                  { f_rule = "const-arg-contract";
                                    f_func = fn.Icfg.fn_name;
                                    f_pos = off;
                                    f_msg =
                                      Printf.sprintf
                                        "%s argument %d is always %d: %s"
                                        name c.Annot.c_arg v c.Annot.c_doc }
                                  :: !findings
                            | _ -> ())
                        contracts
                in
                ignore (exec_block ~on_kcall icfg entry b))
          fn.Icfg.fn_blocks)
      icfg.Icfg.funcs;
    !findings
  end

(* --- interprocedural model-driven rules ---------------------------------- *)

(* Lockset/IRQL and race-pair findings from the {!Dataflow} framework,
   available when the caller supplies the kernel-API model of the
   driver's class. *)
let model_findings ~model icfg =
  let vals = Dataflow.analyze icfg in
  let roles = Dataflow.roles vals ~model in
  let li = Lockirql.analyze vals ~model ~roles in
  let races = Racepair.analyze ~model ~sites:li.Lockirql.r_sites in
  List.map
    (fun (rule, func, pos, msg) ->
      { f_rule = rule; f_func = func; f_pos = pos; f_msg = msg })
    (li.Lockirql.r_findings @ races)

let all_rules =
  [ "unreachable-code"; "stack-imbalance"; "const-arg-contract";
    "lock-double-acquire"; "lock-extra-release"; "lock-wrong-variant";
    "lock-out-of-order"; "lock-forgotten-release"; "irql-passive-api";
    "race-unguarded-deref"; "race-unguarded-use" ]

let rule_matches requested rule =
  List.exists (fun r -> r = rule || String.starts_with ~prefix:r rule)
    requested

let analyze ?contracts ?model ?rules icfg =
  let all =
    gap_findings icfg
    @ stack_findings icfg
    @ contract_findings ?contracts icfg
    @ (match model with
       | Some model -> model_findings ~model icfg
       | None -> [])
  in
  let all =
    match rules with
    | None -> all
    | Some req -> List.filter (fun f -> rule_matches req f.f_rule) all
  in
  List.sort_uniq
    (fun a b ->
      compare (a.f_pos, a.f_rule, a.f_func, a.f_msg)
        (b.f_pos, b.f_rule, b.f_func, b.f_msg))
    all

let pp fmt f =
  Format.fprintf fmt "[static:%s] %s%s: %s" f.f_rule
    (if f.f_func = "" then "" else f.f_func ^ " ")
    (Printf.sprintf "at %06x" f.f_pos)
    f.f_msg
