(** Purely static findings over the {!Icfg}.

    Three rule families, all conservative enough to be false-positive-free
    on clean drivers (asserted by the CI smoke):

    - [unreachable-code]: text byte runs no recursive-descent path reaches
      (decodable dead code as well as data-in-text; the finding reports
      both, the block universe excludes both);
    - [stack-imbalance]: a path through a function on which the net
      stack-pointer displacement at a [ret] is nonzero while still
      statically known — the return address read will miss;
    - [const-arg-contract]: a kernel-API call site whose argument is a
      statically-evident constant violating an {!Ddt_annot.Annot.arg_contract}.

    Findings are deterministic: a pure function of the image and contract
    list, sorted by (position, rule). *)

type finding = {
  f_rule : string;
  f_func : string;      (** enclosing function name, or [""] *)
  f_pos : int;          (** image-relative offset *)
  f_msg : string;
}

val analyze :
  ?contracts:Ddt_annot.Annot.arg_contract list ->
  Icfg.t ->
  finding list

val pp : Format.formatter -> finding -> unit
