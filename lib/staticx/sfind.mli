(** Purely static findings over the {!Icfg}.

    Three intraprocedural rule families, all conservative enough to be
    false-positive-free on clean drivers (asserted by the CI smoke):

    - [unreachable-code]: text byte runs no recursive-descent path reaches
      (decodable dead code as well as data-in-text; the finding reports
      both, the block universe excludes both);
    - [stack-imbalance]: a path through a function on which the net
      stack-pointer displacement at a [ret] is nonzero while still
      statically known — the return address read will miss;
    - [const-arg-contract]: a kernel-API call site whose argument is a
      statically-evident constant violating an {!Ddt_annot.Annot.arg_contract}.

    Plus, when the kernel-API [model] of the driver's class is supplied,
    the interprocedural {!Dataflow} rules — must-lockset/IRQL
    ({!Lockirql}: [lock-double-acquire], [lock-extra-release],
    [lock-wrong-variant], [lock-out-of-order], [lock-forgotten-release],
    [irql-passive-api]) and static race pairs ({!Racepair}:
    [race-unguarded-deref], [race-unguarded-use]).  These also hold the
    no-false-positive line on the fixed corpus: every rule fires on
    must-facts only.

    Findings are deterministic: a pure function of the image, contract
    list and model, sorted by (position, rule). *)

type finding = {
  f_rule : string;
  f_func : string;      (** enclosing function name, or [""] *)
  f_pos : int;          (** image-relative offset *)
  f_msg : string;
}

val all_rules : string list
(** Every rule name {!analyze} can emit, for CLI help and validation. *)

val analyze :
  ?contracts:Ddt_annot.Annot.arg_contract list ->
  ?model:Ddt_annot.Annot.api_model ->
  ?rules:string list ->
  Icfg.t ->
  finding list
(** [rules] filters the result: a finding is kept when some requested
    name equals its rule or is a prefix of it (so ["lock"] selects the
    whole lockset family).  [None] keeps everything. *)

val pp : Format.formatter -> finding -> unit
