(* Interprocedural lockset + IRQL analysis: the first client of the
   Dataflow framework.

   The abstract state is the *acquisition-ordered* list of lock tokens
   with a must/may hold qualifier, plus the IRQL floor inherited from
   the entry point's concurrency role.  Tokens name lock objects
   structurally (image offset, offset into the struct a global points
   to, offset into an argument), which is what lets a lock acquired in
   a caller be recognized inside a helper and vice versa — exactly the
   helper-function blind spot of the intraprocedural baseline
   ([Ddt_baseline.Absint]).  Conditional acquire/release pairs join to
   a Maybe hold, and every rule below fires on must-facts only, which
   removes the baseline's path-insensitivity false positive.

   Rules (reported as findings, positions are instruction offsets):
   - lock-double-acquire: acquiring a token already must-held
   - lock-extra-release: releasing a token that is must-free
   - lock-wrong-variant: releasing with the other API variant
   - lock-out-of-order: releasing while a younger lock is must-held
   - lock-forgotten-release: a token must-held where a kernel entry
     point returns; also at helper returns when the helper itself
     releases that token on another path (so pure take-the-lock
     wrappers stay silent)
   - irql-passive-api: calling a PASSIVE_LEVEL-only API while the IRQL
     is provably DISPATCH_LEVEL (interrupt-context entry or a plain
     spin lock must-held) *)

module Df = Dataflow
module Annot = Ddt_annot.Annot

type tclass =
  | Tc_img                 (* lock object at image offset [td] *)
  | Tc_gptr of int         (* at offset [td] of *global g *)
  | Tc_arg of int          (* at offset [td] of argument i *)
  | Tc_frame               (* at frame offset [td] (local lock) *)

type tok = { tc : tclass; td : int }

type hold = Held of Annot.lock_variant | Maybe

let pp_tok t =
  match t.tc with
  | Tc_img -> Printf.sprintf "lock@img+0x%x" t.td
  | Tc_gptr g -> Printf.sprintf "lock at [g0x%x]+%d" g t.td
  | Tc_arg i -> Printf.sprintf "lock at arg%d+%d" i t.td
  | Tc_frame -> Printf.sprintf "local lock fp%+d" t.td

let token_of (a : Df.av) =
  match a.Df.base with
  | Df.Bimage -> Some { tc = Tc_img; td = a.Df.disp }
  | Df.Bglobal g -> Some { tc = Tc_gptr g; td = a.Df.disp }
  | Df.Barg i -> Some { tc = Tc_arg i; td = a.Df.disp }
  | Df.Bframe -> Some { tc = Tc_frame; td = a.Df.disp }
  | _ -> None

let context_independent t =
  match t.tc with Tc_img | Tc_gptr _ -> true | Tc_arg _ | Tc_frame -> false

let nth_arg args i =
  match args with
  | Some l when i < List.length l -> Some (List.nth l i)
  | _ -> None

(* Caller-term token -> callee-term token through the actual argument
   vector: a lock at [arg i's value + delta] is [Tc_arg i, delta] to the
   callee.  Context-independent tokens pass through unchanged. *)
let translate_down ~args t =
  let rec try_args i = function
    | [] -> None
    | a :: rest -> (
        match token_of a with
        | Some at when at.tc = t.tc && t.td - at.td >= 0 ->
            Some { tc = Tc_arg i; td = t.td - at.td }
        | _ -> try_args (i + 1) rest)
  in
  match args with
  | Some l -> (
      match try_args 0 l with
      | Some t' -> Some t'
      | None -> if context_independent t then Some t else None)
  | None -> if context_independent t then Some t else None

(* Callee-term token -> caller terms.  [None] means the token cannot be
   named upstream (escaped local, untracked argument). *)
let translate_up ~args t =
  match t.tc with
  | Tc_img | Tc_gptr _ -> Some t
  | Tc_arg i -> (
      match nth_arg args i with
      | Some a -> (
          match token_of a with
          | Some at when at.tc <> Tc_frame ->
              Some { tc = at.tc; td = at.td + t.td }
          | _ -> None)
      | None -> None)
  | Tc_frame -> None

(* --- the client domain ------------------------------------------------ *)

(* [Make] is functorized over the API model so the domain's transfer
   function can classify kernel calls without global mutable state
   (analyses may run concurrently in parallel sessions). *)
module MakeDomain (M : sig
  val model : Annot.api_model
end) =
struct
  let lock_api name =
    List.find_opt (fun la -> la.Annot.la_api = name) M.model.Annot.m_locks

  type t = {
    locks : (tok * hold) list;  (* acquisition order, oldest first *)
    floor : bool;               (* entry IRQL is DISPATCH_LEVEL *)
    root : bool;                (* instance entered from the kernel *)
  }

  let name = "lockirql"
  let equal (a : t) b = a = b

  let all_maybe locks =
    List.map (fun (t, _) -> (t, Maybe)) locks

  let join a b =
    let locks =
      if List.map fst a.locks = List.map fst b.locks then
        List.map2
          (fun (t, h1) (_, h2) ->
            (t, if h1 = h2 then h1 else Maybe))
          a.locks b.locks
      else
        (* different shapes: every token in either side is only maybe
           held *)
        let extra =
          List.filter
            (fun (t, _) -> not (List.mem_assoc t a.locks))
            b.locks
        in
        all_maybe a.locks @ all_maybe extra
    in
    { locks; floor = a.floor && b.floor; root = a.root && b.root }

  let widen = join

  let entry ~role =
    { locks = []; floor = role <> Annot.Hr_main; root = true }

  let raised st =
    st.floor
    || List.exists
         (fun (_, h) -> h = Held Annot.Lv_plain)
         st.locks

  let transfer st ev =
    match ev with
    | Df.E_kcall { name; args; _ } -> (
        match lock_api name with
        | Some la -> (
            let t = Option.bind (nth_arg args 0) token_of in
            match (la.Annot.la_acquire, t) with
            | true, Some t ->
                { st with
                  locks =
                    List.remove_assoc t st.locks
                    @ [ (t, Held la.Annot.la_variant) ] }
            | true, None -> st  (* unknown lock: must-facts unchanged *)
            | false, Some t ->
                { st with locks = List.remove_assoc t st.locks }
            | false, None ->
                (* releasing an unknown lock may release anything *)
                { st with locks = all_maybe st.locks })
        | None -> st)
    | _ -> st

  let enter_call st ~args =
    { locks = List.filter_map
        (fun (t, h) ->
          Option.map (fun t' -> (t', h)) (translate_down ~args t))
        st.locks;
      floor = st.floor;
      root = false }

  let leave_call ~caller ~args ~exit_ =
    match exit_ with
    | None ->
        (* no summary (recursion, unresolved indirect): degrade *)
        { caller with locks = all_maybe caller.locks }
    | Some ex ->
        let hidden =
          List.filter
            (fun (t, _) -> translate_down ~args t = None)
            caller.locks
        in
        let poisoned = ref false in
        let back =
          List.filter_map
            (fun (t, h) ->
              match translate_up ~args t with
              | Some t' -> Some (t', h)
              | None ->
                  poisoned := true;
                  None)
            ex.locks
        in
        let locks = hidden @ back in
        { caller with
          locks = (if !poisoned then all_maybe locks else locks) }
end

(* --- analysis + reporting --------------------------------------------- *)

(* A site: one event observed in one analysis instance, with the
   must-held lockset (context-independent tokens only, so locksets are
   comparable across functions) in force just before it.  [Racepair]
   consumes these. *)
type site = {
  s_fn : Icfg.func;
  s_interrupt : bool;   (* instance runs at DISPATCH (ISR/DPC closure) *)
  s_lockset : tok list; (* sorted *)
  s_event : Df.event;
}

type result = {
  r_findings : (string * string * int * string) list;
      (* (rule, func, pos, message), sorted and deduplicated *)
  r_sites : site list;
}

let release_variant_name = function
  | Annot.Lv_plain -> "plain"
  | Annot.Lv_dpr -> "Dpr"

let analyze ?pick (vals : Df.t) ~(model : Annot.api_model)
    ~(roles : Df.roles) =
  let module L = MakeDomain (struct
    let model = model
  end) in
  let module E = Df.Make (L) in
  let result = E.run ?pick vals ~roots:roles.Df.ro_roots in
  let findings = ref [] in
  let sites = ref [] in
  let add rule fn pos msg =
    findings := (rule, fn.Icfg.fn_name, pos, msg) :: !findings
  in
  let lock_api name =
    List.find_opt (fun la -> la.Annot.la_api = name) model.Annot.m_locks
  in
  let passive name =
    List.exists (fun ic -> ic.Annot.ic_api = name) model.Annot.m_passive_only
  in
  (* tokens a function's own code releases, for the helper
     forgotten-release gate *)
  let released_by : (int, tok list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (entry, fi) ->
      let toks = ref [] in
      List.iter
        (fun (_, bi) ->
          List.iter
            (fun ev ->
              match ev with
              | Df.E_kcall { name; args; _ } -> (
                  match lock_api name with
                  | Some la when not la.Annot.la_acquire -> (
                      match Option.bind (nth_arg args 0) token_of with
                      | Some t -> toks := t :: !toks
                      | None -> ())
                  | _ -> ())
              | _ -> ())
            bi.Df.bi_events)
        fi.Df.fi_blocks;
      Hashtbl.replace released_by entry (List.sort_uniq compare !toks))
    vals.Df.funcs;
  E.iter_in_states result
    (fun ~fn ~widened:_ ~ctx ~leader ~din ~dout ->
      let _final =
        E.replay result ~din ~leader ~f:(fun st ev ->
            sites :=
              { s_fn = fn;
                s_interrupt = st.L.floor;
                s_lockset =
                  List.sort compare
                    (List.filter_map
                       (fun (t, h) ->
                         match h with
                         | Held _ when context_independent t -> Some t
                         | _ -> None)
                       st.L.locks);
                s_event = ev }
              :: !sites;
            match ev with
            | Df.E_kcall { ev_off; name; args; _ } -> (
                (match lock_api name with
                 | Some la -> (
                     match Option.bind (nth_arg args 0) token_of with
                     | Some t when la.Annot.la_acquire -> (
                         match List.assoc_opt t st.L.locks with
                         | Some (Held _) ->
                             add "lock-double-acquire" fn ev_off
                               (Printf.sprintf
                                  "%s re-acquires %s already held on every \
                                   path to this point"
                                  name (pp_tok t))
                         | _ -> ())
                     | Some t -> (
                         (* release *)
                         match List.assoc_opt t st.L.locks with
                         | Some (Held v)
                           when v <> la.Annot.la_variant ->
                             add "lock-wrong-variant" fn ev_off
                               (Printf.sprintf
                                  "%s releases %s acquired with the %s \
                                   variant"
                                  name (pp_tok t) (release_variant_name v))
                         | Some (Held _) ->
                             let rec newer_held = function
                               | [] -> None
                               | (t', _) :: rest when t' = t ->
                                   List.find_opt
                                     (fun (_, h) ->
                                       match h with
                                       | Held _ -> true
                                       | Maybe -> false)
                                     rest
                               | _ :: rest -> newer_held rest
                             in
                             (match newer_held st.L.locks with
                              | Some (t', _) ->
                                  add "lock-out-of-order" fn ev_off
                                    (Printf.sprintf
                                       "%s releases %s while younger %s is \
                                        still held (non-LIFO release order)"
                                       name (pp_tok t) (pp_tok t'))
                              | None -> ())
                         | Some Maybe -> ()
                         | None ->
                             add "lock-extra-release" fn ev_off
                               (Printf.sprintf
                                  "%s releases %s which is not held on any \
                                   path to this point"
                                  name (pp_tok t))
                     )
                     | None -> ())
                 | None -> ());
                if passive name && L.raised st then
                  add "irql-passive-api" fn ev_off
                    (Printf.sprintf
                       "%s requires PASSIVE_LEVEL but runs at \
                        DISPATCH_LEVEL (%s)"
                       name
                       (if st.L.floor then "interrupt-context entry point"
                        else "a plain spin lock is held")))
            | _ -> ())
      in
      (* Forgotten-release is checked on each edge INTO a ret block, not
         at the ret block itself: the compiler routes every [return]
         through one shared epilogue, so the epilogue's IN state is the
         join over all return paths and a single leaking path would be
         hidden as Maybe.  The OUT state of each predecessor is the
         per-return-site must-fact. *)
      let feeds_ret =
        match Icfg.block vals.Df.icfg leader with
        | Some b when b.Icfg.bb_term <> Icfg.T_ret ->
            List.exists (fun s -> List.mem s fn.Icfg.fn_rets) b.Icfg.bb_succs
        | Some _ | None ->
            (* degenerate hand-written shape: the entry block itself
               rets, so there is no predecessor edge to inspect *)
            leader = fn.Icfg.fn_entry && List.mem leader fn.Icfg.fn_rets
      in
      (match (feeds_ret, dout) with
       | true, Some out ->
           let pos =
             match Icfg.block vals.Df.icfg leader with
             | Some b -> (
                 match List.rev b.Icfg.bb_instrs with
                 | (p, _) :: _ -> p
                 | [] -> leader)
             | None -> leader
           in
           List.iter
             (fun (t, h) ->
               match h with
               | Held _ ->
                   let releases_elsewhere =
                     match
                       Hashtbl.find_opt released_by fn.Icfg.fn_entry
                     with
                     | Some toks -> List.mem t toks
                     | None -> false
                   in
                   if ctx.L.root then
                     add "lock-forgotten-release" fn pos
                       (Printf.sprintf
                          "entry point returns with %s still held"
                          (pp_tok t))
                   else if releases_elsewhere then
                     add "lock-forgotten-release" fn pos
                       (Printf.sprintf
                          "returns with %s still held on this path \
                           although this function releases it elsewhere"
                          (pp_tok t))
               | Maybe -> ())
             out.L.locks
       | _ -> ()));
  { r_findings = List.sort_uniq compare !findings;
    r_sites = List.rev !sites }
