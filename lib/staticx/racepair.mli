(** Static race-pair detection: interrupt-context uses of a shared
    resource against its main-path initialization (the DDT paper's
    "interrupt before timer/DPC state is initialized" defect class).

    Rules: [race-unguarded-deref] (interrupt-context access through a
    pointer read from a driver global) and [race-unguarded-use]
    (interrupt-context call of an {!Ddt_annot.Annot.init_pair} use API
    racing the pair's initializer).  A use is exempt when the global is
    its own branch guard, the handler publishes it locally first, a
    must-held lock is common with every publication site, or a guard
    flag is provably only raised after publication. *)

val analyze :
  model:Ddt_annot.Annot.api_model ->
  sites:Lockirql.site list ->
  (string * string * int * string) list
(** (rule, function, position, message), sorted, deduplicated. *)
