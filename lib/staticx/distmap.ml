let infinity_dist = 1_000_000

type t = {
  icfg : Icfg.t;
  ids : (int, int) Hashtbl.t;          (* leader -> dense id *)
  addrs : int array;                   (* dense id -> leader *)
  radj : (int * int) list array;       (* id -> (pred id, weight) list *)
  covered : bool array;
  goals : bool array;
  (* permanent Dijkstra sources (directed-confirmation targets): they
     keep pulling states even once covered — reaching the block once
     does not witness the warning, a bug-triggering path through it
     might still be pending *)
  dist_tbl : int array;                (* by dense id *)
  mutable dirty : bool;
  mu : Mutex.t;
}

let create ?(goals = []) icfg =
  let addrs = Array.of_list icfg.Icfg.universe in
  let n = Array.length addrs in
  let ids = Hashtbl.create (2 * n) in
  Array.iteri (fun i a -> Hashtbl.replace ids a i) addrs;
  let radj = Array.make (max 1 n) [] in
  List.iter
    (fun (src, dst, w) ->
      match (Hashtbl.find_opt ids src, Hashtbl.find_opt ids dst) with
      | Some s, Some d -> radj.(d) <- (s, w) :: radj.(d)
      | _ -> ())
    (Icfg.edges icfg);
  let goal_arr = Array.make (max 1 n) false in
  List.iter
    (fun off ->
      (* accept mid-block offsets: resolve through the leader *)
      let leader =
        if Hashtbl.mem ids off then Some off
        else Hashtbl.find_opt icfg.Icfg.leader_of off
      in
      match Option.bind leader (Hashtbl.find_opt ids) with
      | Some i -> goal_arr.(i) <- true
      | None -> ())
    goals;
  {
    icfg;
    ids;
    addrs;
    radj;
    covered = Array.make (max 1 n) false;
    goals = goal_arr;
    dist_tbl = Array.make (max 1 n) 0;
    dirty = true;
    mu = Mutex.create ();
  }

(* Binary min-heap of (dist, id) pairs for the Dijkstra frontier, stored
   as two parallel int arrays. Stale entries (a node pushed again with a
   better distance before its old entry surfaced) are skipped on pop by
   comparing against the current distance table. *)
module Heap = struct
  type h = {
    mutable keys : int array;    (* tentative distance *)
    mutable vals : int array;    (* dense node id *)
    mutable len : int;
  }

  let make cap = { keys = Array.make (max 1 cap) 0;
                   vals = Array.make (max 1 cap) 0; len = 0 }

  let swap h i j =
    let k = h.keys.(i) and v = h.vals.(i) in
    h.keys.(i) <- h.keys.(j); h.vals.(i) <- h.vals.(j);
    h.keys.(j) <- k; h.vals.(j) <- v

  let push h key v =
    if h.len = Array.length h.keys then begin
      let grow a = Array.append a (Array.make (Array.length a) 0) in
      h.keys <- grow h.keys;
      h.vals <- grow h.vals
    end;
    h.keys.(h.len) <- key;
    h.vals.(h.len) <- v;
    let i = ref h.len in
    h.len <- h.len + 1;
    while !i > 0 && h.keys.((!i - 1) / 2) > h.keys.(!i) do
      swap h ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done

  (* [pop h] returns (key, v) for the smallest key, or (-1, -1) when empty. *)
  let pop h =
    if h.len = 0 then (-1, -1)
    else begin
      let key = h.keys.(0) and v = h.vals.(0) in
      h.len <- h.len - 1;
      h.keys.(0) <- h.keys.(h.len);
      h.vals.(0) <- h.vals.(h.len);
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < h.len && h.keys.(l) < h.keys.(!m) then m := l;
        if r < h.len && h.keys.(r) < h.keys.(!m) then m := r;
        if !m = !i then continue_ := false
        else begin
          swap h !i !m;
          i := !m
        end
      done;
      (key, v)
    end
end

(* Multi-source Dijkstra from the uncovered blocks over the reversed
   graph, with a binary-heap frontier: O((V + E) log V) instead of the
   former O(V^2) pick-min scan — the difference is felt on every dirty
   [dist] query once universes reach a few thousand blocks. *)
let recompute t =
  let n = Array.length t.addrs in
  let d = t.dist_tbl in
  let heap = Heap.make (max 1 n) in
  for i = 0 to n - 1 do
    if t.covered.(i) && not t.goals.(i) then d.(i) <- infinity_dist
    else begin
      d.(i) <- 0;
      Heap.push heap 0 i
    end
  done;
  let continue_ = ref true in
  while !continue_ do
    match Heap.pop heap with
    | -1, _ -> continue_ := false
    | du, u ->
        (* skip stale entries superseded by a better relaxation *)
        if du = d.(u) then
          List.iter
            (fun (p, w) ->
              if du + w < d.(p) then begin
                d.(p) <- du + w;
                Heap.push heap d.(p) p
              end)
            t.radj.(u)
  done;
  t.dirty <- false

let note_covered t off =
  Mutex.lock t.mu;
  (match Hashtbl.find_opt t.ids off with
   | Some i when not t.covered.(i) ->
       t.covered.(i) <- true;
       t.dirty <- true
   | _ -> ());
  Mutex.unlock t.mu

let dist t off =
  Mutex.lock t.mu;
  if t.dirty then recompute t;
  let r =
    match Hashtbl.find_opt t.ids off with
    | Some i -> t.dist_tbl.(i)
    | None -> (
        (* mid-block offset: resolve through its leader *)
        match Hashtbl.find_opt t.icfg.Icfg.leader_of off with
        | Some l -> (
            match Hashtbl.find_opt t.ids l with
            | Some i -> t.dist_tbl.(i)
            | None -> 0)
        | None -> 0)
  in
  Mutex.unlock t.mu;
  r

let uncovered t =
  Mutex.lock t.mu;
  let acc = ref [] in
  Array.iteri (fun i a -> if not t.covered.(i) then acc := a :: !acc) t.addrs;
  Mutex.unlock t.mu;
  List.sort compare !acc
