let infinity_dist = 1_000_000

type t = {
  icfg : Icfg.t;
  ids : (int, int) Hashtbl.t;          (* leader -> dense id *)
  addrs : int array;                   (* dense id -> leader *)
  radj : (int * int) list array;       (* id -> (pred id, weight) list *)
  covered : bool array;
  dist_tbl : int array;                (* by dense id *)
  mutable dirty : bool;
  mu : Mutex.t;
}

let create icfg =
  let addrs = Array.of_list icfg.Icfg.universe in
  let n = Array.length addrs in
  let ids = Hashtbl.create (2 * n) in
  Array.iteri (fun i a -> Hashtbl.replace ids a i) addrs;
  let radj = Array.make (max 1 n) [] in
  List.iter
    (fun (src, dst, w) ->
      match (Hashtbl.find_opt ids src, Hashtbl.find_opt ids dst) with
      | Some s, Some d -> radj.(d) <- (s, w) :: radj.(d)
      | _ -> ())
    (Icfg.edges icfg);
  {
    icfg;
    ids;
    addrs;
    radj;
    covered = Array.make (max 1 n) false;
    dist_tbl = Array.make (max 1 n) 0;
    dirty = true;
    mu = Mutex.create ();
  }

(* Multi-source Dijkstra from the uncovered blocks over the reversed
   graph. Universes are a few hundred blocks, so the O(n^2) pick-min scan
   beats maintaining a heap. *)
let recompute t =
  let n = Array.length t.addrs in
  let d = t.dist_tbl in
  for i = 0 to n - 1 do
    d.(i) <- (if t.covered.(i) then infinity_dist else 0)
  done;
  let settled = Array.make (max 1 n) false in
  let continue_ = ref true in
  while !continue_ do
    (* pick the unsettled node with the smallest tentative distance *)
    let best = ref (-1) in
    for i = 0 to n - 1 do
      if (not settled.(i)) && d.(i) < infinity_dist
         && (!best < 0 || d.(i) < d.(!best))
      then best := i
    done;
    match !best with
    | -1 -> continue_ := false
    | u ->
        settled.(u) <- true;
        List.iter
          (fun (p, w) ->
            if (not settled.(p)) && d.(u) + w < d.(p) then d.(p) <- d.(u) + w)
          t.radj.(u)
  done;
  t.dirty <- false

let note_covered t off =
  Mutex.lock t.mu;
  (match Hashtbl.find_opt t.ids off with
   | Some i when not t.covered.(i) ->
       t.covered.(i) <- true;
       t.dirty <- true
   | _ -> ());
  Mutex.unlock t.mu

let dist t off =
  Mutex.lock t.mu;
  if t.dirty then recompute t;
  let r =
    match Hashtbl.find_opt t.ids off with
    | Some i -> t.dist_tbl.(i)
    | None -> (
        (* mid-block offset: resolve through its leader *)
        match Hashtbl.find_opt t.icfg.Icfg.leader_of off with
        | Some l -> (
            match Hashtbl.find_opt t.ids l with
            | Some i -> t.dist_tbl.(i)
            | None -> 0)
        | None -> 0)
  in
  Mutex.unlock t.mu;
  r

let uncovered t =
  Mutex.lock t.mu;
  let acc = ref [] in
  Array.iteri (fun i a -> if not t.covered.(i) then acc := a :: !acc) t.addrs;
  Mutex.unlock t.mu;
  List.sort compare !acc
