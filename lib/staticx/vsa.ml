module Image = Ddt_dvm.Image
module Isa = Ddt_dvm.Isa

type t = {
  code_targets : int list;
  control_flow_relocs : int list;
  data_code_refs : (int * int) list;
}

(* Read the 32-bit little-endian value stored at image-relative offset
   [off] (pre-load, so relocation slots still hold image-relative
   addresses). Offsets cover text then data, matching [Image.load]. *)
let read_slot (img : Image.t) off =
  let text_len = Bytes.length img.Image.text in
  let data_len = Bytes.length img.Image.data in
  let get b i = Int32.to_int (Bytes.get_int32_le b i) land 0xFFFFFFFF in
  if off >= 0 && off + 4 <= text_len then Some (get img.Image.text off)
  else if off >= text_len && off - text_len + 4 <= data_len then
    Some (get img.Image.data (off - text_len))
  else None

(* A text relocation slot is the immediate field of some instruction;
   classify by that instruction's opcode. Branch/call immediates are
   consumed by the instruction and never escape into a register, so they
   are not address-taken. Everything else ([lea], relocated data words)
   conservatively is. *)
let is_control_flow_imm (img : Image.t) off =
  let instr_off = off - Isa.imm_field_offset in
  instr_off >= 0
  && instr_off mod Isa.instr_size = 0
  && instr_off + Isa.instr_size <= Bytes.length img.Image.text
  &&
  match Isa.decode img.Image.text instr_off with
  | Isa.Jmp _ | Isa.Jz _ | Isa.Jnz _ | Isa.Call _ -> true
  | _ -> false
  | exception Isa.Invalid_opcode _ -> false

let analyze (img : Image.t) =
  let text_len = Bytes.length img.Image.text in
  let is_code v = v >= 0 && v < text_len && v mod Isa.instr_size = 0 in
  let taken = Hashtbl.create 16 in
  let cf = ref [] in
  let data_refs = ref [] in
  List.iter
    (fun off ->
      match read_slot img off with
      | None -> ()
      | Some v ->
          if off < text_len && is_control_flow_imm img off then
            cf := off :: !cf
          else if is_code v then begin
            Hashtbl.replace taken v ();
            if off >= text_len then data_refs := (off, v) :: !data_refs
          end)
    img.Image.relocs;
  {
    code_targets =
      List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) taken []);
    control_flow_relocs = List.sort compare !cf;
    data_code_refs = List.sort compare !data_refs;
  }

let code_targets img = (analyze img).code_targets
