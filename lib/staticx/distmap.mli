(** Distance-to-uncovered over the weighted interprocedural CFG.

    [dist pc] is the least total edge weight of any ICFG path from the
    block containing [pc] to a not-yet-covered block (0 when [pc]'s own
    block is uncovered). Distances are recomputed lazily — marking a block
    covered only sets a dirty flag; the next [dist] query runs one
    multi-source shortest-path pass from the uncovered set over the
    reversed graph.

    Covering blocks can only remove sources, so [dist] is monotone
    non-decreasing over a session — the property the scheduler's lazy
    min-heap requires of its priority components.

    Thread-safe: all operations take an internal lock (they are called
    from every frontier worker). *)

type t

val create : ?goals:int list -> Icfg.t -> t
(** Every block starts uncovered.  [goals] (image-relative offsets,
    mid-block accepted) are permanent Dijkstra sources — typically
    static-warning positions for directed confirmation: unlike ordinary
    uncovered blocks they keep attracting states after being covered,
    since executing the block once does not witness the warning. *)

val infinity_dist : int
(** Returned when no uncovered block is reachable from [pc] (or when
    everything is covered). *)

val note_covered : t -> int -> unit
(** Mark the block whose leader is this image-relative offset covered.
    Offsets outside the universe are ignored. *)

val dist : t -> int -> int
(** Distance from the block containing this image-relative offset.
    Offsets outside the analyzed code return 0 (neutral: such states are
    about to leave the image and cost nothing to finish). *)

val uncovered : t -> int list
(** Sorted leaders still uncovered. *)
