(** Interprocedural lockset + IRQL abstract interpretation.

    A client of {!Dataflow.Make}: the abstract state is the
    acquisition-ordered must/may lockset plus the IRQL floor implied by
    the entry point's concurrency role.  Lock objects are named
    structurally ({!tok}) so a lock acquired in a caller is recognized
    inside a helper and vice versa — the helper-function blind spot of
    the intraprocedural baseline ([Ddt_baseline.Absint]).  All rules
    fire on must-facts only; conditional acquire/release pairs join to
    [Maybe] and stay silent, removing the baseline's path-insensitivity
    false positive.

    Rules: [lock-double-acquire], [lock-extra-release],
    [lock-wrong-variant], [lock-out-of-order] (non-LIFO release),
    [lock-forgotten-release], [irql-passive-api]. *)

type tclass =
  | Tc_img                 (** lock object at image offset [td] *)
  | Tc_gptr of int         (** at offset [td] of [*global g] *)
  | Tc_arg of int          (** at offset [td] of argument [i] *)
  | Tc_frame               (** at frame offset [td] (local lock) *)

type tok = { tc : tclass; td : int }

type hold = Held of Ddt_annot.Annot.lock_variant | Maybe

val pp_tok : tok -> string
val token_of : Dataflow.av -> tok option
val context_independent : tok -> bool

type site = {
  s_fn : Icfg.func;
  s_interrupt : bool;
      (** this instance runs at DISPATCH_LEVEL (ISR/DPC closure) *)
  s_lockset : tok list;
      (** must-held, context-independent tokens, sorted — comparable
          across functions *)
  s_event : Dataflow.event;
}

type result = {
  r_findings : (string * string * int * string) list;
      (** (rule, function, position, message), sorted, deduplicated *)
  r_sites : site list;
      (** every event of every analyzed instance with the lockset in
          force — the input to {!Racepair} *)
}

val analyze :
  ?pick:(int -> int) ->
  Dataflow.t ->
  model:Ddt_annot.Annot.api_model ->
  roles:Dataflow.roles ->
  result
(** [pick] is forwarded to {!Dataflow.Make.run}: it chooses which
    pending worklist item is serviced next.  The result is independent
    of it (the QCheck property test exercises this with random
    permutation picks). *)
