(* Synthetic "deep loop" miniport: a polling loop whose body branches on
   a fresh device word every iteration. Without state merging each round
   doubles the frontier (2^ROUNDS paths through initialize); with merging
   the two arms re-fuse at the loop latch, so the state count stays linear
   in ROUNDS. The one seeded bug sits after the loop behind an independent
   device byte, so both exploration modes must report the identical bug. *)

let common_prologue = {|
// deeploop -- synthetic NE2000-class polling miniport
const TAG        = 0x504C4444;   // 'DDLP'
const CTX_SIZE   = 64;
const CTX_MMIO   = 0;            // word offsets inside the context
const CTX_ACC    = 4;            // folded status checksum
const CTX_LINK   = 8;

const REG_STATUS     = 0;        // polled once per loop round
const REG_CAL        = 4;        // post-loop calibration byte
const REG_ISR_STATUS = 8;
const REG_ISR_ACK    = 12;
const REG_TX_FIFO    = 16;

const ROUNDS = 8;

int g_ctx;
int chars[8];
|}

let common_handlers = {|
int isr(int ctx) {
  int mmio = *(ctx + CTX_MMIO);
  int status = *(mmio + REG_ISR_STATUS);
  if ((status & 1) == 0) { return 0; }
  *(mmio + REG_ISR_ACK) = status;
  return 3;
}

int handle_interrupt(int ctx) {
  int mmio = *(ctx + CTX_MMIO);
  *(ctx + CTX_LINK) = *(mmio + REG_ISR_STATUS) & 2;
  return 0;
}

int query(int oid, int buf, int len) {
  if (oid == 1) { *buf = 1; return 0; }
  if (oid == 2) { *buf = *(g_ctx + CTX_ACC); return 0; }
  return 4;   // NOT_SUPPORTED
}

int set_information(int oid, int buf, int len) {
  if (oid == 2) { *(g_ctx + CTX_ACC) = *buf; return 0; }
  return 4;
}

int send(int pkt, int len) {
  int mmio = *(g_ctx + CTX_MMIO);
  __stb(mmio + REG_TX_FIFO, __ldb(pkt));
  return 0;
}

int reset(void) {
  *(g_ctx + CTX_ACC) = 0;
  return 0;
}

int halt(void) {
  NdisMDeregisterInterrupt();
  NdisFreeMemory(g_ctx, CTX_SIZE, 0);
  g_ctx = 0;
  return 0;
}
int driver_entry(void) {
  chars[0] = initialize;
  chars[1] = query;
  chars[2] = set_information;
  chars[3] = send;
  chars[4] = isr;
  chars[5] = handle_interrupt;
  chars[6] = halt;
  chars[7] = reset;
  return NdisMRegisterMiniport(chars);
}
|}

let source =
  common_prologue
  ^ {|
int initialize(void) {
  int ctx;
  int mmio;
  int status;

  status = NdisAllocateMemoryWithTag(&ctx, CTX_SIZE, TAG);
  if (status != 0) { return 1; }
  g_ctx = ctx;
  NdisMSetAttributes(ctx);

  // The harness only fault-injects the allocator family, so MapIoSpace
  // and RegisterInterrupt cannot fail here; defensive arms for them
  // would be dead blocks and spoil the coverage universe.
  NdisMMapIoSpace(&mmio, 0);
  *(ctx + CTX_MMIO) = mmio;
  NdisMRegisterInterrupt(9);

  // Calibration: poll the status register ROUNDS times and fold each
  // word into a checksum two different ways depending on its ready bit.
  // Every round reads a fresh (symbolic) device word, so this is the
  // path-explosion kernel: 2^ROUNDS paths if each branch forks.
  int acc = 0;
  int i;
  int v;
  for (i = 0; i < ROUNDS; i = i + 1) {
    v = *(mmio + REG_STATUS);
    if (v & 1) { acc = acc + (v & 0xFF); }
    else       { acc = acc ^ (i + 1); }
  }
  *(ctx + CTX_ACC) = acc;

  // BUG (segfault): one calibration byte makes the driver persist the
  // checksum through a scratch pointer that was never set up.
  int probe = *(mmio + REG_CAL);
  if ((probe & 0xFF) == 0x77) {
    int scratch = 0;
    *scratch = acc;
  }
  return 0;
}
|}
  ^ common_handlers

let fixed_source =
  common_prologue
  ^ {|
int initialize(void) {
  int ctx;
  int mmio;
  int status;

  status = NdisAllocateMemoryWithTag(&ctx, CTX_SIZE, TAG);
  if (status != 0) { return 1; }
  g_ctx = ctx;
  NdisMSetAttributes(ctx);

  // The harness only fault-injects the allocator family, so MapIoSpace
  // and RegisterInterrupt cannot fail here; defensive arms for them
  // would be dead blocks and spoil the coverage universe.
  NdisMMapIoSpace(&mmio, 0);
  *(ctx + CTX_MMIO) = mmio;
  NdisMRegisterInterrupt(9);

  int acc = 0;
  int i;
  int v;
  for (i = 0; i < ROUNDS; i = i + 1) {
    v = *(mmio + REG_STATUS);
    if (v & 1) { acc = acc + (v & 0xFF); }
    else       { acc = acc ^ (i + 1); }
  }
  *(ctx + CTX_ACC) = acc;

  // Fixed: the calibration result lands in the context, not through a
  // null scratch pointer.
  int probe = *(mmio + REG_CAL);
  if ((probe & 0xFF) == 0x77) {
    *(ctx + CTX_LINK) = acc;
  }
  return 0;
}
|}
  ^ common_handlers

let memo = ref None
let memo_fixed = ref None

let image () =
  match !memo with
  | Some img -> img
  | None ->
      let img = Ddt_minicc.Codegen.compile ~name:"deeploop" source in
      memo := Some img;
      img

let fixed_image () =
  match !memo_fixed with
  | Some img -> img
  | None ->
      let img = Ddt_minicc.Codegen.compile ~name:"deeploop-fixed" fixed_source in
      memo_fixed := Some img;
      img

let registry = []

let descriptor =
  { Ddt_kernel.Pci.vendor_id = 0x1D3D; device_id = 0x0001; revision = 0;
    bar_sizes = [ 0x1000 ]; irq_line = 9 }
