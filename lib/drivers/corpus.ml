module Report = Ddt_checkers.Report
module Config = Ddt_core.Config

type entry = {
  name : string;
  short : string;
  driver_class : Config.driver_class;
  image : unit -> Ddt_dvm.Image.t;
  fixed_image : unit -> Ddt_dvm.Image.t;
  registry : (string * int) list;
  descriptor : Ddt_kernel.Pci.descriptor;
  expected_bugs : (Report.kind * string) list;
}

let all =
  [
    {
      name = "Intel Pro/1000";
      short = "pro1000";
      driver_class = Config.Network;
      image = Pro1000.image;
      fixed_image = Pro1000.fixed_image;
      registry = Pro1000.registry;
      descriptor = Pro1000.descriptor;
      expected_bugs =
        [ (Report.Resource_leak, "Memory leak on failed initialization") ];
    };
    {
      name = "Intel Pro/100 (DDK)";
      short = "pro100";
      driver_class = Config.Network;
      image = Pro100.image;
      fixed_image = Pro100.fixed_image;
      registry = Pro100.registry;
      descriptor = Pro100.descriptor;
      expected_bugs =
        [ (Report.Lock_misuse,
           "NdisReleaseSpinLock called from DPC routine") ];
    };
    {
      name = "Intel 82801AA AC97";
      short = "ac97";
      driver_class = Config.Audio;
      image = Ac97.image;
      fixed_image = Ac97.fixed_image;
      registry = Ac97.registry;
      descriptor = Ac97.descriptor;
      expected_bugs =
        [ (Report.Race_condition,
           "During playback, the interrupt handler can cause a BSOD") ];
    };
    {
      name = "Ensoniq AudioPCI";
      short = "audiopci";
      driver_class = Config.Audio;
      image = Audiopci.image;
      fixed_image = Audiopci.fixed_image;
      registry = Audiopci.registry;
      descriptor = Audiopci.descriptor;
      expected_bugs =
        [ (Report.Segfault, "Crash when ExAllocatePoolWithTag returns NULL");
          (Report.Segfault, "Crash when PcNewInterruptSync fails");
          (Report.Race_condition, "Race condition in the initialization routine");
          (Report.Race_condition,
           "Race conditions with interrupts while playing audio") ];
    };
    {
      name = "AMD PCNet";
      short = "pcnet";
      driver_class = Config.Network;
      image = Pcnet.image;
      fixed_image = Pcnet.fixed_image;
      registry = Pcnet.registry;
      descriptor = Pcnet.descriptor;
      expected_bugs =
        [ (Report.Resource_leak,
           "Driver does not free memory allocated with \
            NdisAllocateMemoryWithTag");
          (Report.Resource_leak,
           "Driver does not free packets and buffers on failed \
            initialization") ];
    };
    {
      name = "RTL8029";
      short = "rtl8029";
      driver_class = Config.Network;
      image = Rtl8029.image;
      fixed_image = Rtl8029.fixed_image;
      registry = Rtl8029.registry;
      descriptor = Rtl8029.descriptor;
      expected_bugs =
        [ (Report.Resource_leak,
           "Driver does not always call NdisCloseConfiguration when \
            initialization fails");
          (Report.Memory_error,
           "Driver does not check the range for MaximumMulticastList \
            registry parameter");
          (Report.Race_condition,
           "Interrupt arriving before timer initialization leads to BSOD");
          (Report.Segfault, "Crash when getting an unexpected OID in \
                             QueryInformation");
          (Report.Segfault, "Crash when getting an unexpected OID in \
                             SetInformation") ];
    };
    {
      name = "Deep-loop poller";
      short = "deeploop";
      driver_class = Config.Network;
      image = Deeploop.image;
      fixed_image = Deeploop.fixed_image;
      registry = Deeploop.registry;
      descriptor = Deeploop.descriptor;
      expected_bugs =
        [ (Report.Segfault,
           "Calibration byte 0x77 makes the driver write the polled \
            checksum through a null scratch pointer") ];
    };
  ]

let find short = List.find (fun e -> e.short = short) all

let config ?(fixed = false) ?(use_annotations = true) e =
  let image = if fixed then e.fixed_image () else e.image () in
  Config.make ~driver_name:e.name ~image ~driver_class:e.driver_class
    ~descriptor:e.descriptor ~registry:e.registry ~use_annotations ()
