module Expr = Ddt_solver.Expr

type node = {
  parent : node option;
  writes : (int, Expr.t) Hashtbl.t;
}

type t = {
  mutable node : node;
  base : Ddt_dvm.Mem.t;
  mutable cache : (int, Expr.t) Hashtbl.t;
  symdev : Ddt_hw.Symdev.t option;
  mutable sym_read_hook : string -> Expr.var -> unit;
}

let create ~base ~symdev =
  {
    node = { parent = None; writes = Hashtbl.create 64 };
    base;
    cache = Hashtbl.create 64;
    symdev;
    sym_read_hook = (fun _ _ -> ());
  }

let fork t =
  let old = t.node in
  t.node <- { parent = Some old; writes = Hashtbl.create 16 };
  {
    t with
    node = { parent = Some old; writes = Hashtbl.create 16 };
    cache = Hashtbl.copy t.cache;
  }

let set_sym_read_hook t f = t.sym_read_hook <- f

let is_mmio t addr =
  match t.symdev with
  | Some d -> Ddt_hw.Symdev.is_device_addr d addr
  | None -> false

let read_u8 t addr =
  let addr = addr land 0xFFFFFFFF in
  if is_mmio t addr then begin
    (* Fully symbolic hardware: every read is a fresh unconstrained value. *)
    let d = Option.get t.symdev in
    let e = Ddt_hw.Symdev.fresh_read d addr in
    (match e with
     | Expr.Var v -> t.sym_read_hook v.Expr.name v
     | _ -> ());
    e
  end
  else
    match Hashtbl.find_opt t.cache addr with
    | Some v -> v
    | None ->
        let rec walk = function
          | None -> Expr.byte (Ddt_dvm.Mem.read_u8 t.base addr)
          | Some n -> (
              match Hashtbl.find_opt n.writes addr with
              | Some v -> v
              | None -> walk n.parent)
        in
        let v = walk (Some t.node) in
        Hashtbl.replace t.cache addr v;
        v

let write_u8 t addr v =
  let addr = addr land 0xFFFFFFFF in
  if is_mmio t addr then
    (* Symbolic hardware discards register writes. *)
    ()
  else begin
    Hashtbl.replace t.node.writes addr v;
    Hashtbl.replace t.cache addr v
  end

let read_u32 t addr =
  let b0 = read_u8 t addr in
  let b1 = read_u8 t (addr + 1) in
  let b2 = read_u8 t (addr + 2) in
  let b3 = read_u8 t (addr + 3) in
  Expr.concat4 b3 b2 b1 b0

let write_u32 t addr v =
  for i = 0 to 3 do
    write_u8 t (addr + i) (Expr.extract v i)
  done

let read_u8_concrete_view t valuation addr = valuation (read_u8 t addr)

(* Addresses either side wrote since their common COW ancestor — the
   only bytes two sibling memories can disagree on, since everything
   below the shared node is frozen at fork time. [None] when the
   memories share no ancestor (different sessions; the caller must not
   merge them). Write tables never contain MMIO addresses, so the diff
   is purely RAM. *)
let cow_diff a b =
  let depth m =
    let rec go acc = function None -> acc | Some n -> go (acc + 1) n.parent in
    go 0 (Some m.node)
  in
  let rec up n k = if k <= 0 then n else up (Option.get n.parent) (k - 1) in
  let da = depth a and db = depth b in
  let na = up a.node (max 0 (da - db)) and nb = up b.node (max 0 (db - da)) in
  let rec ancestor na nb =
    if na == nb then Some na
    else
      match (na.parent, nb.parent) with
      | Some pa, Some pb -> ancestor pa pb
      | _ -> None
  in
  match ancestor na nb with
  | None -> None
  | Some anc ->
      let addrs = Hashtbl.create 32 in
      let collect top =
        let rec go n =
          if not (n == anc) then begin
            Hashtbl.iter (fun addr _ -> Hashtbl.replace addrs addr ()) n.writes;
            match n.parent with Some p -> go p | None -> ()
          end
        in
        go top
      in
      collect a.node;
      collect b.node;
      Some (List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) addrs []))

let chain_depth t =
  let rec go acc = function
    | None -> acc
    | Some n -> go (acc + 1) n.parent
  in
  go 0 (Some t.node)

let live_words t =
  let rec go acc = function
    | None -> acc
    | Some n -> go (acc + Hashtbl.length n.writes) n.parent
  in
  go 0 (Some t.node)

(* --- snapshot projection -------------------------------------------------- *)
(* The marshal-safe part of a memory: the COW node chain and the read
   cache — pure data. The shared base image, the symbolic device and the
   read hook are session infrastructure, reattached at restore; dropping
   them here is also what keeps sibling snapshots small (they share every
   node below their fork points, and Marshal preserves that sharing when
   siblings travel in one blob). *)

type image = {
  im_node : node;
  im_cache : (int, Expr.t) Hashtbl.t;
}

let to_image t = { im_node = t.node; im_cache = t.cache }

let of_image ~base ~symdev im =
  {
    node = im.im_node;
    base;
    cache = im.im_cache;
    symdev;
    sym_read_hook = (fun _ _ -> ());
  }
