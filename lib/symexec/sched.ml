type strategy =
  | Min_touch
  | Min_dist
  | Dfs
  | Bfs
  | Random_pick of int

(* --- growable ring-buffer deque ----------------------------------------- *)
(* Slots hold options so no dummy element is needed; the buffer doubles on
   overflow. [front] is where add_state inserts (newest), [back] is where
   quantum-expired states are requeued (oldest side). *)

type deque = {
  mutable buf : Symstate.t option array;
  mutable head : int;    (* index of the front element *)
  mutable len : int;
}

let dq_create () = { buf = Array.make 16 None; head = 0; len = 0 }

let dq_grow d =
  let cap = Array.length d.buf in
  let buf' = Array.make (2 * cap) None in
  for i = 0 to d.len - 1 do
    buf'.(i) <- d.buf.((d.head + i) mod cap)
  done;
  d.buf <- buf';
  d.head <- 0

let dq_push_front d st =
  if d.len = Array.length d.buf then dq_grow d;
  let cap = Array.length d.buf in
  d.head <- (d.head + cap - 1) mod cap;
  d.buf.(d.head) <- Some st;
  d.len <- d.len + 1

let dq_push_back d st =
  if d.len = Array.length d.buf then dq_grow d;
  let cap = Array.length d.buf in
  d.buf.((d.head + d.len) mod cap) <- Some st;
  d.len <- d.len + 1

let dq_pop_front d =
  if d.len = 0 then None
  else begin
    let st = d.buf.(d.head) in
    d.buf.(d.head) <- None;
    d.head <- (d.head + 1) mod Array.length d.buf;
    d.len <- d.len - 1;
    st
  end

let dq_pop_back d =
  if d.len = 0 then None
  else begin
    let i = (d.head + d.len - 1) mod Array.length d.buf in
    let st = d.buf.(i) in
    d.buf.(i) <- None;
    d.len <- d.len - 1;
    st
  end

let dq_get d i = Option.get d.buf.((d.head + i) mod Array.length d.buf)

(* Remove the element at logical index [i], shifting the shorter side. *)
let dq_remove_at d i =
  let st = dq_get d i in
  let cap = Array.length d.buf in
  if i < d.len - i then begin
    (* shift the front segment right *)
    for j = i downto 1 do
      d.buf.((d.head + j) mod cap) <- d.buf.((d.head + j - 1) mod cap)
    done;
    d.buf.(d.head) <- None;
    d.head <- (d.head + 1) mod cap
  end
  else begin
    for j = i to d.len - 2 do
      d.buf.((d.head + j) mod cap) <- d.buf.((d.head + j + 1) mod cap)
    done;
    d.buf.((d.head + d.len - 1) mod cap) <- None
  end;
  d.len <- d.len - 1;
  st

(* --- binary min-heap keyed by (priority, fifo sequence) ------------------ *)
(* Block-execution counts only grow, so a stored priority is a lower bound
   on the current one; [hp_pop] re-checks the minimum against the live
   [priority] function and re-inserts stale entries (lazy re-evaluation),
   which reproduces the exact semantics of recomputing every priority per
   pick without the O(n) scan. Ties break FIFO via [h_seq]. *)

type hentry = { mutable h_prio : int; h_seq : int; h_st : Symstate.t }

type heap = {
  mutable harr : hentry option array;
  mutable hlen : int;
  mutable hseq : int;
}

let hp_create () = { harr = Array.make 16 None; hlen = 0; hseq = 0 }

let he_lt a b = a.h_prio < b.h_prio || (a.h_prio = b.h_prio && a.h_seq < b.h_seq)

let hp_swap h i j =
  let t = h.harr.(i) in
  h.harr.(i) <- h.harr.(j);
  h.harr.(j) <- t

let rec hp_sift_up h i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if he_lt (Option.get h.harr.(i)) (Option.get h.harr.(p)) then begin
      hp_swap h i p;
      hp_sift_up h p
    end
  end

let rec hp_sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.hlen && he_lt (Option.get h.harr.(l)) (Option.get h.harr.(!smallest))
  then smallest := l;
  if r < h.hlen && he_lt (Option.get h.harr.(r)) (Option.get h.harr.(!smallest))
  then smallest := r;
  if !smallest <> i then begin
    hp_swap h i !smallest;
    hp_sift_down h !smallest
  end

let hp_insert_entry h e =
  if h.hlen = Array.length h.harr then begin
    let arr' = Array.make (2 * h.hlen) None in
    Array.blit h.harr 0 arr' 0 h.hlen;
    h.harr <- arr'
  end;
  h.harr.(h.hlen) <- Some e;
  h.hlen <- h.hlen + 1;
  hp_sift_up h (h.hlen - 1)

let hp_push h ~prio st =
  h.hseq <- h.hseq + 1;
  hp_insert_entry h { h_prio = prio; h_seq = h.hseq; h_st = st }

let hp_take_min h =
  if h.hlen = 0 then None
  else begin
    let e = Option.get h.harr.(0) in
    h.hlen <- h.hlen - 1;
    h.harr.(0) <- h.harr.(h.hlen);
    h.harr.(h.hlen) <- None;
    if h.hlen > 0 then hp_sift_down h 0;
    Some e
  end

let rec hp_pop h ~priority =
  match hp_take_min h with
  | None -> None
  | Some e ->
      let cur = priority e.h_st in
      if cur = e.h_prio then Some e.h_st
      else begin
        (* Stale key: re-insert with the fresh priority and retry. Each
           retry stores the recomputed value, so the loop terminates. *)
        e.h_prio <- cur;
        hp_insert_entry h e;
        hp_pop h ~priority
      end

(* Remove the last array slot: always a leaf, so the heap shape is intact
   with no sifting. It carries a large key — exactly what the owner values
   least and a thief should take. *)
let hp_steal_leaf h =
  if h.hlen = 0 then None
  else begin
    h.hlen <- h.hlen - 1;
    let e = Option.get h.harr.(h.hlen) in
    h.harr.(h.hlen) <- None;
    Some e.h_st
  end

(* --- the strategy-dispatched queue --------------------------------------- *)

type store = S_deque of deque | S_heap of heap

type queue = {
  q_strategy : strategy;
  q_priority : Symstate.t -> int;
  q_store : store;
}

let create strategy ~priority =
  let store =
    match strategy with
    | Min_touch | Min_dist -> S_heap (hp_create ())
    | Dfs | Bfs | Random_pick _ -> S_deque (dq_create ())
  in
  { q_strategy = strategy; q_priority = priority; q_store = store }

let strategy q = q.q_strategy

let length q =
  match q.q_store with S_deque d -> d.len | S_heap h -> h.hlen

let is_empty q = length q = 0

let push q st =
  match q.q_store with
  | S_deque d -> dq_push_front d st
  | S_heap h -> hp_push h ~prio:(q.q_priority st) st

let requeue q st =
  match q.q_store with
  | S_deque d -> dq_push_back d st
  | S_heap h -> hp_push h ~prio:(q.q_priority st) st

let pop q =
  match q.q_store with
  | S_heap h -> hp_pop h ~priority:q.q_priority
  | S_deque d -> (
      match q.q_strategy with
      | Dfs -> dq_pop_front d
      | Bfs -> dq_pop_back d
      | Random_pick seed ->
          if d.len = 0 then None
          else
            let newest = dq_get d 0 in
            let idx =
              abs (Hashtbl.hash (seed, d.len, newest.Symstate.id)) mod d.len
            in
            Some (dq_remove_at d idx)
      | Min_touch | Min_dist -> assert false)

let steal q =
  match q.q_store with
  | S_heap h -> hp_steal_leaf h
  | S_deque d -> (
      match q.q_strategy with
      | Dfs -> dq_pop_back d       (* oldest: near the root, big subtree *)
      | Bfs | Random_pick _ -> dq_pop_front d
      | Min_touch | Min_dist -> assert false)

let iter q f =
  match q.q_store with
  | S_deque d ->
      for i = 0 to d.len - 1 do
        f (dq_get d i)
      done
  | S_heap h ->
      for i = 0 to h.hlen - 1 do
        f (Option.get h.harr.(i)).h_st
      done

let drain q =
  let rec go acc =
    let next =
      match q.q_store with
      | S_heap h -> hp_pop h ~priority:q.q_priority
      | S_deque d -> dq_pop_front d
    in
    match next with None -> List.rev acc | Some st -> go (st :: acc)
  in
  go []

(* --- checkpoint dump/restore --------------------------------------------- *)
(* Pop order must survive a checkpoint exactly. For a heap that means the
   recorded (priority, sequence) keys and the sequence counter — NOT the
   array layout: keys are unique ((prio, seq) with unique seq), so any
   valid heap over the same entry set pops in the same order, but a
   re-push with fresh sequence numbers would tie-break future
   equal-priority entries differently than the uninterrupted run. For a
   deque, order is just front-to-back. *)

let dump_entries q =
  match q.q_store with
  | S_deque d ->
      let entries = ref [] in
      for i = d.len - 1 downto 0 do
        entries := (dq_get d i, 0, i) :: !entries
      done;
      (!entries, 0)
  | S_heap h ->
      let entries = ref [] in
      for i = h.hlen - 1 downto 0 do
        let e = Option.get h.harr.(i) in
        entries := (e.h_st, e.h_prio, e.h_seq) :: !entries
      done;
      (!entries, h.hseq)

(* Only meaningful on a freshly created (empty) queue. *)
let restore_entries q entries ~hseq =
  match q.q_store with
  | S_deque d -> List.iter (fun (st, _, _) -> dq_push_back d st) entries
  | S_heap h ->
      List.iter
        (fun (st, prio, seq) ->
          hp_insert_entry h { h_prio = prio; h_seq = seq; h_st = st })
        entries;
      h.hseq <- max h.hseq hseq
