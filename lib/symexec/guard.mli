(** Fault boundary and quarantine for the exploration engine.

    DDT's value proposition is surviving pathological drivers, so the
    engine must survive its own faults too: an exception escaping a
    state's step loop, a dying worker domain, or an exhausted solver
    budget is collected here as an {!incident} — always with the
    offending state's replayable {!Ddt_trace.Replay.script}, extending
    the paper's "every finding comes with a trace" contract to engine
    faults — while the engine routes around it (the state is
    quarantined, the worker restarted, the query retried).

    A guard instance belongs to one engine; [Exec] creates it and
    records into it, [Session] reads {!incidents} into the report. *)

type incident_kind =
  | Worker_crash
      (** a worker domain's loop died between picking a state and
          finishing its quantum; the state itself was intact, so a
          snapshot is quarantined and the state requeued *)
  | State_fault
      (** the state's own execution faulted (interpreter fault, stack
          overflow, out of memory, a checker exception); the state is
          retired, its script quarantined *)
  | Solver_exhaustion
      (** a solver budget ran out during the state's quantum (at most
          one incident per state) *)

val kind_label : incident_kind -> string

type incident = {
  inc_kind : incident_kind;
  inc_worker : int;     (** frontier worker slot that hit the fault *)
  inc_state_id : int;   (** state in flight; [0] when none attributable *)
  inc_entry : string;   (** entry point the state was exploring *)
  inc_pc : int;         (** program counter at quarantine time *)
  inc_message : string;
  inc_replay : Ddt_trace.Replay.script;
}

(** {1 Chaos / fault injection}

    Deterministic triggers for the chaos harness: each period counts
    events on the guard's own atomics, so a single-worker run injects at
    exactly the same points on every execution. [0] disables the
    corresponding injection. *)

type chaos = {
  chaos_worker_crash_period : int;
      (** raise {!Chaos_crash} in the worker loop every Nth pick *)
  chaos_solver_exhaust_period : int;
      (** force every Nth uncached group solve's first attempt to report
          budget exhaustion (the escalated retry then recovers it) *)
  chaos_pressure_words : int;
      (** words added to the live-heap reading the resource governor
          sees, simulating memory pressure *)
}

val no_chaos : chaos

exception Chaos_crash
(** The injected worker fault. The state-level boundary deliberately
    does not absorb it — it must reach the worker supervisor, which is
    the recovery path under test. *)

type t

val create : unit -> t
val record : t -> incident -> unit

val claim_solver_flag : t -> int -> bool
(** [claim_solver_flag t state_id] is [true] exactly once per state id —
    the caller then owns that state's single solver-exhaustion
    incident. *)

val incidents : t -> incident list
(** All incidents so far, sorted by (state id, kind, worker) so the
    report order does not depend on worker interleaving. *)

val incident_count : t -> int

val note_restart : t -> unit
val restarts : t -> int
(** Worker-loop restarts performed by the supervisor. *)

val backoff : int -> unit
(** [backoff attempt] sleeps 2ms·2{^attempt}, capped at 50ms. *)

val maybe_crash : t -> chaos option -> unit
(** Advance the pick ordinal and raise {!Chaos_crash} when the chaos
    worker-crash period divides it. *)

val solver_chaos_fn : t -> chaos option -> (unit -> bool) option
(** The injection closure to install via
    [Ddt_solver.Solver.set_chaos_exhaust]. *)

val pressure_boost : chaos option -> int

val absorbable : exn -> bool
(** Whether the state-level fault boundary may absorb this exception
    ({!Chaos_crash} and [Stdlib.Exit] must propagate). *)

val describe : exn -> string

(** {1 Checkpointing}

    Everything in the guard is marshal-safe data once the mutex is
    projected away; a dump carries the incident list (recording order),
    the per-state solver-exhaustion flags and the counters. *)

type dump = {
  gd_incidents : incident list;
  gd_solver_flagged : int list;
  gd_restarts : int;
  gd_crash_ticks : int;
  gd_chaos_solver_ticks : int;
}

val dump : t -> dump

val restore : t -> dump -> unit
(** Replace a fresh guard's contents with the dump's. *)
