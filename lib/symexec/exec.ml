module Expr = Ddt_solver.Expr
module Simplify = Ddt_solver.Simplify
module Solver = Ddt_solver.Solver
module Incr = Ddt_solver.Incr
module Isa = Ddt_dvm.Isa
module Layout = Ddt_dvm.Layout
module Image = Ddt_dvm.Image
module Mem = Ddt_dvm.Mem
module Kstate = Ddt_kernel.Kstate
module Mach = Ddt_kernel.Mach
module Kapi = Ddt_kernel.Kapi
module Intr = Ddt_kernel.Intr
module Bugcheck = Ddt_kernel.Bugcheck
module Event = Ddt_trace.Event
module Replay = Ddt_trace.Replay
module St = Symstate

type config = {
  max_states : int;
  max_steps_per_state : int;
  quantum : int;
  max_injections : int;
  inject_interrupts : bool;
  respect_cli : bool;
  record_exec_pcs : bool;
  concrete_hardware : bool;
  (** route device reads to the concrete MMIO hooks instead of minting
      symbolic values — used by the stress baseline *)
  solver_accel : bool;
  (** enable constraint-independence slicing and the query cache for this
      engine's domain (off = bit-blast every query from scratch) *)
  solver_incr : bool;
  (** route feasibility and concretization queries through per-state
      incremental solver sessions ({!Ddt_solver.Incr}): push/pop of
      path-condition deltas, retained learned clauses, relevant-slice
      concretization. Off = every query rebuilds from scratch through
      {!Ddt_solver.Solver} (the differential oracle) *)
  strategy : Sched.strategy;
  jobs : int;
  (** worker domains exploring this engine's frontier cooperatively
      (1 = the classic sequential loop) *)
  static_guidance : bool;
  (** let the static pre-analysis steer scheduling: the session installs
      a distance-to-uncovered function ({!set_distance_fn}) that keys the
      [Min_dist] strategy and tiebreaks [Min_touch]. Off by default — the
      engine then behaves exactly as before. *)
  guard : bool;
  (** fault-tolerant exploration ({!Guard}): every state's step loop runs
      inside a fault boundary that quarantines the state on an escaped
      exception, crashed worker loops are restarted (bounded, with
      backoff), and solver budget exhaustions during a state's quantum
      are recorded as incidents. Off = the historical fail-fast engine
      (one escaped exception kills the session). *)
  max_worker_restarts : int;
  (** restarts granted to a worker that keeps crashing without making
      progress (the counter resets once the worker completes a pick) *)
  chaos : Guard.chaos option;
  (** deterministic fault injection for the chaos harness; [None] (the
      default) injects nothing *)
  dbt : bool;
  (** compile hot basic blocks into guarded closures ({!Sdbt}): fully
      concrete stretches execute with no per-instruction decode/dispatch
      and bail to the interpreter at the first symbolic operand. On by
      default; automatically disabled while [record_exec_pcs] is set
      (compiled blocks do not emit per-pc trace events). *)
  state_merging : bool;
  (** fuse sibling states back together at branch post-dominators
      ({!Merge}): a symbolic fork whose arms reconverge — per the
      merge-point map the session installs ({!set_merge_points}) — parks
      both arms at the join and lifts their register/memory differences
      to [ite]s over the disjoined path conditions, collapsing the fork
      subtree into one state. On by default; replay runs never merge (a
      script follows exactly one concrete path). *)
}

let default_config =
  {
    max_states = 512;
    max_steps_per_state = 200_000;
    quantum = 2_000;
    max_injections = 1;
    inject_interrupts = true;
    respect_cli = true;
    record_exec_pcs = false;
    concrete_hardware = false;
    solver_accel = true;
    solver_incr = true;
    strategy = Sched.Min_touch;
    jobs = 1;
    static_guidance = false;
    guard = true;
    max_worker_restarts = 3;
    chaos = None;
    dbt = true;
    state_merging = true;
  }

type mem_access = {
  ma_state : St.t;
  ma_pc : int;
  ma_write : bool;
  ma_addr : Expr.t;
  ma_conc : int;
  ma_width : int;
  ma_constraints : Expr.t list;
  ma_sp : int;
}

(* The resource picture the governor is shown (see [set_governor]): the
   engine samples it every 64 picks alongside the existing live-words
   accounting, so governance costs nothing measurable on the hot path. *)
type pressure = {
  pr_live_states : int;
  pr_cow_depth : int;
  pr_live_words : int;
}

type engine = {
  cfg : config;
  base_mem : Mem.t;
  img : Image.loaded;
  symdev : Ddt_hw.Symdev.t;
  mutable dbt : Sdbt.t option;
  (* guarded block compiler, installed lazily by [ensure_dbt] at [run]
     time (its context closures capture [note_block], defined after
     [create]); [None] when [cfg.dbt] is off or per-pc tracing is on *)
  block_index : (int, int) Hashtbl.t;       (* abs leader -> dense id;
                                               read-only after create *)
  block_addrs : int array;                  (* dense id -> abs leader, sorted *)
  covered : int Atomic.t array;
  (* first-cover claim flags by dense id: compare-and-set 0->1 decides,
     engine-wide and lock-free, which worker covered a block first *)
  shard_counts : (int, int) Hashtbl.t array;
  (* per-worker block-execution counts, merged into [block_counts] every
     [merge_period] notes — [note_block] is the hottest path in the
     engine and no longer takes the global lock per block *)
  shard_pending : int array;
  merge_period : int;
  dist_fn : (int -> int) ref;
  (* distance-to-uncovered oracle (absolute pc); the default returns 0
     everywhere, which makes the priority formulas collapse to the
     classic Min_touch ordering *)
  glock : Mutex.t;
  (* protects the tables and lists below; hooks are invoked OUTSIDE it so
     callbacks may call back into the engine (e.g. [stats]) *)
  injected_sites_global : (int, unit) Hashtbl.t;
  block_counts : (int, int) Hashtbl.t;      (* merged view of the shards *)
  mutable done_states : St.t list;
  mutable lineage : (int * int * string * int) list;
  frontier : Frontier.t;
  next_id : int Atomic.t;
  total_steps : int Atomic.t;
  states_created : int Atomic.t;
  max_cow_depth : int Atomic.t;
  peak_live_words : int Atomic.t;
  picks : int Atomic.t;
  last_new_block_step : int Atomic.t;
  mutable on_mem_access : mem_access -> unit;
  mutable on_state_done : St.t -> unit;
  mutable on_new_block : St.t -> int -> unit;
  mutable annot_pre : string -> Kstate.t -> Mach.t -> unit;
  mutable annot_post : string -> Kstate.t -> Mach.t -> unit;
  mutable kcall_enter : St.t -> string -> Mach.t -> unit;
  mutable kcall_leave : St.t -> string -> Mach.t -> unit;
  mutable replay : Replay.script option;
  pool : Merge.t;
  (* merge-token pool: parked arms, per-branch merge history, counters *)
  mutable merge_points : int -> int option;
  (* absolute block leader -> absolute reconvergence pc. The default maps
     nothing, so no token ever opens; the session installs the
     post-dominator map ({!Ddt_staticx.Pdom}) when [cfg.state_merging]. *)
  guard_st : Guard.t;
  soft_retired : int Atomic.t;
  rehomed : int Atomic.t;
  (* states rescued from a dead worker's queue by the reaper *)
  mutable governor : (pressure -> int) option;
  (* returns how many queued states to concretize-and-retire now *)
  mutable checkpoint_hook : (unit -> unit) option;
  (* called by worker 0 at pick boundaries (only when [jobs = 1], the
     one configuration where a pick boundary is a quiescent point); the
     session's checkpointer decides its own cadence inside the hook *)
  mutable run_start_steps : int;
  (* [run]'s budget baseline ([total_steps] at entry); persisted in
     checkpoints so a resumed run charges the same budget window *)
  priority_fn : St.t -> int;
  (* the frontier's priority function, kept for governor victim ranking *)
  solver_base : Solver.stats;
  (* snapshot at creation; [stats] reports the delta, i.e. the solver
     work attributable to this engine. The counters are process-global,
     so the delta is only exact while no other engine runs concurrently
     (Portfolio mode overlaps engines; its per-job solver stats are
     indicative, not exact). *)
}

(* Atomic max for report-only high-water marks. *)
let rec amax a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then amax a v

(* Which frontier worker the current domain is: the spawning main domain
   is worker 0, spawned explorers set their slot at startup. Threading an
   explicit worker context through every fork/retire call site would
   touch the whole interpreter; domain-local state is equivalent because
   a domain serves exactly one worker slot per [run]. *)
let worker_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

exception Discard_state of string
exception Fork_alts of (string * (Mach.t -> unit)) list
exception Vm_crash of string * string

(* The state reached its innermost merge token's reconvergence pc and
   parked in the pool: it is no longer this worker's to requeue or
   retire. Unwinds [step_quantum] only. *)
exception Parked

let create ?(config = default_config) img base_mem symdev =
  Ddt_kernel.Ndis.install ();
  Ddt_kernel.Portcls.install ();
  Ddt_kernel.Usb.install ();
  Solver.set_accel
    (if config.solver_accel then Solver.default_accel else Solver.no_accel);
  let block_addrs =
    Array.of_list
      (List.map
         (fun off -> img.Image.base + off)
         (Ddt_dvm.Disasm.basic_block_starts img.Image.image))
  in
  let block_index = Hashtbl.create 256 in
  Array.iteri (fun i a -> Hashtbl.replace block_index a i) block_addrs;
  let nblocks = max 1 (Array.length block_addrs) in
  let covered = Array.init nblocks (fun _ -> Atomic.make 0) in
  let nworkers = max 1 config.jobs in
  let shard_counts = Array.init nworkers (fun _ -> Hashtbl.create 64) in
  let shard_pending = Array.make nworkers 0 in
  let glock = Mutex.create () in
  let block_counts = Hashtbl.create 256 in
  let dist_fn = ref (fun (_ : int) -> 0) in
  (* The priority of a state combines how often its current block has run
     (the EXE-style Min_touch count) with the static distance from that
     block to uncovered code. Both components are monotone non-decreasing
     over a session — counts only grow, and covering blocks only removes
     shortest-path sources — which is what the lazy min-heap requires.
     The merged counts are read under [glock] (the frontier calls this
     from inside its queue locks; queue lock -> glock is the one lock
     order used everywhere). *)
  let priority st =
    let block = if st.St.last_block <> 0 then st.St.last_block else st.St.pc in
    Mutex.lock glock;
    let c = try Hashtbl.find block_counts block with Not_found -> 0 in
    Mutex.unlock glock;
    match config.strategy with
    | Sched.Min_dist -> (min (!dist_fn block) 0x3FFFFF * 4096) + min c 4095
    | _ -> (c * 4096) + min (!dist_fn block) 4095
  in
  let frontier =
    Frontier.create ~workers:(max 1 config.jobs) ~max_states:config.max_states
      ~strategy:config.strategy ~priority
  in
  let guard_st = Guard.create () in
  (* Install (or clear) the solver-side chaos injection for this engine;
     like [set_accel] above this is a process-wide switch. *)
  Solver.set_chaos_exhaust (Guard.solver_chaos_fn guard_st config.chaos);
  {
    cfg = config;
    base_mem;
    img;
    symdev;
    dbt = None;
    block_index;
    block_addrs;
    covered;
    shard_counts;
    shard_pending;
    merge_period = (if config.jobs <= 1 then 1 else 64);
    dist_fn;
    glock;
    injected_sites_global = Hashtbl.create 64;
    block_counts;
    done_states = [];
    lineage = [];
    frontier;
    next_id = Atomic.make 0;
    total_steps = Atomic.make 0;
    states_created = Atomic.make 0;
    max_cow_depth = Atomic.make 0;
    peak_live_words = Atomic.make 0;
    picks = Atomic.make 0;
    last_new_block_step = Atomic.make 0;
    on_mem_access = (fun _ -> ());
    on_state_done = (fun _ -> ());
    on_new_block = (fun _ _ -> ());
    annot_pre = (fun _ _ _ -> ());
    annot_post = (fun _ _ _ -> ());
    kcall_enter = (fun _ _ _ -> ());
    kcall_leave = (fun _ _ _ -> ());
    replay = None;
    pool = Merge.create ();
    merge_points = (fun _ -> None);
    guard_st;
    soft_retired = Atomic.make 0;
    rehomed = Atomic.make 0;
    governor = None;
    checkpoint_hook = None;
    run_start_steps = 0;
    priority_fn = priority;
    solver_base = Solver.stats ();
  }

let config eng = eng.cfg
let loaded eng = eng.img
let set_on_mem_access eng f = eng.on_mem_access <- f
let set_on_state_done eng f = eng.on_state_done <- f
let set_on_new_block eng f = eng.on_new_block <- f

let set_annotations eng ~pre ~post =
  eng.annot_pre <- pre;
  eng.annot_post <- post

let set_kcall_hooks eng ~enter ~leave =
  eng.kcall_enter <- enter;
  eng.kcall_leave <- leave

let note_rehomed eng n =
  if n > 0 then ignore (Atomic.fetch_and_add eng.rehomed n)

let set_replay eng script = eng.replay <- Some script
let set_distance_fn eng f = eng.dist_fn := f
let set_merge_points eng f = eng.merge_points <- f
let set_governor eng f = eng.governor <- Some f
let set_checkpoint_hook eng f = eng.checkpoint_hook <- Some f
let run_start eng = eng.run_start_steps
let incidents eng = Guard.incidents eng.guard_st
let worker_restarts eng = Guard.restarts eng.guard_st
let soft_retired eng = Atomic.get eng.soft_retired
let rehomed_states eng = Atomic.get eng.rehomed

(* --- state management -------------------------------------------------- *)

let install_sym_hook eng st =
  Symmem.set_sym_read_hook st.St.mem (fun name var ->
      st.St.sym_inputs <- (var, "device read") :: st.St.sym_inputs;
      St.record st (Event.E_sym_create { name; origin = "device read"; var });
      match eng.replay with
      | None -> ()
      | Some _ -> (
          match st.St.replay_inputs with
          | (n, v) :: rest when n = name ->
              st.St.replay_inputs <- rest;
              let pin = Expr.cmp Expr.Eq (Expr.var var) (Expr.byte v) in
              st.St.pinned <- pin :: st.St.pinned;
              St.add_constraint st pin
          | _ -> ()))

let new_root_state eng ks =
  let id = Atomic.fetch_and_add eng.next_id 1 + 1 in
  Atomic.incr eng.states_created;
  let mem =
    Symmem.create ~base:eng.base_mem
      ~symdev:(if eng.cfg.concrete_hardware then None else Some eng.symdev)
  in
  let st = St.create ~id ~mem ~ks in
  (match eng.replay with
   | Some script ->
       st.St.replay_inputs <- script.Replay.rs_inputs;
       st.St.replay_choices <- script.Replay.rs_choices
   | None -> ());
  install_sym_hook eng st;
  st

let fork_state eng st =
  let id = Atomic.fetch_and_add eng.next_id 1 + 1 in
  Atomic.incr eng.states_created;
  let child = St.fork st ~id in
  install_sym_hook eng child;
  install_sym_hook eng st;
  (* Forking moved the parent to a fresh COW leaf too; re-binding the hook
     keeps symbolic-read events attributed to the right state. *)
  amax eng.max_cow_depth (Symmem.chain_depth child.St.mem);
  (* The child inherited the parent's merge tags ([St.fork] shares the
     list): every open token the parent carries gains a live carrier, and
     forks by a state that absorbed siblings count as forks avoided. *)
  Merge.note_fork eng.pool st child;
  (* [St.fork] copied the parent's [last_block], so the child's scheduling
     priority starts from the fork point without any shared table. *)
  child

let replay_script ?(extra = []) ?constraints (st : St.t) =
  let base_constraints =
    match constraints with Some cs -> cs | None -> st.St.constraints
  in
  let model =
    match Solver.check (extra @ base_constraints) with
    | Solver.Sat m -> m
    | Solver.Unsat | Solver.Unknown -> (
        (* The extra witness constraints may be unsatisfiable together
           with the path; fall back to the plain path condition. *)
        match Solver.check st.St.constraints with
        | Solver.Sat m -> m
        | Solver.Unsat | Solver.Unknown -> fun _ -> 0)
  in
  {
    Replay.rs_inputs =
      List.rev_map (fun (var, _) -> (var.Expr.name, model var)) st.St.sym_inputs;
    rs_choices = List.rev st.St.choices;
    rs_inject_sites = List.rev st.St.injected_sites;
    rs_entry = st.St.entry_name;
  }

(* A quarantined state's script must never raise — the guard paths call
   this while already handling a fault. *)
let safe_replay_script st =
  try replay_script st
  with _ ->
    { Replay.rs_inputs = []; rs_choices = []; rs_inject_sites = [];
      rs_entry = st.St.entry_name }

let rec retire eng st status ~report =
  (* A dying carrier releases every merge token it holds; the last
     carrier out triggers the fold, whose survivors go back to the
     frontier and whose absorbed states retire (recursively) below. The
     pool call is a lock-free no-op while merging has never been used. *)
  handle_merge_outcome eng (Merge.note_dead eng.pool st);
  st.St.status <- Some status;
  let forks =
    List.fold_left
      (fun acc ev ->
        match ev with
        | Event.E_branch { forked = true; _ } -> acc + 1
        | _ -> acc)
      0 st.St.trace
  in
  Mutex.lock eng.glock;
  eng.lineage <-
    (st.St.id, st.St.parent_id,
     Format.asprintf "%s: %a" st.St.entry_name St.pp_status status, forks)
    :: eng.lineage;
  if report then eng.done_states <- st :: eng.done_states;
  Mutex.unlock eng.glock;
  (* The hook runs outside the lock so checkers may call [stats] etc.;
     Session serializes its own accounting. A checker exception is an
     engine fault, not a driver finding: under the guard it is
     quarantined as an incident (with the state's script) instead of
     unwinding the worker. *)
  if report then begin
    try eng.on_state_done st
    with exn when eng.cfg.guard && Guard.absorbable exn ->
      Guard.record eng.guard_st
        {
          Guard.inc_kind = Guard.State_fault;
          inc_worker = Domain.DLS.get worker_key;
          inc_state_id = st.St.id;
          inc_entry = st.St.entry_name;
          inc_pc = st.St.pc;
          inc_message = "checker exception: " ^ Guard.describe exn;
          inc_replay = safe_replay_script st;
        }
  end

(* Apply a fold's results outside the pool lock: absorbed states are
   gone (their paths live on as the ite-lifted survivor), survivors go
   back to the frontier. Runs while the triggering worker's in-flight
   slot is still held, so the frontier can never look quiescent between
   a park/death and the requeue of the fold's survivors. *)
and handle_merge_outcome eng mo =
  List.iter
    (fun s ->
      retire eng s (St.Discarded "fused into merged sibling") ~report:false)
    mo.Merge.mo_absorbed;
  List.iter
    (fun s ->
      Frontier.requeue eng.frontier ~worker:(Domain.DLS.get worker_key) s)
    mo.Merge.mo_requeue

let add_state eng st =
  (* Cap rejections are counted by the frontier; a rejected state
     carrying open merge tokens must still release them, or its siblings
     would park forever waiting for a carrier that never runs. *)
  if not (Frontier.push eng.frontier ~worker:(Domain.DLS.get worker_key) st)
  then handle_merge_outcome eng (Merge.note_dead eng.pool st)

(* --- multi-process support --------------------------------------------- *)

let queue_length eng = Frontier.size eng.frontier

(* Pull up to [max] queued states out of the frontier for shipping to
   another process. Only tag-free states are exportable: a state carrying
   open merge tokens references this process's token pool, and shipping
   it would strand its parked siblings. Only meaningful at quiescent
   points (between phases, or a [jobs = 1] pick boundary). *)
let export_states eng ~max =
  let taken = ref 0 in
  Frontier.remove eng.frontier (fun st ->
      if !taken < max && st.St.tags = [] then begin
        incr taken;
        true
      end
      else false)

(* Admit a state revived from another process's shipment. Shipped states
   were already admitted by the sender's frontier, so the cap does not
   apply (dropping one here would silently lose a live path). Imported
   ids keep labeling their lineage, but the local allocator must move
   past them so fresh forks never collide. *)
let inject_state eng st =
  let rec bump () =
    let cur = Atomic.get eng.next_id in
    if st.St.id > cur && not (Atomic.compare_and_set eng.next_id cur st.St.id)
    then bump ()
  in
  bump ();
  Frontier.requeue eng.frontier ~worker:(Domain.DLS.get worker_key) st

(* Mark a block covered on behalf of another process (report merging).
   Claims the first-cover flag without firing [on_new_block]; returns
   whether this call newly claimed it, so the merge layer can do its own
   coverage accounting exactly once per block. *)
let note_covered_external eng pc =
  match Hashtbl.find_opt eng.block_index pc with
  | None -> false
  | Some idx ->
      let flag = eng.covered.(idx) in
      Atomic.get flag = 0 && Atomic.compare_and_set flag 0 1

(* --- expression helpers ------------------------------------------------ *)

let concretize eng st e reason =
  let e = Simplify.simplify e in
  match Expr.to_const e with
  | Some v -> v
  | None -> (
      (* Solver-bound anyway: prune under the path condition first, so
         ites lifted by a merge collapse once their guard has been
         re-decided by a later branch (often back to a constant). *)
      let e = Simplify.prune ~under:st.St.constraints e in
      match Expr.to_const e with
      | Some v -> v
      | None ->
      let answer =
        if eng.cfg.solver_incr then
          (* Only the relevant slice (plus audited replay pins) can
             influence the value — see {!Ddt_solver.Incr.concretize}. *)
          Incr.concretize st.St.constraints ~pinned:st.St.pinned e
        else Solver.concretize st.St.constraints e
      in
      match answer with
      | None -> raise (Discard_state "infeasible path condition")
      | Some v ->
          St.add_constraint st
            (Expr.cmp Expr.Eq e (Expr.const (Expr.width_of e) v));
          St.record st
            (Event.E_concretize { pc = st.St.pc; expr = e; value = v; reason });
          v)

(* The state's incremental session: reuse when this domain built it,
   rebuild otherwise (a stolen state's old session may be in concurrent
   use by sibling states back on the domain that built it). *)
let session_for st =
  match st.St.session with
  | Some s when Incr.owned s -> s
  | _ ->
      let s = Incr.create () in
      st.St.session <- Some s;
      s

let feasible eng st extra =
  if eng.cfg.solver_incr then
    Incr.feasible (session_for st) st.St.constraints extra
  else Solver.is_feasible (extra :: st.St.constraints)

(* Split on a boolean condition. Returns the live successors, each paired
   with the condition's value on that path. The input state is reused for
   one successor when feasible; fresh children are NOT yet queued. *)
let fork_bool eng st cond =
  let cond = Simplify.simplify cond in
  match Expr.to_const cond with
  | Some v -> [ (st, v = 1) ]
  | None ->
      let not_cond = Expr.not_ cond in
      let f_true = feasible eng st cond in
      let f_false = feasible eng st not_cond in
      if f_true && f_false then begin
        let child = fork_state eng st in
        St.add_constraint child cond;
        St.add_constraint st not_cond;
        [ (child, true); (st, false) ]
      end
      else if f_true then begin
        St.add_constraint st cond;
        [ (st, true) ]
      end
      else if f_false then begin
        St.add_constraint st not_cond;
        [ (st, false) ]
      end
      else []

(* In replay mode, pin a freshly created symbolic value to the recorded
   concrete value when the head of the state's input queue matches. *)
let replay_pin eng st name e =
  match eng.replay with
  | None -> ()
  | Some _ -> (
      match st.St.replay_inputs with
      | (n, v) :: rest when n = name ->
          st.St.replay_inputs <- rest;
          let pin = Expr.cmp Expr.Eq e (Expr.const (Expr.width_of e) v) in
          st.St.pinned <- pin :: st.St.pinned;
          St.add_constraint st pin
      | _ -> ())

let fresh_symbolic eng st ~name ~origin width =
  let var = Expr.fresh_var ~name width in
  st.St.sym_inputs <- (var, origin) :: st.St.sym_inputs;
  St.record st (Event.E_sym_create { name; origin; var });
  let e = Expr.var var in
  replay_pin eng st name e;
  e

let write_symbolic_bytes eng st ~addr ~len ~origin =
  for i = 0 to len - 1 do
    let e =
      fresh_symbolic eng st ~name:(Printf.sprintf "%s[%d]" origin i) ~origin
        Expr.W8
    in
    Symmem.write_u8 st.St.mem (addr + i) e
  done

(* --- memory access with checking --------------------------------------- *)

let checked_access eng st ~pc ~write ~addr_expr ~width =
  let constraints_before = st.St.constraints in
  let conc = concretize eng st addr_expr "memory address" in
  let sp = concretize eng st (St.reg_get st Isa.sp) "stack pointer" in
  eng.on_mem_access
    { ma_state = st; ma_pc = pc; ma_write = write; ma_addr = addr_expr;
      ma_conc = conc; ma_width = width; ma_constraints = constraints_before;
      ma_sp = sp };
  if conc < Layout.null_guard then
    raise
      (Vm_crash
         ("DRIVER_FAULT",
          Printf.sprintf "null pointer dereference at 0x%x (pc 0x%x)" conc pc));
  conc

(* --- the machine interface for kernel calls ---------------------------- *)

let make_mach eng st =
  let conc e reason = concretize eng st e reason in
  let sp_now () = conc (St.reg_get st Isa.sp) "stack pointer" in
  {
    Mach.arg =
      (fun i -> conc (Symmem.read_u32 st.St.mem (sp_now () + (4 * i))) "kcall argument");
    arg_expr = (fun i -> Symmem.read_u32 st.St.mem (sp_now () + (4 * i)));
    set_ret = (fun v -> St.reg_set st 0 (Expr.word v));
    get_ret = (fun () -> conc (St.reg_get st 0) "return register");
    set_ret_expr = (fun e -> St.reg_set st 0 e);
    read_u32 = (fun a -> conc (Symmem.read_u32 st.St.mem a) "kernel read");
    write_u32 = (fun a v -> Symmem.write_u32 st.St.mem a (Expr.word v));
    read_u8 = (fun a -> conc (Symmem.read_u8 st.St.mem a) "kernel read");
    write_u8 = (fun a v -> Symmem.write_u8 st.St.mem a (Expr.byte v));
    read_expr_u32 = (fun a -> Symmem.read_u32 st.St.mem a);
    write_expr_u32 = (fun a e -> Symmem.write_u32 st.St.mem a e);
    read_expr_u8 = (fun a -> Symmem.read_u8 st.St.mem a);
    write_expr_u8 = (fun a e -> Symmem.write_u8 st.St.mem a e);
    fresh_symbolic =
      (fun name w -> fresh_symbolic eng st ~name ~origin:"annotation" w);
    assume =
      (fun c ->
        if feasible eng st c then St.add_constraint st c
        else raise (Mach.Path_terminated "assumption infeasible"));
    fork = (fun alts -> raise (Fork_alts alts));
    discard = (fun why -> raise (Mach.Path_terminated why));
    cur_pc = (fun () -> st.St.pc);
    kstate = (fun () -> st.St.ks);
  }

(* --- forced driver calls (interrupts, entry points) --------------------- *)

let push_word eng st v =
  let sp = concretize eng st (St.reg_get st Isa.sp) "stack pointer" - 4 in
  if sp < Layout.stack_limit then
    raise (Vm_crash ("DRIVER_FAULT", "stack overflow"));
  St.reg_set st Isa.sp (Expr.word sp);
  Symmem.write_u32 st.St.mem sp v

let setup_forced_call eng st ~addr ~args =
  List.iter (fun a -> push_word eng st a) (List.rev args);
  push_word eng st (Expr.word Layout.return_sentinel);
  st.St.pc <- addr

let save_ctx st =
  { St.s_regs = Array.copy st.St.regs; s_pc = st.St.pc;
    s_int = st.St.int_enabled }

let restore_ctx st (ctx : St.saved_ctx) =
  Array.blit ctx.St.s_regs 0 st.St.regs 0 (Array.length ctx.St.s_regs);
  st.St.pc <- ctx.St.s_pc;
  st.St.int_enabled <- ctx.St.s_int

(* Inject a symbolic interrupt at a kernel/driver boundary crossing: fork a
   successor in which the interrupt fires right now (§3.3, §4.3). *)
let maybe_inject eng st ~site ~phase =
  let site_allowed =
    match eng.replay with
    | None -> true
    | Some script -> List.mem site script.Replay.rs_inject_sites
  in
  (* Interrupt arrival times at the same boundary site form one
     equivalence class (§3.3): deliver once per site, across all paths, to
     keep the state count linear in the number of crossings. The claim is
     check-and-set under the engine lock so two workers reaching the same
     site concurrently inject exactly once. *)
  let claim_site () =
    Mutex.lock eng.glock;
    let fresh = not (Hashtbl.mem eng.injected_sites_global site) in
    if fresh then Hashtbl.replace eng.injected_sites_global site ();
    Mutex.unlock eng.glock;
    fresh
  in
  if
    site_allowed
    && eng.cfg.inject_interrupts
    && Kstate.isr_registered st.St.ks
    && ((not eng.cfg.respect_cli) || st.St.int_enabled)
    && (not (Kstate.in_isr st.St.ks))
    && Kstate.irql st.St.ks < Kstate.device_level
    && st.St.injections < eng.cfg.max_injections
    && (not (List.mem site st.St.injected_sites))
    && claim_site ()
  then begin
    st.St.injected_sites <- site :: st.St.injected_sites;
    let child = fork_state eng st in
    child.St.injections <- child.St.injections + 1;
    match Intr.begin_isr child.St.ks with
    | None -> ()
    | Some (call, saved_irql) ->
        let ctx = save_ctx child in
        child.St.pending <-
          St.Pa_after_isr (ctx, saved_irql) :: child.St.pending;
        St.record child (Event.E_interrupt { site = phase; phase = "isr" });
        setup_forced_call eng child ~addr:call.Intr.call_addr
          ~args:(List.map (fun a -> Expr.word a) call.Intr.call_args);
        add_state eng child
  end

(* --- kcall dispatch ----------------------------------------------------- *)

let kcall_name eng n =
  let imports = eng.img.Image.image.Image.imports in
  if n >= 0 && n < Array.length imports then imports.(n)
  else failwith (Printf.sprintf "kcall index %d out of range" n)

let dispatch_kcall eng st name =
  let run_call target_st =
    let mach = make_mach eng target_st in
    eng.kcall_enter target_st name mach;
    Kapi.call ~pre:eng.annot_pre ~post:eng.annot_post target_st.St.ks mach name;
    eng.kcall_leave target_st name mach
  in
  try
    run_call st;
    St.record st (Event.E_kcall_ret { name });
    `Continue
  with Fork_alts alts -> (
    (* The current path splits into one successor per alternative. Shared
       side effects already happened; per-successor adjustments run via
       the alternative's callback against that successor's machine. The
       first alternative continues in the current state. *)
    let alts =
      (* Replay: resolve the fork to the recorded alternative. *)
      match eng.replay with
      | Some _ -> (
          match st.St.replay_choices with
          | (api, choice) :: rest_choices when api = name -> (
              match List.filter (fun (l, _) -> l = choice) alts with
              | [ alt ] ->
                  st.St.replay_choices <- rest_choices;
                  [ alt ]
              | _ -> alts)
          | _ -> alts)
      | None -> alts
    in
    match alts with
    | [] -> raise (Discard_state "fork with no alternatives")
    | (first_label, first_apply) :: rest ->
        let finish target label apply =
          target.St.choices <- (name, label) :: target.St.choices;
          St.record target (Event.E_choice { label = name; choice = label });
          (try apply (make_mach eng target) with
           | Mach.Path_terminated why ->
               retire eng target (St.Discarded why) ~report:false);
          Kstate.emit target.St.ks (Kstate.Ev_kcall_leave name);
          St.record target (Event.E_kcall_ret { name })
        in
        List.iter
          (fun (label, apply) ->
            let child = fork_state eng st in
            finish child label apply;
            if not (St.terminated child) then add_state eng child)
          rest;
        finish st first_label first_apply;
        if St.terminated st then `Forked else `Continue)

(* --- instruction step --------------------------------------------------- *)

let alu_to_binop = function
  | Isa.Add -> Expr.Add
  | Isa.Sub -> Expr.Sub
  | Isa.Mul -> Expr.Mul
  | Isa.Divu -> Expr.Divu
  | Isa.Remu -> Expr.Remu
  | Isa.And -> Expr.And
  | Isa.Or -> Expr.Or
  | Isa.Xor -> Expr.Xor
  | Isa.Shl -> Expr.Shl
  | Isa.Shru -> Expr.Lshr
  | Isa.Shrs -> Expr.Ashr

let cmp_to_cmpop = function
  | Isa.Eq -> Expr.Eq
  | Isa.Ne -> Expr.Ne
  | Isa.Ltu -> Expr.Ltu
  | Isa.Leu -> Expr.Leu
  | Isa.Lts -> Expr.Lts
  | Isa.Les -> Expr.Les

let fetch eng pc =
  (* Driver text is immutable once loaded, so every aligned in-text pc
     is served from the decode-once [Image.code] array — shared,
     read-only, lock-free, the analog of QEMU's translation cache
     (§4.1.2). Off-text or misaligned pcs (a wild indirect jump) fall
     back to decoding from memory. *)
  let l = eng.img in
  if
    pc >= l.Image.text_start
    && pc < l.Image.text_end
    && (pc - l.Image.text_start) land (Isa.instr_size - 1) = 0
  then
    match l.Image.code.((pc - l.Image.text_start) / Isa.instr_size) with
    | Some i -> i
    | None ->
        raise
          (Vm_crash ("DRIVER_FAULT", Printf.sprintf "invalid opcode at 0x%x" pc))
  else
    let b = Mem.read_bytes eng.base_mem pc Isa.instr_size in
    try Isa.decode b 0
    with Isa.Invalid_opcode _ ->
      raise
        (Vm_crash ("DRIVER_FAULT", Printf.sprintf "invalid opcode at 0x%x" pc))

(* Merge one worker's count shard into the shared table. The only
   [glock] acquisition on the block-counting path, amortized over
   [merge_period] notes. *)
let flush_shard eng wid =
  let sh = eng.shard_counts.(wid) in
  if Hashtbl.length sh > 0 then begin
    Mutex.lock eng.glock;
    Hashtbl.iter
      (fun pc c ->
        let cur = try Hashtbl.find eng.block_counts pc with Not_found -> 0 in
        Hashtbl.replace eng.block_counts pc (cur + c))
      sh;
    Mutex.unlock eng.glock;
    Hashtbl.reset sh
  end;
  eng.shard_pending.(wid) <- 0

(* Count a basic-block execution. Sharded per worker: the count goes to
   the worker's private table (merged periodically), the state's last
   block is a plain field write, and the did-anyone-run-this-before test
   is a lock-free compare-and-set on the block's claim flag — exactly one
   worker wins it, so the plateau clock and the on_new_block hook see
   each block exactly once. At [jobs = 1] the merge period is 1, making
   the sequential engine's observable behavior identical to the old
   globally-locked implementation. *)
let note_block eng st pc =
  match Hashtbl.find_opt eng.block_index pc with
  | None -> ()
  | Some idx ->
      st.St.last_block <- pc;
      let wid = Domain.DLS.get worker_key in
      let sh = eng.shard_counts.(wid) in
      let c = try Hashtbl.find sh pc with Not_found -> 0 in
      Hashtbl.replace sh pc (c + 1);
      eng.shard_pending.(wid) <- eng.shard_pending.(wid) + 1;
      if eng.shard_pending.(wid) >= eng.merge_period then flush_shard eng wid;
      let flag = eng.covered.(idx) in
      if Atomic.get flag = 0 && Atomic.compare_and_set flag 0 1 then begin
        Atomic.set eng.last_new_block_step (Atomic.get eng.total_steps);
        eng.on_new_block st pc
      end

(* Install the guarded block compiler. Lazy (called from [run], not
   [create]) because its context closures capture [note_block]. Per-pc
   tracing disables it: compiled blocks do not emit E_exec events. *)
let ensure_dbt eng =
  if eng.cfg.dbt && (not eng.cfg.record_exec_pcs) && eng.dbt = None then
    let ctx =
      {
        Sdbt.c_note = (fun st pc -> note_block eng st pc);
        c_total_incr = (fun () -> Atomic.incr eng.total_steps);
        c_mem_access =
          (fun st ~pc ~write ~addr ~conc ~width ~sp ->
            eng.on_mem_access
              {
                ma_state = st;
                ma_pc = pc;
                ma_write = write;
                ma_addr = addr;
                ma_conc = conc;
                ma_width = width;
                ma_constraints = st.St.constraints;
                ma_sp = sp;
              });
        c_crash = (fun code msg -> Vm_crash (code, msg));
      }
    in
    eng.dbt <- Some (Sdbt.create ctx eng.img)

(* Handle reaching the return sentinel: either an interrupt continuation
   finishes, or the whole entry-point invocation is complete. *)
let handle_sentinel eng st =
  match st.St.pending with
  | [] ->
      let ret = concretize eng st (St.reg_get st 0) "entry return value" in
      Kstate.end_invocation st.St.ks st.St.entry_name ret;
      St.record st (Event.E_entry_ret { name = st.St.entry_name; ret });
      retire eng st (St.Returned ret) ~report:true
  | St.Pa_after_isr (ctx, saved_irql) :: rest ->
      st.St.pending <- rest;
      (* Does the ISR queue its DPC? Bit 1 of the result decides; explore
         both outcomes when it is symbolic. *)
      let dpc_cond =
        Expr.cmp Expr.Ne
          (Expr.binop Expr.And (St.reg_get st 0) (Expr.word 2))
          (Expr.word 0)
      in
      let successors = fork_bool eng st dpc_cond in
      List.iter
        (fun (s, wants_dpc) ->
          (match
             Intr.after_isr s.St.ks ~saved_irql
               ~isr_ret:(if wants_dpc then 2 else 0)
           with
           | Some call ->
               s.St.pending <-
                 St.Pa_after_dpc (ctx, saved_irql) :: s.St.pending;
               St.record s
                 (Event.E_interrupt { site = "isr-completion"; phase = "dpc" });
               restore_ctx s ctx;
               setup_forced_call eng s ~addr:call.Intr.call_addr
                 ~args:(List.map (fun a -> Expr.word a) call.Intr.call_args)
           | None ->
               Intr.finish s.St.ks ~saved_irql;
               restore_ctx s ctx);
          if s != st then add_state eng s)
        successors;
      if successors = [] then retire eng st (St.Discarded "infeasible") ~report:false
  | St.Pa_after_dpc (ctx, saved_irql) :: rest
  | St.Pa_after_timer (ctx, saved_irql) :: rest ->
      st.St.pending <- rest;
      Intr.finish st.St.ks ~saved_irql;
      restore_ctx st ctx

let step eng st =
  let pc = st.St.pc in
  if pc = Layout.return_sentinel then handle_sentinel eng st
  else begin
    note_block eng st pc;
    if eng.cfg.record_exec_pcs then St.record st (Event.E_exec pc);
    st.St.steps <- st.St.steps + 1;
    Atomic.incr eng.total_steps;
    let instr = fetch eng pc in
    let next = pc + Isa.instr_size in
    let g r = St.reg_get st r in
    let s r e = St.reg_set st r e in
    let record_mem ~write ~addr ~width ~value =
      St.record st (Event.E_mem { pc; write; addr; width; value })
    in
    match instr with
    | Isa.Nop -> st.St.pc <- next
    | Isa.Hlt ->
        raise (Vm_crash ("DRIVER_FAULT", "driver executed HLT"))
    | Isa.Mov (rd, rs) -> s rd (g rs); st.St.pc <- next
    | Isa.Movi (rd, imm) | Isa.Lea (rd, imm) ->
        s rd (Expr.word imm);
        st.St.pc <- next
    | Isa.Alu ((Isa.Divu | Isa.Remu) as op, rd, rs1, rs2) ->
        let divisor = g rs2 in
        let zero_cond = Expr.cmp Expr.Eq divisor (Expr.word 0) in
        let successors = fork_bool eng st zero_cond in
        List.iter
          (fun (sx, is_zero) ->
            if is_zero then
              retire eng sx
                (St.Crashed
                   { c_code = "DRIVER_FAULT"; c_msg = "division by zero";
                     c_pc = pc })
                ~report:true
            else begin
              St.reg_set sx rd
                (Expr.binop (alu_to_binop op) (St.reg_get sx rs1)
                   (St.reg_get sx rs2));
              sx.St.pc <- next;
              if sx != st then add_state eng sx
            end)
          successors;
        if successors = [] then
          retire eng st (St.Discarded "infeasible") ~report:false
    | Isa.Alu (op, rd, rs1, rs2) ->
        s rd (Expr.binop (alu_to_binop op) (g rs1) (g rs2));
        st.St.pc <- next
    | Isa.Alui ((Isa.Divu | Isa.Remu) as op, rd, rs1, imm) ->
        if imm = 0 then
          raise (Vm_crash ("DRIVER_FAULT", "division by zero"))
        else begin
          s rd (Expr.binop (alu_to_binop op) (g rs1) (Expr.word imm));
          st.St.pc <- next
        end
    | Isa.Alui (op, rd, rs1, imm) ->
        s rd (Expr.binop (alu_to_binop op) (g rs1) (Expr.word imm));
        st.St.pc <- next
    | Isa.Cmp (op, rd, rs1, rs2) ->
        s rd (Expr.zext (Expr.cmp (cmp_to_cmpop op) (g rs1) (g rs2)));
        st.St.pc <- next
    | Isa.Cmpi (op, rd, rs1, imm) ->
        s rd (Expr.zext (Expr.cmp (cmp_to_cmpop op) (g rs1) (Expr.word imm)));
        st.St.pc <- next
    | Isa.Ldw (rd, rs1, off) ->
        let addr_expr = Expr.binop Expr.Add (g rs1) (Expr.word off) in
        let a = checked_access eng st ~pc ~write:false ~addr_expr ~width:4 in
        let v = Symmem.read_u32 st.St.mem a in
        record_mem ~write:false ~addr:addr_expr ~width:4 ~value:v;
        s rd v;
        st.St.pc <- next
    | Isa.Ldb (rd, rs1, off) ->
        let addr_expr = Expr.binop Expr.Add (g rs1) (Expr.word off) in
        let a = checked_access eng st ~pc ~write:false ~addr_expr ~width:1 in
        let v = Symmem.read_u8 st.St.mem a in
        record_mem ~write:false ~addr:addr_expr ~width:1 ~value:v;
        s rd (Expr.zext v);
        st.St.pc <- next
    | Isa.Stw (rs1, off, rs2) ->
        let addr_expr = Expr.binop Expr.Add (g rs1) (Expr.word off) in
        let a = checked_access eng st ~pc ~write:true ~addr_expr ~width:4 in
        record_mem ~write:true ~addr:addr_expr ~width:4 ~value:(g rs2);
        Symmem.write_u32 st.St.mem a (g rs2);
        st.St.pc <- next
    | Isa.Stb (rs1, off, rs2) ->
        let addr_expr = Expr.binop Expr.Add (g rs1) (Expr.word off) in
        let a = checked_access eng st ~pc ~write:true ~addr_expr ~width:1 in
        let byte_v = Expr.extract (g rs2) 0 in
        record_mem ~write:true ~addr:addr_expr ~width:1 ~value:byte_v;
        Symmem.write_u8 st.St.mem a byte_v;
        st.St.pc <- next
    | Isa.Push rs ->
        push_word eng st (g rs);
        st.St.pc <- next
    | Isa.Pop rd ->
        let sp = concretize eng st (g Isa.sp) "stack pointer" in
        s rd (Symmem.read_u32 st.St.mem sp);
        s Isa.sp (Expr.word (sp + 4));
        st.St.pc <- next
    | Isa.Jmp imm -> st.St.pc <- imm
    | Isa.Jz (rs, target) | Isa.Jnz (rs, target) ->
        let taken_cond =
          match instr with
          | Isa.Jz _ -> Expr.cmp Expr.Eq (g rs) (Expr.word 0)
          | _ -> Expr.cmp Expr.Ne (g rs) (Expr.word 0)
        in
        let was_symbolic =
          Expr.to_const (Simplify.simplify taken_cond) = None
        in
        (* Captured before [fork_bool] conses either arm's constraint:
           the physical sync point suffix extraction walks back to when
           the arms are fused at the merge point. *)
        let cs_before = st.St.constraints in
        let successors = fork_bool eng st taken_cond in
        let forked = List.length successors > 1 in
        (* Two feasible arms that reconverge: open a merge token before
           either arm is published to the frontier (tagging a state
           another worker already picked up would race its step loop). *)
        (if forked && eng.cfg.state_merging && eng.replay = None then
           match successors with
           | [ (a, _); (b, _) ] -> (
               match eng.merge_points st.St.last_block with
               | Some mpc when mpc <> pc ->
                   ignore
                     (Merge.open_token eng.pool ~branch_pc:pc ~merge_pc:mpc
                        ~base:cs_before a b)
               | _ -> ())
           | _ -> ());
        List.iter
          (fun (sx, taken) ->
            St.record sx
              (Event.E_branch
                 { pc; taken; forked = forked && was_symbolic;
                   cond = taken_cond });
            sx.St.pc <- (if taken then target else next);
            if sx != st then add_state eng sx)
          successors;
        if successors = [] then
          retire eng st (St.Discarded "infeasible branch") ~report:false
    | Isa.Call target ->
        push_word eng st (Expr.word next);
        st.St.pc <- target
    | Isa.Callr rs ->
        let target = concretize eng st (g rs) "indirect call target" in
        if target < Layout.null_guard then
          raise
            (Vm_crash
               ("DRIVER_FAULT",
                Printf.sprintf "indirect call through bad pointer 0x%x" target));
        push_word eng st (Expr.word next);
        st.St.pc <- target
    | Isa.Ret ->
        let sp = concretize eng st (g Isa.sp) "stack pointer" in
        let ret_addr =
          concretize eng st (Symmem.read_u32 st.St.mem sp) "return address"
        in
        s Isa.sp (Expr.word (sp + 4));
        st.St.pc <- ret_addr
    | Isa.Kcall n ->
        let name = kcall_name eng n in
        St.record st (Event.E_kcall { pc; name });
        (* Symbolic interrupt before the call: the fork resumes at this
           kcall instruction, so the interrupt precedes the kernel call. *)
        maybe_inject eng st ~site:pc ~phase:("before " ^ name);
        st.St.pc <- next;
        (match dispatch_kcall eng st name with
         | `Continue ->
             maybe_inject eng st ~site:next ~phase:("after " ^ name)
         | `Forked ->
             retire eng st (St.Discarded "replaced by fork successors")
               ~report:false)
    | Isa.Cli ->
        st.St.int_enabled <- false;
        st.St.pc <- next
    | Isa.Sti ->
        st.St.int_enabled <- true;
        st.St.pc <- next
  end

(* --- driving ------------------------------------------------------------ *)

let fork_of eng st = fork_state eng st

let start_timer_fire eng st ~timer_addr =
  match Intr.begin_timer st.St.ks timer_addr with
  | None -> ()
  | Some (call, saved_irql) ->
      st.St.entry_name <- "timer";
      Kstate.begin_invocation st.St.ks "timer";
      let ctx = save_ctx st in
      st.St.pending <- St.Pa_after_timer (ctx, saved_irql) :: st.St.pending;
      St.record st (Event.E_interrupt { site = "timer expiry"; phase = "timer" });
      setup_forced_call eng st ~addr:call.Intr.call_addr
        ~args:(List.map (fun a -> Expr.word a) call.Intr.call_args);
      add_state eng st

(* Fire one interrupt at top level (between invocations) — the timing a
   concrete stress tool exercises; it never lands inside the windows that
   symbolic injection reaches. *)
let start_interrupt_fire eng st =
  match Intr.begin_isr st.St.ks with
  | None -> ()
  | Some (call, saved_irql) ->
      st.St.entry_name <- "interrupt";
      Kstate.begin_invocation st.St.ks "interrupt";
      let ctx = save_ctx st in
      st.St.pending <- St.Pa_after_isr (ctx, saved_irql) :: st.St.pending;
      St.record st (Event.E_interrupt { site = "top-level"; phase = "isr" });
      setup_forced_call eng st ~addr:call.Intr.call_addr
        ~args:(List.map (fun a -> Expr.word a) call.Intr.call_args);
      add_state eng st

let start_invocation eng st ~name ~addr ~args =
  st.St.entry_name <- name;
  (* The symbolic-interrupt budget is per invocation. *)
  st.St.injections <- 0;
  st.St.pc <- addr;
  St.reg_set st Isa.sp (Expr.word Layout.stack_top);
  Kstate.begin_invocation st.St.ks name;
  St.record st (Event.E_entry { name; addr });
  (* Push symbolic or concrete args, then the sentinel. *)
  List.iter (fun a -> push_word eng st a) (List.rev args);
  push_word eng st (Expr.word Layout.return_sentinel);
  maybe_inject eng st ~site:addr ~phase:("entry " ^ name);
  add_state eng st

let step_quantum eng st =
  let budget = ref eng.cfg.quantum in
  let wid = Domain.DLS.get worker_key in
  (* Snapshot this domain's solver exhaustion counters so a budget that
     runs dry during this quantum can be attributed to [st]. *)
  let exh0 = if eng.cfg.guard then Solver.domain_exhaustions () else 0 in
  let unrec0 = if eng.cfg.guard then Solver.domain_unrecovered () else 0 in
  (try
     while
       (not (St.terminated st))
       && !budget > 0
       && st.St.steps < eng.cfg.max_steps_per_state
     do
       (* Merge arrival: the state stands at its innermost token's
          reconvergence pc — park it in the pool (possibly folding the
          token right now) and stop executing it; the fold's survivor
          comes back through the frontier. *)
       (match st.St.tags with
        | { St.mt_pc; _ } :: _ when mt_pc = st.St.pc -> (
            match Merge.on_arrival eng.pool st with
            | Merge.A_continue -> ()
            | Merge.A_parked mo ->
                handle_merge_outcome eng mo;
                raise Parked)
        | _ -> ());
       (* Compiled-block gate: when the pc heads a hot superblock whose
          whole length fits in both the quantum budget and the per-state
          step allowance, run it compiled; scheduling boundaries stay
          step-identical with the interpreter either way. Carriers of
          open merge tokens stay on the interpreter: a superblock runs
          through many pcs without the arrival check above. *)
       match eng.dbt with
       | Some d when st.St.tags = [] -> (
           match
             Sdbt.try_run d st ~budget:!budget
               ~steps_left:(eng.cfg.max_steps_per_state - st.St.steps)
           with
           | 0 ->
               decr budget;
               step eng st
           | n -> budget := !budget - n)
       | _ ->
           decr budget;
           step eng st
     done;
     if St.terminated st then ()
     else if st.St.steps >= eng.cfg.max_steps_per_state then
       retire eng st St.Exhausted ~report:true
     else begin
       (* Publish this quantum's counts before the state is re-keyed so
          its own blocks price into the priority. *)
       flush_shard eng wid;
       Frontier.requeue eng.frontier ~worker:wid st
     end
   with
   | Parked ->
       (* The state now belongs to the merge pool: neither requeued nor
          retired here. The worker's task_done accounting is untouched —
          any fold triggered by the park already requeued its survivors
          while this in-flight slot was still held. *)
       ()
   | Discard_state why | Mach.Path_terminated why ->
       retire eng st (St.Discarded why) ~report:false
   | Vm_crash (code, msg) ->
       retire eng st
         (St.Crashed { c_code = code; c_msg = msg; c_pc = st.St.pc })
         ~report:true
   | Bugcheck.Bugcheck (code, msg) ->
       retire eng st
         (St.Crashed
            { c_code = Bugcheck.string_of_code code; c_msg = msg;
              c_pc = st.St.pc })
         ~report:true
   | exn when eng.cfg.guard && Guard.absorbable exn ->
       (* The fault boundary: an interpreter fault, stack overflow,
          out-of-memory, or any other exception escaping this state's
          execution quarantines the state — replayable script and all —
          instead of unwinding the worker and killing the session. *)
       Guard.record eng.guard_st
         {
           Guard.inc_kind = Guard.State_fault;
           inc_worker = wid;
           inc_state_id = st.St.id;
           inc_entry = st.St.entry_name;
           inc_pc = st.St.pc;
           inc_message = Guard.describe exn;
           inc_replay = safe_replay_script st;
         };
       retire eng st
         (St.Discarded ("quarantined: " ^ Guard.describe exn))
         ~report:false);
  if eng.cfg.guard then begin
    let d_exh = Solver.domain_exhaustions () - exh0 in
    if d_exh > 0 && Guard.claim_solver_flag eng.guard_st st.St.id then begin
      let d_unrec = Solver.domain_unrecovered () - unrec0 in
      Guard.record eng.guard_st
        {
          Guard.inc_kind = Guard.Solver_exhaustion;
          inc_worker = wid;
          inc_state_id = st.St.id;
          inc_entry = st.St.entry_name;
          inc_pc = st.St.pc;
          inc_message =
            Printf.sprintf
              "%d solver budget exhaustion(s) during quantum (%d recovered \
               by escalated retry, %d left Unknown)"
              d_exh (d_exh - d_unrec) d_unrec;
          inc_replay = safe_replay_script st;
        }
    end
  end;
  if eng.shard_pending.(wid) > 0 then flush_shard eng wid

type stop_reason = Stop_budget | Stop_plateau

(* Graceful degradation under resource pressure: deterministically pick
   the [n] least-promising queued states (worst scheduler priority, then
   largest copy-on-write footprint, then highest id — youngest fork),
   concretize each one's pending symbolic inputs to its cached model so
   the discard reason records a concrete witness of the retired path,
   and retire them — well before the hard [max_states] cap would start
   dropping fresh forks silently. *)
let soft_retire eng n =
  let cands = ref [] in
  Frontier.iter eng.frontier (fun s ->
      cands :=
        (eng.priority_fn s, Symmem.live_words s.St.mem, s.St.id) :: !cands);
  let ranked =
    List.sort
      (fun (p1, w1, i1) (p2, w2, i2) ->
        match compare p2 p1 with
        | 0 -> ( match compare w2 w1 with 0 -> compare i2 i1 | c -> c)
        | c -> c)
      !cands
  in
  let vset = Hashtbl.create 8 in
  List.iteri
    (fun i (_, _, id) -> if i < n then Hashtbl.replace vset id ())
    ranked;
  let removed =
    Frontier.remove eng.frontier (fun s -> Hashtbl.mem vset s.St.id)
  in
  (* The whole batch shares one incremental session: victims are forks
     of each other, so their constraint lists share long physical tails
     and each witness after the first is a few-frame sync plus (usually)
     a cached-model hit — instead of a from-scratch solve per victim. *)
  let sess = if eng.cfg.solver_incr then Some (Incr.create ()) else None in
  List.iter
    (fun s ->
      let model =
        match sess with
        | Some sess -> Incr.witness sess s.St.constraints
        | None -> (
            match Solver.check s.St.constraints with
            | Solver.Sat m -> Some m
            | Solver.Unsat | Solver.Unknown -> None)
      in
      let witness =
        match model with
        | Some m ->
            s.St.sym_inputs
            |> List.filteri (fun i _ -> i < 4)
            |> List.map (fun ((v : Expr.var), _) ->
                   Printf.sprintf "%s=%d" v.Expr.name (m v))
            |> String.concat ","
        | None -> "-"
      in
      Atomic.incr eng.soft_retired;
      retire eng s
        (St.Discarded
           (Printf.sprintf "resource governor: soft cap (witness %s)" witness))
        ~report:false)
    removed

(* Sample the copy-on-write footprint for the E5 accounting, and show the
   resource governor (when installed) the same reading — one frontier
   sweep serves both, so governance adds nothing to the hot path. *)
let sample_live eng st =
  let live = ref (Symmem.live_words st.St.mem) in
  let depth = ref (Symmem.chain_depth st.St.mem) in
  Frontier.iter eng.frontier (fun s ->
      live := !live + Symmem.live_words s.St.mem;
      depth := max !depth (Symmem.chain_depth s.St.mem));
  amax eng.peak_live_words !live;
  match eng.governor with
  | None -> ()
  | Some gov ->
      let words = !live + Guard.pressure_boost eng.cfg.chaos in
      let n =
        gov
          {
            pr_live_states = Frontier.size eng.frontier;
            pr_cow_depth = !depth;
            pr_live_words = words;
          }
      in
      if n > 0 then soft_retire eng n

(* One explorer. Workers pull from their own deque, steal when it runs
   dry, and park (briefly sleeping, so co-scheduled domains on few cores
   get the CPU) until the frontier is quiescent — the idle-worker
   barrier: [Frontier.quiescent] can only hold once no state is queued or
   in motion anywhere, at which point every worker agrees exploration is
   complete. Any worker noticing the budget or plateau limit publishes
   the stop reason; the others exit at their next pick. *)
(* A worker-level fault was already quarantined against its in-flight
   state; the wrapper tells the supervisor not to record it twice. *)
exception Quarantined of exn

let worker_loop eng ~stop ~start ~max_total_steps ~plateau_steps ~alive wid =
  (* Dead-worker reaper: an idle worker that notices a permanently-dead
     sibling (supervisor gave up, or the domain body unwound) with work
     still queued re-homes that queue onto itself, so no path is stranded
     until [run]'s final drain. [alive] flips false only on domain exit;
     a merely-restarting worker is still alive. *)
  let reap () =
    Array.iteri
      (fun w a ->
        if
          w <> wid
          && (not (Atomic.get a))
          && Frontier.queue_length eng.frontier ~worker:w > 0
        then begin
          let moved = Frontier.rehome eng.frontier ~from_:w ~to_:wid in
          if moved > 0 then
            ignore (Atomic.fetch_and_add eng.rehomed moved)
        end)
      alive
  in
  let rec loop () =
    if Atomic.get stop = None then
      if Atomic.get eng.total_steps - start >= max_total_steps then
        ignore (Atomic.compare_and_set stop None (Some Stop_budget))
      else if
        Atomic.get eng.total_steps - Atomic.get eng.last_new_block_step
        >= plateau_steps
      then ignore (Atomic.compare_and_set stop None (Some Stop_plateau))
      else begin
        (* Pick boundary: with one worker nothing is inflight here, so
           this is a quiescent point — the only mid-run moment a
           checkpoint can capture every live path. *)
        (match eng.checkpoint_hook with
         | Some f when wid = 0 && eng.cfg.jobs <= 1 -> f ()
         | _ -> ());
        match Frontier.pick eng.frontier ~worker:wid with
        | Some st ->
            let picks = Atomic.fetch_and_add eng.picks 1 + 1 in
            (try
               Guard.maybe_crash eng.guard_st eng.cfg.chaos;
               if picks land 63 = 0 then sample_live eng st;
               step_quantum eng st
             with exn when eng.cfg.guard ->
               (* A fault that escaped the state-level boundary hit the
                  worker itself ([step_quantum] absorbs the state's own
                  faults), so [st] was not mid-execution and is intact:
                  quarantine a replayable snapshot, requeue the state so
                  no path is lost, fix the inflight accounting, and hand
                  the fault to the supervisor below. *)
               Frontier.task_done eng.frontier;
               Guard.record eng.guard_st
                 {
                   Guard.inc_kind = Guard.Worker_crash;
                   inc_worker = wid;
                   inc_state_id = st.St.id;
                   inc_entry = st.St.entry_name;
                   inc_pc = st.St.pc;
                   inc_message = Guard.describe exn;
                   inc_replay = safe_replay_script st;
                 };
               Frontier.requeue eng.frontier ~worker:wid st;
               raise (Quarantined exn));
            Frontier.task_done eng.frontier;
            loop ()
        | None ->
            if not (Frontier.quiescent eng.frontier) then begin
              reap ();
              Unix.sleepf 2e-4;
              loop ()
            end
      end
  in
  (* Worker supervision: a crashed loop is relaunched on a fresh stack
     after a short exponential backoff. The restart budget only burns
     when the worker wedges — crashing again before completing a single
     pick; any progress resets the counter, so sporadic faults never
     exhaust it. A worker that gives up leaves the frontier to the
     surviving workers (and [run]'s final drain). *)
  let rec supervised attempts last_picks =
    Domain.DLS.set worker_key wid;
    try loop () with
    | Stdlib.Exit -> ()
    | exn when eng.cfg.guard ->
        (match exn with
        | Quarantined _ -> ()
        | exn ->
            (* Fault outside any pick (scheduler, sampler): no state to
               attribute, but the crash itself is still an incident. *)
            Guard.record eng.guard_st
              {
                Guard.inc_kind = Guard.Worker_crash;
                inc_worker = wid;
                inc_state_id = 0;
                inc_entry = "";
                inc_pc = 0;
                inc_message = Guard.describe exn;
                inc_replay =
                  { Replay.rs_inputs = []; rs_choices = [];
                    rs_inject_sites = []; rs_entry = "" };
              });
        let picks_now = Atomic.get eng.picks in
        let attempts = if picks_now > last_picks then 0 else attempts in
        if attempts < eng.cfg.max_worker_restarts then begin
          Guard.note_restart eng.guard_st;
          Guard.backoff attempts;
          supervised (attempts + 1) picks_now
        end
  in
  if eng.cfg.guard then supervised 0 (Atomic.get eng.picks)
  else begin
    Domain.DLS.set worker_key wid;
    loop ()
  end

(* Drain the frontier to empty through merge folds: retiring a token
   carrier can fold its token and requeue the fold's survivors, so a
   single [drain_all] pass is not enough. Once the frontier is truly
   empty, any state still parked lost every sibling to caps or crashes
   without a fold firing — hand those to [f] as well. *)
let drain_retire eng f =
  let rec go () =
    match Frontier.drain_all eng.frontier with
    | _ :: _ as batch ->
        List.iter f batch;
        go ()
    | [] -> (
        match Merge.drain_parked eng.pool with
        | [] -> ()
        | parked ->
            List.iter f parked;
            go ())
  in
  go ()

let run eng ?(max_total_steps = 20_000_000) ?(plateau_steps = 150_000)
    ?start_steps () =
  ensure_dbt eng;
  let start =
    match start_steps with
    | Some s ->
        (* Resuming a checkpointed run: the budget baseline is the
           *original* run's entry point, and [last_new_block_step] was
           restored from the checkpoint — clobbering it would restart
           the plateau clock and diverge from the uninterrupted run. *)
        s
    | None ->
        let s = Atomic.get eng.total_steps in
        Atomic.set eng.last_new_block_step s;
        s
  in
  eng.run_start_steps <- start;
  let stop : stop_reason option Atomic.t = Atomic.make None in
  let jobs = max 1 eng.cfg.jobs in
  let alive = Array.init jobs (fun _ -> Atomic.make true) in
  let worker wid =
    Fun.protect
      ~finally:(fun () -> Atomic.set alive.(wid) false)
      (fun () ->
        worker_loop eng ~stop ~start ~max_total_steps ~plateau_steps ~alive
          wid)
  in
  if jobs = 1 then worker 0
  else begin
    let doms =
      List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
    in
    worker 0;
    (* Under the guard the supervisor absorbs every fault, so these joins
       cannot re-raise; the belt-and-suspenders handler still prevents a
       dead domain from taking the session down through the join. *)
    List.iter
      (fun d ->
        try Domain.join d
        with exn when eng.cfg.guard ->
          Guard.record eng.guard_st
            {
              Guard.inc_kind = Guard.Worker_crash;
              inc_worker = -1;
              inc_state_id = 0;
              inc_entry = "";
              inc_pc = 0;
              inc_message = "worker domain died: " ^ Guard.describe exn;
              inc_replay =
                { Replay.rs_inputs = []; rs_choices = [];
                  rs_inject_sites = []; rs_entry = "" };
            })
      doms;
    (* The caller's domain goes back to being worker 0 for the seeding of
       the next phase. *)
    Domain.DLS.set worker_key 0
  end;
  match Atomic.get stop with
  | None ->
      (* Every worker exhausted its restart budget with work remaining —
         only reachable under the guard after repeated wedges. Drain the
         leftovers quietly so the session still terminates cleanly and
         reports what was explored. *)
      if eng.cfg.guard && not (Frontier.quiescent eng.frontier) then
        drain_retire eng (fun st ->
            retire eng st
              (St.Discarded "workers exhausted restart budget")
              ~report:false)
      else
        (* Quiescent frontier can still leave parked states behind when
           every surviving sibling of a token was quarantined without
           reaching the pool; release them so no path is silently lost. *)
        drain_retire eng (fun st ->
            retire eng st (St.Discarded "merge token abandoned") ~report:false)
  | Some Stop_budget ->
      (* Session budget exhausted: the states left on the frontier were
         truncated by the *global* step budget, not by their own step
         cap — reporting them as hangs would make the bug report depend
         on frontier size (and so diverge between merged and unmerged
         exploration of the same driver). Genuine hangs are retired as
         [Exhausted] by the per-state cap above. *)
      drain_retire eng (fun st ->
          retire eng st (St.Discarded "session step budget exhausted")
            ~report:false)
  | Some Stop_plateau ->
      (* The paper's stopping rule: run until no new basic blocks are
         discovered for some amount of time (§5.2). Remaining states are
         redundant path siblings; drop them quietly. *)
      drain_retire eng (fun st ->
          retire eng st (St.Discarded "coverage plateau") ~report:false)

let execution_tree eng =
  Mutex.lock eng.glock;
  let lineage = eng.lineage in
  Mutex.unlock eng.glock;
  Ddt_trace.Tree.build lineage

(* A crash-dump of a state: concretized registers plus the pages its
   copy-on-write store touched, valued under the path condition's model
   (§3.5: "each execution state maintained by DDT is a complete snapshot
   of the system"). *)
let crashdump eng (st : St.t) ~note =
  let model =
    match Solver.check st.St.constraints with
    | Solver.Sat m -> m
    | Solver.Unsat | Solver.Unknown -> fun _ -> 0
  in
  let value e =
    let e = Simplify.simplify e in
    match Expr.to_const e with Some v -> v | None -> Expr.eval model e
  in
  let regs = Array.map value st.St.regs in
  (* Reconstruct the touched pages. *)
  let pages = Hashtbl.create 8 in
  let page_of addr = addr land lnot 0xFFF in
  List.iter
    (fun ev ->
      match ev with
      | Event.E_mem { addr; _ } -> (
          match Expr.to_const (Simplify.simplify addr) with
          | Some a ->
              (* Device pages are not dumpable: every read would mint a
                 fresh symbolic value (the device has no stable state). *)
              if not (Ddt_hw.Symdev.is_device_addr eng.symdev a) then
                Hashtbl.replace pages (page_of a) ()
          | None -> ())
      | _ -> ())
    st.St.trace;
  let dump_pages =
    Hashtbl.fold
      (fun base () acc ->
        let b = Bytes.create 4096 in
        for i = 0 to 4095 do
          Bytes.set_uint8 b i (value (Symmem.read_u8 st.St.mem (base + i)))
        done;
        (base, b) :: acc)
      pages []
  in
  {
    Ddt_trace.Crashdump.d_pc = st.St.pc;
    d_regs = regs;
    d_note = note;
    d_pages = List.sort compare dump_pages;
  }

let finished eng =
  Mutex.lock eng.glock;
  let r = eng.done_states in
  Mutex.unlock eng.glock;
  r

let drain_finished eng =
  Mutex.lock eng.glock;
  let r = eng.done_states in
  eng.done_states <- [];
  Mutex.unlock eng.glock;
  r

type stats = {
  st_total_steps : int;
  st_states_created : int;
  st_states_dropped : int;
  st_blocks_covered : int;
  st_max_cow_depth : int;
  st_live_words : int;
  st_steals : int;
  st_workers : int;
  st_rehomed : int;
  st_incidents : int;
  st_worker_restarts : int;
  st_soft_retired : int;
  st_solver : Solver.stats;
  st_dbt_blocks : int;
  st_dbt_superblocks : int;
  st_dbt_guard_bails : int;
  st_dbt_decompiled : int;
  st_dbt_compiled_steps : int;
  st_merged_states : int;
  st_merge_ites : int;
  st_merge_forks_avoided : int;
  st_merge_refusals : int;
}

let steps_now eng = Atomic.get eng.total_steps
let steals eng = Frontier.steals eng.frontier

let block_coverage eng =
  let n = ref 0 in
  Array.iter (fun f -> if Atomic.get f <> 0 then incr n) eng.covered;
  !n

let covered_blocks eng =
  let acc = ref [] in
  for i = Array.length eng.block_addrs - 1 downto 0 do
    if Atomic.get eng.covered.(i) <> 0 then acc := eng.block_addrs.(i) :: !acc
  done;
  !acc

let stats eng =
  let live = ref 0 in
  Frontier.iter eng.frontier (fun st -> live := !live + Symmem.live_words st.St.mem);
  {
    st_total_steps = Atomic.get eng.total_steps;
    st_states_created = Atomic.get eng.states_created;
    st_states_dropped = Frontier.dropped eng.frontier;
    st_blocks_covered = block_coverage eng;
    st_max_cow_depth = Atomic.get eng.max_cow_depth;
    st_live_words = max !live (Atomic.get eng.peak_live_words);
    st_steals = Frontier.steals eng.frontier;
    st_workers = Frontier.n_workers eng.frontier;
    st_rehomed = Atomic.get eng.rehomed;
    st_incidents = Guard.incident_count eng.guard_st;
    st_worker_restarts = Guard.restarts eng.guard_st;
    st_soft_retired = Atomic.get eng.soft_retired;
    st_solver = Solver.diff_stats (Solver.stats ()) eng.solver_base;
    st_dbt_blocks = (match eng.dbt with Some d -> (Sdbt.stats d).sd_st_compiled | None -> 0);
    st_dbt_superblocks = (match eng.dbt with Some d -> (Sdbt.stats d).sd_st_superblocks | None -> 0);
    st_dbt_guard_bails = (match eng.dbt with Some d -> (Sdbt.stats d).sd_st_bails | None -> 0);
    st_dbt_decompiled = (match eng.dbt with Some d -> (Sdbt.stats d).sd_st_decompiled | None -> 0);
    st_dbt_compiled_steps = (match eng.dbt with Some d -> (Sdbt.stats d).sd_st_compiled_steps | None -> 0);
    st_merged_states = (let m, _, _, _ = Merge.stats eng.pool in m);
    st_merge_ites = (let _, i, _, _ = Merge.stats eng.pool in i);
    st_merge_forks_avoided = (let _, _, f, _ = Merge.stats eng.pool in f);
    st_merge_refusals = (let _, _, _, r = Merge.stats eng.pool in r);
  }

(* --- checkpointing -------------------------------------------------------

   The engine's whole mutable universe as marshal-safe data. Only valid
   at quiescent points (no inflight states): the [jobs = 1] pick
   boundary where [set_checkpoint_hook] fires, or between workload
   phases. The immutable scaffolding — config, loaded image, base
   memory, hooks, the static maps the session installs — is *not* in
   the image; a resume rebuilds it by re-running session setup and then
   pouring the image into the fresh engine.

   Every [St.image] in one engine image must be marshalled in a single
   blob: sibling states share constraint-list tails and copy-on-write
   ancestors physically, the merge pool matches suffixes by [==], and
   Marshal only preserves sharing within one call. *)

type image = {
  ei_queues : ((St.image * int * int) list * int) array;
  (* per worker: scheduler entries (state, priority, seq) and the seq
     high-water mark, exactly as [Sched.dump_entries] reports them *)
  ei_steals : int;
  ei_dropped : int;
  ei_rr : int;
  ei_pool : St.image Merge.dump;
  ei_guard : Guard.dump;
  ei_dbt : Sdbt.dump option;
  ei_done : St.image list;                  (* newest first *)
  ei_lineage : (int * int * string * int) list;
  ei_injected_sites : int list;
  ei_block_counts : (int * int) list;
  ei_covered : int array;
  ei_next_id : int;
  ei_total_steps : int;
  ei_states_created : int;
  ei_max_cow_depth : int;
  ei_peak_live_words : int;
  ei_picks : int;
  ei_last_new_block_step : int;
  ei_run_start : int;
  ei_soft_retired : int;
  ei_rehomed : int;
  ei_symdev_reads : (string * Expr.var) list;
}

let checkpoint_image eng =
  let jobs = Frontier.n_workers eng.frontier in
  (* Fold the per-worker block-count shards into the merged table so
     the image needs only one view (shards restore empty). *)
  for w = 0 to jobs - 1 do
    flush_shard eng w
  done;
  let queues =
    Array.init jobs (fun w ->
        let entries, hseq = Frontier.dump_queue eng.frontier ~worker:w in
        (List.map (fun (st, p, s) -> (St.to_image st, p, s)) entries, hseq))
  in
  Mutex.lock eng.glock;
  let block_counts =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) eng.block_counts []
  in
  let injected =
    Hashtbl.fold (fun k () acc -> k :: acc) eng.injected_sites_global []
  in
  let done_states = eng.done_states in
  let lineage = eng.lineage in
  Mutex.unlock eng.glock;
  {
    ei_queues = queues;
    ei_steals = Frontier.steals eng.frontier;
    ei_dropped = Frontier.dropped eng.frontier;
    ei_rr = Frontier.rr_cursor eng.frontier;
    ei_pool = Merge.dump eng.pool ~f:St.to_image;
    ei_guard = Guard.dump eng.guard_st;
    ei_dbt = Option.map Sdbt.dump eng.dbt;
    ei_done = List.map St.to_image done_states;
    ei_lineage = lineage;
    ei_injected_sites = List.sort compare injected;
    ei_block_counts = List.sort compare block_counts;
    ei_covered = Array.map Atomic.get eng.covered;
    ei_next_id = Atomic.get eng.next_id;
    ei_total_steps = Atomic.get eng.total_steps;
    ei_states_created = Atomic.get eng.states_created;
    ei_max_cow_depth = Atomic.get eng.max_cow_depth;
    ei_peak_live_words = Atomic.get eng.peak_live_words;
    ei_picks = Atomic.get eng.picks;
    ei_last_new_block_step = Atomic.get eng.last_new_block_step;
    ei_run_start = eng.run_start_steps;
    ei_soft_retired = Atomic.get eng.soft_retired;
    ei_rehomed = Atomic.get eng.rehomed;
    ei_symdev_reads = Ddt_hw.Symdev.reads_made eng.symdev;
  }

let revive_image eng imst =
  let st =
    St.of_image ~base:eng.base_mem
      ~symdev:(if eng.cfg.concrete_hardware then None else Some eng.symdev)
      imst
  in
  install_sym_hook eng st;
  st

let restore_image eng im =
  let jobs = Frontier.n_workers eng.frontier in
  let revive = revive_image eng in
  Array.iteri
    (fun w (entries, hseq) ->
      if w < jobs then
        Frontier.restore_queue eng.frontier ~worker:w
          (List.map (fun (imst, p, s) -> (revive imst, p, s)) entries)
          ~hseq)
    im.ei_queues;
  Frontier.restore_counters eng.frontier ~steals:im.ei_steals
    ~dropped:im.ei_dropped ~rr:im.ei_rr;
  Merge.restore eng.pool ~f:revive im.ei_pool;
  Guard.restore eng.guard_st im.ei_guard;
  (match im.ei_dbt with
   | Some d -> (
       ensure_dbt eng;
       match eng.dbt with Some t -> Sdbt.restore t d | None -> ())
   | None -> ());
  Mutex.lock eng.glock;
  eng.done_states <- List.map revive im.ei_done;
  eng.lineage <- im.ei_lineage;
  Hashtbl.reset eng.block_counts;
  List.iter
    (fun (k, v) -> Hashtbl.replace eng.block_counts k v)
    im.ei_block_counts;
  Hashtbl.reset eng.injected_sites_global;
  List.iter
    (fun k -> Hashtbl.replace eng.injected_sites_global k ())
    im.ei_injected_sites;
  Mutex.unlock eng.glock;
  let n = min (Array.length eng.covered) (Array.length im.ei_covered) in
  for i = 0 to n - 1 do
    Atomic.set eng.covered.(i) im.ei_covered.(i)
  done;
  Atomic.set eng.next_id im.ei_next_id;
  Atomic.set eng.total_steps im.ei_total_steps;
  Atomic.set eng.states_created im.ei_states_created;
  Atomic.set eng.max_cow_depth im.ei_max_cow_depth;
  Atomic.set eng.peak_live_words im.ei_peak_live_words;
  Atomic.set eng.picks im.ei_picks;
  Atomic.set eng.last_new_block_step im.ei_last_new_block_step;
  eng.run_start_steps <- im.ei_run_start;
  Atomic.set eng.soft_retired im.ei_soft_retired;
  Atomic.set eng.rehomed im.ei_rehomed;
  Ddt_hw.Symdev.restore_reads eng.symdev im.ei_symdev_reads
