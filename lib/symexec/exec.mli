(** The selective symbolic execution engine (§3.2, §4.1 of the paper).

    Driver code (inside the loaded image's text section) is interpreted
    over symbolic expressions; [Kcall]s transfer to native kernel API
    implementations that run concretely against a {!Ddt_kernel.Mach}
    built for the current state. Conditional branches on symbolic values
    fork complete system states; symbolic hardware reads mint fresh
    variables; symbolic interrupts are injected by forking at
    kernel/driver boundary crossings (§4.3).

    The engine is checker-agnostic: it exposes hooks for memory accesses,
    newly covered basic blocks, and terminated states; [ddt_core.Session]
    wires these to the dynamic checkers. *)

module Expr = Ddt_solver.Expr

type config = {
  max_states : int;            (** cap on simultaneously queued states *)
  max_steps_per_state : int;   (** per-invocation instruction budget *)
  quantum : int;               (** instructions per scheduling slice *)
  max_injections : int;        (** symbolic interrupts per path *)
  inject_interrupts : bool;
  respect_cli : bool;          (** honor the CPU interrupt-enable flag *)
  record_exec_pcs : bool;      (** record every executed pc in the trace *)
  concrete_hardware : bool;
  (** route device reads to the concrete MMIO hooks instead of minting
      symbolic values — used by the stress baseline *)
  solver_accel : bool;
  (** enable the solver acceleration layer (constraint-independence
      slicing + query cache, see [Ddt_solver.Solver.set_accel]) for this
      engine's domain; on by default, off gives the bit-blast-everything
      baseline used in benchmarks *)
  solver_incr : bool;
  (** route feasibility and concretization queries through per-state
      incremental solver sessions ({!Ddt_solver.Incr}): the path
      condition lives in the session as a push/pop stack of bit-blasted
      frames behind activation literals, learned clauses persist across
      queries, and concretization asks only the relevant constraint
      slice (replay pins force-included). On by default; off makes every
      query rebuild from scratch through [Ddt_solver.Solver] — the
      differential oracle the incremental path is validated against. *)
  strategy : Sched.strategy;
  jobs : int;
  (** number of worker domains cooperatively exploring this engine's
      shared frontier ({!Frontier}); 1 (the default) is the classic
      sequential loop with no domain spawns. Workers keep per-domain
      local queues and steal from each other when idle; bug reports stay
      deterministic because keys are path-position-based and the report
      sink dedups by key. *)
  static_guidance : bool;
  (** let the static pre-analysis steer scheduling: when on, the session
      installs a distance-to-uncovered oracle via {!set_distance_fn},
      which keys the {!Sched.Min_dist} strategy and tiebreaks
      [Min_touch]. Off by default; with no oracle installed every
      strategy orders states exactly as before this knob existed. *)
  guard : bool;
  (** fault-tolerant exploration ({!Guard}), on by default: every
      state's step loop runs inside a fault boundary that quarantines
      the state (with its replayable script) when an exception escapes —
      interpreter faults, [Stack_overflow], [Out_of_memory], checker
      exceptions — a crashed worker loop is restarted with backoff, and
      solver budget exhaustions during a state's quantum are recorded as
      incidents ({!incidents}). Off restores the historical fail-fast
      engine, where one escaped exception kills the whole session. *)
  max_worker_restarts : int;
  (** restarts granted to a worker that crashes repeatedly {e without
      completing a pick} (progress resets the counter); a worker that
      gives up leaves the frontier to the survivors. Default 3. *)
  chaos : Guard.chaos option;
  (** deterministic fault injection for the chaos harness ({!Guard.chaos});
      [None] (the default) injects nothing and costs nothing *)
  dbt : bool;
  (** compile hot basic blocks into guarded closures ({!Sdbt}): fully
      concrete stretches execute with no per-instruction
      decode/dispatch and bail to the interpreter at the first symbolic
      operand. Bug reports are identical either way. On by default;
      ignored (treated as off) while [record_exec_pcs] is set, because
      compiled blocks do not emit per-pc trace events. *)
  state_merging : bool;
  (** fuse sibling states back together at branch post-dominators
      ({!Merge}): a symbolic fork whose arms reconverge — per the
      merge-point map the session installs ({!set_merge_points}) — parks
      both arms at the join and lifts their register/memory differences
      to [ite]s over the disjoined path conditions, collapsing the fork
      subtree into one state. Bug reports are identical either way. On
      by default; replay runs never merge (a script follows exactly one
      concrete path), and with no merge-point map installed the knob has
      no effect. *)
}

val default_config : config

type mem_access = {
  ma_state : Symstate.t;
  ma_pc : int;
  ma_write : bool;
  ma_addr : Expr.t;             (** pre-concretization address expression *)
  ma_conc : int;                (** concretized address actually accessed *)
  ma_width : int;
  ma_constraints : Expr.t list; (** path condition before concretization *)
  ma_sp : int;                  (** stack pointer at the access *)
}

type engine

val create :
  ?config:config -> Ddt_dvm.Image.loaded -> Ddt_dvm.Mem.t ->
  Ddt_hw.Symdev.t -> engine

val config : engine -> config
val loaded : engine -> Ddt_dvm.Image.loaded

(** {1 Hooks} *)

val set_on_mem_access : engine -> (mem_access -> unit) -> unit
val set_on_state_done : engine -> (Symstate.t -> unit) -> unit
(** Fired for [Returned], [Crashed] and [Exhausted] states (not for
    discarded or fork-retired ones). *)

val set_on_new_block : engine -> (Symstate.t -> int -> unit) -> unit
(** First global execution of a basic block (absolute address). *)

val set_annotations :
  engine ->
  pre:(string -> Ddt_kernel.Kstate.t -> Ddt_kernel.Mach.t -> unit) ->
  post:(string -> Ddt_kernel.Kstate.t -> Ddt_kernel.Mach.t -> unit) ->
  unit

val set_kcall_hooks :
  engine ->
  enter:(Symstate.t -> string -> Ddt_kernel.Mach.t -> unit) ->
  leave:(Symstate.t -> string -> Ddt_kernel.Mach.t -> unit) ->
  unit
(** Checker taps around each kernel call, with the state in hand — this is
    where guest-OS-level verification tools (the Driver-Verifier analog)
    observe the driver (§3.1.2). *)

val set_replay : engine -> Ddt_trace.Replay.script -> unit
(** Replay mode: pin symbolic inputs, fork decisions and interrupt sites
    to a recorded script, making the engine deterministic along that
    path (§3.5). *)

val set_distance_fn : engine -> (int -> int) -> unit
(** Install the distance-to-uncovered oracle (absolute pc -> ICFG
    distance). Must be monotone non-decreasing per pc over the session
    (covering code only raises distances) — the scheduler's lazy heap
    relies on priorities never shrinking. The default oracle is
    [fun _ -> 0]. *)

val set_merge_points : engine -> (int -> int option) -> unit
(** Install the merge-point map (absolute block leader -> absolute
    reconvergence pc, normally {!Ddt_staticx.Pdom} plus the image base).
    The default maps nothing, so no merge token ever opens even with
    [config.state_merging] on. *)

(** {1 Resilience} *)

type pressure = {
  pr_live_states : int;   (** states currently queued in the frontier *)
  pr_cow_depth : int;     (** deepest copy-on-write chain seen in the sweep *)
  pr_live_words : int;    (** live copy-on-write words across the frontier *)
}
(** The resource picture shown to the governor, sampled every 64 picks
    alongside the existing live-words accounting. *)

val set_governor : engine -> (pressure -> int) -> unit
(** Install a resource governor (policy lives in [Ddt_core.Governor]).
    The callback returns how many queued states the engine should
    concretize-and-retire right now: victims are chosen
    deterministically — worst scheduler priority first, then largest
    footprint, then youngest — their pending inputs are pinned to the
    cached model (the discard reason records the witness), and they are
    retired quietly, well before the hard [max_states] cap would drop
    fresh forks. *)

val incidents : engine -> Guard.incident list
(** Quarantined engine incidents so far, in deterministic order. *)

val worker_restarts : engine -> int
val soft_retired : engine -> int

val rehomed_states : engine -> int
(** States rescued from permanently-dead workers' queues by the reaper
    (an idle worker re-homes a dead sibling's queue onto itself). Also
    surfaced as {!stats}' [st_rehomed]. *)

val note_rehomed : engine -> int -> unit
(** Count [n] externally rescued states (a distributed coordinator's
    re-ships after a worker process died) into [st_rehomed]. *)

val replay_script :
  ?extra:Expr.t list -> ?constraints:Expr.t list -> Symstate.t ->
  Ddt_trace.Replay.script
(** Derive the concrete inputs and system events that drive the driver
    down this state's path, by solving its path condition ([constraints]
    overrides it, e.g. with a pre-concretization snapshot). [extra] adds
    witness constraints (e.g. "the symbolic address actually escapes its
    region") so the evidence triggers the defect, not merely reaches it. *)

(** {1 Driving} *)

val new_root_state : engine -> Ddt_kernel.Kstate.t -> Symstate.t

val start_invocation :
  engine -> Symstate.t -> name:string -> addr:int -> args:Expr.t list -> unit
(** Prepare the state to run one driver entry point (args may be
    symbolic) and queue it. *)

val fork_of : engine -> Symstate.t -> Symstate.t
(** Fork a state for reuse as the base of another invocation (the child's
    status is cleared). *)

val start_timer_fire : engine -> Symstate.t -> timer_addr:int -> unit
(** Fire a due timer on this state as a top-level DPC invocation. *)

val start_interrupt_fire : engine -> Symstate.t -> unit
(** Deliver one interrupt at top level (between invocations) — the safe
    timing a concrete stress tool exercises, as opposed to the
    boundary-crossing injection of symbolic interrupts. *)

val run :
  engine -> ?max_total_steps:int -> ?plateau_steps:int -> ?start_steps:int ->
  unit -> unit
(** Explore until the worklist empties, the step budget is exhausted
    (leftover states are marked [Exhausted]), or no new basic block has
    been covered for [plateau_steps] instructions — the paper's stopping
    rule (§5.2); plateau leftovers are redundant siblings and are dropped
    silently.

    [start_steps] resumes a checkpointed run: it overrides the budget
    baseline (normally [total_steps] at entry) with the original run's,
    and keeps the restored plateau clock instead of resetting it — so
    the resumed run stops exactly where the uninterrupted one would. *)

val execution_tree : engine -> Ddt_trace.Tree.t
(** The tree of every explored path (§3.5): nodes are states, children are
    fork successors, labels carry the terminal status. *)

val crashdump :
  engine -> Symstate.t -> note:string -> Ddt_trace.Crashdump.t
(** Snapshot a state as a crash dump: registers and touched memory pages
    concretized under the path condition's model. *)

val finished : engine -> Symstate.t list
(** Terminated states, in completion order (newest first). *)

val drain_finished : engine -> Symstate.t list
(** Like {!finished} but clears the list — used between workload phases. *)

(** {1 Multi-process exploration support}

    The snapshot-shipping seams used by [Ddt_dist]: a coordinator
    exports queued states as marshal-safe images and ships them to
    worker processes, which inject them into their own engines; covered
    blocks and re-ship counts merge back through the two [note_]
    functions. All of these are only meaningful at quiescent points. *)

val queue_length : engine -> int
(** States currently queued in the frontier — what a worker consults to
    size a steal donation. *)

val export_states : engine -> max:int -> Symstate.t list
(** Remove up to [max] queued states from the frontier for shipping.
    States carrying open merge tokens are never exported (the token pool
    is process-local); they stay queued. *)

val inject_state : engine -> Symstate.t -> unit
(** Enqueue a state revived from another process's shipment (see
    {!revive_image}). Cap-exempt — shipped states were already admitted
    by the sender — and bumps the local id allocator past the imported
    state's id. *)

val note_covered_external : engine -> int -> bool
(** Mark an absolute block address covered on behalf of another process
    (report merging); no [on_new_block] hook fires. Returns [true] iff
    this call newly claimed the block (unknown or already-covered
    addresses return [false]), so the caller can account coverage
    exactly once. *)

(** {1 Helpers for the exerciser and annotations} *)

val write_symbolic_bytes :
  engine -> Symstate.t -> addr:int -> len:int -> origin:string -> unit

val fresh_symbolic :
  engine -> Symstate.t -> name:string -> origin:string -> Expr.width -> Expr.t

val concretize : engine -> Symstate.t -> Expr.t -> string -> int

(** {1 Statistics} *)

type stats = {
  st_total_steps : int;
  st_states_created : int;
  st_states_dropped : int;     (** children not queued due to max_states *)
  st_blocks_covered : int;
  st_max_cow_depth : int;
  st_live_words : int;
  (** peak copy-on-write entries across all queued states (sampled) *)
  st_steals : int;
  (** successful cross-worker frontier steals (0 when [jobs = 1]) *)
  st_workers : int;            (** frontier worker slots ([config.jobs]) *)
  st_rehomed : int;
  (** states rescued from dead workers: in-process queue re-homings by
      the reaper, plus (in distributed runs) coordinator re-ships of a
      killed worker process's in-flight states *)
  st_incidents : int;          (** quarantined engine incidents *)
  st_worker_restarts : int;    (** supervisor worker-loop restarts *)
  st_soft_retired : int;       (** states retired by the resource governor *)
  st_solver : Ddt_solver.Solver.stats;
  (** solver queries/cache-hit/bit-blast counters attributable to this
      engine (snapshot delta since [create]; exact only while no other
      engine runs concurrently — the counters are process-global) *)
  st_dbt_blocks : int;          (** superblocks compiled *)
  st_dbt_superblocks : int;     (** chained constituents beyond heads *)
  st_dbt_guard_bails : int;     (** symbolic-operand guard bailouts *)
  st_dbt_decompiled : int;      (** superblocks de-compiled after chronic bails *)
  st_dbt_compiled_steps : int;  (** instructions executed via compiled blocks *)
  st_merged_states : int;       (** sibling states fused at merge points *)
  st_merge_ites : int;          (** register/memory values lifted to ites *)
  st_merge_forks_avoided : int;
  (** forks performed by states that had absorbed siblings — each would
      have been duplicated once per absorbed sibling without merging *)
  st_merge_refusals : int;      (** fusions refused (context or cost) *)
}

val stats : engine -> stats

val steps_now : engine -> int
(** Instructions executed so far — a cheap accessor for hot hooks that
    only need the step counter, not the whole {!stats} record. *)

val steals : engine -> int
(** Successful cross-worker frontier steals so far. *)
val block_coverage : engine -> int
(** Number of distinct basic blocks executed so far. *)

val covered_blocks : engine -> int list

(** {1 Checkpointing}

    The engine's whole mutable universe — frontier queues with exact
    scheduler keys, merge pool, guard ledger, DBT dispositions,
    finished states, lineage, coverage, counters, the device's reads
    ledger — as one marshal-safe value. Only meaningful at quiescent
    points: the [jobs = 1] pick boundary where the checkpoint hook
    fires, or between workload phases. Config, loaded image, base
    memory and hooks are {e not} captured; a resume re-runs session
    setup on a fresh engine and then pours the image in. The image must
    be marshalled in a single blob so the physical sharing that sibling
    states and merge-token bases rely on survives. *)

type image

val checkpoint_image : engine -> image
(** Non-destructive; per-worker block-count shards are flushed first. *)

val revive_image : engine -> Symstate.image -> Symstate.t
(** Rebuild one session-owned state (e.g. a workload-phase base) over
    this engine's base memory and device, with the engine's sym-read
    hook installed. *)

val restore_image : engine -> image -> unit
(** Pour a checkpoint into a freshly created engine for the same image
    and configuration. States get live memories over the engine's base
    image and device, and fresh sym-read hooks; incremental solver
    sessions rebuild lazily. *)

val set_checkpoint_hook : engine -> (unit -> unit) -> unit
(** Install a callback invoked by worker 0 at every pick boundary while
    [config.jobs = 1] (the only mid-run quiescent points). The callback
    owns its cadence. Never fired with [jobs > 1] — multicore runs
    checkpoint between phases only. *)

val run_start : engine -> int
(** The running (or last) [run]'s budget baseline — [total_steps] at
    its entry — for checkpoints ({!run}'s [start_steps]). *)
