(** Durable single-state snapshots.

    Serializes one symbolic execution state — registers, copy-on-write
    memory chain, path condition, replay pins, kernel context, pending
    interrupt continuations, merge tags — to the versioned, checksummed
    {!Ddt_solver.Blob} format, together with the global
    symbolic-variable counter (restore keeps minting above every id the
    snapshot uses).

    Incremental solver sessions and compiled DBT blocks are caches, not
    state: they are never serialized and are rebuilt from scratch after
    restore. The reader is total — truncated or corrupted snapshots
    come back as [Error _], never exceptions. *)

val snapshot_version : int

val snapshot : Symstate.t -> string
(** The state as checksummed binary. Non-destructive. *)

val restore :
  base:Ddt_dvm.Mem.t ->
  symdev:Ddt_hw.Symdev.t option ->
  string ->
  (Symstate.t, string) result
(** Rebuild a state over the session's base image and device. Bumps the
    global variable counter to at least the snapshot's. The state comes
    back with no solver session and a no-op sym-read hook (the engine
    reinstalls its own). *)

val save : string -> Symstate.t -> (unit, string) result
(** [save path st]: {!snapshot} written atomically (tmp + rename). *)

val load :
  base:Ddt_dvm.Mem.t ->
  symdev:Ddt_hw.Symdev.t option ->
  string ->
  (Symstate.t, string) result
