(** Path-selection strategies over a mutable per-worker queue.

    The default, {!Min_touch}, is the coverage heuristic of the paper
    (§4.3, after EXE): keep a counter per basic block and always pick the
    state whose current block was executed least, which starves states
    stuck in polling loops.

    The queue replaces the old immutable list worklist: the list cost O(n)
    per pick ([Bfs] reversed it, [Min_touch] folded it, [Random_pick] did
    [List.length] + [List.nth]); the queue is a ring-buffer deque for
    DFS/BFS/random and a lazy binary heap for [Min_touch], giving O(1) /
    O(log n) picks. It is also the unit the work-stealing frontier
    ({!Frontier}) steals from: [steal] removes from the end the owner
    values least.

    Queues are NOT thread-safe on their own; {!Frontier} wraps each one in
    a mutex. *)

type strategy =
  | Min_touch
      (** Prefer the state whose next block has been executed least. Ties
          break FIFO toward the state queued earliest. *)
  | Min_dist
      (** Prefer the state statically closest to uncovered code: the
          engine keys the heap on the ICFG distance-to-uncovered of the
          state's current block (from [Ddt_staticx.Distmap], supplied via
          [Exec.set_distance_fn]), with the block's execution count as
          tiebreaker. Falls back to [Min_touch] ordering when no distance
          function is installed. *)
  | Dfs  (** Newest-first: dive to path ends quickly (LIFO). *)
  | Bfs  (** Oldest-first: breadth over the fork tree (FIFO). *)
  | Random_pick of int  (** Deterministic pseudo-random pick from a seed. *)

type queue

val create : strategy -> priority:(Symstate.t -> int) -> queue
(** [create strategy ~priority] makes an empty queue. [priority] is
    consulted by [Min_touch] (it may grow over time for a given state —
    the heap re-evaluates lazily — but must never shrink). *)

val strategy : queue -> strategy
val length : queue -> int
val is_empty : queue -> bool

val push : queue -> Symstate.t -> unit
(** Add a freshly created (forked/seeded) state. *)

val requeue : queue -> Symstate.t -> unit
(** Re-add a state whose execution quantum expired. For [Dfs] it goes to
    the cold end (the state already had its turn); for [Min_touch] it is
    re-keyed with its current priority. *)

val pop : queue -> Symstate.t option
(** Remove the state the strategy values most, if any. *)

val steal : queue -> Symstate.t option
(** Remove a state from the end the owner values {e least} — what a
    work-stealing thief should take: for [Dfs] the oldest state (near the
    fork-tree root, likely a big unexplored subtree), for [Min_touch] a
    heap leaf (guaranteed not the minimum). *)

val iter : queue -> (Symstate.t -> unit) -> unit
(** Visit every queued state in unspecified order (read-only walks, e.g.
    memory-footprint sampling). *)

val drain : queue -> Symstate.t list
(** Remove and return everything (used to retire leftovers on budget or
    plateau stops). *)

val dump_entries : queue -> (Symstate.t * int * int) list * int
(** Checkpoint support: every queued state with its recorded (priority,
    sequence) key, plus the queue's sequence counter. Non-destructive.
    For deques the triples are (state, 0, position) front-to-back and
    the counter is 0. Restoring these exactly (rather than re-pushing
    with fresh keys) is what keeps future equal-priority tie-breaks
    identical to the uninterrupted run. *)

val restore_entries :
  queue -> (Symstate.t * int * int) list -> hseq:int -> unit
(** Refill a freshly created (empty) queue from {!dump_entries} output:
    heap entries keep their recorded keys and [hseq] restores the
    sequence counter; deque entries are appended in list order. *)
