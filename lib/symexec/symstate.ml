module Expr = Ddt_solver.Expr

type crash = {
  c_code : string;
  c_msg : string;
  c_pc : int;
}

type status =
  | Returned of int
  | Crashed of crash
  | Discarded of string
  | Exhausted

type saved_ctx = {
  s_regs : Expr.t array;
  s_pc : int;
  s_int : bool;
}

type post_action =
  | Pa_after_isr of saved_ctx * int
  | Pa_after_dpc of saved_ctx * int
  | Pa_after_timer of saved_ctx * int

(* An open merge token this state is committed to: when the state
   reaches [mt_pc] (the branch's immediate post-dominator), it reports
   to the merge pool instead of executing on. Forking under an open
   token commits both children, so the list is a stack — innermost
   (most recently opened) token first. *)
type merge_tag = {
  mt_token : int;
  mt_pc : int;
}

type t = {
  id : int;
  parent_id : int;
  regs : Expr.t array;
  mutable pc : int;
  mutable int_enabled : bool;
  mem : Symmem.t;
  mutable constraints : Expr.t list;
  ks : Ddt_kernel.Kstate.t;
  mutable pending : post_action list;
  mutable trace : Ddt_trace.Event.t list;
  mutable choices : (string * string) list;
  mutable sym_inputs : (Expr.var * string) list;
  mutable injections : int;
  mutable injected_sites : int list;
  mutable steps : int;
  mutable last_block : int;
  mutable status : status option;
  mutable entry_name : string;
  mutable depth : int;
  mutable replay_inputs : (string * int) list;
  mutable replay_choices : (string * string) list;
  mutable session : Ddt_solver.Incr.session option;
  mutable pinned : Expr.t list;
  mutable tags : merge_tag list;
}

let create ~id ~mem ~ks =
  {
    id;
    parent_id = 0;
    regs = Array.make Ddt_dvm.Isa.num_regs (Expr.word 0);
    pc = 0;
    int_enabled = true;
    mem;
    constraints = [];
    ks;
    pending = [];
    trace = [];
    choices = [];
    sym_inputs = [];
    injections = 0;
    injected_sites = [];
    steps = 0;
    last_block = 0;
    status = None;
    entry_name = "";
    depth = 0;
    replay_inputs = [];
    replay_choices = [];
    session = None;
    pinned = [];
    tags = [];
  }

let fork t ~id =
  {
    t with
    id;
    parent_id = t.id;
    regs = Array.copy t.regs;
    mem = Symmem.fork t.mem;
    ks = Ddt_kernel.Kstate.copy t.ks;
    depth = t.depth + 1;
    status = None;
  }

(* --- snapshot projection -------------------------------------------------- *)
(* Everything but two fields is plain data. [mem] is projected through
   Symmem.image (drops the shared base/device/hook); [session] is
   dropped outright — incremental solver sessions are caches holding
   closures, and the Incr migration path already rebuilds them from
   [constraints] on first use. Crucially the list fields (constraints,
   pending, choices, sym_inputs, pinned, replay_*, injected_sites, tags)
   are carried as-is: forked siblings share their tails physically, the
   merge pool matches states by that sharing ([==]), and Marshal
   preserves it for every image travelling in one blob. *)

type image = {
  im_id : int;
  im_parent_id : int;
  im_regs : Expr.t array;
  im_pc : int;
  im_int_enabled : bool;
  im_mem : Symmem.image;
  im_constraints : Expr.t list;
  im_ks : Ddt_kernel.Kstate.t;
  im_pending : post_action list;
  im_trace : Ddt_trace.Event.t list;
  im_choices : (string * string) list;
  im_sym_inputs : (Expr.var * string) list;
  im_injections : int;
  im_injected_sites : int list;
  im_steps : int;
  im_last_block : int;
  im_status : status option;
  im_entry_name : string;
  im_depth : int;
  im_replay_inputs : (string * int) list;
  im_replay_choices : (string * string) list;
  im_pinned : Expr.t list;
  im_tags : merge_tag list;
}

let to_image t =
  {
    im_id = t.id;
    im_parent_id = t.parent_id;
    im_regs = t.regs;
    im_pc = t.pc;
    im_int_enabled = t.int_enabled;
    im_mem = Symmem.to_image t.mem;
    im_constraints = t.constraints;
    im_ks = t.ks;
    im_pending = t.pending;
    im_trace = t.trace;
    im_choices = t.choices;
    im_sym_inputs = t.sym_inputs;
    im_injections = t.injections;
    im_injected_sites = t.injected_sites;
    im_steps = t.steps;
    im_last_block = t.last_block;
    im_status = t.status;
    im_entry_name = t.entry_name;
    im_depth = t.depth;
    im_replay_inputs = t.replay_inputs;
    im_replay_choices = t.replay_choices;
    im_pinned = t.pinned;
    im_tags = t.tags;
  }

let of_image ~base ~symdev im =
  {
    id = im.im_id;
    parent_id = im.im_parent_id;
    regs = im.im_regs;
    pc = im.im_pc;
    int_enabled = im.im_int_enabled;
    mem = Symmem.of_image ~base ~symdev im.im_mem;
    constraints = im.im_constraints;
    ks = im.im_ks;
    pending = im.im_pending;
    trace = im.im_trace;
    choices = im.im_choices;
    sym_inputs = im.im_sym_inputs;
    injections = im.im_injections;
    injected_sites = im.im_injected_sites;
    steps = im.im_steps;
    last_block = im.im_last_block;
    status = im.im_status;
    entry_name = im.im_entry_name;
    depth = im.im_depth;
    replay_inputs = im.im_replay_inputs;
    replay_choices = im.im_replay_choices;
    session = None;
    pinned = im.im_pinned;
    tags = im.im_tags;
  }

let record t ev = t.trace <- ev :: t.trace
let add_constraint t c = t.constraints <- c :: t.constraints
let reg_get t r = t.regs.(r)
let reg_set t r e = t.regs.(r) <- e
let terminated t = t.status <> None

let pp_status fmt = function
  | Returned r -> Format.fprintf fmt "returned 0x%x" r
  | Crashed c -> Format.fprintf fmt "crashed %s at 0x%x: %s" c.c_code c.c_pc c.c_msg
  | Discarded why -> Format.fprintf fmt "discarded (%s)" why
  | Exhausted -> Format.fprintf fmt "exhausted"
