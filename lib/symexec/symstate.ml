module Expr = Ddt_solver.Expr

type crash = {
  c_code : string;
  c_msg : string;
  c_pc : int;
}

type status =
  | Returned of int
  | Crashed of crash
  | Discarded of string
  | Exhausted

type saved_ctx = {
  s_regs : Expr.t array;
  s_pc : int;
  s_int : bool;
}

type post_action =
  | Pa_after_isr of saved_ctx * int
  | Pa_after_dpc of saved_ctx * int
  | Pa_after_timer of saved_ctx * int

(* An open merge token this state is committed to: when the state
   reaches [mt_pc] (the branch's immediate post-dominator), it reports
   to the merge pool instead of executing on. Forking under an open
   token commits both children, so the list is a stack — innermost
   (most recently opened) token first. *)
type merge_tag = {
  mt_token : int;
  mt_pc : int;
}

type t = {
  id : int;
  parent_id : int;
  regs : Expr.t array;
  mutable pc : int;
  mutable int_enabled : bool;
  mem : Symmem.t;
  mutable constraints : Expr.t list;
  ks : Ddt_kernel.Kstate.t;
  mutable pending : post_action list;
  mutable trace : Ddt_trace.Event.t list;
  mutable choices : (string * string) list;
  mutable sym_inputs : (Expr.var * string) list;
  mutable injections : int;
  mutable injected_sites : int list;
  mutable steps : int;
  mutable last_block : int;
  mutable status : status option;
  mutable entry_name : string;
  mutable depth : int;
  mutable replay_inputs : (string * int) list;
  mutable replay_choices : (string * string) list;
  mutable session : Ddt_solver.Incr.session option;
  mutable pinned : Expr.t list;
  mutable tags : merge_tag list;
}

let create ~id ~mem ~ks =
  {
    id;
    parent_id = 0;
    regs = Array.make Ddt_dvm.Isa.num_regs (Expr.word 0);
    pc = 0;
    int_enabled = true;
    mem;
    constraints = [];
    ks;
    pending = [];
    trace = [];
    choices = [];
    sym_inputs = [];
    injections = 0;
    injected_sites = [];
    steps = 0;
    last_block = 0;
    status = None;
    entry_name = "";
    depth = 0;
    replay_inputs = [];
    replay_choices = [];
    session = None;
    pinned = [];
    tags = [];
  }

let fork t ~id =
  {
    t with
    id;
    parent_id = t.id;
    regs = Array.copy t.regs;
    mem = Symmem.fork t.mem;
    ks = Ddt_kernel.Kstate.copy t.ks;
    depth = t.depth + 1;
    status = None;
  }

let record t ev = t.trace <- ev :: t.trace
let add_constraint t c = t.constraints <- c :: t.constraints
let reg_get t r = t.regs.(r)
let reg_set t r e = t.regs.(r) <- e
let terminated t = t.status <> None

let pp_status fmt = function
  | Returned r -> Format.fprintf fmt "returned 0x%x" r
  | Crashed c -> Format.fprintf fmt "crashed %s at 0x%x: %s" c.c_code c.c_pc c.c_msg
  | Discarded why -> Format.fprintf fmt "discarded (%s)" why
  | Exhausted -> Format.fprintf fmt "exhausted"
