(* Guarded block compilation for the symbolic engine.

   Reuses the block plan from Ddt_dvm.Dbt and translates each superblock
   into closures over the symbolic state. Every instruction whose
   semantics would make the interpreter concretize an operand (memory
   addresses, the stack pointer, branch conditions, indirect-call and
   return targets, register divisors) carries a cheap guard: the operand
   expression must already be a constant, otherwise the closure bails —
   setting the pc to the un-executed instruction — and the dispatch loop
   falls back to single-step interpretation, which owns forking,
   concretization and replay. Purely data-flow instructions need no
   guard at all: the Expr smart constructors fold constant operands, so
   a compiled ALU op over symbolic inputs builds exactly the expression
   the interpreter would.

   Observable-effect parity with Exec.step is the design invariant:
   identical trace events, identical constraint evolution, identical
   [note_block] / step-counter ordering (the one documented exception:
   a guard bail at a block leader re-runs that leader's hotness note
   when the interpreter takes over — a heuristic count only; coverage
   claims stay exactly-once).

   Chronically-bailing superblocks are de-compiled: once bails dominate
   runs past a floor, the cell is flipped to Rejected and the block
   interprets forever after. Run/bail tallies are plain mutable fields —
   racy updates between workers lose counts harmlessly. *)

module Expr = Ddt_solver.Expr
module Isa = Ddt_dvm.Isa
module Layout = Ddt_dvm.Layout
module Image = Ddt_dvm.Image
module Cdbt = Ddt_dvm.Dbt
module Event = Ddt_trace.Event
module St = Symstate

type ctx = {
  c_note : St.t -> int -> unit;
      (* the engine's note_block: hotness, last_block, coverage claim *)
  c_total_incr : unit -> unit;
      (* bump the engine-wide step counter *)
  c_mem_access :
    St.t -> pc:int -> write:bool -> addr:Expr.t -> conc:int -> width:int ->
    sp:int -> unit;
      (* fire the engine's on_mem_access hook (checker tap) *)
  c_crash : string -> string -> exn;
      (* build the engine's Vm_crash *)
}

(* Concrete-register cache. Compiled code runs hot exactly when its
   operands are concrete, yet the plain closures still pay for every
   instruction in [Expr] traffic: a [to_const] walk per read and a fresh
   [Const] allocation per write. Each superblock run therefore carries a
   scratch array of concrete register values and works on raw ints while
   it can. [rc_tag.(r)] is 0 when [St.regs] is authoritative, 1 when the
   cached int mirrors a [Const] already in [St.regs], and 2 when the
   cache is ahead (the register exists only as an int until spilled).
   Dirty slots are spilled back as [Expr.word] — byte-identical to what
   the interpreter's smart constructors would have produced — at every
   point where anyone but the compiled code can observe the state: the
   checker tap before a memory access, and [finish] in the dispatch
   gate, which covers completion, guard bails and escaping crashes. *)
type rcache = {
  rc_val : int array;
  rc_tag : int array;
}

let rc_make () =
  { rc_val = Array.make Isa.num_regs 0; rc_tag = Array.make Isa.num_regs 0 }

(* Write dirty slots back and invalidate everything: after a spill an
   observer (checker, interpreter, crash handler) may mutate registers
   behind the cache's back, so clean entries cannot be trusted either. *)
let spill st rc =
  for r = 0 to Isa.num_regs - 1 do
    if rc.rc_tag.(r) = 2 then St.reg_set st r (Expr.word rc.rc_val.(r));
    rc.rc_tag.(r) <- 0
  done

(* Concrete view of a register, caching the [to_const] verdict. *)
let cget st rc r =
  if rc.rc_tag.(r) > 0 then Some rc.rc_val.(r)
  else
    match Expr.to_const (St.reg_get st r) with
    | Some v ->
        rc.rc_val.(r) <- v;
        rc.rc_tag.(r) <- 1;
        Some v
    | None -> None

let cset rc r v =
  rc.rc_val.(r) <- v land 0xFFFFFFFF;
  rc.rc_tag.(r) <- 2

(* Expression view honouring dirty slots. *)
let eget st rc r =
  if rc.rc_tag.(r) = 2 then Expr.word rc.rc_val.(r) else St.reg_get st r

(* Symbolic write-through: the cache entry is stale from here on. *)
let eset st rc r e =
  rc.rc_tag.(r) <- 0;
  St.reg_set st r e

let alu_to_binop = function
  | Isa.Add -> Expr.Add
  | Isa.Sub -> Expr.Sub
  | Isa.Mul -> Expr.Mul
  | Isa.Divu -> Expr.Divu
  | Isa.Remu -> Expr.Remu
  | Isa.And -> Expr.And
  | Isa.Or -> Expr.Or
  | Isa.Xor -> Expr.Xor
  | Isa.Shl -> Expr.Shl
  | Isa.Shru -> Expr.Lshr
  | Isa.Shrs -> Expr.Ashr

let cmp_to_cmpop = function
  | Isa.Eq -> Expr.Eq
  | Isa.Ne -> Expr.Ne
  | Isa.Ltu -> Expr.Ltu
  | Isa.Leu -> Expr.Leu
  | Isa.Lts -> Expr.Lts
  | Isa.Les -> Expr.Les

let m32 = 0xFFFFFFFF

let in_mmio a = a >= Layout.mmio_base && a < Layout.mmio_limit

(* A compiled instruction: returns [true] to continue the superblock,
   [false] on a guard bail (pc already restored to the bailing
   instruction, nothing counted). Mirrors Exec.step ordering: the step
   is counted (state + engine) before effects, so a crashing instruction
   is counted; [st.pc] is restored before anything that can raise or
   fire a hook, because interior closures otherwise leave it stale. *)
let compile_instr ctx (pc, instr) : St.t -> rcache -> bool =
  let next = pc + Isa.instr_size in
  let count st =
    st.St.steps <- st.St.steps + 1;
    ctx.c_total_incr ()
  in
  match instr with
  | Isa.Nop ->
      fun st _rc ->
        count st;
        true
  | Isa.Hlt ->
      fun st rc ->
        count st;
        st.St.pc <- pc;
        spill st rc;
        raise (ctx.c_crash "DRIVER_FAULT" "driver executed HLT")
  | Isa.Mov (rd, rs) ->
      fun st rc ->
        count st;
        (match cget st rc rs with
         | Some v -> cset rc rd v
         | None -> eset st rc rd (St.reg_get st rs));
        true
  | Isa.Movi (rd, imm) | Isa.Lea (rd, imm) ->
      fun st rc ->
        count st;
        cset rc rd imm;
        true
  | Isa.Alu (((Isa.Divu | Isa.Remu) as op), rd, rs1, rs2) ->
      let bop = alu_to_binop op in
      fun st rc -> (
        match cget st rc rs2 with
        | Some z when z <> 0 ->
            count st;
            (match cget st rc rs1 with
             | Some a -> cset rc rd (Expr.eval_binop bop Expr.W32 a z)
             | None ->
                 eset st rc rd
                   (Expr.binop bop (St.reg_get st rs1) (Expr.word z)));
            true
        | _ ->
            (* symbolic divisor (the interpreter forks on it) or a
               certain division by zero (the interpreter retires the
               state): both belong to the slow path *)
            st.St.pc <- pc;
            false)
  | Isa.Alu (op, rd, rs1, rs2) ->
      let bop = alu_to_binop op in
      fun st rc ->
        count st;
        (match cget st rc rs1, cget st rc rs2 with
         | Some a, Some b -> cset rc rd (Expr.eval_binop bop Expr.W32 a b)
         | _ ->
             eset st rc rd
               (Expr.binop bop (eget st rc rs1) (eget st rc rs2)));
        true
  | Isa.Alui (((Isa.Divu | Isa.Remu) as op), rd, rs1, imm) ->
      if imm = 0 then fun st rc ->
        count st;
        st.St.pc <- pc;
        spill st rc;
        raise (ctx.c_crash "DRIVER_FAULT" "division by zero")
      else
        let bop = alu_to_binop op and ie = Expr.word imm in
        fun st rc ->
          count st;
          (match cget st rc rs1 with
           | Some a -> cset rc rd (Expr.eval_binop bop Expr.W32 a imm)
           | None -> eset st rc rd (Expr.binop bop (St.reg_get st rs1) ie));
          true
  | Isa.Alui (op, rd, rs1, imm) ->
      let bop = alu_to_binop op and ie = Expr.word imm in
      fun st rc ->
        count st;
        (match cget st rc rs1 with
         | Some a -> cset rc rd (Expr.eval_binop bop Expr.W32 a imm)
         | None -> eset st rc rd (Expr.binop bop (St.reg_get st rs1) ie));
        true
  | Isa.Cmp (op, rd, rs1, rs2) ->
      let cop = cmp_to_cmpop op in
      fun st rc ->
        count st;
        (match cget st rc rs1, cget st rc rs2 with
         | Some a, Some b -> cset rc rd (Expr.eval_cmp cop Expr.W32 a b)
         | _ ->
             eset st rc rd
               (Expr.zext (Expr.cmp cop (eget st rc rs1) (eget st rc rs2))));
        true
  | Isa.Cmpi (op, rd, rs1, imm) ->
      let cop = cmp_to_cmpop op and ie = Expr.word imm in
      fun st rc ->
        count st;
        (match cget st rc rs1 with
         | Some a -> cset rc rd (Expr.eval_cmp cop Expr.W32 a imm)
         | None ->
             eset st rc rd
               (Expr.zext (Expr.cmp cop (St.reg_get st rs1) ie)));
        true
  | Isa.Ldw (rd, rs1, off) ->
      fun st rc -> (
        match cget st rc rs1, cget st rc Isa.sp with
        | Some bv, Some spv ->
            count st;
            st.St.pc <- pc;
            spill st rc;
            let addr_expr =
              Expr.binop Expr.Add (St.reg_get st rs1) (Expr.word off)
            in
            let conc = (bv + off) land m32 in
            ctx.c_mem_access st ~pc ~write:false ~addr:addr_expr ~conc
              ~width:4 ~sp:spv;
            if conc < Layout.null_guard then
              raise
                (ctx.c_crash "DRIVER_FAULT"
                   (Printf.sprintf
                      "null pointer dereference at 0x%x (pc 0x%x)" conc pc));
            let v = Symmem.read_u32 st.St.mem conc in
            St.record st
              (Event.E_mem
                 { pc; write = false; addr = addr_expr; width = 4; value = v });
            St.reg_set st rd v;
            true
        | _ ->
            st.St.pc <- pc;
            false)
  | Isa.Ldb (rd, rs1, off) ->
      fun st rc -> (
        match cget st rc rs1, cget st rc Isa.sp with
        | Some bv, Some spv ->
            count st;
            st.St.pc <- pc;
            spill st rc;
            let addr_expr =
              Expr.binop Expr.Add (St.reg_get st rs1) (Expr.word off)
            in
            let conc = (bv + off) land m32 in
            ctx.c_mem_access st ~pc ~write:false ~addr:addr_expr ~conc
              ~width:1 ~sp:spv;
            if conc < Layout.null_guard then
              raise
                (ctx.c_crash "DRIVER_FAULT"
                   (Printf.sprintf
                      "null pointer dereference at 0x%x (pc 0x%x)" conc pc));
            let v = Symmem.read_u8 st.St.mem conc in
            St.record st
              (Event.E_mem
                 { pc; write = false; addr = addr_expr; width = 1; value = v });
            St.reg_set st rd (Expr.zext v);
            true
        | _ ->
            st.St.pc <- pc;
            false)
  | Isa.Stw (rs1, off, rs2) ->
      fun st rc -> (
        match cget st rc rs1, cget st rc Isa.sp with
        | Some bv, Some spv ->
            count st;
            st.St.pc <- pc;
            spill st rc;
            let addr_expr =
              Expr.binop Expr.Add (St.reg_get st rs1) (Expr.word off)
            in
            let conc = (bv + off) land m32 in
            ctx.c_mem_access st ~pc ~write:true ~addr:addr_expr ~conc
              ~width:4 ~sp:spv;
            if conc < Layout.null_guard then
              raise
                (ctx.c_crash "DRIVER_FAULT"
                   (Printf.sprintf
                      "null pointer dereference at 0x%x (pc 0x%x)" conc pc));
            let v = St.reg_get st rs2 in
            St.record st
              (Event.E_mem
                 { pc; write = true; addr = addr_expr; width = 4; value = v });
            Symmem.write_u32 st.St.mem conc v;
            true
        | _ ->
            st.St.pc <- pc;
            false)
  | Isa.Stb (rs1, off, rs2) ->
      fun st rc -> (
        match cget st rc rs1, cget st rc Isa.sp with
        | Some bv, Some spv ->
            count st;
            st.St.pc <- pc;
            spill st rc;
            let addr_expr =
              Expr.binop Expr.Add (St.reg_get st rs1) (Expr.word off)
            in
            let conc = (bv + off) land m32 in
            ctx.c_mem_access st ~pc ~write:true ~addr:addr_expr ~conc
              ~width:1 ~sp:spv;
            if conc < Layout.null_guard then
              raise
                (ctx.c_crash "DRIVER_FAULT"
                   (Printf.sprintf
                      "null pointer dereference at 0x%x (pc 0x%x)" conc pc));
            let byte_v = Expr.extract (St.reg_get st rs2) 0 in
            St.record st
              (Event.E_mem
                 { pc; write = true; addr = addr_expr; width = 1;
                   value = byte_v });
            Symmem.write_u8 st.St.mem conc byte_v;
            true
        | _ ->
            st.St.pc <- pc;
            false)
  | Isa.Push rs ->
      fun st rc -> (
        match cget st rc Isa.sp with
        | Some spv ->
            count st;
            st.St.pc <- pc;
            let v = eget st rc rs in (* before sp moves: [push sp] *)
            let sp = spv - 4 in
            if sp < Layout.stack_limit then begin
              spill st rc;
              raise (ctx.c_crash "DRIVER_FAULT" "stack overflow")
            end;
            cset rc Isa.sp sp;
            Symmem.write_u32 st.St.mem sp v;
            true
        | None ->
            st.St.pc <- pc;
            false)
  | Isa.Pop rd ->
      fun st rc -> (
        match cget st rc Isa.sp with
        | Some spv ->
            count st;
            (match Expr.to_const (Symmem.read_u32 st.St.mem spv) with
             | Some v -> cset rc rd v
             | None -> eset st rc rd (Symmem.read_u32 st.St.mem spv));
            cset rc Isa.sp (spv + 4);
            true
        | None ->
            st.St.pc <- pc;
            false)
  | Isa.Jmp t ->
      fun st _rc ->
        count st;
        st.St.pc <- t;
        true
  | Isa.Jz (rs, target) | Isa.Jnz (rs, target) ->
      let is_jz = match instr with Isa.Jz _ -> true | _ -> false in
      let cop = if is_jz then Expr.Eq else Expr.Ne in
      fun st rc -> (
        match cget st rc rs with
        | Some v ->
            count st;
            let taken = if is_jz then v = 0 else v <> 0 in
            (* folds to the same constant expression the interpreter's
               fork_bool sees on a concrete condition *)
            let cond = Expr.cmp cop (Expr.word v) (Expr.word 0) in
            St.record st
              (Event.E_branch { pc; taken; forked = false; cond });
            st.St.pc <- (if taken then target else next);
            true
        | None ->
            (* symbolic condition: the interpreter forks *)
            st.St.pc <- pc;
            false)
  | Isa.Call target ->
      fun st rc -> (
        match cget st rc Isa.sp with
        | Some spv ->
            count st;
            st.St.pc <- pc;
            let sp = spv - 4 in
            if sp < Layout.stack_limit then begin
              spill st rc;
              raise (ctx.c_crash "DRIVER_FAULT" "stack overflow")
            end;
            cset rc Isa.sp sp;
            Symmem.write_u32 st.St.mem sp (Expr.word next);
            st.St.pc <- target;
            true
        | None ->
            st.St.pc <- pc;
            false)
  | Isa.Callr rs ->
      fun st rc -> (
        match cget st rc rs, cget st rc Isa.sp with
        | Some target, Some spv ->
            count st;
            st.St.pc <- pc;
            if target < Layout.null_guard then begin
              spill st rc;
              raise
                (ctx.c_crash "DRIVER_FAULT"
                   (Printf.sprintf "indirect call through bad pointer 0x%x"
                      target))
            end;
            let sp = spv - 4 in
            if sp < Layout.stack_limit then begin
              spill st rc;
              raise (ctx.c_crash "DRIVER_FAULT" "stack overflow")
            end;
            cset rc Isa.sp sp;
            Symmem.write_u32 st.St.mem sp (Expr.word next);
            st.St.pc <- target;
            true
        | _ ->
            st.St.pc <- pc;
            false)
  | Isa.Ret ->
      fun st rc -> (
        match cget st rc Isa.sp with
        (* exclude MMIO stack pointers: the bail path would re-read, and
           MMIO reads mint fresh symbols *)
        | Some spv when not (in_mmio spv) -> (
            match Expr.to_const (Symmem.read_u32 st.St.mem spv) with
            | Some ret_addr ->
                count st;
                cset rc Isa.sp (spv + 4);
                st.St.pc <- ret_addr;
                true
            | None ->
                st.St.pc <- pc;
                false)
        | _ ->
            st.St.pc <- pc;
            false)
  | Isa.Kcall _ ->
      (* never compiled: kernel calls fork, inject interrupts and run
         annotations — superblocks are truncated before a Kcall *)
      fun st _rc ->
        st.St.pc <- pc;
        false
  | Isa.Cli ->
      fun st _rc ->
        count st;
        st.St.int_enabled <- false;
        true
  | Isa.Sti ->
      fun st _rc ->
        count st;
        st.St.int_enabled <- true;
        true

let compilable = function Isa.Kcall _ -> false | _ -> true

type sblock = {
  sb_len : int;                      (* steps a complete run executes *)
  sb_codes : (St.t -> rcache -> bool) array;
}

(* Translate a superblock chain into a closure sequence: a hotness note
   at each constituent leader, then the instructions; a block is
   truncated at its first un-compilable instruction (ending the chain
   there with a pc hand-off), and a final un-chained fall-through also
   hands the pc to the dispatch loop. *)
let compile_chain ctx blocks =
  let codes = ref [] and len = ref 0 in
  let truncated = ref false in
  let blocks =
    (* drop everything after a truncating block *)
    let rec keep = function
      | [] -> []
      | bk :: rest ->
          if Array.exists (fun (_, i) -> not (compilable i)) bk.Cdbt.bk_instrs
          then [ bk ]
          else bk :: keep rest
    in
    keep blocks
  in
  let nblocks = List.length blocks in
  List.iteri
    (fun bi bk ->
      let entry = bk.Cdbt.bk_entry in
      codes :=
        (fun st _rc ->
          ctx.c_note st entry;
          true)
        :: !codes;
      let n = Array.length bk.Cdbt.bk_instrs in
      (try
         Array.iteri
           (fun ii ((ipc, instr) as ipair) ->
             if not (compilable instr) then begin
               truncated := true;
               codes :=
                 (fun st _rc ->
                   st.St.pc <- ipc;
                   true)
                 :: !codes;
               raise Exit
             end;
             let chained_jmp =
               bi < nblocks - 1 && ii = n - 1
               && match instr with Isa.Jmp _ -> true | _ -> false
             in
             incr len;
             if chained_jmp then
               codes :=
                 (fun st _rc ->
                   st.St.steps <- st.St.steps + 1;
                   ctx.c_total_incr ();
                   true)
                 :: !codes
             else codes := compile_instr ctx ipair :: !codes)
           bk.Cdbt.bk_instrs
       with Exit -> ());
      if bi = nblocks - 1 && not !truncated then
        match bk.Cdbt.bk_end with
        | Cdbt.E_fall t ->
            codes :=
              (fun st _rc ->
                st.St.pc <- t;
                true)
              :: !codes
        | Cdbt.E_term -> ())
    blocks;
  let sb_codes = Array.of_list (List.rev !codes) in
  ({ sb_len = !len; sb_codes }, max 0 (List.length blocks - 1))

(* --- cells and the dispatch gate ------------------------------------- *)

type ready = {
  r_block : sblock;
  mutable r_runs : int;   (* heuristic tallies: racy updates are benign *)
  mutable r_bails : int;
}

type cell =
  | Not_leader
  | Cold of int Atomic.t
  | Ready of ready
  | Rejected

type t = {
  sd_plan : Cdbt.plan;
  sd_ctx : ctx;
  sd_text_start : int;
  sd_text_end : int;
  sd_cells : cell Atomic.t array;
  sd_threshold : int;
  sd_compiled : int Atomic.t;
  sd_chained : int Atomic.t;
  sd_bails : int Atomic.t;
  sd_decompiled : int Atomic.t;
  sd_compiled_steps : int Atomic.t;
}

let default_threshold = 16

(* De-compilation policy: a superblock that has bailed at least
   [decompile_floor] times, with bails outnumbering completed runs, is
   chronically guarded by symbolic data — reject it for good. *)
let decompile_floor = 32

let create ?(threshold = default_threshold) ctx (l : Image.loaded) =
  let plan = Cdbt.plan l in
  let nslots = max 1 (Array.length l.Image.code) in
  let cells =
    Array.init nslots (fun slot ->
        let pc = l.Image.text_start + (slot * Isa.instr_size) in
        Atomic.make
          (match Cdbt.block_of plan pc with
           | Some _ -> Cold (Atomic.make 0)
           | None -> Not_leader))
  in
  { sd_plan = plan; sd_ctx = ctx; sd_text_start = l.Image.text_start;
    sd_text_end = l.Image.text_end; sd_cells = cells;
    sd_threshold = threshold; sd_compiled = Atomic.make 0;
    sd_chained = Atomic.make 0; sd_bails = Atomic.make 0;
    sd_decompiled = Atomic.make 0; sd_compiled_steps = Atomic.make 0 }

let compile_cell t cell pc =
  match Cdbt.chain t.sd_plan pc with
  | [] -> Atomic.set cell Rejected
  | blocks ->
      let sb, nchained = compile_chain t.sd_ctx blocks in
      if sb.sb_len = 0 then
        (* leader instruction itself is un-compilable *)
        Atomic.set cell Rejected
      else begin
        Atomic.incr t.sd_compiled;
        if nchained > 0 then
          ignore (Atomic.fetch_and_add t.sd_chained nchained);
        Atomic.set cell (Ready { r_block = sb; r_runs = 0; r_bails = 0 })
      end

(* The dispatch gate, called by the engine's quantum loop before each
   interpreted step. Returns the number of steps executed compiled (the
   caller charges them against its budget), or 0 — meaning "interpret
   one step as usual" (not a leader, still cold, rejected, budget too
   small, or an immediate first-instruction bail). *)
let try_run t st ~budget ~steps_left =
  let pc = st.St.pc in
  if pc < t.sd_text_start || pc >= t.sd_text_end then 0
  else
    let off = pc - t.sd_text_start in
    if off land (Isa.instr_size - 1) <> 0 then 0
    else
      let cell = Array.unsafe_get t.sd_cells (off lsr 3) in
      match Atomic.get cell with
      | Not_leader | Rejected -> 0
      | Cold n ->
          let seen = 1 + Atomic.fetch_and_add n 1 in
          if seen >= t.sd_threshold then compile_cell t cell pc;
          0
      | Ready r ->
          let sb = r.r_block in
          if budget < sb.sb_len || steps_left < sb.sb_len then 0
          else begin
            let steps0 = st.St.steps in
            let rc = rc_make () in
            let finish completed =
              (* all exits — completion, guard bail, escaping crash —
                 funnel through here, so the interpreter, the retire
                 path and every exception handler see spilled state *)
              spill st rc;
              let consumed = st.St.steps - steps0 in
              if consumed > 0 then
                ignore (Atomic.fetch_and_add t.sd_compiled_steps consumed);
              r.r_runs <- r.r_runs + 1;
              if not completed then begin
                r.r_bails <- r.r_bails + 1;
                Atomic.incr t.sd_bails;
                if
                  r.r_bails >= decompile_floor && r.r_bails * 2 > r.r_runs
                then begin
                  Atomic.set cell Rejected;
                  Atomic.incr t.sd_decompiled
                end
              end;
              consumed
            in
            let codes = sb.sb_codes in
            let ncodes = Array.length codes in
            let rec exec i =
              if i >= ncodes then true
              else if (Array.unsafe_get codes i) st rc then exec (i + 1)
              else false
            in
            match exec 0 with
            | completed -> finish completed
            | exception e ->
                (* crash/discard escaping a closure: steps are already
                   synced per instruction; settle the tallies and let
                   the quantum loop's handlers retire the state *)
                ignore (finish true);
                raise e
          end

type stats = {
  sd_st_compiled : int;
  sd_st_superblocks : int;
  sd_st_bails : int;
  sd_st_decompiled : int;
  sd_st_compiled_steps : int;
}

let stats t =
  { sd_st_compiled = Atomic.get t.sd_compiled;
    sd_st_superblocks = Atomic.get t.sd_chained;
    sd_st_bails = Atomic.get t.sd_bails;
    sd_st_decompiled = Atomic.get t.sd_decompiled;
    sd_st_compiled_steps = Atomic.get t.sd_compiled_steps }

(* --- checkpointing -------------------------------------------------------

   Compiled superblocks are closures and cannot travel in a snapshot;
   what can is each cell's *disposition* — hotness count, run/bail
   tallies, or a rejection verdict. Restore replays that disposition
   onto a freshly created table: Ready cells are recompiled through the
   normal path (the plan is deterministic, so the same chains come
   back), and the global counters are then overwritten with the dump's
   values so recompilation does not inflate them. *)

type cell_dump =
  | Cd_cold of int                (* entries counted toward threshold *)
  | Cd_ready of int * int         (* runs, bails *)
  | Cd_rejected

type dump = {
  sdd_cells : (int * cell_dump) list;   (* (slot, disposition), non-default only *)
  sdd_compiled : int;
  sdd_chained : int;
  sdd_bails : int;
  sdd_decompiled : int;
  sdd_compiled_steps : int;
}

let dump t =
  let cells = ref [] in
  for slot = Array.length t.sd_cells - 1 downto 0 do
    match Atomic.get (Array.unsafe_get t.sd_cells slot) with
    | Not_leader -> ()
    | Cold n ->
        let c = Atomic.get n in
        if c > 0 then cells := (slot, Cd_cold c) :: !cells
    | Ready r -> cells := (slot, Cd_ready (r.r_runs, r.r_bails)) :: !cells
    | Rejected -> cells := (slot, Cd_rejected) :: !cells
  done;
  { sdd_cells = !cells;
    sdd_compiled = Atomic.get t.sd_compiled;
    sdd_chained = Atomic.get t.sd_chained;
    sdd_bails = Atomic.get t.sd_bails;
    sdd_decompiled = Atomic.get t.sd_decompiled;
    sdd_compiled_steps = Atomic.get t.sd_compiled_steps }

let restore t d =
  List.iter
    (fun (slot, cd) ->
      if slot >= 0 && slot < Array.length t.sd_cells then begin
        let cell = t.sd_cells.(slot) in
        match Atomic.get cell with
        | Not_leader -> ()    (* plan disagreement: structure wins *)
        | _ ->
            (match cd with
             | Cd_cold n -> Atomic.set cell (Cold (Atomic.make n))
             | Cd_rejected -> Atomic.set cell Rejected
             | Cd_ready (runs, bails) ->
                 let pc = t.sd_text_start + (slot * Isa.instr_size) in
                 compile_cell t cell pc;
                 (match Atomic.get cell with
                  | Ready r ->
                      r.r_runs <- runs;
                      r.r_bails <- bails
                  | _ -> ()))
      end)
    d.sdd_cells;
  Atomic.set t.sd_compiled d.sdd_compiled;
  Atomic.set t.sd_chained d.sdd_chained;
  Atomic.set t.sd_bails d.sdd_bails;
  Atomic.set t.sd_decompiled d.sdd_decompiled;
  Atomic.set t.sd_compiled_steps d.sdd_compiled_steps
