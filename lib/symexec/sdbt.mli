(** Guarded block compilation for the symbolic engine (the DBT leg of
    §4.1 applied to selective symbolic execution).

    Superblocks from the shared block plan ([Ddt_dvm.Dbt]) are
    translated into closures over {!Symstate.t}. Instructions whose
    interpretation would concretize an operand carry a guard — the
    operand must already be an [Expr] constant — and bail to the
    interpreter otherwise; purely data-flow instructions run unguarded
    because the [Expr] smart constructors fold constants, making the
    compiled expression identical to the interpreted one. Chronically
    bailing superblocks are de-compiled.

    The engine owns forking, concretization, replay and retirement;
    everything a compiled closure needs from it arrives through {!ctx}
    (which also breaks the [Exec] ↔ [Sdbt] dependency cycle). *)

module Expr = Ddt_solver.Expr
module St = Symstate

type ctx = {
  c_note : St.t -> int -> unit;
      (** the engine's note_block (hotness, last_block, coverage) *)
  c_total_incr : unit -> unit;
      (** bump the engine-wide step counter *)
  c_mem_access :
    St.t -> pc:int -> write:bool -> addr:Expr.t -> conc:int -> width:int ->
    sp:int -> unit;
      (** fire the engine's on_mem_access hook *)
  c_crash : string -> string -> exn;
      (** build the engine's Vm_crash *)
}

type t

val create : ?threshold:int -> ctx -> Ddt_dvm.Image.loaded -> t
(** A block is compiled once entered [threshold] times (default
    {!default_threshold}). *)

val default_threshold : int

val try_run : t -> St.t -> budget:int -> steps_left:int -> int
(** The dispatch gate: if the state's pc heads a compiled superblock
    that fits in the remaining quantum [budget] and per-state
    [steps_left], run it and return the steps executed; otherwise
    return [0] ("interpret one step"). Counts cold blocks toward the
    compile threshold as a side effect. May raise the engine's crash
    exception out of a compiled instruction — state and engine step
    counters are already settled when it does. *)

type stats = {
  sd_st_compiled : int;        (** superblocks compiled *)
  sd_st_superblocks : int;     (** chained constituents beyond heads *)
  sd_st_bails : int;           (** guard bailouts *)
  sd_st_decompiled : int;      (** superblocks rejected after chronic bails *)
  sd_st_compiled_steps : int;  (** instructions executed compiled *)
}

val stats : t -> stats

(** {1 Checkpointing}

    Compiled closures cannot be marshalled; a dump records each cell's
    disposition (hotness, run/bail tallies, rejection) plus the global
    counters. [restore] recompiles Ready cells through the normal path
    — the block plan is deterministic — and then overwrites the
    counters with the dump's values, so recompilation is invisible in
    the statistics. *)

type cell_dump =
  | Cd_cold of int                (** entries counted toward threshold *)
  | Cd_ready of int * int         (** runs, bails *)
  | Cd_rejected

type dump = {
  sdd_cells : (int * cell_dump) list;
  sdd_compiled : int;
  sdd_chained : int;
  sdd_bails : int;
  sdd_decompiled : int;
  sdd_compiled_steps : int;
}

val dump : t -> dump

val restore : t -> dump -> unit
(** Replay a dump onto a freshly created table for the same image. *)
