(** Symbolic memory with chained copy-on-write (§4.1.3 of the paper).

    Forking creates an empty memory object pointing to its parent; writes
    go to the leaf object, reads that miss locally walk the parent chain
    and fall through to the shared concrete backing memory. Resolved reads
    are cached in the leaf to keep deep fork chains cheap — exactly the
    optimization the paper describes.

    Reads from the symbolic device's MMIO ranges return a fresh
    unconstrained symbolic byte on every access; writes there are
    discarded (fully symbolic hardware, §3.3). *)

type t

val create :
  base:Ddt_dvm.Mem.t -> symdev:Ddt_hw.Symdev.t option -> t

val fork : t -> t
(** Returns a child; the original also moves to a fresh leaf so neither
    side can see the other's subsequent writes. *)

val set_sym_read_hook : t -> (string -> Ddt_solver.Expr.var -> unit) -> unit
(** Called whenever an MMIO read mints a fresh symbolic byte. *)

val read_u8 : t -> int -> Ddt_solver.Expr.t
val write_u8 : t -> int -> Ddt_solver.Expr.t -> unit
val read_u32 : t -> int -> Ddt_solver.Expr.t
val write_u32 : t -> int -> Ddt_solver.Expr.t -> unit

val read_u8_concrete_view : t -> (Ddt_solver.Expr.t -> int) -> int -> int
(** Read a byte and concretize it with the supplied valuation. *)

val cow_diff : t -> t -> int list option
(** Addresses at which two sibling memories can disagree: the union of
    addresses either side wrote since their common copy-on-write
    ancestor (found by physical node identity), sorted. [None] when the
    memories share no ancestor — the caller must not merge them. MMIO
    writes are discarded at the write barrier, so the diff is pure RAM. *)

val chain_depth : t -> int
(** Length of the copy-on-write chain (for statistics/benchmarks). *)

val live_words : t -> int
(** Total entries across this leaf's chain (memory accounting, E5). *)

(** {1 Snapshots} *)

type image
(** The marshal-safe projection of a memory: its copy-on-write node
    chain and read cache, without the shared base image, device or read
    hook (session infrastructure, reattached at restore). Sibling
    images marshalled in one blob keep sharing their common ancestor
    nodes. *)

val to_image : t -> image
(** Non-destructive; the image aliases the live node chain. *)

val of_image :
  base:Ddt_dvm.Mem.t -> symdev:Ddt_hw.Symdev.t option -> image -> t
(** Rebuild a memory over the session's base image and device. The
    sym-read hook is reset to a no-op; the engine reinstalls its own. *)
