(** Dynamic state merging at post-dominators (veritesting-style).

    The pool tracks *merge tokens*: a symbolic fork whose arms
    reconverge (per the static merge-point map) tags both children;
    tagged states park here when they reach the token's merge pc, and
    when the last live carrier parks or dies the token *folds* —
    compatible arrivals are fused into one state whose registers and
    copy-on-write memory are lifted to [ite(cond_b, v_b, v_a)] over the
    disjoined path-condition suffixes.

    Fusion refuses states whose kernel context, replay pins, pending
    actions or checker-visible streams differ, and a cost heuristic
    (store-divergence caps plus per-branch fused/refused history) falls
    back to plain forking when lifting would be more expensive than the
    fork subtree it replaces.

    All operations are safe to call from any worker; folds run under
    the pool's lock and hand their effects back as an {!outcome} so the
    caller retires absorbed states and requeues survivors outside it. *)

type t

(** What a fold decided; apply with the engine's own retire/requeue. *)
type outcome = {
  mo_requeue : Symstate.t list;   (** fold survivors, tag popped *)
  mo_absorbed : Symstate.t list;  (** fused away: retire unreported *)
}

type arrival =
  | A_continue  (** stale tag dropped — keep executing *)
  | A_parked of outcome
      (** the state now belongs to the pool; stop executing it *)

val empty_outcome : outcome

val create : unit -> t

val open_token :
  t ->
  branch_pc:int ->
  merge_pc:int ->
  base:Ddt_solver.Expr.t list ->
  Symstate.t ->
  Symstate.t ->
  bool
(** Open a token for a fresh two-way fork whose arms reconverge at
    [merge_pc]. [base] is the parent's constraint list captured before
    the fork consed either arm's constraint. Tags both states and
    returns [true], or returns [false] without tagging when the
    per-branch history says merging here keeps getting refused (or the
    states' tag stacks are already at the nesting cap). *)

val note_fork : t -> Symstate.t -> Symstate.t -> unit
(** [note_fork t parent child]: the child inherited the parent's tags —
    each open token gains a carrier — and the parent's merge weight
    (forks by a state that absorbed siblings are forks avoided). *)

val on_arrival : t -> Symstate.t -> arrival
(** The state stands at its innermost token's merge pc; park it. The
    last carrier in triggers the fold. *)

val note_dead : t -> Symstate.t -> outcome
(** A carrier terminated without reaching its merge points: release
    every token it holds; the last release folds the parked siblings. *)

val drain_parked : t -> Symstate.t list
(** End-of-run safety valve: every still-parked state (sorted by state
    id), tags cleared and tokens dropped, for the engine's final drain
    to retire. *)

val stats : t -> int * int * int * int
(** (states merged, ites introduced, forks avoided, merges refused). *)

(** {1 Checkpointing}

    The pool as marshal-safe data. Parked states are projected through
    ['a] — pass [Symstate.to_image]/[Symstate.of_image] — and token
    base lists are carried verbatim, so a dump marshalled in the same
    blob as the frontier's state images preserves the physical
    base-is-a-suffix-of-the-carrier's-constraints identity that suffix
    extraction matches on. *)

type 'a token_dump = {
  td_id : int;
  td_branch_pc : int;
  td_merge_pc : int;
  td_base : Ddt_solver.Expr.t list;
  td_kcalls : int;
  td_outstanding : int;
  td_parked : 'a list;
}

type 'a dump = {
  md_tokens : 'a token_dump list;  (** sorted by [td_id] *)
  md_branch_stats : (int * (int * int * int)) list;
  md_weights : (int * int) list;
  md_next_token : int;
  md_ever_opened : bool;
  md_merged : int;
  md_ites : int;
  md_forks_avoided : int;
  md_refused : int;
}

val dump : t -> f:(Symstate.t -> 'a) -> 'a dump

val restore : t -> f:('a -> Symstate.t) -> 'a dump -> unit
(** Replace a fresh pool's contents with the dump's. *)
