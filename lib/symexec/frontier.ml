(* Shared exploration frontier: one Sched.queue per worker domain, each
   behind its own mutex, with work stealing between them.

   Invariant used for termination detection: [size] counts states sitting
   in queues, [inflight] counts states popped but not yet finished
   (running their quantum). [inflight] is raised BEFORE the pop decrements
   [size] and lowered only after any forked children have been pushed, so
   [size = 0 && inflight = 0] ("quiescent") can never be observed while a
   state that might still fork is in motion — the idle-worker barrier in
   [Exec] spins on exactly this predicate. *)

type worker_queue = {
  wq_mu : Mutex.t;
  wq_q : Sched.queue;
}

type t = {
  workers : worker_queue array;
  size : int Atomic.t;
  inflight : int Atomic.t;
  steals : int Atomic.t;
  dropped : int Atomic.t;
  rr : int Atomic.t;  (* round-robin cursor for ownerless pushes *)
  max_states : int;
}

let create ~workers ~max_states ~strategy ~priority =
  let mk _ = { wq_mu = Mutex.create (); wq_q = Sched.create strategy ~priority } in
  {
    workers = Array.init (max 1 workers) mk;
    size = Atomic.make 0;
    inflight = Atomic.make 0;
    steals = Atomic.make 0;
    dropped = Atomic.make 0;
    rr = Atomic.make 0;
    max_states;
  }

let n_workers t = Array.length t.workers
let size t = Atomic.get t.size
let steals t = Atomic.get t.steals
let dropped t = Atomic.get t.dropped

let with_wq wq f =
  Mutex.lock wq.wq_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock wq.wq_mu) f

(* The cap check is racy across workers (a handful of states may slip past
   max_states under contention); the old single-threaded check had the
   same "admit when strictly below" semantics. *)
let push_on t ~worker ~fresh st =
  if Atomic.get t.size >= t.max_states then begin
    Atomic.incr t.dropped;
    false
  end
  else begin
    let wq = t.workers.(worker mod Array.length t.workers) in
    Atomic.incr t.size;
    with_wq wq (fun () ->
        if fresh then Sched.push wq.wq_q st else Sched.requeue wq.wq_q st);
    true
  end

let push t ~worker st = push_on t ~worker ~fresh:true st

(* A quantum-expired state is already admitted; dropping it here would
   silently lose a live path, so the cap does not apply. *)
let requeue t ~worker st =
  let wq = t.workers.(worker mod Array.length t.workers) in
  Atomic.incr t.size;
  with_wq wq (fun () -> Sched.requeue wq.wq_q st)

(* Seed a state with no owning worker (between phases, from the main
   domain): spread round-robin so every worker starts with local work. *)
let push_any t st =
  let w = Atomic.fetch_and_add t.rr 1 in
  push t ~worker:w st

(* Victim selection: largest queue first, so a thief grabs from where the
   most unexplored work sits (and for Dfs/Min_touch, Sched.steal hands
   over the root-most / highest-key state — the biggest subtree). Lengths
   are read without the victim's lock; staleness only costs ordering. *)
let pick_locked t ~worker =
  let n = Array.length t.workers in
  let me = worker mod n in
  let own =
    with_wq t.workers.(me) (fun () -> Sched.pop t.workers.(me).wq_q)
  in
  match own with
    | Some _ -> own
    | None ->
        let victims =
          List.init n Fun.id
          |> List.filter (fun i -> i <> me)
          |> List.map (fun i -> (i, Sched.length t.workers.(i).wq_q))
          |> List.filter (fun (_, l) -> l > 0)
          |> List.sort (fun (_, a) (_, b) -> compare b a)
        in
        List.fold_left
          (fun acc (i, _) ->
            match acc with
            | Some _ -> acc
            | None -> (
                match
                  with_wq t.workers.(i) (fun () -> Sched.steal t.workers.(i).wq_q)
                with
                | Some st ->
                    Atomic.incr t.steals;
                    Some st
                | None -> None))
          None victims

let pick t ~worker =
  Atomic.incr t.inflight;
  (* Exception safety: the priority function runs under the queue locks
     inside [pick_locked], and a fault escaping between the inflight
     raise and the return would leak the counter and wedge termination
     detection for every other worker — so the raise is undone before
     re-raising. *)
  let got =
    try pick_locked t ~worker
    with exn ->
      Atomic.decr t.inflight;
      raise exn
  in
  (match got with
  | Some _ -> Atomic.decr t.size
  | None -> Atomic.decr t.inflight);
  got

let task_done t = Atomic.decr t.inflight

(* Governor support: pull out every queued state matching [pred]
   (inflight states are not candidates). Survivors are re-admitted in
   drain order, which preserves deque ordering exactly and re-keys heap
   entries to an equivalent heap. *)
let remove t pred =
  let removed = ref [] in
  Array.iter
    (fun wq ->
      with_wq wq (fun () ->
          let all = Sched.drain wq.wq_q in
          List.iter
            (fun st ->
              if pred st then removed := st :: !removed
              else Sched.requeue wq.wq_q st)
            all))
    t.workers;
  let n = List.length !removed in
  if n > 0 then ignore (Atomic.fetch_and_add t.size (-n));
  List.rev !removed

let iter t f =
  Array.iter (fun wq -> with_wq wq (fun () -> Sched.iter wq.wq_q f)) t.workers

(* Reaper support: move every state queued on [from_] onto [to_]'s queue.
   [size] is untouched (states only change queues), so termination
   detection never observes an intermediate dip; the two locks are taken
   one at a time, drain first, so the usual lock-ordering concerns don't
   apply. Returns the number of states moved. *)
let rehome t ~from_ ~to_ =
  let n = Array.length t.workers in
  let src = t.workers.(from_ mod n) and dst = t.workers.(to_ mod n) in
  if src == dst then 0
  else begin
    let moved = with_wq src (fun () -> Sched.drain src.wq_q) in
    with_wq dst (fun () -> List.iter (Sched.requeue dst.wq_q) moved);
    List.length moved
  end

let queue_length t ~worker =
  Sched.length t.workers.(worker mod Array.length t.workers).wq_q

let quiescent t = Atomic.get t.size = 0 && Atomic.get t.inflight = 0

(* --- checkpoint dump/restore --------------------------------------------- *)
(* Per-queue entry dumps preserve each scheduler key exactly (see
   Sched.dump_entries); the counters ride along so a resumed report's
   steals/dropped totals match the uninterrupted run's. Dumping is only
   meaningful at a quiescent point (no inflight states — an inflight
   state would simply be missing from the checkpoint). *)

let dump_queue t ~worker =
  let wq = t.workers.(worker mod Array.length t.workers) in
  with_wq wq (fun () -> Sched.dump_entries wq.wq_q)

let restore_queue t ~worker entries ~hseq =
  let wq = t.workers.(worker mod Array.length t.workers) in
  with_wq wq (fun () -> Sched.restore_entries wq.wq_q entries ~hseq);
  ignore (Atomic.fetch_and_add t.size (List.length entries))

let rr_cursor t = Atomic.get t.rr

let restore_counters t ~steals ~dropped ~rr =
  Atomic.set t.steals steals;
  Atomic.set t.dropped dropped;
  Atomic.set t.rr rr

(* Only sound once all workers have stopped; used by the main domain to
   retire leftovers after a budget/plateau stop. *)
let drain_all t =
  let all =
    Array.to_list t.workers
    |> List.concat_map (fun wq -> with_wq wq (fun () -> Sched.drain wq.wq_q))
  in
  Atomic.set t.size 0;
  all
