(* Durable single-state snapshots (the serialization leg of §3.5's
   "each execution state is a complete snapshot of the system").

   A snapshot is a {!Ddt_solver.Blob} whose payload is the state's
   marshal-safe projection ({!Symstate.image}) plus the global
   symbolic-variable counter — restoring on a fresh process must keep
   minting variable ids above every id the snapshotted path condition
   already uses, or fresh reads would collide with pinned ones.

   What is deliberately NOT in a snapshot: the incremental solver
   session and any compiled DBT blocks. Both are caches over the state
   and the immutable driver image — restore rebuilds them from scratch
   (the [Incr] migration path on first query, [Sdbt] by re-warming). *)

module Blob = Ddt_solver.Blob
module Expr = Ddt_solver.Expr
module St = Symstate

let snapshot_version = 1

type payload = {
  sn_version : int;
  sn_state : St.image;
  sn_var_counter : int;
}

let snapshot st =
  Blob.encode
    {
      sn_version = snapshot_version;
      sn_state = St.to_image st;
      sn_var_counter = Expr.var_counter_value ();
    }

let of_payload ~base ~symdev p =
  if p.sn_version <> snapshot_version then
    Error
      (Printf.sprintf "snapshot version %d, expected %d" p.sn_version
         snapshot_version)
  else begin
    (* Never lower the counter: the restoring process may already have
       minted variables of its own. *)
    Expr.set_var_counter
      (max (Expr.var_counter_value ()) p.sn_var_counter);
    Ok (St.of_image ~base ~symdev p.sn_state)
  end

let restore ~base ~symdev s =
  match Blob.decode s with
  | Error _ as e -> e
  | Ok (p : payload) -> of_payload ~base ~symdev p

let save path st =
  Blob.write_file path
    {
      sn_version = snapshot_version;
      sn_state = St.to_image st;
      sn_var_counter = Expr.var_counter_value ();
    }

let load ~base ~symdev path =
  match Blob.read_file path with
  | Error _ as e -> e
  | Ok (p : payload) -> of_payload ~base ~symdev p
