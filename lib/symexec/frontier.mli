(** Shared exploration frontier for multicore path exploration.

    One {!Sched.queue} per worker domain, each behind its own mutex; a
    worker pops from its own queue and, when empty, steals from the victim
    with the largest queue (taking the end the victim's strategy values
    least — see {!Sched.steal}).

    Termination detection: [size] (queued states) and [inflight] (states
    being executed) are process-wide atomics; [inflight] is raised before
    a pop and lowered only after forked children are pushed, so
    {!quiescent} never fires while a state that might still fork is in
    motion. *)

type t

val create :
  workers:int ->
  max_states:int ->
  strategy:Sched.strategy ->
  priority:(Symstate.t -> int) ->
  t

val n_workers : t -> int
val size : t -> int
val steals : t -> int
(** Successful cross-worker steals since creation. *)

val dropped : t -> int
(** States rejected by the [max_states] cap. *)

val push : t -> worker:int -> Symstate.t -> bool
(** Add a freshly forked state to [worker]'s queue; [false] if the
    [max_states] cap rejected it (caller retires the state). *)

val requeue : t -> worker:int -> Symstate.t -> unit
(** Re-add a quantum-expired state ({!Sched.requeue} semantics). The
    [max_states] cap does not apply: the state is already admitted and
    dropping it would silently lose a live path. *)

val push_any : t -> Symstate.t -> bool
(** Seed a state round-robin across workers (used between phases, before
    workers exist). *)

val pick : t -> worker:int -> Symstate.t option
(** Pop from the own queue or steal; [Some] means the caller now holds an
    inflight state and {b must} call {!task_done} after executing it (and
    after pushing any children). [None] means no work was available at
    this instant — not necessarily termination; check {!quiescent}. A
    fault raised by the priority function propagates with the inflight
    counter restored, so a crashing worker cannot wedge termination
    detection. *)

val remove : t -> (Symstate.t -> bool) -> Symstate.t list
(** Remove every queued state matching the predicate (inflight states
    are not candidates); survivors keep their order. Used by the
    resource governor to retire states under memory pressure. *)

val task_done : t -> unit
val quiescent : t -> bool

val iter : t -> (Symstate.t -> unit) -> unit
(** Visit every queued state (each queue under its lock); inflight states
    are not visited. *)

val rehome : t -> from_:int -> to_:int -> int
(** Move every state queued on [from_]'s queue to [to_]'s queue,
    preserving them for [to_]'s strategy ({!Sched.requeue} semantics).
    [size] is unchanged throughout, so termination detection never sees
    an intermediate dip. Returns the number of states moved. Used by the
    dead-worker reaper to rescue the queue of a crashed domain. *)

val queue_length : t -> worker:int -> int
(** Length of one worker's queue, read without its lock (staleness only
    costs a redundant reaper check). *)

val drain_all : t -> Symstate.t list
(** Remove every queued state (worker-index order). Only sound once all
    workers have stopped. *)

(** {1 Checkpointing}

    Dumps are only meaningful at quiescent points — an inflight state
    would be missing from the checkpoint. *)

val dump_queue : t -> worker:int -> (Symstate.t * int * int) list * int
(** One worker queue's {!Sched.dump_entries}. Non-destructive. *)

val restore_queue :
  t -> worker:int -> (Symstate.t * int * int) list -> hseq:int -> unit
(** Refill one (empty) worker queue and account the states in [size]. *)

val rr_cursor : t -> int
(** The round-robin seeding cursor, for checkpoints. *)

val restore_counters : t -> steals:int -> dropped:int -> rr:int -> unit
(** Restore the statistics and seeding cursor of a fresh frontier. *)
