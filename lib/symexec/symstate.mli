(** A symbolic execution state: conceptually a complete system snapshot
    (§4.1.2) — CPU registers holding expressions, copy-on-write symbolic
    memory, the path condition, a forked copy of the kernel state, the
    stack of pending interrupt continuations, and the execution trace. *)

module Expr = Ddt_solver.Expr

type crash = {
  c_code : string;
  c_msg : string;
  c_pc : int;
}

type status =
  | Returned of int            (** invocation finished; concretized r0 *)
  | Crashed of crash
  | Discarded of string
  | Exhausted                  (** step budget or fuel ran out *)

(** Saved CPU context for nested (interrupt) driver invocations. *)
type saved_ctx = {
  s_regs : Expr.t array;
  s_pc : int;
  s_int : bool;
}

type post_action =
  | Pa_after_isr of saved_ctx * int    (** saved context, saved IRQL *)
  | Pa_after_dpc of saved_ctx * int
  | Pa_after_timer of saved_ctx * int

(** An open merge token this state is committed to: when the state
    reaches [mt_pc] (its branch's reconvergence point), it reports to
    the merge pool ({!Merge}) instead of executing on. Forking under an
    open token commits both children, so a state carries a stack of
    tags — innermost (most recently opened) token first. *)
type merge_tag = {
  mt_token : int;
  mt_pc : int;
}

type t = {
  id : int;
  parent_id : int;
  regs : Expr.t array;
  mutable pc : int;
  mutable int_enabled : bool;
  mem : Symmem.t;
  mutable constraints : Expr.t list;
  ks : Ddt_kernel.Kstate.t;
  mutable pending : post_action list;
  mutable trace : Ddt_trace.Event.t list;       (** newest first *)
  mutable choices : (string * string) list;     (** annotation decisions *)
  mutable sym_inputs : (Expr.var * string) list;
  mutable injections : int;
  mutable injected_sites : int list;
  mutable steps : int;
  mutable last_block : int;
  (** absolute address of the last basic-block leader this state executed
      (0 before the first); copied to children on fork. The scheduler's
      priority functions read it lock-free — a plain int field the owning
      worker writes. *)
  mutable status : status option;
  mutable entry_name : string;
  mutable depth : int;                          (** fork depth *)
  mutable replay_inputs : (string * int) list;
  (** replay mode: pending (name, value) pins, oldest first *)
  mutable replay_choices : (string * string) list;
  (** replay mode: pending (api, alternative) decisions, oldest first *)
  mutable session : Ddt_solver.Incr.session option;
  (** incremental solver session mirroring [constraints]; shared with
      forked children by reference (sessions re-sync by physical list
      identity) and rebuilt when the state migrates to another domain *)
  mutable pinned : Expr.t list;
  (** replay-mode pin constraints (a subset of [constraints], physically)
      — force-included when concretizing over a relevant slice *)
  mutable tags : merge_tag list;
  (** open merge tokens, innermost first; shared structurally with
      children on fork (the engine tells the pool about the new carrier
      via {!Merge.note_fork}) *)
}

val create : id:int -> mem:Symmem.t -> ks:Ddt_kernel.Kstate.t -> t
val fork : t -> id:int -> t

(** {1 Snapshots} *)

type image
(** The marshal-safe projection of a state: every field as plain data,
    with [mem] projected via {!Symmem.image} and [session] dropped (the
    incremental solver session is a cache; the Incr migration path
    rebuilds it from [constraints] on first use). The sibling-shared
    list tails that the merge pool matches by physical identity are
    carried as-is, so images marshalled together keep that sharing. *)

val to_image : t -> image
(** Non-destructive; the image aliases the live state's data. *)

val of_image :
  base:Ddt_dvm.Mem.t ->
  symdev:Ddt_hw.Symdev.t option ->
  image ->
  t
(** Rebuild a state over the session's base image and device, with no
    solver session (rebuilt lazily) and a no-op sym-read hook (the
    engine reinstalls its own). *)
val record : t -> Ddt_trace.Event.t -> unit
val add_constraint : t -> Expr.t -> unit
val reg_get : t -> int -> Expr.t
val reg_set : t -> int -> Expr.t -> unit
val terminated : t -> bool
val pp_status : Format.formatter -> status -> unit
