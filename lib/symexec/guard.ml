(* Fault boundary and quarantine for the exploration engine.

   The DDT pitch is surviving pathological drivers, so the engine itself
   must survive its own faults: an exception escaping a state's step
   loop, a worker domain dying, or a solver budget running dry must not
   kill the session. The guard collects each such event as an [incident]
   — always carrying the offending state's replayable script, keeping
   the paper's "every finding comes with a trace" contract for engine
   faults too — and the engine routes around it (quarantine the state,
   respawn the worker, retry the query). *)

module Replay = Ddt_trace.Replay

type incident_kind =
  | Worker_crash       (* a worker domain's loop died; state requeued *)
  | State_fault        (* a state's own execution faulted; state retired *)
  | Solver_exhaustion  (* a solver budget ran out during a state's quantum *)

let kind_label = function
  | Worker_crash -> "worker-crash"
  | State_fault -> "state-fault"
  | Solver_exhaustion -> "solver-exhaustion"

type incident = {
  inc_kind : incident_kind;
  inc_worker : int;         (* frontier worker slot that hit the fault *)
  inc_state_id : int;       (* state in flight (0 = none attributable) *)
  inc_entry : string;       (* entry point the state was exploring *)
  inc_pc : int;             (* pc at quarantine time *)
  inc_message : string;     (* printed exception / exhaustion summary *)
  inc_replay : Replay.script;
}

(* Deterministic fault injection for the chaos harness. Periods count
   events on the engine's own atomics, so a single-worker run injects at
   exactly the same points every time. 0 disables an injection. *)
type chaos = {
  chaos_worker_crash_period : int;
      (* raise in the worker loop every Nth frontier pick *)
  chaos_solver_exhaust_period : int;
      (* force every Nth uncached group solve's first attempt Unknown *)
  chaos_pressure_words : int;
      (* inflate the live-words reading the governor sees *)
}

let no_chaos =
  { chaos_worker_crash_period = 0; chaos_solver_exhaust_period = 0;
    chaos_pressure_words = 0 }

exception Chaos_crash

type t = {
  mu : Mutex.t;
  mutable incidents : incident list;
  solver_flagged : (int, unit) Hashtbl.t;
      (* state ids already carrying a solver-exhaustion incident, so a
         state that exhausts budgets on many quanta reports once *)
  restarts : int Atomic.t;
  crash_ticks : int Atomic.t;    (* chaos worker-crash ordinal *)
  chaos_solver_ticks : int Atomic.t;
}

let create () =
  {
    mu = Mutex.create ();
    incidents = [];
    solver_flagged = Hashtbl.create 16;
    restarts = Atomic.make 0;
    crash_ticks = Atomic.make 0;
    chaos_solver_ticks = Atomic.make 0;
  }

let record t inc =
  Mutex.lock t.mu;
  t.incidents <- inc :: t.incidents;
  Mutex.unlock t.mu

(* At most one solver incident per state: [true] means the caller owns
   the report for this state id. *)
let claim_solver_flag t id =
  Mutex.lock t.mu;
  let fresh = not (Hashtbl.mem t.solver_flagged id) in
  if fresh then Hashtbl.replace t.solver_flagged id ();
  Mutex.unlock t.mu;
  fresh

let incidents t =
  Mutex.lock t.mu;
  let l = t.incidents in
  Mutex.unlock t.mu;
  (* Deterministic report order regardless of which worker recorded
     first: by state id, then kind, then worker slot. *)
  List.sort
    (fun a b ->
      match compare a.inc_state_id b.inc_state_id with
      | 0 -> (
          match compare a.inc_kind b.inc_kind with
          | 0 -> compare a.inc_worker b.inc_worker
          | c -> c)
      | c -> c)
    l

let incident_count t =
  Mutex.lock t.mu;
  let n = List.length t.incidents in
  Mutex.unlock t.mu;
  n

let note_restart t = Atomic.incr t.restarts
let restarts t = Atomic.get t.restarts

(* Bounded exponential backoff before a worker restart: long enough to
   let a transient cause (allocation spike, co-scheduled domain) clear,
   short enough that the frontier never idles visibly. *)
let backoff attempt =
  Unix.sleepf (min 0.05 (0.002 *. float_of_int (1 lsl min attempt 8)))

(* Chaos triggers ------------------------------------------------------ *)

let maybe_crash t chaos =
  match chaos with
  | None -> ()
  | Some c ->
      if c.chaos_worker_crash_period > 0 then begin
        let n = Atomic.fetch_and_add t.crash_ticks 1 + 1 in
        if n mod c.chaos_worker_crash_period = 0 then raise Chaos_crash
      end

(* The solver-side injection closure handed to [Solver.set_chaos_exhaust]:
   fires on every Nth uncached group solve process-wide. *)
let solver_chaos_fn t chaos =
  match chaos with
  | Some c when c.chaos_solver_exhaust_period > 0 ->
      Some
        (fun () ->
          let n = Atomic.fetch_and_add t.chaos_solver_ticks 1 + 1 in
          n mod c.chaos_solver_exhaust_period = 0)
  | _ -> None

let pressure_boost chaos =
  match chaos with Some c -> c.chaos_pressure_words | None -> 0

(* Fault classification ------------------------------------------------- *)

(* Exceptions the state-level boundary refuses to absorb: the chaos
   crash must reach the worker supervisor (that is the path under test),
   and a deliberate exit is not a fault. *)
let absorbable = function
  | Chaos_crash -> false
  | Stdlib.Exit -> false
  | _ -> true

(* Checkpointing ------------------------------------------------------- *)

(* Everything in the guard is data except the mutex, so a dump is a
   plain record. The incidents list keeps its recording order (newest
   first) so a resumed run's [incidents] sort sees the same multiset. *)
type dump = {
  gd_incidents : incident list;
  gd_solver_flagged : int list;
  gd_restarts : int;
  gd_crash_ticks : int;
  gd_chaos_solver_ticks : int;
}

let dump t =
  Mutex.lock t.mu;
  let incidents = t.incidents in
  let flagged = Hashtbl.fold (fun id () acc -> id :: acc) t.solver_flagged [] in
  Mutex.unlock t.mu;
  { gd_incidents = incidents;
    gd_solver_flagged = List.sort compare flagged;
    gd_restarts = Atomic.get t.restarts;
    gd_crash_ticks = Atomic.get t.crash_ticks;
    gd_chaos_solver_ticks = Atomic.get t.chaos_solver_ticks }

let restore t d =
  Mutex.lock t.mu;
  t.incidents <- d.gd_incidents;
  Hashtbl.reset t.solver_flagged;
  List.iter (fun id -> Hashtbl.replace t.solver_flagged id ()) d.gd_solver_flagged;
  Mutex.unlock t.mu;
  Atomic.set t.restarts d.gd_restarts;
  Atomic.set t.crash_ticks d.gd_crash_ticks;
  Atomic.set t.chaos_solver_ticks d.gd_chaos_solver_ticks

let describe exn =
  match exn with
  | Ddt_dvm.Interp.Fault (f, pc) ->
      Printf.sprintf "concrete interpreter fault at %#x: %s" pc
        (Ddt_dvm.Interp.string_of_fault f)
  | Stack_overflow -> "stack overflow"
  | Out_of_memory -> "out of memory"
  | Chaos_crash -> "injected worker crash (chaos)"
  | exn -> Printexc.to_string exn
