(* Dynamic state merging at post-dominators (veritesting-style).

   When a symbolic branch forks and the static merge-point map knows
   where the two arms reconverge, the engine opens a *merge token*: both
   children are tagged with (token, merge pc) and keep executing. A
   tagged state that reaches the merge pc *parks* in the pool instead of
   executing on; when every live carrier of the token has parked or
   died, the pool folds the arrivals — compatible states are fused into
   one, registers and COW memory lifted to [ite(cond_b, v_b, v_a)] over
   the disjoined path-condition suffixes, and the survivors go back to
   the frontier.

   Soundness does not lean on the post-dominator map: two states are
   only fused when they sit at the same pc with identical kernel
   context, replay pins, pending actions and checker-visible streams
   (all checked here), and their guards are disjoint by construction —
   every pair of fork-tree paths diverging from the token's base carries
   complementary branch constraints in both suffixes. The map only
   decides *where* tokens are worth opening.

   Tokens nest: forking under an open token commits both children to it
   (the tag list is a stack, innermost first), and a fold that absorbs a
   state releases that state's outer tokens too, which can cascade
   further folds — all run to fixpoint under the single pool lock, with
   the results handed back as an [outcome] record so the caller can
   retire absorbed states and requeue survivors *outside* the lock.

   Cost heuristic: a fold refuses a pair whose symbolic stores diverge
   too widely (COW diff over 256 addresses, more than 64 lifted values,
   oversized guards), and per-branch token/fused/refused counters bias
   future decisions — a branch whose merges keep getting refused stops
   opening tokens until fusions catch back up, falling back to plain
   forking. *)

module St = Symstate
module Expr = Ddt_solver.Expr
module Event = Ddt_trace.Event

type token = {
  tk_id : int;
  tk_branch_pc : int;             (* branch instruction, for heuristics *)
  tk_merge_pc : int;
  tk_base : Expr.t list;          (* constraint-list cell captured before
                                     the fork: the physical sync point
                                     suffix extraction walks to *)
  tk_kcalls : int;                (* kernel-call count at open; an arm
                                     that called the kernel is refused *)
  mutable tk_outstanding : int;   (* live carriers not yet parked *)
  mutable tk_parked : St.t list;
}

type bstat = {
  mutable bs_tokens : int;
  mutable bs_fused : int;
  mutable bs_refused : int;
}

type t = {
  lock : Mutex.t;
  tokens : (int, token) Hashtbl.t;
  branch_stats : (int, bstat) Hashtbl.t;
  weights : (int, int) Hashtbl.t;
      (* survivor state id -> states ever absorbed into it (transitive);
         each later fork of that survivor is that many forks avoided *)
  mutable next_token : int;
  mutable ever_opened : bool;
  mutable n_merged : int;
  mutable n_ites : int;
  mutable n_forks_avoided : int;
  mutable n_refused : int;
}

type outcome = {
  mo_requeue : St.t list;        (* fold survivors, tag popped *)
  mo_absorbed : St.t list;       (* fused away: retire unreported *)
}

type arrival =
  | A_continue
  | A_parked of outcome

let empty_outcome = { mo_requeue = []; mo_absorbed = [] }

let create () =
  {
    lock = Mutex.create ();
    tokens = Hashtbl.create 64;
    branch_stats = Hashtbl.create 64;
    weights = Hashtbl.create 64;
    next_token = 0;
    ever_opened = false;
    n_merged = 0;
    n_ites = 0;
    n_forks_avoided = 0;
    n_refused = 0;
  }

let bstat t pc =
  match Hashtbl.find_opt t.branch_stats pc with
  | Some b -> b
  | None ->
      let b = { bs_tokens = 0; bs_fused = 0; bs_refused = 0 } in
      Hashtbl.replace t.branch_stats pc b;
      b

(* Widest nesting we will commit a state to: a loop that opens a token
   per iteration resolves each at the join, so real stacks stay shallow;
   deeper ones mean the merge points are not being reached. *)
let max_nesting = 16

(* --- cost / compatibility limits ------------------------------------------ *)

let max_mem_diff = 256   (* differing COW addresses before we refuse *)
let max_ites = 64        (* lifted values per fused pair *)
let max_guard_size = 160 (* combined node count of the two guards *)

(* The constraint suffix a state accumulated since the token opened:
   newest-first walk of the list down to the physically captured base
   cell. [None] if the base was rebuilt out from under us. *)
let suffix_to base cs =
  let rec go acc l =
    if l == base then Some acc
    else match l with [] -> None | c :: rest -> go (c :: acc) rest
  in
  (* accumulate oldest-first so the conjunction reads in path order *)
  go [] cs

let conj = function
  | [] -> Expr.tru
  | c :: rest -> List.fold_left Expr.and1 c rest

(* Fuse [b] into [a] (the survivor), or refuse. Only mutates [a] after
   every check has passed. *)
let try_fuse t tok (a : St.t) (b : St.t) =
  let module K = Ddt_kernel.Kstate in
  let compatible =
    a.St.entry_name = b.St.entry_name
    && a.St.int_enabled = b.St.int_enabled
    && a.St.pending == b.St.pending
    && a.St.choices == b.St.choices
    && a.St.injected_sites == b.St.injected_sites
    && a.St.sym_inputs == b.St.sym_inputs
    && a.St.pinned == b.St.pinned
    && a.St.replay_inputs == b.St.replay_inputs
    && a.St.replay_choices == b.St.replay_choices
    && K.kcall_count a.St.ks = tok.tk_kcalls
    && K.kcall_count b.St.ks = tok.tk_kcalls
    && Expr.equal a.St.regs.(Ddt_dvm.Isa.sp) b.St.regs.(Ddt_dvm.Isa.sp)
  in
  if not compatible then false
  else
    match
      ( suffix_to tok.tk_base a.St.constraints,
        suffix_to tok.tk_base b.St.constraints,
        Symmem.cow_diff a.St.mem b.St.mem )
    with
    | None, _, _ | _, None, _ | _, _, None -> false
    | Some sa, Some sb, Some addrs when List.length addrs <= max_mem_diff ->
        let ga = conj sa and gb = conj sb in
        if Expr.size ga + Expr.size gb > max_guard_size then false
        else begin
          let reg_diffs = ref [] in
          Array.iteri
            (fun r va ->
              if not (Expr.equal va b.St.regs.(r)) then
                reg_diffs := r :: !reg_diffs)
            a.St.regs;
          let mem_diffs =
            List.filter_map
              (fun addr ->
                let va = Symmem.read_u8 a.St.mem addr
                and vb = Symmem.read_u8 b.St.mem addr in
                if Expr.equal va vb then None else Some (addr, va, vb))
              addrs
          in
          if List.length !reg_diffs + List.length mem_diffs > max_ites then
            false
          else begin
            (* all checks passed: lift and absorb *)
            a.St.constraints <- Expr.or1 ga gb :: tok.tk_base;
            List.iter
              (fun r ->
                a.St.regs.(r) <- Expr.ite gb b.St.regs.(r) a.St.regs.(r);
                t.n_ites <- t.n_ites + 1)
              !reg_diffs;
            List.iter
              (fun (addr, va, vb) ->
                Symmem.write_u8 a.St.mem addr (Expr.ite gb vb va);
                t.n_ites <- t.n_ites + 1)
              mem_diffs;
            a.St.steps <- max a.St.steps b.St.steps;
            a.St.depth <- max a.St.depth b.St.depth;
            a.St.injections <- max a.St.injections b.St.injections;
            St.record a
              (Event.E_merge
                 { pc = tok.tk_merge_pc; absorbed = b.St.id; cond = gb });
            t.n_merged <- t.n_merged + 1;
            true
          end
        end
    | _ -> false

(* Fold every token in [work] (outstanding reached 0), cascading into
   outer tokens released by absorbed states. Runs under [t.lock]. *)
let fold_worklist t work =
  let queue = Queue.create () in
  List.iter (fun tok -> Queue.add tok queue) work;
  let requeue = ref [] and absorbed = ref [] in
  while not (Queue.is_empty queue) do
    let tok = Queue.pop queue in
    Hashtbl.remove t.tokens tok.tk_id;
    let arrivals =
      List.sort (fun x y -> compare x.St.id y.St.id) tok.tk_parked
    in
    tok.tk_parked <- [];
    (* pop this token's tag from every arrival *)
    List.iter
      (fun st ->
        match st.St.tags with
        | tag :: rest when tag.St.mt_token = tok.tk_id -> st.St.tags <- rest
        | _ -> ())
      arrivals;
    let bs = bstat t tok.tk_branch_pc in
    let survivors = ref [] in
    List.iter
      (fun st ->
        let rec attach = function
          | [] ->
              if !survivors <> [] then begin
                t.n_refused <- t.n_refused + 1;
                bs.bs_refused <- bs.bs_refused + 1
              end;
              survivors := !survivors @ [ st ]
          | s :: rest ->
              if try_fuse t tok s st then begin
                bs.bs_fused <- bs.bs_fused + 1;
                (* credit the survivor with everything [st] carried *)
                let w_st =
                  match Hashtbl.find_opt t.weights st.St.id with
                  | Some w -> w
                  | None -> 0
                in
                let w_s =
                  match Hashtbl.find_opt t.weights s.St.id with
                  | Some w -> w
                  | None -> 0
                in
                Hashtbl.replace t.weights s.St.id (w_s + w_st + 1);
                Hashtbl.remove t.weights st.St.id;
                (* the absorbed state's outer tokens lose a carrier *)
                List.iter
                  (fun (tag : St.merge_tag) ->
                    match Hashtbl.find_opt t.tokens tag.St.mt_token with
                    | Some outer ->
                        outer.tk_outstanding <- outer.tk_outstanding - 1;
                        if outer.tk_outstanding = 0 then
                          Queue.add outer queue
                    | None -> ())
                  st.St.tags;
                st.St.tags <- [];
                absorbed := st :: !absorbed
              end
              else attach rest
        in
        attach !survivors)
      arrivals;
    requeue := !survivors @ !requeue
  done;
  { mo_requeue = !requeue; mo_absorbed = !absorbed }

(* --- engine-facing operations --------------------------------------------- *)

(* Open a token for a fresh two-way fork at [branch_pc] whose arms
   reconverge at [merge_pc]. [base] is the parent's constraint list as
   captured *before* the fork added either arm's constraint. Returns
   false (and tags nothing) when the per-branch history says merging
   here keeps getting refused. *)
let open_token t ~branch_pc ~merge_pc ~base (a : St.t) (b : St.t) =
  Mutex.lock t.lock;
  let bs = bstat t branch_pc in
  let ok =
    bs.bs_refused <= (2 * bs.bs_fused) + 8
    && List.length a.St.tags < max_nesting
  in
  if ok then begin
    t.ever_opened <- true;
    let id = t.next_token in
    t.next_token <- id + 1;
    let tok =
      { tk_id = id; tk_branch_pc = branch_pc; tk_merge_pc = merge_pc;
        tk_base = base; tk_kcalls = Ddt_kernel.Kstate.kcall_count a.St.ks;
        tk_outstanding = 2; tk_parked = [] }
    in
    Hashtbl.replace t.tokens id tok;
    bs.bs_tokens <- bs.bs_tokens + 1;
    let tag = { St.mt_token = id; mt_pc = merge_pc } in
    a.St.tags <- tag :: a.St.tags;
    b.St.tags <- tag :: b.St.tags
  end;
  Mutex.unlock t.lock;
  ok

(* Every engine fork: a child inherits its parent's tags (one more live
   carrier per open token) and its merge weight (forks it performs were
   avoided once per state ever absorbed into this lineage). Call with
   the parent's tag list already shared into the child. *)
let note_fork t (parent : St.t) (child : St.t) =
  if t.ever_opened then begin
    Mutex.lock t.lock;
    List.iter
      (fun (tag : St.merge_tag) ->
        match Hashtbl.find_opt t.tokens tag.St.mt_token with
        | Some tok -> tok.tk_outstanding <- tok.tk_outstanding + 1
        | None -> ())
      parent.St.tags;
    (match Hashtbl.find_opt t.weights parent.St.id with
     | Some w when w > 0 ->
         t.n_forks_avoided <- t.n_forks_avoided + w;
         Hashtbl.replace t.weights child.St.id w
     | _ -> ());
    Mutex.unlock t.lock;
  end

(* The state stands at its innermost token's merge pc. Park it; if it
   was the last carrier out, fold now and hand back the results. The
   caller owns requeue/retire of the outcome (outside our lock). *)
let on_arrival t (st : St.t) =
  Mutex.lock t.lock;
  let r =
    match st.St.tags with
    | [] -> A_continue
    | tag :: rest -> (
        match Hashtbl.find_opt t.tokens tag.St.mt_token with
        | None ->
            (* stale tag (token already folded away): drop and go on *)
            st.St.tags <- rest;
            A_continue
        | Some tok ->
            tok.tk_parked <- st :: tok.tk_parked;
            tok.tk_outstanding <- tok.tk_outstanding - 1;
            if tok.tk_outstanding = 0 then
              A_parked (fold_worklist t [ tok ])
            else A_parked empty_outcome)
  in
  Mutex.unlock t.lock;
  r

(* A carrier died (crashed, returned, was discarded) without reaching
   its merge points: release every token it carried; the last release
   folds whatever siblings already parked. *)
let note_dead t (st : St.t) =
  if not t.ever_opened then empty_outcome
  else begin
    Mutex.lock t.lock;
    Hashtbl.remove t.weights st.St.id;
    let r =
      if st.St.tags = [] then empty_outcome
      else begin
        let tags = st.St.tags in
        st.St.tags <- [];
        let work = ref [] in
        List.iter
          (fun (tag : St.merge_tag) ->
            match Hashtbl.find_opt t.tokens tag.St.mt_token with
            | Some tok ->
                tok.tk_outstanding <- tok.tk_outstanding - 1;
                if tok.tk_outstanding = 0 then work := tok :: !work
            | None -> ())
          tags;
        if !work = [] then empty_outcome else fold_worklist t !work
      end
    in
    Mutex.unlock t.lock;
    r
  end

(* End-of-run safety valve: hand back every parked state (tags cleared,
   tokens dropped) so the session's final drain can retire them. With
   the outcome discipline above this is normally empty. *)
let drain_parked t =
  Mutex.lock t.lock;
  let parked =
    Hashtbl.fold (fun _ tok acc -> tok.tk_parked @ acc) t.tokens []
    (* sorted: hash-order here would leak into the final retirement
       order, which must not depend on table internals (a resumed run
       rebuilds the table and would iterate differently) *)
    |> List.sort (fun a b -> compare a.St.id b.St.id)
  in
  List.iter (fun st -> st.St.tags <- []) parked;
  Hashtbl.reset t.tokens;
  Mutex.unlock t.lock;
  parked

let stats t =
  Mutex.lock t.lock;
  let r = (t.n_merged, t.n_ites, t.n_forks_avoided, t.n_refused) in
  Mutex.unlock t.lock;
  r

(* --- checkpoint dump/restore ---------------------------------------------- *)
(* The pool minus its mutex, with parked states projected through ['a]
   (the caller passes [St.to_image]/[St.of_image]) so the dump can
   travel in the same Marshal blob as the frontier states — which is
   also what preserves the physical [tk_base]-is-a-suffix-of-the-
   carriers'-constraints identity that [suffix_to] depends on. *)

type 'a token_dump = {
  td_id : int;
  td_branch_pc : int;
  td_merge_pc : int;
  td_base : Expr.t list;
  td_kcalls : int;
  td_outstanding : int;
  td_parked : 'a list;
}

type 'a dump = {
  md_tokens : 'a token_dump list;         (* sorted by td_id *)
  md_branch_stats : (int * (int * int * int)) list;
  md_weights : (int * int) list;
  md_next_token : int;
  md_ever_opened : bool;
  md_merged : int;
  md_ites : int;
  md_forks_avoided : int;
  md_refused : int;
}

let dump t ~f =
  Mutex.lock t.lock;
  let tokens =
    Hashtbl.fold
      (fun _ tok acc ->
        {
          td_id = tok.tk_id;
          td_branch_pc = tok.tk_branch_pc;
          td_merge_pc = tok.tk_merge_pc;
          td_base = tok.tk_base;
          td_kcalls = tok.tk_kcalls;
          td_outstanding = tok.tk_outstanding;
          td_parked = List.map f tok.tk_parked;
        }
        :: acc)
      t.tokens []
    |> List.sort (fun a b -> compare a.td_id b.td_id)
  in
  let branch_stats =
    Hashtbl.fold
      (fun pc b acc -> (pc, (b.bs_tokens, b.bs_fused, b.bs_refused)) :: acc)
      t.branch_stats []
    |> List.sort compare
  in
  let weights =
    Hashtbl.fold (fun id w acc -> (id, w) :: acc) t.weights []
    |> List.sort compare
  in
  let d =
    {
      md_tokens = tokens;
      md_branch_stats = branch_stats;
      md_weights = weights;
      md_next_token = t.next_token;
      md_ever_opened = t.ever_opened;
      md_merged = t.n_merged;
      md_ites = t.n_ites;
      md_forks_avoided = t.n_forks_avoided;
      md_refused = t.n_refused;
    }
  in
  Mutex.unlock t.lock;
  d

let restore t ~f d =
  Mutex.lock t.lock;
  Hashtbl.reset t.tokens;
  Hashtbl.reset t.branch_stats;
  Hashtbl.reset t.weights;
  List.iter
    (fun td ->
      Hashtbl.replace t.tokens td.td_id
        {
          tk_id = td.td_id;
          tk_branch_pc = td.td_branch_pc;
          tk_merge_pc = td.td_merge_pc;
          tk_base = td.td_base;
          tk_kcalls = td.td_kcalls;
          tk_outstanding = td.td_outstanding;
          tk_parked = List.map f td.td_parked;
        })
    d.md_tokens;
  List.iter
    (fun (pc, (tk, fu, re)) ->
      Hashtbl.replace t.branch_stats pc
        { bs_tokens = tk; bs_fused = fu; bs_refused = re })
    d.md_branch_stats;
  List.iter (fun (id, w) -> Hashtbl.replace t.weights id w) d.md_weights;
  t.next_token <- d.md_next_token;
  t.ever_opened <- d.md_ever_opened;
  t.n_merged <- d.md_merged;
  t.n_ites <- d.md_ites;
  t.n_forks_avoided <- d.md_forks_avoided;
  t.n_refused <- d.md_refused;
  Mutex.unlock t.lock

