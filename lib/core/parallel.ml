module Report = Ddt_checkers.Report
module Exec = Ddt_symexec.Exec
module Sched = Ddt_symexec.Sched
module Solver = Ddt_solver.Solver

type mode = Portfolio | Shared_frontier

let mode_label = function
  | Portfolio -> "portfolio"
  | Shared_frontier -> "shared-frontier"

type result = {
  p_bugs : Report.bug list;
  p_mode : mode;
  p_jobs : int;
  p_wall_time : float;
  p_sequential_time : float;
  p_per_job : (string * int * float) list;
  p_steals : int;
  p_cross_hits : int;
}

let strategy_label = function
  | Sched.Min_touch -> "min-touch"
  | Sched.Min_dist -> "min-dist"
  | Sched.Dfs -> "dfs"
  | Sched.Bfs -> "bfs"
  | Sched.Random_pick seed -> Printf.sprintf "random-%d" seed

(* Portfolio worker i gets a distinct exploration flavor. *)
let variant (cfg : Config.t) i =
  if i = 0 then cfg
  else
    let strategy =
      match i mod 3 with
      | 1 -> Sched.Bfs
      | 2 -> Sched.Random_pick (1000 + i)
      | _ -> Sched.Dfs
    in
    { cfg with
      Config.exec_config = { cfg.Config.exec_config with Exec.strategy } }

let default_jobs () = min 4 (Domain.recommended_domain_count ())

(* Merge per-worker bug lists in worker-index order with key-based dedup,
   so the merged report is a deterministic function of what each worker
   found — independent of which domain happened to finish first. *)
let merge_bugs outcomes =
  let outcomes =
    List.sort (fun (i, _, _) (j, _, _) -> compare i j) outcomes
  in
  let seen = Hashtbl.create 32 in
  let merged = ref [] in
  List.iter
    (fun (_, _, (r : Session.result)) ->
      List.iter
        (fun b ->
          if not (Hashtbl.mem seen b.Report.b_key) then begin
            Hashtbl.add seen b.Report.b_key ();
            merged := b :: !merged
          end)
        r.Session.r_bugs)
    outcomes;
  (List.rev !merged, outcomes)

let run_portfolio jobs (cfg : Config.t) =
  let t0 = Unix.gettimeofday () in
  let run_one i =
    let c = variant cfg i in
    let t = Unix.gettimeofday () in
    let r = Session.run c in
    (i,
     strategy_label c.Config.exec_config.Exec.strategy,
     r,
     Unix.gettimeofday () -. t)
  in
  (* A portfolio job is an independent session: if one dies, the others'
     findings are still valid, so a crashed job is logged and skipped
     rather than re-raised into the caller. With every job dead there is
     nothing to merge, and the original exception propagates. *)
  let join_safe i join =
    match join () with
    | r -> Some r
    | exception exn ->
        Printf.eprintf "ddt: portfolio job %d died: %s (skipped)\n%!" i
          (Printexc.to_string exn);
        None
  in
  let raw =
    match jobs with
    | 1 -> [ run_one 0 ]
    | _ ->
        let domains =
          List.init (jobs - 1) (fun i ->
              Domain.spawn (fun () -> run_one (i + 1)))
        in
        let mine = join_safe 0 (fun () -> run_one 0) in
        let rest =
          List.mapi (fun i d -> join_safe (i + 1) (fun () -> Domain.join d))
            domains
        in
        (match List.filter_map Fun.id (mine :: rest) with
         | [] -> failwith "ddt: every portfolio job died"
         | ok -> ok)
  in
  let wall = Unix.gettimeofday () -. t0 in
  let outcomes = List.map (fun (i, l, r, t) -> (i, (l, t), r)) raw in
  let bugs, outcomes = merge_bugs outcomes in
  let steals =
    List.fold_left
      (fun acc (_, _, r) -> acc + r.Session.r_stats.Exec.st_steals)
      0 outcomes
  in
  (bugs, wall,
   List.fold_left (fun acc (_, (_, t), _) -> acc +. t) 0.0 outcomes,
   List.map
     (fun (_, (label, t), (r : Session.result)) ->
       (label, List.length r.Session.r_bugs, t))
     outcomes,
   steals)

let run_shared jobs (cfg : Config.t) =
  let cfg =
    { cfg with
      Config.exec_config = { cfg.Config.exec_config with Exec.jobs } }
  in
  let t0 = Unix.gettimeofday () in
  let r = Session.run cfg in
  let wall = Unix.gettimeofday () -. t0 in
  let label =
    Printf.sprintf "%s x%d"
      (strategy_label cfg.Config.exec_config.Exec.strategy) jobs
  in
  (r.Session.r_bugs, wall, wall,
   [ (label, List.length r.Session.r_bugs, wall) ],
   r.Session.r_stats.Exec.st_steals)

let test_driver ?jobs ?(mode = Shared_frontier) (cfg : Config.t) =
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  (* Force shared lazies before any domain spawns: the kernel API table
     is registered once, and the image must already be compiled. *)
  Ddt_kernel.Ndis.install ();
  Ddt_kernel.Portcls.install ();
  Ddt_kernel.Usb.install ();
  ignore cfg.Config.image;
  let s0 = Solver.stats () in
  let bugs, wall, seq, per_job, steals =
    match mode with
    | Portfolio -> run_portfolio jobs cfg
    | Shared_frontier -> run_shared jobs cfg
  in
  let sd = Solver.diff_stats (Solver.stats ()) s0 in
  {
    p_bugs = bugs;
    p_mode = mode;
    p_jobs = jobs;
    p_wall_time = wall;
    p_sequential_time = seq;
    p_per_job = per_job;
    p_steals = steals;
    p_cross_hits = sd.Solver.s_cache_cross_worker_hits;
  }

let speedup r =
  if r.p_wall_time <= 0.0 then 1.0
  else r.p_sequential_time /. r.p_wall_time
