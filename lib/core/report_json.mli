(** Versioned machine-readable session reports.

    The summary record carries only ints and strings (percentages are
    derived at print time), so emitting and re-parsing a report yields a
    structurally equal value — the round-trip property the schema test
    pins. Consumers check {!schema_version}; {!of_string} rejects
    documents from any other version rather than guessing. *)

val schema_version : int

type bug_row = {
  jb_kind : string;
  jb_key : string;
  jb_entry : string;
  jb_pc : int;
  jb_message : string;
}

type static_row = {
  js_rule : string;
  js_func : string;
  js_pos : int;
  js_message : string;
  js_severity : string;
  (** "static" | "static-unconfirmed" (schema 5) *)
  js_confirm : string;
  (** "n/a" | "unconfirmed" | "confirmed" (schema 5) *)
  js_confirmed_by : string;
  (** key of the witnessing dynamic bug, or "" (schema 5) *)
}

type incident_row = {
  ji_kind : string;     (** "worker-crash" | "state-fault" | "solver-exhaustion" *)
  ji_worker : int;      (** worker id, or -1 for a dead domain *)
  ji_state_id : int;    (** 0 when no state was in flight *)
  ji_entry : string;
  ji_pc : int;
  ji_message : string;
  ji_replay : string;
  (** the quarantined state's replay script, serialized with
      [Ddt_trace.Replay.to_string] *)
}

type summary = {
  j_schema : int;
  j_driver : string;
  j_bugs : bug_row list;
  j_static : static_row list;
  j_total_blocks : int;        (** linear-sweep block count *)
  j_reachable_blocks : int;    (** ICFG universe size *)
  j_covered_blocks : int;
  j_covered_reachable : int;
  j_never_reached : int list;  (** sorted image-relative leaders *)
  j_invocations : int;
  j_finished_states : int;
  j_paths_to_first_bug : int option;
  j_states_dropped : int;      (** states shed at the hard max_states cap *)
  j_soft_retired : int;        (** states the governor concretized and retired *)
  j_incidents : incident_row list;
  j_dbt_blocks : int;          (** superblocks compiled (schema 3) *)
  j_dbt_superblocks : int;     (** chained constituents beyond heads *)
  j_dbt_guard_bails : int;     (** symbolic-operand guard bailouts *)
  j_dbt_decompiled : int;      (** superblocks de-compiled after chronic bails *)
  j_dbt_compiled_steps : int;  (** instructions executed via compiled blocks *)
  j_total_steps : int;         (** fraction denominator for the above *)
  j_merged_states : int;       (** states fused at post-dominators (schema 4) *)
  j_merge_ites : int;          (** registers/bytes lifted to ite at merges *)
  j_merge_forks_avoided : int; (** forks the fused states would have spawned *)
}

val of_result : Session.result -> summary

val to_string : summary -> string
(** One-line JSON document. *)

val of_string : string -> summary option
(** Parse a document emitted by {!to_string}. [None] on malformed input
    or a schema-version mismatch. *)

val statics_to_string :
  driver:string -> Ddt_checkers.Report.static_finding list -> string
(** Standalone static-analysis report (for [ddt_cli analyze --json]):
    the schema version, driver name and static rows only. *)

val write_file : string -> summary -> (unit, string) result
(** Serialize with {!to_string} and write atomically (tmp + rename): a
    crash mid-write leaves either the previous file or the new one,
    never a torn document. [Error reason] on I/O failure. *)
