(** Resource governor: soft-cap graceful degradation for the
    exploration engine.

    The engine's hard [max_states] cap silently drops fresh forks — the
    worst victims, since they are the unexplored paths. The governor
    instead watches the engine's sampled resource picture
    ({!Ddt_symexec.Exec.pressure}: live states, copy-on-write chain
    depth, approximate heap residency) and asks the engine to
    concretize-and-retire a bounded number of the {e least promising}
    queued states whenever a soft cap is exceeded — deterministic victim
    selection, before the hard cap engages. Install via
    {!Ddt_symexec.Exec.set_governor}[ eng (decide t)]; [Session] does
    this when {!Config.t} carries limits. *)

type limits = {
  soft_states : int;       (** shed down toward this queued-state count;
                               [0] disables the state cap *)
  soft_cow_depth : int;    (** copy-on-write chain-depth cap; [0] = off *)
  soft_live_words : int;   (** live-heap words cap; [0] = off *)
  min_states : int;        (** never shed below this many queued states *)
  max_retire_per_trip : int;  (** retirement bound per governor trip *)
}

val default_limits : limits
(** [soft_states = 448] (below the engine's default hard cap of 512),
    heap cap 4M words, depth cap off, floor 4, at most 4 retirements per
    trip. *)

type t

val create : limits -> t
val limits : t -> limits

val decide : t -> Ddt_symexec.Exec.pressure -> int
(** The policy: how many states the engine should retire now. Thread-safe
    (the engine calls it from whichever worker samples pressure). *)

val trips : t -> int
(** Times the governor asked for at least one retirement. *)

val requested : t -> int
(** Total retirements requested (the engine may retire fewer if states
    were picked before removal). *)

(** {1 Checkpoint cadence}

    Durability pacing: the engine offers a checkpoint opportunity at
    every quiescent pick boundary; a cadence admits one every
    [every] engine steps. *)

type cadence

val cadence : int -> cadence
(** [cadence every]; [every <= 0] never admits a checkpoint. *)

val checkpoint_due : cadence -> now:int -> bool
(** [checkpoint_due c ~now] with [now] the engine's step counter;
    [true] (at most once per window) means "checkpoint now". *)

val checkpoints_taken : cadence -> int
