(** Parallel symbolic execution (the §6.1 direction: "we are exploring
    ways to mitigate this problem by running symbolic execution in
    parallel").

    Two modes:

    - {!Shared_frontier} (default) — {e one} test session whose fork
      tree is explored cooperatively by several OCaml 5 domains. The
      engine keeps a per-worker deque frontier with work stealing
      ([Ddt_symexec.Frontier]), and the solver's mutex-sharded query
      cache is shared, so a path-constraint group solved by any worker
      is a hit for all of them. The session explores the tree once —
      this is the mode that eliminates redundant work.

    - {!Portfolio} — several {e complete} sessions of the same driver run
      concurrently in separate domains, diversified Cloud9-style with
      different search strategies and random-pick seeds; their bug
      reports are merged. Sessions are independent apart from the
      process-wide solver cache (shared since it became sharded) and the
      atomic symbolic-variable counter.

    In both modes the merged bug list is a deterministic function of
    what the workers found: per-worker reports are combined in
    worker-index order with key-based deduplication (and a
    shared-frontier session already key-sorts its own report). *)

type mode = Portfolio | Shared_frontier

val mode_label : mode -> string

type result = {
  p_bugs : Ddt_checkers.Report.bug list;   (** merged, deduplicated *)
  p_mode : mode;
  p_jobs : int;
  p_wall_time : float;
  p_sequential_time : float;
      (** Portfolio: sum of the individual sessions' wall times, i.e.
          what running the same fleet sequentially would have cost.
          Shared_frontier: equals [p_wall_time] (one session ran; compare
          against a separate 1-job run to measure speedup). *)
  p_per_job : (string * int * float) list;
      (** (strategy label, bugs found, wall time) per worker, in worker
          index order; a single entry for Shared_frontier *)
  p_steals : int;
      (** states stolen between frontier workers (0 when every engine ran
          single-worker) *)
  p_cross_hits : int;
      (** solver-cache hits on entries stored by a different domain
          during this run *)
}

val test_driver : ?jobs:int -> ?mode:mode -> Config.t -> result
(** [jobs] defaults to [min 4 (Domain.recommended_domain_count ())];
    [mode] defaults to [Shared_frontier]. In Portfolio mode the first
    worker always runs the configuration's own strategy, so the merged
    result finds at least whatever a single session finds. *)

val speedup : result -> float
(** [p_sequential_time /. p_wall_time] — meaningful for Portfolio runs. *)
