module Mem = Ddt_dvm.Mem
module Image = Ddt_dvm.Image
module Layout = Ddt_dvm.Layout
module Kstate = Ddt_kernel.Kstate
module Pci = Ddt_kernel.Pci
module Exec = Ddt_symexec.Exec
module St = Ddt_symexec.Symstate
module Report = Ddt_checkers.Report
module Icfg = Ddt_staticx.Icfg
module Distmap = Ddt_staticx.Distmap
module Sfind = Ddt_staticx.Sfind
module Blob = Ddt_solver.Blob
module Pstore = Ddt_solver.Pstore
module Qcache = Ddt_solver.Qcache
module Expr = Ddt_solver.Expr
module Solver = Ddt_solver.Solver

type coverage_point = {
  cp_time : float;
  cp_steps : int;
  cp_blocks : int;
}

type result = {
  r_driver : string;
  r_bugs : Report.bug list;
  r_coverage : coverage_point list;
  r_total_blocks : int;
  r_stats : Exec.stats;
  r_wall_time : float;
  r_invocations : int;
  r_finished_states : int;
  r_kcalls : int;
  r_tree : Ddt_trace.Tree.t;
  r_crashdumps : (int * Ddt_trace.Crashdump.t) list;
  (** state id -> dump, for crashed states (when enabled) *)
  r_reachable_blocks : int;
  (** statically reachable block universe (ICFG), the sound denominator *)
  r_covered_reachable : int;
  (** covered blocks that lie inside the reachable universe *)
  r_never_reached : int list;
  (** sorted image-relative leaders of reachable blocks never executed *)
  r_static : Report.static_finding list;
  r_paths_to_first_bug : int option;
  (** completed paths when the first bug surfaced; [None] if bug-free *)
  r_incidents : Report.incident list;
  (** quarantined engine incidents (worker crashes, state faults, solver
      exhaustions), each with a replayable script *)
  r_governor_trips : int;
  (** times the resource governor asked for retirements (0 with no
      governor configured) *)
}

(* Returned states that can seed the next workload phase: prefer clean
   successes; fall back to any completed invocation. *)
let pick_bases states limit =
  let returned =
    List.filter
      (fun st -> match st.St.status with Some (St.Returned _) -> true | _ -> false)
      states
  in
  let ok, failed =
    List.partition
      (fun st -> st.St.status = Some (St.Returned 0))
      returned
  in
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  take limit (ok @ failed)

(* The session's live moving parts, factored out of [run] so that
   [resume] can rebuild exactly the same wiring over a restored engine.
   Everything here is either derived deterministically from the config
   (engine, checkers, static analysis) or a piece of session-owned
   mutable progress (the refs) that a checkpoint must carry. *)
type ctx = {
  x_cfg : Config.t;
  x_t0 : float;
  x_loaded : Image.loaded;
  x_device : Pci.assigned;
  x_exec_config : Exec.config;
  x_eng : Exec.engine;
  x_governor : Governor.t option;
  x_sink : Report.sink;
  x_icfg : Icfg.t;
  x_distmap : Distmap.t option;
  x_store : Pstore.t option;
  x_hmu : Mutex.t;
  x_finished_count : int ref;
  x_crashdumps : (int * Ddt_trace.Crashdump.t) list ref;
  x_first_bug_paths : int option ref;
  x_coverage : coverage_point list ref;
  x_blocks_seen : int ref;
  x_invocations : int ref;
  x_bases : St.t list ref;
  x_phase : int ref;
  (* phase currently being explored: 0 = driver load, i >= 1 = workload
     item [i - 1]; a checkpoint taken mid-run records this index *)
}

(* Everything that happens before the root state is seeded: VM + kernel
   setup, engine creation, static pre-analysis, checker and hook wiring,
   and the persistent-store warm load. Shared verbatim by [run] and
   [resume] — determinism of this prefix is what makes a restored
   checkpoint meaningful. *)
let setup ?(store_index_subsets = true) (cfg : Config.t) =
  let t0 = Unix.gettimeofday () in
  let base_mem = Mem.create () in
  let loaded = Image.load cfg.Config.image base_mem ~base:Layout.image_base in
  let device =
    Pci.assign_resources cfg.Config.descriptor ~mmio_base:Layout.mmio_base
  in
  let symdev = Ddt_hw.Symdev.create device in
  let exec_config =
    match cfg.Config.concrete_device with
    | None -> cfg.Config.exec_config
    | Some seed ->
        List.iter (Mem.add_mmio base_mem)
          (Ddt_hw.Symdev.concrete_mmio symdev (Ddt_hw.Symdev.Random seed));
        { cfg.Config.exec_config with Exec.concrete_hardware = true }
  in
  let eng = Exec.create ~config:exec_config loaded base_mem symdev in
  Option.iter (Exec.set_replay eng) cfg.Config.replay;
  (* Persistent solver store: warm the (freshly reset) query cache from
     disk. Must run after [Exec.create], whose accelerator wiring clears
     the process-global cache. An unopenable store degrades to a cold
     cache, never to a failure. *)
  let store =
    match cfg.Config.store_dir with
    | Some dir when cfg.Config.persist && exec_config.Exec.solver_accel -> (
        match Pstore.open_store ~dir ~key:cfg.Config.driver_name with
        | Ok s ->
            ignore
              (Pstore.load ~index_subsets:store_index_subsets s
                 (Solver.current_cache ()));
            Some s
        | Error _ -> None)
    | _ -> None
  in
  (* Resource governance: policy from the config's soft limits, enforced
     by the engine's deterministic concretize-and-retire path. *)
  let governor =
    match cfg.Config.governor with
    | None -> None
    | Some limits ->
        let gov = Governor.create limits in
        Exec.set_governor eng (Governor.decide gov);
        Some gov
  in
  let sink = Report.create_sink () in
  let driver = cfg.Config.driver_name in
  (* Static pre-analysis: always built (it is cheap and pure) for the
     reachable-universe coverage denominator and the static findings;
     when [static_guidance] is on it additionally feeds the scheduler a
     distance-to-uncovered oracle. *)
  let icfg = Icfg.build cfg.Config.image in
  let contracts, model =
    match cfg.Config.driver_class with
    | Config.Network ->
        (Ddt_annot.Ndis_annotations.contracts,
         Ddt_annot.Ndis_annotations.model)
    | Config.Audio ->
        (Ddt_annot.Portcls_annotations.contracts,
         Ddt_annot.Portcls_annotations.model)
  in
  (* Rules with a dynamic witness class start [Unconfirmed] and are
     promoted by the post-run confirmation pass; purely structural rules
     have nothing to witness. *)
  let confirmable rule =
    List.exists
      (fun p -> String.starts_with ~prefix:p rule)
      [ "lock-"; "irql-"; "race-" ]
  in
  let statics =
    List.map
      (fun (f : Sfind.finding) ->
        { Report.sf_rule = f.Sfind.f_rule; sf_func = f.Sfind.f_func;
          sf_pos = f.Sfind.f_pos; sf_message = f.Sfind.f_msg;
          sf_confirm =
            (if confirmable f.Sfind.f_rule then Report.Unconfirmed
             else Report.Not_applicable) })
      (Sfind.analyze ~contracts ~model icfg)
  in
  List.iter (Report.report_static sink) statics;
  let distmap =
    if exec_config.Exec.static_guidance then begin
      (* Directed confirmation: static-warning positions become
         permanent distance goals, so the Min_dist scheduler keeps
         pulling states toward the flagged code even after plain
         coverage has visited it once. *)
      let goals =
        List.filter_map
          (fun sf ->
            if sf.Report.sf_confirm = Report.Unconfirmed then
              Some sf.Report.sf_pos
            else None)
          statics
      in
      let dm = Distmap.create ~goals icfg in
      Exec.set_distance_fn eng (fun pc ->
          Distmap.dist dm (pc - loaded.Image.base));
      Some dm
    end
    else None
  in
  (* State merging: hand the engine the immediate-post-dominator map so
     it knows, per branch block, where diverging siblings reconverge.
     Never installed for replay runs — a script follows exactly one
     concrete path, and merging would fold it into its siblings. *)
  if exec_config.Exec.state_merging && cfg.Config.replay = None then begin
    let pd = Ddt_staticx.Pdom.compute icfg in
    Exec.set_merge_points eng (fun abs ->
        Option.map
          (fun rel -> rel + loaded.Image.base)
          (Ddt_staticx.Pdom.merge_point pd (abs - loaded.Image.base)))
  end;
  (* Wire the checkers. *)
  let memcheck =
    Ddt_checkers.Memcheck.create ~sink ~driver ~loaded ~symdev
  in
  let leakcheck = Ddt_checkers.Leakcheck.create ~sink ~driver in
  let lockcheck = Ddt_checkers.Lockcheck.create ~sink ~driver in
  let apicheck = Ddt_checkers.Apicheck.create ~sink ~driver in
  let crashcheck = Ddt_checkers.Crashcheck.create ~sink ~driver in
  let loopcheck = Ddt_checkers.Loopcheck.create ~sink ~driver in
  Exec.set_on_mem_access eng (Ddt_checkers.Memcheck.on_mem_access memcheck);
  (* The engine fires these hooks from every frontier worker; the refs
     below are the session's only hook-shared state, so one small lock
     covers them (the checkers only touch the state and the sink, which
     has its own lock). *)
  let hmu = Mutex.create () in
  let finished_count = ref 0 in
  let crashdumps = ref [] in
  let first_bug_paths = ref None in
  Exec.set_on_state_done eng (fun st ->
      Mutex.lock hmu;
      incr finished_count;
      (match st.St.status with
       | Some (St.Crashed c) when cfg.Config.collect_crashdumps ->
           crashdumps :=
             (st.St.id,
              Exec.crashdump eng st
                ~note:(Printf.sprintf "%s: %s" c.St.c_code c.St.c_msg))
             :: !crashdumps
       | _ -> ());
      Mutex.unlock hmu;
      Ddt_checkers.Leakcheck.on_state_done leakcheck st;
      Ddt_checkers.Lockcheck.on_state_done lockcheck st;
      Ddt_checkers.Crashcheck.on_state_done crashcheck st;
      Ddt_checkers.Loopcheck.on_state_done loopcheck st;
      Mutex.lock hmu;
      if !first_bug_paths = None && Report.count sink > 0 then
        first_bug_paths := Some !finished_count;
      Mutex.unlock hmu);
  Exec.set_kcall_hooks eng
    ~enter:(fun st name mach ->
      Ddt_checkers.Lockcheck.on_kcall_enter lockcheck st name mach;
      Ddt_checkers.Apicheck.on_kcall_enter apicheck st name mach)
    ~leave:(fun _ _ _ -> ());
  (* Annotations (§3.4): off for the ablation experiment. *)
  if cfg.Config.use_annotations then begin
    let set = cfg.Config.annotations in
    Exec.set_annotations eng
      ~pre:(fun name ks mach -> Ddt_annot.Annot.run_pre set name ks mach)
      ~post:(fun name ks mach -> Ddt_annot.Annot.run_post set name ks mach)
  end;
  (* Coverage sampling. *)
  let coverage = ref [] in
  let blocks_seen = ref 0 in
  Exec.set_on_new_block eng (fun _st pc ->
      (match distmap with
       | Some dm -> Distmap.note_covered dm (pc - loaded.Image.base)
       | None -> ());
      Mutex.lock hmu;
      incr blocks_seen;
      coverage :=
        { cp_time = Unix.gettimeofday () -. t0;
          cp_steps = Exec.steps_now eng;
          cp_blocks = !blocks_seen }
        :: !coverage;
      Mutex.unlock hmu);
  {
    x_cfg = cfg; x_t0 = t0; x_loaded = loaded; x_device = device;
    x_exec_config = exec_config;
    x_eng = eng; x_governor = governor; x_sink = sink; x_icfg = icfg;
    x_distmap = distmap; x_store = store; x_hmu = hmu;
    x_finished_count = finished_count; x_crashdumps = crashdumps;
    x_first_bug_paths = first_bug_paths; x_coverage = coverage;
    x_blocks_seen = blocks_seen; x_invocations = ref 0;
    x_bases = ref []; x_phase = ref 0;
  }

(* {2 Checkpointing} *)

let checkpoint_version = 1

(* A checkpoint is one self-contained marshal image of every piece of
   session progress: the engine image (queues, merge pool, guard, DBT
   dispositions, counters), the surviving phase bases, the report sink,
   the session refs, the expression-variable counter, and the full query
   cache. One blob means [Marshal] preserves every physical-sharing
   relationship (sibling constraint tails, cache-entry aliasing) that
   the live heap had. Derived structures — incremental solver sessions,
   compiled DBT closures, dedup tables — are deliberately absent: they
   are caches, rebuilt from scratch on restore. *)
type checkpoint = {
  ck_version : int;
  ck_driver : string;
  ck_phase : int;
  ck_invocations : int;
  ck_finished_count : int;
  ck_blocks_seen : int;
  ck_coverage : coverage_point list;       (* newest first *)
  ck_crashdumps : (int * Ddt_trace.Crashdump.t) list;
  ck_first_bug_paths : int option;
  ck_sink : Report.sink_dump;
  ck_bases : St.image list;
  ck_engine : Exec.image;
  ck_var_counter : int;
  ck_qcache : Qcache.Sharded.dump option;
}

let default_checkpoint_path (cfg : Config.t) =
  match cfg.Config.checkpoint_path with
  | Some p -> p
  | None -> cfg.Config.driver_name ^ ".ckpt"

let write_checkpoint ctx path =
  let ck =
    {
      ck_version = checkpoint_version;
      ck_driver = ctx.x_cfg.Config.driver_name;
      ck_phase = !(ctx.x_phase);
      ck_invocations = !(ctx.x_invocations);
      ck_finished_count = !(ctx.x_finished_count);
      ck_blocks_seen = !(ctx.x_blocks_seen);
      ck_coverage = !(ctx.x_coverage);
      ck_crashdumps = !(ctx.x_crashdumps);
      ck_first_bug_paths = !(ctx.x_first_bug_paths);
      ck_sink = Report.dump_sink ctx.x_sink;
      ck_bases = List.map St.to_image !(ctx.x_bases);
      ck_engine = Exec.checkpoint_image ctx.x_eng;
      ck_var_counter = Expr.var_counter_value ();
      ck_qcache =
        (if ctx.x_exec_config.Exec.solver_accel then
           Some (Qcache.Sharded.dump (Solver.current_cache ()))
         else None);
    }
  in
  (* Durability is best-effort: a full disk or unwritable path costs the
     checkpoint, never the run. [Blob.write_file] already guarantees the
     previous checkpoint survives a failed write. *)
  match Blob.write_file path ck with Ok () -> true | Error _ -> false

(* Checkpointing is only sound where the engine image is: a single
   worker (the pick boundary is quiescent), fully symbolic hardware (a
   concretized device installs closures in base memory), and no replay
   script (scripts carry their own position). *)
let checkpointable ctx =
  ctx.x_cfg.Config.checkpoint_every > 0
  && ctx.x_exec_config.Exec.jobs <= 1
  && ctx.x_cfg.Config.concrete_device = None
  && ctx.x_cfg.Config.replay = None

let install_checkpointing ctx =
  if checkpointable ctx then begin
    let cadence = Governor.cadence ctx.x_cfg.Config.checkpoint_every in
    let path = default_checkpoint_path ctx.x_cfg in
    Exec.set_checkpoint_hook ctx.x_eng (fun () ->
        if Governor.checkpoint_due cadence ~now:(Exec.steps_now ctx.x_eng)
        then ignore (write_checkpoint ctx path))
  end

(* {2 Phases} *)

let run_engine ?start_steps ctx =
  Exec.run ctx.x_eng ~max_total_steps:ctx.x_cfg.Config.max_total_steps
    ~plateau_steps:ctx.x_cfg.Config.plateau_steps ?start_steps ()

(* Phase 0: the kernel invokes the image entry point, which registers
   the miniport. *)
let start_load_phase ctx =
  ctx.x_phase := 0;
  let ks =
    Kstate.create ~registry:ctx.x_cfg.Config.registry ~device:ctx.x_device ()
  in
  let root = Exec.new_root_state ctx.x_eng ks in
  Exec.start_invocation ctx.x_eng root ~name:"load"
    ~addr:(ctx.x_loaded.Image.base + ctx.x_cfg.Config.image.Image.entry)
    ~args:[];
  incr ctx.x_invocations

let finish_load_phase ctx =
  ctx.x_bases := pick_bases (Exec.drain_finished ctx.x_eng) 1

let finish_workload_phase ctx =
  let finished = Exec.drain_finished ctx.x_eng in
  let next = pick_bases finished ctx.x_cfg.Config.max_bases_per_phase in
  (* If every invocation crashed or failed, keep the previous bases
     so later phases still run (e.g. halt after a crashing send). *)
  if next <> [] then ctx.x_bases := next

(* Workload phase [idx] (1-based; item = workload position [idx - 1]). *)
let run_workload_phase ctx idx item =
  ctx.x_phase := idx;
  let queued =
    List.fold_left
      (fun n base -> n + Exerciser.queue ctx.x_eng ctx.x_cfg base item)
      0
      !(ctx.x_bases)
  in
  ctx.x_invocations := !(ctx.x_invocations) + queued;
  if queued > 0 then begin
    run_engine ctx;
    finish_workload_phase ctx
  end

(* Drop the first [n] elements. *)
let rec drop n = function
  | l when n <= 0 -> l
  | [] -> []
  | _ :: rest -> drop (n - 1) rest

let finalize ?stats_override ?(sort_bugs = false) ctx =
  let cfg = ctx.x_cfg in
  let eng = ctx.x_eng in
  let loaded = ctx.x_loaded in
  let icfg = ctx.x_icfg in
  let sink = ctx.x_sink in
  let stats =
    match stats_override with Some s -> s | None -> Exec.stats eng
  in
  let kcalls =
    List.fold_left
      (fun acc st -> acc + Kstate.kcall_count st.St.ks)
      0
      !(ctx.x_bases)
  in
  (* With several frontier workers (or several worker processes — the
     [sort_bugs] caller) the sink's insertion order depends on
     scheduling; sort by key so the report is reproducible. A
     single-worker run keeps discovery order. *)
  let bugs =
    if ctx.x_exec_config.Exec.jobs > 1 || sort_bugs then
      List.sort
        (fun a b -> compare a.Report.b_key b.Report.b_key)
        (Report.bugs sink)
    else Report.bugs sink
  in
  (* Confirmation pass: a static warning is witnessed by a dynamic bug
     of a compatible kind whose pc falls in the warned function.  The
     position is matched at function granularity — the crash site of a
     race or deadlock is rarely the exact flagged instruction. *)
  let func_of_relpc rel =
    match Hashtbl.find_opt icfg.Icfg.leader_of rel with
    | Some l ->
        Option.map (fun f -> f.Icfg.fn_name) (Icfg.func_of_block icfg l)
    | None -> None
  in
  let kind_compatible rule (k : Report.kind) =
    if String.starts_with ~prefix:"race-" rule then
      match k with
      | Report.Race_condition | Report.Segfault | Report.Memory_error
      | Report.Kernel_crash -> true
      | _ -> false
    else
      match k with
      | Report.Lock_misuse | Report.Kernel_crash -> true
      | _ -> false
  in
  Report.confirm_statics sink (fun sf ->
      match sf.Report.sf_confirm with
      | Report.Not_applicable -> Report.Not_applicable
      | Report.Unconfirmed | Report.Confirmed _ -> (
          match
            List.find_opt
              (fun (b : Report.bug) ->
                kind_compatible sf.Report.sf_rule b.Report.b_kind
                && func_of_relpc (b.Report.b_pc - loaded.Image.base)
                   = Some sf.Report.sf_func)
              bugs
          with
          | Some b -> Report.Confirmed b.Report.b_key
          | None -> Report.Unconfirmed));
  let statics = Report.static_findings sink in
  (* Reachable-universe coverage: intersect the covered block set with the
     static universe (both image-relative leaders). *)
  let covered_rel = Hashtbl.create 256 in
  List.iter
    (fun pc -> Hashtbl.replace covered_rel (pc - loaded.Image.base) ())
    (Exec.covered_blocks eng);
  let never_reached =
    List.filter (fun b -> not (Hashtbl.mem covered_rel b)) icfg.Icfg.universe
  in
  let covered_reachable =
    List.length icfg.Icfg.universe - List.length never_reached
  in
  (* Persist this run's fresh query-cache entries for the next session
     over the same driver. Best-effort like every durability write. *)
  (match ctx.x_store with
   | Some s -> ignore (Pstore.save s (Solver.current_cache ()))
   | None -> ());
  {
    r_driver = cfg.Config.driver_name;
    r_bugs = bugs;
    r_coverage = List.rev !(ctx.x_coverage);
    r_total_blocks =
      List.length (Ddt_dvm.Disasm.basic_block_starts cfg.Config.image);
    r_stats = stats;
    r_wall_time = Unix.gettimeofday () -. ctx.x_t0;
    r_invocations = !(ctx.x_invocations);
    r_finished_states = !(ctx.x_finished_count);
    r_kcalls = kcalls;
    r_tree = Exec.execution_tree eng;
    r_crashdumps =
      (if ctx.x_exec_config.Exec.jobs > 1 then
         List.sort (fun (a, _) (b, _) -> compare a b) !(ctx.x_crashdumps)
       else List.rev !(ctx.x_crashdumps));
    r_reachable_blocks = List.length icfg.Icfg.universe;
    r_covered_reachable = covered_reachable;
    r_never_reached = never_reached;
    r_static = statics;
    r_paths_to_first_bug = !(ctx.x_first_bug_paths);
    r_incidents = Exec.incidents eng;
    r_governor_trips =
      (match ctx.x_governor with Some g -> Governor.trips g | None -> 0);
  }

let run (cfg : Config.t) =
  let ctx = setup cfg in
  install_checkpointing ctx;
  start_load_phase ctx;
  run_engine ctx;
  finish_load_phase ctx;
  List.iteri
    (fun i item -> run_workload_phase ctx (i + 1) item)
    cfg.Config.workload;
  finalize ctx

(* {2 Resume} *)

let read_checkpoint path : (checkpoint, string) Stdlib.result =
  match Blob.read_file path with
  | Error e -> Error e
  | Ok (ck : checkpoint) ->
      if ck.ck_version <> checkpoint_version then
        Error
          (Printf.sprintf "checkpoint version %d, expected %d" ck.ck_version
             checkpoint_version)
      else Ok ck

let checkpoint_driver path =
  Result.map (fun ck -> ck.ck_driver) (read_checkpoint path)

let resume (cfg : Config.t) ~path : (result, string) Stdlib.result =
  match read_checkpoint path with
  | Error e -> Error e
  | Ok ck ->
      if ck.ck_driver <> cfg.Config.driver_name then
        Error
          (Printf.sprintf "checkpoint is for driver %S, config is for %S"
             ck.ck_driver cfg.Config.driver_name)
      else begin
        let ctx = setup cfg in
        (* Fresh symbolic variables must never collide with checkpointed
           ones; the counter only moves forward. *)
        Expr.set_var_counter
          (max (Expr.var_counter_value ()) ck.ck_var_counter);
        Exec.restore_image ctx.x_eng ck.ck_engine;
        (* The checkpoint's cache dump is authoritative: it reproduces
           the exact hit/miss sequence the uninterrupted run would have
           seen, overriding whatever the persistent store pre-loaded. *)
        (match ck.ck_qcache with
         | Some d -> ignore (Qcache.Sharded.import (Solver.current_cache ()) d)
         | None -> ());
        Report.restore_sink ctx.x_sink ck.ck_sink;
        ctx.x_invocations := ck.ck_invocations;
        ctx.x_finished_count := ck.ck_finished_count;
        ctx.x_blocks_seen := ck.ck_blocks_seen;
        ctx.x_coverage := ck.ck_coverage;
        ctx.x_crashdumps := ck.ck_crashdumps;
        ctx.x_first_bug_paths := ck.ck_first_bug_paths;
        ctx.x_bases := List.map (Exec.revive_image ctx.x_eng) ck.ck_bases;
        ctx.x_phase := ck.ck_phase;
        (* Guided scheduling: the distance oracle's covered set is
           derived state; rebuild it from the engine's covered blocks so
           goal distances match the uninterrupted run. *)
        (match ctx.x_distmap with
         | Some dm ->
             List.iter
               (fun pc ->
                 Distmap.note_covered dm (pc - ctx.x_loaded.Image.base))
               (Exec.covered_blocks ctx.x_eng)
         | None -> ());
        install_checkpointing ctx;
        (* Finish the interrupted phase: the restored engine continues
           from the recorded budget window, so plateau detection and the
           step ceiling behave as if the kill never happened. *)
        run_engine ctx ~start_steps:(Exec.run_start ctx.x_eng);
        if ck.ck_phase = 0 then finish_load_phase ctx
        else finish_workload_phase ctx;
        (* Remaining phases, numbered as the uninterrupted run numbers
           them. *)
        List.iteri
          (fun j item -> run_workload_phase ctx (ck.ck_phase + 1 + j) item)
          (drop ck.ck_phase cfg.Config.workload);
        Ok (finalize ctx)
      end

(* {2 Distributed exploration support}

   The session-side half of the multi-process tier ([Ddt_dist]): the
   coordinator's phase seeding / frontier export / batch merging, and
   the worker's import / explore / result-batch assembly. The process
   plumbing (fork, framing, scheduling, death detection) lives in
   [Ddt_dist]; everything that touches session state lives here. *)

module Dist = struct
  type batch = {
    db_bugs : Report.bug list;
    (* the worker sink's full bug list (cumulative; the coordinator's
       sink dedups by key) *)
    db_candidates : (string * St.image) list;
    (* phase-base candidates finished since the last batch, each with
       its deterministic sort key *)
    db_covered : int list;
    (* every absolute block address this worker has covered (cumulative;
       merged idempotently) *)
    db_stats : Exec.stats;        (* cumulative for this worker process *)
    db_finished : int;            (* cumulative finished-state count *)
  }

  (* A candidate accumulated on the coordinator: local fallback
     exploration keeps the live state (a to_image/of_image round trip
     without an intervening marshal would alias live structures), while
     worker batches arrive as images. *)
  type cand = C_live of St.t | C_img of St.image

  type t = {
    d_ctx : ctx;
    d_foreign_store : bool;
    (* the persistent store is shared with processes minting variable
       ids in other lanes: import without subset indexing *)
    d_candidates : (string * cand) list ref;
    d_worker_stats : (int, Exec.stats) Hashtbl.t;
    d_worker_finished : (int, int) Hashtbl.t;
  }

  let prepare ?(foreign_store = false) (cfg : Config.t) =
    let ctx = setup ~store_index_subsets:(not foreign_store) cfg in
    {
      d_ctx = ctx;
      d_foreign_store = foreign_store;
      d_candidates = ref [];
      d_worker_stats = Hashtbl.create 8;
      d_worker_finished = Hashtbl.create 8;
    }

  let config d = d.d_ctx.x_cfg

  (* Deterministic, process-independent ordering key for phase-base
     candidates. The sequential oracle picks bases in completion order,
     which a distributed run cannot reproduce (completion interleaves
     across processes); sorting by path-content fields makes the pick
     independent of arrival order. The leading rank bit preserves
     [pick_bases]' clean-successes-first preference. Variable ids are
     deliberately absent — they differ per id lane for re-explored
     copies of the same path. *)
  let candidate_key (st : St.t) =
    let rank = if st.St.status = Some (St.Returned 0) then 0 else 1 in
    Printf.sprintf "%d:%s:%08x:%06d:%08d:%05d:%05d:%05d" rank
      st.St.entry_name st.St.pc st.St.depth st.St.steps
      (List.length st.St.constraints)
      (Kstate.kcall_count st.St.ks)
      (List.length st.St.sym_inputs)

  (* --- coordinator side -------------------------------------------------- *)

  let seed_load_phase d = start_load_phase d.d_ctx

  (* Queue phase [idx]'s invocations over the current bases; returns how
     many were queued (0 = nothing to explore, skip the phase). *)
  let seed_workload_phase d idx item =
    let ctx = d.d_ctx in
    ctx.x_phase := idx;
    let queued =
      List.fold_left
        (fun n base -> n + Exerciser.queue ctx.x_eng ctx.x_cfg base item)
        0
        !(ctx.x_bases)
    in
    ctx.x_invocations := !(ctx.x_invocations) + queued;
    queued

  (* Export every queued state as a shippable image. Images in one
     shipment must be marshalled together (one frame) so the physical
     sharing between sibling states survives. *)
  let export_frontier d =
    List.map St.to_image
      (Exec.export_states d.d_ctx.x_eng ~max:max_int)

  let note_candidate d key c = d.d_candidates := (key, c) :: !(d.d_candidates)

  (* Merge one worker result batch. Idempotent per fact: bugs dedup by
     key, coverage by block flag, stats/finished replace the worker's
     previous cumulative values. *)
  let merge_batch d ~wid (b : batch) =
    let ctx = d.d_ctx in
    List.iter (Report.report ctx.x_sink) b.db_bugs;
    Hashtbl.replace d.d_worker_stats wid b.db_stats;
    Hashtbl.replace d.d_worker_finished wid b.db_finished;
    List.iter (fun (key, im) -> note_candidate d key (C_img im)) b.db_candidates;
    (* Coverage: claim each block on the coordinator engine (the merged
       source of truth for [finalize]); newly claimed blocks extend the
       session's coverage curve. *)
    let fresh =
      List.filter (Exec.note_covered_external ctx.x_eng) b.db_covered
    in
    if fresh <> [] then begin
      let steps_global =
        Hashtbl.fold
          (fun _ (s : Exec.stats) acc -> acc + s.Exec.st_total_steps)
          d.d_worker_stats
          (Exec.steps_now ctx.x_eng)
      in
      List.iter
        (fun pc ->
          (match ctx.x_distmap with
           | Some dm ->
               Distmap.note_covered dm (pc - ctx.x_loaded.Image.base)
           | None -> ());
          Mutex.lock ctx.x_hmu;
          incr ctx.x_blocks_seen;
          ctx.x_coverage :=
            { cp_time = Unix.gettimeofday () -. ctx.x_t0;
              cp_steps = steps_global;
              cp_blocks = !(ctx.x_blocks_seen) }
            :: !(ctx.x_coverage);
          Mutex.unlock ctx.x_hmu)
        fresh
    end;
    (* First-bug bookkeeping mirrors the on_state_done hook. *)
    Mutex.lock ctx.x_hmu;
    let merged_finished =
      Hashtbl.fold (fun _ n acc -> acc + n) d.d_worker_finished
        !(ctx.x_finished_count)
    in
    if !(ctx.x_first_bug_paths) = None && Report.count ctx.x_sink > 0 then
      ctx.x_first_bug_paths := Some merged_finished;
    Mutex.unlock ctx.x_hmu

  (* Close the current phase: sort the accumulated candidates by key —
     arrival order is scheduling noise — and take the same number of
     bases the sequential session would. *)
  let end_phase d =
    let ctx = d.d_ctx in
    let sorted =
      List.stable_sort
        (fun (a, _) (b, _) -> compare a b)
        (List.rev !(d.d_candidates))
    in
    d.d_candidates := [];
    let limit =
      if !(ctx.x_phase) = 0 then 1 else ctx.x_cfg.Config.max_bases_per_phase
    in
    let rec take n = function
      | [] -> []
      | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
    in
    let bases =
      List.map
        (fun (_, c) ->
          match c with
          | C_live st -> st
          | C_img im -> Exec.revive_image ctx.x_eng im)
        (take limit sorted)
    in
    (* Load phase: the single root either produced a base or the session
       has nothing to exercise. Workload phases keep the previous bases
       when every invocation crashed (mirrors [finish_workload_phase]). *)
    if !(ctx.x_phase) = 0 then ctx.x_bases := bases
    else if bases <> [] then ctx.x_bases := bases

  (* Local fallback: explore a shipment on the coordinator's own engine
     (no live workers left, or a zero-worker run). Bugs and coverage
     flow through the session hooks as in a plain run; finished states
     join the candidate pool. *)
  let explore_local d images =
    let ctx = d.d_ctx in
    List.iter
      (fun im -> Exec.inject_state ctx.x_eng (Exec.revive_image ctx.x_eng im))
      images;
    run_engine ctx;
    List.iter
      (fun st ->
        match st.St.status with
        | Some (St.Returned _) -> note_candidate d (candidate_key st) (C_live st)
        | _ -> ())
      (Exec.drain_finished ctx.x_eng)

  (* Merge the per-worker statistics into the coordinator's and finish
     the report. [reships] are the coordinator's re-shipments of dead
     workers' in-flight states (counted with the reaper's re-homings);
     bug order is always key-sorted — merge order is scheduling noise. *)
  let dist_finalize d ~workers ~reships =
    let ctx = d.d_ctx in
    Exec.note_rehomed ctx.x_eng reships;
    let add_solver (a : Solver.stats) (b : Solver.stats) =
      (* field-wise a + b, via the existing field-wise difference:
         a - ((b - b) - b) *)
      Solver.diff_stats a (Solver.diff_stats (Solver.diff_stats b b) b)
    in
    let add (a : Exec.stats) (b : Exec.stats) =
      {
        Exec.st_total_steps = a.Exec.st_total_steps + b.Exec.st_total_steps;
        st_states_created = a.Exec.st_states_created + b.Exec.st_states_created;
        st_states_dropped = a.Exec.st_states_dropped + b.Exec.st_states_dropped;
        st_blocks_covered = a.Exec.st_blocks_covered;
        (* merged via the coordinator engine's claim flags, not summed *)
        st_max_cow_depth = max a.Exec.st_max_cow_depth b.Exec.st_max_cow_depth;
        st_live_words = max a.Exec.st_live_words b.Exec.st_live_words;
        st_steals = a.Exec.st_steals + b.Exec.st_steals;
        st_workers = a.Exec.st_workers;
        st_rehomed = a.Exec.st_rehomed + b.Exec.st_rehomed;
        st_incidents = a.Exec.st_incidents + b.Exec.st_incidents;
        st_worker_restarts =
          a.Exec.st_worker_restarts + b.Exec.st_worker_restarts;
        st_soft_retired = a.Exec.st_soft_retired + b.Exec.st_soft_retired;
        st_solver = add_solver a.Exec.st_solver b.Exec.st_solver;
        st_dbt_blocks = a.Exec.st_dbt_blocks + b.Exec.st_dbt_blocks;
        st_dbt_superblocks =
          a.Exec.st_dbt_superblocks + b.Exec.st_dbt_superblocks;
        st_dbt_guard_bails =
          a.Exec.st_dbt_guard_bails + b.Exec.st_dbt_guard_bails;
        st_dbt_decompiled = a.Exec.st_dbt_decompiled + b.Exec.st_dbt_decompiled;
        st_dbt_compiled_steps =
          a.Exec.st_dbt_compiled_steps + b.Exec.st_dbt_compiled_steps;
        st_merged_states = a.Exec.st_merged_states + b.Exec.st_merged_states;
        st_merge_ites = a.Exec.st_merge_ites + b.Exec.st_merge_ites;
        st_merge_forks_avoided =
          a.Exec.st_merge_forks_avoided + b.Exec.st_merge_forks_avoided;
        st_merge_refusals =
          a.Exec.st_merge_refusals + b.Exec.st_merge_refusals;
      }
    in
    let merged =
      Hashtbl.fold
        (fun _ ws acc -> add acc ws)
        d.d_worker_stats
        (Exec.stats ctx.x_eng)
    in
    let merged = { merged with Exec.st_workers = max 1 workers } in
    ctx.x_finished_count :=
      Hashtbl.fold (fun _ n acc -> acc + n) d.d_worker_finished
        !(ctx.x_finished_count);
    finalize ~stats_override:merged ~sort_bugs:true ctx

  (* Cross-worker pstore hits attributable to this process so far —
     summed over workers by the benchmark to show shared solver work. *)
  let store_hits d =
    ignore d;
    (Solver.stats ()).Solver.s_cache_persist_hits

  (* --- worker side ------------------------------------------------------- *)

  let import d images =
    let ctx = d.d_ctx in
    List.iter
      (fun im -> Exec.inject_state ctx.x_eng (Exec.revive_image ctx.x_eng im))
      images

  (* Run the engine until the local frontier drains (or a budget stop).
     [tick] fires at every pick boundary — the quiescent points where
     the worker services steal requests and store flushes. *)
  let explore d ~tick =
    let ctx = d.d_ctx in
    Exec.set_checkpoint_hook ctx.x_eng tick;
    run_engine ctx

  (* Give up to [max] queued tag-free states for re-shipment (a steal).
     Only sound from inside [tick] or between explorations. *)
  let export_steal d ~max =
    List.map St.to_image (Exec.export_states d.d_ctx.x_eng ~max)

  let queue_length d = Exec.queue_length d.d_ctx.x_eng

  let take_batch d =
    let ctx = d.d_ctx in
    let cands =
      List.filter_map
        (fun st ->
          match st.St.status with
          | Some (St.Returned _) -> Some (candidate_key st, St.to_image st)
          | _ -> None)
        (Exec.drain_finished ctx.x_eng)
    in
    {
      db_bugs = Report.bugs ctx.x_sink;
      db_candidates = cands;
      db_covered = Exec.covered_blocks ctx.x_eng;
      db_stats = Exec.stats ctx.x_eng;
      db_finished = !(ctx.x_finished_count);
    }

  let flush_store d =
    match d.d_ctx.x_store with
    | Some s -> Pstore.save s (Solver.current_cache ())
    | None -> 0

  let refresh_store d =
    match d.d_ctx.x_store with
    | Some s ->
        Pstore.refresh ~index_subsets:(not d.d_foreign_store) s
          (Solver.current_cache ())
    | None -> 0
end

let coverage_percent r =
  if r.r_total_blocks = 0 then 0.0
  else
    match List.rev r.r_coverage with
    | [] -> 0.0
    | last :: _ ->
        100.0 *. float_of_int last.cp_blocks /. float_of_int r.r_total_blocks

let reachable_coverage_percent r =
  if r.r_reachable_blocks = 0 then 0.0
  else
    100.0 *. float_of_int r.r_covered_reachable
    /. float_of_int r.r_reachable_blocks
