(** Test-session configuration: the driver binary under test, its fake
    device, the registry it will read, the workload to exercise it with,
    and the knobs of the exploration engine. *)

type driver_class = Network | Audio

type workload_item =
  | W_initialize
  | W_query          (** OID query sweep (symbolic OID under annotations) *)
  | W_set
  | W_send           (** one packet (symbolic contents under annotations) *)
  | W_play
  | W_stop
  | W_timers         (** fire every timer the driver armed *)
  | W_interrupt      (** one top-level interrupt (stress-style timing) *)
  | W_reset          (** the miniport Reset handler, if registered *)
  | W_halt

type t = {
  driver_name : string;
  image : Ddt_dvm.Image.t;
  driver_class : driver_class;
  descriptor : Ddt_kernel.Pci.descriptor;
  registry : (string * int) list;
  workload : workload_item list;
  use_annotations : bool;
  (** master switch for the §5.1 ablation: disables both the API
      annotation set and the concrete-to-symbolic workload hints *)
  annotations : Ddt_annot.Annot.set;
  exec_config : Ddt_symexec.Exec.config;
  max_total_steps : int;
  plateau_steps : int;
  (** stop a phase when no new basic block appears for this many
      instructions — the paper's §5.2 stopping rule *)
  max_bases_per_phase : int;
  (** how many completed states seed the next workload phase *)
  concrete_device : int option;
  (** [Some seed]: hardware reads return seeded pseudo-random concrete
      bytes instead of symbolic values (stress-baseline mode) *)
  replay : Ddt_trace.Replay.script option;
  (** re-execute a recorded failing path deterministically (§3.5) *)
  collect_crashdumps : bool;
  (** snapshot every crashed state as a WinDbg-style crash dump *)
  governor : Governor.limits option;
  (** resource-governor soft caps ({!Governor}); [None] (the default)
      leaves only the engine's hard [max_states] cap *)
  checkpoint_every : int;
  (** checkpoint the whole session every N engine steps (0, the
      default, never checkpoints). Mid-run checkpoints need a quiescent
      frontier, so the knob is only effective with [jobs = 1] and fully
      symbolic hardware; it is ignored otherwise. *)
  checkpoint_path : string option;
  (** checkpoint blob location; default ["<driver_name>.ckpt"] *)
  store_dir : string option;
  (** root directory of the persistent solver store ({!Ddt_solver.Pstore});
      [None] (the default) runs without one *)
  persist : bool;
  (** master switch for the persistent store — [false] ignores
      [store_dir] entirely (the [--no-persist] ablation) *)
}

val default_network_workload : workload_item list
val default_audio_workload : workload_item list

val make :
  driver_name:string ->
  image:Ddt_dvm.Image.t ->
  driver_class:driver_class ->
  ?descriptor:Ddt_kernel.Pci.descriptor ->
  ?registry:(string * int) list ->
  ?workload:workload_item list ->
  ?use_annotations:bool ->
  ?annotations:Ddt_annot.Annot.set ->
  ?exec_config:Ddt_symexec.Exec.config ->
  ?jobs:int ->
  ?static_guidance:bool ->
  ?solver_incr:bool ->
  (** override [exec_config.solver_incr]: per-state incremental solver
      sessions (see {!Ddt_symexec.Exec.config}) *)
  ?dbt:bool ->
  (** override [exec_config.dbt]: guarded block compilation (see
      {!Ddt_symexec.Exec.config}) *)
  ?state_merging:bool ->
  (** override [exec_config.state_merging]: fuse sibling states at
      branch post-dominators (see {!Ddt_symexec.Exec.config}) *)
  ?max_total_steps:int ->
  ?plateau_steps:int ->
  ?max_bases_per_phase:int ->
  ?concrete_device:int ->
  ?replay:Ddt_trace.Replay.script ->
  ?collect_crashdumps:bool ->
  ?governor:Governor.limits ->
  ?checkpoint_every:int ->
  ?checkpoint_path:string ->
  ?store_dir:string ->
  ?persist:bool ->
  unit -> t

val workload_name : workload_item -> string
