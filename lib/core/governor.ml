(* Resource governor: soft-cap graceful degradation for the exploration
   engine.

   The engine's only built-in defense against resource exhaustion is the
   hard [max_states] cap, which silently drops fresh forks once the
   frontier is full — the worst possible victims (new, unexplored
   paths). The governor watches the resource picture the engine samples
   every 64 picks ([Exec.pressure]: live-state count, copy-on-write
   chain depth, approximate heap residency) and, when a soft cap is
   exceeded, tells the engine to concretize-and-retire a few of the
   *least promising* queued states instead — deterministically, well
   before the hard cap engages. Policy lives here; the mechanics (victim
   ranking, witness pinning, retirement) live in [Exec.set_governor]. *)

module Exec = Ddt_symexec.Exec

type limits = {
  soft_states : int;
  soft_cow_depth : int;
  soft_live_words : int;
  min_states : int;
  max_retire_per_trip : int;
}

(* The soft state cap sits below the engine's default hard cap (512), so
   shedding starts while fresh forks can still be admitted; the words
   cap corresponds to tens of MB of copy-on-write store. *)
let default_limits =
  { soft_states = 448; soft_cow_depth = 0; soft_live_words = 4_000_000;
    min_states = 4; max_retire_per_trip = 4 }

type t = {
  limits : limits;
  trips : int Atomic.t;
  requested : int Atomic.t;
}

let create limits =
  { limits; trips = Atomic.make 0; requested = Atomic.make 0 }

let limits t = t.limits
let trips t = Atomic.get t.trips
let requested t = Atomic.get t.requested

let decide t (p : Exec.pressure) =
  let l = t.limits in
  (* Never govern below the floor: a handful of states must survive for
     exploration to continue at all. *)
  let headroom = max 0 (p.pr_live_states - l.min_states) in
  if headroom = 0 then 0
  else begin
    let over_states =
      if l.soft_states > 0 && p.pr_live_states > l.soft_states then
        p.pr_live_states - l.soft_states
      else 0
    in
    (* Depth/heap pressure sheds gently — one state per trip; trips
       recur every 64 picks, so sustained pressure drains steadily while
       a transient spike costs almost nothing. *)
    let over_heap =
      if
        (l.soft_live_words > 0 && p.pr_live_words > l.soft_live_words)
        || (l.soft_cow_depth > 0 && p.pr_cow_depth > l.soft_cow_depth)
      then 1
      else 0
    in
    let n = min (min (max over_states over_heap) l.max_retire_per_trip)
              headroom
    in
    if n > 0 then begin
      Atomic.incr t.trips;
      ignore (Atomic.fetch_and_add t.requested n)
    end;
    n
  end

(* Checkpoint cadence ---------------------------------------------------

   Durability is a resource-governance concern too: checkpoints cost a
   frontier sweep plus a marshal of every live state, so the governor
   owns the pacing decision. The engine's checkpoint hook fires at
   every quiescent pick boundary; [checkpoint_due] turns that firehose
   into "every N engine steps". *)

type cadence = {
  c_every : int;
  mutable c_last : int;
  mutable c_taken : int;
}

let cadence every = { c_every = max 0 every; c_last = 0; c_taken = 0 }

let checkpoint_due c ~now =
  if c.c_every > 0 && now - c.c_last >= c.c_every then begin
    c.c_last <- now;
    c.c_taken <- c.c_taken + 1;
    true
  end
  else false

let checkpoints_taken c = c.c_taken
