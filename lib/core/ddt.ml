module Report = Ddt_checkers.Report

let test_driver = Session.run

let pp_report fmt (r : Session.result) =
  Format.fprintf fmt "=== DDT report for %s ===@." r.Session.r_driver;
  if r.Session.r_bugs = [] then Format.fprintf fmt "No bugs found.@."
  else begin
    Format.fprintf fmt "%d bug(s) found:@." (List.length r.Session.r_bugs);
    List.iteri
      (fun i b -> Format.fprintf fmt "%2d. %a@." (i + 1) Report.pp_bug b)
      r.Session.r_bugs
  end;
  (match r.Session.r_static with
   | [] -> ()
   | fs ->
       Format.fprintf fmt "%d static finding(s):@." (List.length fs);
       List.iteri
         (fun i f ->
           Format.fprintf fmt "%2d. %a@." (i + 1) Report.pp_static_finding f)
         fs);
  let stats = r.Session.r_stats in
  Format.fprintf fmt
    "coverage: %d/%d reachable blocks (%.1f%%), %d/%d by linear sweep | \
     %d invocations | %d states | %d instructions | %.2fs@."
    r.Session.r_covered_reachable r.Session.r_reachable_blocks
    (Session.reachable_coverage_percent r)
    (match List.rev r.Session.r_coverage with
     | [] -> 0
     | p :: _ -> p.Session.cp_blocks)
    r.Session.r_total_blocks
    r.Session.r_invocations
    stats.Ddt_symexec.Exec.st_states_created
    stats.Ddt_symexec.Exec.st_total_steps r.Session.r_wall_time;
  (match r.Session.r_never_reached with
   | [] -> ()
   | nr ->
       Format.fprintf fmt "never reached: %d reachable block(s): %s@."
         (List.length nr)
         (String.concat " "
            (List.map (Printf.sprintf "0x%x")
               (if List.length nr > 12 then
                  List.filteri (fun i _ -> i < 12) nr
                else nr)
             @ (if List.length nr > 12 then [ "..." ] else []))));
  (* States shed at the hard cap mean lost (unexplored) forks: a report
     that hides this overstates its own completeness. *)
  if stats.Ddt_symexec.Exec.st_states_dropped > 0 then
    Format.fprintf fmt
      "warning: %d state(s) dropped at the max_states cap — results may \
       be incomplete (raise max_states or configure the governor)@."
      stats.Ddt_symexec.Exec.st_states_dropped;
  if stats.Ddt_symexec.Exec.st_soft_retired > 0 then
    Format.fprintf fmt
      "governor: %d state(s) concretized and retired under resource \
       pressure (%d trip(s))@."
      stats.Ddt_symexec.Exec.st_soft_retired r.Session.r_governor_trips;
  if stats.Ddt_symexec.Exec.st_dbt_blocks > 0 then begin
    let compiled = stats.Ddt_symexec.Exec.st_dbt_compiled_steps in
    let total = max 1 stats.Ddt_symexec.Exec.st_total_steps in
    Format.fprintf fmt
      "dbt: %d superblock(s) compiled (%d chained), %d guard bailout(s), \
       %d de-compiled, %.0f%% of steps compiled@."
      stats.Ddt_symexec.Exec.st_dbt_blocks
      stats.Ddt_symexec.Exec.st_dbt_superblocks
      stats.Ddt_symexec.Exec.st_dbt_guard_bails
      stats.Ddt_symexec.Exec.st_dbt_decompiled
      (100.0 *. float_of_int compiled /. float_of_int total)
  end;
  if stats.Ddt_symexec.Exec.st_merged_states > 0
     || stats.Ddt_symexec.Exec.st_merge_refusals > 0
  then
    Format.fprintf fmt
      "merge: %d state(s) fused at post-dominators, %d value(s) lifted to \
       ite, %d fork(s) avoided, %d refusal(s)@."
      stats.Ddt_symexec.Exec.st_merged_states
      stats.Ddt_symexec.Exec.st_merge_ites
      stats.Ddt_symexec.Exec.st_merge_forks_avoided
      stats.Ddt_symexec.Exec.st_merge_refusals;
  let sv = stats.Ddt_symexec.Exec.st_solver in
  Format.fprintf fmt
    "solver: %d queries, %d group solves, %.0f%% cache hits, %d bit-blasts@."
    sv.Ddt_solver.Solver.s_queries sv.Ddt_solver.Solver.s_group_solves
    (100.0 *. Ddt_solver.Solver.cache_hit_rate sv)
    sv.Ddt_solver.Solver.s_bitblast_solves;
  if sv.Ddt_solver.Solver.s_cache_persist_hits > 0 then
    Format.fprintf fmt
      "solver store: %d hit(s) on entries loaded from the persistent \
       store@."
      sv.Ddt_solver.Solver.s_cache_persist_hits;
  if sv.Ddt_solver.Solver.s_incr_queries > 0 then
    Format.fprintf fmt
      "solver sessions: %d incremental queries (%d model hits, %d SAT \
       solves), %d frames reused, %d learned clauses retained, %d \
       rebuilds@."
      sv.Ddt_solver.Solver.s_incr_queries
      sv.Ddt_solver.Solver.s_incr_model_hits
      sv.Ddt_solver.Solver.s_incr_sat_solves
      sv.Ddt_solver.Solver.s_incr_skipped_recanon
      sv.Ddt_solver.Solver.s_incr_learned_retained
      sv.Ddt_solver.Solver.s_incr_rebuilds;
  if sv.Ddt_solver.Solver.s_exhaustions > 0 then
    Format.fprintf fmt
      "solver retries: %d budget exhaustion(s), %d escalated retries, %d \
       recovered@."
      sv.Ddt_solver.Solver.s_exhaustions sv.Ddt_solver.Solver.s_retries
      sv.Ddt_solver.Solver.s_retry_recovered;
  if stats.Ddt_symexec.Exec.st_workers > 1 then
    Format.fprintf fmt
      "parallel: %d workers | %d steals | %d renamed cache hits | \
       %d cross-worker cache hits@."
      stats.Ddt_symexec.Exec.st_workers stats.Ddt_symexec.Exec.st_steals
      sv.Ddt_solver.Solver.s_cache_renamed_hits
      sv.Ddt_solver.Solver.s_cache_cross_worker_hits;
  if stats.Ddt_symexec.Exec.st_rehomed > 0 then
    Format.fprintf fmt
      "dead-worker recovery: %d state(s) re-homed/re-shipped@."
      stats.Ddt_symexec.Exec.st_rehomed;
  (* Engine incidents: faults of the testing engine itself, quarantined
     by the guard instead of killing the session. *)
  (match r.Session.r_incidents with
  | [] -> ()
  | incs ->
      Format.fprintf fmt
        "%d engine incident(s) quarantined (%d worker restart(s)):@."
        (List.length incs) stats.Ddt_symexec.Exec.st_worker_restarts;
      List.iteri
        (fun i inc ->
          Format.fprintf fmt "%2d. %a@." (i + 1) Report.pp_incident inc)
        incs)

let pp_bug_detail fmt (b : Report.bug) =
  Format.fprintf fmt "%a@.--- execution trace ---@.%s@." Report.pp_bug b
    (Ddt_trace.Event.summarize b.Report.b_events)
