type driver_class = Network | Audio

type workload_item =
  | W_initialize
  | W_query
  | W_set
  | W_send
  | W_play
  | W_stop
  | W_timers
  | W_interrupt
  | W_reset
  | W_halt

type t = {
  driver_name : string;
  image : Ddt_dvm.Image.t;
  driver_class : driver_class;
  descriptor : Ddt_kernel.Pci.descriptor;
  registry : (string * int) list;
  workload : workload_item list;
  use_annotations : bool;
  annotations : Ddt_annot.Annot.set;
  exec_config : Ddt_symexec.Exec.config;
  max_total_steps : int;
  plateau_steps : int;
  max_bases_per_phase : int;
  concrete_device : int option;
  replay : Ddt_trace.Replay.script option;
  collect_crashdumps : bool;
  governor : Governor.limits option;
  checkpoint_every : int;
  (* checkpoint the session every N engine steps (0 = never); only
     effective with [jobs = 1] and fully symbolic hardware *)
  checkpoint_path : string option;
  (* where the checkpoint blob goes; default "<driver>.ckpt" *)
  store_dir : string option;
  (* root of the persistent solver store; None = no store *)
  persist : bool;
  (* master switch for the persistent store (still needs [store_dir]) *)
}

let default_network_workload =
  [ W_initialize; W_timers; W_query; W_set; W_send; W_reset; W_timers; W_halt ]

let default_audio_workload =
  [ W_initialize; W_play; W_timers; W_stop; W_halt ]

let default_descriptor =
  { Ddt_kernel.Pci.vendor_id = 0x10EC; device_id = 0x8029; revision = 1;
    bar_sizes = [ 0x1000 ]; irq_line = 9 }

let make ~driver_name ~image ~driver_class ?(descriptor = default_descriptor)
    ?(registry = []) ?workload ?(use_annotations = true)
    ?annotations ?(exec_config = Ddt_symexec.Exec.default_config)
    ?jobs ?static_guidance ?solver_incr ?dbt ?state_merging
    ?(max_total_steps = 3_000_000) ?(plateau_steps = 250_000)
    ?(max_bases_per_phase = 3) ?concrete_device ?replay
    ?(collect_crashdumps = false) ?governor ?(checkpoint_every = 0)
    ?checkpoint_path ?store_dir ?(persist = true) () =
  let exec_config =
    match jobs with
    | None -> exec_config
    | Some j -> { exec_config with Ddt_symexec.Exec.jobs = max 1 j }
  in
  let exec_config =
    match static_guidance with
    | None -> exec_config
    | Some g -> { exec_config with Ddt_symexec.Exec.static_guidance = g }
  in
  let exec_config =
    match solver_incr with
    | None -> exec_config
    | Some i -> { exec_config with Ddt_symexec.Exec.solver_incr = i }
  in
  let exec_config =
    match dbt with
    | None -> exec_config
    | Some d -> { exec_config with Ddt_symexec.Exec.dbt = d }
  in
  let exec_config =
    match state_merging with
    | None -> exec_config
    | Some m -> { exec_config with Ddt_symexec.Exec.state_merging = m }
  in
  let workload =
    match workload with
    | Some w -> w
    | None -> (
        match driver_class with
        | Network -> default_network_workload
        | Audio -> default_audio_workload)
  in
  let annotations =
    match annotations with
    | Some a -> a
    | None -> (
        match driver_class with
        | Network -> Ddt_annot.Ndis_annotations.set
        | Audio -> Ddt_annot.Portcls_annotations.set)
  in
  {
    driver_name; image; driver_class; descriptor; registry; workload;
    use_annotations; annotations; exec_config; max_total_steps;
    plateau_steps; max_bases_per_phase; concrete_device; replay;
    collect_crashdumps; governor; checkpoint_every; checkpoint_path;
    store_dir; persist;
  }

let workload_name = function
  | W_initialize -> "initialize"
  | W_query -> "query"
  | W_set -> "set"
  | W_send -> "send"
  | W_play -> "play"
  | W_stop -> "stop"
  | W_timers -> "timers"
  | W_interrupt -> "interrupt"
  | W_reset -> "reset"
  | W_halt -> "halt"
