(* Versioned machine-readable session reports. The summary record holds
   ints and strings only (percentages are derived at print time), so a
   parse of an emitted document compares structurally equal to the
   original — the round-trip property the schema test pins. *)

module Report = Ddt_checkers.Report

let schema_version = 5

type bug_row = {
  jb_kind : string;
  jb_key : string;
  jb_entry : string;
  jb_pc : int;
  jb_message : string;
}

type static_row = {
  js_rule : string;
  js_func : string;
  js_pos : int;
  js_message : string;
  (* schema 5: confirmation tier ("n/a" | "unconfirmed" | "confirmed")
     and, when confirmed, the key of the witnessing dynamic bug *)
  js_severity : string;
  js_confirm : string;
  js_confirmed_by : string;
}

type incident_row = {
  ji_kind : string;
  ji_worker : int;
  ji_state_id : int;
  ji_entry : string;
  ji_pc : int;
  ji_message : string;
  ji_replay : string;
  (* the incident's [Replay.script], serialized with [Replay.to_string]
     so a consumer can re-run the quarantined path verbatim *)
}

type summary = {
  j_schema : int;
  j_driver : string;
  j_bugs : bug_row list;
  j_static : static_row list;
  j_total_blocks : int;
  j_reachable_blocks : int;
  j_covered_blocks : int;
  j_covered_reachable : int;
  j_never_reached : int list;
  j_invocations : int;
  j_finished_states : int;
  j_paths_to_first_bug : int option;
  j_states_dropped : int;
  j_soft_retired : int;
  j_incidents : incident_row list;
  (* schema 3: block-compilation counters (all 0 when DBT is off) *)
  j_dbt_blocks : int;
  j_dbt_superblocks : int;
  j_dbt_guard_bails : int;
  j_dbt_decompiled : int;
  j_dbt_compiled_steps : int;
  j_total_steps : int;
  (* denominator for the compiled-vs-interpreted step fraction *)
  (* schema 4: post-dominator state-merging counters (all 0 when merging
     is off or never triggered) *)
  j_merged_states : int;
  j_merge_ites : int;
  j_merge_forks_avoided : int;
}

let confirm_strings = function
  | Report.Not_applicable -> ("n/a", "")
  | Report.Unconfirmed -> ("unconfirmed", "")
  | Report.Confirmed key -> ("confirmed", key)

let static_row_of_finding (f : Report.static_finding) =
  let confirm, by = confirm_strings f.Report.sf_confirm in
  { js_rule = f.Report.sf_rule; js_func = f.Report.sf_func;
    js_pos = f.Report.sf_pos; js_message = f.Report.sf_message;
    js_severity =
      Report.string_of_severity (Report.severity_of_static f);
    js_confirm = confirm; js_confirmed_by = by }

let of_result (r : Session.result) =
  {
    j_schema = schema_version;
    j_driver = r.Session.r_driver;
    j_bugs =
      List.map
        (fun (b : Report.bug) ->
          { jb_kind = Report.string_of_kind b.Report.b_kind;
            jb_key = b.Report.b_key;
            jb_entry = b.Report.b_entry;
            jb_pc = b.Report.b_pc;
            jb_message = b.Report.b_message })
        r.Session.r_bugs;
    j_static =
      List.map
        (fun (f : Report.static_finding) ->
          static_row_of_finding f)
        r.Session.r_static;
    j_total_blocks = r.Session.r_total_blocks;
    j_reachable_blocks = r.Session.r_reachable_blocks;
    j_covered_blocks =
      (match List.rev r.Session.r_coverage with
       | [] -> 0
       | p :: _ -> p.Session.cp_blocks);
    j_covered_reachable = r.Session.r_covered_reachable;
    j_never_reached = r.Session.r_never_reached;
    j_invocations = r.Session.r_invocations;
    j_finished_states = r.Session.r_finished_states;
    j_paths_to_first_bug = r.Session.r_paths_to_first_bug;
    j_states_dropped = r.Session.r_stats.Ddt_symexec.Exec.st_states_dropped;
    j_soft_retired = r.Session.r_stats.Ddt_symexec.Exec.st_soft_retired;
    j_incidents =
      List.map
        (fun (i : Report.incident) ->
          let open Ddt_symexec.Guard in
          { ji_kind = kind_label i.inc_kind;
            ji_worker = i.inc_worker;
            ji_state_id = i.inc_state_id;
            ji_entry = i.inc_entry;
            ji_pc = i.inc_pc;
            ji_message = i.inc_message;
            ji_replay = Ddt_trace.Replay.to_string i.inc_replay })
        r.Session.r_incidents;
    j_dbt_blocks = r.Session.r_stats.Ddt_symexec.Exec.st_dbt_blocks;
    j_dbt_superblocks = r.Session.r_stats.Ddt_symexec.Exec.st_dbt_superblocks;
    j_dbt_guard_bails = r.Session.r_stats.Ddt_symexec.Exec.st_dbt_guard_bails;
    j_dbt_decompiled = r.Session.r_stats.Ddt_symexec.Exec.st_dbt_decompiled;
    j_dbt_compiled_steps =
      r.Session.r_stats.Ddt_symexec.Exec.st_dbt_compiled_steps;
    j_total_steps = r.Session.r_stats.Ddt_symexec.Exec.st_total_steps;
    j_merged_states = r.Session.r_stats.Ddt_symexec.Exec.st_merged_states;
    j_merge_ites = r.Session.r_stats.Ddt_symexec.Exec.st_merge_ites;
    j_merge_forks_avoided =
      r.Session.r_stats.Ddt_symexec.Exec.st_merge_forks_avoided;
  }

(* --- emission --- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = "\"" ^ escape s ^ "\""

let jlist f xs = "[" ^ String.concat "," (List.map f xs) ^ "]"

let jobj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields)
  ^ "}"

let bug_row_json b =
  jobj
    [ ("kind", jstr b.jb_kind); ("key", jstr b.jb_key);
      ("entry", jstr b.jb_entry); ("pc", string_of_int b.jb_pc);
      ("message", jstr b.jb_message) ]

let static_row_json s =
  jobj
    [ ("rule", jstr s.js_rule); ("func", jstr s.js_func);
      ("pos", string_of_int s.js_pos); ("message", jstr s.js_message);
      ("severity", jstr s.js_severity);
      ("confirm", jstr s.js_confirm);
      ("confirmed_by", jstr s.js_confirmed_by) ]

let incident_row_json i =
  jobj
    [ ("kind", jstr i.ji_kind); ("worker", string_of_int i.ji_worker);
      ("state_id", string_of_int i.ji_state_id);
      ("entry", jstr i.ji_entry); ("pc", string_of_int i.ji_pc);
      ("message", jstr i.ji_message); ("replay", jstr i.ji_replay) ]

let to_string s =
  jobj
    [ ("schema", string_of_int s.j_schema);
      ("driver", jstr s.j_driver);
      ("bugs", jlist bug_row_json s.j_bugs);
      ("static", jlist static_row_json s.j_static);
      ("total_blocks", string_of_int s.j_total_blocks);
      ("reachable_blocks", string_of_int s.j_reachable_blocks);
      ("covered_blocks", string_of_int s.j_covered_blocks);
      ("covered_reachable", string_of_int s.j_covered_reachable);
      ("never_reached", jlist string_of_int s.j_never_reached);
      ("invocations", string_of_int s.j_invocations);
      ("finished_states", string_of_int s.j_finished_states);
      ("paths_to_first_bug",
       (match s.j_paths_to_first_bug with
        | None -> "null"
        | Some n -> string_of_int n));
      ("states_dropped", string_of_int s.j_states_dropped);
      ("soft_retired", string_of_int s.j_soft_retired);
      ("incidents", jlist incident_row_json s.j_incidents);
      ("dbt_blocks", string_of_int s.j_dbt_blocks);
      ("dbt_superblocks", string_of_int s.j_dbt_superblocks);
      ("dbt_guard_bails", string_of_int s.j_dbt_guard_bails);
      ("dbt_decompiled", string_of_int s.j_dbt_decompiled);
      ("dbt_compiled_steps", string_of_int s.j_dbt_compiled_steps);
      ("total_steps", string_of_int s.j_total_steps);
      ("merged_states", string_of_int s.j_merged_states);
      ("merge_ites", string_of_int s.j_merge_ites);
      ("merge_forks_avoided", string_of_int s.j_merge_forks_avoided) ]

(* --- parsing: a minimal JSON reader covering what [to_string] emits
   (objects, arrays, strings with the escapes above, integers, null) --- *)

type json =
  | J_obj of (string * json) list
  | J_arr of json list
  | J_str of string
  | J_int of int
  | J_null

exception Bad of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else raise (Bad (Printf.sprintf "expected '%c' at %d" c !pos))
  in
  let skip_ws () =
    while
      !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\n' || s.[!pos] = '\t'
                   || s.[!pos] = '\r')
    do
      advance ()
    done
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then raise (Bad "unterminated string");
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then raise (Bad "truncated escape"));
          (match s.[!pos] with
           | '"' -> Buffer.add_char b '"'; advance ()
           | '\\' -> Buffer.add_char b '\\'; advance ()
           | 'n' -> Buffer.add_char b '\n'; advance ()
           | 't' -> Buffer.add_char b '\t'; advance ()
           | 'u' ->
               advance ();
               if !pos + 4 > n then raise (Bad "truncated \\u");
               let hex = String.sub s !pos 4 in
               pos := !pos + 4;
               Buffer.add_char b (Char.chr (int_of_string ("0x" ^ hex) land 0xFF))
           | c -> raise (Bad (Printf.sprintf "bad escape '\\%c'" c)));
          loop ()
      | c -> Buffer.add_char b c; advance (); loop ()
    in
    loop ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> J_str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); J_obj [])
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((k, v) :: acc)
            | Some '}' -> advance (); List.rev ((k, v) :: acc)
            | _ -> raise (Bad "expected ',' or '}'")
          in
          J_obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); J_arr [])
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> raise (Bad "expected ',' or ']'")
          in
          J_arr (items [])
        end
    | Some 'n' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "null" then begin
          pos := !pos + 4;
          J_null
        end
        else raise (Bad "bad literal")
    | Some ('-' | '0' .. '9') ->
        let start = !pos in
        if peek () = Some '-' then advance ();
        while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
          advance ()
        done;
        if !pos = start then raise (Bad "bad number");
        J_int (int_of_string (String.sub s start (!pos - start)))
    | _ -> raise (Bad "unexpected input")
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise (Bad "trailing garbage");
  v

let field k = function
  | J_obj fields -> (
      match List.assoc_opt k fields with
      | Some v -> v
      | None -> raise (Bad ("missing field " ^ k)))
  | _ -> raise (Bad "not an object")

let as_int = function J_int i -> i | _ -> raise (Bad "expected int")
let as_str = function J_str s -> s | _ -> raise (Bad "expected string")
let as_arr = function J_arr xs -> xs | _ -> raise (Bad "expected array")

let bug_row_of j =
  { jb_kind = as_str (field "kind" j); jb_key = as_str (field "key" j);
    jb_entry = as_str (field "entry" j); jb_pc = as_int (field "pc" j);
    jb_message = as_str (field "message" j) }

let static_row_of j =
  { js_rule = as_str (field "rule" j); js_func = as_str (field "func" j);
    js_pos = as_int (field "pos" j); js_message = as_str (field "message" j);
    js_severity = as_str (field "severity" j);
    js_confirm = as_str (field "confirm" j);
    js_confirmed_by = as_str (field "confirmed_by" j) }

let incident_row_of j =
  { ji_kind = as_str (field "kind" j); ji_worker = as_int (field "worker" j);
    ji_state_id = as_int (field "state_id" j);
    ji_entry = as_str (field "entry" j); ji_pc = as_int (field "pc" j);
    ji_message = as_str (field "message" j);
    ji_replay = as_str (field "replay" j) }

let of_string str =
  match parse_json str with
  | exception Bad _ -> None
  | exception _ -> None
  | j -> (
      try
        let schema = as_int (field "schema" j) in
        if schema <> schema_version then None
        else
          Some
            {
              j_schema = schema;
              j_driver = as_str (field "driver" j);
              j_bugs = List.map bug_row_of (as_arr (field "bugs" j));
              j_static = List.map static_row_of (as_arr (field "static" j));
              j_total_blocks = as_int (field "total_blocks" j);
              j_reachable_blocks = as_int (field "reachable_blocks" j);
              j_covered_blocks = as_int (field "covered_blocks" j);
              j_covered_reachable = as_int (field "covered_reachable" j);
              j_never_reached =
                List.map as_int (as_arr (field "never_reached" j));
              j_invocations = as_int (field "invocations" j);
              j_finished_states = as_int (field "finished_states" j);
              j_paths_to_first_bug =
                (match field "paths_to_first_bug" j with
                 | J_null -> None
                 | v -> Some (as_int v));
              j_states_dropped = as_int (field "states_dropped" j);
              j_soft_retired = as_int (field "soft_retired" j);
              j_incidents =
                List.map incident_row_of (as_arr (field "incidents" j));
              j_dbt_blocks = as_int (field "dbt_blocks" j);
              j_dbt_superblocks = as_int (field "dbt_superblocks" j);
              j_dbt_guard_bails = as_int (field "dbt_guard_bails" j);
              j_dbt_decompiled = as_int (field "dbt_decompiled" j);
              j_dbt_compiled_steps = as_int (field "dbt_compiled_steps" j);
              j_total_steps = as_int (field "total_steps" j);
              j_merged_states = as_int (field "merged_states" j);
              j_merge_ites = as_int (field "merge_ites" j);
              j_merge_forks_avoided =
                as_int (field "merge_forks_avoided" j);
            }
      with Bad _ -> None)

(* Standalone static-analysis report: the static rows only, under the
   same schema version (for [ddt_cli analyze --json]). *)
let statics_to_string ~driver (findings : Report.static_finding list) =
  jobj
    [ ("schema", string_of_int schema_version);
      ("driver", jstr driver);
      ("static",
       jlist static_row_json (List.map static_row_of_finding findings)) ]

(* Crash-safe report emission: the document lands under a temporary name
   and is renamed into place, so a reader (or a crash mid-write) never
   observes a half-written report — the same discipline as every other
   durability artifact ([Ddt_solver.Blob]). *)
let write_file path s =
  let doc = to_string s in
  let tmp = path ^ ".tmp" in
  try
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc doc);
    Sys.rename tmp path;
    Ok ()
  with Sys_error e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    Error e
