(** A full DDT testing session: load the driver binary into the VM, fool
    the kernel into binding it to the fake symbolic device, exercise every
    workload phase with selective symbolic execution, run the dynamic
    checkers, and collect bugs, traces and coverage.

    This is the programmatic equivalent of the paper's "Test Now" button. *)

type coverage_point = {
  cp_time : float;      (** seconds since session start *)
  cp_steps : int;       (** engine instructions executed so far *)
  cp_blocks : int;      (** cumulative distinct basic blocks *)
}

type result = {
  r_driver : string;
  r_bugs : Ddt_checkers.Report.bug list;
  r_coverage : coverage_point list;      (** chronological *)
  r_total_blocks : int;                  (** static basic-block count *)
  r_stats : Ddt_symexec.Exec.stats;
  r_wall_time : float;
  r_invocations : int;
  r_finished_states : int;
  r_kcalls : int;
  r_tree : Ddt_trace.Tree.t;
  (** the reconstructed execution tree of all explored paths (§3.5) *)
  r_crashdumps : (int * Ddt_trace.Crashdump.t) list;
  (** crashed-state id -> crash dump (when [collect_crashdumps]) *)
  r_reachable_blocks : int;
  (** size of the statically reachable block universe
      ([Ddt_staticx.Icfg]) — the sound coverage denominator, as opposed to
      [r_total_blocks], the linear-sweep over-approximation *)
  r_covered_reachable : int;
  (** executed blocks inside the reachable universe *)
  r_never_reached : int list;
  (** sorted image-relative leaders of reachable blocks never executed *)
  r_static : Ddt_checkers.Report.static_finding list;
  (** pre-analysis findings ([Ddt_staticx.Sfind]); kept apart from
      [r_bugs], never influencing dynamic bug keys *)
  r_paths_to_first_bug : int option;
  (** completed paths when the first dynamic bug surfaced *)
  r_incidents : Ddt_checkers.Report.incident list;
  (** quarantined engine incidents ([Ddt_symexec.Guard]): worker
      crashes, state faults, solver budget exhaustions — each with a
      replayable script, kept apart from [r_bugs] *)
  r_governor_trips : int;
  (** times the resource governor ({!Governor}) requested retirements;
      0 when [Config.governor] is [None] *)
}

val run : Config.t -> result

(** {1 Durability}

    With [Config.checkpoint_every > 0] (and a single worker, fully
    symbolic hardware, no replay script) the session writes a
    checkpoint blob — engine image, phase bases, report sink, query
    cache, session counters — every N engine steps, at quiescent
    scheduler boundaries, via atomic tmp+rename ({!Ddt_solver.Blob}).
    A SIGKILL'd run restarted with {!resume} finishes the interrupted
    phase and the remaining workload, producing the same report the
    uninterrupted run would have: with one worker, byte-identical
    schema-v5 JSON. Checkpoint writes are best-effort — a full disk
    costs durability, never the run. *)

val default_checkpoint_path : Config.t -> string
(** [Config.checkpoint_path], or ["<driver>.ckpt"]. *)

val checkpoint_driver : string -> (string, string) Stdlib.result
(** Peek a checkpoint file's driver name (to rebuild the matching
    config) without restoring it. Corrupt, truncated or version-skewed
    files are [Error _]. *)

val resume : Config.t -> path:string -> (result, string) Stdlib.result
(** [resume cfg ~path] rebuilds the session over [cfg] (which must name
    the same driver the checkpoint was taken from), restores the
    checkpointed progress, and runs to completion. [Error _] if the
    checkpoint cannot be read or belongs to another driver; a resumed
    session keeps checkpointing to the same path. *)

(** {1 Distributed exploration}

    The session-side half of the multi-process tier: everything
    [Ddt_dist]'s coordinator and worker loops need that touches session
    state — phase seeding, frontier export as shippable images, worker
    result batches, deterministic base selection, and report merging.
    The process plumbing (fork, wire framing, scheduling, death
    detection) lives in [Ddt_dist]. *)

module Dist : sig
  type batch = {
    db_bugs : Ddt_checkers.Report.bug list;
    (** the worker sink's full bug list (cumulative; the coordinator
        dedups by key) *)
    db_candidates : (string * Ddt_symexec.Symstate.image) list;
    (** phase-base candidates finished since the last batch, keyed by
        {!candidate_key} *)
    db_covered : int list;
    (** every absolute block address covered so far (cumulative) *)
    db_stats : Ddt_symexec.Exec.stats;  (** cumulative for this worker *)
    db_finished : int;                  (** cumulative finished states *)
  }

  type t

  val prepare : ?foreign_store:bool -> Config.t -> t
  (** Build a session for distributed use. [foreign_store] marks the
      persistent solver store as shared with processes minting variable
      ids in other lanes: imports skip subset indexing (exact renamed
      hits only), keeping cross-process reuse sound. *)

  val config : t -> Config.t

  val candidate_key : Ddt_symexec.Symstate.t -> string
  (** Deterministic, arrival-order-independent sort key for workload
      phase-base candidates (clean returns rank first, then
      path-content fields). *)

  (** {2 Coordinator side} *)

  val seed_load_phase : t -> unit
  val seed_workload_phase : t -> int -> Config.workload_item -> int
  (** Queue phase [idx] over the current bases; returns how many
      invocations were queued (0 = skip the phase). *)

  val export_frontier : t -> Ddt_symexec.Symstate.image list
  (** Remove every queued state for shipping. The list must be
      marshalled in one frame so sibling sharing survives. *)

  val merge_batch : t -> wid:int -> batch -> unit
  (** Fold one worker batch into the coordinator's report state.
      Idempotent per fact (bugs dedup by key, blocks by claim flag;
      stats/finished replace the worker's previous cumulative values). *)

  val end_phase : t -> unit
  (** Sort accumulated candidates by {!candidate_key} and install the
      next phase's bases ([1] for the load phase,
      [Config.max_bases_per_phase] after). *)

  val explore_local : t -> Ddt_symexec.Symstate.image list -> unit
  (** Coordinator fallback: explore a shipment on the local engine
      (zero workers requested, or all workers dead). *)

  val dist_finalize : t -> workers:int -> reships:int -> result
  (** Merge per-worker statistics into the coordinator's and build the
      final result; bugs are key-sorted (merge order is scheduling
      noise). [reships] counts dead workers' re-shipped states. *)

  val store_hits : t -> int
  (** Persistent-store cache hits in this process so far. *)

  (** {2 Worker side} *)

  val import : t -> Ddt_symexec.Symstate.image list -> unit
  val explore : t -> tick:(unit -> unit) -> unit
  (** Run until the local frontier drains. [tick] fires at every pick
      boundary — where the worker services steal requests and store
      flushes. *)

  val export_steal : t -> max:int -> Ddt_symexec.Symstate.image list
  val queue_length : t -> int
  val take_batch : t -> batch
  val flush_store : t -> int
  val refresh_store : t -> int
end

val coverage_percent : result -> float
(** Final dynamic coverage against the linear-sweep block count. *)

val reachable_coverage_percent : result -> float
(** Final dynamic coverage against the statically reachable universe —
    the honest number a session report should lead with. *)
