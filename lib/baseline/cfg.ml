module Isa = Ddt_dvm.Isa
module Image = Ddt_dvm.Image

type token =
  | Tok_offset of int
  | Tok_local of int
  | Tok_unknown

type kcall_site = {
  kc_name : string;
  kc_arg0 : token;
  kc_pos : int;
}

type block = {
  b_start : int;
  b_instrs : (int * Isa.instr) list;
  b_kcalls : kcall_site list;
  mutable b_succs : int list;
  b_is_exit : bool;
}

type func = {
  f_name : string;
  f_start : int;
  f_blocks : (int, block) Hashtbl.t;
  f_entry : int;
}

(* Recover the token for kcall argument 0 by walking backwards from the
   kcall: find the last `push rX` and the instruction sequence that
   computed rX. Recognizes the Mini-C compiler's idioms:
     - add r0, r1, r0 / pop r0 / mov r1, r0 / movi r0, K   (base + K)
     - sub r0, fp, K ; push                                 (local address)
     - ldw r0, [fp +/- K] ; push                            (local value)
*)
let arg0_token instrs_before =
  (* instrs_before: instructions of the block before the kcall, newest
     first. Skip other pushes' producers conservatively: argument 0 is the
     LAST push before the kcall. *)
  match instrs_before with
  | (_, Isa.Push r) :: rest -> (
      let producer = function
        | (_, Isa.Alu (Isa.Add, rd, _, _)) :: more when rd = r -> (
            (* pattern: movi r0,K ; mov r1,r0 ; pop r0 ; add r0,r0,r1 *)
            let rec find_movi = function
              | (_, Isa.Movi (_, k)) :: _ -> Tok_offset k
              | (_, Isa.Push _) :: _ -> Tok_unknown
              | _ :: m -> find_movi m
              | [] -> Tok_unknown
            in
            match more with
            | (_, Isa.Pop _) :: m2 -> find_movi m2
            | _ -> Tok_unknown)
        | (_, Isa.Alui (Isa.Add, rd, base, k)) :: _ when rd = r ->
            if base = Isa.fp then Tok_local (-k land 0xFFFFFFFF)
            else Tok_offset k
        | (_, Isa.Alui (Isa.Sub, rd, base, k)) :: _ when rd = r ->
            if base = Isa.fp then Tok_local k else Tok_unknown
        | (_, Isa.Ldw (rd, base, off)) :: _ when rd = r ->
            if base = Isa.fp then Tok_local off else Tok_unknown
        | (_, Isa.Movi (rd, k)) :: _ when rd = r -> Tok_offset k
        | _ -> Tok_unknown
      in
      producer rest)
  | _ -> Tok_unknown

let build (img : Image.t) =
  (* decode-once: index the shared per-image instruction array rather
     than re-decoding the text section. *)
  let instrs =
    let code = Image.code_array img in
    let acc = ref [] in
    for i = Array.length code - 1 downto 0 do
      match code.(i) with
      | Some instr -> acc := (i * Isa.instr_size, instr) :: !acc
      | None -> ()
    done;
    !acc
  in
  let funcs_sorted =
    List.sort (fun (_, a) (_, b) -> compare a b) img.Image.funcs
  in
  let text_len = Bytes.length img.Image.text in
  let func_extent start =
    let rec next = function
      | [] -> text_len
      | (_, a) :: rest -> if a > start then a else next rest
    in
    next funcs_sorted
  in
  let block_leaders = Ddt_dvm.Disasm.basic_block_starts img in
  List.map
    (fun (fname, fstart) ->
      let fend = func_extent fstart in
      let f_instrs =
        List.filter (fun (pos, _) -> pos >= fstart && pos < fend) instrs
      in
      let leaders =
        fstart
        :: List.filter (fun l -> l > fstart && l < fend) block_leaders
        |> List.sort_uniq compare
      in
      let blocks = Hashtbl.create 16 in
      let rec build_blocks = function
        | [] -> ()
        | leader :: rest ->
            let block_end =
              match rest with [] -> fend | next :: _ -> next
            in
            let b_instrs =
              List.filter
                (fun (pos, _) -> pos >= leader && pos < block_end)
                f_instrs
            in
            (* Collect kcalls with their recovered argument tokens. *)
            let kcalls = ref [] in
            let seen_rev = ref [] in
            List.iter
              (fun (pos, i) ->
                (match i with
                 | Isa.Kcall n
                   when n >= 0 && n < Array.length img.Image.imports ->
                     kcalls :=
                       { kc_name = img.Image.imports.(n);
                         kc_arg0 = arg0_token !seen_rev;
                         kc_pos = pos }
                       :: !kcalls
                 | _ -> ());
                seen_rev := (pos, i) :: !seen_rev)
              b_instrs;
            let last = List.nth_opt (List.rev b_instrs) 0 in
            let succs, is_exit =
              match last with
              | Some (_pos, Isa.Jmp t) when t >= fstart && t < fend ->
                  ([ t ], false)
              | Some (_, Isa.Jmp _) -> ([], true)
              | Some (pos, (Isa.Jz (_, t) | Isa.Jnz (_, t))) ->
                  let fall = pos + Isa.instr_size in
                  let ss = if t >= fstart && t < fend then [ t ] else [] in
                  ((if fall < fend then fall :: ss else ss), false)
              | Some (_, (Isa.Ret | Isa.Hlt)) -> ([], true)
              | Some (pos, _) ->
                  let fall = pos + Isa.instr_size in
                  ((if fall < fend then [ fall ] else []), fall >= fend)
              | None -> ([], true)
            in
            Hashtbl.replace blocks leader
              { b_start = leader; b_instrs; b_kcalls = List.rev !kcalls;
                b_succs = succs; b_is_exit = is_exit };
            build_blocks rest
      in
      build_blocks leaders;
      { f_name = fname; f_start = fstart; f_blocks = blocks; f_entry = fstart })
    img.Image.funcs
