(** Execution-trace events (§3.5 of the paper).

    DDT's traces record executed program counters, memory accesses with
    address/value/kind, creation and propagation of symbolic values,
    constraints added at branches, and whether each branch forked. Each
    symbolic state carries its trace as a prepend-only list, so forking
    shares the common prefix structurally — the trace analog of the
    copy-on-write state representation. *)

type t =
  | E_exec of int
      (** program counter of an executed instruction *)
  | E_branch of { pc : int; taken : bool; forked : bool;
                  cond : Ddt_solver.Expr.t }
  | E_mem of { pc : int; write : bool; addr : Ddt_solver.Expr.t;
               width : int; value : Ddt_solver.Expr.t }
  | E_sym_create of { name : string; origin : string;
                      var : Ddt_solver.Expr.var }
      (** a fresh symbolic value entered the system (device read,
          annotation, symbolic entry argument) *)
  | E_concretize of { pc : int; expr : Ddt_solver.Expr.t; value : int;
                      reason : string }
  | E_kcall of { pc : int; name : string }
  | E_kcall_ret of { name : string }
  | E_entry of { name : string; addr : int }
  | E_entry_ret of { name : string; ret : int }
  | E_interrupt of { site : string; phase : string }
      (** symbolic interrupt injected: where, and isr/dpc/timer phase *)
  | E_choice of { label : string; choice : string }
      (** which alternative an annotation fork took on this path *)
  | E_merge of { pc : int; absorbed : int; cond : Ddt_solver.Expr.t }
      (** recorded on the surviving state when a sibling state was fused
          into it at merge point [pc]; [cond] is the absorbed path's
          guard (the [ite] condition selecting its values) *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val pcs : t list -> int list
(** Executed program counters, oldest first (input is newest-first). *)

val summarize : t list -> string
(** A short multi-line digest: counts per event class plus the last few
    events; used in bug reports. *)
