module Expr = Ddt_solver.Expr

type t =
  | E_exec of int
  | E_branch of { pc : int; taken : bool; forked : bool; cond : Expr.t }
  | E_mem of { pc : int; write : bool; addr : Expr.t; width : int;
               value : Expr.t }
  | E_sym_create of { name : string; origin : string; var : Expr.var }
  | E_concretize of { pc : int; expr : Expr.t; value : int; reason : string }
  | E_kcall of { pc : int; name : string }
  | E_kcall_ret of { name : string }
  | E_entry of { name : string; addr : int }
  | E_entry_ret of { name : string; ret : int }
  | E_interrupt of { site : string; phase : string }
  | E_choice of { label : string; choice : string }
  | E_merge of { pc : int; absorbed : int; cond : Expr.t }
      (** recorded on the surviving state when a sibling was fused into
          it at merge point [pc]; [cond] is the absorbed path's guard
          (the [ite] condition selecting its values) *)

let pp fmt = function
  | E_exec pc -> Format.fprintf fmt "exec 0x%x" pc
  | E_branch { pc; taken; forked; cond } ->
      Format.fprintf fmt "branch 0x%x taken=%b forked=%b cond=%a" pc taken
        forked Expr.pp cond
  | E_mem { pc; write; addr; width; value } ->
      Format.fprintf fmt "%s 0x%x [%a] w%d = %a"
        (if write then "write" else "read")
        pc Expr.pp addr width Expr.pp value
  | E_sym_create { name; origin; var } ->
      Format.fprintf fmt "symbolic %s (%s) as %a" name origin Expr.pp_var var
  | E_concretize { pc; expr; value; reason } ->
      Format.fprintf fmt "concretize 0x%x %a := 0x%x (%s)" pc Expr.pp expr
        value reason
  | E_kcall { pc; name } -> Format.fprintf fmt "kcall 0x%x %s" pc name
  | E_kcall_ret { name } -> Format.fprintf fmt "kcall-ret %s" name
  | E_entry { name; addr } -> Format.fprintf fmt "entry %s @ 0x%x" name addr
  | E_entry_ret { name; ret } ->
      Format.fprintf fmt "entry-ret %s = 0x%x" name ret
  | E_interrupt { site; phase } ->
      Format.fprintf fmt "interrupt at %s phase=%s" site phase
  | E_choice { label; choice } ->
      Format.fprintf fmt "choice %s -> %s" label choice
  | E_merge { pc; absorbed; cond } ->
      Format.fprintf fmt "merge 0x%x absorbed state %d under %a" pc absorbed
        Expr.pp cond

let to_string e = Format.asprintf "%a" pp e

let pcs events =
  List.fold_left
    (fun acc e -> match e with E_exec pc -> pc :: acc | _ -> acc)
    [] events

let summarize events =
  let execs = ref 0 and mems = ref 0 and branches = ref 0 and forks = ref 0 in
  let syms = ref 0 and kcalls = ref 0 and irqs = ref 0 in
  List.iter
    (function
      | E_exec _ -> incr execs
      | E_mem _ -> incr mems
      | E_branch { forked; _ } ->
          incr branches;
          if forked then incr forks
      | E_sym_create _ -> incr syms
      | E_kcall _ -> incr kcalls
      | E_interrupt _ -> incr irqs
      | _ -> ())
    events;
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "%d instructions, %d memory accesses, %d branches (%d forked), %d \
        symbolic values, %d kernel calls, %d interrupts\n"
       !execs !mems !branches !forks !syms !kcalls !irqs);
  Buffer.add_string buf "last events:\n";
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  List.iter
    (fun e -> Buffer.add_string buf ("  " ^ to_string e ^ "\n"))
    (List.rev (take 12 events));
  Buffer.contents buf
