type t = {
  name : string;
  text : bytes;
  data : bytes;
  bss_size : int;
  entry : int;
  imports : string array;
  exports : (string * int) list;
  relocs : int list;
  funcs : (string * int) list;
}

type loaded = {
  image : t;
  base : int;
  text_start : int;
  text_end : int;
  data_start : int;
  data_end : int;
  code : Isa.instr option array;
}

(* Decode every instruction slot of the text section once, from the
   relocated bytes in memory (relocation patches 32-bit immediate fields
   in place, so decoding [img.text] directly would see pre-rebase
   addresses). Slots that do not decode — data placed in text — are
   [None]; executing one is the usual bad-opcode fault, discovered
   lazily exactly as per-fetch decoding would. *)
let decode_text mem ~base ~len =
  let slots = len / Isa.instr_size in
  let text = Mem.read_bytes mem base len in
  Array.init slots (fun i ->
      match Isa.decode text (i * Isa.instr_size) with
      | instr -> Some instr
      | exception Isa.Invalid_opcode _ -> None)

(* Pre-load sibling of [loaded.code]: decode the *unrelocated* text once
   per image and share the array across every static consumer (linear
   sweep, baseline CFG, interprocedural ICFG). Address-carrying
   immediates are image-relative here, which is exactly what the static
   analyses want. The memo is an ephemeron so cached arrays die with
   their image; keys compare physically (images are plain records with
   no identity of their own) and hash on the name. *)
module Code_memo = Ephemeron.K1.Make (struct
  type nonrec t = t

  let equal = ( == )
  let hash img = Hashtbl.hash img.name
end)

let code_memo : Isa.instr option array Code_memo.t = Code_memo.create 16
let code_memo_lock = Mutex.create ()

let code_array img =
  Mutex.lock code_memo_lock;
  let arr =
    match Code_memo.find_opt code_memo img with
    | Some a -> a
    | None ->
        let slots = Bytes.length img.text / Isa.instr_size in
        let a =
          Array.init slots (fun i ->
              match Isa.decode img.text (i * Isa.instr_size) with
              | instr -> Some instr
              | exception Isa.Invalid_opcode _ -> None)
        in
        Code_memo.replace code_memo img a;
        a
  in
  Mutex.unlock code_memo_lock;
  arr

let load img mem ~base =
  Mem.load_bytes mem base img.text;
  let data_start = base + Bytes.length img.text in
  Mem.load_bytes mem data_start img.data;
  (* Zero the bss. *)
  for i = 0 to img.bss_size - 1 do
    Mem.write_u8 mem (data_start + Bytes.length img.data + i) 0
  done;
  (* Patch relocations: each is the offset of a 32-bit field holding an
     image-relative address. *)
  List.iter
    (fun off ->
      let v = Mem.read_u32 mem (base + off) in
      Mem.write_u32 mem (base + off) ((v + base) land 0xFFFFFFFF))
    img.relocs;
  {
    image = img;
    base;
    text_start = base;
    text_end = base + Bytes.length img.text;
    data_start;
    data_end = data_start + Bytes.length img.data + img.bss_size;
    code = decode_text mem ~base ~len:(Bytes.length img.text);
  }

let export_addr l name = l.base + List.assoc name l.image.exports

let in_text l addr = addr >= l.text_start && addr < l.text_end

(* --- serialization --------------------------------------------------- *)

let magic = "DXE1"

let to_bytes img =
  let buf = Buffer.create 1024 in
  let u32 v =
    Buffer.add_int32_le buf (Int32.of_int (v land 0xFFFFFFFF))
  in
  let str s =
    u32 (String.length s);
    Buffer.add_string buf s
  in
  Buffer.add_string buf magic;
  str img.name;
  u32 (Bytes.length img.text);
  Buffer.add_bytes buf img.text;
  u32 (Bytes.length img.data);
  Buffer.add_bytes buf img.data;
  u32 img.bss_size;
  u32 img.entry;
  u32 (Array.length img.imports);
  Array.iter str img.imports;
  u32 (List.length img.exports);
  List.iter (fun (n, a) -> str n; u32 a) img.exports;
  u32 (List.length img.relocs);
  List.iter u32 img.relocs;
  u32 (List.length img.funcs);
  List.iter (fun (n, a) -> str n; u32 a) img.funcs;
  Buffer.to_bytes buf

let of_bytes b =
  let pos = ref 0 in
  let fail msg = failwith ("Image.of_bytes: " ^ msg) in
  let need n = if !pos + n > Bytes.length b then fail "truncated" in
  let u32 () =
    need 4;
    let v = Int32.to_int (Bytes.get_int32_le b !pos) land 0xFFFFFFFF in
    pos := !pos + 4;
    v
  in
  let str () =
    let n = u32 () in
    need n;
    let s = Bytes.sub_string b !pos n in
    pos := !pos + n;
    s
  in
  let raw () =
    let n = u32 () in
    need n;
    let s = Bytes.sub b !pos n in
    pos := !pos + n;
    s
  in
  need 4;
  if Bytes.sub_string b 0 4 <> magic then fail "bad magic";
  pos := 4;
  let name = str () in
  let text = raw () in
  let data = raw () in
  let bss_size = u32 () in
  let entry = u32 () in
  let imports = Array.init (u32 ()) (fun _ -> str ()) in
  let exports = List.init (u32 ()) (fun _ -> let n = str () in (n, u32 ())) in
  let relocs = List.init (u32 ()) (fun _ -> u32 ()) in
  let funcs = List.init (u32 ()) (fun _ -> let n = str () in (n, u32 ())) in
  { name; text; data; bss_size; entry; imports; exports; relocs; funcs }

type stats = {
  binary_size : int;
  code_size : int;
  num_functions : int;
  num_kernel_imports : int;
}

let stats img =
  {
    binary_size = Bytes.length (to_bytes img);
    code_size = Bytes.length img.text;
    num_functions = List.length img.funcs;
    num_kernel_imports = Array.length img.imports;
  }
