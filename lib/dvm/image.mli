(** DXE — the DVM executable image format.

    A DXE image is what a "closed-source binary driver" is in this system:
    text and data sections, an entry point, an import table naming the
    kernel API functions the driver calls, exported symbols, and a
    relocation list. Drivers are shipped, loaded and tested in this form
    only; the testing stack never sees their source.

    Addresses inside an image are image-relative; {!load} rebases them. *)

type t = {
  name : string;
  text : bytes;                (** executable section *)
  data : bytes;                (** initialized data (includes zeroed space) *)
  bss_size : int;
  entry : int;                 (** image-relative entry offset *)
  imports : string array;      (** [Kcall n] calls [imports.(n)] *)
  exports : (string * int) list;
  relocs : int list;           (** image-relative offsets of 32-bit address
                                   fields to be rebased at load time *)
  funcs : (string * int) list; (** function symbols, for image statistics *)
}

type loaded = {
  image : t;
  base : int;
  text_start : int;
  text_end : int;              (** exclusive *)
  data_start : int;
  data_end : int;              (** exclusive; covers data + bss *)
  code : Isa.instr option array;
  (** decode-once instruction array, one slot per [Isa.instr_size] bytes
      of text, built from the {e relocated} bytes at load time. [None]
      marks an undecodable slot (data in text). Shared by the concrete
      interpreter, the symbolic engine and the block compiler — replaces
      the per-consumer decode caches. *)
}

val load : t -> Mem.t -> base:int -> loaded
(** Copies sections into memory at [base] and patches relocations. *)

val code_array : t -> Isa.instr option array
(** Pre-load sibling of {!field-loaded.code}: the {e unrelocated} text
    decoded once per image (address immediates stay image-relative).
    Memoized per image value, so the linear sweep, the baseline CFG and
    the interprocedural ICFG all index one shared array instead of
    re-decoding the text section. Do not mutate the result. *)

val export_addr : loaded -> string -> int
(** Absolute address of an exported symbol. @raise Not_found *)

val in_text : loaded -> int -> bool
(** Is this address inside the image's executable section? This predicate
    defines the selective-symbolic-execution boundary. *)

(** {1 Serialization} — the on-disk binary form. *)

val to_bytes : t -> bytes
val of_bytes : bytes -> t
(** @raise Failure on a malformed image. *)

(** {1 Statistics} (Table 1 of the paper) *)

type stats = {
  binary_size : int;           (** size of the serialized image *)
  code_size : int;             (** text section size *)
  num_functions : int;
  num_kernel_imports : int;
}

val stats : t -> stats
