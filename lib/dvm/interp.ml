type fault =
  | Null_deref
  | Div_by_zero
  | Bad_opcode
  | Stack_overflow
  | Bad_jump

exception Fault of fault * int

let string_of_fault = function
  | Null_deref -> "null pointer dereference"
  | Div_by_zero -> "division by zero"
  | Bad_opcode -> "invalid opcode"
  | Stack_overflow -> "stack overflow"
  | Bad_jump -> "jump outside executable memory"

type hooks = {
  mutable on_step : int -> unit;
  mutable on_read : int -> int -> int -> unit;
  mutable on_write : int -> int -> int -> unit;
}

type env = {
  mem : Mem.t;
  cpu : Cpu.t;
  mutable kcall : int -> unit;
  hooks : hooks;
  mutable steps : int;
  mutable fuel : int;
  mutable image : Image.loaded option;
}

(* Shared physical no-op closures: the block compiler treats "all hooks
   are these exact closures" as the license to skip per-instruction hook
   dispatch inside compiled blocks. *)
let nop_step : int -> unit = fun _ -> ()
let nop_rw : int -> int -> int -> unit = fun _ _ _ -> ()

let no_hooks () = { on_step = nop_step; on_read = nop_rw; on_write = nop_rw }

let hooks_are_default h =
  h.on_step == nop_step && h.on_read == nop_rw && h.on_write == nop_rw

let create ?(fuel = 50_000_000) ?image mem =
  { mem; cpu = Cpu.create ();
    kcall = (fun n -> failwith (Printf.sprintf "unbound kcall %d" n));
    hooks = no_hooks (); steps = 0; fuel; image }

let mask32 v = v land 0xFFFFFFFF

let to_signed32 v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

let alu op a b pc =
  match op with
  | Isa.Add -> mask32 (a + b)
  | Isa.Sub -> mask32 (a - b)
  | Isa.Mul -> mask32 (a * b)
  | Isa.Divu -> if b = 0 then raise (Fault (Div_by_zero, pc)) else a / b
  | Isa.Remu -> if b = 0 then raise (Fault (Div_by_zero, pc)) else a mod b
  | Isa.And -> a land b
  | Isa.Or -> a lor b
  | Isa.Xor -> a lxor b
  | Isa.Shl -> mask32 (a lsl (b land 31))
  | Isa.Shru -> a lsr (b land 31)
  | Isa.Shrs -> mask32 (to_signed32 a asr (b land 31))

let cmp op a b =
  let holds =
    match op with
    | Isa.Eq -> a = b
    | Isa.Ne -> a <> b
    | Isa.Ltu -> a < b
    | Isa.Leu -> a <= b
    | Isa.Lts -> to_signed32 a < to_signed32 b
    | Isa.Les -> to_signed32 a <= to_signed32 b
  in
  if holds then 1 else 0

let check_data_addr _env pc addr =
  if addr land 0xFFFFFFFF < Layout.null_guard then raise (Fault (Null_deref, pc))

let read_u32 env pc addr =
  let addr = mask32 addr in
  check_data_addr env pc addr;
  let v = Mem.read_u32 env.mem addr in
  env.hooks.on_read addr 4 v;
  v

let read_u8 env pc addr =
  let addr = mask32 addr in
  check_data_addr env pc addr;
  let v = Mem.read_u8 env.mem addr in
  env.hooks.on_read addr 1 v;
  v

let write_u32 env pc addr v =
  let addr = mask32 addr in
  check_data_addr env pc addr;
  env.hooks.on_write addr 4 v;
  Mem.write_u32 env.mem addr v

let write_u8 env pc addr v =
  let addr = mask32 addr in
  check_data_addr env pc addr;
  env.hooks.on_write addr 1 v;
  Mem.write_u8 env.mem addr v

let push env pc v =
  let sp = Cpu.get env.cpu Isa.sp - 4 in
  if sp < Layout.stack_limit then raise (Fault (Stack_overflow, pc));
  Cpu.set env.cpu Isa.sp sp;
  write_u32 env pc sp v

let pop env pc =
  let sp = Cpu.get env.cpu Isa.sp in
  let v = read_u32 env pc sp in
  Cpu.set env.cpu Isa.sp (sp + 4);
  v

let decode_mem env pc =
  let b = Mem.read_bytes env.mem pc Isa.instr_size in
  try Isa.decode b 0
  with Isa.Invalid_opcode _ -> raise (Fault (Bad_opcode, pc))

let fetch env pc =
  (* Aligned fetches inside the loaded text hit the decode-once array
     built at [Image.load]; anything else (no image attached, or a jump
     to an unaligned/out-of-text address) decodes straight from memory. *)
  match env.image with
  | Some l
    when pc >= l.Image.text_start && pc < l.Image.text_end
         && (pc - l.Image.text_start) land (Isa.instr_size - 1) = 0 -> (
      match l.Image.code.((pc - l.Image.text_start) / Isa.instr_size) with
      | Some i -> i
      | None -> raise (Fault (Bad_opcode, pc)))
  | _ -> decode_mem env pc

let step env =
  let cpu = env.cpu in
  let pc = cpu.Cpu.pc in
  env.hooks.on_step pc;
  env.steps <- env.steps + 1;
  let instr = fetch env pc in
  let next = pc + Isa.instr_size in
  let g = Cpu.get cpu and s = Cpu.set cpu in
  match instr with
  | Isa.Nop -> cpu.Cpu.pc <- next
  | Isa.Hlt -> cpu.Cpu.halted <- true
  | Isa.Mov (rd, rs) -> s rd (g rs); cpu.Cpu.pc <- next
  | Isa.Movi (rd, imm) | Isa.Lea (rd, imm) -> s rd imm; cpu.Cpu.pc <- next
  | Isa.Alu (op, rd, rs1, rs2) ->
      s rd (alu op (g rs1) (g rs2) pc);
      cpu.Cpu.pc <- next
  | Isa.Alui (op, rd, rs1, imm) ->
      s rd (alu op (g rs1) imm pc);
      cpu.Cpu.pc <- next
  | Isa.Cmp (op, rd, rs1, rs2) ->
      s rd (cmp op (g rs1) (g rs2));
      cpu.Cpu.pc <- next
  | Isa.Cmpi (op, rd, rs1, imm) ->
      s rd (cmp op (g rs1) imm);
      cpu.Cpu.pc <- next
  | Isa.Ldw (rd, rs1, off) ->
      s rd (read_u32 env pc (g rs1 + off));
      cpu.Cpu.pc <- next
  | Isa.Ldb (rd, rs1, off) ->
      s rd (read_u8 env pc (g rs1 + off));
      cpu.Cpu.pc <- next
  | Isa.Stw (rs1, off, rs2) ->
      write_u32 env pc (g rs1 + off) (g rs2);
      cpu.Cpu.pc <- next
  | Isa.Stb (rs1, off, rs2) ->
      write_u8 env pc (g rs1 + off) (g rs2);
      cpu.Cpu.pc <- next
  | Isa.Push rs -> push env pc (g rs); cpu.Cpu.pc <- next
  | Isa.Pop rd -> s rd (pop env pc); cpu.Cpu.pc <- next
  | Isa.Jmp imm -> cpu.Cpu.pc <- imm
  | Isa.Jz (rs, imm) -> cpu.Cpu.pc <- (if g rs = 0 then imm else next)
  | Isa.Jnz (rs, imm) -> cpu.Cpu.pc <- (if g rs <> 0 then imm else next)
  | Isa.Call imm ->
      push env pc next;
      cpu.Cpu.pc <- imm
  | Isa.Callr rs ->
      let target = g rs in
      if target < Layout.null_guard then raise (Fault (Bad_jump, pc));
      push env pc next;
      cpu.Cpu.pc <- target
  | Isa.Ret -> cpu.Cpu.pc <- pop env pc
  | Isa.Kcall n ->
      cpu.Cpu.pc <- next;
      env.kcall n
  | Isa.Cli -> cpu.Cpu.int_enabled <- false; cpu.Cpu.pc <- next
  | Isa.Sti -> cpu.Cpu.int_enabled <- true; cpu.Cpu.pc <- next

type stop = Sentinel | Halted | Out_of_fuel

let run env =
  let rec go () =
    if env.cpu.Cpu.halted then Halted
    else if env.cpu.Cpu.pc = Layout.return_sentinel then Sentinel
    else if env.fuel <= 0 then Out_of_fuel
    else begin
      env.fuel <- env.fuel - 1;
      step env;
      go ()
    end
  in
  go ()

let call_function env ~addr ~args =
  let saved_pc = env.cpu.Cpu.pc in
  List.iter (fun a -> push env addr a) (List.rev args);
  push env addr Layout.return_sentinel;
  env.cpu.Cpu.pc <- addr;
  let stop = run env in
  (match stop with
   | Sentinel -> ()
   | Halted -> ()
   | Out_of_fuel -> ());
  (* Pop the arguments (the callee's Ret consumed the sentinel). *)
  Cpu.set env.cpu Isa.sp (Cpu.get env.cpu Isa.sp + (4 * List.length args));
  env.cpu.Cpu.pc <- saved_pc;
  Cpu.get env.cpu 0
