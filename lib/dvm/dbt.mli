(** DBT-style block compilation (threaded code).

    Translates decoded basic blocks of a loaded DXE image into OCaml
    closures that execute straight-line with no per-instruction
    fetch/decode/dispatch, chaining direct jumps and fall-throughs into
    superblocks — the QEMU-translation-cache analog of the paper's VM
    leg, for the fully concrete engines (trace replay §3.5, the stress
    baseline). The symbolic engine reuses the {e block plan} from here
    and adds symbolic-operand guards ([Ddt_symexec.Sdbt]).

    Compiled code preserves the interpreter's observable semantics
    exactly: fault kinds and pcs, step and fuel accounting, register
    masking. Per-instruction hooks are {e not} dispatched, so the
    dispatch loop only enters compiled code while
    {!Interp.hooks_are_default} holds. *)

(** {1 Block plan} — shared with the symbolic compiler *)

type ending =
  | E_term        (** last instruction is a control transfer *)
  | E_fall of int (** falls through to this absolute pc *)

type block = {
  bk_entry : int;                       (** absolute pc of the leader *)
  bk_instrs : (int * Isa.instr) array;  (** (absolute pc, instruction) *)
  bk_end : ending;
}

type plan

val plan : Image.loaded -> plan
(** Carve the decode-once code array into basic blocks at the
    [Disasm.basic_block_starts] leaders (the same universe the symbolic
    engine's coverage accounting uses). *)

val block_of : plan -> int -> block option
(** The block led by this absolute pc, if it is an aligned in-text
    leader. *)

val chain : plan -> int -> block list
(** Superblock selection: the blocks reached from this head by direct
    jumps and leader fall-throughs, in execution order, without
    revisiting a block and within hard size caps. *)

(** {1 Concrete compiled execution} *)

type t

val create : ?threshold:int -> Image.loaded -> t
(** A compilation state over the image. A block is compiled once it has
    been entered [threshold] times (default {!default_threshold});
    [~threshold:0] compiles a block the first time it is seen. *)

val default_threshold : int

val compile_all : t -> unit
(** Eagerly compile every block — used by the differential tests and
    benchmarks to avoid warmup. *)

val run : t -> Interp.env -> Interp.stop
(** Like {!Interp.run}, dispatching through compiled superblocks when
    the pc heads one, fuel permitting and hooks defaulted; otherwise
    falls back to single-step interpretation. @raise Interp.Fault *)

val call_function : t -> Interp.env -> addr:int -> args:int list -> int
(** {!Interp.call_function} with the compiled dispatch loop. *)

type stats = {
  db_blocks_compiled : int;
  db_superblocks_chained : int; (** chained constituents beyond heads *)
}

val stats : t -> stats
