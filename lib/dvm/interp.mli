(** The concrete DVM interpreter.

    Used when driver code must run with fully concrete state: trace
    replay (§3.5 of the paper) and the stress-testing baseline. The
    symbolic engine in [ddt_symexec] has its own executor; both share
    {!Isa} decoding and these fault semantics. *)

type fault =
  | Null_deref
  | Div_by_zero
  | Bad_opcode
  | Stack_overflow
  | Bad_jump

exception Fault of fault * int
(** [(fault, pc)] *)

val string_of_fault : fault -> string

type hooks = {
  mutable on_step : int -> unit;                       (** pc before exec *)
  mutable on_read : int -> int -> int -> unit;         (** addr width value *)
  mutable on_write : int -> int -> int -> unit;        (** addr width value *)
}

type env = {
  mem : Mem.t;
  cpu : Cpu.t;
  mutable kcall : int -> unit;
  (** Import-table dispatch; reads args from the stack, returns in [r0]. *)
  hooks : hooks;
  mutable steps : int;                                 (** instructions run *)
  mutable fuel : int;                                  (** remaining budget *)
  mutable image : Image.loaded option;
  (** when set, aligned in-text fetches use the image's decode-once
      {!Image.loaded.code} array instead of decoding from memory *)
}

val create : ?fuel:int -> ?image:Image.loaded -> Mem.t -> env

val hooks_are_default : hooks -> bool
(** All three hooks are (physically) the no-ops installed by [create] —
    the block compiler only runs compiled code when this holds, because
    compiled blocks do not dispatch per-instruction hooks. *)

type stop = Sentinel | Halted | Out_of_fuel

val step : env -> unit
(** Execute one instruction. @raise Fault *)

val run : env -> stop
(** Run until the return sentinel, [Hlt], or fuel exhaustion. *)

val call_function : env -> addr:int -> args:int list -> int
(** Push [args] (right-to-left) and the return sentinel, run the function
    at [addr] to completion, pop the arguments, return [r0]. This is how
    the (native) kernel invokes driver entry points and how interrupts
    nest an ISR invocation into the current execution. *)

(** {1 Shared semantic helpers}

    Exported for the block compiler ({!Dbt}), which must reproduce the
    interpreter's arithmetic and fault behavior bit-for-bit. *)

val alu : Isa.aluop -> int -> int -> int -> int
(** [alu op a b pc]: 32-bit ALU semantics. @raise Fault on division by 0. *)

val cmp : Isa.cmpop -> int -> int -> int
(** [cmp op a b] is [1] when the comparison holds, else [0]. *)

val push : env -> int -> int -> unit
(** [push env pc v]: the interpreter's stack push (overflow check, hooks).
    @raise Fault on stack overflow. *)
