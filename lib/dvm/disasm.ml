(* Linear sweep: decode every instruction slot in the text section. Slots
   whose opcode byte does not decode are data-in-text (jump tables, string
   constants the toolchain placed in .text) — they are returned as
   explicit gap runs instead of being silently skipped, so clients can
   tell "code" from "bytes that happen to sit in the text section". *)
let linear_sweep (img : Image.t) =
  let code = Image.code_array img in
  let n = Bytes.length img.Image.text in
  let decoded = ref [] and gaps = ref [] in
  let add_gap pos len =
    match !gaps with
    | (s, l) :: rest when s + l = pos -> gaps := (s, l + len) :: rest
    | g -> gaps := (pos, len) :: g
  in
  Array.iteri
    (fun i slot ->
      let pos = i * Isa.instr_size in
      match slot with
      | Some instr -> decoded := (pos, instr) :: !decoded
      | None -> add_gap pos Isa.instr_size)
    code;
  (* trailing partial slot: can never hold an instruction *)
  let tail = Array.length code * Isa.instr_size in
  if tail < n then add_gap tail (n - tail);
  (List.rev !decoded, List.rev !gaps)

let disassemble img = fst (linear_sweep img)

let unreached_gaps (img : Image.t) ~reached =
  let n = Bytes.length img.Image.text in
  let rec go pos gaps =
    if pos >= n then List.rev gaps
    else if pos + Isa.instr_size > n then
      (* trailing partial slot: can never hold an instruction *)
      List.rev
        (match gaps with
         | (s, l) :: rest when s + l = pos -> (s, l + (n - pos)) :: rest
         | _ -> (pos, n - pos) :: gaps)
    else if reached pos then go (pos + Isa.instr_size) gaps
    else
      let gaps =
        match gaps with
        | (s, l) :: rest when s + l = pos -> (s, l + Isa.instr_size) :: rest
        | _ -> (pos, Isa.instr_size) :: gaps
      in
      go (pos + Isa.instr_size) gaps
  in
  go 0 []

let pp_listing fmt (img : Image.t) =
  let funcs = List.map (fun (n, a) -> (a, n)) img.Image.funcs in
  let decoded, gaps = linear_sweep img in
  List.iter
    (fun (off, instr) ->
      (match List.assoc_opt off funcs with
       | Some name -> Format.fprintf fmt "%s:@." name
       | None -> ());
      Format.fprintf fmt "  %06x: %a@." off Isa.pp instr)
    decoded;
  List.iter
    (fun (off, len) ->
      Format.fprintf fmt "  %06x: <%d byte(s) of non-code>@." off len)
    gaps

let basic_block_starts (img : Image.t) =
  let leaders = Hashtbl.create 64 in
  let text_len = Bytes.length img.Image.text in
  let add off = if off >= 0 && off < text_len then Hashtbl.replace leaders off () in
  List.iter (fun (_, a) -> add a) img.Image.funcs;
  add img.Image.entry;
  (* Relocated jump targets are stored image-relative pre-load, so the
     decoded immediates here are image-relative too. *)
  List.iter
    (fun (off, instr) ->
      match instr with
      | Isa.Jmp t -> add t; add (off + Isa.instr_size)
      | Isa.Jz (_, t) | Isa.Jnz (_, t) ->
          add t;
          add (off + Isa.instr_size)
      | Isa.Call t -> add t; add (off + Isa.instr_size)
      | Isa.Callr _ | Isa.Ret | Isa.Hlt | Isa.Kcall _ ->
          add (off + Isa.instr_size)
      | _ -> ())
    (disassemble img);
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) leaders [])
