(** Disassembler for DXE images: linear sweep over the text section. *)

val linear_sweep : Image.t -> (int * Isa.instr) list * (int * int) list
(** [(decoded, gaps)]: every [(image-relative offset, instruction)] the
    sweep decodes, plus [(offset, length)] byte runs that do {e not}
    decode — data placed in the text section, reported instead of
    silently skipped. Runs are sorted and non-adjacent. *)

val disassemble : Image.t -> (int * Isa.instr) list
(** The decoded half of {!linear_sweep}. *)

val unreached_gaps : Image.t -> reached:(int -> bool) -> (int * int) list
(** [(offset, length)] byte runs of the text section whose instruction
    slots the [reached] predicate rejects — used with a recursive-descent
    reachability set to report data-in-text and dead bytes that a plain
    linear sweep would count as code. A trailing partial slot (shorter
    than one instruction) is always a gap. *)

val pp_listing : Format.formatter -> Image.t -> unit
(** Human-readable listing with function labels interleaved; undecodable
    runs print as [<N byte(s) of non-code>]. *)

val basic_block_starts : Image.t -> int list
(** Image-relative offsets of basic-block leaders: function entries,
    branch targets, and fall-throughs after branches/calls/returns. Used
    for the coverage accounting of Figures 2 and 3. This is the {e linear
    sweep} universe; [Ddt_staticx.Icfg] refines it to the statically
    reachable subset. *)
