(* DBT-style block compilation: translate decoded basic blocks into
   OCaml closures (threaded code) so hot concrete stretches run with no
   per-instruction fetch/decode/dispatch. Direct jumps and fall-throughs
   chain into superblocks. The symbolic engine layers symbolic-operand
   guards on the same block plan (see Ddt_symexec.Sdbt); this module is
   the unguarded concrete leg used by trace replay and the stress
   baseline. *)

let instr_shift = 3 (* log2 Isa.instr_size *)

(* --- block plan ------------------------------------------------------ *)

type ending =
  | E_term
      (* the block's last instruction is a control transfer; its closure
         sets the pc *)
  | E_fall of int
      (* execution falls through to this absolute pc: the next leader, an
         undecodable slot, or the end of text *)

type block = {
  bk_entry : int;                       (* absolute pc of the leader *)
  bk_instrs : (int * Isa.instr) array;  (* (absolute pc, instruction) *)
  bk_end : ending;
}

type plan = {
  pl_loaded : Image.loaded;
  pl_blocks : block option array;       (* one slot per instruction; [Some]
                                           exactly at aligned leaders *)
}

let is_term = function
  | Isa.Jmp _ | Isa.Jz _ | Isa.Jnz _ | Isa.Call _ | Isa.Callr _ | Isa.Ret
  | Isa.Hlt | Isa.Kcall _ ->
      (* Kcall ends a block: the kernel call may install hooks, and the
         gate must get a chance to re-check them before compiled code
         continues. [Disasm.basic_block_starts] makes the next slot a
         leader for all of these. *)
      true
  | _ -> false

(* [Isa.decode] does not validate register bytes, so data that happens
   to decode (a [Some] slot in the code array) can name registers >= 16;
   the interpreter crashes mid-dispatch on those with [Invalid_argument]
   rather than a [Fault]. Keep such instructions out of every block so
   only the interpreter executes them — pc and step accounting then
   agree exactly between the engines. *)
let regs_ok i =
  let ok r = r >= 0 && r < Isa.num_regs in
  match i with
  | Isa.Nop | Isa.Hlt | Isa.Jmp _ | Isa.Call _ | Isa.Ret | Isa.Kcall _
  | Isa.Cli | Isa.Sti ->
      true
  | Isa.Mov (a, b) -> ok a && ok b
  | Isa.Movi (a, _) | Isa.Lea (a, _) -> ok a
  | Isa.Alu (_, a, b, c) | Isa.Cmp (_, a, b, c) -> ok a && ok b && ok c
  | Isa.Alui (_, a, b, _) | Isa.Cmpi (_, a, b, _) -> ok a && ok b
  | Isa.Ldw (a, b, _) | Isa.Ldb (a, b, _) -> ok a && ok b
  | Isa.Stw (a, _, b) | Isa.Stb (a, _, b) -> ok a && ok b
  | Isa.Push a | Isa.Pop a | Isa.Jz (a, _) | Isa.Jnz (a, _) | Isa.Callr a ->
      ok a

let plan (l : Image.loaded) =
  let code = l.Image.code in
  let nslots = Array.length code in
  let leader = Array.make (max 1 nslots) false in
  List.iter
    (fun off ->
      if off land (Isa.instr_size - 1) = 0 && off lsr instr_shift < nslots
      then leader.(off lsr instr_shift) <- true)
    (Disasm.basic_block_starts l.Image.image);
  let abs slot = l.Image.text_start + (slot lsl instr_shift) in
  let block_at i =
    if not (i < nslots && leader.(i)) then None
    else
      let rec collect j acc =
        if j >= nslots then (acc, E_fall (abs j))
        else if j > i && leader.(j) then (acc, E_fall (abs j))
        else
          match code.(j) with
          | None -> (acc, E_fall (abs j))
          | Some instr when not (regs_ok instr) -> (acc, E_fall (abs j))
          | Some instr ->
              if is_term instr then ((abs j, instr) :: acc, E_term)
              else collect (j + 1) ((abs j, instr) :: acc)
      in
      let rev_instrs, bk_end = collect i [] in
      Some
        { bk_entry = abs i;
          bk_instrs = Array.of_list (List.rev rev_instrs);
          bk_end }
  in
  { pl_loaded = l; pl_blocks = Array.init (max 1 nslots) block_at }

let block_of plan pc =
  let l = plan.pl_loaded in
  if
    pc >= l.Image.text_start && pc < l.Image.text_end
    && (pc - l.Image.text_start) land (Isa.instr_size - 1) = 0
  then plan.pl_blocks.((pc - l.Image.text_start) lsr instr_shift)
  else None

(* Superblock selection: follow direct jumps and leader fall-throughs
   from a head block, never revisiting a block (loops re-enter through
   the dispatch loop) and respecting hard size caps. Returns the
   constituent blocks in execution order. *)
let max_chain_blocks = 16
let max_chain_instrs = 128

let chain plan head_pc =
  let rec go pc acc seen ninstrs =
    if List.length acc >= max_chain_blocks then List.rev acc
    else
      match block_of plan pc with
      | None -> List.rev acc
      | Some bk ->
          if List.mem pc seen || ninstrs + Array.length bk.bk_instrs > max_chain_instrs
          then List.rev acc
          else
            let acc = bk :: acc and seen = pc :: seen in
            let ninstrs = ninstrs + Array.length bk.bk_instrs in
            let continue_to =
              match bk.bk_end with
              | E_fall t when block_of plan t <> None -> Some t
              | E_fall _ -> None
              | E_term -> (
                  match bk.bk_instrs.(Array.length bk.bk_instrs - 1) with
                  | _, Isa.Jmp t when block_of plan t <> None -> Some t
                  | _ -> None)
            in
            (match continue_to with
             | Some t -> go t acc seen ninstrs
             | None -> List.rev acc)
  in
  go head_pc [] [] 0

(* --- concrete compilation ------------------------------------------- *)

(* Per-instruction closures over the interpreter environment, built in
   continuation style: each closure performs one instruction and
   tail-calls [rest] (the remainder of the superblock), so a compiled
   block is one fused closure chain with no dispatch loop. Invariants
   mirroring Interp.step exactly:
   - the dispatch loop prepays [cb_len] steps before entering the block
     (the interpreter counts a step before executing it, so a fault at
     1-based position k must leave k steps counted: every raise site
     gives back its [overshoot] = cb_len - k first);
   - closures that raise [Interp.Fault] restore [cpu.pc] to their own pc
     first, because interior closures leave it stale;
   - hooks are not dispatched — the gate only enters compiled code when
     [Interp.hooks_are_default] holds;
   - fuel is charged by the dispatch loop ([cb_len] on a full run, the
     steps delta when a fault escapes mid-block);
   - register indices were validated at plan time ([regs_ok]) and
     [Cpu.create] allocates exactly [Isa.num_regs] slots, so register
     access compiles to unchecked array reads/writes. *)

let m32 = 0xFFFFFFFF
let rg (cpu : Cpu.t) r = Array.unsafe_get cpu.Cpu.regs r
let rst (cpu : Cpu.t) r v = Array.unsafe_set cpu.Cpu.regs r (v land m32)
let to_signed32 v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

let compile_instr ~(overshoot : int) (pc, instr) (rest : Interp.env -> unit) :
    Interp.env -> unit =
  let next = pc + Isa.instr_size in
  let open Interp in
  (* Cold fault path: restore pc, give back prepaid steps, raise. *)
  let die env f : unit =
    env.cpu.Cpu.pc <- pc;
    env.steps <- env.steps - overshoot;
    raise (Fault (f, pc))
  in
  match instr with
  | Isa.Nop -> rest
  | Isa.Hlt ->
      fun env ->
        env.cpu.Cpu.pc <- pc;
        env.cpu.Cpu.halted <- true;
        rest env
  | Isa.Mov (rd, rs) ->
      fun env ->
        let cpu = env.cpu in
        rst cpu rd (rg cpu rs);
        rest env
  | Isa.Movi (rd, imm) | Isa.Lea (rd, imm) ->
      fun env ->
        rst env.cpu rd imm;
        rest env
  | Isa.Alu (op, rd, rs1, rs2) -> (
      match op with
      | Isa.Add ->
          fun env ->
            let cpu = env.cpu in
            rst cpu rd (rg cpu rs1 + rg cpu rs2);
            rest env
      | Isa.Sub ->
          fun env ->
            let cpu = env.cpu in
            rst cpu rd (rg cpu rs1 - rg cpu rs2);
            rest env
      | Isa.Mul ->
          fun env ->
            let cpu = env.cpu in
            rst cpu rd (rg cpu rs1 * rg cpu rs2);
            rest env
      | Isa.And ->
          fun env ->
            let cpu = env.cpu in
            rst cpu rd (rg cpu rs1 land rg cpu rs2);
            rest env
      | Isa.Or ->
          fun env ->
            let cpu = env.cpu in
            rst cpu rd (rg cpu rs1 lor rg cpu rs2);
            rest env
      | Isa.Xor ->
          fun env ->
            let cpu = env.cpu in
            rst cpu rd (rg cpu rs1 lxor rg cpu rs2);
            rest env
      | Isa.Shl ->
          fun env ->
            let cpu = env.cpu in
            rst cpu rd (rg cpu rs1 lsl (rg cpu rs2 land 31));
            rest env
      | Isa.Shru ->
          fun env ->
            let cpu = env.cpu in
            rst cpu rd (rg cpu rs1 lsr (rg cpu rs2 land 31));
            rest env
      | Isa.Shrs ->
          fun env ->
            let cpu = env.cpu in
            rst cpu rd (to_signed32 (rg cpu rs1) asr (rg cpu rs2 land 31));
            rest env
      | Isa.Divu ->
          fun env ->
            let cpu = env.cpu in
            let b = rg cpu rs2 in
            if b = 0 then die env Div_by_zero;
            rst cpu rd (rg cpu rs1 / b);
            rest env
      | Isa.Remu ->
          fun env ->
            let cpu = env.cpu in
            let b = rg cpu rs2 in
            if b = 0 then die env Div_by_zero;
            rst cpu rd (rg cpu rs1 mod b);
            rest env)
  | Isa.Alui (op, rd, rs1, imm) -> (
      match op with
      | Isa.Add ->
          fun env ->
            let cpu = env.cpu in
            rst cpu rd (rg cpu rs1 + imm);
            rest env
      | Isa.Sub ->
          fun env ->
            let cpu = env.cpu in
            rst cpu rd (rg cpu rs1 - imm);
            rest env
      | Isa.Mul ->
          fun env ->
            let cpu = env.cpu in
            rst cpu rd (rg cpu rs1 * imm);
            rest env
      | Isa.And ->
          fun env ->
            let cpu = env.cpu in
            rst cpu rd (rg cpu rs1 land imm);
            rest env
      | Isa.Or ->
          fun env ->
            let cpu = env.cpu in
            rst cpu rd (rg cpu rs1 lor imm);
            rest env
      | Isa.Xor ->
          fun env ->
            let cpu = env.cpu in
            rst cpu rd (rg cpu rs1 lxor imm);
            rest env
      | Isa.Shl ->
          let sh = imm land 31 in
          fun env ->
            let cpu = env.cpu in
            rst cpu rd (rg cpu rs1 lsl sh);
            rest env
      | Isa.Shru ->
          let sh = imm land 31 in
          fun env ->
            let cpu = env.cpu in
            rst cpu rd (rg cpu rs1 lsr sh);
            rest env
      | Isa.Shrs ->
          let sh = imm land 31 in
          fun env ->
            let cpu = env.cpu in
            rst cpu rd (to_signed32 (rg cpu rs1) asr sh);
            rest env
      | Isa.Divu ->
          if imm = 0 then fun env -> die env Div_by_zero
          else
            fun env ->
              let cpu = env.cpu in
              rst cpu rd (rg cpu rs1 / imm);
              rest env
      | Isa.Remu ->
          if imm = 0 then fun env -> die env Div_by_zero
          else
            fun env ->
              let cpu = env.cpu in
              rst cpu rd (rg cpu rs1 mod imm);
              rest env)
  | Isa.Cmp (op, rd, rs1, rs2) ->
      fun env ->
        let cpu = env.cpu in
        rst cpu rd (Interp.cmp op (rg cpu rs1) (rg cpu rs2));
        rest env
  | Isa.Cmpi (op, rd, rs1, imm) ->
      fun env ->
        let cpu = env.cpu in
        rst cpu rd (Interp.cmp op (rg cpu rs1) imm);
        rest env
  | Isa.Ldw (rd, rs1, off) ->
      fun env ->
        let cpu = env.cpu in
        let a = (rg cpu rs1 + off) land m32 in
        if a < Layout.null_guard then die env Null_deref;
        rst cpu rd (Mem.read_u32 env.mem a);
        rest env
  | Isa.Ldb (rd, rs1, off) ->
      fun env ->
        let cpu = env.cpu in
        let a = (rg cpu rs1 + off) land m32 in
        if a < Layout.null_guard then die env Null_deref;
        rst cpu rd (Mem.read_u8 env.mem a);
        rest env
  | Isa.Stw (rs1, off, rs2) ->
      fun env ->
        let cpu = env.cpu in
        let a = (rg cpu rs1 + off) land m32 in
        if a < Layout.null_guard then die env Null_deref;
        Mem.write_u32 env.mem a (rg cpu rs2);
        rest env
  | Isa.Stb (rs1, off, rs2) ->
      fun env ->
        let cpu = env.cpu in
        let a = (rg cpu rs1 + off) land m32 in
        if a < Layout.null_guard then die env Null_deref;
        Mem.write_u8 env.mem a (rg cpu rs2);
        rest env
  | Isa.Push rs ->
      fun env ->
        let cpu = env.cpu in
        let v = rg cpu rs in (* before sp moves: [push sp] *)
        let sp = rg cpu Isa.sp - 4 in
        if sp < Layout.stack_limit then die env Stack_overflow;
        rst cpu Isa.sp sp;
        Mem.write_u32 env.mem sp v;
        rest env
  | Isa.Pop rd ->
      fun env ->
        let cpu = env.cpu in
        let sp = rg cpu Isa.sp in
        if sp < Layout.null_guard then die env Null_deref;
        let v = Mem.read_u32 env.mem sp in
        rst cpu Isa.sp (sp + 4);
        rst cpu rd v;
        rest env
  | Isa.Jmp t ->
      fun env ->
        env.cpu.Cpu.pc <- t;
        rest env
  | Isa.Jz (rs, t) ->
      fun env ->
        let cpu = env.cpu in
        cpu.Cpu.pc <- (if rg cpu rs = 0 then t else next);
        rest env
  | Isa.Jnz (rs, t) ->
      fun env ->
        let cpu = env.cpu in
        cpu.Cpu.pc <- (if rg cpu rs <> 0 then t else next);
        rest env
  | Isa.Call t ->
      fun env ->
        let cpu = env.cpu in
        let sp = rg cpu Isa.sp - 4 in
        if sp < Layout.stack_limit then die env Stack_overflow;
        rst cpu Isa.sp sp;
        Mem.write_u32 env.mem sp next;
        cpu.Cpu.pc <- t;
        rest env
  | Isa.Callr rs ->
      fun env ->
        let cpu = env.cpu in
        let target = rg cpu rs in
        if target < Layout.null_guard then die env Bad_jump;
        let sp = rg cpu Isa.sp - 4 in
        if sp < Layout.stack_limit then die env Stack_overflow;
        rst cpu Isa.sp sp;
        Mem.write_u32 env.mem sp next;
        cpu.Cpu.pc <- target;
        rest env
  | Isa.Ret ->
      fun env ->
        let cpu = env.cpu in
        let sp = rg cpu Isa.sp in
        if sp < Layout.null_guard then die env Null_deref;
        let v = Mem.read_u32 env.mem sp in
        rst cpu Isa.sp (sp + 4);
        cpu.Cpu.pc <- v;
        rest env
  | Isa.Kcall _ ->
      (* Kernel calls never compile: the model may re-enter the VM
         through [call_function] on the same env, which would nest fuel
         accounting, and it may install hooks. [compile] truncates the
         superblock before a trailing Kcall. *)
      assert false
  | Isa.Cli ->
      fun env ->
        env.cpu.Cpu.int_enabled <- false;
        rest env
  | Isa.Sti ->
      fun env ->
        env.cpu.Cpu.int_enabled <- true;
        rest env

type cblock = {
  cb_len : int;                   (* steps a full (fault-free) run executes *)
  cb_run : Interp.env -> unit;
}

let stop : Interp.env -> unit = fun _ -> ()

(* Compile a superblock starting at [head_pc] into one fused closure
   chain. Interior instructions leave [cpu.pc] stale (faulting closures
   restore it); only the final closure establishes the successor pc. A
   Jmp into the next chained block costs a step but compiles to nothing
   (its continuation IS the target block); a trailing Kcall is truncated
   into a pc hand-off so the interpreter executes it. *)
let compile plan head_pc =
  match chain plan head_pc with
  | [] -> None
  | blocks ->
      let nblocks = List.length blocks in
      let nchained = nblocks - 1 in
      (* flatten to (pc, instr, compiles-to-nothing) in execution order *)
      let items = ref [] in
      List.iteri
        (fun bi bk ->
          let n = Array.length bk.bk_instrs in
          Array.iteri
            (fun ii (ipc, instr) ->
              let chained_jmp =
                bi < nblocks - 1 && ii = n - 1
                && match instr with Isa.Jmp _ -> true | _ -> false
              in
              items := (ipc, instr, chained_jmp) :: !items)
            bk.bk_instrs)
        blocks;
      let items, tail =
        match !items with
        | (kpc, Isa.Kcall _, _) :: rest_rev ->
            (List.rev rest_rev, fun env -> env.Interp.cpu.Cpu.pc <- kpc)
        | rev -> (
            let last = List.nth blocks (nblocks - 1) in
            match last.bk_end with
            | E_fall t -> (List.rev rev, fun env -> env.Interp.cpu.Cpu.pc <- t)
            | E_term -> (List.rev rev, stop))
      in
      let cb_len = List.length items in
      (* A leader whose first instruction is uncompilable (or a lone
         Kcall) yields an empty chain; running it would make no progress,
         so leave such pcs to the interpreter entirely. *)
      if cb_len = 0 then None
      else
        (* build back-to-front: position k's closure tail-calls the rest *)
        let rec build k = function
          | [] -> tail
          | (ipc, instr, nothing) :: tl ->
              let rest = build (k + 1) tl in
              if nothing then rest
              else compile_instr ~overshoot:(cb_len - k) (ipc, instr) rest
        in
        Some ({ cb_len; cb_run = build 1 items }, nchained)

(* --- dispatch-loop runtime ------------------------------------------ *)

type cell =
  | Not_leader
  | Cold of int ref
  | Ready of cblock

type stats = {
  db_blocks_compiled : int;
  db_superblocks_chained : int;
}

type t = {
  dt_plan : plan;
  dt_cells : cell array;
  dt_threshold : int;
  mutable dt_compiled : int;
  mutable dt_chained : int;
}

let default_threshold = 16

let create ?(threshold = default_threshold) (l : Image.loaded) =
  let plan = plan l in
  let cells =
    Array.map
      (function Some _ -> Cold (ref 0) | None -> Not_leader)
      plan.pl_blocks
  in
  { dt_plan = plan; dt_cells = cells; dt_threshold = threshold;
    dt_compiled = 0; dt_chained = 0 }

let stats t =
  { db_blocks_compiled = t.dt_compiled; db_superblocks_chained = t.dt_chained }

let compile_slot t slot pc =
  match compile t.dt_plan pc with
  | Some (cb, nchained) ->
      t.dt_compiled <- t.dt_compiled + 1;
      t.dt_chained <- t.dt_chained + nchained;
      t.dt_cells.(slot) <- Ready cb
  | None -> t.dt_cells.(slot) <- Not_leader

let compile_all t =
  Array.iteri
    (fun slot bk ->
      match bk with
      | Some b -> compile_slot t slot b.bk_entry
      | None -> ())
    t.dt_plan.pl_blocks

(* The interpreter loop with a compiled fast path: same stopping rule as
   Interp.run, with fuel charged per executed instruction (batched over
   a compiled superblock, including the partial count when a fault
   escapes mid-block). *)
let run t env =
  let l = t.dt_plan.pl_loaded in
  let ts = l.Image.text_start and te = l.Image.text_end in
  let cells = t.dt_cells in
  let rec go () =
    if env.Interp.cpu.Cpu.halted then Interp.Halted
    else if env.Interp.cpu.Cpu.pc = Layout.return_sentinel then Interp.Sentinel
    else if env.Interp.fuel <= 0 then Interp.Out_of_fuel
    else begin
      let pc = env.Interp.cpu.Cpu.pc in
      let ran_compiled =
        pc >= ts && pc < te
        && (pc - ts) land (Isa.instr_size - 1) = 0
        &&
        let slot = (pc - ts) lsr instr_shift in
        match Array.unsafe_get cells slot with
        | Ready cb
          when env.Interp.fuel >= cb.cb_len
               && Interp.hooks_are_default env.Interp.hooks ->
            (* Prepay the whole block's steps; a faulting closure gives
               back the unexecuted remainder before raising, so on any
               exit the steps delta is exactly the instructions run. *)
            let steps0 = env.Interp.steps in
            env.Interp.steps <- steps0 + cb.cb_len;
            (try cb.cb_run env
             with e ->
               env.Interp.fuel <-
                 env.Interp.fuel - (env.Interp.steps - steps0);
               raise e);
            env.Interp.fuel <- env.Interp.fuel - cb.cb_len;
            true
        | Cold n ->
            incr n;
            if !n >= t.dt_threshold then compile_slot t slot pc;
            false
        | _ -> false
      in
      if not ran_compiled then begin
        env.Interp.fuel <- env.Interp.fuel - 1;
        Interp.step env
      end;
      go ()
    end
  in
  go ()

let call_function t env ~addr ~args =
  let saved_pc = env.Interp.cpu.Cpu.pc in
  List.iter (fun a -> Interp.push env addr a) (List.rev args);
  Interp.push env addr Layout.return_sentinel;
  env.Interp.cpu.Cpu.pc <- addr;
  let (_ : Interp.stop) = run t env in
  Cpu.set env.Interp.cpu Isa.sp
    (Cpu.get env.Interp.cpu Isa.sp + (4 * List.length args));
  env.Interp.cpu.Cpu.pc <- saved_pc;
  Cpu.get env.Interp.cpu 0
