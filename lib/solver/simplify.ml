open Expr

(* One top-level rewrite step applied to an already-recursively-simplified
   node. Returns [None] when no rule fires. *)
let step e =
  match e with
  (* ((x + c1) + c2)  -->  x + (c1 + c2); same with mixed add/sub. *)
  | Binop (Add, Binop (Add, x, Const (w, c1)), Const (_, c2)) ->
      Some (binop Add x (const w (c1 + c2)))
  | Binop (Add, Binop (Sub, x, Const (w, c1)), Const (_, c2)) ->
      Some (binop Add x (const w (c2 - c1)))
  | Binop (Sub, Binop (Add, x, Const (w, c1)), Const (_, c2)) ->
      Some (binop Add x (const w (c1 - c2)))
  | Binop (Sub, Binop (Sub, x, Const (w, c1)), Const (_, c2)) ->
      Some (binop Sub x (const w (c1 + c2)))
  (* Constant on the left of a commutative op: move right. *)
  | Binop (((Add | Mul | And | Or | Xor) as op), (Const _ as c), x)
    when not (is_const x) ->
      Some (binop op x c)
  (* (x + c == d)  -->  (x == d - c), and friends; addition on W32 is a
     bijection so equality/disequality transfer exactly. *)
  | Cmp ((Eq | Ne) as op, Binop (Add, x, Const (w, c)), Const (_, d)) ->
      Some (cmp op x (const w (d - c)))
  | Cmp ((Eq | Ne) as op, Binop (Sub, x, Const (w, c)), Const (_, d)) ->
      Some (cmp op x (const w (d + c)))
  (* zext b != 0  -->  b ; zext b == 0  -->  !b   (b of width 1). *)
  | Cmp (Ne, Zext b, Const (_, 0)) when width_of b = W1 -> Some b
  | Cmp (Eq, Zext b, Const (_, 0)) when width_of b = W1 -> Some (not_ b)
  | Cmp (Eq, Zext b, Const (_, 1)) when width_of b = W1 -> Some b
  | Cmp (Ne, Zext b, Const (_, 1)) when width_of b = W1 -> Some (not_ b)
  (* Comparisons of a zero-extended byte against out-of-range constants. *)
  | Cmp (Eq, Zext b, Const (_, c)) when width_of b = W8 ->
      if c > 0xFF then Some fls else Some (cmp Eq b (byte c))
  | Cmp (Ne, Zext b, Const (_, c)) when width_of b = W8 ->
      if c > 0xFF then Some tru else Some (cmp Ne b (byte c))
  | Cmp (Ltu, Zext b, Const (_, c)) when width_of b = W8 && c > 0xFF ->
      Some tru
  | Cmp (Leu, Zext b, Const (_, c)) when width_of b = W8 && c >= 0xFF ->
      Some tru
  | Cmp (Ltu, Const (_, c), Zext b) when width_of b = W8 && c >= 0xFF ->
      Some fls
  (* An unsigned value is never below zero and always >= 0. *)
  | Cmp (Ltu, _, Const (_, 0)) -> Some fls
  | Cmp (Leu, Const (_, 0), _) -> Some tru
  (* if c then 1 else 0 (width 1 arms) is just c. *)
  | Ite (c, Const (W1, 1), Const (W1, 0)) -> Some c
  | Ite (c, Const (W1, 0), Const (W1, 1)) -> Some (not_ c)
  (* zext (if c then a else b) --> if c then zext a else zext b when the
     arms are constants: lets comparisons above it fold. *)
  | Cmp (op, Ite (c, (Const _ as a), (Const _ as b)), (Const _ as d)) ->
      Some (ite c (cmp op a d) (cmp op b d))
  | Cmp (op, (Const _ as d), Ite (c, (Const _ as a), (Const _ as b))) ->
      Some (ite c (cmp op d a) (cmp op d b))
  (* Ite pushdown through operators when both arms are constants: the
     merged-state pattern ite(g, k1, k2) op k folds to ite(g, k1', k2'),
     keeping lifted values as cheap as the constants they replaced. *)
  | Binop (op, Ite (c, (Const _ as a), (Const _ as b)), (Const _ as d)) ->
      Some (ite c (binop op a d) (binop op b d))
  | Binop (op, (Const _ as d), Ite (c, (Const _ as a), (Const _ as b))) ->
      Some (ite c (binop op d a) (binop op d b))
  | Extract (Ite (c, (Const _ as a), (Const _ as b)), i) ->
      Some (ite c (extract a i) (extract b i))
  | Zext (Ite (c, (Const _ as a), (Const _ as b))) ->
      Some (ite c (zext a) (zext b))
  (* Nested ite on the same guard: the inner decision is already made. *)
  | Ite (c, Ite (c', a, _), b) when equal c c' -> Some (ite c a b)
  | Ite (c, a, Ite (c', _, b)) when equal c c' -> Some (ite c a b)
  (* Negated guard: swap arms so structurally-equal lifts (one built from
     the taken arm, one from the fallthrough) normalize to one shape. *)
  | Ite (Not c, a, b) -> Some (ite c b a)
  | Binop (And, Binop (And, x, Const (w, c1)), Const (_, c2)) ->
      Some (binop And x (const w (c1 land c2)))
  | Binop (Or, Binop (Or, x, Const (w, c1)), Const (_, c2)) ->
      Some (binop Or x (const w (c1 lor c2)))
  | _ -> None

let rec fixpoint n e =
  if n = 0 then e
  else
    match step e with
    | None -> e
    | Some e' -> fixpoint (n - 1) e'

let rec simplify e =
  let e' =
    match e with
    | Const _ | Var _ -> e
    | Binop (op, a, b) -> binop op (simplify a) (simplify b)
    | Cmp (op, a, b) -> cmp op (simplify a) (simplify b)
    | Ite (c, a, b) -> ite (simplify c) (simplify a) (simplify b)
    | Extract (x, i) -> extract (simplify x) i
    | Concat4 (b3, b2, b1, b0) ->
        concat4 (simplify b3) (simplify b2) (simplify b1) (simplify b0)
    | Zext x -> zext (simplify x)
    | Not x -> not_ (simplify x)
  in
  fixpoint 8 e'

let simplify_bool e =
  let e' = simplify e in
  assert (width_of e' = W1);
  e'

(* --- pruning under known path conditions -------------------------------- *)

module EH = Hashtbl.Make (struct
  type t = Expr.t

  let equal = Expr.equal
  let hash = Hashtbl.hash
end)

(* Rewrite [e] assuming every constraint in [under] holds: boolean
   subterms that occur verbatim in the path condition become true (their
   verbatim negations false), which collapses [Ite]s whose guards a
   merged state has since re-decided. Substituting a truth value for a
   subterm equivalent to it under ALL models of the path condition is
   sound in any position, including under [Not]. Meant for the slow
   path: callers about to hand [e] to the solver anyway. *)
let prune ~under e =
  let known = EH.create (2 * List.length under) in
  List.iter
    (fun c ->
      EH.replace known c true;
      match c with
      | Not c' -> EH.replace known c' false
      | Cmp (Eq, a, b) -> EH.replace known (Cmp (Ne, a, b)) false
      | Cmp (Ne, a, b) -> EH.replace known (Cmp (Eq, a, b)) false
      | _ -> ())
    under;
  let rec go e =
    match EH.find_opt known e with
    | Some true when width_of e = W1 -> tru
    | Some false when width_of e = W1 -> fls
    | _ -> (
        match e with
        | Const _ | Var _ -> e
        | Ite (c, a, b) -> (
            let c' = go c in
            match to_const c' with
            | Some 1 -> go a
            | Some 0 -> go b
            | _ -> ite c' (go a) (go b))
        | Binop (op, a, b) -> binop op (go a) (go b)
        | Cmp (op, a, b) -> cmp op (go a) (go b)
        | Extract (x, i) -> extract (go x) i
        | Concat4 (b3, b2, b1, b0) -> concat4 (go b3) (go b2) (go b1) (go b0)
        | Zext x -> zext (go x)
        | Not x -> not_ (go x))
  in
  simplify (go e)
