(** The constraint solver used by the symbolic execution engine.

    Decides satisfiability of a conjunction of width-1 expressions (path
    constraints) through a layered pipeline:

    + algebraic simplification — trivially true constraints are dropped,
      a trivially false one answers Unsat immediately;
    + constraint-independence slicing ({!Indep}) — the set is split into
      variable-disjoint groups solved separately, with the per-group
      models unioned;
    + per-group query cache ({!Qcache}) — canonicalized groups hit stored
      Sat models / Unsat verdicts, including counterexample-cache
      subset/superset reasoning;
    + interval inference — sound contradiction detection and cheap
      candidate models verified by concrete evaluation;
    + bit-blasting to CNF and DPLL search.

    Every Sat answer carries a model that has been {e verified} by
    evaluating all constraints under it (per variable-disjoint group).

    Slicing and caching are controlled process-wide by {!set_accel}; the
    query cache is one shared mutex-sharded instance
    ({!Qcache.Sharded}), normalized up to variable renaming, so a group
    solved by any parallel exploration worker is a hit for all of them. *)

type model = Expr.var -> int

type result =
  | Sat of model
  | Unsat
  | Unknown

val check : Expr.t list -> result

val is_feasible : Expr.t list -> bool
(** Unknown is treated as feasible (the engine must never drop a path that
    might be real; over-approximation can only cost false positives, which
    the replay step weeds out). *)

val concretize : Expr.t list -> Expr.t -> int option
(** [concretize constraints e] returns a feasible concrete value of [e]
    under the constraints, or [None] if they are unsatisfiable. On an
    Unknown verdict the zero valuation is tried and returned only when it
    {e verifiably} satisfies the constraints. *)

(** {1 Acceleration knobs} *)

type accel = {
  use_slicing : bool;      (** split queries into variable-disjoint groups *)
  use_cache : bool;        (** cache per-group verdicts and models *)
  cache_capacity : int;    (** entry bound before LRU eviction *)
  model_reuse : int;       (** recent models re-checked per lookup *)
}

val default_accel : accel
(** Slicing and caching on (capacity 4096, model reuse 12). This is the
    initial process-wide setting. *)

val no_accel : accel
(** The unaccelerated baseline: every query bit-blasts from scratch. *)

val set_accel : accel -> unit
(** Set the process-wide acceleration mode and swap in a fresh shared
    cache (in-flight lookups finish against the old snapshot). *)

val current_accel : unit -> accel

val clear_cache : unit -> unit
(** Drop the shared cache's entries (keeps the accel mode). *)

val current_cache : unit -> Qcache.Sharded.sharded
(** The live shared cache instance, for the durability layer: warm-start
    loads ({!Pstore.load}) and checkpoint dump/import address it
    directly. {!set_accel}/{!clear_cache} swap in a fresh instance, so
    re-fetch the handle after either. *)

(** {1 Retry policy}

    An [Unknown] from DPLL means a resource budget ran out, not that the
    query is undecidable — so before any Unknown verdict is final, the
    group is re-submitted once through the query cache and re-solved
    with an escalated conflict budget. Each attempt also carries a
    wall-clock deadline so one adversarial query cannot stall a worker. *)

type retry = {
  base_conflicts : int;       (** DPLL conflict budget of the first attempt *)
  escalated_conflicts : int;  (** budget of the single retry; [<= 0] disables
                                  retrying (one attempt, historical behavior) *)
  deadline_s : float;         (** per-attempt wall-clock bound in seconds;
                                  [<= 0.] means none *)
}

val default_retry : retry
(** 200k conflicts then one 2M-conflict retry, 5s per attempt. The final
    verdicts equal the historical single 2M-conflict attempt on any query
    that fits those budgets; only the work schedule differs. *)

val no_retry : retry
(** Single attempt with the historical 2M-conflict budget, no deadline. *)

val set_retry : retry -> unit
(** Set the process-wide retry policy. *)

val current_retry : unit -> retry

val set_chaos_exhaust : (unit -> bool) option -> unit
(** Fault-injection hook for the chaos harness: when set, the hook is
    consulted once per uncached group solve, and [true] forces the first
    attempt to report budget exhaustion without running — the escalated
    retry then recovers the real verdict. [None] (the default) disables
    injection. *)

val domain_exhaustions : unit -> int
(** First-attempt budget exhaustions observed on the calling domain —
    lets the engine attribute exhaustions to the state being stepped. *)

val domain_unrecovered : unit -> int
(** Exhaustions on the calling domain whose verdict stayed [Unknown]
    after the retry (or with retrying disabled). *)

(** {1 Statistics}

    Counters are process-global atomics, like the cache; a session's
    statistics are the difference of two {!stats} snapshots (see
    [Ddt_symexec.Exec]) — exact only while no other session runs
    concurrently. *)

type stats = {
  s_queries : int;                  (** [check] calls *)
  s_group_solves : int;             (** per-group solves after slicing *)
  s_cache_exact_hits : int;
  s_cache_subset_unsat_hits : int;  (** Unsat proved by a cached subset *)
  s_cache_model_reuse_hits : int;   (** Sat via a re-checked cached model *)
  s_cache_misses : int;
  s_cache_renamed_hits : int;
  (** exact hits on an entry stored under a different original key — the
      win from normalization up to variable renaming *)
  s_cache_cross_worker_hits : int;
  (** hits on entries/models stored by a different domain — the win from
      sharing the cache across workers *)
  s_cache_persist_hits : int;
  (** hits on entries loaded from the on-disk store — the win from
      warm-starting, counted separately from in-process hits *)
  s_interval_solves : int;          (** groups settled by interval layer *)
  s_bitblast_solves : int;          (** groups that reached CNF + DPLL *)
  s_cache_evictions : int;
  s_exhaustions : int;
  (** first-attempt conflict-budget / deadline exhaustions (includes
      chaos-injected ones) *)
  s_retries : int;                  (** escalated re-submissions issued *)
  s_retry_recovered : int;
  (** retries that settled to a definite Sat/Unsat verdict *)
  s_cache_bloom_hits : int;
  (** subset-Unsat hits recovered from a non-home cache shard through the
      Bloom-gated cross-shard probe (a subset of
      [s_cache_subset_unsat_hits]) *)
  s_incr_queries : int;
  (** feasibility/concretization queries answered by an incremental
      session ({!Incr}) instead of the from-scratch pipeline *)
  s_incr_model_hits : int;
  (** session queries settled by re-checking the session's cached model *)
  s_incr_sat_solves : int;
  (** session queries that ran the incremental SAT engine *)
  s_incr_learned_retained : int;
  (** sum over incremental SAT runs of the learned clauses already
      retained in the solver when the run started *)
  s_incr_skipped_recanon : int;
  (** path-condition frames reused verbatim by a session query — each one
      a simplification + canonicalization + bit-blast not repeated *)
  s_incr_pushes : int;              (** frames pushed onto sessions *)
  s_incr_pops : int;                (** frames popped on divergence *)
  s_incr_rebuilds : int;
  (** sessions rebuilt from scratch (first query of a state, or the
      state migrated to another domain via stealing/retirement) *)
}

val stats : unit -> stats
val diff_stats : stats -> stats -> stats
(** [diff_stats after before] — field-wise difference. *)

val cache_hits : stats -> int
val cache_hit_rate : stats -> float
(** Hits / (hits + misses), 0 when no cached lookups happened. *)

val stats_queries : unit -> int
(** Number of [check] calls since start; used by the benchmark harness. *)

val reset_stats : unit -> unit

(** {1 Internal seam for the incremental session layer}

    Used only by {!Incr} (same library): it lets sessions route their
    per-group solves through the shared query cache and the retry/chaos
    machinery, and account into the same statistics counters, so a
    session-answered query is cached, fault-injected and reported exactly
    like an oracle-answered one. Not meant for engine code. *)
module For_incr : sig
  val current_accel : unit -> accel

  val solve_group_with :
    attempt:
      (budget:int -> deadline:float option -> Expr.t list -> result) ->
    accel -> Expr.t list -> result
  (** Full cache-lookup + retry pipeline for one independence group with
      [attempt] as the decision procedure (receives the per-attempt
      conflict budget and absolute deadline). *)

  val verified : Expr.t list -> model -> bool

  val note_query : unit -> unit
  val note_incr_query : unit -> unit
  val note_model_hit : unit -> unit
  val note_sat_solve : unit -> unit
  val note_interval_solve : unit -> unit
  val note_bitblast_solve : unit -> unit
  val note_learned_retained : int -> unit
  val note_skipped_recanon : int -> unit
  val note_pushes : int -> unit
  val note_pops : int -> unit
  val note_rebuild : unit -> unit
end
