(* Union-find over variable ids, with path compression. The structures are
   rebuilt per call: constraint sets are short (tens of entries) and the
   dominant cost is solving, not slicing. *)

type uf = (int, int) Hashtbl.t

let rec find (uf : uf) x =
  match Hashtbl.find_opt uf x with
  | None ->
      Hashtbl.replace uf x x;
      x
  | Some p when p = x -> x
  | Some p ->
      let r = find uf p in
      Hashtbl.replace uf x r;
      r

let union uf a b =
  let ra = find uf a and rb = find uf b in
  if ra <> rb then Hashtbl.replace uf ra rb

(* Build the equivalence classes for one constraint set. Returns the
   union-find plus each constraint paired with its variables. *)
let build cs =
  let uf = Hashtbl.create 32 in
  let cvars = List.map (fun c -> (c, Expr.vars c)) cs in
  List.iter
    (fun (_, vs) ->
      match vs with
      | [] -> ()
      | v0 :: rest ->
          ignore (find uf v0.Expr.id);
          List.iter (fun (v : Expr.var) -> union uf v0.Expr.id v.Expr.id) rest)
    cvars;
  (uf, cvars)

(* Key used for ground constraints (no variables). Variable ids are
   positive, so this never collides with a real root. *)
let ground_key = min_int

let partition cs =
  let uf, cvars = build cs in
  let groups : (int, Expr.t list ref) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  let add key c =
    match Hashtbl.find_opt groups key with
    | Some r -> r := c :: !r
    | None ->
        Hashtbl.replace groups key (ref [ c ]);
        order := key :: !order
  in
  List.iter
    (fun (c, vs) ->
      match vs with
      | [] -> add ground_key c
      | v :: _ -> add (find uf v.Expr.id) c)
    cvars;
  List.rev_map (fun key -> List.rev !(Hashtbl.find groups key)) !order

let relevant cs e =
  let uf, cvars = build cs in
  let roots =
    List.fold_left
      (fun acc (v : Expr.var) ->
        let r = find uf v.Expr.id in
        if List.mem r acc then acc else r :: acc)
      [] (Expr.vars e)
  in
  List.filter_map
    (fun (c, vs) ->
      match vs with
      | [] -> None
      | v :: _ -> if List.mem (find uf v.Expr.id) roots then Some c else None)
    cvars
