type model = Expr.var -> int

type result =
  | Sat of model
  | Unsat
  | Unknown

(* --- acceleration configuration ----------------------------------------- *)

type accel = {
  use_slicing : bool;
  use_cache : bool;
  cache_capacity : int;
  model_reuse : int;
}

let default_accel =
  { use_slicing = true; use_cache = true; cache_capacity = 4096;
    model_reuse = 12 }

let no_accel =
  { use_slicing = false; use_cache = false; cache_capacity = 1;
    model_reuse = 0 }

(* The accel knobs and the cache are per-domain: each Parallel.test_driver
   worker domain gets its own instance, so no locking is needed and the
   workers never contend on cache buckets. *)
let accel_key = Domain.DLS.new_key (fun () -> default_accel)

let cache_key = Domain.DLS.new_key (fun () -> Qcache.create ())

let current_accel () = Domain.DLS.get accel_key

let clear_cache () =
  let a = current_accel () in
  Domain.DLS.set cache_key
    (Qcache.create ~capacity:a.cache_capacity ~model_reuse:a.model_reuse ())

let set_accel a =
  Domain.DLS.set accel_key a;
  clear_cache ()

(* --- statistics ---------------------------------------------------------- *)

type stats = {
  s_queries : int;
  s_group_solves : int;
  s_cache_exact_hits : int;
  s_cache_subset_unsat_hits : int;
  s_cache_model_reuse_hits : int;
  s_cache_misses : int;
  s_interval_solves : int;
  s_bitblast_solves : int;
  s_cache_evictions : int;
}

type counters = {
  mutable c_queries : int;
  mutable c_group_solves : int;
  mutable c_exact_hits : int;
  mutable c_subset_unsat_hits : int;
  mutable c_model_reuse_hits : int;
  mutable c_misses : int;
  mutable c_interval_solves : int;
  mutable c_bitblast_solves : int;
}

let fresh_counters () =
  { c_queries = 0; c_group_solves = 0; c_exact_hits = 0;
    c_subset_unsat_hits = 0; c_model_reuse_hits = 0; c_misses = 0;
    c_interval_solves = 0; c_bitblast_solves = 0 }

let counters_key = Domain.DLS.new_key fresh_counters
let counters () = Domain.DLS.get counters_key

let stats () =
  let c = counters () in
  {
    s_queries = c.c_queries;
    s_group_solves = c.c_group_solves;
    s_cache_exact_hits = c.c_exact_hits;
    s_cache_subset_unsat_hits = c.c_subset_unsat_hits;
    s_cache_model_reuse_hits = c.c_model_reuse_hits;
    s_cache_misses = c.c_misses;
    s_interval_solves = c.c_interval_solves;
    s_bitblast_solves = c.c_bitblast_solves;
    s_cache_evictions = Qcache.evictions (Domain.DLS.get cache_key);
  }

let diff_stats (b : stats) (a : stats) =
  {
    s_queries = b.s_queries - a.s_queries;
    s_group_solves = b.s_group_solves - a.s_group_solves;
    s_cache_exact_hits = b.s_cache_exact_hits - a.s_cache_exact_hits;
    s_cache_subset_unsat_hits =
      b.s_cache_subset_unsat_hits - a.s_cache_subset_unsat_hits;
    s_cache_model_reuse_hits =
      b.s_cache_model_reuse_hits - a.s_cache_model_reuse_hits;
    s_cache_misses = b.s_cache_misses - a.s_cache_misses;
    s_interval_solves = b.s_interval_solves - a.s_interval_solves;
    s_bitblast_solves = b.s_bitblast_solves - a.s_bitblast_solves;
    s_cache_evictions = max 0 (b.s_cache_evictions - a.s_cache_evictions);
  }

let cache_hits s =
  s.s_cache_exact_hits + s.s_cache_subset_unsat_hits
  + s.s_cache_model_reuse_hits

let cache_hit_rate s =
  let hits = cache_hits s in
  let total = hits + s.s_cache_misses in
  if total = 0 then 0.0 else float_of_int hits /. float_of_int total

let stats_queries () = (stats ()).s_queries

let reset_stats () = Domain.DLS.set counters_key (fresh_counters ())

(* --- the layered solve of one (simplified, nontrivial) group ------------- *)

let verified constraints env =
  List.for_all (fun c -> Expr.eval env c = 1) constraints

let core_solve cnt constraints =
  let vars =
    List.concat_map Expr.vars constraints
    |> List.sort_uniq (fun a b -> compare a.Expr.id b.Expr.id)
  in
  match Interval.infer constraints with
  | None ->
      cnt.c_interval_solves <- cnt.c_interval_solves + 1;
      Unsat
  | Some env_ranges -> (
      (* Cheap verified guesses first. *)
      let guess =
        List.find_opt
          (fun m -> verified constraints m)
          (Interval.candidates env_ranges vars)
      in
      match guess with
      | Some m ->
          cnt.c_interval_solves <- cnt.c_interval_solves + 1;
          Sat m
      | None -> (
          cnt.c_bitblast_solves <- cnt.c_bitblast_solves + 1;
          let ctx = Bitblast.create () in
          List.iter (Bitblast.assert_true ctx) constraints;
          match Dpll.solve (Bitblast.cnf ctx) with
          | Some Dpll.Unsat -> Unsat
          | None -> Unknown
          | Some (Dpll.Sat assign) ->
              let tbl = Hashtbl.create 16 in
              List.iter
                (fun v ->
                  Hashtbl.replace tbl v.Expr.id
                    (Bitblast.model_of ctx assign v))
                vars;
              let m (v : Expr.var) =
                match Hashtbl.find_opt tbl v.Expr.id with
                | Some x -> x
                | None -> 0
              in
              (* The model must satisfy the constraints; a failure here
                 is a bit-blasting bug, so fail loudly. *)
              assert (verified constraints m);
              Sat m))

let solve_group cnt a group =
  cnt.c_group_solves <- cnt.c_group_solves + 1;
  if not a.use_cache then core_solve cnt group
  else
    let cache = Domain.DLS.get cache_key in
    match Qcache.lookup cache group with
    | Qcache.Exact_sat m ->
        cnt.c_exact_hits <- cnt.c_exact_hits + 1;
        Sat m
    | Qcache.Exact_unsat ->
        cnt.c_exact_hits <- cnt.c_exact_hits + 1;
        Unsat
    | Qcache.Subset_unsat ->
        cnt.c_subset_unsat_hits <- cnt.c_subset_unsat_hits + 1;
        Unsat
    | Qcache.Reuse_sat m ->
        cnt.c_model_reuse_hits <- cnt.c_model_reuse_hits + 1;
        Sat m
    | Qcache.Miss -> (
        cnt.c_misses <- cnt.c_misses + 1;
        let r = core_solve cnt group in
        (match r with
         | Sat m -> Qcache.store_sat cache group m
         | Unsat -> Qcache.store_unsat cache group
         | Unknown -> ());
        r)

let check constraints =
  let cnt = counters () in
  cnt.c_queries <- cnt.c_queries + 1;
  let constraints = List.map Simplify.simplify_bool constraints in
  if List.exists (fun c -> c = Expr.fls) constraints then Unsat
  else
    let constraints = List.filter (fun c -> c <> Expr.tru) constraints in
    if constraints = [] then Sat (fun _ -> 0)
    else
      let a = current_accel () in
      let groups =
        if a.use_slicing then Indep.partition constraints else [ constraints ]
      in
      (* Groups touch disjoint variables, so the union of their models is
         a model of the conjunction. Any Unsat group sinks the whole set;
         an Unknown group makes the verdict Unknown unless a later group
         is Unsat. *)
      let tbl = Hashtbl.create 16 in
      let rec go unknown = function
        | [] ->
            if unknown then Unknown
            else
              Sat
                (fun (v : Expr.var) ->
                  match Hashtbl.find_opt tbl v.Expr.id with
                  | Some x -> x
                  | None -> 0)
        | g :: rest -> (
            match solve_group cnt a g with
            | Unsat -> Unsat
            | Unknown -> go true rest
            | Sat m ->
                List.iter
                  (fun (v : Expr.var) -> Hashtbl.replace tbl v.Expr.id (m v))
                  (List.concat_map Expr.vars g
                  |> List.sort_uniq (fun a b -> compare a.Expr.id b.Expr.id));
                go unknown rest)
      in
      go false groups

let is_feasible constraints =
  match check constraints with Sat _ | Unknown -> true | Unsat -> false

let concretize constraints e =
  match check constraints with
  | Unsat -> None
  | Sat m -> Some (Expr.eval m e)
  | Unknown ->
      (* Fall back to the zero valuation, but only if it actually
         satisfies the constraints: an unverified guess would let the
         engine continue down a path whose condition the pinned value
         contradicts. *)
      let zeros (_ : Expr.var) = 0 in
      if verified constraints zeros then Some (Expr.eval zeros e) else None
