type model = Expr.var -> int

type result =
  | Sat of model
  | Unsat
  | Unknown

(* --- acceleration configuration ----------------------------------------- *)

type accel = {
  use_slicing : bool;
  use_cache : bool;
  cache_capacity : int;
  model_reuse : int;
}

let default_accel =
  { use_slicing = true; use_cache = true; cache_capacity = 4096;
    model_reuse = 12 }

let no_accel =
  { use_slicing = false; use_cache = false; cache_capacity = 1;
    model_reuse = 0 }

(* The accel knobs and the query cache are process-global: one
   mutex-sharded cache ({!Qcache.Sharded}) serves every domain, so a
   group solved by any worker is a hit for all of them — workers no
   longer re-solve each other's queries. [set_accel]/[clear_cache] swap
   in a fresh cache atomically; in-flight operations finish against
   their snapshot. *)
let accel = Atomic.make default_accel

let fresh_cache a =
  Qcache.Sharded.create ~capacity:a.cache_capacity ~model_reuse:a.model_reuse ()

let cache = Atomic.make (fresh_cache default_accel)

let current_accel () = Atomic.get accel

let clear_cache () = Atomic.set cache (fresh_cache (current_accel ()))

let set_accel a =
  Atomic.set accel a;
  clear_cache ()

(* The live shared cache instance, for the durability layer: warm-start
   loads ({!Pstore}) and checkpoint dump/import go straight to it. Any
   [set_accel]/[clear_cache] invalidates the handle — re-fetch it. *)
let current_cache () = Atomic.get cache

(* --- retry policy -------------------------------------------------------- *)

type retry = {
  base_conflicts : int;
  escalated_conflicts : int;
  deadline_s : float;
}

(* 200k conflicts settles every corpus query on the first attempt; the
   escalated retry restores the historical 2M ceiling for the rare group
   that needs it, so final verdicts are unchanged from the single-budget
   era — the retry only re-spends work that would previously have been
   spent up front on every hard query. *)
let default_retry =
  { base_conflicts = 200_000; escalated_conflicts = 2_000_000;
    deadline_s = 5.0 }

let no_retry =
  { base_conflicts = 2_000_000; escalated_conflicts = 0; deadline_s = 0. }

let retry_policy = Atomic.make default_retry
let set_retry r = Atomic.set retry_policy r
let current_retry () = Atomic.get retry_policy

let attempt_deadline r =
  if r.deadline_s > 0. then Some (Unix.gettimeofday () +. r.deadline_s)
  else None

(* Fault injection for the chaos harness: when set, the hook is asked
   once per uncached group solve and [true] forces the first attempt to
   report budget exhaustion without running, exercising the retry path
   deterministically. *)
let chaos_exhaust : (unit -> bool) option Atomic.t = Atomic.make None
let set_chaos_exhaust f = Atomic.set chaos_exhaust f

(* Per-domain exhaustion counters let the engine attribute a budget
   exhaustion to the state whose quantum was executing on this domain
   (the process-global counters can't tell workers apart). *)
let dls_exhaustions : int ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref 0)

let dls_unrecovered : int ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref 0)

let domain_exhaustions () = !(Domain.DLS.get dls_exhaustions)
let domain_unrecovered () = !(Domain.DLS.get dls_unrecovered)

(* --- statistics ---------------------------------------------------------- *)

type stats = {
  s_queries : int;
  s_group_solves : int;
  s_cache_exact_hits : int;
  s_cache_subset_unsat_hits : int;
  s_cache_model_reuse_hits : int;
  s_cache_misses : int;
  s_cache_renamed_hits : int;
  s_cache_cross_worker_hits : int;
  s_cache_persist_hits : int;
  s_interval_solves : int;
  s_bitblast_solves : int;
  s_cache_evictions : int;
  s_exhaustions : int;
  s_retries : int;
  s_retry_recovered : int;
  s_cache_bloom_hits : int;
  s_incr_queries : int;
  s_incr_model_hits : int;
  s_incr_sat_solves : int;
  s_incr_learned_retained : int;
  s_incr_skipped_recanon : int;
  s_incr_pushes : int;
  s_incr_pops : int;
  s_incr_rebuilds : int;
}

(* Counters are process-global atomics — parallel frontier workers all
   account into the same totals (the cache they describe is shared too). *)
type counters = {
  c_queries : int Atomic.t;
  c_group_solves : int Atomic.t;
  c_exact_hits : int Atomic.t;
  c_subset_unsat_hits : int Atomic.t;
  c_model_reuse_hits : int Atomic.t;
  c_misses : int Atomic.t;
  c_renamed_hits : int Atomic.t;
  c_cross_worker_hits : int Atomic.t;
  c_persist_hits : int Atomic.t;
  c_interval_solves : int Atomic.t;
  c_bitblast_solves : int Atomic.t;
  c_exhaustions : int Atomic.t;
  c_retries : int Atomic.t;
  c_retry_recovered : int Atomic.t;
  c_incr_queries : int Atomic.t;
  c_incr_model_hits : int Atomic.t;
  c_incr_sat_solves : int Atomic.t;
  c_incr_learned_retained : int Atomic.t;
  c_incr_skipped_recanon : int Atomic.t;
  c_incr_pushes : int Atomic.t;
  c_incr_pops : int Atomic.t;
  c_incr_rebuilds : int Atomic.t;
}

let cnt =
  { c_queries = Atomic.make 0; c_group_solves = Atomic.make 0;
    c_exact_hits = Atomic.make 0; c_subset_unsat_hits = Atomic.make 0;
    c_model_reuse_hits = Atomic.make 0; c_misses = Atomic.make 0;
    c_renamed_hits = Atomic.make 0; c_cross_worker_hits = Atomic.make 0;
    c_persist_hits = Atomic.make 0;
    c_interval_solves = Atomic.make 0; c_bitblast_solves = Atomic.make 0;
    c_exhaustions = Atomic.make 0; c_retries = Atomic.make 0;
    c_retry_recovered = Atomic.make 0;
    c_incr_queries = Atomic.make 0; c_incr_model_hits = Atomic.make 0;
    c_incr_sat_solves = Atomic.make 0;
    c_incr_learned_retained = Atomic.make 0;
    c_incr_skipped_recanon = Atomic.make 0; c_incr_pushes = Atomic.make 0;
    c_incr_pops = Atomic.make 0; c_incr_rebuilds = Atomic.make 0 }

let stats () =
  {
    s_queries = Atomic.get cnt.c_queries;
    s_group_solves = Atomic.get cnt.c_group_solves;
    s_cache_exact_hits = Atomic.get cnt.c_exact_hits;
    s_cache_subset_unsat_hits = Atomic.get cnt.c_subset_unsat_hits;
    s_cache_model_reuse_hits = Atomic.get cnt.c_model_reuse_hits;
    s_cache_misses = Atomic.get cnt.c_misses;
    s_cache_renamed_hits = Atomic.get cnt.c_renamed_hits;
    s_cache_cross_worker_hits = Atomic.get cnt.c_cross_worker_hits;
    s_cache_persist_hits = Atomic.get cnt.c_persist_hits;
    s_interval_solves = Atomic.get cnt.c_interval_solves;
    s_bitblast_solves = Atomic.get cnt.c_bitblast_solves;
    s_cache_evictions = Qcache.Sharded.evictions (Atomic.get cache);
    s_exhaustions = Atomic.get cnt.c_exhaustions;
    s_retries = Atomic.get cnt.c_retries;
    s_retry_recovered = Atomic.get cnt.c_retry_recovered;
    s_cache_bloom_hits = Qcache.Sharded.bloom_recoveries (Atomic.get cache);
    s_incr_queries = Atomic.get cnt.c_incr_queries;
    s_incr_model_hits = Atomic.get cnt.c_incr_model_hits;
    s_incr_sat_solves = Atomic.get cnt.c_incr_sat_solves;
    s_incr_learned_retained = Atomic.get cnt.c_incr_learned_retained;
    s_incr_skipped_recanon = Atomic.get cnt.c_incr_skipped_recanon;
    s_incr_pushes = Atomic.get cnt.c_incr_pushes;
    s_incr_pops = Atomic.get cnt.c_incr_pops;
    s_incr_rebuilds = Atomic.get cnt.c_incr_rebuilds;
  }

let diff_stats (b : stats) (a : stats) =
  {
    s_queries = b.s_queries - a.s_queries;
    s_group_solves = b.s_group_solves - a.s_group_solves;
    s_cache_exact_hits = b.s_cache_exact_hits - a.s_cache_exact_hits;
    s_cache_subset_unsat_hits =
      b.s_cache_subset_unsat_hits - a.s_cache_subset_unsat_hits;
    s_cache_model_reuse_hits =
      b.s_cache_model_reuse_hits - a.s_cache_model_reuse_hits;
    s_cache_misses = b.s_cache_misses - a.s_cache_misses;
    s_cache_renamed_hits = b.s_cache_renamed_hits - a.s_cache_renamed_hits;
    s_cache_cross_worker_hits =
      b.s_cache_cross_worker_hits - a.s_cache_cross_worker_hits;
    s_cache_persist_hits = b.s_cache_persist_hits - a.s_cache_persist_hits;
    s_interval_solves = b.s_interval_solves - a.s_interval_solves;
    s_bitblast_solves = b.s_bitblast_solves - a.s_bitblast_solves;
    s_cache_evictions = max 0 (b.s_cache_evictions - a.s_cache_evictions);
    s_exhaustions = b.s_exhaustions - a.s_exhaustions;
    s_retries = b.s_retries - a.s_retries;
    s_retry_recovered = b.s_retry_recovered - a.s_retry_recovered;
    s_cache_bloom_hits = max 0 (b.s_cache_bloom_hits - a.s_cache_bloom_hits);
    s_incr_queries = b.s_incr_queries - a.s_incr_queries;
    s_incr_model_hits = b.s_incr_model_hits - a.s_incr_model_hits;
    s_incr_sat_solves = b.s_incr_sat_solves - a.s_incr_sat_solves;
    s_incr_learned_retained =
      b.s_incr_learned_retained - a.s_incr_learned_retained;
    s_incr_skipped_recanon =
      b.s_incr_skipped_recanon - a.s_incr_skipped_recanon;
    s_incr_pushes = b.s_incr_pushes - a.s_incr_pushes;
    s_incr_pops = b.s_incr_pops - a.s_incr_pops;
    s_incr_rebuilds = b.s_incr_rebuilds - a.s_incr_rebuilds;
  }

let cache_hits s =
  s.s_cache_exact_hits + s.s_cache_subset_unsat_hits
  + s.s_cache_model_reuse_hits

let cache_hit_rate s =
  let hits = cache_hits s in
  let total = hits + s.s_cache_misses in
  if total = 0 then 0.0 else float_of_int hits /. float_of_int total

let stats_queries () = (stats ()).s_queries

let reset_stats () =
  Atomic.set cnt.c_queries 0;
  Atomic.set cnt.c_group_solves 0;
  Atomic.set cnt.c_exact_hits 0;
  Atomic.set cnt.c_subset_unsat_hits 0;
  Atomic.set cnt.c_model_reuse_hits 0;
  Atomic.set cnt.c_misses 0;
  Atomic.set cnt.c_renamed_hits 0;
  Atomic.set cnt.c_cross_worker_hits 0;
  Atomic.set cnt.c_persist_hits 0;
  Atomic.set cnt.c_interval_solves 0;
  Atomic.set cnt.c_bitblast_solves 0;
  Atomic.set cnt.c_exhaustions 0;
  Atomic.set cnt.c_retries 0;
  Atomic.set cnt.c_retry_recovered 0;
  Atomic.set cnt.c_incr_queries 0;
  Atomic.set cnt.c_incr_model_hits 0;
  Atomic.set cnt.c_incr_sat_solves 0;
  Atomic.set cnt.c_incr_learned_retained 0;
  Atomic.set cnt.c_incr_skipped_recanon 0;
  Atomic.set cnt.c_incr_pushes 0;
  Atomic.set cnt.c_incr_pops 0;
  Atomic.set cnt.c_incr_rebuilds 0

(* --- the layered solve of one (simplified, nontrivial) group ------------- *)

let verified constraints env =
  List.for_all (fun c -> Expr.eval env c = 1) constraints

let core_solve ~budget ~deadline constraints =
  let vars =
    List.concat_map Expr.vars constraints
    |> List.sort_uniq (fun a b -> compare a.Expr.id b.Expr.id)
  in
  match Interval.infer constraints with
  | None ->
      Atomic.incr cnt.c_interval_solves;
      Unsat
  | Some env_ranges -> (
      (* Cheap verified guesses first. *)
      let guess =
        List.find_opt
          (fun m -> verified constraints m)
          (Interval.candidates env_ranges vars)
      in
      match guess with
      | Some m ->
          Atomic.incr cnt.c_interval_solves;
          Sat m
      | None -> (
          Atomic.incr cnt.c_bitblast_solves;
          let ctx = Bitblast.create () in
          List.iter (Bitblast.assert_true ctx) constraints;
          match Dpll.solve ~max_conflicts:budget ?deadline (Bitblast.cnf ctx) with
          | Some Dpll.Unsat -> Unsat
          | None -> Unknown
          | Some (Dpll.Sat assign) ->
              let tbl = Hashtbl.create 16 in
              List.iter
                (fun v ->
                  Hashtbl.replace tbl v.Expr.id
                    (Bitblast.model_of ctx assign v))
                vars;
              let m (v : Expr.var) =
                match Hashtbl.find_opt tbl v.Expr.id with
                | Some x -> x
                | None -> 0
              in
              (* The model must satisfy the constraints; a failure here
                 is a bit-blasting bug, so fail loudly. *)
              assert (verified constraints m);
              Sat m))

let note_hit_info (info : Qcache.info) =
  if info.Qcache.i_renamed then Atomic.incr cnt.c_renamed_hits;
  if info.Qcache.i_owner >= 0 && info.Qcache.i_owner <> (Domain.self () :> int)
  then Atomic.incr cnt.c_cross_worker_hits;
  if info.Qcache.i_persisted then Atomic.incr cnt.c_persist_hits

(* One uncached group solve under the retry policy: a bounded first
   attempt; on budget exhaustion the group is re-submitted once through
   the qcache (another worker may have answered it meanwhile) and then
   re-solved with the escalated budget before the Unknown is final.
   The decision procedure itself is the [attempt] parameter so the
   incremental session layer inherits this machinery — chaos hook,
   exhaustion accounting, escalated re-lookup — unchanged. *)
let solve_with_retry ~attempt ~cached group =
  let r = Atomic.get retry_policy in
  let forced =
    match Atomic.get chaos_exhaust with Some f -> f () | None -> false
  in
  let first =
    if forced then Unknown
    else attempt ~budget:r.base_conflicts ~deadline:(attempt_deadline r)
           group
  in
  match first with
  | (Sat _ | Unsat) as v -> v
  | Unknown ->
      Atomic.incr cnt.c_exhaustions;
      incr (Domain.DLS.get dls_exhaustions);
      if r.escalated_conflicts <= 0 then begin
        incr (Domain.DLS.get dls_unrecovered);
        Unknown
      end
      else begin
        Atomic.incr cnt.c_retries;
        (* Counters for the re-lookup are intentionally not bumped: the
           group already accounted a miss, and a recovered verdict is
           reported as s_retry_recovered instead. *)
        let rehit =
          match cached with
          | None -> None
          | Some c -> (
              match Qcache.Sharded.lookup c group with
              | Qcache.Exact_sat m, _ | Qcache.Reuse_sat m, _ -> Some (Sat m)
              | Qcache.Exact_unsat, _ | Qcache.Subset_unsat, _ -> Some Unsat
              | Qcache.Miss, _ -> None)
        in
        let v =
          match rehit with
          | Some v -> v
          | None ->
              attempt ~budget:r.escalated_conflicts
                ~deadline:(attempt_deadline r) group
        in
        (match v with
        | Sat _ | Unsat -> Atomic.incr cnt.c_retry_recovered
        | Unknown -> incr (Domain.DLS.get dls_unrecovered));
        v
      end

let solve_group_with ~attempt a group =
  Atomic.incr cnt.c_group_solves;
  if not a.use_cache then solve_with_retry ~attempt ~cached:None group
  else
    let c = Atomic.get cache in
    match Qcache.Sharded.lookup c group with
    | Qcache.Exact_sat m, info ->
        Atomic.incr cnt.c_exact_hits;
        note_hit_info info;
        Sat m
    | Qcache.Exact_unsat, info ->
        Atomic.incr cnt.c_exact_hits;
        note_hit_info info;
        Unsat
    | Qcache.Subset_unsat, info ->
        Atomic.incr cnt.c_subset_unsat_hits;
        note_hit_info info;
        Unsat
    | Qcache.Reuse_sat m, info ->
        Atomic.incr cnt.c_model_reuse_hits;
        note_hit_info info;
        Sat m
    | Qcache.Miss, _ -> (
        Atomic.incr cnt.c_misses;
        let r = solve_with_retry ~attempt ~cached:(Some c) group in
        (match r with
         | Sat m -> Qcache.Sharded.store_sat c group m
         | Unsat -> Qcache.Sharded.store_unsat c group
         | Unknown -> ());
        r)

let solve_group a group =
  solve_group_with
    ~attempt:(fun ~budget ~deadline g -> core_solve ~budget ~deadline g)
    a group

let check constraints =
  Atomic.incr cnt.c_queries;
  let constraints = List.map Simplify.simplify_bool constraints in
  if List.exists (fun c -> c = Expr.fls) constraints then Unsat
  else
    let constraints = List.filter (fun c -> c <> Expr.tru) constraints in
    if constraints = [] then Sat (fun _ -> 0)
    else
      let a = current_accel () in
      let groups =
        if a.use_slicing then Indep.partition constraints else [ constraints ]
      in
      (* Groups touch disjoint variables, so the union of their models is
         a model of the conjunction. Any Unsat group sinks the whole set;
         an Unknown group makes the verdict Unknown unless a later group
         is Unsat. *)
      let tbl = Hashtbl.create 16 in
      let rec go unknown = function
        | [] ->
            if unknown then Unknown
            else
              Sat
                (fun (v : Expr.var) ->
                  match Hashtbl.find_opt tbl v.Expr.id with
                  | Some x -> x
                  | None -> 0)
        | g :: rest -> (
            match solve_group a g with
            | Unsat -> Unsat
            | Unknown -> go true rest
            | Sat m ->
                List.iter
                  (fun (v : Expr.var) -> Hashtbl.replace tbl v.Expr.id (m v))
                  (List.concat_map Expr.vars g
                  |> List.sort_uniq (fun a b -> compare a.Expr.id b.Expr.id));
                go unknown rest)
      in
      go false groups

let is_feasible constraints =
  match check constraints with Sat _ | Unknown -> true | Unsat -> false

let concretize constraints e =
  match check constraints with
  | Unsat -> None
  | Sat m -> Some (Expr.eval m e)
  | Unknown ->
      (* Fall back to the zero valuation, but only if it actually
         satisfies the constraints: an unverified guess would let the
         engine continue down a path whose condition the pinned value
         contradicts. *)
      let zeros (_ : Expr.var) = 0 in
      if verified constraints zeros then Some (Expr.eval zeros e) else None

(* --- internal interface for the incremental session layer ---------------- *)

(* {!Incr} lives in this library but behind this narrow seam: it reuses
   the shared query cache, the retry/chaos machinery and the statistics
   counters, so a session-answered query is accounted (and
   fault-injected) exactly like an oracle-answered one. *)
module For_incr = struct
  let current_accel = current_accel

  let solve_group_with = solve_group_with
  (* [solve_group_with ~attempt a group] runs the full cache + retry
     pipeline for one independence group with [attempt] as the decision
     procedure; [attempt] receives the per-attempt conflict budget and
     deadline. *)

  let verified = verified

  let note_query () = Atomic.incr cnt.c_queries
  let note_incr_query () = Atomic.incr cnt.c_incr_queries
  let note_model_hit () = Atomic.incr cnt.c_incr_model_hits
  let note_sat_solve () = Atomic.incr cnt.c_incr_sat_solves
  let note_interval_solve () = Atomic.incr cnt.c_interval_solves
  let note_bitblast_solve () = Atomic.incr cnt.c_bitblast_solves

  let note_learned_retained n =
    ignore (Atomic.fetch_and_add cnt.c_incr_learned_retained n)

  let note_skipped_recanon n =
    ignore (Atomic.fetch_and_add cnt.c_incr_skipped_recanon n)

  let note_pushes n = ignore (Atomic.fetch_and_add cnt.c_incr_pushes n)
  let note_pops n = ignore (Atomic.fetch_and_add cnt.c_incr_pops n)
  let note_rebuild () = Atomic.incr cnt.c_incr_rebuilds
end
