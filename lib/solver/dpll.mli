(** A DPLL SAT solver with two-watched-literal unit propagation.

    Decisions follow a static occurrence-count order; conflicts trigger
    chronological backtracking over the decision trail. Sufficient for the
    circuit formulas produced by {!Bitblast} (driver path conditions are
    dominated by comparisons, masks and additions). *)

type result =
  | Sat of bool array
      (** [a.(v)] is the value of variable [v]; index 0 is unused. *)
  | Unsat

val solve : ?max_conflicts:int -> ?deadline:float -> Cnf.t -> result option
(** [None] when the conflict budget is exhausted (treat as unknown).
    [deadline] is an absolute [Unix.gettimeofday] instant; when given,
    the search also answers [None] once the clock passes it (polled
    every 256 conflicts), so one adversarial query cannot stall a
    worker indefinitely. *)

(** An incremental solver whose clause database, watch lists, occurrence
    counts and learned clauses persist across queries; each query solves
    under a set of assumption literals (enqueued as unflippable decision
    levels, so [Unsat] means unsat {e under the assumptions}).

    This is the activation-literal interface driven by {!Incr}: a
    path-condition frame is asserted once as the guarded clause
    [-sel \/ frame] and thereafter enabled by assuming [sel] (or disabled
    by assuming [-sel]) — pushing and popping frames never re-blasts or
    re-integrates anything. At each conflict the negation of the current
    assumption + decision literals is learned (capped in length and
    database size) and integrated at the start of the next solve; since a
    learned clause carries the negated selectors it was derived under,
    popping a frame merely satisfies — never invalidates — the clauses
    learned from it. *)
module Inc : sig
  type t

  val create : unit -> t

  val add_clause : t -> int list -> unit
  (** Queue a permanent clause; integrated at the next [solve]. Variables
      are provisioned on integration, so literals may use ids the solver
      has not seen yet (e.g. fresh {!Cnf} variables). *)

  val solve :
    ?max_conflicts:int -> ?deadline:float -> t -> assumptions:int list ->
    result option
  (** Solve the integrated clauses under the assumptions. [Sat a] assigns
      every provisioned variable ([a.(v)], index 0 unused); [Unsat] is
      relative to [assumptions]; [None] = budget or deadline exhausted. *)

  val num_vars : t -> int
  val learned : t -> int
  (** Learned clauses currently retained in the database. *)
end
