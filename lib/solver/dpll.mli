(** A DPLL SAT solver with two-watched-literal unit propagation.

    Decisions follow a static occurrence-count order; conflicts trigger
    chronological backtracking over the decision trail. Sufficient for the
    circuit formulas produced by {!Bitblast} (driver path conditions are
    dominated by comparisons, masks and additions). *)

type result =
  | Sat of bool array
      (** [a.(v)] is the value of variable [v]; index 0 is unused. *)
  | Unsat

val solve : ?max_conflicts:int -> ?deadline:float -> Cnf.t -> result option
(** [None] when the conflict budget is exhausted (treat as unknown).
    [deadline] is an absolute [Unix.gettimeofday] instant; when given,
    the search also answers [None] once the clock passes it (polled
    every 256 conflicts), so one adversarial query cannot stall a
    worker indefinitely. *)
