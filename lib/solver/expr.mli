(** Symbolic bitvector expressions.

    Expressions are the currency of the whole symbolic engine: machine words
    ({!W32}), memory bytes ({!W8}) and path-condition booleans ({!W1}).
    Constants are stored as non-negative OCaml ints masked to their width.
    Smart constructors perform constant folding and cheap algebraic
    rewriting, so an expression built only from constants is itself a
    constant. *)

type width = W1 | W8 | W32

type var = private { id : int; name : string; var_width : width }

type binop =
  | Add | Sub | Mul | Divu | Remu
  | And | Or | Xor
  | Shl | Lshr | Ashr

type cmpop = Eq | Ne | Ltu | Leu | Lts | Les

type t =
  | Const of width * int
  | Var of var
  | Binop of binop * t * t
  | Cmp of cmpop * t * t          (** result has width {!W1} *)
  | Ite of t * t * t              (** condition has width {!W1} *)
  | Extract of t * int            (** byte [i] (0 = LSB) of a {!W32} value *)
  | Concat4 of t * t * t * t      (** [Concat4 (b3, b2, b1, b0)]: b0 is LSB *)
  | Zext of t                     (** zero-extend {!W1}/{!W8} to {!W32} *)
  | Not of t                      (** boolean negation, width {!W1} *)

val bits_of_width : width -> int
val mask_of_width : width -> int
val width_of : t -> width

(** {1 Variables} *)

val fresh_var : ?name:string -> width -> var

val reset_var_counter : unit -> unit
(** For test isolation only. *)

val var_counter_value : unit -> int
(** Current allocator position, captured into checkpoints. *)

val set_var_counter : int -> unit
(** Restore the allocator position from a checkpoint so resumed states'
    variables never collide with freshly minted ones. The position is the
    raw draw count, not an id (see {!set_var_lane}). *)

val set_var_lane : lane:int -> lanes:int -> unit
(** Lane-partitioned allocation for multi-process exploration: with
    [lanes = L] and this process in lane [k], minted ids are [n*L + k] —
    disjoint residue classes per process, so ids stay globally unique
    across a coordinator and its workers without coordination. Global
    uniqueness keeps the cache's original-space subset-Unsat rule sound
    when states cross process boundaries. [lane:0 ~lanes:1] (the
    default) is the historical dense sequence. Set before minting any
    variable that may travel between processes. *)

val var_lane : unit -> int
(** This process's current lane (0 in single-process runs). *)

val canon_var : int -> width -> var
(** A canonical variable for cache normalization up to renaming: the name
    is erased and the id is the caller's dense index (first-occurrence
    order). Only for building cache keys — never for engine state. *)

(** {1 Smart constructors} *)

val const : width -> int -> t
val word : int -> t                 (** [const W32] *)
val byte : int -> t                 (** [const W8] *)
val tru : t
val fls : t
val var : var -> t
val binop : binop -> t -> t -> t
val cmp : cmpop -> t -> t -> t
val ite : t -> t -> t -> t
val extract : t -> int -> t
val concat4 : t -> t -> t -> t -> t
val zext : t -> t
val not_ : t -> t
val and1 : t -> t -> t              (** boolean conjunction on {!W1} *)
val or1 : t -> t -> t               (** boolean disjunction on {!W1} *)

(** {1 Queries} *)

val is_const : t -> bool
val to_const : t -> int option
val vars : t -> var list            (** distinct variables, in id order *)
val size : t -> int                 (** node count *)

(** {1 Concrete evaluation} *)

val eval : (var -> int) -> t -> int
(** [eval env e] computes the concrete value of [e], masked to its width.
    The environment must be total on the variables of [e]. *)

(** {1 Concrete arithmetic helpers (32-bit semantics)} *)

val eval_binop : binop -> width -> int -> int -> int
val eval_cmp : cmpop -> width -> int -> int -> int
val to_signed : width -> int -> int

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val pp_var : Format.formatter -> var -> unit

val equal : t -> t -> bool
val compare : t -> t -> int
