(** Unsigned interval reasoning over symbolic expressions.

    A cheap, sound pre-pass used by {!Solver} before bit-blasting: it
    derives per-variable unsigned ranges from the path constraints and can
    (a) prove a constraint set infeasible, and (b) propose candidate models
    that are then verified by concrete evaluation. Anything it cannot
    interpret it ignores, so it never produces a wrong answer, only
    "unknown". *)

type t = { lo : int; hi : int }
(** A non-empty unsigned interval [lo, hi], 0 <= lo <= hi. *)

val full : Expr.width -> t
val singleton : int -> t
val is_singleton : t -> bool
val meet : t -> t -> t option
(** Intersection; [None] when empty. *)

val range_of : (Expr.var -> t) -> Expr.t -> t
(** Conservative range of an expression under per-variable ranges. *)

type env = (int, t) Hashtbl.t
(** Variable id -> interval. *)

val infer : Expr.t list -> env option
(** [infer constraints] narrows variable ranges from constraints of
    recognizable shapes, to a fixpoint. [None] means the constraints are
    definitely unsatisfiable. [Some env] makes no satisfiability claim. *)

val lookup : env -> Expr.var -> t

val range_within : env -> Expr.t -> t
(** Like {!range_of} over [lookup env], but each [Ite] arm is ranged in
    a copy of [env] conditioned on its guard (and an arm whose guard
    contradicts [env] is dropped). Keeps ranges tight through the
    [ite(cond, clamped, raw)] values introduced by post-dominator state
    merging, where the clamping constraint lives inside the guard rather
    than in the conjunctive path condition. *)

val candidates : env -> Expr.var list -> (Expr.var -> int) list
(** A few cheap whole-model guesses (low ends, high ends, midpoints) to be
    verified against the constraints by evaluation. *)
