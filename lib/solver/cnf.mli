(** CNF formula construction with Tseitin gates.

    Literals are non-zero ints: [v] for a positive occurrence of variable
    [v >= 1], [-v] for a negative one. Variable 1 is reserved as the
    constant TRUE (asserted as a unit clause on creation), so [lit_true]
    and [lit_false] are ordinary literals. *)

type t

val create : unit -> t
val fresh : t -> int                    (** a new variable, as a positive literal *)
val num_vars : t -> int
val clauses : t -> int array list       (** in insertion order *)
val add_clause : t -> int list -> unit

val clause_count : t -> int
(** Number of clauses added so far — a cheap position marker. *)

val clauses_since : t -> int -> int array list
(** [clauses_since t mark] returns, in insertion order, the clauses added
    after a [clause_count] snapshot of [mark]. *)

val lit_true : int
val lit_false : int

(** {1 Gates} — each returns a literal constrained to equal the gate output. *)

val g_and : t -> int -> int -> int
val g_or : t -> int -> int -> int
val g_xor : t -> int -> int -> int
val g_and_list : t -> int list -> int
val g_or_list : t -> int list -> int
val g_ite : t -> int -> int -> int -> int   (** [g_ite c a b] = if c then a else b *)
val g_maj : t -> int -> int -> int -> int   (** majority of three, for adder carries *)

val assert_lit : t -> int -> unit
val assert_implies : t -> int -> int -> unit   (** add clause [(-a) \/ b] *)
val assert_eq : t -> int -> int -> unit        (** a <-> b *)
