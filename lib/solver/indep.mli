(** Constraint-independence slicing (Klee's first query optimization).

    Two constraints are dependent when they share a symbolic variable,
    directly or transitively through other constraints. {!partition}
    splits a constraint set into the equivalence classes of that relation
    (computed by union-find over {!Expr.vars}); the classes touch
    pairwise-disjoint variable sets, so each can be solved separately and
    the per-class models unioned into a model of the whole conjunction.

    Path conditions produced by driver exploration are dominated by many
    small independent facts (a registry parameter bound here, a status
    register bit there), so slicing turns one big query into several tiny
    ones — and keeps the {!Qcache} keys stable when a new constraint only
    touches one group. *)

val partition : Expr.t list -> Expr.t list list
(** Variable-disjoint groups, ordered by first appearance; constraints
    keep their relative order inside each group. Constraints with no
    variables (not folded away upstream) are gathered into one group. *)

val relevant : Expr.t list -> Expr.t -> Expr.t list
(** [relevant constraints e] keeps only the constraints in groups sharing
    a variable (transitively) with [e] — the slice that can influence the
    value of [e]. Order is preserved. *)
