type t = { lo : int; hi : int }

let full w = { lo = 0; hi = Expr.mask_of_width w }
let singleton v = { lo = v; hi = v }
let is_singleton r = r.lo = r.hi

let meet a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo > hi then None else Some { lo; hi }

(* Conservative interval arithmetic: when an operation could wrap or is
   otherwise hard to bound we return the full range of the result width.
   Parameterized over an abstract environment: [lookup] ranges a
   variable, [refine] conditions the environment on a W1 guard (or
   reports the guard infeasible with [None]) so an [Ite] arm can be
   ranged under the facts its own guard implies — without this, a
   post-dominator merge that lifts a clamped index to
   [ite(count > 7, 7, count)] loses the clamp and the hull degrades to
   the full word range. *)
let range_gen ~lookup ~refine env e =
  let open Expr in
  let rec go env e =
    let w = width_of e in
    let top = full w in
    match e with
    | Const (_, v) -> singleton v
    | Var v -> lookup env v
    | Zext x -> go env x
    | Extract (x, i) ->
        (* byte i of x: exact once x is known to fit below byte i+1,
           because the mask then truncates nothing *)
        let r = go env x in
        if r.hi < 1 lsl (8 * (i + 1)) then
          { lo = r.lo lsr (8 * i); hi = r.hi lsr (8 * i) }
        else full W8
    | Concat4 (b3, b2, b1, b0) ->
        (* independent byte fields: the word is monotone in each *)
        let r3 = go env b3 and r2 = go env b2 and r1 = go env b1
        and r0 = go env b0 in
        { lo = (r3.lo lsl 24) lor (r2.lo lsl 16) lor (r1.lo lsl 8) lor r0.lo;
          hi = (r3.hi lsl 24) lor (r2.hi lsl 16) lor (r1.hi lsl 8) lor r0.hi }
    | Not x ->
        let r = go env x in
        if is_singleton r then singleton (1 - r.lo) else full W1
    | Ite (c, a, b) -> (
        let ra = Option.map (fun en -> go en a) (refine env c) in
        let rb = Option.map (fun en -> go en b) (refine env (not_ c)) in
        match ra, rb with
        | Some ra, Some rb -> { lo = min ra.lo rb.lo; hi = max ra.hi rb.hi }
        | Some r, None | None, Some r -> r (* other arm infeasible *)
        | None, None -> top)
    | Cmp (op, a, b) ->
        let ra = go env a and rb = go env b in
        let certain v = singleton v in
        (match op with
         | Eq ->
             if ra.hi < rb.lo || rb.hi < ra.lo then certain 0
             else if is_singleton ra && is_singleton rb && ra.lo = rb.lo
             then certain 1
             else full W1
         | Ne ->
             if ra.hi < rb.lo || rb.hi < ra.lo then certain 1
             else if is_singleton ra && is_singleton rb && ra.lo = rb.lo
             then certain 0
             else full W1
         | Ltu ->
             if ra.hi < rb.lo then certain 1
             else if ra.lo >= rb.hi then certain 0
             else full W1
         | Leu ->
             if ra.hi <= rb.lo then certain 1
             else if ra.lo > rb.hi then certain 0
             else full W1
         | Lts | Les ->
             (* Signed: only decide when both sides stay in the positive
                half, where signed and unsigned orders agree. *)
             let wa = width_of a in
             let half = 1 lsl (bits_of_width wa - 1) in
             if ra.hi < half && rb.hi < half then
               (match op with
                | Lts ->
                    if ra.hi < rb.lo then certain 1
                    else if ra.lo >= rb.hi then certain 0
                    else full W1
                | _ ->
                    if ra.hi <= rb.lo then certain 1
                    else if ra.lo > rb.hi then certain 0
                    else full W1)
             else full W1)
    | Binop (op, a, b) ->
        let ra = go env a and rb = go env b in
        let mask = mask_of_width w in
        (match op with
         | Add ->
             if ra.hi + rb.hi <= mask then
               { lo = ra.lo + rb.lo; hi = ra.hi + rb.hi }
             else top
         | Sub ->
             if ra.lo >= rb.hi then { lo = ra.lo - rb.hi; hi = ra.hi - rb.lo }
             else top
         | Mul ->
             (* The fits-without-wrap test must itself avoid overflowing
                the host integers: use division, not multiplication. *)
             if rb.hi = 0 || ra.hi <= mask / rb.hi then
               { lo = ra.lo * rb.lo; hi = ra.hi * rb.hi }
             else top
         | Divu ->
             if rb.lo > 0 then { lo = ra.lo / rb.hi; hi = ra.hi / rb.lo }
             else top
         | Remu ->
             (* Remu x 0 = x (SMT-LIB semantics), so when the divisor can
                be zero the dividend's range must be included. *)
             if rb.lo > 0 then { lo = 0; hi = rb.hi - 1 }
             else if rb.hi > 0 then { lo = 0; hi = max ra.hi (rb.hi - 1) }
             else ra
         | And -> { lo = 0; hi = min ra.hi rb.hi }
         | Or ->
             (* a lor b < 2^ceil(log2 (max+1)) for each operand, so round
                each bound up to all-ones of its bit length. *)
             let all_ones x =
               let rec go m = if m >= x then m else go ((m lsl 1) lor 1) in
               go 0
             in
             { lo = max ra.lo rb.lo;
               hi = min mask (all_ones ra.hi lor all_ones rb.hi) }
         | Xor -> top
         | Shl ->
             (match to_const b with
              | Some s
                when ra.hi <= mask lsr (s land (bits_of_width w - 1)) ->
                  let s = s land (bits_of_width w - 1) in
                  { lo = ra.lo lsl s; hi = ra.hi lsl s }
              | _ -> top)
         | Lshr ->
             (match to_const b with
              | Some s ->
                  let s = s land (bits_of_width w - 1) in
                  { lo = ra.lo lsr s; hi = ra.hi lsr s }
              | None -> { lo = 0; hi = ra.hi })
         | Ashr -> top)
  in
  go env e

let range_of lookup_var e =
  range_gen ~lookup:(fun () v -> lookup_var v)
    ~refine:(fun () _ -> Some ()) () e

type env = (int, t) Hashtbl.t

let lookup (env : env) (v : Expr.var) =
  match Hashtbl.find_opt env v.Expr.id with
  | Some r -> r
  | None -> full v.Expr.var_width

(* Narrow [v]'s interval using constraint [c]; true if narrowed. *)
let narrow env (v : Expr.var) (r : t) =
  let cur = lookup env v in
  match meet cur r with
  | None -> raise Exit
  | Some r' ->
      if r' = cur then false
      else begin
        Hashtbl.replace env v.Expr.id r';
        true
      end

(* Interpret constraints of shape (var CMP const) / (const CMP var),
   possibly through Zext. Returns true if some interval was narrowed. *)
let apply_constraint env c =
  let open Expr in
  let rec strip = function Zext x -> strip x | x -> x in
  let half w = 1 lsl (bits_of_width w - 1) in
  match c with
  | Cmp (op, lhs, Const (_, k)) -> (
      match strip lhs with
      | Var v ->
          let m = mask_of_width v.var_width in
          (match op with
           | Eq ->
               if k > m then raise Exit else narrow env v (singleton k)
           | Ltu ->
               if k = 0 then raise Exit
               else narrow env v { lo = 0; hi = min (k - 1) m }
           | Leu -> narrow env v { lo = 0; hi = min k m }
           | Lts when k < half v.var_width && k > 0 ->
               (* x <s k with k positive: x in [0, k-1] or negative half;
                  no single-interval narrowing possible, skip. *)
               false
           | _ -> false)
      | _ -> false)
  | Cmp (op, Const (_, k), rhs) -> (
      match strip rhs with
      | Var v ->
          let m = mask_of_width v.var_width in
          (match op with
           | Eq ->
               if k > m then raise Exit else narrow env v (singleton k)
           | Ltu ->
               if k >= m then raise Exit
               else narrow env v { lo = k + 1; hi = m }
           | Leu -> narrow env v { lo = min k m; hi = m }
           | _ -> false)
      | _ -> false)
  | Not (Cmp _) -> false (* simplifier normalizes these away *)
  | _ -> false

(* Condition a copy of [env] on a W1 guard: split its conjunctions and
   run the same narrowing loop [infer] uses. [None] means the guard
   contradicts the environment — that arm of an [Ite] is infeasible. *)
let refine_guard env c =
  let open Expr in
  let rec atoms acc = function
    | Binop (And, a, b) when width_of a = W1 -> atoms (atoms acc a) b
    | c -> c :: acc
  in
  let cs = atoms [] c in
  let env' = Hashtbl.copy env in
  match
    let changed = ref true and rounds = ref 0 in
    while !changed && !rounds < 4 do
      changed := false;
      incr rounds;
      List.iter (fun a -> if apply_constraint env' a then changed := true) cs
    done
  with
  | () -> Some env'
  | exception Exit -> None

let range_within env e = range_gen ~lookup ~refine:refine_guard env e

let infer constraints =
  let env : env = Hashtbl.create 16 in
  try
    let changed = ref true in
    let rounds = ref 0 in
    while !changed && !rounds < 8 do
      changed := false;
      incr rounds;
      List.iter
        (fun c -> if apply_constraint env c then changed := true)
        constraints
    done;
    (* Soundness check: any constraint whose range is exactly {0} is a
       definite contradiction. *)
    let contradicted c =
      let r = range_of (lookup env) c in
      r.lo = 0 && r.hi = 0
    in
    if List.exists contradicted constraints then None else Some env
  with Exit -> None

let candidates env vs =
  let pick f v =
    let r = lookup env v in
    f r
  in
  [ (fun v -> pick (fun r -> r.lo) v);
    (fun v -> pick (fun r -> r.hi) v);
    (fun v -> pick (fun r -> (r.lo + r.hi) / 2) v);
    (fun v -> pick (fun r -> if r.lo <= 1 && 1 <= r.hi then 1 else r.lo) v) ]
  |> List.map (fun f ->
         let tbl = Hashtbl.create 8 in
         List.iter (fun v -> Hashtbl.replace tbl v.Expr.id (f v)) vs;
         fun (v : Expr.var) ->
           match Hashtbl.find_opt tbl v.Expr.id with
           | Some x -> x
           | None -> 0)
