(** Counterexample-style query cache over canonicalized constraint sets
    (Klee's second query optimization).

    Keys are constraint sets canonicalized by {!canon} (sorted, deduped)
    and then {e normalized up to variable renaming}: variables are
    renumbered in first-occurrence order with names erased, so
    structurally identical queries from different states or workers share
    one entry; stored models are translated back through the rename.
    Beyond exact hits, the cache applies the two subset/superset rules of
    counterexample caching:

    - a cached {e Unsat} set that is a subset of the query (in original,
      un-renamed space — a renamed subset generally renumbers differently
      than the same subset inside a larger query) proves the query Unsat;
    - a cached {e Sat} model is re-checked against the renamed query by
      concrete evaluation — a cheap [Expr.eval] pass instead of a
      bit-blast — and reused on success.

    The store is bounded: when it exceeds its capacity the least recently
    used quarter is evicted. One plain cache instance is {e not}
    thread-safe; the process-wide shared instance is {!Sharded}. *)

type t

type outcome =
  | Exact_sat of (Expr.var -> int)
      (** same canonical set (up to renaming) seen before *)
  | Exact_unsat
  | Subset_unsat  (** a cached Unsat set is a subset of the query *)
  | Reuse_sat of (Expr.var -> int)
      (** a cached model satisfies the query (verified by evaluation);
          variables outside the model read as 0 *)
  | Miss

type info = {
  i_renamed : bool;
      (** the hit's stored original key differs from the query's — the
          entry came from a structurally identical but differently-named
          twin (only set for exact hits) *)
  i_owner : int;
      (** domain id that stored the winning entry or model; [-1] when
          unknown or on a miss *)
  i_persisted : bool;
      (** the winning entry was loaded from the on-disk store (a
          warm-start hit, not an in-process one) *)
}

val no_info : info

val create : ?capacity:int -> ?model_reuse:int -> unit -> t
(** [capacity] bounds the number of entries (default 4096);
    [model_reuse] bounds how many recent models are tried per lookup
    (default 12). *)

val canon : Expr.t list -> Expr.t list
(** Sort by {!Expr.compare} and drop duplicates — the canonical key. *)

val lookup : t -> Expr.t list -> outcome
val lookup_info : t -> Expr.t list -> outcome * info

val store_sat : t -> Expr.t list -> (Expr.var -> int) -> unit
(** Record a verified model for the set (restricted to its variables). *)

val store_unsat : t -> Expr.t list -> unit

val size : t -> int
val evictions : t -> int
val clear : t -> unit

(** {1 Persistence} *)

type verdict = V_sat of (Expr.var * int) list | V_unsat
(** A stored answer as plain data; [V_sat] pairs are in renamed space. *)

type pentry = {
  pe_key : Expr.t list;   (** renamed canonical key (process-independent) *)
  pe_orig : Expr.t list;  (** original-space key, feeds the subset index *)
  pe_verdict : verdict;
}
(** The process-independent projection of a cache entry, what the
    on-disk store holds. Contains no closures and no process-local ids. *)

val import_pentry : ?index_subsets:bool -> t -> pentry -> bool
(** Insert a persisted entry. Sat models are re-verified by evaluation
    against the stored key and malformed entries are refused — [false]
    means skipped (also returned when the key is already present). A
    loaded entry is flagged [e_persisted], so hits on it are reported
    via {!info.i_persisted}; it never joins the model-reuse list.

    [index_subsets] (default [true]) additionally indexes an Unsat core
    for the original-space subset rule. Pass [false] for entries minted
    by a {e different} process whose variable ids are not this process's
    (e.g. another distributed worker): the exact renamed hit is sound for
    any alpha-equivalent query, but original-space subset matching
    requires ids to denote the same quantities. *)

(** A process-wide cache shared by all worker domains: shard by the hash
    of the renamed canonical key, one mutex per shard, atomics for the
    statistics. Exact/renamed hits always land in the right shard (same
    renamed key, same shard); model reuse only consults the query's home
    shard. Subset-Unsat proofs are recovered cross-shard: a shared Bloom
    filter over the constraints of every stored Unsat core gates, on a
    home-shard miss, a probe of the remaining shards' subset indexes (one
    shard lock at a time — the locks are never widened). *)
module Sharded : sig
  type sharded

  val create :
    ?shards:int -> ?capacity:int -> ?model_reuse:int -> unit -> sharded
  (** [capacity] is the total bound, split evenly across [shards]
      (default 8 shards); [model_reuse] applies per shard. *)

  val lookup : sharded -> Expr.t list -> outcome * info
  val store_sat : sharded -> Expr.t list -> (Expr.var -> int) -> unit
  val store_unsat : sharded -> Expr.t list -> unit
  val size : sharded -> int
  val evictions : sharded -> int
  val clear : sharded -> unit
  val n_shards : sharded -> int

  type counts = {
    sc_lookups : int;
    sc_hits : int;
    sc_misses : int;
    sc_renamed_hits : int;
        (** exact hits whose stored original key differed from the query *)
    sc_cross_hits : int;
        (** hits on entries or models stored by a different domain *)
    sc_bloom_hits : int;
        (** subset-Unsat hits recovered from a non-home shard via the
            Bloom-gated cross-shard probe *)
  }

  val counts : sharded -> counts
  (** Always satisfies [sc_hits + sc_misses = sc_lookups]. *)

  val bloom_recoveries : sharded -> int

  (** {1 Warm start} *)

  val export_entries : sharded -> pentry list
  (** Every entry born in this process (already-persisted entries are
      skipped), for writing to the on-disk store. Order is unspecified
      — the store is content-addressed. *)

  val import_pentry : ?index_subsets:bool -> sharded -> pentry -> bool
  (** Shard-aware {!Qcache.import_pentry}; Unsat cores also join the
      cross-shard Bloom filter (unless [index_subsets:false], which
      skips both the subset index and the filter). *)

  (** {1 Checkpointing} *)

  type dump
  (** The complete cache state as marshal-safe data — entries, subset
      indexes, model-reuse lists in order, LRU ticks, Bloom bits and
      statistics — so a resumed run replays the killed run's lookup
      outcomes exactly. The dump aliases live tables: serialize it
      before any further solver activity. *)

  val dump : sharded -> dump

  val import : sharded -> dump -> bool
  (** Load a dump into a freshly created cache of the same geometry.
      [false] (nothing imported) on a shard/Bloom geometry mismatch;
      the caller proceeds cold. *)
end
