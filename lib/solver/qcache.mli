(** Counterexample-style query cache over canonicalized constraint sets
    (Klee's second query optimization).

    Keys are constraint sets canonicalized by {!canon} (sorted, deduped).
    Beyond exact hits, the cache applies the two subset/superset rules of
    counterexample caching:

    - a cached {e Unsat} set that is a subset of the query proves the
      query Unsat (adding constraints cannot restore satisfiability);
    - a cached {e Sat} model (for any earlier query, typically a subset)
      is re-checked against the query by concrete evaluation — a cheap
      [Expr.eval] pass instead of a bit-blast — and reused on success.

    The store is bounded: when it exceeds its capacity the least recently
    used quarter is evicted. One cache instance is {e not} thread-safe;
    {!Solver} keeps one per domain via [Domain.DLS]. *)

type t

type outcome =
  | Exact_sat of (Expr.var -> int)  (** same canonical set seen before *)
  | Exact_unsat
  | Subset_unsat  (** a cached Unsat set is a subset of the query *)
  | Reuse_sat of (Expr.var -> int)
      (** a cached model satisfies the query (verified by evaluation);
          variables outside the model read as 0 *)
  | Miss

val create : ?capacity:int -> ?model_reuse:int -> unit -> t
(** [capacity] bounds the number of entries (default 4096);
    [model_reuse] bounds how many recent models are tried per lookup
    (default 12). *)

val canon : Expr.t list -> Expr.t list
(** Sort by {!Expr.compare} and drop duplicates — the canonical key. *)

val lookup : t -> Expr.t list -> outcome

val store_sat : t -> Expr.t list -> (Expr.var -> int) -> unit
(** Record a verified model for the set (restricted to its variables). *)

val store_unsat : t -> Expr.t list -> unit

val size : t -> int
val evictions : t -> int
val clear : t -> unit
