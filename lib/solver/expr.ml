type width = W1 | W8 | W32

type var = { id : int; name : string; var_width : width }

type binop =
  | Add | Sub | Mul | Divu | Remu
  | And | Or | Xor
  | Shl | Lshr | Ashr

type cmpop = Eq | Ne | Ltu | Leu | Lts | Les

type t =
  | Const of width * int
  | Var of var
  | Binop of binop * t * t
  | Cmp of cmpop * t * t
  | Ite of t * t * t
  | Extract of t * int
  | Concat4 of t * t * t * t
  | Zext of t
  | Not of t

let bits_of_width = function W1 -> 1 | W8 -> 8 | W32 -> 32
let mask_of_width = function W1 -> 1 | W8 -> 0xFF | W32 -> 0xFFFFFFFF

let rec width_of = function
  | Const (w, _) -> w
  | Var v -> v.var_width
  | Binop (_, a, _) -> width_of a
  | Cmp _ -> W1
  | Ite (_, a, _) -> width_of a
  | Extract _ -> W8
  | Concat4 _ -> W32
  | Zext _ -> W32
  | Not _ -> W1

(* Atomic so independent sessions can run in parallel domains (the
   paper's §6.1 parallel-symbolic-execution direction). *)
let var_counter = Atomic.make 0

(* Lane-partitioned id allocation for multi-process exploration: with
   [lanes = L] and this process in lane [k] (0 <= k < L), minted ids are
   [n * L + k] — every process draws from a disjoint residue class, so
   ids stay globally unique across a coordinator and its workers even
   though each mints independently. Global uniqueness is what keeps the
   query cache's original-space subset-Unsat rule sound when states and
   persisted entries cross process boundaries: an id can never alias two
   different quantities. The default geometry [lanes = 1, lane = 0]
   reproduces the historical dense sequence exactly. *)
let var_lane = Atomic.make 0
let var_lanes = Atomic.make 1

let fresh_var ?(name = "v") w =
  let n = Atomic.fetch_and_add var_counter 1 + 1 in
  { id = (n * Atomic.get var_lanes) + Atomic.get var_lane; name;
    var_width = w }

let reset_var_counter () = Atomic.set var_counter 0

let set_var_lane ~lane ~lanes =
  let lanes = max 1 lanes in
  Atomic.set var_lanes lanes;
  Atomic.set var_lane (max 0 (min lane (lanes - 1)))

let var_lane () = Atomic.get var_lane

(* Checkpoint/restore of the allocator position: a resumed run must mint
   fresh variables from exactly where the killed run stopped, or restored
   states' inputs would collide with newly created ones. Note this is the
   raw draw counter (the [n] above), not an id. *)
let var_counter_value () = Atomic.get var_counter
let set_var_counter n = Atomic.set var_counter (max 0 n)

(* Canonical variables for cache normalization: ids live in a small dense
   namespace separate from [fresh_var]'s counter, names are erased (the
   name participates in structural equality, so two renamings agree only
   if both normalize it). Expressions built from these must never leak
   into engine state — they exist to key and store cache entries. *)
let canon_var id w = { id; name = ""; var_width = w }

let const w v = Const (w, v land mask_of_width w)
let word v = const W32 v
let byte v = const W8 v
let tru = Const (W1, 1)
let fls = Const (W1, 0)
let var v = Var v

let to_signed w v =
  let bits = bits_of_width w in
  let sign_bit = 1 lsl (bits - 1) in
  if v land sign_bit <> 0 then v - (1 lsl bits) else v

let eval_binop op w a b =
  let mask = mask_of_width w in
  let bits = bits_of_width w in
  let r =
    match op with
    | Add -> a + b
    | Sub -> a - b
    | Mul -> a * b
    | Divu -> if b = 0 then mask else a / b
    | Remu -> if b = 0 then a else a mod b
    | And -> a land b
    | Or -> a lor b
    | Xor -> a lxor b
    | Shl -> a lsl (b land (bits - 1))
    | Lshr -> a lsr (b land (bits - 1))
    | Ashr -> to_signed w a asr (b land (bits - 1))
  in
  r land mask

let eval_cmp op w a b =
  let sa = to_signed w a and sb = to_signed w b in
  let holds =
    match op with
    | Eq -> a = b
    | Ne -> a <> b
    | Ltu -> a < b
    | Leu -> a <= b
    | Lts -> sa < sb
    | Les -> sa <= sb
  in
  if holds then 1 else 0

let is_const = function Const _ -> true | _ -> false
let to_const = function Const (_, v) -> Some v | _ -> None

(* Structural equality: expressions contain only immediate data, so the
   polymorphic comparison is exact. *)
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let binop op a b =
  let w = width_of a in
  match a, b, op with
  | Const (_, x), Const (_, y), _ -> const w (eval_binop op w x y)
  | x, Const (_, 0), (Add | Sub | Or | Xor | Shl | Lshr | Ashr) -> x
  | Const (_, 0), x, (Add | Or | Xor) -> x
  | _, Const (_, 0), (Mul | And) -> const w 0
  | Const (_, 0), _, (Mul | And | Divu | Remu | Shl | Lshr | Ashr) -> const w 0
  | x, Const (_, 1), (Mul | Divu) -> x
  | Const (_, 1), x, Mul -> x
  | x, Const (_, m), And when m = mask_of_width w -> x
  | Const (_, m), x, And when m = mask_of_width w -> x
  | _, Const (_, m), Or when m = mask_of_width w -> const w m
  | x, y, (And | Or) when equal x y -> x
  | x, y, (Xor | Sub) when equal x y -> const w 0
  | x, y, Remu when equal x y -> const w 0
  | _ -> Binop (op, a, b)

let cmp op a b =
  let w = width_of a in
  match a, b with
  | Const (_, x), Const (_, y) -> Const (W1, eval_cmp op w x y)
  | x, y when equal x y -> (
      match op with
      | Eq | Leu | Les -> tru
      | Ne | Ltu | Lts -> fls)
  | _ -> Cmp (op, a, b)

let not_ e =
  match e with
  | Const (W1, v) -> Const (W1, 1 - v)
  | Not x -> x
  | Cmp (Eq, a, b) -> cmp Ne a b
  | Cmp (Ne, a, b) -> cmp Eq a b
  | Cmp (Ltu, a, b) -> cmp Leu b a
  | Cmp (Leu, a, b) -> cmp Ltu b a
  | Cmp (Lts, a, b) -> cmp Les b a
  | Cmp (Les, a, b) -> cmp Lts b a
  | _ -> Not e

let ite c a b =
  match c with
  | Const (W1, 1) -> a
  | Const (W1, 0) -> b
  | _ -> if equal a b then a else Ite (c, a, b)

let zext e =
  match e with
  | Const (W1, v) | Const (W8, v) -> Const (W32, v)
  | _ when width_of e = W32 -> e
  | _ -> Zext e

let extract e i =
  assert (i >= 0 && i < 4);
  match e with
  | Const (_, v) -> byte ((v lsr (8 * i)) land 0xFF)
  | Concat4 (b3, b2, b1, b0) -> [| b0; b1; b2; b3 |].(i)
  | Zext inner when width_of inner = W8 ->
      if i = 0 then inner else byte 0
  | Zext inner when width_of inner = W1 ->
      if i = 0 then Ite (inner, byte 1, byte 0) else byte 0
  | _ -> Extract (e, i)

let concat4 b3 b2 b1 b0 =
  match b3, b2, b1, b0 with
  | Const (_, v3), Const (_, v2), Const (_, v1), Const (_, v0) ->
      word ((v3 lsl 24) lor (v2 lsl 16) lor (v1 lsl 8) lor v0)
  | Extract (e3, 3), Extract (e2, 2), Extract (e1, 1), Extract (e0, 0)
    when equal e3 e2 && equal e2 e1 && equal e1 e0 ->
      e0
  | _ -> Concat4 (b3, b2, b1, b0)

let and1 a b =
  match a, b with
  | Const (W1, 0), _ | _, Const (W1, 0) -> fls
  | Const (W1, 1), x | x, Const (W1, 1) -> x
  | x, y when equal x y -> x
  | _ -> Binop (And, a, b)

let or1 a b =
  match a, b with
  | Const (W1, 1), _ | _, Const (W1, 1) -> tru
  | Const (W1, 0), x | x, Const (W1, 0) -> x
  | x, y when equal x y -> x
  | _ -> Binop (Or, a, b)

let rec eval env e =
  match e with
  | Const (_, v) -> v
  | Var v -> env v land mask_of_width v.var_width
  | Binop (op, a, b) -> eval_binop op (width_of a) (eval env a) (eval env b)
  | Cmp (op, a, b) -> eval_cmp op (width_of a) (eval env a) (eval env b)
  | Ite (c, a, b) -> if eval env c = 1 then eval env a else eval env b
  | Extract (x, i) -> (eval env x lsr (8 * i)) land 0xFF
  | Concat4 (b3, b2, b1, b0) ->
      (eval env b3 lsl 24) lor (eval env b2 lsl 16)
      lor (eval env b1 lsl 8) lor eval env b0
  | Zext x -> eval env x
  | Not x -> 1 - eval env x

let vars e =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec go = function
    | Const _ -> ()
    | Var v ->
        if not (Hashtbl.mem seen v.id) then begin
          Hashtbl.add seen v.id ();
          acc := v :: !acc
        end
    | Binop (_, a, b) | Cmp (_, a, b) -> go a; go b
    | Ite (c, a, b) -> go c; go a; go b
    | Extract (x, _) | Zext x | Not x -> go x
    | Concat4 (b3, b2, b1, b0) -> go b3; go b2; go b1; go b0
  in
  go e;
  List.sort (fun a b -> Stdlib.compare a.id b.id) !acc

let rec size = function
  | Const _ | Var _ -> 1
  | Binop (_, a, b) | Cmp (_, a, b) -> 1 + size a + size b
  | Ite (c, a, b) -> 1 + size c + size a + size b
  | Extract (x, _) | Zext x | Not x -> 1 + size x
  | Concat4 (b3, b2, b1, b0) -> 1 + size b3 + size b2 + size b1 + size b0

let string_of_binop = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Divu -> "/u" | Remu -> "%u"
  | And -> "&" | Or -> "|" | Xor -> "^"
  | Shl -> "<<" | Lshr -> ">>u" | Ashr -> ">>s"

let string_of_cmpop = function
  | Eq -> "==" | Ne -> "!=" | Ltu -> "<u" | Leu -> "<=u"
  | Lts -> "<s" | Les -> "<=s"

let pp_var fmt v = Format.fprintf fmt "%s#%d" v.name v.id

let rec pp fmt = function
  | Const (W1, v) -> Format.fprintf fmt "%db1" v
  | Const (W8, v) -> Format.fprintf fmt "0x%02x" v
  | Const (W32, v) -> Format.fprintf fmt "0x%x" v
  | Var v -> pp_var fmt v
  | Binop (op, a, b) ->
      Format.fprintf fmt "(%a %s %a)" pp a (string_of_binop op) pp b
  | Cmp (op, a, b) ->
      Format.fprintf fmt "(%a %s %a)" pp a (string_of_cmpop op) pp b
  | Ite (c, a, b) -> Format.fprintf fmt "(if %a then %a else %a)" pp c pp a pp b
  | Extract (x, i) -> Format.fprintf fmt "%a[%d]" pp x i
  | Concat4 (b3, b2, b1, b0) ->
      Format.fprintf fmt "{%a,%a,%a,%a}" pp b3 pp b2 pp b1 pp b0
  | Zext x -> Format.fprintf fmt "zext(%a)" pp x
  | Not x -> Format.fprintf fmt "!%a" pp x

let to_string e = Format.asprintf "%a" pp e
