type t = {
  mutable next_var : int;
  mutable cls : int array list;
  mutable n_clauses : int;
}

let lit_true = 1
let lit_false = -1

let add_clause t lits =
  t.cls <- Array.of_list lits :: t.cls;
  t.n_clauses <- t.n_clauses + 1

let create () =
  let t = { next_var = 1; cls = []; n_clauses = 0 } in
  add_clause t [ lit_true ];
  t

let fresh t =
  t.next_var <- t.next_var + 1;
  t.next_var

let num_vars t = t.next_var
let clauses t = List.rev t.cls
let clause_count t = t.n_clauses

(* [cls] is newest-first, so the clauses added after a [clause_count]
   snapshot are exactly its first [n_clauses - mark] cells. Used by the
   incremental session to drain freshly blasted clauses into its
   persistent solver without rescanning the whole formula. *)
let clauses_since t mark =
  let rec grab n acc cls =
    if n <= 0 then acc
    else
      match cls with
      | [] -> acc
      | c :: rest -> grab (n - 1) (c :: acc) rest
  in
  grab (t.n_clauses - mark) [] t.cls

let g_and t a b =
  if a = lit_false || b = lit_false then lit_false
  else if a = lit_true then b
  else if b = lit_true then a
  else if a = b then a
  else if a = -b then lit_false
  else begin
    let o = fresh t in
    add_clause t [ -o; a ];
    add_clause t [ -o; b ];
    add_clause t [ o; -a; -b ];
    o
  end

let g_or t a b = -g_and t (-a) (-b)

let g_xor t a b =
  if a = lit_false then b
  else if b = lit_false then a
  else if a = lit_true then -b
  else if b = lit_true then -a
  else if a = b then lit_false
  else if a = -b then lit_true
  else begin
    let o = fresh t in
    add_clause t [ -o; a; b ];
    add_clause t [ -o; -a; -b ];
    add_clause t [ o; -a; b ];
    add_clause t [ o; a; -b ];
    o
  end

let g_and_list t = List.fold_left (g_and t) lit_true
let g_or_list t = List.fold_left (g_or t) lit_false

let g_ite t c a b =
  if c = lit_true then a
  else if c = lit_false then b
  else if a = b then a
  else begin
    let o = fresh t in
    add_clause t [ -o; -c; a ];
    add_clause t [ -o; c; b ];
    add_clause t [ o; -c; -a ];
    add_clause t [ o; c; -b ];
    o
  end

let g_maj t a b c =
  let ab = g_and t a b in
  let ac = g_and t a c in
  let bc = g_and t b c in
  g_or t ab (g_or t ac bc)

let assert_lit t l = add_clause t [ l ]
let assert_implies t a b = add_clause t [ -a; b ]

let assert_eq t a b =
  add_clause t [ -a; b ];
  add_clause t [ a; -b ]
