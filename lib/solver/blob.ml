(* Checksummed binary containers for everything the durability layer
   puts on disk: state snapshots, session checkpoints, persistent query
   cache entries.

   The format is deliberately dumb — magic, format version, payload
   length, CRC-32, Marshal payload — because the safety property lives
   in the reader, not the writer: any truncation, bit-rot, version skew
   or malicious edit must surface as [Error _], never as an exception or
   (worse) a silently wrong value. Writers go through a tmp file and an
   atomic [rename], so a crash mid-write leaves either the old file or
   no file, never a torn one. *)

let magic = "DDTB"
let format_version = 1

(* Header layout (16 bytes, little-endian):
     0..3   magic "DDTB"
     4..7   format version
     8..11  payload length
     12..15 CRC-32 of the payload *)
let header_len = 16

(* Table-driven CRC-32 (IEEE 802.3 polynomial, reflected). Hand-rolled:
   the container must not depend on zlib being present. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch ->
      c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF

let put_u32 b off v =
  Bytes.set_uint8 b off (v land 0xFF);
  Bytes.set_uint8 b (off + 1) ((v lsr 8) land 0xFF);
  Bytes.set_uint8 b (off + 2) ((v lsr 16) land 0xFF);
  Bytes.set_uint8 b (off + 3) ((v lsr 24) land 0xFF)

let get_u32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

(* Chaos hook: when set, the next [count] payload writes raise ENOSPC
   after the tmp file is created — the disk-full injection the chaos
   harness uses to prove a full disk only costs durability, never
   correctness. *)
let chaos_enospc = Atomic.make 0

let set_chaos_enospc n = Atomic.set chaos_enospc (max 0 n)

let chaos_should_fail () =
  let rec claim () =
    let n = Atomic.get chaos_enospc in
    if n <= 0 then false
    else if Atomic.compare_and_set chaos_enospc n (n - 1) then true
    else claim ()
  in
  claim ()

let encode ?(closures = false) v =
  let flags = if closures then [ Marshal.Closures ] else [] in
  let payload = Marshal.to_string v flags in
  let hdr = Bytes.create header_len in
  Bytes.blit_string magic 0 hdr 0 4;
  put_u32 hdr 4 format_version;
  put_u32 hdr 8 (String.length payload);
  put_u32 hdr 12 (crc32 payload);
  Bytes.to_string hdr ^ payload

let decode s =
  let fail msg = Error msg in
  if String.length s < header_len then fail "short header"
  else if String.sub s 0 4 <> magic then fail "bad magic"
  else
    let ver = get_u32 s 4 in
    if ver <> format_version then
      fail (Printf.sprintf "format version %d (want %d)" ver format_version)
    else
      let len = get_u32 s 8 in
      if len < 0 || String.length s - header_len <> len then
        fail "truncated payload"
      else
        let payload = String.sub s header_len len in
        let crc = get_u32 s 12 in
        if crc32 payload <> crc then fail "CRC mismatch"
        else
          (* CRC passed but the payload could still be a forged or
             version-skewed Marshal image; absorb every decode failure
             (including Marshal's own code-checksum check for closure
             blobs from a different binary). *)
          match Marshal.from_string payload 0 with
          | v -> Ok v
          | exception _ -> fail "undecodable payload"

(* Unique tmp names: two processes (or domains) writing the same target
   concurrently must never share a tmp file, or interleaved writes could
   get renamed into place as a torn blob. The rename itself stays atomic;
   concurrent writers of identical content converge by last-writer-wins. *)
let tmp_seq = Atomic.make 0

let write_file path v =
  let tmp =
    Printf.sprintf "%s.%d.%d.tmp" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_seq 1)
  in
  match
    let data = encode v in
    let oc =
      open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644
        tmp
    in
    (try
       if chaos_should_fail () then begin
         close_out_noerr oc;
         raise (Sys_error (tmp ^ ": No space left on device (chaos)"))
       end;
       output_string oc data;
       close_out oc
     with e ->
       close_out_noerr oc;
       (try Sys.remove tmp with _ -> ());
       raise e);
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception e ->
      (try Sys.remove tmp with _ -> ());
      Error (Printexc.to_string e)

let read_file path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | s -> decode s
  | exception e -> Error (Printexc.to_string e)
