(** Checksummed binary containers for on-disk durability artifacts.

    Every file the durability layer writes — state snapshots, session
    checkpoints, persistent cache entries — is a [Blob]: a small header
    (magic, format version, payload length, CRC-32) followed by a
    [Marshal] payload, written via tmp file + atomic rename. The reader
    is total: truncation, corruption, version skew and unreadable files
    all come back as [Error _], never exceptions. *)

val format_version : int

val crc32 : string -> int
(** IEEE CRC-32 of a string (table-driven; no external dependency). *)

val encode : ?closures:bool -> 'a -> string
(** Marshal [v] and frame it with the header. [closures] additionally
    permits function values; such blobs are only readable by the exact
    same binary (Marshal's code checksum enforces this at [decode]). *)

val decode : string -> ('a, string) result
(** Inverse of {!encode}. Any malformed input yields [Error reason]. *)

val write_file : string -> 'a -> (unit, string) result
(** [write_file path v] encodes [v] and writes it atomically (tmp +
    rename). On any failure — including injected disk-full — the tmp
    file is removed and the previous [path] contents, if any, are left
    intact. *)

val read_file : string -> ('a, string) result
(** Read and {!decode} a blob file. Missing or unreadable files are
    [Error _]. The ['a] is trusted to match the writer's type, as with
    [Marshal]; wrap per-format sanity checks around the result. *)

val set_chaos_enospc : int -> unit
(** Chaos injection: make the next [n] {!write_file} calls fail as if
    the disk were full (after creating the tmp file). 0 disables. *)
