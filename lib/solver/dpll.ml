type result =
  | Sat of bool array
  | Unsat

(* Literal encoding for watch lists: literal l -> index (2*|l| + (l<0)). *)
let widx l = (2 * abs l) + (if l < 0 then 1 else 0)

type state = {
  nvars : int; (* kept for debugging dumps *)
  clauses : int array array;
  watches : int list array;        (* widx literal -> clause indices *)
  assign : int array;              (* 0 unassigned / 1 true / -1 false *)
  level : int array;               (* decision level of assignment *)
  trail : int array;               (* assigned literals in order *)
  mutable trail_len : int;
  trail_lim : int array;           (* trail length at each decision level *)
  mutable decision_level : int;
  order : int array;               (* variables in static decision order *)
  flipped : bool array;            (* per level: second branch already tried *)
}

let value st l =
  let v = st.assign.(abs l) in
  if v = 0 then 0 else if l > 0 then v else -v

let enqueue st l =
  st.assign.(abs l) <- (if l > 0 then 1 else -1);
  st.level.(abs l) <- st.decision_level;
  st.trail.(st.trail_len) <- l;
  st.trail_len <- st.trail_len + 1

(* Propagate from trail position [from]; returns false on conflict. *)
let propagate st from =
  let qhead = ref from in
  let ok = ref true in
  while !ok && !qhead < st.trail_len do
    let l = st.trail.(!qhead) in
    incr qhead;
    (* Clauses watching -l must find a new watch or propagate/conflict. *)
    let w = widx (-l) in
    let old_watch = st.watches.(w) in
    st.watches.(w) <- [];
    let rec process = function
      | [] -> ()
      | ci :: rest -> (
          let c = st.clauses.(ci) in
          (* Ensure the false literal is at position 1. *)
          if c.(0) = -l then begin
            c.(0) <- c.(1);
            c.(1) <- -l
          end;
          if value st c.(0) = 1 then begin
            (* Clause satisfied; keep watching. *)
            st.watches.(w) <- ci :: st.watches.(w);
            process rest
          end
          else
            (* Look for a new literal to watch. *)
            let n = Array.length c in
            let rec find i =
              if i >= n then None
              else if value st c.(i) <> -1 then Some i
              else find (i + 1)
            in
            match find 2 with
            | Some i ->
                c.(1) <- c.(i);
                c.(i) <- -l;
                st.watches.(widx c.(1)) <- ci :: st.watches.(widx c.(1));
                process rest
            | None ->
                st.watches.(w) <- ci :: st.watches.(w);
                if value st c.(0) = -1 then begin
                  (* Conflict: restore remaining watches and stop. *)
                  st.watches.(w) <- List.rev_append rest st.watches.(w);
                  ok := false
                end
                else begin
                  enqueue st c.(0);
                  process rest
                end)
    in
    process old_watch
  done;
  !ok

(* Erase the assignments of level [lvl] and everything above it, leaving
   the solver at level [lvl - 1]. *)
let erase_from_level st lvl =
  let keep = st.trail_lim.(lvl) in
  for i = keep to st.trail_len - 1 do
    st.assign.(abs st.trail.(i)) <- 0
  done;
  st.trail_len <- keep;
  st.decision_level <- lvl - 1

let solve ?(max_conflicts = 2_000_000) ?deadline cnf =
  let nvars = Cnf.num_vars cnf in
  let cls = Cnf.clauses cnf in
  (* Separate unit clauses; dedupe literals inside clauses; drop tautologies. *)
  let units = ref [] in
  let big = ref [] in
  let tautology c =
    Array.exists (fun l -> Array.exists (fun l' -> l' = -l) c) c
  in
  List.iter
    (fun c ->
      let c = Array.of_list (List.sort_uniq compare (Array.to_list c)) in
      if not (tautology c) then
        match Array.length c with
        | 0 -> big := [| 0 |] :: !big (* empty clause: unsat marker *)
        | 1 -> units := c.(0) :: !units
        | _ -> big := c :: !big)
    cls;
  if List.exists (fun c -> Array.length c = 1 && c.(0) = 0) !big then Some Unsat
  else begin
    let clauses = Array.of_list !big in
    let st =
      {
        nvars;
        clauses;
        watches = Array.make (2 * (nvars + 2)) [];
        assign = Array.make (nvars + 1) 0;
        level = Array.make (nvars + 1) 0;
        trail = Array.make (nvars + 1) 0;
        trail_len = 0;
        trail_lim = Array.make (nvars + 2) 0;
        decision_level = 0;
        order = Array.make nvars 0;
        flipped = Array.make (nvars + 2) false;
      }
    in
    Array.iteri
      (fun ci c ->
        st.watches.(widx c.(0)) <- ci :: st.watches.(widx c.(0));
        if Array.length c > 1 then
          st.watches.(widx c.(1)) <- ci :: st.watches.(widx c.(1)))
      clauses;
    (* Static decision order: most frequently occurring variables first. *)
    let occ = Array.make (nvars + 1) 0 in
    Array.iter
      (fun c -> Array.iter (fun l -> occ.(abs l) <- occ.(abs l) + 1) c)
      clauses;
    let vars = Array.init nvars (fun i -> i + 1) in
    Array.sort (fun a b -> compare occ.(b) occ.(a)) vars;
    Array.blit vars 0 st.order 0 nvars;
    let conflict_budget = ref max_conflicts in
    let exception Answer of result option in
    try
      (* Assert unit clauses at level 0. *)
      List.iter
        (fun l ->
          match value st l with
          | 1 -> ()
          | -1 -> raise (Answer (Some Unsat))
          | _ -> enqueue st l)
        (List.sort_uniq compare !units);
      if not (propagate st 0) then raise (Answer (Some Unsat));
      let next_unassigned () =
        let n = Array.length st.order in
        let rec go i =
          if i >= n then None
          else if st.assign.(st.order.(i)) = 0 then Some st.order.(i)
          else go (i + 1)
        in
        go 0
      in
      let rec search () =
        match next_unassigned () with
        | None ->
            let model = Array.make (nvars + 1) false in
            for v = 1 to nvars do
              model.(v) <- st.assign.(v) = 1
            done;
            raise (Answer (Some (Sat model)))
        | Some v ->
            st.decision_level <- st.decision_level + 1;
            st.trail_lim.(st.decision_level) <- st.trail_len;
            st.flipped.(st.decision_level) <- false;
            enqueue st v;
            propagate_or_backtrack ()
      and propagate_or_backtrack () =
        let from = st.trail_lim.(st.decision_level) in
        if propagate st from then search ()
        else begin
          decr conflict_budget;
          if !conflict_budget <= 0 then raise (Answer None);
          (* The wall-clock deadline is polled every 256 conflicts: often
             enough to bound a stalled query to milliseconds past its
             budget, rarely enough that gettimeofday stays off the hot
             propagation path. *)
          (match deadline with
          | Some t when !conflict_budget land 255 = 0 ->
              if Unix.gettimeofday () > t then raise (Answer None)
          | _ -> ());
          resolve_conflict ()
        end
      and resolve_conflict () =
        (* Find the deepest level whose second branch is untried. *)
        let rec unwind () =
          if st.decision_level = 0 then raise (Answer (Some Unsat))
          else if st.flipped.(st.decision_level) then begin
            erase_from_level st st.decision_level;
            unwind ()
          end
          else begin
            let lvl = st.decision_level in
            let decision = st.trail.(st.trail_lim.(lvl)) in
            erase_from_level st lvl;
            st.decision_level <- lvl;
            st.trail_lim.(lvl) <- st.trail_len;
            st.flipped.(lvl) <- true;
            enqueue st (-decision);
            propagate_or_backtrack ()
          end
        in
        unwind ()
      in
      search ()
    with Answer r -> r
  end
