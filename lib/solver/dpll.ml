type result =
  | Sat of bool array
  | Unsat

(* Literal encoding for watch lists: literal l -> index (2*|l| + (l<0)). *)
let widx l = (2 * abs l) + (if l < 0 then 1 else 0)

type state = {
  nvars : int; (* kept for debugging dumps *)
  clauses : int array array;
  watches : int list array;        (* widx literal -> clause indices *)
  assign : int array;              (* 0 unassigned / 1 true / -1 false *)
  level : int array;               (* decision level of assignment *)
  trail : int array;               (* assigned literals in order *)
  mutable trail_len : int;
  trail_lim : int array;           (* trail length at each decision level *)
  mutable decision_level : int;
  order : int array;               (* variables in static decision order *)
  flipped : bool array;            (* per level: second branch already tried *)
}

let value st l =
  let v = st.assign.(abs l) in
  if v = 0 then 0 else if l > 0 then v else -v

let enqueue st l =
  st.assign.(abs l) <- (if l > 0 then 1 else -1);
  st.level.(abs l) <- st.decision_level;
  st.trail.(st.trail_len) <- l;
  st.trail_len <- st.trail_len + 1

(* Propagate from trail position [from]; returns false on conflict. *)
let propagate st from =
  let qhead = ref from in
  let ok = ref true in
  while !ok && !qhead < st.trail_len do
    let l = st.trail.(!qhead) in
    incr qhead;
    (* Clauses watching -l must find a new watch or propagate/conflict. *)
    let w = widx (-l) in
    let old_watch = st.watches.(w) in
    st.watches.(w) <- [];
    let rec process = function
      | [] -> ()
      | ci :: rest -> (
          let c = st.clauses.(ci) in
          (* Ensure the false literal is at position 1. *)
          if c.(0) = -l then begin
            c.(0) <- c.(1);
            c.(1) <- -l
          end;
          if value st c.(0) = 1 then begin
            (* Clause satisfied; keep watching. *)
            st.watches.(w) <- ci :: st.watches.(w);
            process rest
          end
          else
            (* Look for a new literal to watch. *)
            let n = Array.length c in
            let rec find i =
              if i >= n then None
              else if value st c.(i) <> -1 then Some i
              else find (i + 1)
            in
            match find 2 with
            | Some i ->
                c.(1) <- c.(i);
                c.(i) <- -l;
                st.watches.(widx c.(1)) <- ci :: st.watches.(widx c.(1));
                process rest
            | None ->
                st.watches.(w) <- ci :: st.watches.(w);
                if value st c.(0) = -1 then begin
                  (* Conflict: restore remaining watches and stop. *)
                  st.watches.(w) <- List.rev_append rest st.watches.(w);
                  ok := false
                end
                else begin
                  enqueue st c.(0);
                  process rest
                end)
    in
    process old_watch
  done;
  !ok

(* Erase the assignments of level [lvl] and everything above it, leaving
   the solver at level [lvl - 1]. *)
let erase_from_level st lvl =
  let keep = st.trail_lim.(lvl) in
  for i = keep to st.trail_len - 1 do
    st.assign.(abs st.trail.(i)) <- 0
  done;
  st.trail_len <- keep;
  st.decision_level <- lvl - 1

let solve ?(max_conflicts = 2_000_000) ?deadline cnf =
  let nvars = Cnf.num_vars cnf in
  let cls = Cnf.clauses cnf in
  (* Separate unit clauses; dedupe literals inside clauses; drop tautologies. *)
  let units = ref [] in
  let big = ref [] in
  let tautology c =
    Array.exists (fun l -> Array.exists (fun l' -> l' = -l) c) c
  in
  List.iter
    (fun c ->
      let c = Array.of_list (List.sort_uniq compare (Array.to_list c)) in
      if not (tautology c) then
        match Array.length c with
        | 0 -> big := [| 0 |] :: !big (* empty clause: unsat marker *)
        | 1 -> units := c.(0) :: !units
        | _ -> big := c :: !big)
    cls;
  if List.exists (fun c -> Array.length c = 1 && c.(0) = 0) !big then Some Unsat
  else begin
    let clauses = Array.of_list !big in
    let st =
      {
        nvars;
        clauses;
        watches = Array.make (2 * (nvars + 2)) [];
        assign = Array.make (nvars + 1) 0;
        level = Array.make (nvars + 1) 0;
        trail = Array.make (nvars + 1) 0;
        trail_len = 0;
        trail_lim = Array.make (nvars + 2) 0;
        decision_level = 0;
        order = Array.make nvars 0;
        flipped = Array.make (nvars + 2) false;
      }
    in
    Array.iteri
      (fun ci c ->
        st.watches.(widx c.(0)) <- ci :: st.watches.(widx c.(0));
        if Array.length c > 1 then
          st.watches.(widx c.(1)) <- ci :: st.watches.(widx c.(1)))
      clauses;
    (* Static decision order: most frequently occurring variables first. *)
    let occ = Array.make (nvars + 1) 0 in
    Array.iter
      (fun c -> Array.iter (fun l -> occ.(abs l) <- occ.(abs l) + 1) c)
      clauses;
    let vars = Array.init nvars (fun i -> i + 1) in
    Array.sort (fun a b -> compare occ.(b) occ.(a)) vars;
    Array.blit vars 0 st.order 0 nvars;
    let conflict_budget = ref max_conflicts in
    let exception Answer of result option in
    try
      (* Assert unit clauses at level 0. *)
      List.iter
        (fun l ->
          match value st l with
          | 1 -> ()
          | -1 -> raise (Answer (Some Unsat))
          | _ -> enqueue st l)
        (List.sort_uniq compare !units);
      if not (propagate st 0) then raise (Answer (Some Unsat));
      let next_unassigned () =
        let n = Array.length st.order in
        let rec go i =
          if i >= n then None
          else if st.assign.(st.order.(i)) = 0 then Some st.order.(i)
          else go (i + 1)
        in
        go 0
      in
      let rec search () =
        match next_unassigned () with
        | None ->
            let model = Array.make (nvars + 1) false in
            for v = 1 to nvars do
              model.(v) <- st.assign.(v) = 1
            done;
            raise (Answer (Some (Sat model)))
        | Some v ->
            st.decision_level <- st.decision_level + 1;
            st.trail_lim.(st.decision_level) <- st.trail_len;
            st.flipped.(st.decision_level) <- false;
            enqueue st v;
            propagate_or_backtrack ()
      and propagate_or_backtrack () =
        let from = st.trail_lim.(st.decision_level) in
        if propagate st from then search ()
        else begin
          decr conflict_budget;
          if !conflict_budget <= 0 then raise (Answer None);
          (* The wall-clock deadline is polled every 256 conflicts: often
             enough to bound a stalled query to milliseconds past its
             budget, rarely enough that gettimeofday stays off the hot
             propagation path. *)
          (match deadline with
          | Some t when !conflict_budget land 255 = 0 ->
              if Unix.gettimeofday () > t then raise (Answer None)
          | _ -> ());
          resolve_conflict ()
        end
      and resolve_conflict () =
        (* Find the deepest level whose second branch is untried. *)
        let rec unwind () =
          if st.decision_level = 0 then raise (Answer (Some Unsat))
          else if st.flipped.(st.decision_level) then begin
            erase_from_level st st.decision_level;
            unwind ()
          end
          else begin
            let lvl = st.decision_level in
            let decision = st.trail.(st.trail_lim.(lvl)) in
            erase_from_level st lvl;
            st.decision_level <- lvl;
            st.trail_lim.(lvl) <- st.trail_len;
            st.flipped.(lvl) <- true;
            enqueue st (-decision);
            propagate_or_backtrack ()
          end
        in
        unwind ()
      in
      search ()
    with Answer r -> r
  end

(* --- incremental solving under assumptions ------------------------------- *)
(* A persistent solver whose clause database, watch lists and learned
   clauses survive across queries. Each [solve] restarts the trail from
   scratch (re-propagating level-0 units), which keeps the watch
   invariants trivially correct while still reusing everything that is
   expensive to rebuild: the integrated clause arrays, the occurrence
   counts behind the decision order, and the clauses learned by earlier
   queries. Assumptions are enqueued as unflippable decision levels, so
   Unsat means "unsat under these assumptions" — the activation-literal
   interface the session layer drives: asserting a path-condition frame
   as [sel => frame] and assuming [sel] (or [-sel] after a pop) turns
   push/pop into pure assumption changes.

   Learning is decision-negation: at a conflict under decisions
   D = {assumptions, flippable decisions}, the clause "not all of D" is
   implied by the database (propagation from D alone derived the
   conflict), so it may be retained forever. Because the negated
   assumption literals appear in the clause, a learned clause derived
   from a frame's selector is automatically disabled — not discarded —
   once that selector is no longer assumed. Learned clauses are queued
   and integrated at the start of the NEXT solve, when no assignments
   exist, so watch initialization is trivially sound. *)

module Inc = struct
  type t = {
    mutable nvars : int;               (* highest variable id provisioned *)
    mutable clauses : int array array; (* dynarray of integrated clauses *)
    mutable n_clauses : int;
    mutable watches : int list array;
    mutable assign : int array;
    mutable trail : int array;
    mutable trail_len : int;
    mutable trail_lim : int array;
    mutable decision_level : int;
    mutable flipped : bool array;
    mutable is_assump : bool array;    (* per level: assumption level *)
    mutable occ : int array;
    mutable order : int array;         (* static decision order *)
    mutable order_dirty : bool;
    mutable units : int list;          (* level-0 unit clauses *)
    mutable unsat0 : bool;             (* permanently unsat (no assumptions) *)
    mutable pending : int array list;  (* clauses awaiting integration *)
    mutable n_learned : int;           (* learned clauses in the database *)
    mutable learn_queue : int array list; (* learned this solve, not integrated *)
  }

  let learned_cap = 4096
  let learn_len_cap = 64

  let create () =
    {
      nvars = 1;
      clauses = Array.make 64 [||];
      n_clauses = 0;
      watches = Array.make 16 [];
      assign = Array.make 8 0;
      trail = Array.make 8 0;
      trail_len = 0;
      trail_lim = Array.make 16 0;
      decision_level = 0;
      flipped = Array.make 16 false;
      is_assump = Array.make 16 false;
      occ = Array.make 8 0;
      order = [||];
      order_dirty = true;
      units = [ Cnf.lit_true ];      (* mirror Cnf's reserved TRUE var *)
      unsat0 = false;
      pending = [];
      n_learned = 0;
      learn_queue = [];
    }

  let grow_int a n def =
    if Array.length a >= n then a
    else begin
      let b = Array.make (max n (2 * Array.length a)) def in
      Array.blit a 0 b 0 (Array.length a);
      b
    end

  let grow_watches t n =
    if Array.length t.watches < n then begin
      let b = Array.make (max n (2 * Array.length t.watches)) [] in
      Array.blit t.watches 0 b 0 (Array.length t.watches);
      t.watches <- b
    end

  let grow_bool a n =
    if Array.length a >= n then a
    else begin
      let b = Array.make (max n (2 * Array.length a)) false in
      Array.blit a 0 b 0 (Array.length a);
      b
    end

  let ensure_var t v =
    if v > t.nvars then t.nvars <- v;
    let n = t.nvars + 2 in
    t.assign <- grow_int t.assign n 0;
    t.trail <- grow_int t.trail n 0;
    t.trail_lim <- grow_int t.trail_lim n 0;
    t.flipped <- grow_bool t.flipped n;
    t.is_assump <- grow_bool t.is_assump n;
    t.occ <- grow_int t.occ n 0;
    grow_watches t (2 * n)

  let num_vars t = t.nvars
  let learned t = t.n_learned

  let add_clause t lits = t.pending <- Array.of_list lits :: t.pending

  let push_integrated t c ~is_learned =
    if t.n_clauses >= Array.length t.clauses then begin
      let b = Array.make (2 * Array.length t.clauses) [||] in
      Array.blit t.clauses 0 b 0 t.n_clauses;
      t.clauses <- b
    end;
    let ci = t.n_clauses in
    t.clauses.(ci) <- c;
    t.n_clauses <- ci + 1;
    t.watches.(widx c.(0)) <- ci :: t.watches.(widx c.(0));
    if Array.length c > 1 then
      t.watches.(widx c.(1)) <- ci :: t.watches.(widx c.(1));
    Array.iter (fun l -> t.occ.(abs l) <- t.occ.(abs l) + 1) c;
    if is_learned then t.n_learned <- t.n_learned + 1

  (* Only sound with no assignments on the trail (watch picks are blind). *)
  let integrate t =
    let one ~is_learned raw =
      let c = Array.of_list (List.sort_uniq compare (Array.to_list raw)) in
      let tautology =
        Array.exists (fun l -> Array.exists (fun l' -> l' = -l) c) c
      in
      if not tautology then begin
        Array.iter (fun l -> ensure_var t (abs l)) c;
        match Array.length c with
        | 0 -> t.unsat0 <- true
        | 1 -> t.units <- c.(0) :: t.units
        | _ -> push_integrated t c ~is_learned
      end
    in
    if t.pending <> [] || t.learn_queue <> [] then begin
      List.iter (one ~is_learned:false) (List.rev t.pending);
      t.pending <- [];
      List.iter (one ~is_learned:true) (List.rev t.learn_queue);
      t.learn_queue <- [];
      t.order_dirty <- true
    end

  let rebuild_order t =
    let vars = Array.init t.nvars (fun i -> i + 1) in
    Array.sort (fun a b -> compare t.occ.(b) t.occ.(a)) vars;
    t.order <- vars;
    t.order_dirty <- false

  let value t l =
    let v = t.assign.(abs l) in
    if v = 0 then 0 else if l > 0 then v else -v

  let enqueue t l =
    t.assign.(abs l) <- (if l > 0 then 1 else -1);
    t.trail.(t.trail_len) <- l;
    t.trail_len <- t.trail_len + 1

  let propagate t from =
    let qhead = ref from in
    let ok = ref true in
    while !ok && !qhead < t.trail_len do
      let l = t.trail.(!qhead) in
      incr qhead;
      let w = widx (-l) in
      let old_watch = t.watches.(w) in
      t.watches.(w) <- [];
      let rec process = function
        | [] -> ()
        | ci :: rest -> (
            let c = t.clauses.(ci) in
            if c.(0) = -l then begin
              c.(0) <- c.(1);
              c.(1) <- -l
            end;
            if value t c.(0) = 1 then begin
              t.watches.(w) <- ci :: t.watches.(w);
              process rest
            end
            else
              let n = Array.length c in
              let rec find i =
                if i >= n then None
                else if value t c.(i) <> -1 then Some i
                else find (i + 1)
              in
              match find 2 with
              | Some i ->
                  c.(1) <- c.(i);
                  c.(i) <- -l;
                  t.watches.(widx c.(1)) <- ci :: t.watches.(widx c.(1));
                  process rest
              | None ->
                  t.watches.(w) <- ci :: t.watches.(w);
                  if value t c.(0) = -1 then begin
                    t.watches.(w) <- List.rev_append rest t.watches.(w);
                    ok := false
                  end
                  else begin
                    enqueue t c.(0);
                    process rest
                  end)
      in
      process old_watch
    done;
    !ok

  let erase_from_level t lvl =
    let keep = t.trail_lim.(lvl) in
    for i = keep to t.trail_len - 1 do
      t.assign.(abs t.trail.(i)) <- 0
    done;
    t.trail_len <- keep;
    t.decision_level <- lvl - 1

  let reset_trail t =
    for i = 0 to t.trail_len - 1 do
      t.assign.(abs t.trail.(i)) <- 0
    done;
    t.trail_len <- 0;
    t.decision_level <- 0

  (* The decision-negation clause over the current assumption + decision
     literals (the literal at each level's trail limit). *)
  let learn_from_conflict t =
    if t.n_learned + List.length t.learn_queue < learned_cap
       && t.decision_level <= learn_len_cap
    then begin
      let c = Array.make t.decision_level 0 in
      for lvl = 1 to t.decision_level do
        c.(lvl - 1) <- -t.trail.(t.trail_lim.(lvl))
      done;
      t.learn_queue <- c :: t.learn_queue
    end

  let solve ?(max_conflicts = 2_000_000) ?deadline t ~assumptions =
    reset_trail t;
    integrate t;
    if t.unsat0 then Some Unsat
    else begin
      if t.order_dirty then rebuild_order t;
      let conflict_budget = ref max_conflicts in
      let exception Answer of result option in
      try
        (* Level 0: persistent unit clauses. *)
        List.iter
          (fun l ->
            match value t l with
            | 1 -> ()
            | -1 ->
                t.unsat0 <- true;
                raise (Answer (Some Unsat))
            | _ -> enqueue t l)
          (List.sort_uniq compare t.units);
        if not (propagate t 0) then begin
          t.unsat0 <- true;
          raise (Answer (Some Unsat))
        end;
        (* Assumption levels: unflippable decisions. *)
        List.iter
          (fun a ->
            match value t a with
            | 1 -> ()
            | -1 -> raise (Answer (Some Unsat))
            | _ ->
                t.decision_level <- t.decision_level + 1;
                t.trail_lim.(t.decision_level) <- t.trail_len;
                t.flipped.(t.decision_level) <- false;
                t.is_assump.(t.decision_level) <- true;
                enqueue t a;
                if not (propagate t t.trail_lim.(t.decision_level)) then begin
                  learn_from_conflict t;
                  raise (Answer (Some Unsat))
                end)
          assumptions;
        (* Resume the scan where the last decision left off; a conflict
           resets it (see the unwind below). Without the cursor, each
           decision rescans the whole order array and a session-sized
           CNF makes every solve quadratic in its variable count. *)
        let order_head = ref 0 in
        let next_unassigned () =
          let n = Array.length t.order in
          let rec go i =
            if i >= n then None
            else if t.assign.(t.order.(i)) = 0 then begin
              order_head := i;
              Some t.order.(i)
            end
            else go (i + 1)
          in
          go !order_head
        in
        (* Large mostly-conflict-free solves never hit the per-conflict
           deadline poll, so also poll every 4096 decisions. *)
        let decisions = ref 0 in
        let rec search () =
          incr decisions;
          (match deadline with
          | Some td when !decisions land 4095 = 0 ->
              if Unix.gettimeofday () > td then raise (Answer None)
          | _ -> ());
          match next_unassigned () with
          | None ->
              let model = Array.make (t.nvars + 1) false in
              for v = 1 to t.nvars do
                model.(v) <- t.assign.(v) = 1
              done;
              raise (Answer (Some (Sat model)))
          | Some v ->
              t.decision_level <- t.decision_level + 1;
              t.trail_lim.(t.decision_level) <- t.trail_len;
              t.flipped.(t.decision_level) <- false;
              t.is_assump.(t.decision_level) <- false;
              enqueue t v;
              propagate_or_backtrack ()
        and propagate_or_backtrack () =
          let from = t.trail_lim.(t.decision_level) in
          if propagate t from then search ()
          else begin
            decr conflict_budget;
            if !conflict_budget <= 0 then raise (Answer None);
            (match deadline with
            | Some td when !conflict_budget land 255 = 0 ->
                if Unix.gettimeofday () > td then raise (Answer None)
            | _ -> ());
            order_head := 0;   (* the unwind unassigns variables *)
            learn_from_conflict t;
            resolve_conflict ()
          end
        and resolve_conflict () =
          let rec unwind () =
            if t.decision_level = 0 then begin
              t.unsat0 <- true;
              raise (Answer (Some Unsat))
            end
            else if t.is_assump.(t.decision_level) then
              (* Flipping an assumption is not allowed: the query is
                 Unsat under the given assumptions. *)
              raise (Answer (Some Unsat))
            else if t.flipped.(t.decision_level) then begin
              erase_from_level t t.decision_level;
              unwind ()
            end
            else begin
              let lvl = t.decision_level in
              let decision = t.trail.(t.trail_lim.(lvl)) in
              erase_from_level t lvl;
              t.decision_level <- lvl;
              t.trail_lim.(lvl) <- t.trail_len;
              t.flipped.(lvl) <- true;
              enqueue t (-decision);
              propagate_or_backtrack ()
            end
          in
          unwind ()
        in
        search ()
      with Answer r -> r
    end
end
