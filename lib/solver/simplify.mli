(** Algebraic simplification of symbolic expressions.

    Rebuilds an expression bottom-up through the smart constructors of
    {!Expr} and applies a set of rewrite rules that the smart constructors
    do not: constant re-association, comparison shifting, boolean
    round-trip elimination ([zext b != 0] back to [b]), and range-based
    folding of comparisons against zero-extended narrow values.

    Simplification is semantics-preserving: for every environment [env],
    [Expr.eval env (simplify e) = Expr.eval env e]. The property test suite
    checks exactly this. *)

val simplify : Expr.t -> Expr.t

val simplify_bool : Expr.t -> Expr.t
(** [simplify_bool e] simplifies a width-1 expression used as a path
    condition. Same as {!simplify} but asserts the result width. *)

val prune : under:Expr.t list -> Expr.t -> Expr.t
(** [prune ~under e] simplifies [e] assuming every constraint in [under]
    holds: boolean subterms occurring verbatim in [under] become true
    (their verbatim negations false), collapsing [ite]s whose guards the
    path condition has since decided — the merged-state analog of branch
    folding. Semantics-preserving under all models of [under]. Linear in
    [List.length under + Expr.size e]; intended for the solver-bound
    slow path, not per-instruction use. *)
