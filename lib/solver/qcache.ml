type outcome =
  | Exact_sat of (Expr.var -> int)
  | Exact_unsat
  | Subset_unsat
  | Reuse_sat of (Expr.var -> int)
  | Miss

type info = {
  i_renamed : bool;
  i_owner : int;
  i_persisted : bool;
}

let no_info = { i_renamed = false; i_owner = -1; i_persisted = false }

module Key = struct
  type t = Expr.t list

  let equal a b =
    try List.for_all2 Expr.equal a b with Invalid_argument _ -> false

  (* Hashtbl.hash only samples a prefix of large expressions; collisions
     are resolved by [equal], so this only affects bucket spread. *)
  let hash k = List.fold_left (fun acc e -> (acc * 1000003) lxor Hashtbl.hash e) 0 k
end

module KH = Hashtbl.Make (Key)

module EH = Hashtbl.Make (struct
  type t = Expr.t

  let equal = Expr.equal
  let hash = Hashtbl.hash
end)

type verdict = V_sat of (Expr.var * int) list | V_unsat
(* V_sat pairs are in renamed space. *)

type entry = {
  e_id : int;
  e_key : Expr.t list;       (* renamed canonical key (the table key) *)
  e_orig : Expr.t list;      (* the first storer's original canonical key *)
  e_domain : int;            (* domain that stored the entry *)
  e_verdict : verdict;
  e_size : int;
  mutable e_last_use : int;
  e_persisted : bool;        (* loaded from the on-disk store (warm start) *)
}

type t = {
  capacity : int;
  model_reuse : int;
  table : entry KH.t;
  unsat_index : entry list ref EH.t;
      (* ORIGINAL constraint -> Unsat entries containing it, for subset
         proofs. The index stays in original space: a subset of a renamed
         query is generally renamed differently than the same subset
         renamed standalone, so indexing renamed constraints would lose
         the structural-subset hits the old cache had. *)
  mutable models : (int * (Expr.var * int) list) list;
      (* (owner domain, renamed-space model), newest first *)
  mutable tick : int;
  mutable next_id : int;
  mutable evicted : int;
}

let create ?(capacity = 4096) ?(model_reuse = 12) () =
  {
    capacity = max 1 capacity;
    model_reuse = max 0 model_reuse;
    table = KH.create 256;
    unsat_index = EH.create 256;
    models = [];
    tick = 0;
    next_id = 0;
    evicted = 0;
  }

(* --- structural normalization ------------------------------------------- *)
(* Operands of commutative operators are put in a canonical order before
   hashing/renaming, so structurally-equal queries whose subterms were
   assembled in different orders — e.g. the disjoined guards of a merged
   state vs the same conditions consed one at a time by forking — land on
   the same entry. The order must be stable under variable renaming
   (renaming happens AFTER this pass), so expressions are compared by
   erased shape: every variable of a width is equal to every other. Ties
   (shape-equal operands) keep their input order, which is fine — shape-
   equal operands rename to the same key either way only if genuinely
   symmetric, and a missed swap costs a cache miss, never a wrong answer. *)

let commutative = function
  | Expr.Add | Expr.Mul | Expr.And | Expr.Or | Expr.Xor -> true
  | Expr.Sub | Expr.Divu | Expr.Remu | Expr.Shl | Expr.Lshr | Expr.Ashr ->
      false

let shape_tag : Expr.t -> int = function
  | Expr.Const _ -> 0
  | Expr.Var _ -> 1
  | Expr.Binop _ -> 2
  | Expr.Cmp _ -> 3
  | Expr.Ite _ -> 4
  | Expr.Extract _ -> 5
  | Expr.Concat4 _ -> 6
  | Expr.Zext _ -> 7
  | Expr.Not _ -> 8

let rec shape_compare (a : Expr.t) (b : Expr.t) =
  match (a, b) with
  | Expr.Const (w1, c1), Expr.Const (w2, c2) -> (
      match compare w1 w2 with 0 -> compare c1 c2 | c -> c)
  | Expr.Var v1, Expr.Var v2 ->
      compare v1.Expr.var_width v2.Expr.var_width
  | Expr.Binop (o1, x1, y1), Expr.Binop (o2, x2, y2) -> (
      match compare o1 o2 with
      | 0 -> ( match shape_compare x1 x2 with 0 -> shape_compare y1 y2 | c -> c)
      | c -> c)
  | Expr.Cmp (o1, x1, y1), Expr.Cmp (o2, x2, y2) -> (
      match compare o1 o2 with
      | 0 -> ( match shape_compare x1 x2 with 0 -> shape_compare y1 y2 | c -> c)
      | c -> c)
  | Expr.Ite (c1, x1, y1), Expr.Ite (c2, x2, y2) -> (
      match shape_compare c1 c2 with
      | 0 -> ( match shape_compare x1 x2 with 0 -> shape_compare y1 y2 | c -> c)
      | c -> c)
  | Expr.Extract (x1, i1), Expr.Extract (x2, i2) -> (
      match compare i1 i2 with 0 -> shape_compare x1 x2 | c -> c)
  | Expr.Concat4 (a3, a2, a1, a0), Expr.Concat4 (b3, b2, b1, b0) -> (
      match shape_compare a3 b3 with
      | 0 -> (
          match shape_compare a2 b2 with
          | 0 -> (
              match shape_compare a1 b1 with
              | 0 -> shape_compare a0 b0
              | c -> c)
          | c -> c)
      | c -> c)
  | Expr.Zext x1, Expr.Zext x2 -> shape_compare x1 x2
  | Expr.Not x1, Expr.Not x2 -> shape_compare x1 x2
  | _ -> compare (shape_tag a) (shape_tag b)

let rec normalize (e : Expr.t) : Expr.t =
  match e with
  | Expr.Const _ | Expr.Var _ -> e
  | Expr.Binop (op, a, b) ->
      let a = normalize a and b = normalize b in
      if commutative op && shape_compare b a < 0 then Expr.Binop (op, b, a)
      else Expr.Binop (op, a, b)
  | Expr.Cmp (op, a, b) -> (
      let a = normalize a and b = normalize b in
      match op with
      | (Expr.Eq | Expr.Ne) when shape_compare b a < 0 -> Expr.Cmp (op, b, a)
      | _ -> Expr.Cmp (op, a, b))
  | Expr.Ite (c, a, b) -> (
      (* A negated guard swaps arms, so a lift built from the taken arm
         and one built from the fallthrough share a key. *)
      match normalize c with
      | Expr.Not c' -> Expr.Ite (c', normalize b, normalize a)
      | c -> Expr.Ite (c, normalize a, normalize b))
  | Expr.Extract (x, i) -> Expr.Extract (normalize x, i)
  | Expr.Concat4 (b3, b2, b1, b0) ->
      Expr.Concat4 (normalize b3, normalize b2, normalize b1, normalize b0)
  | Expr.Zext x -> Expr.Zext (normalize x)
  | Expr.Not x -> Expr.Not (normalize x)

let canon cs = List.sort_uniq Expr.compare (List.map normalize cs)

(* --- normalization up to variable renaming ------------------------------ *)
(* Variables are renumbered 1..n in first-occurrence order over the
   canonically sorted key (names erased), so two structurally identical
   queries over different variables — e.g. the same guard re-minted by
   another state or worker — share one renamed key. The rename is a
   bijection on the key's variables: [fwd] translates query vars to
   renamed vars (for reading stored models), [inv] translates back (for
   storing a model of this query in renamed space). *)

type prepared = {
  p_key : Expr.t list;              (* canonical original key *)
  p_rkey : Expr.t list;             (* renamed key *)
  p_fwd : (int, Expr.var) Hashtbl.t;   (* original id -> renamed var *)
  p_inv : (int, Expr.var) Hashtbl.t;   (* renamed id -> original var *)
}

let prepare cs =
  let key = canon cs in
  let fwd = Hashtbl.create 16 in
  let inv = Hashtbl.create 16 in
  let next = ref 0 in
  let rec go (e : Expr.t) : Expr.t =
    match e with
    | Expr.Const _ -> e
    | Expr.Var v ->
        let r =
          match Hashtbl.find_opt fwd v.Expr.id with
          | Some r -> r
          | None ->
              incr next;
              let r = Expr.canon_var !next v.Expr.var_width in
              Hashtbl.add fwd v.Expr.id r;
              Hashtbl.add inv !next v;
              r
        in
        Expr.Var r
    (* Raw constructors: renaming must preserve structure exactly, or the
       renamed key's equality would disagree with the original's. *)
    | Expr.Binop (op, a, b) -> Expr.Binop (op, go a, go b)
    | Expr.Cmp (op, a, b) -> Expr.Cmp (op, go a, go b)
    | Expr.Ite (c, a, b) -> Expr.Ite (go c, go a, go b)
    | Expr.Extract (x, i) -> Expr.Extract (go x, i)
    | Expr.Concat4 (b3, b2, b1, b0) ->
        Expr.Concat4 (go b3, go b2, go b1, go b0)
    | Expr.Zext x -> Expr.Zext (go x)
    | Expr.Not x -> Expr.Not (go x)
  in
  let rkey = List.map go key in
  { p_key = key; p_rkey = rkey; p_fwd = fwd; p_inv = inv }

let size t = KH.length t.table
let evictions t = t.evicted

let clear t =
  KH.reset t.table;
  EH.reset t.unsat_index;
  t.models <- []

let env_of pairs =
  let tbl = Hashtbl.create (max 4 (2 * List.length pairs)) in
  List.iter (fun ((v : Expr.var), x) -> Hashtbl.replace tbl v.Expr.id x) pairs;
  fun (v : Expr.var) ->
    match Hashtbl.find_opt tbl v.Expr.id with Some x -> x | None -> 0

(* Translate a renamed-space model into one over the query's original
   variables. The value is masked to the variable's width: a reused model
   may pair a renamed id with a {e wider} variable than this query's
   (env_of keys by id only), and evaluation masks at the Var node, so an
   over-wide value verifies — but the model handed back must still be
   well-formed per variable, or a W8 device read gets pinned above 255. *)
let orig_env fwd renv (v : Expr.var) =
  match Hashtbl.find_opt fwd v.Expr.id with
  | Some r -> renv r land Expr.mask_of_width v.Expr.var_width
  | None -> 0

let self_domain () = (Domain.self () :> int)

let unindex t e =
  List.iter
    (fun c ->
      match EH.find_opt t.unsat_index c with
      | None -> ()
      | Some r ->
          r := List.filter (fun e' -> e'.e_id <> e.e_id) !r;
          if !r = [] then EH.remove t.unsat_index c)
    e.e_orig

(* Batch LRU eviction: drop the least recently used entries down to 3/4
   of capacity, so the O(n log n) sort amortizes over many inserts. *)
let maybe_evict t =
  if KH.length t.table > t.capacity then begin
    let entries = KH.fold (fun _ e acc -> e :: acc) t.table [] in
    let sorted =
      List.sort (fun a b -> compare a.e_last_use b.e_last_use) entries
    in
    let drop = ref (KH.length t.table - (t.capacity * 3 / 4)) in
    List.iter
      (fun e ->
        if !drop > 0 then begin
          decr drop;
          KH.remove t.table e.e_key;
          (match e.e_verdict with V_unsat -> unindex t e | V_sat _ -> ());
          t.evicted <- t.evicted + 1
        end)
      sorted
  end

(* Subset rule: an Unsat entry all of whose (original) constraints occur
   in the query proves the query Unsat. Count, per candidate entry, how
   many of the query's constraints it contains. Factored out so the
   sharded cache's cross-shard Bloom probe can run it against a foreign
   shard's index under that shard's lock. *)
let subset_winner t p_key =
  let hits = Hashtbl.create 8 in
  let winner = ref None in
  let found =
    List.exists
      (fun c ->
        match EH.find_opt t.unsat_index c with
        | None -> false
        | Some entries ->
            List.exists
              (fun e ->
                let n =
                  1
                  + (match Hashtbl.find_opt hits e.e_id with
                     | Some n -> n
                     | None -> 0)
                in
                Hashtbl.replace hits e.e_id n;
                if n = e.e_size then begin
                  e.e_last_use <- t.tick;
                  winner := Some e;
                  true
                end
                else false)
              !entries)
      p_key
  in
  if found then !winner else None

let lookup_prepared t p =
  t.tick <- t.tick + 1;
  match KH.find_opt t.table p.p_rkey with
  | Some e -> (
      e.e_last_use <- t.tick;
      let info =
        { i_renamed = not (Key.equal e.e_orig p.p_key); i_owner = e.e_domain;
          i_persisted = e.e_persisted }
      in
      match e.e_verdict with
      | V_sat pairs -> (Exact_sat (orig_env p.p_fwd (env_of pairs)), info)
      | V_unsat -> (Exact_unsat, info))
  | None -> (
      match subset_winner t p.p_key with
      | Some e ->
          (Subset_unsat,
           { i_renamed = false; i_owner = e.e_domain;
             i_persisted = e.e_persisted })
      | None ->
          (* Superset rule: re-check recent models by evaluation — against
             the renamed query, so a model minted for a differently-named
             twin still applies; any assignment that verifies is genuine. *)
          let rec try_models = function
            | [] -> (Miss, no_info)
            | (owner, m) :: rest ->
                let renv = env_of m in
                if List.for_all (fun c -> Expr.eval renv c = 1) p.p_rkey then
                  (Reuse_sat (orig_env p.p_fwd renv),
                   { i_renamed = false; i_owner = owner; i_persisted = false })
                else try_models rest
          in
          try_models t.models)

let lookup_info t cs = lookup_prepared t (prepare cs)
let lookup t cs = fst (lookup_info t cs)

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let add_entry ?(persisted = false) t p verdict =
  t.tick <- t.tick + 1;
  t.next_id <- t.next_id + 1;
  let e =
    {
      e_id = t.next_id;
      e_key = p.p_rkey;
      e_orig = p.p_key;
      e_domain = self_domain ();
      e_verdict = verdict;
      e_size = List.length p.p_key;
      e_last_use = t.tick;
      e_persisted = persisted;
    }
  in
  KH.replace t.table p.p_rkey e;
  e

let store_sat_prepared t p m =
  if p.p_key <> [] && not (KH.mem t.table p.p_rkey) then begin
    (* Store the model over renamed variables, valued through the inverse
       rename — [Expr.vars] returns them sorted by (dense) renamed id. *)
    let rvars =
      List.concat_map Expr.vars p.p_rkey
      |> List.sort_uniq (fun a b -> compare a.Expr.id b.Expr.id)
    in
    let pairs =
      List.map (fun (r : Expr.var) -> (r, m (Hashtbl.find p.p_inv r.Expr.id))) rvars
    in
    ignore (add_entry t p (V_sat pairs));
    if t.model_reuse > 0 then
      t.models <- (self_domain (), pairs) :: take (t.model_reuse - 1) t.models;
    maybe_evict t
  end

let store_unsat_prepared t p =
  if p.p_key <> [] && not (KH.mem t.table p.p_rkey) then begin
    let e = add_entry t p V_unsat in
    List.iter
      (fun c ->
        match EH.find_opt t.unsat_index c with
        | Some r -> r := e :: !r
        | None -> EH.replace t.unsat_index c (ref [ e ]))
      p.p_key;
    maybe_evict t
  end

let store_sat t cs m = store_sat_prepared t (prepare cs) m
let store_unsat t cs = store_unsat_prepared t (prepare cs)

(* --- persistence --------------------------------------------------------- *)
(* A [pentry] is the process-independent projection of an entry: the
   renamed key is already in the canonical dense-id space, so it means
   the same thing in any process; the original key only serves the
   subset index (and only matches across runs when the producing run was
   deterministic, which the engine is). Verdicts are plain data —
   [V_sat] stores (var, value) pairs, never closures. *)

type pentry = {
  pe_key : Expr.t list;      (* renamed canonical key *)
  pe_orig : Expr.t list;     (* original-space key, for subset indexing *)
  pe_verdict : verdict;
}

(* Loading is defensive even though the container layer already CRC-
   checked the bytes: a Sat model is re-verified by evaluation against
   the stored key, so a stale or forged model can cost a miss but never
   hand back a non-model. (Unsat cores are protected by the store's
   version key: any change to solver semantics bumps it and orphans the
   old entries.) *)
let import_pentry ?(index_subsets = true) t pe =
  let sat_ok pairs =
    let renv = env_of pairs in
    match List.for_all (fun c -> Expr.eval renv c = 1) pe.pe_key with
    | ok -> ok
    | exception _ -> false
  in
  let well_formed =
    pe.pe_key <> [] && pe.pe_orig <> []
    && (match pe.pe_verdict with V_unsat -> true | V_sat pairs -> sat_ok pairs)
  in
  if (not well_formed) || KH.mem t.table pe.pe_key then false
  else begin
    t.tick <- t.tick + 1;
    t.next_id <- t.next_id + 1;
    let e =
      {
        e_id = t.next_id;
        e_key = pe.pe_key;
        e_orig = pe.pe_orig;
        e_domain = self_domain ();
        e_verdict = pe.pe_verdict;
        e_size = List.length pe.pe_orig;
        e_last_use = t.tick;
        e_persisted = true;
      }
    in
    KH.replace t.table pe.pe_key e;
    (* The subset-Unsat index matches in original (un-renamed) space, so
       it is only sound when the entry's var ids mean the same quantities
       as this process's — callers importing entries minted by another
       process under a different id lane pass [index_subsets:false],
       keeping the (alpha-equivalence-sound) exact renamed hit while
       skipping the index. *)
    (match pe.pe_verdict with
    | V_unsat when index_subsets ->
        List.iter
          (fun c ->
            match EH.find_opt t.unsat_index c with
            | Some r -> r := e :: !r
            | None -> EH.replace t.unsat_index c (ref [ e ]))
          pe.pe_orig
    | V_unsat | V_sat _ -> ());
    maybe_evict t;
    true
  end

(* --- the mutex-sharded shared cache -------------------------------------- *)
(* One process-wide cache shared by every worker domain: shard by the hash
   of the renamed canonical key, one mutex per shard, atomics for the
   cross-shard statistics. Exact and renamed hits always land in the
   right shard (same renamed key => same shard); subset-Unsat proofs and
   model reuse only see the query's home shard — a deliberate trade of a
   little hit rate for lock granularity. *)

module Sharded = struct
  type shard = { mu : Mutex.t; cache : t }

  (* A small shared Bloom filter over the constraints of every stored
     Unsat core, process-wide across shards. The subset rule only ever
     fires when at least one of the query's constraints appears in some
     stored core, so a query none of whose constraints is in the filter
     cannot have a subset hit in ANY shard — which makes the filter a
     sound gate for probing the other shards' per-shard Unsat indexes on
     a home-shard miss. Bits are set with a CAS loop (a lost race only
     re-runs the loop) and never cleared except by [clear]; stale bits
     cost an extra probe, never a wrong answer. *)
  let bloom_words = 1024 (* 1024 * 32 bits *)

  type sharded = {
    shards : shard array;
    bloom : int Atomic.t array;
    lookups : int Atomic.t;
    hits : int Atomic.t;
    misses : int Atomic.t;
    renamed_hits : int Atomic.t;
    cross_hits : int Atomic.t;
    bloom_hits : int Atomic.t;
  }

  let create ?(shards = 8) ?(capacity = 4096) ?(model_reuse = 12) () =
    let n = max 1 shards in
    let per_shard_cap = max 1 (capacity / n) in
    {
      shards =
        Array.init n (fun _ ->
            {
              mu = Mutex.create ();
              cache = create ~capacity:per_shard_cap ~model_reuse ();
            });
      bloom = Array.init bloom_words (fun _ -> Atomic.make 0);
      lookups = Atomic.make 0;
      hits = Atomic.make 0;
      misses = Atomic.make 0;
      renamed_hits = Atomic.make 0;
      cross_hits = Atomic.make 0;
      bloom_hits = Atomic.make 0;
    }

  (* Two derived bit positions per constraint (classic double hashing). *)
  let bloom_positions c =
    let h1 = Hashtbl.hash c in
    let h2 = (h1 * 0x9E3779B1) lxor (h1 lsr 16) in
    let pos h =
      let b = abs h mod (bloom_words * 32) in
      (b lsr 5, 1 lsl (b land 31))
    in
    (pos h1, pos h2)

  let rec bloom_set a i mask =
    let cur = Atomic.get a.(i) in
    if cur land mask = 0 then
      if not (Atomic.compare_and_set a.(i) cur (cur lor mask)) then
        bloom_set a i mask

  let bloom_add sc c =
    let (i1, m1), (i2, m2) = bloom_positions c in
    bloom_set sc.bloom i1 m1;
    bloom_set sc.bloom i2 m2

  let bloom_maybe sc c =
    let (i1, m1), (i2, m2) = bloom_positions c in
    Atomic.get sc.bloom.(i1) land m1 <> 0
    && Atomic.get sc.bloom.(i2) land m2 <> 0

  let shard_for sc p =
    sc.shards.(abs (Key.hash p.p_rkey) mod Array.length sc.shards)

  let with_shard s f =
    Mutex.lock s.mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock s.mu) f

  (* Cross-shard subset-Unsat recovery: on a home-shard miss, if the
     Bloom filter says some query constraint occurs in a stored Unsat
     core, probe the remaining shards' subset indexes one at a time
     (each under its own lock — the locks are never widened). *)
  let cross_shard_subset sc home p =
    if Array.length sc.shards <= 1
       || not (List.exists (bloom_maybe sc) p.p_key)
    then None
    else begin
      let found = ref None in
      Array.iter
        (fun s ->
          if !found = None && s != home then
            match
              with_shard s (fun () ->
                  s.cache.tick <- s.cache.tick + 1;
                  subset_winner s.cache p.p_key)
            with
            | Some e -> found := Some e
            | None -> ())
        sc.shards;
      !found
    end

  let lookup sc cs =
    let p = prepare cs in
    let s = shard_for sc p in
    let outcome, info = with_shard s (fun () -> lookup_prepared s.cache p) in
    let outcome, info =
      match outcome with
      | Miss -> (
          match cross_shard_subset sc s p with
          | Some e ->
              Atomic.incr sc.bloom_hits;
              (Subset_unsat,
               { i_renamed = false; i_owner = e.e_domain;
                 i_persisted = e.e_persisted })
          | None -> (outcome, info))
      | _ -> (outcome, info)
    in
    Atomic.incr sc.lookups;
    (match outcome with
    | Miss -> Atomic.incr sc.misses
    | Exact_sat _ | Exact_unsat | Subset_unsat | Reuse_sat _ ->
        Atomic.incr sc.hits;
        if info.i_renamed then Atomic.incr sc.renamed_hits;
        if info.i_owner >= 0 && info.i_owner <> self_domain () then
          Atomic.incr sc.cross_hits);
    (outcome, info)

  let store_sat sc cs m =
    let p = prepare cs in
    let s = shard_for sc p in
    with_shard s (fun () -> store_sat_prepared s.cache p m)

  let store_unsat sc cs =
    let p = prepare cs in
    let s = shard_for sc p in
    with_shard s (fun () -> store_unsat_prepared s.cache p);
    List.iter (bloom_add sc) p.p_key

  let size sc =
    Array.fold_left
      (fun acc s -> acc + with_shard s (fun () -> size s.cache))
      0 sc.shards

  let evictions sc =
    Array.fold_left
      (fun acc s -> acc + with_shard s (fun () -> evictions s.cache))
      0 sc.shards

  let clear sc =
    Array.iter (fun s -> with_shard s (fun () -> clear s.cache)) sc.shards;
    Array.iter (fun w -> Atomic.set w 0) sc.bloom

  let n_shards sc = Array.length sc.shards

  (* --- warm start (content-addressed store) ----------------------------- *)

  (* Entries born in this process, i.e. worth persisting ([e_persisted]
     ones are already on disk). *)
  let export_entries sc =
    Array.fold_left
      (fun acc s ->
        with_shard s (fun () ->
            KH.fold
              (fun _ e acc ->
                if e.e_persisted then acc
                else
                  { pe_key = e.e_key; pe_orig = e.e_orig;
                    pe_verdict = e.e_verdict }
                  :: acc)
              s.cache.table acc))
      [] sc.shards

  (* Loaded entries land in the exact/subset tables only — never in the
     model-reuse list — so a warm start can turn misses into hits but
     cannot reorder the speculative model scan a cold run would do. *)
  let import_pentry ?(index_subsets = true) sc pe =
    let s = sc.shards.(abs (Key.hash pe.pe_key) mod Array.length sc.shards) in
    let ok = with_shard s (fun () -> import_pentry ~index_subsets s.cache pe) in
    (* The Bloom filter only gates subset probes; an unindexed core must
       not join it either. *)
    if ok && index_subsets then
      (match pe.pe_verdict with
      | V_unsat -> List.iter (bloom_add sc) pe.pe_orig
      | V_sat _ -> ());
    ok

  (* --- checkpoint dump/import ------------------------------------------- *)

  (* The full sharded cache as plain data, for session checkpoints: a
     resumed run must replay the exact lookup outcomes (including model-
     reuse order and LRU ticks) the killed run would have seen, or its
     concretizations — and therefore its exploration — could diverge.
     The dump aliases the live shard tables, so it must be serialized
     (or dropped) before any further solver activity; checkpoints are
     taken at quiescent points, where that holds. *)
  type dump = {
    d_shards : t array;
    d_bloom : int array;
    d_lookups : int;
    d_hits : int;
    d_misses : int;
    d_renamed_hits : int;
    d_cross_hits : int;
    d_bloom_hits : int;
  }

  let dump sc =
    {
      d_shards = Array.map (fun s -> with_shard s (fun () -> s.cache)) sc.shards;
      d_bloom = Array.map Atomic.get sc.bloom;
      d_lookups = Atomic.get sc.lookups;
      d_hits = Atomic.get sc.hits;
      d_misses = Atomic.get sc.misses;
      d_renamed_hits = Atomic.get sc.renamed_hits;
      d_cross_hits = Atomic.get sc.cross_hits;
      d_bloom_hits = Atomic.get sc.bloom_hits;
    }

  (* Import a dump into a freshly created sharded cache of the same
     geometry. Entry identity inside each shard (table vs unsat index)
     survives the Marshal round-trip, so LRU updates keep touching one
     object per entry, as in the original run. Returns [false] (and
     imports nothing) on a geometry mismatch — the caller falls back to
     a cold cache, which costs solve time but changes no verdict. *)
  let import sc d =
    if
      Array.length d.d_shards <> Array.length sc.shards
      || Array.length d.d_bloom <> Array.length sc.bloom
    then false
    else begin
      Array.iteri
        (fun i s ->
          let src = d.d_shards.(i) in
          with_shard s (fun () ->
              let c = s.cache in
              KH.reset c.table;
              EH.reset c.unsat_index;
              KH.iter (fun k e -> KH.replace c.table k e) src.table;
              EH.iter (fun k r -> EH.replace c.unsat_index k r)
                src.unsat_index;
              c.models <- src.models;
              c.tick <- src.tick;
              c.next_id <- src.next_id;
              c.evicted <- src.evicted))
        sc.shards;
      Array.iteri (fun i w -> Atomic.set sc.bloom.(i) w) d.d_bloom;
      Atomic.set sc.lookups d.d_lookups;
      Atomic.set sc.hits d.d_hits;
      Atomic.set sc.misses d.d_misses;
      Atomic.set sc.renamed_hits d.d_renamed_hits;
      Atomic.set sc.cross_hits d.d_cross_hits;
      Atomic.set sc.bloom_hits d.d_bloom_hits;
      true
    end

  type counts = {
    sc_lookups : int;
    sc_hits : int;
    sc_misses : int;
    sc_renamed_hits : int;
    sc_cross_hits : int;
    sc_bloom_hits : int;
  }

  let counts sc =
    {
      sc_lookups = Atomic.get sc.lookups;
      sc_hits = Atomic.get sc.hits;
      sc_misses = Atomic.get sc.misses;
      sc_renamed_hits = Atomic.get sc.renamed_hits;
      sc_cross_hits = Atomic.get sc.cross_hits;
      sc_bloom_hits = Atomic.get sc.bloom_hits;
    }

  let bloom_recoveries sc = Atomic.get sc.bloom_hits
end
