type outcome =
  | Exact_sat of (Expr.var -> int)
  | Exact_unsat
  | Subset_unsat
  | Reuse_sat of (Expr.var -> int)
  | Miss

module Key = struct
  type t = Expr.t list

  let equal a b =
    try List.for_all2 Expr.equal a b with Invalid_argument _ -> false

  (* Hashtbl.hash only samples a prefix of large expressions; collisions
     are resolved by [equal], so this only affects bucket spread. *)
  let hash k = List.fold_left (fun acc e -> (acc * 1000003) lxor Hashtbl.hash e) 0 k
end

module KH = Hashtbl.Make (Key)

module EH = Hashtbl.Make (struct
  type t = Expr.t

  let equal = Expr.equal
  let hash = Hashtbl.hash
end)

type verdict = V_sat of (Expr.var * int) list | V_unsat

type entry = {
  e_id : int;
  e_key : Expr.t list;
  e_verdict : verdict;
  e_size : int;
  mutable e_last_use : int;
}

type t = {
  capacity : int;
  model_reuse : int;
  table : entry KH.t;
  unsat_index : entry list ref EH.t;
      (* constraint -> Unsat entries containing it, for subset proofs *)
  mutable models : (Expr.var * int) list list;  (* newest first *)
  mutable tick : int;
  mutable next_id : int;
  mutable evicted : int;
}

let create ?(capacity = 4096) ?(model_reuse = 12) () =
  {
    capacity = max 1 capacity;
    model_reuse = max 0 model_reuse;
    table = KH.create 256;
    unsat_index = EH.create 256;
    models = [];
    tick = 0;
    next_id = 0;
    evicted = 0;
  }

let canon cs = List.sort_uniq Expr.compare cs

let size t = KH.length t.table
let evictions t = t.evicted

let clear t =
  KH.reset t.table;
  EH.reset t.unsat_index;
  t.models <- []

let env_of pairs =
  let tbl = Hashtbl.create (max 4 (2 * List.length pairs)) in
  List.iter (fun ((v : Expr.var), x) -> Hashtbl.replace tbl v.Expr.id x) pairs;
  fun (v : Expr.var) ->
    match Hashtbl.find_opt tbl v.Expr.id with Some x -> x | None -> 0

let unindex t e =
  List.iter
    (fun c ->
      match EH.find_opt t.unsat_index c with
      | None -> ()
      | Some r ->
          r := List.filter (fun e' -> e'.e_id <> e.e_id) !r;
          if !r = [] then EH.remove t.unsat_index c)
    e.e_key

(* Batch LRU eviction: drop the least recently used entries down to 3/4
   of capacity, so the O(n log n) sort amortizes over many inserts. *)
let maybe_evict t =
  if KH.length t.table > t.capacity then begin
    let entries = KH.fold (fun _ e acc -> e :: acc) t.table [] in
    let sorted =
      List.sort (fun a b -> compare a.e_last_use b.e_last_use) entries
    in
    let drop = ref (KH.length t.table - (t.capacity * 3 / 4)) in
    List.iter
      (fun e ->
        if !drop > 0 then begin
          decr drop;
          KH.remove t.table e.e_key;
          (match e.e_verdict with V_unsat -> unindex t e | V_sat _ -> ());
          t.evicted <- t.evicted + 1
        end)
      sorted
  end

let lookup t cs =
  let key = canon cs in
  t.tick <- t.tick + 1;
  match KH.find_opt t.table key with
  | Some e -> (
      e.e_last_use <- t.tick;
      match e.e_verdict with
      | V_sat m -> Exact_sat (env_of m)
      | V_unsat -> Exact_unsat)
  | None ->
      (* Subset rule: an Unsat entry all of whose constraints occur in the
         query proves the query Unsat. Count, per candidate entry, how
         many of the query's constraints it contains. *)
      let hits = Hashtbl.create 8 in
      let subset =
        List.exists
          (fun c ->
            match EH.find_opt t.unsat_index c with
            | None -> false
            | Some entries ->
                List.exists
                  (fun e ->
                    let n =
                      1
                      + (match Hashtbl.find_opt hits e.e_id with
                         | Some n -> n
                         | None -> 0)
                    in
                    Hashtbl.replace hits e.e_id n;
                    if n = e.e_size then begin
                      e.e_last_use <- t.tick;
                      true
                    end
                    else false)
                  !entries)
          key
      in
      if subset then Subset_unsat
      else
        (* Superset rule: re-check recent models by evaluation. *)
        let rec try_models = function
          | [] -> Miss
          | m :: rest ->
              let env = env_of m in
              if List.for_all (fun c -> Expr.eval env c = 1) key then
                Reuse_sat env
              else try_models rest
        in
        try_models t.models

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let add_entry t key verdict =
  t.tick <- t.tick + 1;
  t.next_id <- t.next_id + 1;
  let e =
    {
      e_id = t.next_id;
      e_key = key;
      e_verdict = verdict;
      e_size = List.length key;
      e_last_use = t.tick;
    }
  in
  KH.replace t.table key e;
  e

let store_sat t cs m =
  let key = canon cs in
  if key <> [] && not (KH.mem t.table key) then begin
    let vars =
      List.concat_map Expr.vars key
      |> List.sort_uniq (fun a b -> compare a.Expr.id b.Expr.id)
    in
    let pairs = List.map (fun v -> (v, m v)) vars in
    ignore (add_entry t key (V_sat pairs));
    if t.model_reuse > 0 then
      t.models <- pairs :: take (t.model_reuse - 1) t.models;
    maybe_evict t
  end

let store_unsat t cs =
  let key = canon cs in
  if key <> [] && not (KH.mem t.table key) then begin
    let e = add_entry t key V_unsat in
    List.iter
      (fun c ->
        match EH.find_opt t.unsat_index c with
        | Some r -> r := e :: !r
        | None -> EH.replace t.unsat_index c (ref [ e ]))
      key;
    maybe_evict t
  end
