(* On-disk content-addressed store for query-cache entries and Unsat
   cores, so runs warm-start each other: the second run of a driver
   finds the first run's verdicts on disk and turns its bit-blasts into
   cache hits.

   Layout: one {!Blob} file per entry under
   [<dir>/<key>.v<version>/<hex-digest>.qe], where the digest is over
   the entry's renamed canonical key — the same query stored by any run
   lands on the same filename, so concurrent or repeated runs dedup by
   construction and a half-written entry is impossible (tmp + rename).
   The version and the caller's key (driver name) live in the directory
   name: bumping either simply orphans the old directory, which is the
   whole invalidation story.

   Concurrent access: writers never collide (unique tmp names + atomic
   rename; same digest means same content, so last-writer-wins is
   convergent), and a reader racing a writer sees either no file or a
   complete file. A file that vanishes between [readdir] and [open]
   (rename raced by another process's in-progress write on some
   filesystems, or manual cleanup) is skipped and counted, never an
   error. [refresh] imports only files not seen by a previous
   [load]/[refresh], which is how distributed workers lazily pick up
   entries their siblings flush mid-run.

   Failure policy, in one line: the store can only ever change cost,
   never a verdict. A corrupt or truncated entry is skipped (counted in
   [skipped]); a failed write — disk full included — disables further
   writes for this store and the run continues unpersisted. *)

(* Bump when entry semantics change (solver rewrites, canonicalization,
   verdict encoding): old entries become unreachable, not wrong. *)
let store_version = 1

type t = {
  dir : string;                 (* the fully-scoped entry directory *)
  mutable writable : bool;      (* cleared after the first failed write *)
  mutable loaded : int;
  mutable written : int;
  mutable skipped : int;        (* unreadable/corrupt/refused entries *)
  seen : (string, unit) Hashtbl.t;
  (* filenames already imported (or refused), so [refresh] is
     incremental *)
}

let scrub_key key =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    key

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_store ~dir ~key =
  let scoped =
    Filename.concat dir (Printf.sprintf "%s.v%d" (scrub_key key) store_version)
  in
  match mkdir_p scoped with
  | () -> Ok { dir = scoped; writable = true; loaded = 0; written = 0;
               skipped = 0; seen = Hashtbl.create 64 }
  | exception e -> Error (Printexc.to_string e)

let dir t = t.dir
let loaded t = t.loaded
let written t = t.written
let skipped t = t.skipped
let writable t = t.writable

let entry_path t (pe : Qcache.pentry) =
  (* Address by the renamed key alone: for a deterministic engine the
     verdict is a function of the key, so the first writer wins and
     every later run skips the write. *)
  let digest = Digest.to_hex (Digest.string (Marshal.to_string pe.pe_key [])) in
  Filename.concat t.dir (digest ^ ".qe")

(* Import the entry files not yet seen by this handle. Filenames are
   sorted so the insertion order (hence each shard's LRU ticks) is the
   same on every host. Returns the number of entries actually
   imported. *)
let import_new ?index_subsets t cache =
  let files =
    match Sys.readdir t.dir with
    | files ->
        Array.sort compare files;
        Array.to_list files
    | exception _ -> []
  in
  let imported = ref 0 in
  List.iter
    (fun f ->
      if Filename.check_suffix f ".qe" && not (Hashtbl.mem t.seen f) then begin
        Hashtbl.replace t.seen f ();
        match Blob.read_file (Filename.concat t.dir f) with
        | Error _ -> t.skipped <- t.skipped + 1
        | Ok (pe : Qcache.pentry) ->
            if Qcache.Sharded.import_pentry ?index_subsets cache pe then begin
              t.loaded <- t.loaded + 1;
              incr imported
            end
            else t.skipped <- t.skipped + 1
      end)
    files;
  !imported

(* Load every readable entry into the shared cache (warm start). *)
let load ?index_subsets t cache =
  ignore (import_new ?index_subsets t cache);
  t.loaded

(* Lazy cross-process sharing: import only entries that appeared since
   the last [load]/[refresh] — what sibling workers flushed meanwhile. *)
let refresh ?index_subsets t cache = import_new ?index_subsets t cache

(* Persist every entry born in this process. Stops writing (and marks
   the store read-only) after the first failure so a full disk costs one
   syscall error, not one per entry. Entries this process writes are
   marked seen, so a later [refresh] does not re-read our own flushes.
   Returns entries newly written. *)
let save t cache =
  let before = t.written in
  let entries = Qcache.Sharded.export_entries cache in
  List.iter
    (fun pe ->
      if t.writable then begin
        let path = entry_path t pe in
        Hashtbl.replace t.seen (Filename.basename path) ();
        if not (Sys.file_exists path) then
          match Blob.write_file path pe with
          | Ok () -> t.written <- t.written + 1
          | Error _ -> t.writable <- false
      end)
    entries;
  t.written - before
