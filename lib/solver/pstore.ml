(* On-disk content-addressed store for query-cache entries and Unsat
   cores, so runs warm-start each other: the second run of a driver
   finds the first run's verdicts on disk and turns its bit-blasts into
   cache hits.

   Layout: one {!Blob} file per entry under
   [<dir>/<key>.v<version>/<hex-digest>.qe], where the digest is over
   the entry's renamed canonical key — the same query stored by any run
   lands on the same filename, so concurrent or repeated runs dedup by
   construction and a half-written entry is impossible (tmp + rename).
   The version and the caller's key (driver name) live in the directory
   name: bumping either simply orphans the old directory, which is the
   whole invalidation story.

   Failure policy, in one line: the store can only ever change cost,
   never a verdict. A corrupt or truncated entry is skipped (counted in
   [skipped]); a failed write — disk full included — disables further
   writes for this store and the run continues unpersisted. *)

(* Bump when entry semantics change (solver rewrites, canonicalization,
   verdict encoding): old entries become unreachable, not wrong. *)
let store_version = 1

type t = {
  dir : string;                 (* the fully-scoped entry directory *)
  mutable writable : bool;      (* cleared after the first failed write *)
  mutable loaded : int;
  mutable written : int;
  mutable skipped : int;        (* unreadable/corrupt/refused entries *)
}

let scrub_key key =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    key

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_store ~dir ~key =
  let scoped =
    Filename.concat dir (Printf.sprintf "%s.v%d" (scrub_key key) store_version)
  in
  match mkdir_p scoped with
  | () -> Ok { dir = scoped; writable = true; loaded = 0; written = 0;
               skipped = 0 }
  | exception e -> Error (Printexc.to_string e)

let dir t = t.dir
let loaded t = t.loaded
let written t = t.written
let skipped t = t.skipped
let writable t = t.writable

let entry_path t (pe : Qcache.pentry) =
  (* Address by the renamed key alone: for a deterministic engine the
     verdict is a function of the key, so the first writer wins and
     every later run skips the write. *)
  let digest = Digest.to_hex (Digest.string (Marshal.to_string pe.pe_key [])) in
  Filename.concat t.dir (digest ^ ".qe")

(* Load every readable entry into the shared cache. Filenames are sorted
   so the insertion order (hence each shard's LRU ticks) is the same on
   every host. Returns the number of entries actually imported. *)
let load t cache =
  let files =
    match Sys.readdir t.dir with
    | files ->
        Array.sort compare files;
        Array.to_list files
    | exception _ -> []
  in
  List.iter
    (fun f ->
      if Filename.check_suffix f ".qe" then
        match Blob.read_file (Filename.concat t.dir f) with
        | Error _ -> t.skipped <- t.skipped + 1
        | Ok (pe : Qcache.pentry) ->
            if Qcache.Sharded.import_pentry cache pe then
              t.loaded <- t.loaded + 1
            else t.skipped <- t.skipped + 1)
    files;
  t.loaded

(* Persist every entry born in this process. Stops writing (and marks
   the store read-only) after the first failure so a full disk costs one
   syscall error, not one per entry. Returns entries newly written. *)
let save t cache =
  let before = t.written in
  let entries = Qcache.Sharded.export_entries cache in
  List.iter
    (fun pe ->
      if t.writable then
        let path = entry_path t pe in
        if not (Sys.file_exists path) then
          match Blob.write_file path pe with
          | Ok () -> t.written <- t.written + 1
          | Error _ -> t.writable <- false)
    entries;
  t.written - before
