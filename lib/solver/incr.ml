(* Incremental path-condition solving sessions.

   A session mirrors one state's path condition as a stack of frames
   over a persistent bit-blasting context and an incremental SAT engine
   ({!Dpll.Inc}). Each frame is simplified, canonicalized and blasted
   exactly once: the frame's circuit is asserted behind an activation
   literal (the guarded clause [-sel \/ circuit]) and thereafter enabled
   per query by assuming [sel], so pushes after a fork and pops on
   divergence move only activation literals, never clauses.

   Synchronization with the engine is by physical identity: frames
   remember the cons cell of the state's constraint list they mirror,
   and states forked under the engine's COW discipline share list tails
   physically — so re-syncing after a fork costs only the divergent
   prefix. A session is single-domain: queries from the domain that
   built it reuse it, a stolen or re-homed state rebuilds a fresh one
   (the shared {!Qcache} remains the cross-worker safety net).

   Queries answer through escalating layers: a cached verified model
   (concrete evaluation only), a full-stack incremental solve that also
   repairs that model, and finally the probe's independence component
   routed through {!Solver}'s shared cache + retry pipeline with the
   incremental engine as the decision procedure. Learned clauses are
   retained across all of these (see {!Dpll.Inc}). *)

module S = Solver.For_incr

type frame = {
  f_simp : Expr.t;          (* simplified constraint *)
  f_vars : Expr.var list;   (* variables of [f_simp], deduped *)
  f_sel : int;              (* activation literal; 0 = constant frame *)
  f_false : bool;           (* simplified to constant false *)
  f_cell : Expr.t list;     (* cons cell of the state's constraint list
                               this frame mirrors (sync key) *)
}

type session = {
  owner : int;                         (* building domain's id *)
  mutable sat : Dpll.Inc.t;
  mutable bb : Bitblast.ctx;
  mutable cnf_mark : int;              (* clauses already fed to [sat] *)
  mutable stack : frame list;          (* newest first *)
  mutable nframes : int;
  mutable nfalse : int;                (* frames with [f_false] *)
  sel_memo : (Expr.t, int) Hashtbl.t;  (* simplified expr -> selector *)
  mutable sels : int list;             (* every selector ever allocated *)
  mutable nsels : int;
  env : (int, int) Hashtbl.t;          (* cached model, var id -> value *)
  mutable env_ok : bool;               (* env satisfies the whole stack *)
}

let create () =
  S.note_rebuild ();
  {
    owner = (Domain.self () :> int);
    sat = Dpll.Inc.create ();
    bb = Bitblast.create ();
    cnf_mark = 0;
    stack = [];
    nframes = 0;
    nfalse = 0;
    sel_memo = Hashtbl.create 64;
    sels = [];
    nsels = 0;
    env = Hashtbl.create 64;
    env_ok = true;                     (* empty stack: zeros suffice *)
  }

let owned s = s.owner = (Domain.self () :> int)

let env_model s : Solver.model =
 fun v ->
  match Hashtbl.find_opt s.env v.Expr.id with Some x -> x | None -> 0

(* --- frame maintenance ---------------------------------------------------- *)

let drain s =
  let cnf = Bitblast.cnf s.bb in
  List.iter
    (fun c -> Dpll.Inc.add_clause s.sat (Array.to_list c))
    (Cnf.clauses_since cnf s.cnf_mark);
  s.cnf_mark <- Cnf.clause_count cnf

let selector s simp =
  match Hashtbl.find_opt s.sel_memo simp with
  | Some sel -> sel
  | None ->
      let cnf = Bitblast.cnf s.bb in
      let sel = Cnf.fresh cnf in
      let out = (Bitblast.blast s.bb simp).(0) in
      Cnf.add_clause cnf [ -sel; out ];
      drain s;
      Hashtbl.replace s.sel_memo simp sel;
      s.sels <- sel :: s.sels;
      s.nsels <- s.nsels + 1;
      sel

let dedup_vars e =
  List.sort_uniq (fun a b -> compare a.Expr.id b.Expr.id) (Expr.vars e)

let push s cell raw =
  let simp = Simplify.simplify_bool raw in
  let f =
    if simp = Expr.tru then
      { f_simp = simp; f_vars = []; f_sel = 0; f_false = false; f_cell = cell }
    else if simp = Expr.fls then begin
      s.nfalse <- s.nfalse + 1;
      { f_simp = simp; f_vars = []; f_sel = 0; f_false = true; f_cell = cell }
    end
    else
      { f_simp = simp; f_vars = dedup_vars simp; f_sel = selector s simp;
        f_false = false; f_cell = cell }
  in
  s.stack <- f :: s.stack;
  s.nframes <- s.nframes + 1;
  if s.env_ok && Expr.eval (env_model s) simp <> 1 then s.env_ok <- false

let pop s =
  match s.stack with
  | [] -> ()
  | f :: rest ->
      if f.f_false then s.nfalse <- s.nfalse - 1;
      s.stack <- rest;
      s.nframes <- s.nframes - 1
(* Popping only removes constraints, so a valid env stays valid; an
   invalid one may have become valid again, but we let the next repair
   solve discover that rather than re-verify the stack eagerly. *)

(* A session shared down a fork tree accumulates the circuits of every
   sibling branch it ever mirrored; the dead ones stay in the CNF as
   deactivated clutter that the SAT engine must still walk through. Once
   that clutter dwarfs the live stack, rebuild the engine from the live
   frames alone — one bounded re-blast that keeps every later solve
   proportional to the actual path condition. *)
let compact s =
  let live = List.rev s.stack in
  s.sat <- Dpll.Inc.create ();
  s.bb <- Bitblast.create ();
  s.cnf_mark <- 0;
  Hashtbl.reset s.sel_memo;
  s.sels <- [];
  s.nsels <- 0;
  s.stack <- [];
  s.nframes <- 0;
  s.nfalse <- 0;
  S.note_rebuild ();
  List.iter (fun f -> push s f.f_cell f.f_simp) live

(* Line the stack up with a state's constraint list: pop frames past the
   list's length, then keep popping until the physical cells match (fork
   divergence), then push the new prefix oldest-first. Reused frames are
   precisely the simplification + canonicalization + bit-blast work not
   repeated. *)
let sync s cs =
  let len = List.length cs in
  let pops = ref 0 in
  while s.nframes > len do
    pop s;
    incr pops
  done;
  let rec drop n l = if n <= 0 then l else drop (n - 1) (List.tl l) in
  let tail = ref (drop (len - s.nframes) cs) in
  while
    match s.stack with f :: _ -> not (f.f_cell == !tail) | [] -> false
  do
    pop s;
    incr pops;
    tail := List.tl !tail
  done;
  let reused = s.nframes in
  let rec prefix acc l =
    if l == !tail then acc
    else
      match l with cell :: rest -> ignore cell; prefix (l :: acc) rest | [] -> acc
  in
  let to_push = prefix [] cs in
  List.iter (fun cell -> push s cell (List.hd cell)) to_push;
  S.note_pops !pops;
  S.note_pushes (List.length to_push);
  S.note_skipped_recanon reused;
  if s.nsels > (2 * s.nframes) + 64 then compact s

(* --- incremental SAT plumbing --------------------------------------------- *)

(* [Dpll.Inc] sizes its model to the variables it has integrated, which
   can lag the blasting context's; pad so [Bitblast.model_of] can read
   any blasted literal (unconstrained bits default to false). *)
let padded_model s a =
  let n = Cnf.num_vars (Bitblast.cnf s.bb) + 1 in
  if Array.length a >= n then a
  else begin
    let b = Array.make n false in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let inc_solve s ~budget ~deadline ~positive =
  S.note_sat_solve ();
  S.note_learned_retained (Dpll.Inc.learned s.sat);
  let neg = List.filter (fun l -> not (List.mem l positive)) s.sels in
  let assumptions = List.rev_append positive (List.map (fun l -> -l) neg) in
  Dpll.Inc.solve ~max_conflicts:budget ?deadline s.sat ~assumptions

(* One bounded incremental solve of the entire stack plus the probe.
   Sat rebuilds the cached model (repairing the fast path for subsequent
   queries) and answers the query; Unsat/Unknown say nothing about the
   probe alone (the stack itself could be the unsatisfiable part), so
   the caller falls through to the component solve. *)
let full_repair s se =
  let r = Solver.current_retry () in
  let deadline =
    if r.Solver.deadline_s > 0. then
      Some (Unix.gettimeofday () +. r.Solver.deadline_s)
    else None
  in
  let psels = if se = Expr.tru then [] else [ selector s se ] in
  let positive =
    List.fold_left
      (fun acc f -> if f.f_sel <> 0 then f.f_sel :: acc else acc)
      psels s.stack
  in
  match
    inc_solve s ~budget:r.Solver.base_conflicts ~deadline ~positive
  with
  | None | Some Dpll.Unsat -> false
  | Some (Dpll.Sat a) ->
      let a = padded_model s a in
      Hashtbl.reset s.env;
      let put v = Hashtbl.replace s.env v.Expr.id (Bitblast.model_of s.bb a v) in
      List.iter (fun f -> List.iter put f.f_vars) s.stack;
      List.iter put (dedup_vars se);
      let m = env_model s in
      if
        List.for_all (fun f -> f.f_sel = 0 || Expr.eval m f.f_simp = 1) s.stack
        && (se = Expr.tru || Expr.eval m se = 1)
      then begin
        s.env_ok <- true;
        true
      end
      else begin
        (* A verification failure here would be a blasting bug; answer
           conservatively and let the component path decide. *)
        s.env_ok <- false;
        false
      end

(* Frames transitively variable-connected to the probe — exactly the
   independence group {!Indep.partition} would put the probe in, so the
   shared cache keys line up with the from-scratch pipeline's. *)
let component s se =
  let seen = Hashtbl.create 32 in
  List.iter (fun v -> Hashtbl.replace seen v.Expr.id ()) (Expr.vars se);
  let frames =
    Array.of_list (List.filter (fun f -> f.f_sel <> 0) s.stack)
  in
  let in_comp = Array.make (Array.length frames) false in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun i f ->
        if
          (not in_comp.(i))
          && List.exists (fun v -> Hashtbl.mem seen v.Expr.id) f.f_vars
        then begin
          in_comp.(i) <- true;
          changed := true;
          List.iter (fun v -> Hashtbl.replace seen v.Expr.id ()) f.f_vars
        end)
      frames
  done;
  let comp = ref [] in
  for i = Array.length frames - 1 downto 0 do
    if in_comp.(i) then comp := frames.(i) :: !comp
  done;
  !comp

(* Solve the probe's component through the shared cache + retry pipeline
   with the incremental engine as the decision procedure. *)
let decide s se =
  let comp = component s se in
  let group = se :: List.map (fun f -> f.f_simp) comp in
  let gvars =
    List.sort_uniq
      (fun a b -> compare a.Expr.id b.Expr.id)
      (dedup_vars se @ List.concat_map (fun f -> f.f_vars) comp)
  in
  let positive = selector s se :: List.map (fun f -> f.f_sel) comp in
  (* When the incremental engine gives up (its CNF carries the whole
     session, not just this group), re-blast the group alone from
     scratch — exactly the oracle's final layer — so a session is never
     weaker than the from-scratch pipeline on a hard query. *)
  let scratch_blast ~budget ~deadline =
    S.note_bitblast_solve ();
    let ctx = Bitblast.create () in
    List.iter (Bitblast.assert_true ctx) group;
    match Dpll.solve ~max_conflicts:budget ?deadline (Bitblast.cnf ctx) with
    | Some Dpll.Unsat -> Solver.Unsat
    | None -> Solver.Unknown
    | Some (Dpll.Sat a) ->
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun v -> Hashtbl.replace tbl v.Expr.id (Bitblast.model_of ctx a v))
          gvars;
        let m (v : Expr.var) =
          match Hashtbl.find_opt tbl v.Expr.id with
          | Some x -> x
          | None -> 0
        in
        assert (S.verified group m);
        Solver.Sat m
  in
  let attempt ~budget ~deadline g =
    ignore g;
    match Interval.infer group with
    | None ->
        S.note_interval_solve ();
        Solver.Unsat
    | Some ranges -> (
        (* Cheap verified guesses first, exactly like the from-scratch
           pipeline — almost every query in practice dies here, so the
           incremental engine only sees the hard residue. *)
        match
          List.find_opt
            (fun m -> S.verified group m)
            (Interval.candidates ranges gvars)
        with
        | Some m ->
            S.note_interval_solve ();
            Solver.Sat m
        | None -> (
        (* Leave the incremental engine half the deadline and a fraction
           of the conflict budget: its CNF carries the whole session, so
           a query it cannot settle quickly is cheaper to re-blast alone
           than to grind on, and the scratch fallback inside this same
           attempt keeps the verdict as strong as the oracle's. *)
        let inc_deadline =
          match deadline with
          | None -> None
          | Some d ->
              let now = Unix.gettimeofday () in
              Some (now +. ((d -. now) /. 2.))
        in
        let inc_budget = max 4_096 (budget / 8) in
        match inc_solve s ~budget:inc_budget ~deadline:inc_deadline ~positive with
        | None -> scratch_blast ~budget ~deadline
        | Some Dpll.Unsat -> Solver.Unsat
        | Some (Dpll.Sat a) ->
            let a = padded_model s a in
            let tbl = Hashtbl.create 16 in
            List.iter
              (fun v ->
                Hashtbl.replace tbl v.Expr.id (Bitblast.model_of s.bb a v))
              gvars;
            let m (v : Expr.var) =
              match Hashtbl.find_opt tbl v.Expr.id with
              | Some x -> x
              | None -> 0
            in
            (* Like the from-scratch pipeline, a model that fails
               verification is a blasting bug — fail loudly. *)
            assert (S.verified group m);
            Solver.Sat m))
  in
  let r = S.solve_group_with ~attempt (S.current_accel ()) group in
  (match r with
  | Solver.Sat m ->
      (* Component variables are disjoint from every other frame's, so
         merging the component model into the cached model preserves its
         validity for the rest of the stack. When the cached model was
         stale, the merge may even have completed it — re-check by
         evaluation (cheap) so the fast path comes back without ever
         solving the full stack. *)
      List.iter (fun v -> Hashtbl.replace s.env v.Expr.id (m v)) gvars;
      if not s.env_ok then begin
        let em = env_model s in
        s.env_ok <-
          List.for_all
            (fun f -> f.f_sel = 0 || Expr.eval em f.f_simp = 1)
            s.stack
      end
  | Solver.Unsat | Solver.Unknown -> ());
  r

(* --- queries --------------------------------------------------------------- *)

(* Feasibility of the stack itself. The cached model settles it for
   free; otherwise the stack goes through the shared pipeline
   (independence groups + query cache, so repeated stack checks are
   cache hits), whose Sat model also repairs the cached model for later
   queries. *)
let stack_feasible s =
  s.env_ok
  ||
  (match Solver.check (List.map (fun f -> f.f_simp) s.stack) with
   | Solver.Sat m ->
       List.iter
         (fun f ->
           List.iter (fun v -> Hashtbl.replace s.env v.Expr.id (m v)) f.f_vars)
         s.stack;
       let em = env_model s in
       s.env_ok <-
         List.for_all
           (fun f -> f.f_sel = 0 || Expr.eval em f.f_simp = 1)
           s.stack;
       true
   | Solver.Unknown -> true
   | Solver.Unsat -> false)

let feasible s cs extra =
  S.note_query ();
  S.note_incr_query ();
  sync s cs;
  let se = Simplify.simplify_bool extra in
  if s.nfalse > 0 || se = Expr.fls then false
  else if se = Expr.tru then stack_feasible s
  else if s.env_ok && Expr.eval (env_model s) se = 1 then begin
    S.note_model_hit ();
    true
  end
  else
    match decide s se with
    | Solver.Sat _ ->
        (* The probe's component is satisfiable, but — exactly like the
           from-scratch pipeline, which solves every independence group
           of [probe :: cs] — the verdict is only "feasible" if the rest
           of the stack is too. [decide] merged its model into the
           cached one and revalidated, so this is almost always the
           [env_ok] fast path. *)
        stack_feasible s
    | Solver.Unknown -> true (* like [Solver.is_feasible]: never drop a
                                path that might be real *)
    | Solver.Unsat -> false

let concretize cs ~pinned e =
  S.note_incr_query ();
  let slice = Indep.relevant cs e in
  (* Replay-pinned constraints are audited into the slice even when not
     variable-connected to [e]: a pin contradiction must surface as
     None here, exactly as it would from the full constraint set. *)
  let forced = List.filter (fun p -> not (List.memq p slice)) pinned in
  Solver.concretize (List.rev_append forced slice) e

let witness s cs =
  S.note_incr_query ();
  sync s cs;
  if s.nfalse > 0 then None
  else if s.env_ok then begin
    S.note_model_hit ();
    (* Snapshot: the session's table mutates on later queries. *)
    let snap = Hashtbl.copy s.env in
    Some
      (fun (v : Expr.var) ->
        match Hashtbl.find_opt snap v.Expr.id with Some x -> x | None -> 0)
  end
  else if full_repair s Expr.tru then begin
    let snap = Hashtbl.copy s.env in
    Some
      (fun (v : Expr.var) ->
        match Hashtbl.find_opt snap v.Expr.id with Some x -> x | None -> 0)
  end
  else
    match Solver.check cs with
    | Solver.Sat m -> Some m
    | Solver.Unsat | Solver.Unknown -> None
