(** On-disk content-addressed store for query-cache entries.

    One {!Blob} file per entry, addressed by the digest of its renamed
    canonical key, under a directory whose name carries the caller's key
    (driver name) and the store format version — version bumps orphan
    old entries rather than misread them. Writes are atomic; reads are
    total. A bad store can only cost solve time, never change a verdict:
    corrupt entries are skipped, Sat models are re-verified at import,
    and a failed write (e.g. disk full) makes the store silently
    read-only for the rest of the run.

    Safe under concurrent multi-process access: writers use unique tmp
    files + atomic rename (same digest means same content, so racing
    writers converge), readers racing writers see either no file or a
    complete file, and a file that vanishes mid-scan is skipped and
    counted. Distributed workers share solver work by flushing with
    {!save} and lazily importing each other's flushes with
    {!refresh}. *)

type t

val store_version : int

val open_store : dir:string -> key:string -> (t, string) result
(** Create or open the scoped entry directory [dir/<key>.v<version>]. *)

val load : ?index_subsets:bool -> t -> Qcache.Sharded.sharded -> int
(** Import every readable entry into the cache (deterministic filename
    order); returns how many were imported. Unreadable or refused
    entries are counted in {!skipped}. [index_subsets] is forwarded to
    {!Qcache.Sharded.import_pentry} — pass [false] when the store is
    shared with processes minting variable ids in other lanes. *)

val refresh : ?index_subsets:bool -> t -> Qcache.Sharded.sharded -> int
(** Import only the entries that appeared in the directory since this
    handle's last [load]/[refresh] (and that this handle did not itself
    {!save}) — the lazy cross-process import distributed workers run
    mid-exploration. Returns how many were imported. *)

val save : t -> Qcache.Sharded.sharded -> int
(** Write every entry born in this process that is not already on disk;
    returns how many files were newly written. *)

val dir : t -> string
val loaded : t -> int
val written : t -> int
val skipped : t -> int
val writable : t -> bool
