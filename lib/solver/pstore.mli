(** On-disk content-addressed store for query-cache entries.

    One {!Blob} file per entry, addressed by the digest of its renamed
    canonical key, under a directory whose name carries the caller's key
    (driver name) and the store format version — version bumps orphan
    old entries rather than misread them. Writes are atomic; reads are
    total. A bad store can only cost solve time, never change a verdict:
    corrupt entries are skipped, Sat models are re-verified at import,
    and a failed write (e.g. disk full) makes the store silently
    read-only for the rest of the run. *)

type t

val store_version : int

val open_store : dir:string -> key:string -> (t, string) result
(** Create or open the scoped entry directory [dir/<key>.v<version>]. *)

val load : t -> Qcache.Sharded.sharded -> int
(** Import every readable entry into the cache (deterministic filename
    order); returns how many were imported. Unreadable or refused
    entries are counted in {!skipped}. *)

val save : t -> Qcache.Sharded.sharded -> int
(** Write every entry born in this process that is not already on disk;
    returns how many files were newly written. *)

val dir : t -> string
val loaded : t -> int
val written : t -> int
val skipped : t -> int
val writable : t -> bool
