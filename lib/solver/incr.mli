(** Incremental path-condition solving sessions.

    A session mirrors one symbolic state's path condition as a stack of
    frames over a persistent bit-blasting context and the incremental
    SAT engine {!Dpll.Inc}. Every constraint is simplified, canonicalized
    and bit-blasted at most once per session: its circuit is asserted
    behind an activation literal and enabled per query by assumption, so
    pushing new constraints and popping on fork divergence never
    re-blasts anything, and clauses learned by the SAT engine survive
    across queries (a pop merely deactivates the clauses learned under
    the popped frame's selector — see {!Dpll.Inc}).

    Sessions synchronize with the engine's constraint lists by physical
    identity: states forked under the copy-on-write discipline share
    list tails, so re-syncing costs only the divergent prefix, and one
    session can serve a whole family of sibling states on its domain.
    Sessions are single-domain by construction — a state stolen or
    re-homed to another domain fails {!owned} and gets a fresh session
    there, with the shared {!Qcache} as the cross-worker safety net.

    Queries answer through escalating layers: the session's cached
    verified model (concrete evaluation only), a full-stack incremental
    solve that doubles as model repair, and finally the probe's
    independence component routed through {!Solver}'s shared cache and
    retry/chaos machinery with the incremental engine as the decision
    procedure — so verdicts, cache entries and fault injection line up
    with the from-scratch pipeline. *)

type session

val create : unit -> session
(** A fresh empty session owned by the calling domain. *)

val owned : session -> bool
(** Whether the calling domain built this session. Foreign sessions must
    not be queried (they may be in concurrent use by their owner) —
    rebuild instead. *)

val feasible : session -> Expr.t list -> Expr.t -> bool
(** [feasible s constraints extra] decides whether [extra] is
    satisfiable together with the constraint list, syncing the session
    to the list first. Unknown verdicts count as feasible, exactly like
    {!Solver.is_feasible}. *)

val concretize : Expr.t list -> pinned:Expr.t list -> Expr.t -> int option
(** [concretize constraints ~pinned e] picks a feasible concrete value
    of [e] by querying only the {!Indep.relevant} slice of the
    constraints, with the replay-pinned constraints force-included so a
    pin contradiction still answers [None]. Values agree with
    {!Solver.concretize} on the full set: the slice contains every
    independence group that can influence [e], and groups resolve
    through the same shared cache. Stateless — no session needed. *)

val witness : session -> Expr.t list -> Solver.model option
(** [witness s constraints] returns a verified model of the whole
    constraint list — the cached session model when still valid, else
    one bounded incremental solve, else the from-scratch pipeline.
    [None] when infeasible or undecided. The returned model is a
    snapshot, stable across later session queries. *)
