module Pci = Ddt_kernel.Pci
module Expr = Ddt_solver.Expr

type t = {
  dev : Pci.assigned;
  reads : (string * Expr.var) list Atomic.t;
  (* shared by every state of a session — parallel frontier workers cons
     concurrently, hence the atomic (plain mutation would lose reads) *)
}

let create dev = { dev; reads = Atomic.make [] }
let device t = t.dev

let bar_of t addr =
  let rec go i = function
    | [] -> None
    | bar :: rest ->
        let size =
          match List.nth_opt t.dev.Pci.desc.Pci.bar_sizes i with
          | Some s -> max s 0x1000
          | None -> 0x1000
        in
        if addr >= bar && addr < bar + size then Some (i, addr - bar)
        else go (i + 1) rest
  in
  go 0 t.dev.Pci.bars

let is_device_addr t addr = bar_of t addr <> None

let fresh_read t addr =
  let name =
    match bar_of t addr with
    | Some (i, off) -> Printf.sprintf "hw_bar%d+0x%x" i off
    | None -> Printf.sprintf "hw_0x%x" addr
  in
  let v = Expr.fresh_var ~name Expr.W8 in
  let rec cons () =
    let old = Atomic.get t.reads in
    if not (Atomic.compare_and_set t.reads old ((name, v) :: old)) then cons ()
  in
  cons ();
  Expr.var v

let reads_made t = Atomic.get t.reads

(* Checkpoint restore: the reads ledger is session-global state that a
   resumed run must carry over, or replay scripts for pre-checkpoint
   findings would name variables the device never minted. *)
let restore_reads t l = Atomic.set t.reads l

type concrete_mode =
  | Zeros
  | Random of int
  | Scripted of int list

let concrete_mmio t mode =
  let next =
    match mode with
    | Zeros -> fun () -> 0
    | Random seed ->
        let st = Random.State.make [| seed |] in
        fun () -> Random.State.int st 256
    | Scripted values ->
        let remaining = ref values in
        fun () ->
          (match !remaining with
           | [] -> 0
           | v :: rest ->
               remaining := rest;
               v land 0xFF)
  in
  List.mapi
    (fun i bar ->
      let size =
        match List.nth_opt t.dev.Pci.desc.Pci.bar_sizes i with
        | Some s -> max s 0x1000
        | None -> 0x1000
      in
      { Ddt_dvm.Mem.mmio_start = bar; mmio_size = size;
        mmio_read = (fun _off -> next ());
        mmio_write = (fun _off _v -> ()) })
    t.dev.Pci.bars

let pci_shell ~vendor ~device ?(revision = 1) ?(bar_sizes = [ 0x1000 ])
    ?(irq = 9) () =
  { Pci.vendor_id = vendor; device_id = device; revision; bar_sizes;
    irq_line = irq }
