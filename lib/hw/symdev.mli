(** Fully symbolic hardware (§3.3, §4.1.4 of the paper).

    A symbolic device ignores all writes to its registers and produces a
    fresh unconstrained symbolic value for every read. The symbolic engine
    consults {!is_device_addr}/{!fresh_read}; the concrete engines (replay
    and the stress baseline) install {!concrete_mmio}, which replaces the
    symbolic reads with scripted or pseudo-random values. *)

type t

val create : Ddt_kernel.Pci.assigned -> t


val device : t -> Ddt_kernel.Pci.assigned
val is_device_addr : t -> int -> bool

val fresh_read : t -> int -> Ddt_solver.Expr.t
(** A fresh symbolic byte for a device-register read; names encode the
    register offset so traces show provenance ("hw_bar0+0x04"). *)

val reads_made : t -> (string * Ddt_solver.Expr.var) list
(** Every symbolic variable created by device reads, newest first. *)

val restore_reads : t -> (string * Ddt_solver.Expr.var) list -> unit
(** Checkpoint restore: replace the reads ledger with a saved one
    (as returned by {!reads_made}). *)

(** {1 Concrete stand-ins} *)

type concrete_mode =
  | Zeros
  | Random of int                  (** seed *)
  | Scripted of int list           (** byte values consumed in read order;
                                       zeros once exhausted *)

val concrete_mmio : t -> concrete_mode -> Ddt_dvm.Mem.mmio list
(** One MMIO region per BAR. Writes are discarded in every mode. *)

val pci_shell :
  vendor:int -> device:int -> ?revision:int -> ?bar_sizes:int list ->
  ?irq:int -> unit -> Ddt_kernel.Pci.descriptor
(** The fake-device "shell" of §4.2: a descriptor with vendor/device IDs
    and resource sizes, and no behavior behind it. *)
