(* Multi-process exploration: a coordinator that partitions the fork
   tree by shipping serialized snapshots to worker processes, steals
   work back from busy workers when others drain, and merges per-worker
   results into one report equal (as a sorted bug set) to the
   single-process run's.

   Workers are [Unix.fork] children of the coordinator — the same
   binary, inheriting the configuration by closure, so no setup frame
   crosses the wire and any caller (CLI, bench, tests) can host a
   fleet. Forking without exec is safe here because distributed runs
   force [jobs = 1]: no live domains exist at fork time.

   Soundness across processes rests on two pieces: disjoint variable-id
   lanes ([Expr.set_var_lane] — coordinator lane 0, worker [i] lane
   [i+1]), so every process mints globally unique ids and shipped
   constraints keep their meaning; and subset-index-free imports from
   the shared persistent store ([foreign_store]), so cross-lane cache
   entries can only hit by exact renamed match.

   A worker that dies — crash, OOM kill, [kill -9] — is detected by
   EOF on its pipe; the states it had been shipped and had not yet
   reported are re-shipped from the coordinator's ledger to the
   survivors (or explored locally if none remain). A lost worker costs
   wall time, never a verdict. *)

module Expr = Ddt_solver.Expr
module Solver = Ddt_solver.Solver
module St = Ddt_symexec.Symstate
module Exec = Ddt_symexec.Exec
module Config = Ddt_core.Config
module Session = Ddt_core.Session
module Dist = Session.Dist

type counters = {
  c_workers : int;        (* worker processes requested *)
  c_shipped : int;        (* states shipped coordinator -> workers *)
  c_steals : int;         (* non-empty steal transfers brokered *)
  c_stolen_states : int;  (* states moved by those steals *)
  c_reships : int;        (* states re-shipped after a worker death *)
  c_deaths : int;         (* worker processes lost mid-run *)
  c_store_hits : int;     (* query-cache hits on persistent-store entries *)
  c_wall : float;
}

(* {2 Worker process} *)

let worker_main ~wid ~lanes (conn : Proto.conn) (cfg : Config.t) =
  Expr.set_var_lane ~lane:(wid + 1) ~lanes;
  let d = Dist.prepare ~foreign_store:true cfg in
  let ticks = ref 0 in
  (* Runs at every pick boundary: service steal requests promptly, and
     every so often flush our query-cache entries to the shared store,
     import the other workers' flushes, and heartbeat. *)
  let tick () =
    incr ticks;
    if !ticks land 255 = 0 then begin
      (match Proto.try_recv conn with
       | Ok (Some (Proto.C_steal max_states)) ->
           let give = min max_states (Dist.queue_length d / 2) in
           let imgs = if give > 0 then Dist.export_steal d ~max:give else [] in
           ignore (Proto.send conn (Proto.W_stolen imgs))
       | Ok (Some (Proto.C_explore imgs)) -> Dist.import d imgs
       | Ok (Some Proto.C_shutdown) | Ok None | Error _ -> ());
      if !ticks land 16383 = 0 then begin
        ignore (Dist.flush_store d);
        ignore (Dist.refresh_store d);
        ignore (Proto.send conn (Proto.W_status (Dist.queue_length d)))
      end
    end
  in
  match Proto.send conn Proto.W_ready with
  | Error _ -> ()
  | Ok () ->
      let rec loop () =
        match Proto.recv conn with
        | Ok (Proto.C_explore imgs) ->
            Dist.import d imgs;
            ignore (Dist.refresh_store d);
            Dist.explore d ~tick;
            ignore (Dist.flush_store d);
            let b = Dist.take_batch d in
            (match Proto.send conn (Proto.W_idle b) with
             | Ok () -> loop ()
             | Error _ -> ())
        | Ok (Proto.C_steal _) ->
            (* idle: nothing to donate *)
            (match Proto.send conn (Proto.W_stolen []) with
             | Ok () -> loop ()
             | Error _ -> ())
        | Ok Proto.C_shutdown ->
            ignore (Dist.flush_store d);
            ignore (Proto.send conn Proto.W_bye)
        | Error _ -> ()
      in
      loop ()

(* {2 Coordinator} *)

type worker = {
  w_wid : int;
  w_pid : int;
  w_conn : Proto.conn;
  mutable w_alive : bool;
  mutable w_ready : bool;
  mutable w_ledger : St.image list;
  (* states shipped to this worker and not yet covered by a [W_idle] —
     exactly what must be re-shipped if it dies *)
  mutable w_steal_pending : bool;
}

let spawn_worker ~wid ~lanes (cfg : Config.t) =
  let c_r, c_w = Unix.pipe () in (* coordinator -> worker *)
  let w_r, w_w = Unix.pipe () in (* worker -> coordinator *)
  (* Flush before forking: buffered output would otherwise be emitted
     once per process. *)
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      Unix.close c_w;
      Unix.close w_r;
      let conn = Proto.make ~fd_in:c_r ~fd_out:w_w in
      (try worker_main ~wid ~lanes conn cfg with _ -> ());
      (* Never [exit]: at_exit handlers belong to the coordinator. *)
      Unix._exit 0
  | pid ->
      Unix.close c_r;
      Unix.close w_w;
      {
        w_wid = wid;
        w_pid = pid;
        w_conn = Proto.make ~fd_in:w_r ~fd_out:c_w;
        w_alive = true;
        w_ready = false;
        w_ledger = [];
        w_steal_pending = false;
      }

let split_at n l =
  let rec go n acc = function
    | rest when n <= 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (n - 1) (x :: acc) rest
  in
  go n [] l

let run ?(workers = 2) ?kill_worker (cfg : Config.t) =
  let t0 = Unix.gettimeofday () in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let workers = max 0 workers in
  let lanes = workers + 1 in
  Expr.set_var_lane ~lane:0 ~lanes;
  (* Distributed runs force a single in-process domain (fork safety),
     never checkpoint (durability is the ledger), and scope the shared
     store away from single-process stores — its entries carry
     other-lane variable ids. *)
  let cfg =
    {
      cfg with
      Config.exec_config = { cfg.Config.exec_config with Exec.jobs = 1 };
      checkpoint_every = 0;
      store_dir =
        Option.map (fun r -> Filename.concat r "dist") cfg.Config.store_dir;
    }
  in
  let ws = List.init workers (fun wid -> spawn_worker ~wid ~lanes cfg) in
  let finally () =
    (* Leave no orphans, and leave the lane state so the rest of this
       process keeps minting globally fresh ids: skip the counter past
       every id any lane could have drawn, then return to the dense
       single-process lane. *)
    List.iter
      (fun w ->
        if w.w_alive then begin
          (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] w.w_pid) with Unix.Unix_error _ -> ());
          Proto.close w.w_conn;
          w.w_alive <- false
        end)
      ws;
    Expr.set_var_counter ((Expr.var_counter_value () + 1) * lanes);
    Expr.set_var_lane ~lane:0 ~lanes:1
  in
  try
    let d = Dist.prepare ~foreign_store:true cfg in
    let shipped = ref 0
    and steals = ref 0
    and stolen_states = ref 0
    and reships = ref 0
    and deaths = ref 0 in
    let pending = ref [] in
    let kill_armed = ref kill_worker in
    let mark_dead w =
      if w.w_alive then begin
        w.w_alive <- false;
        incr deaths;
        Proto.close w.w_conn;
        (try ignore (Unix.waitpid [] w.w_pid) with Unix.Unix_error _ -> ());
        if w.w_ledger <> [] then begin
          reships := !reships + List.length w.w_ledger;
          pending := w.w_ledger @ !pending;
          w.w_ledger <- []
        end;
        w.w_steal_pending <- false
      end
    in
    let ship w imgs =
      if imgs <> [] then
        match Proto.send w.w_conn (Proto.C_explore imgs) with
        | Ok () ->
            w.w_ledger <- imgs @ w.w_ledger;
            shipped := !shipped + List.length imgs;
            (match !kill_armed with
             | Some k when k = w.w_wid ->
                 (* Deterministic failure injection for the recovery
                    tests: the victim dies with a non-empty ledger,
                    before it can report anything. *)
                 kill_armed := None;
                 (try Unix.kill w.w_pid Sys.sigkill with
                  | Unix.Unix_error _ -> ())
             | _ -> ())
        | Error _ ->
            pending := imgs @ !pending;
            mark_dead w
    in
    let is_idle w = w.w_alive && w.w_ready && w.w_ledger = [] in
    let handle w = function
      | Proto.W_ready -> w.w_ready <- true
      | Proto.W_status _ -> ()
      | Proto.W_bye -> ()
      | Proto.W_stolen imgs ->
          w.w_steal_pending <- false;
          if imgs <> [] then begin
            incr steals;
            stolen_states := !stolen_states + List.length imgs;
            pending := !pending @ imgs
          end
      | Proto.W_idle b ->
          Dist.merge_batch d ~wid:w.w_wid b;
          w.w_ledger <- []
    in
    let drain w =
      let rec go () =
        if w.w_alive then
          match Proto.try_recv w.w_conn with
          | Ok None -> ()
          | Ok (Some msg) ->
              handle w msg;
              go ()
          | Error _ -> mark_dead w
      in
      go ()
    in
    let dispatch () =
      let idle = List.filter is_idle ws in
      if idle <> [] then
        if !pending <> [] then begin
          (* Partition the backlog across the idle workers, one frame
             each — a frame's states marshal together, preserving the
             sharing between siblings. *)
          let per =
            let n = List.length !pending and k = List.length idle in
            max 1 ((n + k - 1) / k)
          in
          List.iter
            (fun w ->
              if !pending <> [] then begin
                let imgs, rest = split_at per !pending in
                pending := rest;
                ship w imgs
              end)
            idle
        end
        else begin
          (* Nothing queued here but workers are idle: ask one busy
             worker to donate half its frontier. Self-pacing — the next
             request goes out only after this one is answered. *)
          match
            List.find_opt
              (fun w -> w.w_alive && w.w_ledger <> [] && not w.w_steal_pending)
              ws
          with
          | None -> ()
          | Some busy ->
              busy.w_steal_pending <- true;
              (match
                 Proto.send busy.w_conn
                   (Proto.C_steal (8 * List.length idle))
               with
               | Ok () -> ()
               | Error _ -> mark_dead busy)
        end
    in
    (* Explore the current [pending] backlog to exhaustion: ship, steal
       to rebalance, merge results, survive deaths. *)
    let collect () =
      let phase_done () =
        !pending = []
        && List.for_all (fun w -> (not w.w_alive) || w.w_ledger = []) ws
        && List.for_all (fun w -> not w.w_steal_pending) ws
      in
      let rec loop () =
        if not (phase_done ()) then begin
          let alive = List.filter (fun w -> w.w_alive) ws in
          if alive = [] then begin
            (* Every worker is gone: finish this phase locally. *)
            let imgs = !pending in
            pending := [];
            Dist.explore_local d imgs
          end
          else begin
            dispatch ();
            let fds = List.map (fun w -> Proto.fd_in w.w_conn) alive in
            (match Unix.select fds [] [] 0.25 with
             | readable, _, _ ->
                 List.iter
                   (fun w ->
                     if w.w_alive && List.mem (Proto.fd_in w.w_conn) readable
                     then drain w)
                   alive
             | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
            loop ()
          end
        end
      in
      loop ()
    in
    Dist.seed_load_phase d;
    pending := Dist.export_frontier d;
    collect ();
    Dist.end_phase d;
    List.iteri
      (fun i item ->
        let queued = Dist.seed_workload_phase d (i + 1) item in
        if queued > 0 then begin
          pending := Dist.export_frontier d;
          collect ();
          Dist.end_phase d
        end)
      (Dist.config d).Config.workload;
    (* Orderly shutdown: let workers flush their last store entries. *)
    List.iter
      (fun w ->
        if w.w_alive then
          match Proto.send w.w_conn Proto.C_shutdown with
          | Ok () -> (
              match Proto.recv w.w_conn with
              | Ok Proto.W_bye | Ok _ -> ()
              | Error _ -> ())
          | Error _ -> ())
      ws;
    List.iter
      (fun w ->
        if w.w_alive then begin
          (try ignore (Unix.waitpid [] w.w_pid) with Unix.Unix_error _ -> ());
          Proto.close w.w_conn;
          w.w_alive <- false
        end)
      ws;
    let result =
      Dist.dist_finalize d ~workers:(max 1 workers) ~reships:!reships
    in
    (* Brokered steal transfers belong in the same stats slot as
       in-process frontier steals. *)
    let stats =
      {
        result.Session.r_stats with
        Exec.st_steals = result.Session.r_stats.Exec.st_steals + !steals;
      }
    in
    let result = { result with Session.r_stats = stats } in
    let counters =
      {
        c_workers = workers;
        c_shipped = !shipped;
        c_steals = !steals;
        c_stolen_states = !stolen_states;
        c_reships = !reships;
        c_deaths = !deaths;
        c_store_hits =
          result.Session.r_stats.Exec.st_solver.Solver.s_cache_persist_hits;
        c_wall = Unix.gettimeofday () -. t0;
      }
    in
    finally ();
    (result, counters)
  with e ->
    finally ();
    raise e
