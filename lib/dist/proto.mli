(** Coordinator/worker wire protocol.

    Length-prefixed {!Ddt_solver.Blob} frames over pipes or Unix
    sockets. The framing layer is a pure function over an input buffer
    — truncation yields "need more", corruption yields [Error _], and
    neither can hang or misdecode (the blob CRC catches damaged
    payloads). *)

type c2w =
  | C_explore of Ddt_symexec.Symstate.image list
      (** ship these states; answer [W_idle] when the frontier drains *)
  | C_steal of int
      (** donate up to [n] queued states; answer [W_stolen] *)
  | C_shutdown

type w2c =
  | W_ready
  | W_status of int              (** heartbeat: current queue length *)
  | W_stolen of Ddt_symexec.Symstate.image list
  | W_idle of Ddt_core.Session.Dist.batch
  | W_bye

val max_frame : int

(** {2 Pure framing} *)

val frame : string -> string
(** Prefix a payload with its 4-byte little-endian length. *)

val extract : string -> ((string * string) option, string) result
(** [extract buf] is [Ok None] (incomplete), [Ok (Some (payload,
    rest))] (one frame), or [Error _] (unrecoverable length damage). *)

val encode : 'a -> string
(** Blob-encode a message and frame it. *)

val decode_payload : string -> ('a, string) result

(** {2 Connections} *)

type conn

val make : fd_in:Unix.file_descr -> fd_out:Unix.file_descr -> conn
val fd_in : conn -> Unix.file_descr
val close : conn -> unit

val send : conn -> 'a -> (unit, string) result
(** Write one message fully; a dead peer (EPIPE etc.) is [Error _] and
    marks the connection broken. *)

val recv : conn -> ('a, string) result
(** Block until one message arrives. EOF and corruption are [Error _]. *)

val try_recv : conn -> ('a option, string) result
(** Drain whatever is readable without blocking; [Ok None] when no
    complete frame is available yet. *)
