(* Wire protocol between the coordinator and its worker processes.

   Frames are a 4-byte little-endian payload length followed by a
   {!Ddt_solver.Blob}-encoded payload, so every message inherits the
   blob container's magic/version/CRC-32 envelope: a truncated or
   corrupted frame decodes to [Error _], never to a wrong value and
   never to a hang. Frame extraction is a pure function over an input
   buffer (QCheck-tested in isolation); the [conn] layer merely feeds
   it file-descriptor reads. *)

module Blob = Ddt_solver.Blob
module St = Ddt_symexec.Symstate
module Session = Ddt_core.Session

(* Coordinator -> worker. *)
type c2w =
  | C_explore of St.image list
      (* ship these states: inject and explore until the frontier
         drains, then answer [W_idle]. One frame per shipment keeps the
         marshal sharing between sibling states intact. *)
  | C_steal of int
      (* give up to [n] queued states to rebalance; answer [W_stolen]
         (possibly empty) at the next pick boundary *)
  | C_shutdown

(* Worker -> coordinator. *)
type w2c =
  | W_ready                      (* session built, lane claimed *)
  | W_status of int              (* heartbeat: current queue length *)
  | W_stolen of St.image list
  | W_idle of Session.Dist.batch (* frontier drained; cumulative results *)
  | W_bye

(* Frames above this size are corruption by definition — the length
   prefix of a damaged stream must not drive a multi-gigabyte
   allocation. Generous: a full corpus-driver frontier marshals to a
   few MB. *)
let max_frame = 1 lsl 28

let frame payload =
  let n = String.length payload in
  if n > max_frame then invalid_arg "Proto.frame: payload too large";
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

(* Pure incremental extraction: [Ok None] = need more input, [Ok (Some
   (payload, rest))] = one complete frame, [Error _] = the stream is
   unrecoverably damaged (negative or absurd length). *)
let extract buf =
  let len = String.length buf in
  if len < 4 then Ok None
  else
    let n = Int32.to_int (String.get_int32_le buf 0) in
    if n < 0 || n > max_frame then
      Error (Printf.sprintf "bad frame length %d" n)
    else if len < 4 + n then Ok None
    else Ok (Some (String.sub buf 4 n, String.sub buf (4 + n) (len - 4 - n)))

let encode msg = frame (Blob.encode msg)
let decode_payload payload = Blob.decode payload

(* {2 Connections} *)

type conn = {
  fd_in : Unix.file_descr;
  fd_out : Unix.file_descr;
  mutable rbuf : string;         (* unconsumed input bytes *)
  mutable broken : bool;
}

let make ~fd_in ~fd_out = { fd_in; fd_out; rbuf = ""; broken = false }
let fd_in c = c.fd_in

let close c =
  (try Unix.close c.fd_in with Unix.Unix_error _ -> ());
  if c.fd_out <> c.fd_in then
    try Unix.close c.fd_out with Unix.Unix_error _ -> ()

let send c msg =
  if c.broken then Error "connection broken"
  else
    let s = encode msg in
    let n = String.length s in
    let b = Bytes.unsafe_of_string s in
    let rec go off =
      if off >= n then Ok ()
      else
        match Unix.write c.fd_out b off (n - off) with
        | written -> go (off + written)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
        | exception Unix.Unix_error _ ->
            c.broken <- true;
            Error "peer gone"
    in
    go 0

(* One fd read appended to the buffer; [Ok false] = EOF. *)
let read_chunk c =
  let b = Bytes.create 65536 in
  match Unix.read c.fd_in b 0 (Bytes.length b) with
  | 0 -> Ok false
  | n ->
      c.rbuf <- c.rbuf ^ Bytes.sub_string b 0 n;
      Ok true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> Ok true
  | exception Unix.Unix_error _ -> Error "read failed"

let pop_frame c =
  match extract c.rbuf with
  | Error _ as e ->
      c.broken <- true;
      e
  | Ok None -> Ok None
  | Ok (Some (payload, rest)) -> (
      c.rbuf <- rest;
      match decode_payload payload with
      | Ok v -> Ok (Some v)
      | Error e ->
          c.broken <- true;
          Error ("corrupt frame: " ^ e))

(* Blocking receive of one message. *)
let rec recv c =
  if c.broken then Error "connection broken"
  else
    match pop_frame c with
    | Error _ as e -> e
    | Ok (Some v) -> Ok v
    | Ok None -> (
        match read_chunk c with
        | Error _ as e ->
            c.broken <- true;
            e
        | Ok false ->
            c.broken <- true;
            Error "eof"
        | Ok true -> recv c)

(* Non-blocking receive: drain whatever is readable right now; [Ok
   None] when no complete frame is available. *)
let rec try_recv c =
  if c.broken then Error "connection broken"
  else
    match pop_frame c with
    | Error _ as e -> e
    | Ok (Some v) -> Ok (Some v)
    | Ok None -> (
        match Unix.select [ c.fd_in ] [] [] 0.0 with
        | [], _, _ -> Ok None
        | _ -> (
            match read_chunk c with
            | Error _ as e ->
                c.broken <- true;
                e
            | Ok false ->
                c.broken <- true;
                Error "eof"
            | Ok true -> try_recv c)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> Ok None)
