(* [ddt_cli serve]: a Unix-socket daemon that runs test jobs through
   the distributed coordinator, and the matching [submit] client.

   One job at a time (the coordinator already saturates the machine);
   admission control is the resource [Governor] forced onto every job's
   configuration. Responses are newline-delimited JSON: an acceptance
   (or error) object first, then the full schema report. The job
   request itself travels as one {!Proto} frame, so a truncated or
   corrupt submission is a clean error, never a hang. *)

module Config = Ddt_core.Config
module Governor = Ddt_core.Governor
module Report_json = Ddt_core.Report_json

type job = {
  jq_driver : string;
  jq_fixed : bool;       (* run the repaired variant *)
  jq_workers : int;      (* worker processes for this job *)
}

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_line fd s =
  let s = s ^ "\n" in
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error _ -> ()
  in
  go 0

(* Admission control: every served job runs under the resource
   governor, whatever its submitted configuration says. *)
let admit (cfg : Config.t) =
  match cfg.Config.governor with
  | Some _ -> cfg
  | None -> { cfg with Config.governor = Some Governor.default_limits }

let handle_client ~resolve fd =
  let conn = Proto.make ~fd_in:fd ~fd_out:fd in
  (match Proto.recv conn with
   | Error e ->
       write_line fd
         (Printf.sprintf "{\"serve\":\"error\",\"message\":\"bad request: %s\"}"
            (json_escape e))
   | Ok (job : job) -> (
       match resolve job with
       | Error e ->
           write_line fd
             (Printf.sprintf "{\"serve\":\"error\",\"message\":\"%s\"}"
                (json_escape e))
       | Ok cfg ->
           let cfg = admit cfg in
           write_line fd
             (Printf.sprintf
                "{\"serve\":\"accepted\",\"driver\":\"%s\",\"workers\":%d}"
                (json_escape cfg.Config.driver_name)
                (max 0 job.jq_workers));
           let result, counters =
             Dist.run ~workers:(max 0 job.jq_workers) cfg
           in
           write_line fd
             (Printf.sprintf
                "{\"serve\":\"done\",\"wall\":%.3f,\"shipped\":%d,\"steals\":%d,\"reships\":%d}"
                counters.Dist.c_wall counters.Dist.c_shipped
                counters.Dist.c_steals counters.Dist.c_reships);
           write_line fd
             (Report_json.to_string (Report_json.of_result result))));
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve ~socket_path ?(max_jobs = 0) ~resolve () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let cleanup () =
    (try Unix.close srv with Unix.Unix_error _ -> ());
    try Unix.unlink socket_path with Unix.Unix_error _ -> ()
  in
  try
    Unix.bind srv (Unix.ADDR_UNIX socket_path);
    Unix.listen srv 8;
    let jobs = ref 0 in
    let continue () = max_jobs = 0 || !jobs < max_jobs in
    while continue () do
      match Unix.accept srv with
      | fd, _ ->
          incr jobs;
          handle_client ~resolve fd
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done;
    cleanup ();
    Ok !jobs
  with
  | Unix.Unix_error (e, _, _) ->
      cleanup ();
      Error (Unix.error_message e)
  | e ->
      cleanup ();
      Error (Printexc.to_string e)

let submit ~socket_path (job : job) =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let close () = try Unix.close fd with Unix.Unix_error _ -> () in
  match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
  | exception Unix.Unix_error (e, _, _) ->
      close ();
      Error (Printf.sprintf "connect %s: %s" socket_path (Unix.error_message e))
  | () -> (
      let conn = Proto.make ~fd_in:fd ~fd_out:fd in
      match Proto.send conn job with
      | Error e ->
          close ();
          Error e
      | Ok () ->
          (* Read the newline-delimited JSON response until the server
             closes the stream. *)
          let buf = Buffer.create 4096 in
          let chunk = Bytes.create 65536 in
          let rec drain () =
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> ()
            | n ->
                Buffer.add_subbytes buf chunk 0 n;
                drain ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
            | exception Unix.Unix_error _ -> ()
          in
          drain ();
          close ();
          let lines =
            List.filter
              (fun l -> String.trim l <> "")
              (String.split_on_char '\n' (Buffer.contents buf))
          in
          if lines = [] then Error "empty response" else Ok lines)
