(** Multi-process exploration: snapshot-shipping coordinator with
    work-stealing workers.

    [run ~workers cfg] forks [workers] child processes of the current
    binary, partitions each workload phase's fork tree by shipping
    serialized states ({!Ddt_symexec.Symstate.image}) to idle workers,
    rebalances by stealing from busy ones, and merges per-worker bug
    sinks, coverage and statistics into one report whose sorted bug set
    equals the single-process run's. Workers share solver work through
    the persistent store ({!Ddt_solver.Pstore}): each flushes its
    query-cache entries as it goes and lazily imports the others'.

    Fault model: a worker that dies for any reason (crash, OOM killer,
    [kill -9]) is detected by pipe EOF; every state it had been shipped
    but had not yet reported is re-shipped from the coordinator's
    ledger to the survivors — or explored locally if none remain. A
    lost worker costs wall time, never a verdict. *)

type counters = {
  c_workers : int;        (** worker processes requested *)
  c_shipped : int;        (** states shipped coordinator -> workers *)
  c_steals : int;         (** non-empty steal transfers brokered *)
  c_stolen_states : int;  (** states moved by those steals *)
  c_reships : int;        (** states re-shipped after a worker death *)
  c_deaths : int;         (** worker processes lost mid-run *)
  c_store_hits : int;
  (** query-cache hits on entries imported from the shared persistent
      store (cross-process solver-work reuse) *)
  c_wall : float;
}

val run :
  ?workers:int -> ?kill_worker:int -> Ddt_core.Config.t ->
  Ddt_core.Session.result * counters
(** Run one distributed session. [workers = 0] degenerates to a local
    run through the same code path. [kill_worker] is deterministic
    failure injection for the recovery tests: that worker is SIGKILLed
    immediately after its first shipment, while its ledger is
    non-empty. The configuration is normalized for distribution:
    in-process [jobs] forced to 1 (fork safety), checkpointing off, and
    the persistent store scoped under [<store_dir>/dist]. *)
