(** Unix-socket job daemon ([ddt_cli serve]) and its client
    ([ddt_cli submit]).

    The server accepts one framed {!job} per connection, resolves it to
    a configuration (corpus lookup lives in the caller), forces the
    resource {!Ddt_core.Governor} onto it — admission control: a served
    job can never run ungoverned — runs it through {!Dist.run}, and
    streams newline-delimited JSON back: an acceptance object, a
    completion object with the distribution counters, then the full
    schema report ({!Ddt_core.Report_json}). Jobs run one at a time;
    the coordinator already saturates the machine. *)

type job = {
  jq_driver : string;
  jq_fixed : bool;       (** run the repaired variant *)
  jq_workers : int;      (** worker processes for this job *)
}

val serve :
  socket_path:string ->
  ?max_jobs:int ->
  resolve:(job -> (Ddt_core.Config.t, string) result) ->
  unit ->
  (int, string) result
(** Bind [socket_path] (unlinking any stale socket first) and serve
    jobs sequentially. [max_jobs > 0] exits cleanly after that many
    jobs (the smoke-test mode); 0 serves forever. Returns the number of
    jobs handled. *)

val submit : socket_path:string -> job -> (string list, string) result
(** Send one job and return the server's response lines (JSON objects;
    the last is the full report). *)
