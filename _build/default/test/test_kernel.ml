(* Unit tests for ddt_kernel: state management, locks/IRQL, timers,
   allocation tracking, API dispatch through a concrete Mach. *)

open Ddt_kernel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let device () =
  Pci.assign_resources
    { Pci.vendor_id = 0x10EC; device_id = 0x8029; revision = 1;
      bar_sizes = [ 0x1000 ]; irq_line = 9 }
    ~mmio_base:Ddt_dvm.Layout.mmio_base

let fresh_ks ?registry () = Kstate.create ?registry ~device:(device ()) ()

(* A concrete Mach over a plain byte table, for driving kernel APIs from
   tests without any engine. *)
let concrete_mach ks =
  let mem = Hashtbl.create 64 in
  let read_u8 a = try Hashtbl.find mem a with Not_found -> 0 in
  let write_u8 a v = Hashtbl.replace mem a (v land 0xFF) in
  let read_u32 a =
    read_u8 a lor (read_u8 (a + 1) lsl 8) lor (read_u8 (a + 2) lsl 16)
    lor (read_u8 (a + 3) lsl 24)
  in
  let write_u32 a v =
    for i = 0 to 3 do write_u8 (a + i) ((v lsr (8 * i)) land 0xFF) done
  in
  let args = ref [||] in
  let ret = ref 0 in
  let mach =
    {
      Mach.arg = (fun i -> !args.(i));
      arg_expr = (fun i -> Ddt_solver.Expr.word !args.(i));
      set_ret = (fun v -> ret := v);
      get_ret = (fun () -> !ret);
      set_ret_expr = (fun _ -> ());
      read_u32;
      write_u32;
      read_u8;
      write_u8;
      read_expr_u32 = (fun a -> Ddt_solver.Expr.word (read_u32 a));
      write_expr_u32 = (fun _ _ -> ());
      read_expr_u8 = (fun a -> Ddt_solver.Expr.byte (read_u8 a));
      write_expr_u8 =
        (fun a e ->
          match e with
          | Ddt_solver.Expr.Const (_, v) -> write_u8 a v
          | _ -> ());
      fresh_symbolic = (fun _ w -> Ddt_solver.Expr.const w 0);
      assume = (fun _ -> ());
      fork = (fun _alts -> () (* concrete: stay on the primary path *));
      discard = (fun _ -> ());
      cur_pc = (fun () -> 0);
      kstate = (fun () -> ks);
    }
  in
  let call name actual_args =
    args := Array.of_list actual_args;
    Kapi.call ks mach name;
    !ret
  in
  (mach, call, write_u32, read_u32, write_u8)

let () = Ndis.install (); Portcls.install ()

(* --- allocation tracking ------------------------------------------------ *)

let test_alloc_free () =
  let ks = fresh_ks () in
  let a = Kstate.heap_alloc ks ~size:64 ~kind:Kstate.Pool ~tag:7 in
  check_bool "granted" true
    (Kstate.region_containing ks a.Kstate.a_addr <> None);
  check_int "one live" 1 (List.length (Kstate.live_allocs ks));
  Kstate.free_alloc ks a;
  check_int "none live" 0 (List.length (Kstate.live_allocs ks));
  check_bool "revoked" true (Kstate.region_containing ks a.Kstate.a_addr = None)

let test_red_zone () =
  let ks = fresh_ks () in
  let a = Kstate.heap_alloc ks ~size:16 ~kind:Kstate.Pool ~tag:0 in
  let b = Kstate.heap_alloc ks ~size:16 ~kind:Kstate.Pool ~tag:0 in
  check_bool "red zone gap" true
    (b.Kstate.a_addr >= a.Kstate.a_addr + 16 + 16);
  (* An off-by-one access past [a] lands in no region. *)
  check_bool "gap unowned" true
    (Kstate.region_containing ks (a.Kstate.a_addr + 16) = None)

let test_invocation_ledger () =
  let ks = fresh_ks () in
  Kstate.begin_invocation ks "initialize";
  let inv = Kstate.invocation ks in
  let _ = Kstate.heap_alloc ks ~size:8 ~kind:Kstate.Pool ~tag:0 in
  let b = Kstate.heap_alloc ks ~size:8 ~kind:Kstate.Packet ~tag:0 in
  Kstate.free_alloc ks b;
  check_int "one live from invocation" 1
    (List.length (Kstate.live_allocs_of_invocation ks inv));
  Kstate.begin_invocation ks "send";
  check_int "none from new invocation" 0
    (List.length (Kstate.live_allocs_of_invocation ks (Kstate.invocation ks)))

(* --- locks and IRQL ----------------------------------------------------- *)

let test_lock_irql_discipline () =
  let ks = fresh_ks () in
  check_int "passive initially" Kstate.passive_level (Kstate.irql ks);
  Kstate.init_lock ks 0x1000;
  Kstate.acquire_lock ks 0x1000 ~dpr:false;
  check_int "raised to dispatch" Kstate.dispatch_level (Kstate.irql ks);
  Kstate.release_lock ks 0x1000 ~dpr:false;
  check_int "restored" Kstate.passive_level (Kstate.irql ks)

let test_dpr_release_restores_stale_irql () =
  (* The Intel Pro/100 failure mode: Dpr acquire at DISPATCH, then a plain
     release drops the IRQL to whatever the lock object last saved. *)
  let ks = fresh_ks () in
  Kstate.init_lock ks 0x1000;
  Kstate.set_irql ks Kstate.dispatch_level;
  Kstate.acquire_lock ks 0x1000 ~dpr:true;
  check_int "still dispatch" Kstate.dispatch_level (Kstate.irql ks);
  Kstate.release_lock ks 0x1000 ~dpr:false;
  check_int "stale passive restored" Kstate.passive_level (Kstate.irql ks)

let test_release_unheld_bugchecks () =
  let ks = fresh_ks () in
  Kstate.init_lock ks 0x1000;
  (match Kstate.release_lock ks 0x1000 ~dpr:false with
   | exception Bugcheck.Bugcheck (Bugcheck.Spin_lock_not_owned, _) -> ()
   | _ -> Alcotest.fail "expected bugcheck")

let test_uninitialized_timer_bugchecks () =
  let ks = fresh_ks () in
  (match Kstate.set_timer ks ~addr:0x2000 ~periodic:false with
   | exception Bugcheck.Bugcheck (Bugcheck.Bad_timer, _) -> ()
   | _ -> Alcotest.fail "expected bugcheck");
  Kstate.init_timer ks ~addr:0x2000 ~func:0x400100 ~ctx:5;
  Kstate.set_timer ks ~addr:0x2000 ~periodic:false;
  check_int "armed" 1 (List.length (Kstate.due_timers ks))

(* --- interrupt orchestration --------------------------------------------- *)

let test_interrupt_protocol () =
  let ks = fresh_ks () in
  check_bool "no isr yet" true (Intr.begin_isr ks = None);
  Kstate.set_entry_point ks "isr" 0x400200;
  Kstate.set_entry_point ks "dpc" 0x400300;
  Kstate.set_driver_ctx ks 77;
  Kstate.set_isr_registered ks true;
  (match Intr.begin_isr ks with
   | Some (call, saved) ->
       check_int "isr addr" 0x400200 call.Intr.call_addr;
       check_bool "ctx arg" true (call.Intr.call_args = [ 77 ]);
       check_int "saved irql" Kstate.passive_level saved;
       check_int "device level" Kstate.device_level (Kstate.irql ks);
       check_bool "in isr" true (Kstate.in_isr ks);
       (* ISR queues the DPC. *)
       (match Intr.after_isr ks ~saved_irql:saved ~isr_ret:3 with
        | Some dpc ->
            check_int "dpc addr" 0x400300 dpc.Intr.call_addr;
            check_bool "in dpc" true (Kstate.in_dpc ks);
            check_int "dispatch" Kstate.dispatch_level (Kstate.irql ks);
            Intr.finish ks ~saved_irql:saved;
            check_int "restored" Kstate.passive_level (Kstate.irql ks);
            check_bool "out of dpc" false (Kstate.in_dpc ks)
        | None -> Alcotest.fail "expected dpc")
   | None -> Alcotest.fail "expected isr")

let test_dpc_deferred_at_dispatch () =
  let ks = fresh_ks () in
  Kstate.set_entry_point ks "isr" 0x400200;
  Kstate.set_entry_point ks "dpc" 0x400300;
  Kstate.set_isr_registered ks true;
  Kstate.set_irql ks Kstate.dispatch_level;
  (match Intr.begin_isr ks with
   | Some (_, saved) ->
       check_int "saved dispatch" Kstate.dispatch_level saved;
       check_bool "dpc deferred when interrupted code was at dispatch" true
         (Intr.after_isr ks ~saved_irql:saved ~isr_ret:3 = None)
   | None -> Alcotest.fail "expected isr")

(* --- API dispatch -------------------------------------------------------- *)

let test_ndis_config_apis () =
  let ks = fresh_ks ~registry:[ ("Speed", 100) ] () in
  let _, call, _, read_u32, write_u8 = concrete_mach ks in
  let out_ptr = 0x5000 in
  check_int "open ok" 0 (call "NdisOpenConfiguration" [ out_ptr ]);
  let handle = read_u32 out_ptr in
  check_bool "kernel handle" true (handle >= Ddt_dvm.Layout.kernel_base);
  (* Write the parameter name string where the kernel will read it. *)
  let name_ptr = 0x5100 in
  String.iteri (fun i c -> write_u8 (name_ptr + i) (Char.code c)) "Speed";
  write_u8 (name_ptr + 5) 0;
  check_int "registry value" 100
    (call "NdisReadConfiguration" [ handle; name_ptr; 42 ]);
  let other = 0x5200 in
  String.iteri (fun i c -> write_u8 (other + i) (Char.code c)) "Nope";
  write_u8 (other + 4) 0;
  check_int "default value" 42
    (call "NdisReadConfiguration" [ handle; other; 42 ]);
  check_int "close ok" 0 (call "NdisCloseConfiguration" [ handle ]);
  check_int "nothing live" 0 (List.length (Kstate.live_allocs ks))

let test_ndis_alloc_apis () =
  let ks = fresh_ks () in
  let _, call, _, read_u32, _ = concrete_mach ks in
  let out = 0x5000 in
  check_int "alloc ok" 0 (call "NdisAllocateMemoryWithTag" [ out; 128; 99 ]);
  let addr = read_u32 out in
  check_bool "heap addr" true (addr >= Ddt_dvm.Layout.heap_base);
  check_int "free ok" 0 (call "NdisFreeMemory" [ addr; 128; 0 ]);
  (match call "NdisFreeMemory" [ addr; 128; 0 ] with
   | exception Bugcheck.Bugcheck (Bugcheck.Verifier_detected, _) -> ()
   | _ -> Alcotest.fail "double free must bugcheck")

let test_passive_only_at_dispatch_crashes () =
  let ks = fresh_ks () in
  let _, call, _, _, _ = concrete_mach ks in
  Kstate.set_irql ks Kstate.dispatch_level;
  (match call "NdisOpenConfiguration" [ 0x5000 ] with
   | exception Bugcheck.Bugcheck (Bugcheck.Irql_not_less_or_equal, _) -> ()
   | _ -> Alcotest.fail "expected IRQL bugcheck")

let test_miniport_registration () =
  let ks = fresh_ks () in
  let _, call, write_u32, _, _ = concrete_mach ks in
  let chars = 0x6000 in
  List.iteri
    (fun i addr -> write_u32 (chars + (4 * i)) addr)
    [ 0x400100; 0x400200; 0x400300; 0x400400; 0x400500; 0x400600; 0x400700; 0 ];
  check_int "register ok" 0 (call "NdisMRegisterMiniport" [ chars ]);
  check_bool "initialize" true
    (Kstate.entry_point ks "initialize" = Some 0x400100);
  check_bool "halt" true (Kstate.entry_point ks "halt" = Some 0x400700);
  check_bool "no reset" true (Kstate.entry_point ks "reset" = None);
  check_int "set attributes" 0 (call "NdisMSetAttributes" [ 0xABCD ]);
  check_int "driver ctx" 0xABCD (Kstate.driver_ctx ks);
  check_int "register interrupt" 0 (call "NdisMRegisterInterrupt" [ 9 ]);
  check_bool "isr live" true (Kstate.isr_registered ks)

let test_memory_utilities () =
  let ks = fresh_ks () in
  let _, call, write_u32, read_u32, write_u8 = concrete_mach ks in
  let a = Kstate.heap_alloc ks ~size:32 ~kind:Kstate.Pool ~tag:0 in
  let b = Kstate.heap_alloc ks ~size:32 ~kind:Kstate.Pool ~tag:0 in
  let src = a.Kstate.a_addr and dst = b.Kstate.a_addr in
  write_u32 src 0xAABBCCDD;
  write_u8 (src + 4) 0x7F;
  check_int "move ok" 0 (call "NdisMoveMemory" [ dst; src; 8 ]);
  check_int "copied word" 0xAABBCCDD (read_u32 dst);
  check_int "zero ok" 0 (call "NdisZeroMemory" [ dst; 8 ]);
  check_int "zeroed" 0 (read_u32 dst);
  check_int "equal after zeroing both" 1
    (let _ = call "NdisZeroMemory" [ src; 8 ] in
     call "NdisEqualMemory" [ src; dst; 8 ]);
  (* Out-of-bounds request: the checked kernel bugchecks. *)
  (match call "NdisMoveMemory" [ dst; src; 64 ] with
   | exception Bugcheck.Bugcheck (Bugcheck.Verifier_detected, _) -> ()
   | _ -> Alcotest.fail "overlong copy must bugcheck")

let test_shared_memory () =
  let ks = fresh_ks () in
  let _, call, _, read_u32, _ = concrete_mach ks in
  let va_out = 0x5000 and pa_out = 0x5004 in
  check_int "alloc ok" 0
    (call "NdisMAllocateSharedMemory" [ va_out; pa_out; 256 ]);
  let va = read_u32 va_out in
  check_int "va = pa in this machine" va (read_u32 pa_out);
  check_int "tracked as a resource" 1 (List.length (Kstate.live_allocs ks));
  check_int "free ok" 0 (call "NdisMFreeSharedMemory" [ va ]);
  check_int "released" 0 (List.length (Kstate.live_allocs ks))

let test_packet_and_buffer_pools () =
  let ks = fresh_ks () in
  let _, call, _, read_u32, _ = concrete_mach ks in
  let out = 0x5000 in
  check_int "packet pool" 0 (call "NdisAllocatePacketPool" [ out; 16 ]);
  let pool = read_u32 out in
  check_int "packet" 0 (call "NdisAllocatePacket" [ out; pool ]);
  let pkt = read_u32 out in
  check_bool "packet memory granted" true
    (Kstate.region_containing ks pkt <> None);
  check_int "free packet" 0 (call "NdisFreePacket" [ pkt ]);
  check_int "free pool" 0 (call "NdisFreePacketPool" [ pool ]);
  (match call "NdisAllocatePacket" [ out; pool ] with
   | exception Bugcheck.Bugcheck (Bugcheck.Bad_handle, _) -> ()
   | _ -> Alcotest.fail "allocation from a freed pool must bugcheck")

let test_map_io_and_pci_slot () =
  let ks = fresh_ks () in
  let _, call, _, read_u32, _ = concrete_mach ks in
  let out = 0x5000 in
  check_int "map ok" 0 (call "NdisMMapIoSpace" [ out; 0 ]);
  let bar = read_u32 out in
  check_int "bar address" Ddt_dvm.Layout.mmio_base bar;
  check_bool "mmio granted" true (Kstate.region_containing ks bar <> None);
  (* PCI config space through the kernel. *)
  let buf = 0x5100 in
  check_int "read 2 bytes" 2
    (call "NdisReadPciSlotInformation" [ 0; buf; 2 ]);
  let _, _, _, read_u32', _ = concrete_mach ks in
  ignore read_u32';
  ()

let test_usb_descriptor_and_urbs () =
  Usb.install ();
  let ks = fresh_ks () in
  let _, call, write_u32, read_u32, _ = concrete_mach ks in
  (* Enumeration descriptor. *)
  let buf = 0x5000 in
  check_int "descriptor length" 18 (call "UsbGetDeviceDescriptor" [ buf; 18 ]);
  let bytes = Usb.descriptor_bytes Usb.default_descriptor in
  check_int "bLength" bytes.(0) 18;
  (* OUT transfer: reports full length, discards data. *)
  let a = Kstate.heap_alloc ks ~size:64 ~kind:Kstate.Pool ~tag:0 in
  let urb = Kstate.scratch_alloc ks ~size:32 ~note:"urb" in
  write_u32 (urb + 0) 2;                 (* endpoint *)
  write_u32 (urb + 4) 0;                 (* OUT *)
  write_u32 (urb + 8) a.Kstate.a_addr;
  write_u32 (urb + 12) 64;
  check_int "submit ok" 0 (call "UsbSubmitUrb" [ urb ]);
  check_int "status success" 0 (read_u32 (urb + 16));
  check_int "actual = requested for OUT" 64 (read_u32 (urb + 20));
  (* Unowned buffer bugchecks. *)
  write_u32 (urb + 8) 0x123456;
  (match call "UsbSubmitUrb" [ urb ] with
   | exception Bugcheck.Bugcheck (Bugcheck.Verifier_detected, _) -> ()
   | _ -> Alcotest.fail "unowned transfer buffer must bugcheck");
  (* Interrupt endpoint registration behaves like an ISR. *)
  check_int "register ok" 0
    (call "UsbRegisterInterruptEndpoint" [ 1; 0x400100; 77 ]);
  check_bool "isr live" true (Kstate.isr_registered ks);
  check_bool "handler recorded" true
    (Kstate.entry_point ks "isr" = Some 0x400100);
  check_int "isr ctx" 77 (Intr.isr_ctx ks);
  (match call "UsbRegisterInterruptEndpoint" [ 1; 0; 0 ] with
   | exception Bugcheck.Bugcheck (Bugcheck.Null_handler, _) -> ()
   | _ -> Alcotest.fail "null handler must bugcheck")

let test_pci_config_space () =
  let dev = device () in
  check_int "vendor lo" 0xEC (Pci.read_config dev 0);
  check_int "vendor hi" 0x10 (Pci.read_config dev 1);
  check_int "device lo" 0x29 (Pci.read_config dev 2);
  check_int "irq line" 9 (Pci.read_config dev 0x3C);
  (* BAR 0 was assigned at mmio_base. *)
  let bar0 =
    Pci.read_config dev 0x10
    lor (Pci.read_config dev 0x11 lsl 8)
    lor (Pci.read_config dev 0x12 lsl 16)
    lor (Pci.read_config dev 0x13 lsl 24)
  in
  check_int "bar0" Ddt_dvm.Layout.mmio_base bar0

let test_kstate_copy_isolation () =
  let ks = fresh_ks () in
  Kstate.init_lock ks 0x1000;
  let a = Kstate.heap_alloc ks ~size:8 ~kind:Kstate.Pool ~tag:0 in
  let ks2 = Kstate.copy ks in
  Kstate.acquire_lock ks2 0x1000 ~dpr:false;
  Kstate.free_alloc ks2 (Option.get (Kstate.alloc_of_addr ks2 a.Kstate.a_addr));
  check_bool "original lock free" true
    ((Option.get (Kstate.lock_at ks 0x1000)).Kstate.l_held = false);
  check_int "original alloc live" 1 (List.length (Kstate.live_allocs ks));
  check_int "copy alloc freed" 0 (List.length (Kstate.live_allocs ks2))

let () =
  Alcotest.run "ddt_kernel"
    [ ("allocation",
       [ Alcotest.test_case "alloc/free" `Quick test_alloc_free;
         Alcotest.test_case "red zones" `Quick test_red_zone;
         Alcotest.test_case "invocation ledger" `Quick test_invocation_ledger ]);
      ("locks",
       [ Alcotest.test_case "irql discipline" `Quick test_lock_irql_discipline;
         Alcotest.test_case "stale irql on wrong release" `Quick
           test_dpr_release_restores_stale_irql;
         Alcotest.test_case "release unheld bugchecks" `Quick
           test_release_unheld_bugchecks ]);
      ("timers",
       [ Alcotest.test_case "uninitialized timer" `Quick
           test_uninitialized_timer_bugchecks ]);
      ("interrupts",
       [ Alcotest.test_case "isr/dpc protocol" `Quick test_interrupt_protocol;
         Alcotest.test_case "dpc deferred at dispatch" `Quick
           test_dpc_deferred_at_dispatch ]);
      ("apis",
       [ Alcotest.test_case "configuration" `Quick test_ndis_config_apis;
         Alcotest.test_case "allocation" `Quick test_ndis_alloc_apis;
         Alcotest.test_case "irql enforcement" `Quick
           test_passive_only_at_dispatch_crashes;
         Alcotest.test_case "miniport registration" `Quick
           test_miniport_registration;
         Alcotest.test_case "memory utilities" `Quick test_memory_utilities;
         Alcotest.test_case "shared memory" `Quick test_shared_memory;
         Alcotest.test_case "packet/buffer pools" `Quick
           test_packet_and_buffer_pools;
         Alcotest.test_case "map io + pci slot" `Quick test_map_io_and_pci_slot;
         Alcotest.test_case "usb descriptors and urbs" `Quick
           test_usb_descriptor_and_urbs;
         Alcotest.test_case "pci config space" `Quick test_pci_config_space;
         Alcotest.test_case "copy isolation" `Quick test_kstate_copy_isolation ]) ]
