(* End-to-end over the full corpus: DDT must find every Table 2 bug kind
   in every buggy driver, and nothing in the fixed variants (the paper
   reports zero false positives). *)

open Ddt_core
module Report = Ddt_checkers.Report
module Corpus = Ddt_drivers.Corpus

let run ?(fixed = false) entry =
  Ddt.test_driver (Corpus.config ~fixed entry)

let expected_kind_counts entry =
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun (k, _) ->
      Hashtbl.replace tbl k (1 + try Hashtbl.find tbl k with Not_found -> 0))
    entry.Corpus.expected_bugs;
  tbl

let check_driver entry () =
  let r = run entry in
  Format.printf "%a@." Ddt.pp_report r;
  let found = List.map (fun b -> b.Report.b_kind) r.Session.r_bugs in
  let count k = List.length (List.filter (( = ) k) found) in
  Hashtbl.iter
    (fun k expected ->
      let msg =
        Printf.sprintf "%s: %d x %s" entry.Corpus.short expected
          (Report.string_of_kind k)
      in
      Alcotest.(check bool) msg true (count k >= expected))
    (expected_kind_counts entry)

let check_fixed entry () =
  let r = run ~fixed:true entry in
  List.iter
    (fun b -> Format.printf "unexpected in fixed %s: %a@." entry.Corpus.short
        Report.pp_bug b)
    r.Session.r_bugs;
  Alcotest.(check int)
    (entry.Corpus.short ^ " fixed variant is clean")
    0
    (List.length r.Session.r_bugs)

let total_bug_count () =
  (* The headline number: 14 bugs across the six drivers. *)
  let total =
    List.fold_left
      (fun acc e -> acc + List.length (run e).Session.r_bugs)
      0 Corpus.all
  in
  Alcotest.(check bool)
    (Printf.sprintf "found %d bugs total (paper: 14 across 6 drivers)" total)
    true (total >= 14)

let () =
  let driver_cases =
    List.concat_map
      (fun e ->
        [ Alcotest.test_case (e.Corpus.short ^ " buggy") `Quick
            (check_driver e);
          Alcotest.test_case (e.Corpus.short ^ " fixed") `Quick
            (check_fixed e) ])
      Corpus.all
  in
  Alcotest.run "ddt_e2e_corpus"
    [ ("drivers", driver_cases);
      ("summary",
       [ Alcotest.test_case "14 bugs total" `Quick total_bug_count ]) ]
