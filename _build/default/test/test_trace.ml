(* Tests for ddt_trace: events, execution trees, replay scripts, crash
   dumps. *)

open Ddt_trace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* --- events ------------------------------------------------------------- *)

let test_event_pcs () =
  let events =
    [ Event.E_exec 3; Event.E_kcall { pc = 2; name = "X" }; Event.E_exec 2;
      Event.E_exec 1 ]
  in
  Alcotest.(check (list int)) "oldest first" [ 1; 2; 3 ] (Event.pcs events)

let test_event_summary () =
  let v = Ddt_solver.Expr.fresh_var Ddt_solver.Expr.W8 in
  let events =
    [ Event.E_exec 1;
      Event.E_branch
        { pc = 2; taken = true; forked = true; cond = Ddt_solver.Expr.tru };
      Event.E_sym_create { name = "hw"; origin = "device read"; var = v };
      Event.E_interrupt { site = "s"; phase = "isr" } ]
  in
  let s = Event.summarize events in
  check_bool "mentions instructions" true
    (String.length s > 0
     && String.sub s 0 1 = "1" (* "1 instructions, ..." *));
  check_bool "mentions forked" true
    (let needle = "(1 forked)" in
     let rec go i =
       i + String.length needle <= String.length s
       && (String.sub s i (String.length needle) = needle || go (i + 1))
     in
     go 0)

(* --- execution tree ------------------------------------------------------ *)

let test_tree () =
  (* 1 forks into 2 and 3; 3 forks into 4. *)
  let t =
    Tree.build
      [ (1, 0, "root", 2); (2, 1, "returned 0", 0); (3, 1, "crashed", 1);
        (4, 3, "discarded", 0) ]
  in
  check_int "size" 4 (Tree.size t);
  Alcotest.(check (list int)) "roots" [ 1 ] (Tree.roots t);
  check_int "depth" 3 (Tree.depth t);
  Alcotest.(check (list int)) "path to root" [ 4; 3; 1 ]
    (Tree.path_to_root t 4);
  (match Tree.node t 1 with
   | Some n -> Alcotest.(check (list int)) "children" [ 2; 3 ] n.Tree.t_children
   | None -> Alcotest.fail "node 1");
  let rendering = Format.asprintf "%a" Tree.pp t in
  check_bool "renders all states" true
    (List.for_all
       (fun needle ->
         let rec go i =
           i + String.length needle <= String.length rendering
           && (String.sub rendering i (String.length needle) = needle
               || go (i + 1))
         in
         go 0)
       [ "state 1"; "state 2"; "state 3"; "state 4" ])

(* --- replay scripts ------------------------------------------------------- *)

let sample_script =
  {
    Replay.rs_inputs = [ ("registry_param", 5); ("hw_bar0+0x0", 255) ];
    rs_choices = [ ("NdisAllocateMemoryWithTag", "failure") ];
    rs_inject_sites = [ 0x400100; 0x400200 ];
    rs_entry = "initialize";
  }

let test_replay_roundtrip () =
  let s' = Replay.of_string (Replay.to_string sample_script) in
  check_bool "roundtrip" true (s' = sample_script)

let test_replay_malformed () =
  (match Replay.of_string "input\tx\tnotanumber\n" with
   | exception Failure _ -> ()
   | _ -> Alcotest.fail "should reject");
  match Replay.of_string "garbage line here\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "should reject"

let prop_replay_roundtrip =
  let gen =
    QCheck.Gen.(
      let name = map (Printf.sprintf "v%d") (int_bound 100) in
      let* inputs =
        list_size (int_bound 8) (pair name (int_bound 0xFFFF))
      in
      let* sites = list_size (int_bound 4) (int_bound 0xFFFFFF) in
      let* entry = oneofl [ "initialize"; "send"; "query" ] in
      return
        { Replay.rs_inputs = inputs; rs_choices = [ ("Api", "success") ];
          rs_inject_sites = sites; rs_entry = entry })
  in
  QCheck.Test.make ~count:200 ~name:"replay script roundtrip"
    (QCheck.make gen)
    (fun s -> Replay.of_string (Replay.to_string s) = s)

(* --- crash dumps ----------------------------------------------------------- *)

let test_crashdump_roundtrip () =
  let page = Bytes.make 4096 '\000' in
  Bytes.set_int32_le page 0x10 0xDEADl;
  let d =
    {
      Crashdump.d_pc = 0x400123;
      d_regs = Array.init 16 (fun i -> i * 7);
      d_note = "BAD_TIMER_OBJECT: test";
      d_pages = [ (0x800000, page) ];
    }
  in
  let d' = Crashdump.of_bytes (Crashdump.to_bytes d) in
  check_int "pc" 0x400123 d'.Crashdump.d_pc;
  check_str "note" "BAD_TIMER_OBJECT: test" d'.Crashdump.d_note;
  check_int "reg" 7 d'.Crashdump.d_regs.(1);
  check_bool "page word" true
    (Crashdump.find_u32 d' 0x800010 = Some 0xDEAD);
  check_bool "outside pages" true (Crashdump.find_u32 d' 0x900000 = None)

let qtest t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "ddt_trace"
    [ ("events",
       [ Alcotest.test_case "pcs" `Quick test_event_pcs;
         Alcotest.test_case "summary" `Quick test_event_summary ]);
      ("tree", [ Alcotest.test_case "build and query" `Quick test_tree ]);
      ("replay",
       [ Alcotest.test_case "roundtrip" `Quick test_replay_roundtrip;
         Alcotest.test_case "malformed" `Quick test_replay_malformed;
         qtest prop_replay_roundtrip ]);
      ("crashdump",
       [ Alcotest.test_case "roundtrip" `Quick test_crashdump_roundtrip ]) ]
