(* Tests for ddt_annot: the annotation DSL and both shipped sets, driven
   through full sessions on tiny purpose-built drivers. *)

open Ddt_core
module Annot = Ddt_annot.Annot
module Report = Ddt_checkers.Report
module Expr = Ddt_solver.Expr
module Mach = Ddt_kernel.Mach

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run ?annotations ?(use_annotations = true) src =
  let image = Ddt_minicc.Codegen.compile ~name:"t" src in
  let cfg =
    Config.make ~driver_name:"t" ~image ~driver_class:Config.Network
      ~workload:[ Config.W_initialize ] ~use_annotations ?annotations ()
  in
  Ddt.test_driver cfg

let minimal_driver body = Printf.sprintf {|
  const TAG = 1;
  int g;
  int chars[8];
  int initialize(void) {
%s
    return 0;
  }
  int driver_entry(void) {
    chars[0] = initialize;
    return NdisMRegisterMiniport(chars);
  }
|} body

(* --- set combinators ----------------------------------------------------- *)

let test_set_dispatch () =
  let hits = ref [] in
  let a =
    Annot.make ~api:"Foo"
      ~pre:(fun _ _ -> hits := "pre" :: !hits)
      ~post:(fun _ _ -> hits := "post" :: !hits)
      ~doc:"test" ()
  in
  let set = Annot.combine [ a ] Annot.empty in
  let dummy_mach =
    {
      Mach.arg = (fun _ -> 0);
      arg_expr = (fun _ -> Expr.word 0);
      set_ret = ignore;
      get_ret = (fun () -> 0);
      set_ret_expr = ignore;
      read_u32 = (fun _ -> 0);
      write_u32 = (fun _ _ -> ());
      read_u8 = (fun _ -> 0);
      write_u8 = (fun _ _ -> ());
      read_expr_u32 = (fun _ -> Expr.word 0);
      write_expr_u32 = (fun _ _ -> ());
      read_expr_u8 = (fun _ -> Expr.byte 0);
      write_expr_u8 = (fun _ _ -> ());
      fresh_symbolic = (fun _ w -> Expr.const w 0);
      assume = ignore;
      fork = ignore;
      discard = ignore;
      cur_pc = (fun () -> 0);
      kstate = (fun () -> assert false);
    }
  in
  let ks =
    Ddt_kernel.Kstate.create
      ~device:
        (Ddt_kernel.Pci.assign_resources
           { Ddt_kernel.Pci.vendor_id = 1; device_id = 1; revision = 0;
             bar_sizes = []; irq_line = 1 }
           ~mmio_base:Ddt_dvm.Layout.mmio_base)
      ()
  in
  Annot.run_pre set "Foo" ks dummy_mach;
  Annot.run_post set "Foo" ks dummy_mach;
  Annot.run_pre set "Bar" ks dummy_mach;
  Alcotest.(check (list string)) "only Foo fires" [ "post"; "pre" ] !hits

(* --- the registry annotation ---------------------------------------------- *)

let registry_driver = minimal_driver {|
    int cfg;
    int status = NdisOpenConfiguration(&cfg);
    if (status != 0) { return 1; }
    int depth = NdisReadConfiguration(cfg, "Depth", 4);
    NdisCloseConfiguration(cfg);
    if (depth == 0x12345) {
      int p = 0;
      *(p + 0) = 1;      // reachable only if the value can be anything
    }
|}

let test_registry_becomes_symbolic () =
  let r = run registry_driver in
  check_bool "magic registry value reached" true
    (List.exists
       (fun b -> b.Report.b_kind = Report.Segfault)
       r.Session.r_bugs)

let test_registry_concrete_without_annotations () =
  let r = run ~use_annotations:false registry_driver in
  check_int "concrete registry value misses it" 0
    (List.length r.Session.r_bugs)

let test_registry_nonnegative_constraint () =
  (* The paper's annotation discards negative values: a path guarded by
     "depth < 0" (signed) must be unreachable. *)
  let r =
    run
      (minimal_driver {|
    int cfg;
    int status = NdisOpenConfiguration(&cfg);
    if (status != 0) { return 1; }
    int depth = NdisReadConfiguration(cfg, "Depth", 4);
    NdisCloseConfiguration(cfg);
    if (depth < 0) {
      int p = 0;
      *(p + 0) = 1;      // must never execute
    }
|})
  in
  check_int "negative registry values are discarded" 0
    (List.length r.Session.r_bugs)

(* --- allocation-failure forks ----------------------------------------------- *)

let test_alloc_failure_fork () =
  (* Both outcomes must be explored; the failure path crashes. *)
  let r =
    run
      (minimal_driver {|
    int p;
    int status = NdisAllocateMemoryWithTag(&p, 64, TAG);
    if (status != 0) {
      int q = 0;
      *(q + 0) = 1;      // only on the annotation-forked failure path
    }
    else {
      NdisFreeMemory(p, 64, 0);
    }
|})
  in
  check_bool "failure path explored" true
    (List.exists
       (fun b ->
         b.Report.b_kind = Report.Segfault
         && List.mem_assoc "NdisAllocateMemoryWithTag" b.Report.b_choices)
       r.Session.r_bugs)

let test_alloc_failure_releases_resource () =
  (* On the forked failure path the allocation must not linger as a leak:
     a driver that handles the failure correctly stays clean. *)
  let r =
    run
      (minimal_driver {|
    int p;
    int status = NdisAllocateMemoryWithTag(&p, 64, TAG);
    if (status != 0) { return 1; }
    NdisFreeMemory(p, 64, 0);
|})
  in
  check_int "clean driver stays clean under forks" 0
    (List.length r.Session.r_bugs)

(* --- custom annotations -------------------------------------------------------- *)

let test_custom_annotation_constraint () =
  (* A custom annotation bounding a vendor API's return: paths outside the
     bound are infeasible. *)
  Ddt_kernel.Kapi.register "VendorGetCount" (fun _ks m -> m.Mach.set_ret 3);
  let bounded =
    Annot.make ~api:"VendorGetCount"
      ~post:(fun _ks m ->
        let v = m.Mach.fresh_symbolic "count" Expr.W32 in
        m.Mach.assume (Expr.cmp Expr.Leu v (Expr.word 4));
        m.Mach.set_ret_expr v)
      ~doc:"count is at most 4" ()
  in
  let src = minimal_driver {|
    int n = VendorGetCount();
    if (n > 4) {
      int p = 0;
      *(p + 0) = 1;      // unreachable under the annotation's bound
    }
    if (n == 4) { g = 1; }
|} in
  let r =
    run ~annotations:(Annot.combine Ddt_annot.Ndis_annotations.set [ bounded ])
      src
  in
  check_int "bounded annotation keeps the driver clean" 0
    (List.length r.Session.r_bugs)

let () =
  Alcotest.run "ddt_annot"
    [ ("dsl", [ Alcotest.test_case "set dispatch" `Quick test_set_dispatch ]);
      ("registry",
       [ Alcotest.test_case "becomes symbolic" `Quick
           test_registry_becomes_symbolic;
         Alcotest.test_case "concrete without annotations" `Quick
           test_registry_concrete_without_annotations;
         Alcotest.test_case "non-negative constraint" `Quick
           test_registry_nonnegative_constraint ]);
      ("allocation",
       [ Alcotest.test_case "failure fork explored" `Quick
           test_alloc_failure_fork;
         Alcotest.test_case "failure path releases resource" `Quick
           test_alloc_failure_releases_resource ]);
      ("custom",
       [ Alcotest.test_case "assume bounds the value" `Quick
           test_custom_annotation_constraint ]) ]
