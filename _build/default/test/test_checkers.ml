(* Unit tests for ddt_checkers: the report sink and the §3.6 diagnosis
   module, exercised on synthetic bug records. *)

open Ddt_checkers
module Replay = Ddt_trace.Replay
module Event = Ddt_trace.Event

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk_bug ?(kind = Report.Segfault) ?(key = "k") ?(msg = "boom")
    ?(choices = []) ?(events = []) ?(replay = Replay.empty)
    ?(with_interrupt = false) () =
  {
    Report.b_kind = kind;
    b_driver = "unit";
    b_entry = "initialize";
    b_pc = 0x400100;
    b_message = msg;
    b_key = key;
    b_state_id = 1;
    b_events = events;
    b_choices = choices;
    b_with_interrupt = with_interrupt;
    b_replay = replay;
  }

(* --- the report sink ------------------------------------------------------ *)

let test_sink_dedup () =
  let sink = Report.create_sink () in
  Report.report sink (mk_bug ~key:"a" ());
  Report.report sink (mk_bug ~key:"a" ~msg:"different text, same defect" ());
  Report.report sink (mk_bug ~key:"b" ());
  check_int "two distinct bugs" 2 (Report.count sink);
  (* First report wins for a given key. *)
  let first = List.hd (Report.bugs sink) in
  Alcotest.(check string) "first kept" "boom" first.Report.b_message;
  Report.clear sink;
  check_int "cleared" 0 (Report.count sink);
  Report.report sink (mk_bug ~key:"a" ());
  check_int "key reusable after clear" 1 (Report.count sink)

let test_sink_order () =
  let sink = Report.create_sink () in
  List.iter
    (fun k -> Report.report sink (mk_bug ~key:k ~msg:k ()))
    [ "one"; "two"; "three" ];
  Alcotest.(check (list string)) "first-reported order"
    [ "one"; "two"; "three" ]
    (List.map (fun b -> b.Report.b_message) (Report.bugs sink))

let test_summary_rendering () =
  let sink = Report.create_sink () in
  Report.report sink (mk_bug ~kind:Report.Race_condition ~msg:"the race" ());
  let s = Format.asprintf "%a" Report.pp_summary sink in
  check_bool "summary mentions kind" true
    (let needle = "Race condition" in
     let rec go i =
       i + String.length needle <= String.length s
       && (String.sub s i (String.length needle) = needle || go (i + 1))
     in
     go 0)

(* --- diagnosis ------------------------------------------------------------- *)

let test_diagnose_low_memory_headline () =
  let b =
    mk_bug ~kind:Report.Segfault
      ~choices:[ ("ExAllocatePoolWithTag", "failure") ]
      ()
  in
  let a = Diagnose.analyze b in
  Alcotest.(check string) "headline" "driver crashes in low-memory situations"
    a.Diagnose.a_headline;
  check_bool "technical chain mentions the failed alloc" true
    (List.exists
       (fun s ->
         let needle = "ExAllocatePoolWithTag failed" in
         let rec go i =
           i + String.length needle <= String.length s
           && (String.sub s i (String.length needle) = needle || go (i + 1))
         in
         go 0)
       a.Diagnose.a_technical)

let test_diagnose_interrupt_headline () =
  let b =
    mk_bug ~kind:Report.Race_condition ~with_interrupt:true
      ~events:[ Event.E_interrupt { site = "after RegisterIsr"; phase = "isr" } ]
      ()
  in
  let a = Diagnose.analyze b in
  Alcotest.(check string) "headline"
    "driver crashes if an interrupt arrives after RegisterIsr"
    a.Diagnose.a_headline

let test_diagnose_spec_ranges () =
  let replay =
    { Replay.empty with
      Replay.rs_inputs = [ ("hw_bar0+0x4", 0x80); ("registry_param", 3) ] }
  in
  let b = mk_bug ~replay () in
  (* Permissive spec: any hardware. *)
  check_bool "permissive" true
    ((Diagnose.analyze b).Diagnose.a_hardware = Diagnose.Any_hardware);
  (* Register 4 limited to 0..0x7F: the pinned 0x80 is out of spec. *)
  let strict =
    { Diagnose.ds_registers = [ ("hw_bar0+0x4", 0, 0x7F) ];
      ds_default = (0, 255) }
  in
  check_bool "strict" true
    ((Diagnose.analyze ~spec:strict b).Diagnose.a_hardware
     = Diagnose.Malfunction_only);
  (* A different register's limit does not apply. *)
  let other =
    { Diagnose.ds_registers = [ ("hw_bar0+0x8", 0, 0) ]; ds_default = (0, 255) }
  in
  check_bool "other register" true
    ((Diagnose.analyze ~spec:other b).Diagnose.a_hardware
     = Diagnose.Any_hardware);
  (* No device reads at all. *)
  let no_hw =
    mk_bug
      ~replay:{ Replay.empty with Replay.rs_inputs = [ ("registry_param", 1) ] }
      ()
  in
  check_bool "no dependence" true
    ((Diagnose.analyze no_hw).Diagnose.a_hardware
     = Diagnose.No_hardware_dependence)

let test_diagnose_depends_on () =
  let replay =
    { Replay.empty with
      Replay.rs_inputs =
        [ ("oid", 9); ("hw_bar0+0x0", 1); ("oid", 10) ] }
  in
  let a = Diagnose.analyze (mk_bug ~replay ()) in
  Alcotest.(check (list string)) "deduplicated inputs"
    [ "hw_bar0+0x0"; "oid" ]
    a.Diagnose.a_depends_on

let () =
  Alcotest.run "ddt_checkers"
    [ ("sink",
       [ Alcotest.test_case "dedup" `Quick test_sink_dedup;
         Alcotest.test_case "order" `Quick test_sink_order;
         Alcotest.test_case "summary" `Quick test_summary_rendering ]);
      ("diagnose",
       [ Alcotest.test_case "low-memory headline" `Quick
           test_diagnose_low_memory_headline;
         Alcotest.test_case "interrupt headline" `Quick
           test_diagnose_interrupt_headline;
         Alcotest.test_case "spec ranges" `Quick test_diagnose_spec_ranges;
         Alcotest.test_case "depends-on list" `Quick
           test_diagnose_depends_on ]) ]
