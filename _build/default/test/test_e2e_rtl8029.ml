(* End-to-end: DDT on the RTL8029-alike driver must find all five Table 2
   bugs and report nothing on the fixed variant. *)

open Ddt_core
module Report = Ddt_checkers.Report

let run_ddt ?(annotations = true) image =
  let cfg =
    Config.make ~driver_name:"RTL8029" ~image ~driver_class:Config.Network
      ~descriptor:Ddt_drivers.Rtl8029.descriptor
      ~registry:Ddt_drivers.Rtl8029.registry ~use_annotations:annotations ()
  in
  Ddt.test_driver cfg

let kinds bugs = List.map (fun b -> b.Report.b_kind) bugs

let test_finds_all_five () =
  let r = run_ddt (Ddt_drivers.Rtl8029.image ()) in
  let ks = kinds r.Session.r_bugs in
  let count k = List.length (List.filter (( = ) k) ks) in
  Format.printf "%a@." Ddt.pp_report r;
  Alcotest.(check bool) "resource leak found" true (count Report.Resource_leak >= 1);
  Alcotest.(check bool) "memory corruption found" true
    (count Report.Memory_error >= 1);
  Alcotest.(check bool) "race found" true (count Report.Race_condition >= 1);
  Alcotest.(check bool) "segfaults found" true (count Report.Segfault >= 2)

let test_fixed_is_clean () =
  let r = run_ddt (Ddt_drivers.Rtl8029.fixed_image ()) in
  List.iter (fun b -> Format.printf "unexpected: %a@." Report.pp_bug b)
    r.Session.r_bugs;
  Alcotest.(check int) "no bugs in fixed driver" 0
    (List.length r.Session.r_bugs)

let test_coverage_reasonable () =
  let r = run_ddt (Ddt_drivers.Rtl8029.image ()) in
  Alcotest.(check bool) "covers more than half the blocks" true
    (Session.coverage_percent r > 50.0)

let () =
  Alcotest.run "ddt_e2e_rtl8029"
    [ ("rtl8029",
       [ Alcotest.test_case "finds all five bugs" `Quick test_finds_all_five;
         Alcotest.test_case "fixed variant clean" `Quick test_fixed_is_clean;
         Alcotest.test_case "coverage" `Quick test_coverage_reasonable ]) ]
