lib/baseline/absint.ml: Cfg Hashtbl List Option Printf Queue
