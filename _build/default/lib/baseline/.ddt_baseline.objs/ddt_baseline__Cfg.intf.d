lib/baseline/cfg.mli: Ddt_dvm Hashtbl
