lib/baseline/cfg.ml: Array Bytes Ddt_dvm Hashtbl List
