lib/baseline/stress.mli: Ddt_checkers Ddt_core
