lib/baseline/static.ml: Absint Cfg Format List Unix
