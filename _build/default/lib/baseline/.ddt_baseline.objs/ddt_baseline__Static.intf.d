lib/baseline/static.mli: Absint Ddt_dvm Format
