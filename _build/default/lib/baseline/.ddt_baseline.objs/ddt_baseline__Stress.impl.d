lib/baseline/stress.ml: Ddt_checkers Ddt_core Ddt_symexec Hashtbl List Unix
