lib/baseline/absint.mli: Cfg
