module Config = Ddt_core.Config
module Session = Ddt_core.Session
module Exec = Ddt_symexec.Exec
module Report = Ddt_checkers.Report

type result = {
  s_driver : string;
  s_bugs : Report.bug list;
  s_runs : int;
  s_wall_time : float;
}

(* Stress tools pound I/O with periodic interrupts between operations;
   they do not cleanly unload the driver between iterations, so Halt-time
   accounting is not part of the loop. *)
let stress_workload items =
  List.concat_map
    (fun item ->
      match item with
      | Config.W_initialize | Config.W_send | Config.W_play ->
          [ item; Config.W_interrupt ]
      | Config.W_halt -> []
      | _ -> [ item ])
    items

let run ?(runs = 10) ?(seed = 42) (cfg : Config.t) =
  let t0 = Unix.gettimeofday () in
  let bugs = ref [] in
  let seen = Hashtbl.create 16 in
  for i = 1 to runs do
    (* Fully concrete execution: seeded random hardware, real registry
       values, no annotations, no symbolic interrupts. Nothing is
       symbolic, so no forking occurs and each run is one concrete path —
       exactly what a stress tool executes. *)
    let stress_cfg =
      {
        cfg with
        Config.use_annotations = false;
        concrete_device = Some (seed + (1000 * i));
        workload = stress_workload cfg.Config.workload;
        max_total_steps = 400_000;
        exec_config =
          { cfg.Config.exec_config with Exec.inject_interrupts = false };
      }
    in
    let r = Session.run stress_cfg in
    List.iter
      (fun b ->
        if not (Hashtbl.mem seen b.Report.b_key) then begin
          Hashtbl.add seen b.Report.b_key ();
          bugs := b :: !bugs
        end)
      r.Session.r_bugs
  done;
  {
    s_driver = cfg.Config.driver_name;
    s_bugs = List.rev !bugs;
    s_runs = runs;
    s_wall_time = Unix.gettimeofday () -. t0;
  }
