type finding = {
  fi_func : string;
  fi_pos : int;
  fi_rule : string;
  fi_message : string;
}

(* --- the abstract domain ------------------------------------------------ *)

type variant = Plain | Dpr

type lock_state =
  | Free
  | Held of variant
  | Maybe_held

type bool3 = No | Yes | Maybe

type state = {
  locks : (Cfg.token * lock_state) list;     (* absent token = Free *)
  stack : Cfg.token list option;             (* acquisition order; None = unknown *)
  irql_high : bool3;
  config_open : int * int;                   (* (min, max) open handles *)
  freed : Cfg.token list;                    (* definitely freed *)
}

let initial =
  { locks = []; stack = Some []; irql_high = No; config_open = (0, 0);
    freed = [] }

let lock_of st tok =
  match List.assoc_opt tok st.locks with Some s -> s | None -> Free

let set_lock st tok v =
  { st with locks = (tok, v) :: List.remove_assoc tok st.locks }

let join_lock a b =
  match a, b with
  | x, y when x = y -> x
  | _ -> Maybe_held

let join_bool3 a b = if a = b then a else Maybe

let join s1 s2 =
  let tokens =
    List.sort_uniq compare (List.map fst s1.locks @ List.map fst s2.locks)
  in
  {
    locks =
      List.map (fun t -> (t, join_lock (lock_of s1 t) (lock_of s2 t))) tokens;
    stack = (if s1.stack = s2.stack then s1.stack else None);
    irql_high = join_bool3 s1.irql_high s2.irql_high;
    config_open =
      (let l1, h1 = s1.config_open and l2, h2 = s2.config_open in
       (min l1 l2, max h1 h2));
    freed = List.filter (fun t -> List.mem t s2.freed) s1.freed;
  }

let leq s1 s2 =
  (* s1 subsumed by s2: joining adds nothing. *)
  join s1 s2 = s2

(* --- API classification ------------------------------------------------- *)

let acquire_apis = [ ("NdisAcquireSpinLock", Plain); ("KeAcquireSpinLock", Plain);
                     ("NdisDprAcquireSpinLock", Dpr);
                     ("KeAcquireSpinLockAtDpcLevel", Dpr) ]

let release_apis = [ ("NdisReleaseSpinLock", Plain); ("KeReleaseSpinLock", Plain);
                     ("NdisDprReleaseSpinLock", Dpr);
                     ("KeReleaseSpinLockFromDpcLevel", Dpr) ]

let passive_only =
  [ "NdisOpenConfiguration"; "NdisReadConfiguration";
    "NdisCloseConfiguration"; "NdisMMapIoSpace" ]

(* --- per-function analysis ---------------------------------------------- *)

let analyze_function (f : Cfg.func) =
  let findings = ref [] in
  let reported = Hashtbl.create 8 in
  (* Findings are only collected once the dataflow has reached its
     fixpoint; transfer functions evaluated on intermediate states must
     stay silent or they would report from states that later widen. *)
  let report_enabled = ref false in
  let report pos rule fmt =
    Printf.ksprintf
      (fun msg ->
        let key = (rule, pos) in
        if !report_enabled && not (Hashtbl.mem reported key) then begin
          Hashtbl.add reported key ();
          findings :=
            { fi_func = f.Cfg.f_name; fi_pos = pos; fi_rule = rule;
              fi_message = msg }
            :: !findings
        end)
      fmt
  in
  (* Pre-scan: which tokens have acquire / release sites in this function?
     (Used for the FP-avoidance suppressions real tools need.) *)
  let acquires_in_fn = Hashtbl.create 4 in
  let releases_in_fn = Hashtbl.create 4 in
  Hashtbl.iter
    (fun _ (b : Cfg.block) ->
      List.iter
        (fun (kc : Cfg.kcall_site) ->
          if List.mem_assoc kc.Cfg.kc_name acquire_apis then
            Hashtbl.replace acquires_in_fn kc.Cfg.kc_arg0 ();
          if List.mem_assoc kc.Cfg.kc_name release_apis then
            Hashtbl.replace releases_in_fn kc.Cfg.kc_arg0 ())
        b.Cfg.b_kcalls)
    f.Cfg.f_blocks;
  (* Transfer function over one kernel call. *)
  let transfer st (kc : Cfg.kcall_site) =
    let tok = kc.Cfg.kc_arg0 in
    let pos = kc.Cfg.kc_pos in
    match List.assoc_opt kc.Cfg.kc_name acquire_apis with
    | Some variant -> (
        (match lock_of st tok with
         | Held _ ->
             report pos "double-acquire"
               "acquire of a spinlock already held (deadlock)"
         | Free | Maybe_held -> ());
        let st = set_lock st tok (Held variant) in
        let st =
          { st with
            stack = Option.map (fun s -> tok :: s) st.stack;
            irql_high = (if variant = Plain then Yes else st.irql_high) }
        in
        st)
    | None -> (
        match List.assoc_opt kc.Cfg.kc_name release_apis with
        | Some variant -> (
            (match lock_of st tok with
             | Free ->
                 (* Only locally-evident imbalance is reported: releasing a
                    lock this function never acquired looks like a helper
                    called with the lock held (summaries would be needed),
                    so tools stay silent to avoid drowning in FPs. *)
                 if Hashtbl.mem acquires_in_fn tok then
                   report pos "extra-release"
                     "release of a spinlock that is not held"
             | Held v when v <> variant ->
                 report pos "wrong-variant"
                   "spinlock released with the wrong API variant (%s after \
                    %s acquire)"
                   (if variant = Dpr then "Dpr" else "plain")
                   (if v = Dpr then "Dpr" else "plain")
             | Held _ -> (
                 match st.stack with
                 | Some (top :: _) when top <> tok ->
                     report pos "out-of-order"
                       "spinlock released out of acquisition order"
                 | _ -> ())
             | Maybe_held -> ());
            let st = set_lock st tok Free in
            let any_held =
              List.exists
                (fun (_, s) -> s <> Free)
                st.locks
            in
            { st with
              stack =
                Option.map (List.filter (fun t -> t <> tok)) st.stack;
              irql_high =
                (if variant = Plain && not any_held then No else st.irql_high)
            })
        | None ->
            if List.mem kc.Cfg.kc_name passive_only then begin
              if st.irql_high = Yes then
                report pos "wrong-irql"
                  "%s requires PASSIVE_LEVEL but a spinlock is held \
                   (IRQL >= DISPATCH_LEVEL)"
                  kc.Cfg.kc_name
            end;
            let st =
              match kc.Cfg.kc_name with
              | "NdisOpenConfiguration" ->
                  let l, h = st.config_open in
                  { st with config_open = (l + 1, h + 1) }
              | "NdisCloseConfiguration" ->
                  let l, h = st.config_open in
                  { st with config_open = (max 0 (l - 1), max 0 (h - 1)) }
              | "NdisFreeMemory" | "ExFreePoolWithTag" ->
                  if tok <> Cfg.Tok_unknown && List.mem tok st.freed then begin
                    report pos "double-free" "double free of the same object";
                    st
                  end
                  else { st with freed = tok :: st.freed }
              | "NdisAllocateMemoryWithTag" | "ExAllocatePoolWithTag" ->
                  { st with freed = List.filter (fun t -> t <> tok) st.freed }
              | _ -> st
            in
            st)
  in
  (* Worklist dataflow over blocks. *)
  let in_states : (int, state) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.replace in_states f.Cfg.f_entry initial;
  let exit_states = ref [] in
  let worklist = Queue.create () in
  Queue.add f.Cfg.f_entry worklist;
  let iterations = ref 0 in
  while (not (Queue.is_empty worklist)) && !iterations < 10_000 do
    incr iterations;
    let bstart = Queue.pop worklist in
    match Hashtbl.find_opt f.Cfg.f_blocks bstart with
    | None -> ()
    | Some b ->
        let st0 =
          match Hashtbl.find_opt in_states bstart with
          | Some s -> s
          | None -> initial
        in
        let out = List.fold_left transfer st0 b.Cfg.b_kcalls in
        (* A Ret inside the block is a function exit. *)
        if b.Cfg.b_is_exit then exit_states := out :: !exit_states;
        List.iter
          (fun succ ->
            let updated =
              match Hashtbl.find_opt in_states succ with
              | None -> Some out
              | Some prev ->
                  let j = join prev out in
                  if leq out prev then None else Some j
            in
            match updated with
            | None -> ()
            | Some s ->
                Hashtbl.replace in_states succ s;
                Queue.add succ worklist)
          b.Cfg.b_succs
  done;
  (* Reporting pass: every block once, from its fixpoint in-state. *)
  report_enabled := true;
  Hashtbl.iter
    (fun bstart (b : Cfg.block) ->
      match Hashtbl.find_opt in_states bstart with
      | None -> ()
      | Some st -> ignore (List.fold_left transfer st b.Cfg.b_kcalls))
    f.Cfg.f_blocks;
  (* Exit checks. *)
  List.iter
    (fun st ->
      List.iter
        (fun (tok, ls) ->
          match ls with
          | Held _ | Maybe_held ->
              (* Lock-wrapper suppression: warn only when this function
                 also releases the same lock somewhere, so the imbalance
                 is locally evident. *)
              if Hashtbl.mem releases_in_fn tok then
                report f.Cfg.f_start "forgotten-release"
                  "a spinlock may still be held when %s returns" f.Cfg.f_name
          | Free -> ())
        st.locks;
      let lo, _ = st.config_open in
      if lo > 0 then
        report f.Cfg.f_start "config-leak"
          "a configuration handle is left open when %s returns" f.Cfg.f_name)
    !exit_states;
  List.rev !findings
