(** The static-analysis baseline front end (SDV analog of §5.1): build the
    CFG of every function in a driver binary and run the API-rule abstract
    interpretation over each. *)

type result = {
  st_driver : string;
  st_findings : Absint.finding list;
  st_wall_time : float;
  st_functions : int;
}

val analyze : name:string -> Ddt_dvm.Image.t -> result

val pp : Format.formatter -> result -> unit
