type result = {
  st_driver : string;
  st_findings : Absint.finding list;
  st_wall_time : float;
  st_functions : int;
}

let analyze ~name img =
  let t0 = Unix.gettimeofday () in
  let funcs = Cfg.build img in
  let findings = List.concat_map Absint.analyze_function funcs in
  {
    st_driver = name;
    st_findings = findings;
    st_wall_time = Unix.gettimeofday () -. t0;
    st_functions = List.length funcs;
  }

let pp fmt r =
  Format.fprintf fmt "static analysis of %s: %d finding(s) in %d functions \
                      (%.3fs)@."
    r.st_driver
    (List.length r.st_findings)
    r.st_functions r.st_wall_time;
  List.iter
    (fun (f : Absint.finding) ->
      Format.fprintf fmt "  [%s] %s at 0x%x: %s@." f.Absint.fi_rule
        f.Absint.fi_func f.Absint.fi_pos f.Absint.fi_message)
    r.st_findings
