(** Path-insensitive abstract interpretation of kernel-API usage rules —
    the SLAM/SDV-style static baseline of §5.1.

    Per function, a join-based dataflow analysis tracks spinlock states
    (identified by the syntactic tokens {!Cfg} recovers), the IRQL, open
    configuration handles and freed allocations. The analysis is
    deliberately {e intraprocedural} and {e path-insensitive}, with the
    classic consequences the paper attributes to this family of tools:

    - defects split across helper functions are missed (no summaries);
    - correct-but-conditional lock usage merges to "maybe held" at exit
      and produces a false positive;
    - warnings about helpers whose only lock operation is an acquire are
      suppressed (they look like intentional lock-wrappers), hiding
      interprocedural deadlocks and out-of-order releases. *)

type finding = {
  fi_func : string;
  fi_pos : int;                (** image-relative offset *)
  fi_rule : string;            (** short rule id *)
  fi_message : string;
}

val analyze_function : Cfg.func -> finding list
