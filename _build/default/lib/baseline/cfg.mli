(** Control-flow graphs over DXE binaries, for the static-analysis
    baseline.

    Functions are delimited by the image's function symbols; basic blocks
    by branch targets and fall-throughs. Because the input is a binary,
    call arguments are recovered syntactically: the analyzer walks
    backwards from the [push] that set up argument 0 and recognizes the
    compiler's addressing idioms ("base + constant offset" for lock/ctx
    fields, frame-slot loads for locals). This token recovery is exactly
    the kind of brittleness that makes static analysis of binaries hard —
    which the paper leans on when motivating DDT. *)

type token =
  | Tok_offset of int       (** context-relative constant offset *)
  | Tok_local of int        (** frame-slot offset *)
  | Tok_unknown

type kcall_site = {
  kc_name : string;         (** imported kernel API *)
  kc_arg0 : token;
  kc_pos : int;             (** image-relative offset *)
}

type block = {
  b_start : int;                       (** image-relative offset *)
  b_instrs : (int * Ddt_dvm.Isa.instr) list;
  b_kcalls : kcall_site list;          (** in order *)
  mutable b_succs : int list;          (** successor block starts *)
  b_is_exit : bool;                    (** ends in Ret/Hlt *)
}

type func = {
  f_name : string;
  f_start : int;
  f_blocks : (int, block) Hashtbl.t;
  f_entry : int;
}

val build : Ddt_dvm.Image.t -> func list
