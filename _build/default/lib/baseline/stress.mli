(** The concrete stress-testing baseline — the Microsoft Driver Verifier
    analog of §5.1.

    Runs the driver {e concretely}: hardware reads return pseudo-random
    values, registry reads return the actual registry contents, kernel
    calls never fail, and interrupts fire at random instruction counts.
    The same dynamic checkers watch the execution. The paper's finding —
    that this setup reproduces none of the 14 bugs DDT finds — comes from
    exactly what is missing here: no forking over allocation failure, no
    symbolic registry values, no OID sweep beyond the standard ones, and
    no interrupt at the precise boundary that exposes a race.

    Implemented over the symbolic engine with symbolic features disabled
    (no annotations, no injected interrupts) plus randomized concrete
    device values, so the comparison isolates the technique, not the
    infrastructure. *)

type result = {
  s_driver : string;
  s_bugs : Ddt_checkers.Report.bug list;
  s_runs : int;
  s_wall_time : float;
}

val run :
  ?runs:int -> ?seed:int -> Ddt_core.Config.t -> result
(** [run cfg] executes [runs] (default 10) concrete stress iterations of
    the configured workload with different random seeds. *)
