type t = {
  d_pc : int;
  d_regs : int array;
  d_note : string;
  d_pages : (int * bytes) list;
}

let magic = "DDMP"

let to_bytes d =
  let buf = Buffer.create 4096 in
  let u32 v = Buffer.add_int32_le buf (Int32.of_int (v land 0xFFFFFFFF)) in
  Buffer.add_string buf magic;
  u32 d.d_pc;
  u32 (Array.length d.d_regs);
  Array.iter u32 d.d_regs;
  u32 (String.length d.d_note);
  Buffer.add_string buf d.d_note;
  u32 (List.length d.d_pages);
  List.iter
    (fun (base, page) ->
      u32 base;
      u32 (Bytes.length page);
      Buffer.add_bytes buf page)
    d.d_pages;
  Buffer.to_bytes buf

let of_bytes b =
  let pos = ref 0 in
  let fail msg = failwith ("Crashdump.of_bytes: " ^ msg) in
  let need n = if !pos + n > Bytes.length b then fail "truncated" in
  let u32 () =
    need 4;
    let v = Int32.to_int (Bytes.get_int32_le b !pos) land 0xFFFFFFFF in
    pos := !pos + 4;
    v
  in
  need 4;
  if Bytes.sub_string b 0 4 <> magic then fail "bad magic";
  pos := 4;
  let d_pc = u32 () in
  let nregs = u32 () in
  let d_regs = Array.init nregs (fun _ -> u32 ()) in
  let note_len = u32 () in
  need note_len;
  let d_note = Bytes.sub_string b !pos note_len in
  pos := !pos + note_len;
  let npages = u32 () in
  let d_pages =
    List.init npages (fun _ ->
        let base = u32 () in
        let len = u32 () in
        need len;
        let page = Bytes.sub b !pos len in
        pos := !pos + len;
        (base, page))
  in
  { d_pc; d_regs; d_note; d_pages }

let find_u32 d addr =
  List.find_map
    (fun (base, page) ->
      if addr >= base && addr + 4 <= base + Bytes.length page then
        Some (Int32.to_int (Bytes.get_int32_le page (addr - base)) land 0xFFFFFFFF)
      else None)
    d.d_pages

let pp_summary fmt d =
  Format.fprintf fmt "crash dump: pc=0x%x, %d pages, note: %s@." d.d_pc
    (List.length d.d_pages) d.d_note;
  Array.iteri
    (fun i v -> if v <> 0 then Format.fprintf fmt "  r%d = 0x%x@." i v)
    d.d_regs
