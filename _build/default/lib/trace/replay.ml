type script = {
  rs_inputs : (string * int) list;
  rs_choices : (string * string) list;
  rs_inject_sites : int list;
  rs_entry : string;
}

let empty =
  { rs_inputs = []; rs_choices = []; rs_inject_sites = []; rs_entry = "" }

let pp fmt s =
  Format.fprintf fmt "replay script (entry %s):@." s.rs_entry;
  List.iter
    (fun (name, v) -> Format.fprintf fmt "  input %s = 0x%x@." name v)
    s.rs_inputs;
  List.iter
    (fun (api, choice) -> Format.fprintf fmt "  choice %s -> %s@." api choice)
    s.rs_choices;
  List.iter
    (fun site -> Format.fprintf fmt "  interrupt at site 0x%x@." site)
    s.rs_inject_sites

(* Line-oriented textual format: one record per line, tab separated. *)
let to_string s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "entry\t%s\n" s.rs_entry);
  List.iter
    (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "input\t%s\t%d\n" n v))
    s.rs_inputs;
  List.iter
    (fun (a, c) ->
      Buffer.add_string buf (Printf.sprintf "choice\t%s\t%s\n" a c))
    s.rs_choices;
  List.iter
    (fun p -> Buffer.add_string buf (Printf.sprintf "inject\t%d\n" p))
    s.rs_inject_sites;
  Buffer.contents buf

let of_string text =
  let entry = ref "" in
  let inputs = ref [] and choices = ref [] and sites = ref [] in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if line <> "" then
           match String.split_on_char '\t' line with
           | [ "entry"; e ] -> entry := e
           | [ "input"; n; v ] -> (
               match int_of_string_opt v with
               | Some v -> inputs := (n, v) :: !inputs
               | None -> failwith "Replay.of_string: bad input value")
           | [ "choice"; a; c ] -> choices := (a, c) :: !choices
           | [ "inject"; p ] -> (
               match int_of_string_opt p with
               | Some p -> sites := p :: !sites
               | None -> failwith "Replay.of_string: bad site")
           | _ -> failwith "Replay.of_string: malformed line");
  {
    rs_entry = !entry;
    rs_inputs = List.rev !inputs;
    rs_choices = List.rev !choices;
    rs_inject_sites = List.rev !sites;
  }
