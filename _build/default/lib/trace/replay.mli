(** Replay scripts — the concrete inputs and system events that take the
    driver down a failing path again (§3.5 of the paper).

    A script pins every symbolic input of the failing path to the concrete
    value the constraint solver derived from the path condition, fixes
    which alternative every annotation fork took, and lists the exact
    boundary sites where symbolic interrupts fired. Re-running the same
    session with the script makes the engine deterministic along the
    recorded path, reproducing the bug. *)

type script = {
  rs_inputs : (string * int) list;
  (** symbolic-input name -> concrete value, in creation order (oldest
      first); consumed as a queue during replay *)
  rs_choices : (string * string) list;
  (** kernel API name -> fork alternative taken, oldest first *)
  rs_inject_sites : int list;
  (** boundary sites (pcs) where an interrupt fired on this path *)
  rs_entry : string;
  (** entry point whose invocation failed *)
}

val empty : script
val pp : Format.formatter -> script -> unit

(** {1 Serialization} (traces are shippable evidence) *)

val to_string : script -> string
val of_string : string -> script
(** @raise Failure on malformed input. *)
