type node = {
  t_id : int;
  t_parent : int;
  t_label : string;
  t_forks : int;
  mutable t_children : int list;
}

type t = {
  nodes : (int, node) Hashtbl.t;
  mutable root_ids : int list;
}

let build entries =
  let t = { nodes = Hashtbl.create 64; root_ids = [] } in
  List.iter
    (fun (id, parent, label, forks) ->
      Hashtbl.replace t.nodes id
        { t_id = id; t_parent = parent; t_label = label; t_forks = forks;
          t_children = [] })
    entries;
  Hashtbl.iter
    (fun id n ->
      match Hashtbl.find_opt t.nodes n.t_parent with
      | Some p when n.t_parent <> id -> p.t_children <- id :: p.t_children
      | _ -> t.root_ids <- id :: t.root_ids)
    t.nodes;
  Hashtbl.iter (fun _ n -> n.t_children <- List.sort compare n.t_children)
    t.nodes;
  t.root_ids <- List.sort compare t.root_ids;
  t

let node t id = Hashtbl.find_opt t.nodes id
let roots t = t.root_ids
let size t = Hashtbl.length t.nodes

let rec depth_of t id =
  match node t id with
  | None -> 0
  | Some n ->
      1 + List.fold_left (fun acc c -> max acc (depth_of t c)) 0 n.t_children

let depth t = List.fold_left (fun acc r -> max acc (depth_of t r)) 0 t.root_ids

let path_to_root t id =
  let rec go id acc =
    match node t id with
    | None -> acc
    | Some n ->
        if n.t_parent = 0 || n.t_parent = id then id :: acc
        else go n.t_parent (id :: acc)
  in
  List.rev (go id [])

let pp fmt t =
  let rec render indent id =
    match node t id with
    | None -> ()
    | Some n ->
        Format.fprintf fmt "%s+- state %d: %s%s@." indent n.t_id n.t_label
          (if n.t_forks > 0 then Printf.sprintf " (%d forks)" n.t_forks else "");
        List.iter (render (indent ^ "|  ")) n.t_children
  in
  List.iter (render "") t.root_ids
