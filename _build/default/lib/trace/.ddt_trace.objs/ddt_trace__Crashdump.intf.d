lib/trace/crashdump.mli: Format
