lib/trace/replay.mli: Format
