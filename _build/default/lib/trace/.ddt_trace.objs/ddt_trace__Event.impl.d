lib/trace/event.ml: Buffer Ddt_solver Format List Printf
