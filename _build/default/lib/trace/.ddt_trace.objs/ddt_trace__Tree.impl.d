lib/trace/tree.ml: Format Hashtbl List Printf
