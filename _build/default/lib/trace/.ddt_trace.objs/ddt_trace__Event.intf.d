lib/trace/event.mli: Ddt_solver Format
