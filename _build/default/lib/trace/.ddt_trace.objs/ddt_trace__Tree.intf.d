lib/trace/tree.mli: Format
