lib/trace/replay.ml: Buffer Format List Printf String
