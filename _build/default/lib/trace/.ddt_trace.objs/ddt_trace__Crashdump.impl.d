lib/trace/crashdump.ml: Array Buffer Bytes Format Int32 List String
