(** Crash dumps: a binary snapshot of the failed machine state, the
    WinDbg-crash-dump analog of §3.5. Contains the program counter,
    register file, a note describing the failure, and the touched memory
    pages. *)

type t = {
  d_pc : int;
  d_regs : int array;
  d_note : string;
  d_pages : (int * bytes) list;   (** (base address, 4 KiB contents) *)
}

val to_bytes : t -> bytes
val of_bytes : bytes -> t
(** @raise Failure on malformed input. *)

val find_u32 : t -> int -> int option
(** Read a 32-bit word out of the dumped pages. *)

val pp_summary : Format.formatter -> t -> unit
