(** Execution-tree reconstruction (§3.5 of the paper).

    Every branch that forked has a flag in the trace, so the set of
    explored states — each knowing its parent — reconstructs the tree of
    paths; each leaf is a machine state, and the path from the root to a
    failed leaf is the evidence presented to the developer. *)

type node = {
  t_id : int;
  t_parent : int;            (** 0 for roots *)
  t_label : string;          (** status or description of the state *)
  t_forks : int;             (** forked branches recorded on this path *)
  mutable t_children : int list;
}

type t

val build : (int * int * string * int) list -> t
(** [(id, parent, label, forks)] per explored state. *)

val node : t -> int -> node option
val roots : t -> int list
val size : t -> int
val depth : t -> int
val path_to_root : t -> int -> int list
(** Leaf to root, inclusive. *)

val pp : Format.formatter -> t -> unit
(** Indented rendering of the whole tree. *)
