type unop = Neg | LogNot | BitNot

type binop =
  | Add | Sub | Mul | Div | Rem
  | BitAnd | BitOr | BitXor
  | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | LogAnd | LogOr

type expr =
  | Num of int
  | Str of string
  | Ident of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Assign of expr * expr
  | Ternary of expr * expr * expr
  | Call of string * expr list
  | Index of expr * expr
  | Deref of expr
  | Addr of expr

type elem_type = Word | Byte

type stmt =
  | Sexpr of expr
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sfor of expr option * expr option * expr option * stmt
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list
  | Sdecl of decl

and decl = {
  d_name : string;
  d_elem : elem_type;
  d_array : expr option;
  d_init : expr option;
}

type func = {
  f_name : string;
  f_params : string list;
  f_body : stmt list;
}

type global =
  | Gvar of decl
  | Gconst of string * expr
  | Gfunc of func

type program = global list
