open Ast

exception Error of string

type info = {
  consts : (string * int) list;
  imports : string list;
  functions : (string * int) list;
}

let mask32 v = v land 0xFFFFFFFF
let to_signed32 v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

let rec const_eval resolve e =
  let open Option in
  let bin f a b =
    bind (const_eval resolve a) (fun x ->
        bind (const_eval resolve b) (fun y -> some (f x y)))
  in
  let bool_of f a b = bin (fun x y -> if f x y then 1 else 0) a b in
  match e with
  | Num n -> some n
  | Ident name -> resolve name
  | Unop (Neg, a) -> map (fun x -> mask32 (- x)) (const_eval resolve a)
  | Unop (BitNot, a) -> map (fun x -> mask32 (lnot x)) (const_eval resolve a)
  | Unop (LogNot, a) ->
      map (fun x -> if x = 0 then 1 else 0) (const_eval resolve a)
  | Binop (Add, a, b) -> bin (fun x y -> mask32 (x + y)) a b
  | Binop (Sub, a, b) -> bin (fun x y -> mask32 (x - y)) a b
  | Binop (Mul, a, b) -> bin (fun x y -> mask32 (x * y)) a b
  | Binop (Div, a, b) -> bin (fun x y -> if y = 0 then 0 else x / y) a b
  | Binop (Rem, a, b) -> bin (fun x y -> if y = 0 then 0 else x mod y) a b
  | Binop (BitAnd, a, b) -> bin ( land ) a b
  | Binop (BitOr, a, b) -> bin ( lor ) a b
  | Binop (BitXor, a, b) -> bin ( lxor ) a b
  | Binop (Shl, a, b) -> bin (fun x y -> mask32 (x lsl (y land 31))) a b
  | Binop (Shr, a, b) -> bin (fun x y -> x lsr (y land 31)) a b
  | Binop (Eq, a, b) -> bool_of ( = ) a b
  | Binop (Ne, a, b) -> bool_of ( <> ) a b
  | Binop (Lt, a, b) -> bool_of (fun x y -> to_signed32 x < to_signed32 y) a b
  | Binop (Le, a, b) -> bool_of (fun x y -> to_signed32 x <= to_signed32 y) a b
  | Binop (Gt, a, b) -> bool_of (fun x y -> to_signed32 x > to_signed32 y) a b
  | Binop (Ge, a, b) -> bool_of (fun x y -> to_signed32 x >= to_signed32 y) a b
  | _ -> none

(* Builtins compiled inline by the code generator; callable everywhere. *)
let builtins =
  [ ("__ldb", 1); ("__stb", 2); ("__ltu", 2); ("__leu", 2); ("__shrs", 2);
    ("__cli", 0); ("__sti", 0); ("__halt", 0) ]

type scope = {
  mutable vars : string list list;  (* one list per nesting level *)
}

let declare scope name =
  match scope.vars with
  | top :: rest ->
      if List.mem name top then
        raise (Error (Printf.sprintf "duplicate declaration of %S" name));
      scope.vars <- (name :: top) :: rest
  | [] -> assert false

let declared scope name = List.exists (List.mem name) scope.vars

let analyze program =
  (* Collect globals first: Mini-C allows forward references among
     functions and globals. *)
  let consts = ref [] in
  let resolve_const name = List.assoc_opt name !consts in
  let globals = ref [] in
  let functions = ref [] in
  List.iter
    (function
      | Gconst (name, e) -> (
          match const_eval resolve_const e with
          | Some v -> consts := (name, v) :: !consts
          | None ->
              raise (Error (Printf.sprintf "const %S is not constant" name)))
      | Gvar d ->
          if List.mem_assoc d.d_name !functions || List.mem d.d_name !globals
          then raise (Error (Printf.sprintf "duplicate global %S" d.d_name));
          (match d.d_array with
           | Some e when const_eval resolve_const e = None ->
               raise (Error (Printf.sprintf "array size of %S is not constant"
                               d.d_name))
           | _ -> ());
          globals := d.d_name :: !globals
      | Gfunc f ->
          if List.mem_assoc f.f_name !functions then
            raise (Error (Printf.sprintf "duplicate function %S" f.f_name));
          functions := (f.f_name, List.length f.f_params) :: !functions)
    program;
  let imports = ref [] in
  let note_import name =
    if not (List.mem name !imports) then imports := name :: !imports
  in
  let rec check_expr scope ~loops:_ e =
    let recur = check_expr scope ~loops:0 in
    match e with
    | Num _ | Str _ -> ()
    | Ident name ->
        if
          not
            (declared scope name || List.mem name !globals
             || List.mem_assoc name !consts
             || List.mem_assoc name !functions)
        then raise (Error (Printf.sprintf "undeclared identifier %S" name))
    | Unop (_, a) -> recur a
    | Binop (_, a, b) -> recur a; recur b
    | Assign (lhs, rhs) ->
        (match lhs with
         | Ident name when List.mem_assoc name !consts ->
             raise (Error (Printf.sprintf "assignment to constant %S" name))
         | Ident _ | Deref _ | Index _ -> ()
         | _ -> raise (Error "assignment target is not an lvalue"));
        recur lhs;
        recur rhs
    | Ternary (c, a, b) -> recur c; recur a; recur b
    | Call (name, args) ->
        (match List.assoc_opt name !functions with
         | Some arity ->
             if List.length args <> arity then
               raise
                 (Error
                    (Printf.sprintf "%S expects %d arguments, got %d" name
                       arity (List.length args)))
         | None -> (
             match List.assoc_opt name builtins with
             | Some arity ->
                 if List.length args <> arity then
                   raise
                     (Error (Printf.sprintf "builtin %S expects %d arguments"
                               name arity))
             | None -> note_import name));
        List.iter recur args
    | Index (a, i) -> recur a; recur i
    | Deref a -> recur a
    | Addr a -> (
        match a with
        | Ident _ | Deref _ | Index _ -> recur a
        | _ -> raise (Error "cannot take the address of this expression"))
  in
  let rec check_stmt scope ~loops s =
    match s with
    | Sexpr e -> check_expr scope ~loops e
    | Sif (c, a, b) ->
        check_expr scope ~loops c;
        check_stmt scope ~loops a;
        Option.iter (check_stmt scope ~loops) b
    | Swhile (c, body) ->
        check_expr scope ~loops c;
        check_stmt scope ~loops:(loops + 1) body
    | Sfor (init, cond, step, body) ->
        Option.iter (check_expr scope ~loops) init;
        Option.iter (check_expr scope ~loops) cond;
        Option.iter (check_expr scope ~loops) step;
        check_stmt scope ~loops:(loops + 1) body
    | Sreturn e -> Option.iter (check_expr scope ~loops) e
    | Sbreak | Scontinue ->
        if loops = 0 then raise (Error "break/continue outside a loop")
    | Sblock body ->
        scope.vars <- [] :: scope.vars;
        List.iter (check_stmt scope ~loops) body;
        scope.vars <- List.tl scope.vars
    | Sdecl d ->
        (match d.d_array with
         | Some e when const_eval resolve_const e = None ->
             raise (Error (Printf.sprintf "array size of %S is not constant"
                             d.d_name))
         | _ -> ());
        Option.iter (check_expr scope ~loops) d.d_init;
        declare scope d.d_name
  in
  List.iter
    (function
      | Gfunc f ->
          let scope = { vars = [ [] ] } in
          List.iter (declare scope) f.f_params;
          List.iter (check_stmt scope ~loops:0) f.f_body
      | Gvar _ | Gconst _ -> ())
    program;
  { consts = !consts; imports = List.rev !imports; functions = !functions }
