(** Recursive-descent parser for Mini-C. *)

exception Error of string * int
(** [(message, line)] *)

val parse : string -> Ast.program
(** Lex and parse a translation unit. @raise Error, @raise Lexer.Error *)
