(** Semantic analysis for Mini-C.

    Mini-C is word-typed, so "type checking" here means symbol resolution
    and structural sanity: every identifier is declared (calls to unknown
    functions are allowed — they become kernel imports), array sizes and
    [const] initializers are compile-time constants, lvalues are
    assignable, [break]/[continue] appear inside loops, and locally
    defined functions are called with the right arity. *)

exception Error of string

type info = {
  consts : (string * int) list;          (** resolved constants *)
  imports : string list;                 (** called but not defined here *)
  functions : (string * int) list;       (** defined functions and arities *)
}

val analyze : Ast.program -> info
(** @raise Error on any violation. *)

val const_eval : (string -> int option) -> Ast.expr -> int option
(** Evaluate a constant expression given a constant-name resolver. *)
