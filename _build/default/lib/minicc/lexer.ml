type token =
  | INT | CHAR | VOID | IF | ELSE | WHILE | FOR | RETURN
  | BREAK | CONTINUE | CONST
  | IDENT of string
  | NUM of int
  | STRING of string
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | QUESTION | COLON
  | ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | BANG
  | LSHIFT | RSHIFT
  | EQ | NE | LT | LE | GT | GE
  | ANDAND | OROR
  | EOF

exception Error of string * int

let keywords =
  [ ("int", INT); ("char", CHAR); ("void", VOID); ("if", IF); ("else", ELSE);
    ("while", WHILE); ("for", FOR); ("return", RETURN); ("break", BREAK);
    ("continue", CONTINUE); ("const", CONST) ]

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let emit t = toks := (t, !line) :: !toks in
  let rec go i =
    if i >= n then emit EOF
    else
      let c = src.[i] in
      match c with
      | '\n' -> incr line; go (i + 1)
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
          let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
          go (skip (i + 2))
      | '/' when i + 1 < n && src.[i + 1] = '*' ->
          let rec skip j =
            if j + 1 >= n then raise (Error ("unterminated comment", !line))
            else if src.[j] = '*' && src.[j + 1] = '/' then j + 2
            else begin
              if src.[j] = '\n' then incr line;
              skip (j + 1)
            end
          in
          go (skip (i + 2))
      | c when is_digit c ->
          let rec scan j =
            if j < n && (is_ident_char src.[j]) then scan (j + 1) else j
          in
          let j = scan i in
          let s = String.sub src i (j - i) in
          (match int_of_string_opt s with
           | Some v -> emit (NUM (v land 0xFFFFFFFF))
           | None -> raise (Error (Printf.sprintf "bad number %S" s, !line)));
          go j
      | c when is_ident_start c ->
          let rec scan j =
            if j < n && is_ident_char src.[j] then scan (j + 1) else j
          in
          let j = scan i in
          let s = String.sub src i (j - i) in
          (match List.assoc_opt s keywords with
           | Some t -> emit t
           | None -> emit (IDENT s));
          go j
      | '\'' ->
          (* Char literal, with the usual escapes. *)
          let v, j =
            if i + 1 >= n then raise (Error ("unterminated char", !line))
            else if src.[i + 1] = '\\' && i + 3 < n then
              let v =
                match src.[i + 2] with
                | 'n' -> 10 | 't' -> 9 | '0' -> 0 | 'r' -> 13
                | c -> Char.code c
              in
              (v, i + 4)
            else (Char.code src.[i + 1], i + 3)
          in
          if j - 1 >= n || src.[j - 1] <> '\'' then
            raise (Error ("unterminated char literal", !line));
          emit (NUM v);
          go j
      | '"' ->
          let buf = Buffer.create 16 in
          let rec scan j =
            if j >= n then raise (Error ("unterminated string", !line))
            else if src.[j] = '"' then j + 1
            else if src.[j] = '\\' && j + 1 < n then begin
              (match src.[j + 1] with
               | 'n' -> Buffer.add_char buf '\n'
               | 't' -> Buffer.add_char buf '\t'
               | '0' -> Buffer.add_char buf '\000'
               | c -> Buffer.add_char buf c);
              scan (j + 2)
            end
            else begin
              Buffer.add_char buf src.[j];
              scan (j + 1)
            end
          in
          let j = scan (i + 1) in
          emit (STRING (Buffer.contents buf));
          go j
      | '(' -> emit LPAREN; go (i + 1)
      | ')' -> emit RPAREN; go (i + 1)
      | '{' -> emit LBRACE; go (i + 1)
      | '}' -> emit RBRACE; go (i + 1)
      | '[' -> emit LBRACKET; go (i + 1)
      | ']' -> emit RBRACKET; go (i + 1)
      | ';' -> emit SEMI; go (i + 1)
      | ',' -> emit COMMA; go (i + 1)
      | '?' -> emit QUESTION; go (i + 1)
      | ':' -> emit COLON; go (i + 1)
      | '+' -> emit PLUS; go (i + 1)
      | '-' -> emit MINUS; go (i + 1)
      | '*' -> emit STAR; go (i + 1)
      | '/' -> emit SLASH; go (i + 1)
      | '%' -> emit PERCENT; go (i + 1)
      | '~' -> emit TILDE; go (i + 1)
      | '^' -> emit CARET; go (i + 1)
      | '&' when i + 1 < n && src.[i + 1] = '&' -> emit ANDAND; go (i + 2)
      | '&' -> emit AMP; go (i + 1)
      | '|' when i + 1 < n && src.[i + 1] = '|' -> emit OROR; go (i + 2)
      | '|' -> emit PIPE; go (i + 1)
      | '<' when i + 1 < n && src.[i + 1] = '<' -> emit LSHIFT; go (i + 2)
      | '<' when i + 1 < n && src.[i + 1] = '=' -> emit LE; go (i + 2)
      | '<' -> emit LT; go (i + 1)
      | '>' when i + 1 < n && src.[i + 1] = '>' -> emit RSHIFT; go (i + 2)
      | '>' when i + 1 < n && src.[i + 1] = '=' -> emit GE; go (i + 2)
      | '>' -> emit GT; go (i + 1)
      | '=' when i + 1 < n && src.[i + 1] = '=' -> emit EQ; go (i + 2)
      | '=' -> emit ASSIGN; go (i + 1)
      | '!' when i + 1 < n && src.[i + 1] = '=' -> emit NE; go (i + 2)
      | '!' -> emit BANG; go (i + 1)
      | c -> raise (Error (Printf.sprintf "unexpected character %C" c, !line))
  in
  go 0;
  List.rev !toks

let to_string = function
  | INT -> "int" | CHAR -> "char" | VOID -> "void" | IF -> "if"
  | ELSE -> "else" | WHILE -> "while" | FOR -> "for" | RETURN -> "return"
  | BREAK -> "break" | CONTINUE -> "continue" | CONST -> "const"
  | IDENT s -> s
  | NUM n -> string_of_int n
  | STRING s -> Printf.sprintf "%S" s
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]" | SEMI -> ";" | COMMA -> ","
  | QUESTION -> "?" | COLON -> ":" | ASSIGN -> "="
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | AMP -> "&" | PIPE -> "|" | CARET -> "^" | TILDE -> "~" | BANG -> "!"
  | LSHIFT -> "<<" | RSHIFT -> ">>"
  | EQ -> "==" | NE -> "!=" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | ANDAND -> "&&" | OROR -> "||"
  | EOF -> "<eof>"
