(** Mini-C code generation: AST -> DVM assembly -> DXE image.

    Calling convention (shared with the kernel ABI): arguments pushed
    right-to-left, [call] pushes the return address, results in [r0].
    Locals live below [fp]; parameters at [fp + 8 + 4*i]. Calls to
    functions not defined in the unit compile to [kcall <name>] and appear
    in the image's import table.

    Builtins compiled inline: [__ldb p], [__stb p v] (byte memory access),
    [__ltu a b], [__leu a b] (unsigned comparisons), [__shrs a b]
    (arithmetic shift), [__cli], [__sti], [__halt]. *)

exception Error of string

val to_assembly : Ast.program -> string
(** Emit DVM assembly for a checked program. *)

val compile : name:string -> string -> Ddt_dvm.Image.t
(** Parse, analyze and assemble a full translation unit.
    @raise Error, @raise Parser.Error, @raise Lexer.Error,
    @raise Typecheck.Error *)
