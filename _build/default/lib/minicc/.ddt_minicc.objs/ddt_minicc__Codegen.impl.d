lib/minicc/codegen.ml: Ast Buffer Ddt_dvm List Option Parser Printf String Typecheck
