lib/minicc/codegen.mli: Ast Ddt_dvm
