lib/minicc/parser.ml: Array Ast Lexer List Printf
