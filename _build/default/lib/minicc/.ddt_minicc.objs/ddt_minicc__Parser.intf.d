lib/minicc/parser.mli: Ast
