lib/minicc/typecheck.ml: Ast List Option Printf
