lib/minicc/lexer.ml: Buffer Char List Printf String
