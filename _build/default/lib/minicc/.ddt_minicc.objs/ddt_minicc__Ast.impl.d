lib/minicc/ast.ml:
