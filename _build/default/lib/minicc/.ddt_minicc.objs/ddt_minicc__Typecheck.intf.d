lib/minicc/typecheck.mli: Ast
