lib/minicc/lexer.mli:
