lib/minicc/ast.mli:
