open Ast

exception Error of string

(* Storage classes an identifier can resolve to. *)
type storage =
  | Local of int                 (* fp - offset *)
  | Local_array of int * elem_type
  | Param of int                 (* index *)
  | Global of string
  | Global_array of string * elem_type
  | Constant of int
  | Function of string

type ctx = {
  buf : Buffer.t;
  data : Buffer.t;
  mutable label_counter : int;
  mutable string_counter : int;
  mutable strings : (string * string) list;   (* literal -> label *)
  consts : (string * int) list;
  global_syms : (string * storage) list;
  mutable env : (string * storage) list list; (* scopes, innermost first *)
  mutable frame_next : int;                   (* next free local offset *)
  mutable break_labels : string list;
  mutable continue_labels : string list;
  mutable epilogue : string;
}

let emit ctx fmt = Printf.ksprintf (fun s -> Buffer.add_string ctx.buf ("  " ^ s ^ "\n")) fmt
let emit_label ctx l = Buffer.add_string ctx.buf (l ^ ":\n")
let emit_raw ctx s = Buffer.add_string ctx.buf (s ^ "\n")

let fresh_label ctx prefix =
  ctx.label_counter <- ctx.label_counter + 1;
  Printf.sprintf "L%s_%d" prefix ctx.label_counter

let string_label ctx s =
  match List.assoc_opt s ctx.strings with
  | Some l -> l
  | None ->
      ctx.string_counter <- ctx.string_counter + 1;
      let l = Printf.sprintf "Lstr_%d" ctx.string_counter in
      ctx.strings <- (s, l) :: ctx.strings;
      l

let lookup ctx name =
  let rec in_scopes = function
    | [] -> List.assoc_opt name ctx.global_syms
    | scope :: rest -> (
        match List.assoc_opt name scope with
        | Some s -> Some s
        | None -> in_scopes rest)
  in
  match in_scopes ctx.env with
  | Some s -> s
  | None -> raise (Error (Printf.sprintf "codegen: unresolved %S" name))

let declare_local ctx (d : decl) resolve_const =
  let size =
    match d.d_array with
    | None -> 4
    | Some e -> (
        match Typecheck.const_eval resolve_const e with
        | Some n ->
            let bytes = match d.d_elem with Word -> 4 * n | Byte -> n in
            (bytes + 3) land lnot 3
        | None -> raise (Error "non-constant array size"))
  in
  ctx.frame_next <- ctx.frame_next + size;
  let off = ctx.frame_next in
  let storage =
    match d.d_array with
    | None -> Local off
    | Some _ -> Local_array (off, d.d_elem)
  in
  (match ctx.env with
   | scope :: rest -> ctx.env <- ((d.d_name, storage) :: scope) :: rest
   | [] -> assert false);
  storage

(* Total bytes of locals a function can ever allocate (no slot reuse). *)
let frame_bytes resolve_const (f : func) =
  let total = ref 0 in
  let add_decl (d : decl) =
    let size =
      match d.d_array with
      | None -> 4
      | Some e -> (
          match Typecheck.const_eval resolve_const e with
          | Some n ->
              let bytes = match d.d_elem with Word -> 4 * n | Byte -> n in
              (bytes + 3) land lnot 3
          | None -> raise (Error "non-constant array size"))
    in
    total := !total + size
  in
  let rec walk = function
    | Sdecl d -> add_decl d
    | Sblock body -> List.iter walk body
    | Sif (_, a, b) -> walk a; Option.iter walk b
    | Swhile (_, body) -> walk body
    | Sfor (_, _, _, body) -> walk body
    | Sexpr _ | Sreturn _ | Sbreak | Scontinue -> ()
  in
  List.iter walk f.f_body;
  !total

(* --- expressions ------------------------------------------------------ *)

(* Generates code leaving the value in r0. Uses the stack for temporaries
   so nested expressions cannot clobber each other. *)
let rec gen_expr ctx e =
  match e with
  | Num n -> emit ctx "movi r0, %d" n
  | Str s -> emit ctx "lea r0, %s" (string_label ctx s)
  | Ident name -> (
      match lookup ctx name with
      | Constant v -> emit ctx "movi r0, %d" v
      | Local off -> emit ctx "ldw r0, [fp-%d]" off
      | Param i -> emit ctx "ldw r0, [fp+%d]" (8 + (4 * i))
      | Global l -> emit ctx "lea r1, %s" l; emit ctx "ldw r0, [r1+0]"
      | Local_array (off, _) -> emit ctx "sub r0, fp, %d" off
      | Global_array (l, _) -> emit ctx "lea r0, %s" l
      | Function l -> emit ctx "lea r0, %s" l)
  | Unop (Neg, a) ->
      gen_expr ctx a;
      emit ctx "movi r1, 0";
      emit ctx "sub r0, r1, r0"
  | Unop (LogNot, a) ->
      gen_expr ctx a;
      emit ctx "cmpeq r0, r0, 0"
  | Unop (BitNot, a) ->
      gen_expr ctx a;
      emit ctx "xor r0, r0, 0xFFFFFFFF"
  | Binop (LogAnd, a, b) ->
      let l_false = fresh_label ctx "and_false" in
      let l_end = fresh_label ctx "and_end" in
      gen_expr ctx a;
      emit ctx "jz r0, %s" l_false;
      gen_expr ctx b;
      emit ctx "cmpne r0, r0, 0";
      emit ctx "jmp %s" l_end;
      emit_label ctx l_false;
      emit ctx "movi r0, 0";
      emit_label ctx l_end
  | Binop (LogOr, a, b) ->
      let l_true = fresh_label ctx "or_true" in
      let l_end = fresh_label ctx "or_end" in
      gen_expr ctx a;
      emit ctx "jnz r0, %s" l_true;
      gen_expr ctx b;
      emit ctx "cmpne r0, r0, 0";
      emit ctx "jmp %s" l_end;
      emit_label ctx l_true;
      emit ctx "movi r0, 1";
      emit_label ctx l_end
  | Binop (op, a, b) ->
      gen_expr ctx a;
      emit ctx "push r0";
      gen_expr ctx b;
      emit ctx "mov r1, r0";
      emit ctx "pop r0";
      let m =
        match op with
        | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "divu"
        | Rem -> "remu" | BitAnd -> "and" | BitOr -> "or" | BitXor -> "xor"
        | Shl -> "shl" | Shr -> "shru"
        | Eq -> "cmpeq" | Ne -> "cmpne" | Lt -> "cmplts" | Le -> "cmples"
        | Gt -> "" | Ge -> "" | LogAnd | LogOr -> assert false
      in
      (match op with
       | Gt -> emit ctx "cmplts r0, r1, r0"   (* a > b  <=>  b < a *)
       | Ge -> emit ctx "cmples r0, r1, r0"
       | _ -> emit ctx "%s r0, r0, r1" m)
  | Assign (lhs, rhs) ->
      let elem = gen_lvalue ctx lhs in
      emit ctx "push r0";
      gen_expr ctx rhs;
      emit ctx "pop r1";
      (match elem with
       | Word -> emit ctx "stw [r1+0], r0"
       | Byte -> emit ctx "stb [r1+0], r0")
  | Ternary (c, a, b) ->
      let l_else = fresh_label ctx "tern_else" in
      let l_end = fresh_label ctx "tern_end" in
      gen_expr ctx c;
      emit ctx "jz r0, %s" l_else;
      gen_expr ctx a;
      emit ctx "jmp %s" l_end;
      emit_label ctx l_else;
      gen_expr ctx b;
      emit_label ctx l_end
  | Call (name, args) -> gen_call ctx name args
  | Index _ | Deref _ ->
      let elem = gen_lvalue ctx e in
      (match elem with
       | Word -> emit ctx "ldw r0, [r0+0]"
       | Byte -> emit ctx "ldb r0, [r0+0]")
  | Addr lv -> (
      match lv with
      | Ident name -> (
          match lookup ctx name with
          | Function l -> emit ctx "lea r0, %s" l
          | _ -> ignore (gen_lvalue ctx lv))
      | _ -> ignore (gen_lvalue ctx lv))

(* Generates the address of an lvalue into r0 and reports its element
   width (Word for everything except indexing into byte arrays). *)
and gen_lvalue ctx e =
  match e with
  | Ident name -> (
      match lookup ctx name with
      | Local off -> emit ctx "sub r0, fp, %d" off; Word
      | Param i -> emit ctx "add r0, fp, %d" (8 + (4 * i)); Word
      | Global l -> emit ctx "lea r0, %s" l; Word
      | Local_array (off, elem) -> emit ctx "sub r0, fp, %d" off; elem
      | Global_array (l, elem) -> emit ctx "lea r0, %s" l; elem
      | Constant _ -> raise (Error "constant is not an lvalue")
      | Function _ -> raise (Error "function is not an lvalue"))
  | Deref a -> gen_expr ctx a; Word
  | Index (base, idx) ->
      let elem =
        match base with
        | Ident name -> (
            match lookup ctx name with
            | Local_array (_, e) | Global_array (_, e) -> e
            | _ -> Word)
        | _ -> Word
      in
      (* Address of the base... *)
      (match base with
       | Ident name -> (
           match lookup ctx name with
           | Local_array _ | Global_array _ -> ignore (gen_lvalue ctx base)
           | _ -> gen_expr ctx base)
       | _ -> gen_expr ctx base);
      emit ctx "push r0";
      gen_expr ctx idx;
      (match elem with
       | Word -> emit ctx "shl r0, r0, 2"
       | Byte -> ());
      emit ctx "pop r1";
      emit ctx "add r0, r1, r0";
      elem
  | _ -> raise (Error "expression is not an lvalue")

and gen_call ctx name args =
  (* Inline builtins first. *)
  match name, args with
  | "__ldb", [ p ] ->
      gen_expr ctx p;
      emit ctx "ldb r0, [r0+0]"
  | "__stb", [ p; v ] ->
      gen_expr ctx p;
      emit ctx "push r0";
      gen_expr ctx v;
      emit ctx "pop r1";
      emit ctx "stb [r1+0], r0"
  | "__ltu", [ a; b ] ->
      gen_expr ctx a;
      emit ctx "push r0";
      gen_expr ctx b;
      emit ctx "mov r1, r0";
      emit ctx "pop r0";
      emit ctx "cmpltu r0, r0, r1"
  | "__leu", [ a; b ] ->
      gen_expr ctx a;
      emit ctx "push r0";
      gen_expr ctx b;
      emit ctx "mov r1, r0";
      emit ctx "pop r0";
      emit ctx "cmpleu r0, r0, r1"
  | "__shrs", [ a; b ] ->
      gen_expr ctx a;
      emit ctx "push r0";
      gen_expr ctx b;
      emit ctx "mov r1, r0";
      emit ctx "pop r0";
      emit ctx "shrs r0, r0, r1"
  | "__cli", [] -> emit ctx "cli"
  | "__sti", [] -> emit ctx "sti"
  | "__halt", [] -> emit ctx "hlt"
  | _ ->
      (* Push arguments right-to-left. *)
      List.iter
        (fun a ->
          gen_expr ctx a;
          emit ctx "push r0")
        (List.rev args);
      let is_local_fn =
        match List.assoc_opt name ctx.global_syms with
        | Some (Function _) -> true
        | _ -> false
      in
      if is_local_fn then emit ctx "call %s" name
      else emit ctx "kcall %s" name;
      if args <> [] then emit ctx "add sp, sp, %d" (4 * List.length args)

(* --- statements ------------------------------------------------------- *)

let rec gen_stmt ctx resolve_const s =
  match s with
  | Sexpr e -> gen_expr ctx e
  | Sif (c, then_, else_) -> (
      gen_expr ctx c;
      match else_ with
      | None ->
          let l_end = fresh_label ctx "if_end" in
          emit ctx "jz r0, %s" l_end;
          gen_stmt ctx resolve_const then_;
          emit_label ctx l_end
      | Some e ->
          let l_else = fresh_label ctx "if_else" in
          let l_end = fresh_label ctx "if_end" in
          emit ctx "jz r0, %s" l_else;
          gen_stmt ctx resolve_const then_;
          emit ctx "jmp %s" l_end;
          emit_label ctx l_else;
          gen_stmt ctx resolve_const e;
          emit_label ctx l_end)
  | Swhile (c, body) ->
      let l_top = fresh_label ctx "while_top" in
      let l_end = fresh_label ctx "while_end" in
      emit_label ctx l_top;
      gen_expr ctx c;
      emit ctx "jz r0, %s" l_end;
      ctx.break_labels <- l_end :: ctx.break_labels;
      ctx.continue_labels <- l_top :: ctx.continue_labels;
      gen_stmt ctx resolve_const body;
      ctx.break_labels <- List.tl ctx.break_labels;
      ctx.continue_labels <- List.tl ctx.continue_labels;
      emit ctx "jmp %s" l_top;
      emit_label ctx l_end
  | Sfor (init, cond, step, body) ->
      let l_top = fresh_label ctx "for_top" in
      let l_step = fresh_label ctx "for_step" in
      let l_end = fresh_label ctx "for_end" in
      Option.iter (gen_expr ctx) init;
      emit_label ctx l_top;
      (match cond with
       | Some c ->
           gen_expr ctx c;
           emit ctx "jz r0, %s" l_end
       | None -> ());
      ctx.break_labels <- l_end :: ctx.break_labels;
      ctx.continue_labels <- l_step :: ctx.continue_labels;
      gen_stmt ctx resolve_const body;
      ctx.break_labels <- List.tl ctx.break_labels;
      ctx.continue_labels <- List.tl ctx.continue_labels;
      emit_label ctx l_step;
      Option.iter (gen_expr ctx) step;
      emit ctx "jmp %s" l_top;
      emit_label ctx l_end
  | Sreturn e ->
      (match e with
       | Some e -> gen_expr ctx e
       | None -> emit ctx "movi r0, 0");
      emit ctx "jmp %s" ctx.epilogue
  | Sbreak -> (
      match ctx.break_labels with
      | l :: _ -> emit ctx "jmp %s" l
      | [] -> raise (Error "break outside loop"))
  | Scontinue -> (
      match ctx.continue_labels with
      | l :: _ -> emit ctx "jmp %s" l
      | [] -> raise (Error "continue outside loop"))
  | Sblock body ->
      ctx.env <- [] :: ctx.env;
      List.iter (gen_stmt ctx resolve_const) body;
      ctx.env <- List.tl ctx.env
  | Sdecl d -> (
      let storage = declare_local ctx d resolve_const in
      match d.d_init, storage with
      | Some init, Local off ->
          gen_expr ctx init;
          emit ctx "stw [fp-%d], r0" off
      | Some _, _ -> raise (Error "array initializers are not supported")
      | None, _ -> ())

(* --- top level -------------------------------------------------------- *)

let gen_function ctx resolve_const (f : func) =
  emit_raw ctx (Printf.sprintf ".func %s" f.f_name);
  emit_label ctx f.f_name;
  let frame = frame_bytes resolve_const f in
  emit ctx "push fp";
  emit ctx "mov fp, sp";
  if frame > 0 then emit ctx "sub sp, sp, %d" frame;
  ctx.env <- [ List.mapi (fun i p -> (p, Param i)) f.f_params ];
  ctx.frame_next <- 0;
  ctx.epilogue <- fresh_label ctx ("ret_" ^ f.f_name);
  ctx.break_labels <- [];
  ctx.continue_labels <- [];
  (* Fall-off-the-end returns 0. *)
  List.iter (gen_stmt ctx resolve_const) f.f_body;
  emit ctx "movi r0, 0";
  emit_label ctx ctx.epilogue;
  emit ctx "mov sp, fp";
  emit ctx "pop fp";
  emit ctx "ret"

let to_assembly (program : program) =
  let info = Typecheck.analyze program in
  let resolve_const name = List.assoc_opt name info.Typecheck.consts in
  (* Global symbol table. *)
  let global_syms =
    List.filter_map
      (function
        | Gconst (name, _) ->
            Some (name, Constant (List.assoc name info.Typecheck.consts))
        | Gvar d ->
            let label = "g_" ^ d.d_name in
            Some
              (d.d_name,
               match d.d_array with
               | None -> Global label
               | Some _ -> Global_array (label, d.d_elem))
        | Gfunc f -> Some (f.f_name, Function f.f_name))
      program
  in
  let ctx =
    {
      buf = Buffer.create 4096;
      data = Buffer.create 1024;
      label_counter = 0;
      string_counter = 0;
      strings = [];
      consts = info.Typecheck.consts;
      global_syms;
      env = [];
      frame_next = 0;
      break_labels = [];
      continue_labels = [];
      epilogue = "";
    }
  in
  let entry =
    if List.mem_assoc "driver_entry" info.Typecheck.functions then
      "driver_entry"
    else
      match program with
      | _ ->
          (match
             List.find_opt (function Gfunc _ -> true | _ -> false) program
           with
           | Some (Gfunc f) -> f.f_name
           | _ -> "driver_entry")
  in
  emit_raw ctx (Printf.sprintf ".entry %s" entry);
  emit_raw ctx ".text";
  List.iter
    (function
      | Gfunc f -> gen_function ctx resolve_const f
      | Gvar _ | Gconst _ -> ())
    program;
  (* Data section: globals then string literals. *)
  Buffer.add_string ctx.data ".data\n";
  List.iter
    (function
      | Gvar d ->
          let label = "g_" ^ d.d_name in
          (match d.d_array with
           | None ->
               let v =
                 match d.d_init with
                 | None -> 0
                 | Some e -> (
                     match Typecheck.const_eval resolve_const e with
                     | Some v -> v
                     | None ->
                         raise (Error "global initializer must be constant"))
               in
               Buffer.add_string ctx.data
                 (Printf.sprintf "%s: .word %d\n" label v)
           | Some size_e ->
               let n =
                 match Typecheck.const_eval resolve_const size_e with
                 | Some n -> n
                 | None -> raise (Error "non-constant array size")
               in
               let bytes = match d.d_elem with Word -> 4 * n | Byte -> n in
               if d.d_init <> None then
                 raise (Error "array initializers are not supported");
               Buffer.add_string ctx.data
                 (Printf.sprintf "%s: .space %d\n" label bytes))
      | Gconst _ | Gfunc _ -> ())
    program;
  List.iter
    (fun (s, l) ->
      let escaped =
        String.concat ""
          (List.map
             (function
               | '"' -> "\\\""
               | '\n' -> "\\n"
               | '\t' -> "\\t"
               | '\000' -> "\\0"
               | c -> String.make 1 c)
             (List.init (String.length s) (String.get s)))
      in
      Buffer.add_string ctx.data (Printf.sprintf "%s: .asciz \"%s\"\n" l escaped))
    (List.rev ctx.strings);
  Buffer.contents ctx.buf ^ Buffer.contents ctx.data

let compile ~name source =
  let program = Parser.parse source in
  let asm = to_assembly program in
  Ddt_dvm.Asm.assemble ~name asm
