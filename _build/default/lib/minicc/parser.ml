open Ast

exception Error of string * int

type state = {
  toks : (Lexer.token * int) array;
  mutable pos : int;
}

let peek st = fst st.toks.(st.pos)
let line st = snd st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let err st msg =
  raise (Error (Printf.sprintf "%s (found %s)" msg (Lexer.to_string (peek st)),
                line st))

let expect st t msg =
  if peek st = t then advance st else err st msg

let accept st t =
  if peek st = t then begin advance st; true end
  else false

let ident st =
  match peek st with
  | Lexer.IDENT s -> advance st; s
  | _ -> err st "expected identifier"

(* --- expressions ------------------------------------------------------ *)

let rec parse_expr st = parse_assign st

and parse_assign st =
  let lhs = parse_ternary st in
  if accept st Lexer.ASSIGN then
    let rhs = parse_assign st in
    Assign (lhs, rhs)
  else lhs

and parse_ternary st =
  let c = parse_logor st in
  if accept st Lexer.QUESTION then begin
    let a = parse_expr st in
    expect st Lexer.COLON "expected ':'";
    let b = parse_ternary st in
    Ternary (c, a, b)
  end
  else c

and parse_logor st =
  let rec go acc =
    if accept st Lexer.OROR then go (Binop (LogOr, acc, parse_logand st))
    else acc
  in
  go (parse_logand st)

and parse_logand st =
  let rec go acc =
    if accept st Lexer.ANDAND then go (Binop (LogAnd, acc, parse_bitor st))
    else acc
  in
  go (parse_bitor st)

and parse_bitor st =
  let rec go acc =
    if accept st Lexer.PIPE then go (Binop (BitOr, acc, parse_bitxor st))
    else acc
  in
  go (parse_bitxor st)

and parse_bitxor st =
  let rec go acc =
    if accept st Lexer.CARET then go (Binop (BitXor, acc, parse_bitand st))
    else acc
  in
  go (parse_bitand st)

and parse_bitand st =
  let rec go acc =
    if accept st Lexer.AMP then go (Binop (BitAnd, acc, parse_equality st))
    else acc
  in
  go (parse_equality st)

and parse_equality st =
  let rec go acc =
    match peek st with
    | Lexer.EQ -> advance st; go (Binop (Eq, acc, parse_relational st))
    | Lexer.NE -> advance st; go (Binop (Ne, acc, parse_relational st))
    | _ -> acc
  in
  go (parse_relational st)

and parse_relational st =
  let rec go acc =
    match peek st with
    | Lexer.LT -> advance st; go (Binop (Lt, acc, parse_shift st))
    | Lexer.LE -> advance st; go (Binop (Le, acc, parse_shift st))
    | Lexer.GT -> advance st; go (Binop (Gt, acc, parse_shift st))
    | Lexer.GE -> advance st; go (Binop (Ge, acc, parse_shift st))
    | _ -> acc
  in
  go (parse_shift st)

and parse_shift st =
  let rec go acc =
    match peek st with
    | Lexer.LSHIFT -> advance st; go (Binop (Shl, acc, parse_additive st))
    | Lexer.RSHIFT -> advance st; go (Binop (Shr, acc, parse_additive st))
    | _ -> acc
  in
  go (parse_additive st)

and parse_additive st =
  let rec go acc =
    match peek st with
    | Lexer.PLUS -> advance st; go (Binop (Add, acc, parse_multiplicative st))
    | Lexer.MINUS -> advance st; go (Binop (Sub, acc, parse_multiplicative st))
    | _ -> acc
  in
  go (parse_multiplicative st)

and parse_multiplicative st =
  let rec go acc =
    match peek st with
    | Lexer.STAR -> advance st; go (Binop (Mul, acc, parse_unary st))
    | Lexer.SLASH -> advance st; go (Binop (Div, acc, parse_unary st))
    | Lexer.PERCENT -> advance st; go (Binop (Rem, acc, parse_unary st))
    | _ -> acc
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | Lexer.MINUS -> advance st; Unop (Neg, parse_unary st)
  | Lexer.BANG -> advance st; Unop (LogNot, parse_unary st)
  | Lexer.TILDE -> advance st; Unop (BitNot, parse_unary st)
  | Lexer.STAR -> advance st; Deref (parse_unary st)
  | Lexer.AMP -> advance st; Addr (parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let rec go acc =
    if accept st Lexer.LBRACKET then begin
      let i = parse_expr st in
      expect st Lexer.RBRACKET "expected ']'";
      go (Index (acc, i))
    end
    else acc
  in
  go (parse_primary st)

and parse_primary st =
  match peek st with
  | Lexer.NUM n -> advance st; Num n
  | Lexer.STRING s -> advance st; Str s
  | Lexer.IDENT name ->
      advance st;
      if accept st Lexer.LPAREN then begin
        let args =
          if peek st = Lexer.RPAREN then []
          else
            let rec go acc =
              let a = parse_expr st in
              if accept st Lexer.COMMA then go (a :: acc)
              else List.rev (a :: acc)
            in
            go []
        in
        expect st Lexer.RPAREN "expected ')'";
        Call (name, args)
      end
      else Ident name
  | Lexer.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.RPAREN "expected ')'";
      e
  | _ -> err st "expected expression"

(* --- statements ------------------------------------------------------- *)

let parse_type st =
  let elem =
    match peek st with
    | Lexer.INT -> advance st; Word
    | Lexer.CHAR -> advance st; Byte
    | Lexer.VOID -> advance st; Word
    | _ -> err st "expected type"
  in
  (* Pointer stars: pointers are plain words. *)
  let elem = ref elem in
  while accept st Lexer.STAR do elem := Word done;
  !elem

let is_type_token = function
  | Lexer.INT | Lexer.CHAR | Lexer.VOID -> true
  | _ -> false

let parse_decl st =
  let elem = parse_type st in
  let name = ident st in
  let arr =
    if accept st Lexer.LBRACKET then begin
      let e = parse_expr st in
      expect st Lexer.RBRACKET "expected ']'";
      Some e
    end
    else None
  in
  (* A declared array of bytes keeps Byte element type; scalars and
     pointer declarations are words. *)
  let elem = if arr = None then Word else elem in
  let init = if accept st Lexer.ASSIGN then Some (parse_expr st) else None in
  expect st Lexer.SEMI "expected ';'";
  { d_name = name; d_elem = elem; d_array = arr; d_init = init }

let rec parse_stmt st =
  match peek st with
  | Lexer.LBRACE ->
      advance st;
      let rec go acc =
        if accept st Lexer.RBRACE then Sblock (List.rev acc)
        else go (parse_stmt st :: acc)
      in
      go []
  | Lexer.IF ->
      advance st;
      expect st Lexer.LPAREN "expected '('";
      let c = parse_expr st in
      expect st Lexer.RPAREN "expected ')'";
      let then_ = parse_stmt st in
      let else_ = if accept st Lexer.ELSE then Some (parse_stmt st) else None in
      Sif (c, then_, else_)
  | Lexer.WHILE ->
      advance st;
      expect st Lexer.LPAREN "expected '('";
      let c = parse_expr st in
      expect st Lexer.RPAREN "expected ')'";
      Swhile (c, parse_stmt st)
  | Lexer.FOR ->
      advance st;
      expect st Lexer.LPAREN "expected '('";
      let init = if peek st = Lexer.SEMI then None else Some (parse_expr st) in
      expect st Lexer.SEMI "expected ';'";
      let cond = if peek st = Lexer.SEMI then None else Some (parse_expr st) in
      expect st Lexer.SEMI "expected ';'";
      let step = if peek st = Lexer.RPAREN then None else Some (parse_expr st) in
      expect st Lexer.RPAREN "expected ')'";
      Sfor (init, cond, step, parse_stmt st)
  | Lexer.RETURN ->
      advance st;
      if accept st Lexer.SEMI then Sreturn None
      else begin
        let e = parse_expr st in
        expect st Lexer.SEMI "expected ';'";
        Sreturn (Some e)
      end
  | Lexer.BREAK ->
      advance st;
      expect st Lexer.SEMI "expected ';'";
      Sbreak
  | Lexer.CONTINUE ->
      advance st;
      expect st Lexer.SEMI "expected ';'";
      Scontinue
  | t when is_type_token t -> Sdecl (parse_decl st)
  | _ ->
      let e = parse_expr st in
      expect st Lexer.SEMI "expected ';'";
      Sexpr e

(* --- globals ---------------------------------------------------------- *)

let parse_global st =
  if accept st Lexer.CONST then begin
    let name = ident st in
    expect st Lexer.ASSIGN "expected '='";
    let e = parse_expr st in
    expect st Lexer.SEMI "expected ';'";
    Gconst (name, e)
  end
  else begin
    let elem = parse_type st in
    let name = ident st in
    if accept st Lexer.LPAREN then begin
      (* Function definition. *)
      let params =
        if peek st = Lexer.RPAREN then []
        else if peek st = Lexer.VOID && fst st.toks.(st.pos + 1) = Lexer.RPAREN
        then begin advance st; [] end
        else
          let rec go acc =
            let _ = parse_type st in
            let p = ident st in
            if accept st Lexer.COMMA then go (p :: acc)
            else List.rev (p :: acc)
          in
          go []
      in
      expect st Lexer.RPAREN "expected ')'";
      expect st Lexer.LBRACE "expected '{'";
      let rec go acc =
        if accept st Lexer.RBRACE then List.rev acc
        else go (parse_stmt st :: acc)
      in
      Gfunc { f_name = name; f_params = params; f_body = go [] }
    end
    else begin
      let arr =
        if accept st Lexer.LBRACKET then begin
          let e = parse_expr st in
          expect st Lexer.RBRACKET "expected ']'";
          Some e
        end
        else None
      in
      let elem = if arr = None then Word else elem in
      let init = if accept st Lexer.ASSIGN then Some (parse_expr st) else None in
      expect st Lexer.SEMI "expected ';'";
      Gvar { d_name = name; d_elem = elem; d_array = arr; d_init = init }
    end
  end

let parse source =
  let st = { toks = Array.of_list (Lexer.tokenize source); pos = 0 } in
  let rec go acc =
    if peek st = Lexer.EOF then List.rev acc
    else go (parse_global st :: acc)
  in
  go []
