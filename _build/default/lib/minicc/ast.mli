(** Abstract syntax of Mini-C.

    Mini-C is the small C dialect the driver corpus is written in. All
    scalar values are 32-bit words; [int] arrays index in words, [char]
    arrays in bytes. Comparison operators are signed ([<u]-style unsigned
    comparisons exist as builtins), [/ %] are unsigned, [>>] is a logical
    shift. Calls to functions not defined in the translation unit compile
    to kernel imports ([Kcall]) — the driver/kernel ABI of the paper. *)

type unop = Neg | LogNot | BitNot

type binop =
  | Add | Sub | Mul | Div | Rem
  | BitAnd | BitOr | BitXor
  | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge      (** signed *)
  | LogAnd | LogOr                    (** short-circuit *)

type expr =
  | Num of int
  | Str of string                     (** address of a NUL-terminated literal *)
  | Ident of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Assign of expr * expr             (** lvalue = expr *)
  | Ternary of expr * expr * expr
  | Call of string * expr list
  | Index of expr * expr              (** scaling depends on the array's type *)
  | Deref of expr                     (** 32-bit load through a pointer *)
  | Addr of expr                      (** address of an lvalue or function *)

type elem_type = Word | Byte

type stmt =
  | Sexpr of expr
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sfor of expr option * expr option * expr option * stmt
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list
  | Sdecl of decl

and decl = {
  d_name : string;
  d_elem : elem_type;
  d_array : expr option;              (** array size (const expr) or scalar *)
  d_init : expr option;
}

type func = {
  f_name : string;
  f_params : string list;
  f_body : stmt list;
}

type global =
  | Gvar of decl
  | Gconst of string * expr
  | Gfunc of func

type program = global list
