(** Mini-C lexer. *)

type token =
  | INT | CHAR | VOID | IF | ELSE | WHILE | FOR | RETURN
  | BREAK | CONTINUE | CONST
  | IDENT of string
  | NUM of int
  | STRING of string
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | QUESTION | COLON
  | ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | BANG
  | LSHIFT | RSHIFT
  | EQ | NE | LT | LE | GT | GE
  | ANDAND | OROR
  | EOF

exception Error of string * int
(** [(message, line)] *)

val tokenize : string -> (token * int) list
(** Token stream with line numbers; ends with [EOF]. *)

val to_string : token -> string
