(** State-selection strategies for the exploration worklist.

    The default, {!Min_touch}, is the coverage heuristic of the paper
    (§4.3, after EXE): keep a counter per basic block and always pick the
    state whose current block was executed least, which starves states
    stuck in polling loops. *)

type strategy =
  | Min_touch
  | Dfs
  | Bfs
  | Random_pick of int    (** seed *)

val pick :
  strategy -> priority:(Symstate.t -> int) -> Symstate.t list ->
  (Symstate.t * Symstate.t list) option
(** Remove and return the next state to run. [priority] is the current
    block's execution count (lower runs first); only {!Min_touch} uses it. *)
