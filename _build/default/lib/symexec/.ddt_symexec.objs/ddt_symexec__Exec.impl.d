lib/symexec/exec.ml: Array Bytes Ddt_dvm Ddt_hw Ddt_kernel Ddt_solver Ddt_trace Format Hashtbl List Printf Sched Symmem Symstate
