lib/symexec/exec.mli: Ddt_dvm Ddt_hw Ddt_kernel Ddt_solver Ddt_trace Sched Symstate
