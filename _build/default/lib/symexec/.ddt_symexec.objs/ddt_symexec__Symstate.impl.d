lib/symexec/symstate.ml: Array Ddt_dvm Ddt_kernel Ddt_solver Ddt_trace Format Symmem
