lib/symexec/symstate.mli: Ddt_kernel Ddt_solver Ddt_trace Format Symmem
