lib/symexec/sched.ml: Hashtbl List Symstate
