lib/symexec/symmem.mli: Ddt_dvm Ddt_hw Ddt_solver
