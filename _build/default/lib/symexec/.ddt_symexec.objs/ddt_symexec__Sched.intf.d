lib/symexec/sched.mli: Symstate
