lib/symexec/symmem.ml: Ddt_dvm Ddt_hw Ddt_solver Hashtbl Option
