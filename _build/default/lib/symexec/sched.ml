type strategy =
  | Min_touch
  | Dfs
  | Bfs
  | Random_pick of int

let remove_first p xs =
  let rec go acc = function
    | [] -> None
    | x :: rest ->
        if p x then Some (x, List.rev_append acc rest) else go (x :: acc) rest
  in
  go [] xs

let pick strategy ~priority worklist =
  match worklist with
  | [] -> None
  | first :: rest -> (
      match strategy with
      | Dfs -> Some (first, rest)     (* worklist is push-front *)
      | Bfs -> (
          match List.rev worklist with
          | last :: before -> Some (last, List.rev before)
          | [] -> None)
      | Random_pick seed ->
          let n = List.length worklist in
          let idx = abs (Hashtbl.hash (seed, n, first.Symstate.id)) mod n in
          let chosen = List.nth worklist idx in
          remove_first (fun s -> s == chosen) worklist
      | Min_touch ->
          (* Ties break toward the oldest queued state (the worklist is
             push-front): without FIFO tie-breaking the search herds on
             the newest fork siblings and behaves like DFS. *)
          let best =
            List.fold_left
              (fun acc s ->
                match acc with
                | None -> Some s
                | Some b -> if priority s <= priority b then Some s else acc)
              None worklist
          in
          (match best with
           | None -> None
           | Some b -> remove_first (fun s -> s == b) worklist))
