module Expr = Ddt_solver.Expr
module Exec = Ddt_symexec.Exec
module St = Ddt_symexec.Symstate
module Kstate = Ddt_kernel.Kstate

let scratch_len = 64

(* Queue one invocation of a registered entry point on a fork of [base]. *)
let invoke eng base ~entry ~args_of =
  match Kstate.entry_point base.St.ks entry with
  | None -> 0
  | Some addr ->
      let child = Exec.fork_of eng base in
      let args = args_of child in
      Exec.start_invocation eng child ~name:entry ~addr ~args;
      1

let symbolic_word eng st name =
  Exec.fresh_symbolic eng st ~name ~origin:"workload" Expr.W32

(* OIDs the concrete exerciser uses when annotations are off: the ones a
   stress tool derives from the driver's supported list — ordinary,
   expected values only, per operation. This is precisely why the
   Driver-Verifier-style baseline misses the unexpected-OID crashes. *)
let concrete_query_oids = [ 1; 2 ]
let concrete_set_oids = [ 2; 3 ]

let queue eng (cfg : Config.t) base item =
  let use_sym = cfg.Config.use_annotations in
  match item with
  | Config.W_initialize ->
      invoke eng base ~entry:"initialize" ~args_of:(fun _ -> [])
  | Config.W_halt -> invoke eng base ~entry:"halt" ~args_of:(fun _ -> [])
  | Config.W_reset -> invoke eng base ~entry:"reset" ~args_of:(fun _ -> [])
  | Config.W_stop -> invoke eng base ~entry:"stop" ~args_of:(fun _ -> [])
  | Config.W_query | Config.W_set ->
      let entry = if item = Config.W_query then "query" else "set" in
      if use_sym then
        invoke eng base ~entry ~args_of:(fun st ->
            let buf =
              Kstate.scratch_alloc st.St.ks ~size:scratch_len
                ~note:"information buffer"
            in
            let oid = symbolic_word eng st "oid" in
            [ oid; Expr.word buf; Expr.word scratch_len ])
      else
        let oids =
          if item = Config.W_query then concrete_query_oids
          else concrete_set_oids
        in
        List.fold_left
          (fun n oid ->
            n
            + invoke eng base ~entry ~args_of:(fun st ->
                  let buf =
                    Kstate.scratch_alloc st.St.ks ~size:scratch_len
                      ~note:"information buffer"
                  in
                  [ Expr.word oid; Expr.word buf; Expr.word scratch_len ]))
          0 oids
  | Config.W_send ->
      invoke eng base ~entry:"send" ~args_of:(fun st ->
          let pkt =
            Kstate.scratch_alloc st.St.ks ~size:scratch_len
              ~note:"network packet"
          in
          if use_sym then
            (* The packet's content is symbolic: all packet-type dispatch
               paths in the driver get explored (§3.2 of the paper). *)
            Exec.write_symbolic_bytes eng st ~addr:pkt ~len:scratch_len
              ~origin:"packet"
          else
            (* A plausible concrete frame. *)
            List.iteri
              (fun i b ->
                Ddt_symexec.Symmem.write_u8 st.St.mem (pkt + i) (Expr.byte b))
              (List.init scratch_len (fun i -> (i * 7 + 3) land 0xFF));
          [ Expr.word pkt; Expr.word scratch_len ])
  | Config.W_play ->
      invoke eng base ~entry:"play" ~args_of:(fun st ->
          let buf =
            Kstate.scratch_alloc st.St.ks ~size:scratch_len
              ~note:"audio buffer"
          in
          if use_sym then
            Exec.write_symbolic_bytes eng st ~addr:buf ~len:scratch_len
              ~origin:"audio"
          ;
          [ Expr.word buf; Expr.word scratch_len ])
  | Config.W_interrupt ->
      if Kstate.isr_registered base.St.ks then begin
        let child = Exec.fork_of eng base in
        Exec.start_interrupt_fire eng child;
        1
      end
      else 0
  | Config.W_timers ->
      List.fold_left
        (fun n (timer_addr, _) ->
          let child = Exec.fork_of eng base in
          Exec.start_timer_fire eng child ~timer_addr;
          n + 1)
        0
        (Kstate.due_timers base.St.ks)
