(** DDT — testing closed-source binary device drivers.

    The top-level facade: give it a driver binary (a DXE image) and a
    device class, get back a bug report with replayable traces.

    {[
      let image = Ddt_minicc.Codegen.compile ~name:"mydrv" source in
      let cfg =
        Ddt_core.Config.make ~driver_name:"mydrv" ~image
          ~driver_class:Ddt_core.Config.Network ()
      in
      let result = Ddt_core.Ddt.test_driver cfg in
      Format.printf "%a" Ddt_core.Ddt.pp_report result
    ]} *)

val test_driver : Config.t -> Session.result
(** Run a complete testing session. *)

val pp_report : Format.formatter -> Session.result -> unit
(** Human-readable report: the bug table plus coverage and statistics. *)

val pp_bug_detail : Format.formatter -> Ddt_checkers.Report.bug -> unit
(** One bug with its trace digest — the §3.5 evidence. *)
