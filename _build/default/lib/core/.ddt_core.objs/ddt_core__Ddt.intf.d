lib/core/ddt.mli: Config Ddt_checkers Format Session
