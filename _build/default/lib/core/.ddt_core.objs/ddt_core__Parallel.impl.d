lib/core/parallel.ml: Config Ddt_checkers Ddt_kernel Ddt_symexec Domain Hashtbl List Printf Session Unix
