lib/core/config.ml: Ddt_annot Ddt_dvm Ddt_kernel Ddt_symexec Ddt_trace
