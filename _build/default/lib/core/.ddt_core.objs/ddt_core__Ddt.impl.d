lib/core/ddt.ml: Ddt_checkers Ddt_symexec Ddt_trace Format List Session
