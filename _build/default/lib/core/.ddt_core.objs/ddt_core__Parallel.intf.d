lib/core/parallel.mli: Config Ddt_checkers
