lib/core/session.mli: Config Ddt_checkers Ddt_symexec Ddt_trace
