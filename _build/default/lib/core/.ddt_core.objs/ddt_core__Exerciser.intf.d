lib/core/exerciser.mli: Config Ddt_symexec
