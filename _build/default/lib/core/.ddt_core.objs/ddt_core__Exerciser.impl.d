lib/core/exerciser.ml: Config Ddt_kernel Ddt_solver Ddt_symexec List
