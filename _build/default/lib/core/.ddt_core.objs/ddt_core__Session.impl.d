lib/core/session.ml: Config Ddt_annot Ddt_checkers Ddt_dvm Ddt_hw Ddt_kernel Ddt_symexec Ddt_trace Exerciser List Option Printf Unix
