(** Parallel symbolic execution (the §6.1 direction: "we are exploring
    ways to mitigate this problem by running symbolic execution in
    parallel").

    Runs several complete test sessions of the same driver concurrently in
    OCaml 5 domains. The workers are diversified the way a Cloud9-style
    fleet would be — different search strategies and different random-pick
    seeds — so they explore different regions of the path space; their bug
    reports are merged with the usual key-based deduplication.

    Sessions are fully independent (each builds its own VM memory, kernel
    state and engine); the only shared mutable state in the stack is the
    atomic symbolic-variable counter. *)

type result = {
  p_bugs : Ddt_checkers.Report.bug list;   (** merged, deduplicated *)
  p_jobs : int;
  p_wall_time : float;
  p_sequential_time : float;
      (** sum of the individual sessions' wall times, i.e. what running
          the same fleet sequentially would have cost *)
  p_per_job : (string * int * float) list;
      (** (strategy label, bugs found, wall time) per worker *)
}

val test_driver : ?jobs:int -> Config.t -> result
(** [jobs] defaults to [min 4 (Domain.recommended_domain_count ())]. The
    first worker always runs the configuration's own strategy, so the
    merged result finds at least whatever a single session finds. *)

val speedup : result -> float
