(** The concrete workload generator — the Device Path Exerciser analog
    (§4.3 of the paper).

    Each workload item queues one or more entry-point invocations on a
    base state. Under annotations, the workload's concrete-to-symbolic
    hints apply: OIDs and packet contents become symbolic, letting the
    engine sweep all driver dispatch paths; without annotations the
    exerciser passes a fixed set of ordinary concrete values (which is
    why the §5.1 ablation loses the unexpected-OID segfaults). *)

val queue :
  Ddt_symexec.Exec.engine ->
  Config.t ->
  Ddt_symexec.Symstate.t ->
  Config.workload_item ->
  int
(** [queue eng cfg base item] forks [base] as needed and queues the
    invocations for [item]; returns how many were queued (0 when the
    driver registered no matching entry point). *)
