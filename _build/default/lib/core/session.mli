(** A full DDT testing session: load the driver binary into the VM, fool
    the kernel into binding it to the fake symbolic device, exercise every
    workload phase with selective symbolic execution, run the dynamic
    checkers, and collect bugs, traces and coverage.

    This is the programmatic equivalent of the paper's "Test Now" button. *)

type coverage_point = {
  cp_time : float;      (** seconds since session start *)
  cp_steps : int;       (** engine instructions executed so far *)
  cp_blocks : int;      (** cumulative distinct basic blocks *)
}

type result = {
  r_driver : string;
  r_bugs : Ddt_checkers.Report.bug list;
  r_coverage : coverage_point list;      (** chronological *)
  r_total_blocks : int;                  (** static basic-block count *)
  r_stats : Ddt_symexec.Exec.stats;
  r_wall_time : float;
  r_invocations : int;
  r_finished_states : int;
  r_kcalls : int;
  r_tree : Ddt_trace.Tree.t;
  (** the reconstructed execution tree of all explored paths (§3.5) *)
  r_crashdumps : (int * Ddt_trace.Crashdump.t) list;
  (** crashed-state id -> crash dump (when [collect_crashdumps]) *)
}

val run : Config.t -> result

val coverage_percent : result -> float
