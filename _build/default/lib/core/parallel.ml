module Report = Ddt_checkers.Report
module Exec = Ddt_symexec.Exec
module Sched = Ddt_symexec.Sched

type result = {
  p_bugs : Report.bug list;
  p_jobs : int;
  p_wall_time : float;
  p_sequential_time : float;
  p_per_job : (string * int * float) list;
}

let strategy_label = function
  | Sched.Min_touch -> "min-touch"
  | Sched.Dfs -> "dfs"
  | Sched.Bfs -> "bfs"
  | Sched.Random_pick seed -> Printf.sprintf "random-%d" seed

(* Worker i gets a distinct exploration flavor. *)
let variant (cfg : Config.t) i =
  if i = 0 then cfg
  else
    let strategy =
      match i mod 3 with
      | 1 -> Sched.Bfs
      | 2 -> Sched.Random_pick (1000 + i)
      | _ -> Sched.Dfs
    in
    { cfg with
      Config.exec_config = { cfg.Config.exec_config with Exec.strategy } }

let test_driver ?jobs (cfg : Config.t) =
  let jobs =
    match jobs with
    | Some j -> max 1 j
    | None -> min 4 (Domain.recommended_domain_count ())
  in
  (* Force shared lazies before spawning: the kernel API table is
     registered once, and the image must already be compiled. *)
  Ddt_kernel.Ndis.install ();
  Ddt_kernel.Portcls.install ();
  Ddt_kernel.Usb.install ();
  ignore cfg.Config.image;
  let t0 = Unix.gettimeofday () in
  let run_one i =
    let c = variant cfg i in
    let t = Unix.gettimeofday () in
    let r = Session.run c in
    (strategy_label c.Config.exec_config.Exec.strategy,
     r.Session.r_bugs,
     Unix.gettimeofday () -. t)
  in
  let outcomes =
    match jobs with
    | 1 -> [ run_one 0 ]
    | _ ->
        let domains =
          List.init (jobs - 1) (fun i ->
              Domain.spawn (fun () -> run_one (i + 1)))
        in
        let mine = run_one 0 in
        mine :: List.map Domain.join domains
  in
  let wall = Unix.gettimeofday () -. t0 in
  (* Merge with key-based dedup, first worker first. *)
  let seen = Hashtbl.create 32 in
  let merged = ref [] in
  List.iter
    (fun (_, bugs, _) ->
      List.iter
        (fun b ->
          if not (Hashtbl.mem seen b.Report.b_key) then begin
            Hashtbl.add seen b.Report.b_key ();
            merged := b :: !merged
          end)
        bugs)
    outcomes;
  {
    p_bugs = List.rev !merged;
    p_jobs = jobs;
    p_wall_time = wall;
    p_sequential_time =
      List.fold_left (fun acc (_, _, t) -> acc +. t) 0.0 outcomes;
    p_per_job =
      List.map (fun (label, bugs, t) -> (label, List.length bugs, t)) outcomes;
  }

let speedup r =
  if r.p_wall_time <= 0.0 then 1.0
  else r.p_sequential_time /. r.p_wall_time
